// F10 — thermal behaviour under sustained 1080p streaming (extension).
//
// 5-minute 1080p sessions in a warm environment (40 °C ambient) with the
// lumped-RC thermal model and step-wise throttle enabled. Reactive
// governors that burst to the top OPPs heat the SoC into the throttle
// band; once capped, their QoE depends on the cap. VAFS's lower steady
// frequency keeps the SoC cooler and out of (or barely into) throttling.
#include <cstdio>
#include <string>
#include <vector>

#include "exp/bench_app.h"

int main(int argc, char** argv) {
  using namespace vafs;

  exp::BenchApp app(argc, argv, "f10",
                    "Thermal: sustained 1080p at 40 C ambient, throttle enabled");

  const std::vector<std::string> governors = {"performance", "ondemand", "interactive",
                                              "schedutil", "vafs"};

  core::SessionConfig base;
  base.fixed_rep = 3;  // 1080p: the hot case
  base.media_duration = app.session_seconds(300);
  base.net = core::NetProfile::kGood;
  base.thermal_enabled = true;
  base.thermal.ambient_c = 40.0;  // summer car-mount worst case

  const exp::ResultSet& results = app.run(exp::ExperimentGrid(base).governors(governors));

  std::printf("%-13s %9s %9s %10s %11s %9s %9s %8s\n", "governor", "peak_C", "mean_C",
              "thr_time_s", "thr_events", "cpu_J", "drop_%", "rebuf");
  exp::print_rule(84);

  for (const auto& governor : governors) {
    const auto& a = results.agg({{"governor", governor}});
    if (!a.all_finished) {
      std::printf("%-13s DID NOT FINISH\n", governor.c_str());
      continue;
    }
    std::printf("%-13s %9.1f %9.1f %10.1f %11.0f %9.1f %9.2f %8.1f\n", governor.c_str(),
                a.peak_temp_c.mean(), a.mean_temp_c.mean(), a.throttled_s.mean(),
                a.throttle_events.mean(), a.cpu_mj.mean() / 1000.0, a.drop_pct.mean(),
                a.rebuffer_events.mean());
  }

  std::printf("\nExpected shape: performance spends most of the session throttled and\n"
              "ondemand/interactive minutes of it; VAFS and schedutil run ~2-3 C\n"
              "cooler and never cross the trip, so their QoE owes nothing to the cap.\n");
  return app.finish();
}
