// F10 — thermal behaviour under sustained 1080p streaming (extension).
//
// 5-minute 1080p sessions in a warm environment (35 °C ambient) with the
// lumped-RC thermal model and step-wise throttle enabled. Reactive
// governors that burst to the top OPPs heat the SoC into the throttle
// band; once capped, their QoE depends on the cap. VAFS's lower steady
// frequency keeps the SoC cooler and out of (or barely into) throttling.
#include <cstdio>
#include <string>

#include "bench_util.h"

int main() {
  using namespace vafs;

  bench::print_header("F10", "Thermal: sustained 1080p at 40 C ambient, throttle enabled");

  std::printf("%-13s %9s %9s %10s %11s %9s %9s %8s\n", "governor", "peak_C", "mean_C",
              "thr_time_s", "thr_events", "cpu_J", "drop_%", "rebuf");
  bench::print_rule(84);

  for (const std::string governor :
       {"performance", "ondemand", "interactive", "schedutil", "vafs"}) {
    core::SessionConfig config;
    config.governor = governor;
    config.fixed_rep = 3;  // 1080p: the hot case
    config.media_duration = sim::SimTime::seconds(300);
    config.net = core::NetProfile::kGood;
    config.seed = 404;
    config.thermal_enabled = true;
    config.thermal.ambient_c = 40.0;  // summer car-mount worst case

    const auto r = core::run_session(config);
    if (!r.finished) {
      std::printf("%-13s DID NOT FINISH\n", governor.c_str());
      continue;
    }
    std::printf("%-13s %9.1f %9.1f %10.1f %11llu %9.1f %9.2f %8llu\n", governor.c_str(),
                r.peak_temp_c, r.mean_temp_c, r.throttled_time.as_seconds_f(),
                static_cast<unsigned long long>(r.throttle_events), r.energy.cpu_mj / 1000.0,
                r.qoe.drop_ratio() * 100.0,
                static_cast<unsigned long long>(r.qoe.rebuffer_events));
  }

  std::printf("\nExpected shape: performance spends most of the session throttled and\n"
              "ondemand/interactive minutes of it; VAFS and schedutil run ~2-3 C\n"
              "cooler and never cross the trip, so their QoE owes nothing to the cap.\n");
  return 0;
}
