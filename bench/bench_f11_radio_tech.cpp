// F11 — radio technology sweep (extension): the same 720p session over
// WiFi, LTE and 3G/UMTS radio profiles.
//
// Expected shape: the CPU-side saving of VAFS is radio-agnostic (same
// cycles, same plans), while total device energy is dominated by the
// radio's active power and tail structure — 3G worst (long DCH/FACH
// tails, slow promotion inflates startup), WiFi best. This separates the
// paper's contribution (CPU) from the transport (radio) cleanly.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"

int main() {
  using namespace vafs;

  bench::print_header("F11", "Radio technology sweep (720p, fair bandwidth, 120 s)");

  const std::vector<std::pair<const char*, net::RadioParams>> radios = {
      {"wifi", net::RadioParams::wifi()},
      {"lte", net::RadioParams::lte()},
      {"3g-umts", net::RadioParams::umts_3g()},
  };

  std::printf("%-9s %-10s %9s %9s %9s %9s %10s\n", "radio", "governor", "cpu_J", "radio_J",
              "total_J", "vs_ondm", "startup_s");
  bench::print_rule(72);

  for (const auto& [radio_name, radio_params] : radios) {
    double ondemand_cpu = 0.0;
    for (const std::string governor : {"ondemand", "vafs"}) {
      core::SessionConfig config;
      config.governor = governor;
      config.fixed_rep = 2;
      config.media_duration = sim::SimTime::seconds(120);
      config.net = core::NetProfile::kFair;
      config.radio = radio_params;
      const auto a = bench::run_averaged(config, bench::default_seeds());
      if (governor == "ondemand") ondemand_cpu = a.cpu_mj;
      std::printf("%-9s %-10s %9.2f %9.2f %9.2f %8.1f%% %10.2f\n", radio_name,
                  governor.c_str(), a.cpu_mj / 1000.0, a.radio_mj / 1000.0, a.total_mj / 1000.0,
                  (1.0 - a.cpu_mj / ondemand_cpu) * 100.0, a.startup_s);
    }
    bench::print_rule(72);
  }

  std::printf("\nExpected shape: VAFS's CPU saving is ~40%% on every radio; radio\n"
              "energy ranks wifi < lte < 3g; 3G's 2 s promotion shows in startup.\n");
  return 0;
}
