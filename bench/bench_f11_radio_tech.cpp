// F11 — radio technology sweep (extension): the same 720p session over
// WiFi, LTE and 3G/UMTS radio profiles.
//
// Expected shape: the CPU-side saving of VAFS is radio-agnostic (same
// cycles, same plans), while total device energy is dominated by the
// radio's active power and tail structure — 3G worst (long DCH/FACH
// tails, slow promotion inflates startup), WiFi best. This separates the
// paper's contribution (CPU) from the transport (radio) cleanly.
#include <cstdio>
#include <string>
#include <vector>

#include "exp/bench_app.h"

int main(int argc, char** argv) {
  using namespace vafs;

  exp::BenchApp app(argc, argv, "f11", "Radio technology sweep (720p, fair bandwidth, 120 s)");

  const std::vector<std::pair<std::string, net::RadioParams>> radios = {
      {"wifi", net::RadioParams::wifi()},
      {"lte", net::RadioParams::lte()},
      {"3g-umts", net::RadioParams::umts_3g()},
  };
  const std::vector<std::string> governors = {"ondemand", "vafs"};

  core::SessionConfig base;
  base.fixed_rep = 2;
  base.media_duration = app.session_seconds(120);
  base.net = core::NetProfile::kFair;

  exp::ExperimentGrid grid(base);
  std::vector<std::pair<std::string, exp::ExperimentGrid::Mutator>> radio_axis;
  for (const auto& [name, params] : radios) {
    radio_axis.emplace_back(name,
                            [params = params](core::SessionConfig& c) { c.radio = params; });
  }
  grid.axis("radio", std::move(radio_axis)).governors(governors);

  const exp::ResultSet& results = app.run(grid);

  std::printf("%-9s %-10s %9s %9s %9s %9s %10s\n", "radio", "governor", "cpu_J", "radio_J",
              "total_J", "vs_ondm", "startup_s");
  exp::print_rule(72);

  for (const auto& [radio_name, params] : radios) {
    const double ondemand_cpu =
        results.agg({{"radio", radio_name}, {"governor", "ondemand"}}).cpu_mj.mean();
    for (const auto& governor : governors) {
      const auto& a = results.agg({{"radio", radio_name}, {"governor", governor}});
      std::printf("%-9s %-10s %9.2f %9.2f %9.2f %8.1f%% %10.2f\n", radio_name.c_str(),
                  governor.c_str(), a.cpu_mj.mean() / 1000.0, a.radio_mj.mean() / 1000.0,
                  a.total_mj.mean() / 1000.0, (1.0 - a.cpu_mj.mean() / ondemand_cpu) * 100.0,
                  a.startup_s.mean());
    }
    exp::print_rule(72);
  }

  std::printf("\nExpected shape: VAFS's CPU saving is ~40%% on every radio; radio\n"
              "energy ranks wifi < lte < 3g; 3G's 2 s promotion shows in startup.\n");
  return app.finish();
}
