// F12 — idle-state depth vs governor ranking (extension).
//
// The DVFS-vs-race-to-idle question: deeper idle states make *finishing
// fast and sleeping* cheaper, which erodes part of slow-and-steady's
// advantage. Sweeps the cpuidle strategy (flat WFI, realistic menu,
// oracle) across governors at 720p.
//
// Expected shape: every governor gains from deeper idle; reactive
// governors gain *more* (they idle at high frequency after bursts), so
// the VAFS-vs-ondemand gap narrows a few points — but does not close,
// because the busy-time energy difference (voltage!) remains.
#include <cstdio>
#include <string>
#include <vector>

#include "exp/bench_app.h"

int main(int argc, char** argv) {
  using namespace vafs;

  exp::BenchApp app(argc, argv, "f12", "Idle-state strategy vs governor energy (720p, fair LTE)");

  const std::vector<cpu::CpuidleStrategy> strategies = {
      cpu::CpuidleStrategy::kShallowOnly, cpu::CpuidleStrategy::kMenu,
      cpu::CpuidleStrategy::kOracle};
  const std::vector<std::string> governors = {"ondemand", "interactive", "schedutil", "vafs"};

  core::SessionConfig base;
  base.fixed_rep = 2;
  base.media_duration = app.session_seconds(120);
  base.net = core::NetProfile::kFair;

  exp::ExperimentGrid grid(base);
  std::vector<std::pair<std::string, exp::ExperimentGrid::Mutator>> idle_axis;
  for (const auto strategy : strategies) {
    idle_axis.emplace_back(cpu::cpuidle_strategy_name(strategy),
                           [strategy](core::SessionConfig& c) { c.cpuidle = strategy; });
  }
  grid.axis("cpuidle", std::move(idle_axis)).governors(governors);

  const exp::ResultSet& results = app.run(grid);

  std::printf("%-9s %-12s %10s %10s %9s\n", "cpuidle", "governor", "cpu_J", "vs_ondm",
              "drop_%");
  exp::print_rule(56);

  for (const auto strategy : strategies) {
    const char* idle_name = cpu::cpuidle_strategy_name(strategy);
    const double ondemand_cpu =
        results.agg({{"cpuidle", idle_name}, {"governor", "ondemand"}}).cpu_mj.mean();
    for (const auto& governor : governors) {
      const auto& a = results.agg({{"cpuidle", idle_name}, {"governor", governor}});
      std::printf("%-9s %-12s %10.2f %9.1f%% %9.2f\n", idle_name, governor.c_str(),
                  a.cpu_mj.mean() / 1000.0, (1.0 - a.cpu_mj.mean() / ondemand_cpu) * 100.0,
                  a.drop_pct.mean());
    }
    exp::print_rule(56);
  }
  return app.finish();
}
