// F12 — idle-state depth vs governor ranking (extension).
//
// The DVFS-vs-race-to-idle question: deeper idle states make *finishing
// fast and sleeping* cheaper, which erodes part of slow-and-steady's
// advantage. Sweeps the cpuidle strategy (flat WFI, realistic menu,
// oracle) across governors at 720p.
//
// Expected shape: every governor gains from deeper idle; reactive
// governors gain *more* (they idle at high frequency after bursts), so
// the VAFS-vs-ondemand gap narrows a few points — but does not close,
// because the busy-time energy difference (voltage!) remains.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"

int main() {
  using namespace vafs;

  bench::print_header("F12", "Idle-state strategy vs governor energy (720p, fair LTE)");

  const std::vector<cpu::CpuidleStrategy> strategies = {
      cpu::CpuidleStrategy::kShallowOnly, cpu::CpuidleStrategy::kMenu,
      cpu::CpuidleStrategy::kOracle};
  const std::vector<std::string> governors = {"ondemand", "interactive", "schedutil", "vafs"};

  std::printf("%-9s %-12s %10s %10s %9s\n", "cpuidle", "governor", "cpu_J", "vs_ondm",
              "drop_%");
  bench::print_rule(56);

  for (const auto strategy : strategies) {
    double ondemand_cpu = 0.0;
    for (const auto& governor : governors) {
      core::SessionConfig config;
      config.governor = governor;
      config.fixed_rep = 2;
      config.media_duration = sim::SimTime::seconds(120);
      config.net = core::NetProfile::kFair;
      config.cpuidle = strategy;
      const auto a = bench::run_averaged(config, bench::default_seeds());
      if (governor == "ondemand") ondemand_cpu = a.cpu_mj;
      std::printf("%-9s %-12s %10.2f %9.1f%% %9.2f\n", cpu::cpuidle_strategy_name(strategy),
                  governor.c_str(), a.cpu_mj / 1000.0,
                  (1.0 - a.cpu_mj / ondemand_cpu) * 100.0, a.drop_pct);
    }
    bench::print_rule(56);
  }
  return 0;
}
