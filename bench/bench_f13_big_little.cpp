// F13 — big.LITTLE (extension): does a second, efficient cluster change
// the picture?
//
// Same sessions as T1 with the LITTLE cluster enabled. Kernel governors
// keep decode on the big cluster (static affinity, each cluster's governor
// following its own load); VAFS additionally *places* decode: on LITTLE
// whenever predicted demand — inflated by the 1.7x IPC penalty — fits
// under LITTLE's top OPP with margin.
//
// Expected shape: for kernel governors big.LITTLE only helps a little (the
// network stack moves off big); VAFS-bL moves the decode itself at
// 360p-720p for another ~20-30 % CPU saving, and falls back to big-cluster
// behaviour at 1080p where the LITTLE cluster cannot hold the deadline.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"

int main() {
  using namespace vafs;

  bench::print_header("F13", "big.LITTLE vs single-cluster CPU energy (J), fair LTE, 120 s");

  const std::vector<std::pair<std::size_t, const char*>> reps = {
      {0, "360p"}, {1, "480p"}, {2, "720p"}, {3, "1080p"}};
  const std::vector<std::string> governors = {"ondemand", "schedutil", "vafs"};

  std::printf("%-11s %-10s", "governor", "cluster");
  for (const auto& [rep, name] : reps) std::printf(" %9s", name);
  std::printf("  %s\n", "decode@little(720p)");
  bench::print_rule(86);

  for (const auto& governor : governors) {
    for (const bool big_little : {false, true}) {
      std::printf("%-11s %-10s", governor.c_str(), big_little ? "big.LITTLE" : "big-only");
      std::uint64_t little_frames = 0;
      for (const auto& [rep, name] : reps) {
        core::SessionConfig config;
        config.governor = governor;
        config.fixed_rep = rep;
        config.big_little = big_little;
        config.media_duration = sim::SimTime::seconds(120);
        config.net = core::NetProfile::kFair;
        const auto a = bench::run_averaged(config, bench::default_seeds());
        std::printf(" %9.2f", a.cpu_mj / 1000.0);
        if (rep == 2 && big_little) {
          config.seed = bench::default_seeds().front();
          little_frames = core::run_session(config).decode_frames_little;
        }
      }
      if (big_little) {
        std::printf("  %llu", static_cast<unsigned long long>(little_frames));
      }
      std::printf("\n");
    }
    bench::print_rule(86);
  }

  std::printf("\nExpected shape: VAFS+big.LITTLE is the best cell at every quality up\n"
              "to 720p (decode placed on LITTLE); at 1080p it matches big-only VAFS\n"
              "because the LITTLE cluster cannot meet the frame deadline.\n");
  return 0;
}
