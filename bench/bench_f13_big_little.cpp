// F13 — big.LITTLE (extension): does a second, efficient cluster change
// the picture?
//
// Same sessions as T1 with the LITTLE cluster enabled. Kernel governors
// keep decode on the big cluster (static affinity, each cluster's governor
// following its own load); VAFS additionally *places* decode: on LITTLE
// whenever predicted demand — inflated by the 1.7x IPC penalty — fits
// under LITTLE's top OPP with margin.
//
// Expected shape: for kernel governors big.LITTLE only helps a little (the
// network stack moves off big); VAFS-bL moves the decode itself at
// 360p-720p for another ~20-30 % CPU saving, and falls back to big-cluster
// behaviour at 1080p where the LITTLE cluster cannot hold the deadline.
#include <cstdio>
#include <string>
#include <vector>

#include "exp/bench_app.h"

int main(int argc, char** argv) {
  using namespace vafs;

  exp::BenchApp app(argc, argv, "f13",
                    "big.LITTLE vs single-cluster CPU energy (J), fair LTE, 120 s");

  const std::vector<std::pair<std::size_t, std::string>> reps = {
      {0, "360p"}, {1, "480p"}, {2, "720p"}, {3, "1080p"}};
  const std::vector<std::string> governors = {"ondemand", "schedutil", "vafs"};

  core::SessionConfig base;
  base.media_duration = app.session_seconds(120);
  base.net = core::NetProfile::kFair;

  exp::ExperimentGrid grid(base);
  grid.governors(governors)
      .axis("cluster", {{"big-only", [](core::SessionConfig& c) { c.big_little = false; }},
                        {"big.LITTLE", [](core::SessionConfig& c) { c.big_little = true; }}})
      .reps(reps);

  const exp::ResultSet& results = app.run(grid);

  std::printf("%-11s %-10s", "governor", "cluster");
  for (const auto& [rep, name] : reps) std::printf(" %9s", name.c_str());
  std::printf("  %s\n", "decode@little(720p)");
  exp::print_rule(86);

  for (const auto& governor : governors) {
    for (const std::string cluster : {"big-only", "big.LITTLE"}) {
      std::printf("%-11s %-10s", governor.c_str(), cluster.c_str());
      for (const auto& [rep, name] : reps) {
        const auto& a =
            results.agg({{"governor", governor}, {"cluster", cluster}, {"rep", name}});
        std::printf(" %9.2f", a.cpu_mj.mean() / 1000.0);
      }
      if (cluster == "big.LITTLE") {
        const auto& sr =
            results.at({{"governor", governor}, {"cluster", cluster}, {"rep", "720p"}});
        std::printf("  %llu",
                    static_cast<unsigned long long>(sr.run0().decode_frames_little));
      }
      std::printf("\n");
    }
    exp::print_rule(86);
  }

  std::printf("\nExpected shape: VAFS+big.LITTLE is the best cell at every quality up\n"
              "to 720p (decode placed on LITTLE); at 1080p it matches big-only VAFS\n"
              "because the LITTLE cluster cannot meet the frame deadline.\n");
  return app.finish();
}
