// F14 — device population (extension): how much of a governor's saving
// survives across an installed base instead of one phone?
//
// Two sweeps:
//   1. governor × device class — every registry profile (1-3 clusters,
//      flagship to budget) under the same 720p/fair-LTE workload. This is
//      the per-device-class energy/QoE table: where the paper's single
//      device sits in the spread, and which classes VAFS helps most.
//   2. governor × population mix — sessions draw their device per seed
//      from a weighted mix ("global", "premium", "budget"), the fleet
//      question: expected energy per session over an installed base.
//
// Expected shape: VAFS's relative saving is largest on multi-cluster
// devices (it parks decode on an efficient cluster), smallest on the
// single-cluster handheld; mix means interpolate their member classes by
// weight, so "premium" sits closest to flagship.
//
// Sweep 1 also carries a "tuned" governor row: VAFS with the per-cell
// winners of the closed-loop search (bench_f15's tuned_configs.json,
// checked in under baselines/; --tuned overrides, --tuned none disables).
// A device class without a tuned cell runs stock VAFS, so the row is
// always comparable column-for-column.
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "exp/bench_app.h"
#include "tune/tuned_configs.h"

int main(int argc, char** argv) {
  using namespace vafs;

  exp::BenchApp app(argc, argv, "f14",
                    "energy/QoE per governor x device class and population mix, 720p fair LTE");

  const std::vector<std::string> governors = {"ondemand", "schedutil", "conservative", "vafs"};
  const std::vector<std::string>& devices = device::profile_names();
  const std::vector<std::string>& mixes = device::PopulationMix::mix_names();

  core::SessionConfig base;
  base.fixed_rep = 2;  // 720p
  base.media_duration = app.session_seconds(120);
  base.net = core::NetProfile::kFair;

  // The tuned-config artifact for the "tuned" variant.
  tune::TunedConfigs tuned;
  const bool want_tuned = app.options().tuned != "none";
  if (want_tuned) {
    const std::string path =
        app.options().tuned.empty() ? VAFS_TUNED_CONFIGS_PATH : app.options().tuned;
    std::string error;
    if (!tune::TunedConfigs::load_file(path, &tuned, &error)) {
      std::fprintf(stderr, "bench_f14: %s (pass --tuned none to skip the tuned variant)\n",
                   error.c_str());
      return 2;
    }
  }
  const char* net_label = core::net_profile_name(base.net);

  // Sweep 1: every registered device profile. Devices form the outer axis
  // so the "tuned" governor mutator runs after the device mutator and can
  // look up its (profile, net) cell.
  exp::ExperimentGrid device_grid(base);
  device_grid.devices(devices);
  std::vector<std::string> gov_rows = governors;
  std::vector<std::pair<std::string, exp::ExperimentGrid::Mutator>> gov_values;
  for (const auto& name : governors) {
    gov_values.emplace_back(name, [name](core::SessionConfig& c) { c.governor = name; });
  }
  if (want_tuned) {
    gov_rows.push_back("tuned");
    gov_values.emplace_back("tuned", [&tuned, net_label](core::SessionConfig& c) {
      c.governor = "vafs";
      if (const tune::TunedCell* cell = tuned.find(c.profile.name, net_label)) cell->apply(c);
    });
  }
  device_grid.axis("governor", std::move(gov_values));
  const exp::ResultSet& by_device = app.run(device_grid, "devices");

  std::printf("CPU energy (J) by device class:\n");
  std::printf("%-13s", "governor");
  for (const auto& d : devices) std::printf(" %10s", d.c_str());
  std::printf("\n");
  exp::print_rule(13 + 11 * devices.size());
  for (const auto& governor : gov_rows) {
    std::printf("%-13s", governor.c_str());
    for (const auto& d : devices) {
      const auto& a = by_device.agg({{"governor", governor}, {"device", d}});
      std::printf(" %10.2f", a.cpu_mj.mean() / 1000.0);
    }
    std::printf("\n");
  }

  std::printf("\nQoE (frame-drop %% / rebuffer s) by device class:\n");
  std::printf("%-13s", "governor");
  for (const auto& d : devices) std::printf(" %10s", d.c_str());
  std::printf("\n");
  exp::print_rule(13 + 11 * devices.size());
  for (const auto& governor : gov_rows) {
    std::printf("%-13s", governor.c_str());
    for (const auto& d : devices) {
      const auto& a = by_device.agg({{"governor", governor}, {"device", d}});
      std::printf(" %5.2f/%4.1f", a.drop_pct.mean(), a.rebuffer_s.mean());
    }
    std::printf("\n");
  }

  if (want_tuned) {
    std::printf("\nTuned vs stock VAFS (total device energy, same QoE floors as F15):\n");
    exp::Json tuned_json = exp::Json::array();
    for (const auto& d : devices) {
      const tune::TunedCell* cell = tuned.find(d, net_label);
      if (cell == nullptr) continue;
      const auto& stock = by_device.agg({{"governor", "vafs"}, {"device", d}});
      const auto& opt = by_device.agg({{"governor", "tuned"}, {"device", d}});
      const double stock_j = stock.total_mj.mean() / 1000.0;
      const double opt_j = opt.total_mj.mean() / 1000.0;
      const double saving = stock_j > 0.0 ? 100.0 * (stock_j - opt_j) / stock_j : 0.0;
      std::printf("  %-10s %7.2f J -> %7.2f J  (%+.1f%%)  drop %4.2f%% -> %4.2f%%%s\n",
                  d.c_str(), stock_j, opt_j, -saving, stock.drop_pct.mean(),
                  opt.drop_pct.mean(), cell->feasible ? "" : "  [cell infeasible in search]");
      exp::Json row = exp::Json::object();
      row.set("device", d);
      row.set("net", net_label);
      row.set("feasible", cell->feasible);
      row.set("stock_total_mj", stock.total_mj.mean());
      row.set("tuned_total_mj", opt.total_mj.mean());
      row.set("stock_drop_pct", stock.drop_pct.mean());
      row.set("tuned_drop_pct", opt.drop_pct.mean());
      exp::Json params = exp::Json::object();
      for (const auto& [name, value] : cell->params) params.set(name, value);
      row.set("params", std::move(params));
      tuned_json.push(std::move(row));
    }
    app.extra().set("tuned_cells", std::move(tuned_json));
  }

  // Sweep 2: weighted population mixes; each (scenario, seed) cell draws
  // its device profile by a pure hash of the seed.
  exp::ExperimentGrid mix_grid(base);
  std::vector<std::pair<std::string, exp::ExperimentGrid::Mutator>> mix_values;
  for (const auto& name : mixes) {
    mix_values.emplace_back(name, [mix = device::PopulationMix::named(name)](
                                      core::SessionConfig& c) { c.population = mix; });
  }
  mix_grid.governors(governors).axis("mix", std::move(mix_values));
  const exp::ResultSet& by_mix = app.run(mix_grid, "mixes");

  std::printf("\nPopulation mixes: total device energy (J) per session, mean over the mix\n");
  std::printf("%-13s", "governor");
  for (const auto& m : mixes) std::printf(" %10s", m.c_str());
  std::printf("   drawn devices (all mixes)\n");
  exp::print_rule(13 + 11 * mixes.size() + 30);
  for (const auto& governor : governors) {
    std::printf("%-13s", governor.c_str());
    std::map<std::string, int> drawn;
    for (const auto& m : mixes) {
      const auto& sr = by_mix.at({{"governor", governor}, {"mix", m}});
      std::printf(" %10.2f", sr.agg.total_mj.mean() / 1000.0);
      for (const auto& run : sr.runs) {
        if (!run.device.empty()) ++drawn[run.device];
      }
    }
    std::printf("  ");
    for (const auto& [name, count] : drawn) std::printf(" %s:%d", name.c_str(), count);
    std::printf("\n");
  }

  std::printf("\nExpected shape: VAFS saves most on multi-cluster devices (flagship,\n"
              "midrange, budget) where it parks decode on an efficient cluster; the\n"
              "single-cluster handheld and default bound its saving from below. Mix\n"
              "columns are weight-blends of their member classes.\n");
  return app.finish();
}
