// F14 — device population (extension): how much of a governor's saving
// survives across an installed base instead of one phone?
//
// Two sweeps:
//   1. governor × device class — every registry profile (1-3 clusters,
//      flagship to budget) under the same 720p/fair-LTE workload. This is
//      the per-device-class energy/QoE table: where the paper's single
//      device sits in the spread, and which classes VAFS helps most.
//   2. governor × population mix — sessions draw their device per seed
//      from a weighted mix ("global", "premium", "budget"), the fleet
//      question: expected energy per session over an installed base.
//
// Expected shape: VAFS's relative saving is largest on multi-cluster
// devices (it parks decode on an efficient cluster), smallest on the
// single-cluster handheld; mix means interpolate their member classes by
// weight, so "premium" sits closest to flagship.
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "exp/bench_app.h"

int main(int argc, char** argv) {
  using namespace vafs;

  exp::BenchApp app(argc, argv, "f14",
                    "energy/QoE per governor x device class and population mix, 720p fair LTE");

  const std::vector<std::string> governors = {"ondemand", "schedutil", "conservative", "vafs"};
  const std::vector<std::string>& devices = device::profile_names();
  const std::vector<std::string>& mixes = device::PopulationMix::mix_names();

  core::SessionConfig base;
  base.fixed_rep = 2;  // 720p
  base.media_duration = app.session_seconds(120);
  base.net = core::NetProfile::kFair;

  // Sweep 1: every registered device profile.
  exp::ExperimentGrid device_grid(base);
  device_grid.governors(governors).devices(devices);
  const exp::ResultSet& by_device = app.run(device_grid, "devices");

  std::printf("CPU energy (J) by device class:\n");
  std::printf("%-13s", "governor");
  for (const auto& d : devices) std::printf(" %10s", d.c_str());
  std::printf("\n");
  exp::print_rule(13 + 11 * devices.size());
  for (const auto& governor : governors) {
    std::printf("%-13s", governor.c_str());
    for (const auto& d : devices) {
      const auto& a = by_device.agg({{"governor", governor}, {"device", d}});
      std::printf(" %10.2f", a.cpu_mj.mean() / 1000.0);
    }
    std::printf("\n");
  }

  std::printf("\nQoE (frame-drop %% / rebuffer s) by device class:\n");
  std::printf("%-13s", "governor");
  for (const auto& d : devices) std::printf(" %10s", d.c_str());
  std::printf("\n");
  exp::print_rule(13 + 11 * devices.size());
  for (const auto& governor : governors) {
    std::printf("%-13s", governor.c_str());
    for (const auto& d : devices) {
      const auto& a = by_device.agg({{"governor", governor}, {"device", d}});
      std::printf(" %5.2f/%4.1f", a.drop_pct.mean(), a.rebuffer_s.mean());
    }
    std::printf("\n");
  }

  // Sweep 2: weighted population mixes; each (scenario, seed) cell draws
  // its device profile by a pure hash of the seed.
  exp::ExperimentGrid mix_grid(base);
  std::vector<std::pair<std::string, exp::ExperimentGrid::Mutator>> mix_values;
  for (const auto& name : mixes) {
    mix_values.emplace_back(name, [mix = device::PopulationMix::named(name)](
                                      core::SessionConfig& c) { c.population = mix; });
  }
  mix_grid.governors(governors).axis("mix", std::move(mix_values));
  const exp::ResultSet& by_mix = app.run(mix_grid, "mixes");

  std::printf("\nPopulation mixes: total device energy (J) per session, mean over the mix\n");
  std::printf("%-13s", "governor");
  for (const auto& m : mixes) std::printf(" %10s", m.c_str());
  std::printf("   drawn devices (all mixes)\n");
  exp::print_rule(13 + 11 * mixes.size() + 30);
  for (const auto& governor : governors) {
    std::printf("%-13s", governor.c_str());
    std::map<std::string, int> drawn;
    for (const auto& m : mixes) {
      const auto& sr = by_mix.at({{"governor", governor}, {"mix", m}});
      std::printf(" %10.2f", sr.agg.total_mj.mean() / 1000.0);
      for (const auto& run : sr.runs) {
        if (!run.device.empty()) ++drawn[run.device];
      }
    }
    std::printf("  ");
    for (const auto& [name, count] : drawn) std::printf(" %s:%d", name.c_str(), count);
    std::printf("\n");
  }

  std::printf("\nExpected shape: VAFS saves most on multi-cluster devices (flagship,\n"
              "midrange, budget) where it parks decode on an efficient cluster; the\n"
              "single-cluster handheld and default bound its saving from below. Mix\n"
              "columns are weight-blends of their member classes.\n");
  return app.finish();
}
