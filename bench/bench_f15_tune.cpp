// F15: closed-loop governor auto-tuning on the fleet runner (src/tune).
//
// Tunes the VAFS parameter surface for energy subject to QoE constraints,
// independently per (device profile × network class) cell across the full
// 5-profile registry, by successive halving with seed-count escalation
// plus compass refinement (EXPERIMENTS.md F15). Emits:
//
//   tuned_configs.json          the per-cell shipping configs
//   BENCH_f15.sensitivity.csv   per-dimension landscape through each winner
//   BENCH_f15.json              search summary (rounds, sessions, digest)
//
// Determinism: the whole search is a pure function of --seed; artifacts
// are byte-identical at any --jobs/--batch/--shards setting, and a
// SIGTERM-killed run resumed with --resume reproduces them exactly
// (exit 75 = incomplete but resumable, like bench_fleet).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "device/profile.h"
#include "exp/json.h"
#include "exp/options.h"
#include "tune/tuner.h"

namespace {

std::atomic<bool> g_stop{false};

void handle_stop_signal(int) { g_stop.store(true, std::memory_order_relaxed); }

}  // namespace

int main(int argc, char** argv) {
  using namespace vafs;

  exp::BenchOptions options;
  std::string error;
  const std::string usage =
      exp::bench_usage("f15") +
      "tuner notes:\n"
      "  --seed N           the search seed (candidate sampling; default 101)\n"
      "  --seed-count N     full evaluation-seed budget per candidate\n"
      "                     (escalation schedule = N/4, N/2, N; default 8)\n"
      "  --checkpoint-dir D durable search state + in-flight round manifests\n"
      "  --resume           resume a killed search from D (byte-identical artifacts)\n"
      "  --out-csv P        sensitivity landscape (default BENCH_f15.sensitivity.csv)\n"
      "  tuned_configs.json is always written next to the artifacts on success\n";
  if (!exp::parse_bench_args(argc, argv, &options, &error)) {
    std::fprintf(stderr, "bench_f15: %s\n%s", error.c_str(), usage.c_str());
    return 2;
  }
  if (options.help) {
    std::printf("%s", usage.c_str());
    return 0;
  }

  std::signal(SIGTERM, handle_stop_signal);
  std::signal(SIGINT, handle_stop_signal);

  // The tunable surface: the VAFS knobs the paper hand-sets (F6 probes
  // them pointwise; this searches the grid). --quick shrinks both the
  // space and the cell list to a smoke budget.
  tune::ParamSpace space;
  if (options.quick) {
    space.dim("safety_margin", 0.10, 0.30, 0.10)
        .dim("quantile", 0.85, 0.95, 0.05);
  } else {
    space.dim("safety_margin", 0.05, 0.35, 0.05)
        .dim("predictor_window", 8, 40, 8)
        .dim("quantile", 0.80, 0.95, 0.05)
        .dim("boost_ms", 250, 1000, 250)
        .dim("cold_start_fraction", 0.4, 0.8, 0.2);
  }

  // Tuning cells: the full device registry × {fair, poor} networks.
  std::vector<tune::TuneContext> contexts;
  std::vector<std::string> profiles = device::profile_names();
  if (options.quick && profiles.size() > 2) profiles.resize(2);
  const std::vector<std::pair<std::string, core::NetProfile>> nets =
      options.quick ? std::vector<std::pair<std::string, core::NetProfile>>{
                          {"fair", core::NetProfile::kFair}}
                    : std::vector<std::pair<std::string, core::NetProfile>>{
                          {"fair", core::NetProfile::kFair}, {"poor", core::NetProfile::kPoor}};
  for (const std::string& profile : profiles) {
    for (const auto& [net_label, net] : nets) {
      tune::TuneContext ctx;
      ctx.name = profile + "/" + net_label;
      ctx.profile = profile;
      ctx.net_label = net_label;
      ctx.net = net;
      ctx.governor = "vafs";
      // Poor networks cannot hold the fair-network stall budget at 720p;
      // the floor is the paper's "imperceptible rebuffering" threshold.
      ctx.constraints.max_rebuffer_ratio = net == core::NetProfile::kPoor ? 0.05 : 0.01;
      ctx.constraints.max_drop_pct = 2.0;
      ctx.constraints.max_startup_s = 5.0;
      contexts.push_back(std::move(ctx));
    }
  }

  tune::TunerOptions topts;
  topts.search_seed = options.seeds.empty() ? 101 : options.seeds.front();
  const int full_seeds =
      options.seed_count > 0 ? static_cast<int>(options.seed_count) : (options.quick ? 2 : 8);
  if (options.quick) {
    topts.seed_schedule = {std::max(1, full_seeds / 2), full_seeds};
    topts.initial_candidates = 8;
    topts.refine_passes = 2;
  } else {
    topts.seed_schedule = {std::max(1, full_seeds / 4), std::max(1, full_seeds / 2), full_seeds};
    topts.initial_candidates = 16;
    topts.refine_passes = 4;
  }
  topts.base.fixed_rep = 2;  // 720p
  topts.base.media_duration = sim::SimTime::seconds(options.quick ? 20 : 60);
  topts.base.downloader.attempt_timeout = sim::SimTime::seconds(6);
  topts.base.downloader.max_attempts = 4;
  topts.jobs = options.effective_jobs();
  topts.batch = options.batch;
  if (options.shards > 0) topts.shard_size = static_cast<std::size_t>(options.shards);
  topts.checkpoint_dir = options.checkpoint_dir;
  topts.resume = options.resume;
  topts.keep_going = [] { return !g_stop.load(std::memory_order_relaxed); };

  const auto t0 = std::chrono::steady_clock::now();
  const tune::TuneReport report = tune::run_tuner(space, contexts, topts);
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  if (!report.ok()) {
    std::fprintf(stderr, "bench_f15: %s\n", report.error.c_str());
    return 1;
  }
  if (report.stopped) {
    std::fprintf(stderr,
                 "bench_f15: stopped by signal after %llu rounds (%llu sessions); "
                 "state written, rerun with --resume\n",
                 static_cast<unsigned long long>(report.rounds),
                 static_cast<unsigned long long>(report.sessions));
    return 75;  // EX_TEMPFAIL: incomplete but resumable
  }

  std::printf("f15: tuned %zu cells in %llu rounds / %llu sessions (%llu replayed rounds)\n",
              report.cells.size(), static_cast<unsigned long long>(report.rounds),
              static_cast<unsigned long long>(report.sessions),
              static_cast<unsigned long long>(report.rounds_replayed));
  for (const tune::CellResult& cell : report.cells) {
    std::printf("  %-18s %s energy %.1f mJ  stall %.4f  %s\n", cell.ctx.name.c_str(),
                cell.best_score.feasible ? "ok " : "INFEASIBLE", cell.best_score.energy_mj,
                cell.best_score.rebuffer_ratio, space.format(cell.best).c_str());
  }

  const auto write_text = [](const std::string& path, const std::string& body) {
    std::ofstream out(path, std::ios::trunc | std::ios::binary);
    out << body;
    if (!out) {
      std::fprintf(stderr, "bench_f15: cannot write %s\n", path.c_str());
      return false;
    }
    std::printf("f15: wrote %s\n", path.c_str());
    return true;
  };

  const exp::Json tuned = tune::tuned_configs_json(space, contexts, topts, report);
  if (!write_text("tuned_configs.json", tuned.dump() + "\n")) return 1;

  if (options.out_csv != "none") {
    const std::string path = options.out_csv.empty() ? "BENCH_f15.sensitivity.csv"
                                                     : options.out_csv;
    if (!write_text(path, tune::sensitivity_csv(space, report))) return 1;
  }

  if (options.out_json != "none") {
    exp::Json root = exp::Json::object();
    root.set("bench", "f15");
    root.set("title", "Closed-loop governor auto-tuning (energy min s.t. QoE floors)");
    root.set("schema_version", 1);
    root.set("elapsed_s", elapsed_s);
    root.set("sessions_per_sec",
             elapsed_s > 0 ? static_cast<double>(report.sessions) / elapsed_s : 0.0);
    root.set("tuned", tune::tuned_configs_json(space, contexts, topts, report));
    const std::string path = options.out_json.empty() ? "BENCH_f15.json" : options.out_json;
    if (!write_text(path, root.dump() + "\n")) return 1;
  }
  return 0;
}
