// F1 — CPU power model validation curve.
//
// Prints per-OPP busy power, idle power and energy-per-cycle for the
// default mobile big core. The shape (superlinear power, an energy-per-
// cycle sweet spot at low-mid OPPs) is what makes deadline-aware frequency
// selection save energy; this figure documents the model those results
// rest on. No sessions run here — the whole curve lands in the artifact's
// "extra" payload.
#include <algorithm>
#include <cstdio>

#include "cpu/opp.h"
#include "cpu/power_model.h"
#include "exp/bench_app.h"

int main(int argc, char** argv) {
  using namespace vafs;

  exp::BenchApp app(argc, argv, "f1", "CPU power vs frequency (model validation)");

  const cpu::OppTable table = cpu::OppTable::mobile_big_core();
  const cpu::CpuPowerModel model;

  std::printf("%10s %10s %12s %16s %14s\n", "freq_mhz", "volt_v", "busy_mw", "energy_pj/cycle",
              "rel_to_min");
  exp::print_rule();

  double min_pj = 1e300;
  for (std::size_t i = 0; i < table.size(); ++i) {
    const double pj = model.busy_mw(table.at(i)) / (table.at(i).freq_mhz() * 1e6) * 1e9;
    min_pj = std::min(min_pj, pj);
  }
  exp::Json curve = exp::Json::array();
  for (std::size_t i = 0; i < table.size(); ++i) {
    const auto& opp = table.at(i);
    const double mw = model.busy_mw(opp);
    const double pj_per_cycle = mw / (opp.freq_mhz() * 1e6) * 1e9;
    std::printf("%10.0f %10.3f %12.1f %16.2f %13.2fx\n", opp.freq_mhz(), opp.volt(), mw,
                pj_per_cycle, pj_per_cycle / min_pj);

    exp::Json row = exp::Json::object();
    row.set("freq_mhz", opp.freq_mhz());
    row.set("volt_v", opp.volt());
    row.set("busy_mw", mw);
    row.set("energy_pj_per_cycle", pj_per_cycle);
    row.set("rel_to_min", pj_per_cycle / min_pj);
    curve.push(std::move(row));
  }
  exp::print_rule();
  std::printf("idle power: %.1f mW   transition energy: %.1f uJ\n", model.idle_mw(),
              model.transition_uj());
  std::printf("\nExpected shape: busy power superlinear in frequency; energy/cycle has a\n"
              "sweet spot at low-mid OPPs and grows ~2x by the top OPP (voltage ramp).\n");

  app.extra().set("power_curve", std::move(curve));
  app.extra().set("idle_mw", model.idle_mw());
  app.extra().set("transition_uj", model.transition_uj());
  return app.finish();
}
