// F2 — session timeline: frequency, CPU power and buffer level over time,
// ondemand vs VAFS, one 60-second 720p session on a fair LTE draw.
//
// Prints a downsampled CSV series (500 ms) for plotting plus side-by-side
// summary statistics. Expected shape: ondemand's frequency thrashes
// between min and max on every download burst and decode group; VAFS sits
// flat at the minimal feasible OPP with occasional one-step excursions.
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "exp/bench_app.h"
#include "trace/csv.h"
#include "trace/recorder.h"

int main(int argc, char** argv) {
  using namespace vafs;

  exp::BenchApp app(argc, argv, "f2", "Timeline: frequency / power / buffer, ondemand vs VAFS");

  const std::vector<std::string> governors = {"ondemand", "vafs"};

  core::SessionConfig base;
  base.fixed_rep = 2;
  base.media_duration = app.session_seconds(60);
  base.net = core::NetProfile::kFair;

  // One recorder per (scenario, seed) task; the printed series uses each
  // governor's first seed.
  const std::size_t nseeds = app.seeds().size();
  std::vector<trace::TimelineRecorder> recorders(governors.size() * nseeds,
                                                 trace::TimelineRecorder(sim::SimTime::millis(100)));
  const auto hooks = [&recorders, nseeds](const exp::ScenarioSpec&, std::size_t scenario_index,
                                          std::size_t seed_index) {
    trace::TimelineRecorder* recorder = &recorders[scenario_index * nseeds + seed_index];
    core::SessionHooks h;
    h.on_ready = [recorder](core::SessionLive& live) { recorder->attach(live); };
    return h;
  };

  const exp::ResultSet& results =
      app.run(exp::ExperimentGrid(base).governors(governors), "main", hooks);

  for (std::size_t g = 0; g < governors.size(); ++g) {
    const std::string& governor = governors[g];
    const auto& sr = results.at({{"governor", governor}});
    const trace::TimelineRecorder& recorder = recorders[g * nseeds];

    std::printf("\n### %s — CSV series (500 ms samples, seed %llu) ###\n", governor.c_str(),
                static_cast<unsigned long long>(app.seeds().front()));
    {
      trace::CsvWriter csv(std::cout, {"t_s", "freq_mhz", "cpu_mw", "buffer_s", "radio_state",
                                       "player_state"});
      const auto& samples = recorder.samples();
      for (std::size_t i = 0; i < samples.size(); i += 5) {  // downsample 100ms -> 500ms
        const auto& s = samples[i];
        csv.row()
            .cell(s.at.as_seconds_f())
            .cell(static_cast<double>(s.freq_khz) / 1000.0)
            .cell(s.cpu_power_mw)
            .cell(s.buffer_seconds)
            .cell(static_cast<std::int64_t>(s.radio_state))
            .cell(static_cast<std::int64_t>(s.player_state));
      }
    }

    // Frequency flip count from the 100 ms series — the thrash signature.
    std::uint32_t last = 0;
    int flips = 0;
    double mw_sum = 0;
    for (const auto& s : recorder.samples()) {
      if (last != 0 && s.freq_khz != last) ++flips;
      last = s.freq_khz;
      mw_sum += s.cpu_power_mw;
    }
    const auto& r = sr.run0();
    std::printf("summary[%s]: cpu=%.2f J, mean_cpu=%.0f mW, freq-changes(100ms grid)=%d, "
                "transitions=%llu, drops=%.2f%%\n",
                governor.c_str(), r.energy.cpu_mj / 1000.0,
                mw_sum / static_cast<double>(recorder.samples().size()), flips,
                static_cast<unsigned long long>(r.freq_transitions),
                r.qoe.drop_ratio() * 100.0);
  }
  return app.finish();
}
