// F2 — session timeline: frequency, CPU power and buffer level over time,
// ondemand vs VAFS, one 60-second 720p session on a fair LTE draw.
//
// Prints a downsampled CSV series (500 ms) for plotting plus side-by-side
// summary statistics. Expected shape: ondemand's frequency thrashes
// between min and max on every download burst and decode group; VAFS sits
// flat at the minimal feasible OPP with occasional one-step excursions.
#include <cstdio>
#include <iostream>
#include <string>

#include "bench_util.h"
#include "trace/csv.h"
#include "trace/recorder.h"

int main() {
  using namespace vafs;

  bench::print_header("F2", "Timeline: frequency / power / buffer, ondemand vs VAFS");

  for (const std::string governor : {"ondemand", "vafs"}) {
    core::SessionConfig config;
    config.governor = governor;
    config.fixed_rep = 2;
    config.media_duration = sim::SimTime::seconds(60);
    config.net = core::NetProfile::kFair;
    config.seed = 101;

    trace::TimelineRecorder recorder(sim::SimTime::millis(100));
    core::SessionHooks hooks;
    hooks.on_ready = [&recorder](core::SessionLive& live) { recorder.attach(live); };
    const auto result = core::run_session(config, hooks);

    std::printf("\n### %s — CSV series (500 ms samples) ###\n", governor.c_str());
    {
      trace::CsvWriter csv(std::cout, {"t_s", "freq_mhz", "cpu_mw", "buffer_s", "radio_state",
                                       "player_state"});
      const auto& samples = recorder.samples();
      for (std::size_t i = 0; i < samples.size(); i += 5) {  // downsample 100ms -> 500ms
        const auto& s = samples[i];
        csv.row()
            .cell(s.at.as_seconds_f())
            .cell(static_cast<double>(s.freq_khz) / 1000.0)
            .cell(s.cpu_power_mw)
            .cell(s.buffer_seconds)
            .cell(static_cast<std::int64_t>(s.radio_state))
            .cell(static_cast<std::int64_t>(s.player_state));
      }
    }

    // Frequency flip count from the 100 ms series — the thrash signature.
    std::uint32_t last = 0;
    int flips = 0;
    double mw_sum = 0;
    for (const auto& s : recorder.samples()) {
      if (last != 0 && s.freq_khz != last) ++flips;
      last = s.freq_khz;
      mw_sum += s.cpu_power_mw;
    }
    std::printf("summary[%s]: cpu=%.2f J, mean_cpu=%.0f mW, freq-changes(100ms grid)=%d, "
                "transitions=%llu, drops=%.2f%%\n",
                governor.c_str(), result.energy.cpu_mj / 1000.0,
                mw_sum / static_cast<double>(recorder.samples().size()), flips,
                static_cast<unsigned long long>(result.freq_transitions),
                result.qoe.drop_ratio() * 100.0);
  }
  return 0;
}
