// F2 — session timeline: frequency, CPU power and buffer level over time,
// ondemand vs VAFS, one 60-second 720p session on a fair LTE draw.
//
// Each run carries a full-ring obs::Tracer; the first seed of each
// governor is exported as a timeline CSV (tools/plot_timeline.py) and a
// Chrome trace JSON (load in Perfetto / chrome://tracing). Expected shape:
// ondemand's frequency thrashes between min and max on every download
// burst and decode group; VAFS sits flat at the minimal feasible OPP with
// occasional one-step excursions.
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "exp/bench_app.h"
#include "obs/export.h"
#include "obs/timeline.h"
#include "obs/trace.h"

int main(int argc, char** argv) {
  using namespace vafs;

  exp::BenchApp app(argc, argv, "f2", "Timeline: frequency / power / buffer, ondemand vs VAFS");

  const std::vector<std::string> governors = {"ondemand", "vafs"};

  core::SessionConfig base;
  base.fixed_rep = 2;
  base.media_duration = app.session_seconds(60);
  base.net = core::NetProfile::kFair;

  // One full-ring tracer per (scenario, seed) task; the exported files use
  // each governor's first seed. Hooks that provide a tracer suppress the
  // engine's own digest tracer, so digests in the artifacts come from
  // these rings.
  const std::size_t nseeds = app.seeds().size();
  std::vector<std::unique_ptr<obs::Tracer>> tracers;
  tracers.reserve(governors.size() * nseeds);
  for (std::size_t i = 0; i < governors.size() * nseeds; ++i) {
    tracers.push_back(std::make_unique<obs::Tracer>());
  }
  const auto hooks = [&tracers, nseeds](const exp::ScenarioSpec&, std::size_t scenario_index,
                                        std::size_t seed_index) {
    core::SessionHooks h;
    h.tracer = tracers[scenario_index * nseeds + seed_index].get();
    return h;
  };

  const exp::ResultSet& results =
      app.run(exp::ExperimentGrid(base).governors(governors), "main", hooks);

  for (std::size_t g = 0; g < governors.size(); ++g) {
    const std::string& governor = governors[g];
    const auto& sr = results.at({{"governor", governor}});
    const obs::Tracer& tracer = *tracers[g * nseeds];

    const std::string csv_path = "BENCH_f2." + governor + ".timeline.csv";
    {
      std::ofstream out(csv_path, std::ios::trunc);
      if (!out) {
        std::fprintf(stderr, "[f2] cannot write %s\n", csv_path.c_str());
        return 1;
      }
      obs::write_timeline_csv(out, tracer.timeline());
    }
    const std::string trace_path = "BENCH_f2." + governor + ".trace.json";
    {
      std::ofstream out(trace_path, std::ios::trunc);
      if (!out) {
        std::fprintf(stderr, "[f2] cannot write %s\n", trace_path.c_str());
        return 1;
      }
      obs::write_chrome_trace(out, tracer, "vafs f2 " + governor);
    }
    std::printf("wrote %s + %s (%llu events, digest %s)\n", csv_path.c_str(), trace_path.c_str(),
                static_cast<unsigned long long>(tracer.recorded()),
                obs::digest_hex(tracer.digest()).c_str());

    // Summary from the event-driven series: every frequency transition is a
    // sample, so the flip count is exact instead of a 100 ms-grid estimate.
    const obs::Series& freq = tracer.timeline().at(obs::SeriesId::kFreqKhz);
    std::uint64_t flips = 0;
    double last = 0.0;
    for (const auto& s : freq.samples()) {
      if (last != 0.0 && s.value != last) ++flips;
      last = s.value;
    }
    const auto& r = sr.run0();
    const double wall_s = r.wall.as_seconds_f();
    std::printf("summary[%s]: cpu=%.2f J, mean_cpu=%.0f mW, freq-changes=%llu, "
                "transitions=%llu, drops=%.2f%%\n",
                governor.c_str(), r.energy.cpu_mj / 1000.0,
                wall_s > 0.0 ? r.energy.cpu_mj / wall_s : 0.0,
                static_cast<unsigned long long>(flips),
                static_cast<unsigned long long>(r.freq_transitions),
                r.qoe.drop_ratio() * 100.0);
  }
  return app.finish();
}
