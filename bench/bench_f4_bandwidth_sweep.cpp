// F4 — energy savings vs network condition.
//
// 720p sessions across the four LTE profiles. Expected shape: VAFS's CPU
// saving vs ondemand holds across profiles but is larger where downloads
// are long (poor network keeps the reactive governors bursting at max for
// longer), while absolute radio energy grows as the network degrades.
#include <cstdio>
#include <vector>

#include "bench_util.h"

int main() {
  using namespace vafs;

  bench::print_header("F4", "Energy vs network bandwidth profile (720p, fixed ABR)");

  const std::vector<core::NetProfile> profiles = {
      core::NetProfile::kPoor, core::NetProfile::kFair, core::NetProfile::kGood,
      core::NetProfile::kExcellent};
  const std::vector<std::string> governors = {"ondemand", "interactive", "schedutil", "vafs"};

  std::printf("%-11s %-12s %10s %10s %10s %9s %8s\n", "profile", "governor", "cpu_J",
              "radio_J", "total_J", "vs_ondm", "drop_%");
  bench::print_rule(78);

  for (const auto profile : profiles) {
    double ondemand_cpu = 0.0;
    for (const auto& governor : governors) {
      core::SessionConfig config;
      config.governor = governor;
      config.fixed_rep = 2;
      config.media_duration = sim::SimTime::seconds(120);
      config.net = profile;
      const auto a = bench::run_averaged(config, bench::default_seeds());
      if (governor == "ondemand") ondemand_cpu = a.cpu_mj;
      const double saving = (1.0 - a.cpu_mj / ondemand_cpu) * 100.0;
      std::printf("%-11s %-12s %10.2f %10.2f %10.2f %8.1f%% %8.2f\n",
                  core::net_profile_name(profile), governor.c_str(), a.cpu_mj / 1000.0,
                  a.radio_mj / 1000.0, a.total_mj / 1000.0, saving, a.drop_pct);
    }
    bench::print_rule(78);
  }

  std::printf("\nExpected shape: VAFS saving vs ondemand is 25-45%% on every profile;\n"
              "radio energy rises as bandwidth falls (longer transfers, more tail).\n");
  return 0;
}
