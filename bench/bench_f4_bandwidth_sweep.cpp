// F4 — energy savings vs network condition.
//
// 720p sessions across the four LTE profiles. Expected shape: VAFS's CPU
// saving vs ondemand holds across profiles but is larger where downloads
// are long (poor network keeps the reactive governors bursting at max for
// longer), while absolute radio energy grows as the network degrades.
#include <cstdio>
#include <string>
#include <vector>

#include "exp/bench_app.h"

int main(int argc, char** argv) {
  using namespace vafs;

  exp::BenchApp app(argc, argv, "f4", "Energy vs network bandwidth profile (720p, fixed ABR)");

  const std::vector<core::NetProfile> profiles = {
      core::NetProfile::kPoor, core::NetProfile::kFair, core::NetProfile::kGood,
      core::NetProfile::kExcellent};
  const std::vector<std::string> governors = {"ondemand", "interactive", "schedutil", "vafs"};

  core::SessionConfig base;
  base.fixed_rep = 2;
  base.media_duration = app.session_seconds(120);

  exp::ExperimentGrid grid(base);
  std::vector<std::pair<std::string, exp::ExperimentGrid::Mutator>> profile_axis;
  for (const auto profile : profiles) {
    profile_axis.emplace_back(core::net_profile_name(profile),
                              [profile](core::SessionConfig& c) { c.net = profile; });
  }
  grid.axis("profile", std::move(profile_axis)).governors(governors);

  const exp::ResultSet& results = app.run(grid);

  std::printf("%-11s %-12s %10s %10s %10s %9s %8s\n", "profile", "governor", "cpu_J",
              "radio_J", "total_J", "vs_ondm", "drop_%");
  exp::print_rule(78);

  for (const auto profile : profiles) {
    const char* profile_name = core::net_profile_name(profile);
    const double ondemand_cpu =
        results.agg({{"profile", profile_name}, {"governor", "ondemand"}}).cpu_mj.mean();
    for (const auto& governor : governors) {
      const auto& a = results.agg({{"profile", profile_name}, {"governor", governor}});
      const double saving = (1.0 - a.cpu_mj.mean() / ondemand_cpu) * 100.0;
      std::printf("%-11s %-12s %10.2f %10.2f %10.2f %8.1f%% %8.2f\n", profile_name,
                  governor.c_str(), a.cpu_mj.mean() / 1000.0, a.radio_mj.mean() / 1000.0,
                  a.total_mj.mean() / 1000.0, saving, a.drop_pct.mean());
    }
    exp::print_rule(78);
  }

  std::printf("\nExpected shape: VAFS saving vs ondemand is 25-45%% on every profile;\n"
              "radio energy rises as bandwidth falls (longer transfers, more tail).\n");
  return app.finish();
}
