// F5 — frequency residency distributions.
//
// Fraction of wall time each governor spends programmed at each OPP during
// a 720p / fair-LTE session. Expected shape: ondemand bimodal (min + max),
// interactive piles time at hispeed and max, schedutil and VAFS
// concentrate at the minimal feasible OPPs — VAFS the tightest, with an
// order-of-magnitude fewer DVFS transitions.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"

int main() {
  using namespace vafs;

  bench::print_header("F5", "Frequency residency by governor (720p, fair LTE, 120 s)");

  const std::vector<std::string> governors = {"performance", "ondemand", "interactive",
                                              "conservative", "schedutil", "vafs"};

  // One representative seed: residency is a distribution, not a scalar,
  // so averaging across seeds would blur the shape this figure shows.
  std::vector<std::pair<std::string, core::SessionResult>> results;
  for (const auto& governor : governors) {
    core::SessionConfig config;
    config.governor = governor;
    config.fixed_rep = 2;
    config.media_duration = sim::SimTime::seconds(120);
    config.net = core::NetProfile::kFair;
    config.seed = 101;
    results.emplace_back(governor, core::run_session(config));
  }

  // Header: OPP frequencies.
  std::printf("%-13s", "governor");
  for (const auto& [khz, frac] : results.front().second.residency) {
    std::printf(" %7.1fG", static_cast<double>(khz) / 1e6);
  }
  std::printf(" %8s\n", "trans");
  bench::print_rule(96);

  for (const auto& [governor, r] : results) {
    std::printf("%-13s", governor.c_str());
    for (const auto& [khz, frac] : r.residency) std::printf(" %7.1f%%", frac * 100.0);
    std::printf(" %8llu\n", static_cast<unsigned long long>(r.freq_transitions));
  }

  // ASCII shape per governor.
  for (const auto& [governor, r] : results) {
    std::printf("\n%s:\n", governor.c_str());
    for (const auto& [khz, frac] : r.residency) {
      std::printf("  %7.1f GHz |", static_cast<double>(khz) / 1e6);
      const int bar = static_cast<int>(frac * 60.0 + 0.5);
      for (int i = 0; i < bar; ++i) std::putchar('#');
      std::printf(" %.1f%%\n", frac * 100.0);
    }
  }
  return 0;
}
