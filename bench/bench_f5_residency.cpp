// F5 — frequency residency distributions.
//
// Fraction of wall time each governor spends programmed at each OPP during
// a 720p / fair-LTE session. Expected shape: ondemand bimodal (min + max),
// interactive piles time at hispeed and max, schedutil and VAFS
// concentrate at the minimal feasible OPPs — VAFS the tightest, with an
// order-of-magnitude fewer DVFS transitions.
#include <cstdio>
#include <string>
#include <vector>

#include "exp/bench_app.h"

int main(int argc, char** argv) {
  using namespace vafs;

  exp::BenchApp app(argc, argv, "f5", "Frequency residency by governor (720p, fair LTE, 120 s)");

  const std::vector<std::string> governors = {"performance", "ondemand", "interactive",
                                              "conservative", "schedutil", "vafs"};

  core::SessionConfig base;
  base.fixed_rep = 2;
  base.media_duration = app.session_seconds(120);
  base.net = core::NetProfile::kFair;

  const exp::ResultSet& results = app.run(exp::ExperimentGrid(base).governors(governors));

  // One representative seed (the first): residency is a distribution, not
  // a scalar, so averaging across seeds would blur the shape this figure
  // shows.
  exp::Json residency_json = exp::Json::object();

  // Header: OPP frequencies.
  std::printf("%-13s", "governor");
  for (const auto& [khz, frac] : results.all().front().run0().residency) {
    (void)frac;
    std::printf(" %7.1fG", static_cast<double>(khz) / 1e6);
  }
  std::printf(" %8s\n", "trans");
  exp::print_rule(96);

  for (const auto& governor : governors) {
    const auto& r = results.at({{"governor", governor}}).run0();
    std::printf("%-13s", governor.c_str());
    exp::Json dist = exp::Json::array();
    for (const auto& [khz, frac] : r.residency) {
      std::printf(" %7.1f%%", frac * 100.0);
      exp::Json bin = exp::Json::object();
      bin.set("freq_khz", static_cast<std::uint64_t>(khz));
      bin.set("fraction", frac);
      dist.push(std::move(bin));
    }
    std::printf(" %8llu\n", static_cast<unsigned long long>(r.freq_transitions));
    residency_json.set(governor, std::move(dist));
  }

  // ASCII shape per governor.
  for (const auto& governor : governors) {
    const auto& r = results.at({{"governor", governor}}).run0();
    std::printf("\n%s:\n", governor.c_str());
    for (const auto& [khz, frac] : r.residency) {
      std::printf("  %7.1f GHz |", static_cast<double>(khz) / 1e6);
      const int bar = static_cast<int>(frac * 60.0 + 0.5);
      for (int i = 0; i < bar; ++i) std::putchar('#');
      std::printf(" %.1f%%\n", frac * 100.0);
    }
  }

  app.extra().set("residency_first_seed", std::move(residency_json));
  return app.finish();
}
