// F6 — VAFS sensitivity / ablation.
//
// Four sweeps on 720p / fair LTE:
//   (a) safety margin: energy rises with margin, deadline misses explode
//       as margin -> 0 (the energy/QoE knob);
//   (b) predictor window: too small is jittery (more setspeed writes),
//       too large is stale — energy roughly flat, writes tell the story;
//   (c) race-to-idle downloads ON vs OFF (the design-choice ablation from
//       DESIGN.md §6.5): OFF mimics reactive governors' burst behaviour;
//   (d) audio pipeline on/off.
#include <cstdio>
#include <string>
#include <vector>

#include "exp/bench_app.h"

int main(int argc, char** argv) {
  using namespace vafs;

  exp::BenchApp app(argc, argv, "f6",
                    "VAFS sensitivity: safety margin, predictor window, race-to-idle");

  core::SessionConfig base;
  base.governor = "vafs";
  base.fixed_rep = 2;
  base.media_duration = app.session_seconds(120);
  base.net = core::NetProfile::kFair;

  // (a) Negative margins deliberately under-provision (plan *below*
  // predicted demand) to expose the deadline cliff: snapping to the OPP
  // grid gives a positive-margin plan implicit headroom, so misses only
  // appear once the plan undershoots the grid point the decode rate
  // actually needs.
  exp::ExperimentGrid margin_grid(base);
  std::vector<std::pair<std::string, exp::ExperimentGrid::Mutator>> margin_axis;
  for (const double margin :
       {-0.60, -0.45, -0.30, -0.15, 0.0, 0.05, 0.10, 0.15, 0.25, 0.40, 0.60}) {
    char label[16];
    std::snprintf(label, sizeof label, "%.2f", margin);
    margin_axis.emplace_back(label,
                             [margin](core::SessionConfig& c) { c.vafs.safety_margin = margin; });
  }
  margin_grid.axis("margin", std::move(margin_axis));
  const exp::ResultSet& margins = app.run(margin_grid, "margin");

  std::printf("(a) safety margin sweep (quantile predictor, window 24)\n\n");
  std::printf("%8s %10s %10s %10s %9s\n", "margin", "cpu_J", "misses", "drop_%", "writes");
  exp::print_rule(54);
  for (const auto& sr : margins.all()) {
    // setspeed writes stay a raw per-run value (first seed), as before.
    std::printf("%8s %10.2f %10.0f %10.2f %9llu\n", sr.spec.label("margin")->c_str(),
                sr.agg.cpu_mj.mean() / 1000.0, sr.agg.deadline_misses.mean(),
                sr.agg.drop_pct.mean(),
                static_cast<unsigned long long>(sr.run0().vafs_setspeed_writes));
  }

  // (b) predictor window sweep.
  exp::ExperimentGrid window_grid(base);
  std::vector<std::pair<std::string, exp::ExperimentGrid::Mutator>> window_axis;
  for (const std::size_t window : {2u, 4u, 8u, 16u, 24u, 48u, 64u}) {
    window_axis.emplace_back(std::to_string(window), [window](core::SessionConfig& c) {
      c.vafs.predictor.window = window;
    });
  }
  window_grid.axis("window", std::move(window_axis));
  const exp::ResultSet& windows = app.run(window_grid, "window");

  std::printf("\n(b) predictor window sweep (margin 0.15)\n\n");
  std::printf("%8s %10s %10s %10s %9s %8s\n", "window", "cpu_J", "misses", "drop_%", "writes",
              "mape");
  exp::print_rule(62);
  for (const auto& sr : windows.all()) {
    std::printf("%8s %10.2f %10.0f %10.2f %9llu %8.3f\n", sr.spec.label("window")->c_str(),
                sr.agg.cpu_mj.mean() / 1000.0, sr.agg.deadline_misses.mean(),
                sr.agg.drop_pct.mean(),
                static_cast<unsigned long long>(sr.run0().vafs_setspeed_writes),
                sr.agg.vafs_mape.mean());
  }

  // (c) race-to-idle downloads ablation.
  exp::ExperimentGrid race_grid(base);
  race_grid.axis("race",
                 {{"network-bound (VAFS)",
                   [](core::SessionConfig& c) { c.vafs.race_to_idle_downloads = true; }},
                  {"burst-to-max (reactive)",
                   [](core::SessionConfig& c) { c.vafs.race_to_idle_downloads = false; }}});
  const exp::ResultSet& races = app.run(race_grid, "race_to_idle");

  std::printf("\n(c) race-to-idle downloads ablation (margin 0.15, window 24)\n\n");
  std::printf("%-22s %10s %10s %10s\n", "mode", "cpu_J", "drop_%", "rebuf");
  exp::print_rule(56);
  for (const auto& sr : races.all()) {
    std::printf("%-22s %10.2f %10.2f %10.1f\n", sr.spec.label("race")->c_str(),
                sr.agg.cpu_mj.mean() / 1000.0, sr.agg.drop_pct.mean(),
                sr.agg.rebuffer_events.mean());
  }

  // (d) audio pipeline on/off (AAC-class: 1.2 Mcycles per frame period).
  exp::ExperimentGrid audio_grid(base);
  audio_grid
      .axis("audio", {{"off", [](core::SessionConfig&) {}},
                      {"on",
                       [](core::SessionConfig& c) {
                         c.player.audio_cycles_per_frame = 1.2e6;
                         c.vafs.audio_cycles_per_frame = 1.2e6;
                       }}})
      .governors({"ondemand", "vafs"});
  const exp::ResultSet& audio = app.run(audio_grid, "audio");

  std::printf("\n(d) audio pipeline on/off (AAC-class: 1.2 Mcycles per frame period)\n\n");
  std::printf("%-10s %-12s %10s %10s\n", "audio", "governor", "cpu_J", "drop_%");
  exp::print_rule(46);
  for (const auto& sr : audio.all()) {
    std::printf("%-10s %-12s %10.2f %10.2f\n", sr.spec.label("audio")->c_str(),
                sr.spec.label("governor")->c_str(), sr.agg.cpu_mj.mean() / 1000.0,
                sr.agg.drop_pct.mean());
  }

  std::printf("\nExpected shape: (a) energy monotone in margin, misses vanish by ~0.10;\n"
              "(b) energy roughly flat, tiny windows write setspeed far more often;\n"
              "(c) treating downloads as network-bound is a large part of the saving;\n"
              "(d) audio adds ~36 MHz of steady load to both, preserving the gap.\n");
  return app.finish();
}
