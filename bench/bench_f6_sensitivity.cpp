// F6 — VAFS sensitivity / ablation.
//
// Three sweeps on 720p / fair LTE:
//   (a) safety margin: energy rises with margin, deadline misses explode
//       as margin -> 0 (the energy/QoE knob);
//   (b) predictor window: too small is jittery (more setspeed writes),
//       too large is stale — energy roughly flat, writes tell the story;
//   (c) race-to-idle downloads ON vs OFF (the design-choice ablation from
//       DESIGN.md §6.5): OFF mimics reactive governors' burst behaviour.
#include <cstdio>
#include <vector>

#include "bench_util.h"

int main() {
  using namespace vafs;

  bench::print_header("F6", "VAFS sensitivity: safety margin, predictor window, race-to-idle");

  const auto seeds = bench::default_seeds();

  // Negative margins deliberately under-provision (plan *below* predicted
  // demand) to expose the deadline cliff: snapping to the OPP grid gives a
  // positive-margin plan implicit headroom, so misses only appear once the
  // plan undershoots the grid point the decode rate actually needs.
  std::printf("(a) safety margin sweep (quantile predictor, window 24)\n\n");
  std::printf("%8s %10s %10s %10s %9s\n", "margin", "cpu_J", "misses", "drop_%", "writes");
  bench::print_rule(54);
  for (const double margin :
       {-0.60, -0.45, -0.30, -0.15, 0.0, 0.05, 0.10, 0.15, 0.25, 0.40, 0.60}) {
    core::SessionConfig config;
    config.governor = "vafs";
    config.vafs.safety_margin = margin;
    config.fixed_rep = 2;
    config.media_duration = sim::SimTime::seconds(120);
    config.net = core::NetProfile::kFair;
    // setspeed writes need the raw per-run value; use one seed for that
    // column and the average for the scalars.
    const auto a = bench::run_averaged(config, seeds);
    config.seed = seeds.front();
    const auto r = core::run_session(config);
    std::printf("%8.2f %10.2f %10.0f %10.2f %9llu\n", margin, a.cpu_mj / 1000.0,
                a.deadline_misses, a.drop_pct,
                static_cast<unsigned long long>(r.vafs_setspeed_writes));
  }

  std::printf("\n(b) predictor window sweep (margin 0.15)\n\n");
  std::printf("%8s %10s %10s %10s %9s %8s\n", "window", "cpu_J", "misses", "drop_%", "writes",
              "mape");
  bench::print_rule(62);
  for (const std::size_t window : {2u, 4u, 8u, 16u, 24u, 48u, 64u}) {
    core::SessionConfig config;
    config.governor = "vafs";
    config.vafs.predictor.window = window;
    config.fixed_rep = 2;
    config.media_duration = sim::SimTime::seconds(120);
    config.net = core::NetProfile::kFair;
    const auto a = bench::run_averaged(config, seeds);
    config.seed = seeds.front();
    const auto r = core::run_session(config);
    std::printf("%8zu %10.2f %10.0f %10.2f %9llu %8.3f\n", window, a.cpu_mj / 1000.0,
                a.deadline_misses, a.drop_pct,
                static_cast<unsigned long long>(r.vafs_setspeed_writes), a.vafs_mape);
  }

  std::printf("\n(c) race-to-idle downloads ablation (margin 0.15, window 24)\n\n");
  std::printf("%-22s %10s %10s %10s\n", "mode", "cpu_J", "drop_%", "rebuf");
  bench::print_rule(56);
  for (const bool race : {true, false}) {
    core::SessionConfig config;
    config.governor = "vafs";
    config.vafs.race_to_idle_downloads = race;
    config.fixed_rep = 2;
    config.media_duration = sim::SimTime::seconds(120);
    config.net = core::NetProfile::kFair;
    const auto a = bench::run_averaged(config, seeds);
    std::printf("%-22s %10.2f %10.2f %10.1f\n",
                race ? "network-bound (VAFS)" : "burst-to-max (reactive)", a.cpu_mj / 1000.0,
                a.drop_pct, a.rebuffer_events);
  }

  std::printf("\n(d) audio pipeline on/off (AAC-class: 1.2 Mcycles per frame period)\n\n");
  std::printf("%-10s %-12s %10s %10s\n", "audio", "governor", "cpu_J", "drop_%");
  bench::print_rule(46);
  for (const bool audio : {false, true}) {
    for (const std::string governor : {"ondemand", "vafs"}) {
      core::SessionConfig config;
      config.governor = governor;
      config.fixed_rep = 2;
      config.media_duration = sim::SimTime::seconds(120);
      config.net = core::NetProfile::kFair;
      if (audio) {
        config.player.audio_cycles_per_frame = 1.2e6;
        config.vafs.audio_cycles_per_frame = 1.2e6;
      }
      const auto a = bench::run_averaged(config, seeds);
      std::printf("%-10s %-12s %10.2f %10.2f\n", audio ? "on" : "off", governor.c_str(),
                  a.cpu_mj / 1000.0, a.drop_pct);
    }
  }

  std::printf("\nExpected shape: (a) energy monotone in margin, misses vanish by ~0.10;\n"
              "(b) energy roughly flat, tiny windows write setspeed far more often;\n"
              "(c) treating downloads as network-bound is a large part of the saving;\n"
              "(d) audio adds ~36 MHz of steady load to both, preserving the gap.\n");
  return 0;
}
