// F7 — segment duration vs radio tail energy.
//
// Sweeps the manifest's segment duration at 720p. Shorter segments mean
// more, smaller transfers: the LTE tail timers keep the radio out of IDLE
// between them, so radio energy rises as segments shrink — for every
// governor. VAFS's CPU saving is orthogonal to this (roughly constant
// percentage), which is the point of the figure: CPU-side DVFS and
// radio-side scheduling attack different energy pools.
#include <cstdio>
#include <string>
#include <vector>

#include "exp/bench_app.h"

int main(int argc, char** argv) {
  using namespace vafs;

  exp::BenchApp app(argc, argv, "f7", "Segment duration vs radio/CPU energy (720p, fair LTE)");

  const std::vector<std::int64_t> segments = {2, 4, 6, 10};
  const std::vector<std::string> governors = {"ondemand", "vafs"};

  core::SessionConfig base;
  base.fixed_rep = 2;
  base.media_duration = app.session_seconds(120);
  base.net = core::NetProfile::kFair;

  exp::ExperimentGrid grid(base);
  std::vector<std::pair<std::string, exp::ExperimentGrid::Mutator>> seg_axis;
  for (const auto seg_s : segments) {
    seg_axis.emplace_back(std::to_string(seg_s), [seg_s](core::SessionConfig& c) {
      c.segment_duration = sim::SimTime::seconds(seg_s);
    });
  }
  grid.axis("seg_s", std::move(seg_axis)).governors(governors);

  const exp::ResultSet& results = app.run(grid);

  std::printf("%8s %-10s %10s %10s %10s %9s %8s\n", "seg_s", "governor", "cpu_J", "radio_J",
              "total_J", "vs_ondm", "promos");
  exp::print_rule(72);

  for (const auto seg_s : segments) {
    const std::string seg = std::to_string(seg_s);
    const double ondemand_cpu =
        results.agg({{"seg_s", seg}, {"governor", "ondemand"}}).cpu_mj.mean();
    for (const auto& governor : governors) {
      const auto& sr = results.at({{"seg_s", seg}, {"governor", governor}});
      std::printf("%8s %-10s %10.2f %10.2f %10.2f %8.1f%% %8llu\n", seg.c_str(),
                  governor.c_str(), sr.agg.cpu_mj.mean() / 1000.0,
                  sr.agg.radio_mj.mean() / 1000.0, sr.agg.total_mj.mean() / 1000.0,
                  (1.0 - sr.agg.cpu_mj.mean() / ondemand_cpu) * 100.0,
                  static_cast<unsigned long long>(sr.run0().radio_promotions));
    }
    exp::print_rule(72);
  }

  std::printf("\nExpected shape: radio energy falls as segments lengthen (fewer\n"
              "tail-resets); VAFS's relative CPU saving stays roughly constant.\n");
  return app.finish();
}
