// F7 — segment duration vs radio tail energy.
//
// Sweeps the manifest's segment duration at 720p. Shorter segments mean
// more, smaller transfers: the LTE tail timers keep the radio out of IDLE
// between them, so radio energy rises as segments shrink — for every
// governor. VAFS's CPU saving is orthogonal to this (roughly constant
// percentage), which is the point of the figure: CPU-side DVFS and
// radio-side scheduling attack different energy pools.
#include <cstdio>
#include <vector>

#include "bench_util.h"

int main() {
  using namespace vafs;

  bench::print_header("F7", "Segment duration vs radio/CPU energy (720p, fair LTE)");

  std::printf("%8s %-10s %10s %10s %10s %9s %8s\n", "seg_s", "governor", "cpu_J", "radio_J",
              "total_J", "vs_ondm", "promos");
  bench::print_rule(72);

  for (const std::int64_t seg_s : {2, 4, 6, 10}) {
    double ondemand_cpu = 0.0;
    for (const std::string governor : {"ondemand", "vafs"}) {
      core::SessionConfig config;
      config.governor = governor;
      config.fixed_rep = 2;
      config.segment_duration = sim::SimTime::seconds(seg_s);
      config.media_duration = sim::SimTime::seconds(120);
      config.net = core::NetProfile::kFair;
      const auto a = bench::run_averaged(config, bench::default_seeds());
      config.seed = bench::default_seeds().front();
      const auto r = core::run_session(config);
      if (governor == "ondemand") ondemand_cpu = a.cpu_mj;
      std::printf("%8lld %-10s %10.2f %10.2f %10.2f %8.1f%% %8llu\n",
                  static_cast<long long>(seg_s), governor.c_str(), a.cpu_mj / 1000.0,
                  a.radio_mj / 1000.0, a.total_mj / 1000.0,
                  (1.0 - a.cpu_mj / ondemand_cpu) * 100.0,
                  static_cast<unsigned long long>(r.radio_promotions));
    }
    bench::print_rule(72);
  }

  std::printf("\nExpected shape: radio energy falls as segments lengthen (fewer\n"
              "tail-resets); VAFS's relative CPU saving stays roughly constant.\n");
  return 0;
}
