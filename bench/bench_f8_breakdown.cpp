// F8 — device energy breakdown (CPU / radio / display) per approach.
//
// Shows where the energy goes in a streaming session and therefore how
// much a CPU-side policy can move the total: radio and display dominate,
// so a 35 % CPU saving is a ~5-10 % device saving — the honest framing a
// DVFS paper owes its readers.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"

int main() {
  using namespace vafs;

  bench::print_header("F8", "Device energy breakdown by component (720p, fair LTE, 120 s)");

  const std::vector<std::string> governors = {"performance", "ondemand", "interactive",
                                              "schedutil", "vafs"};

  std::printf("%-13s %9s %9s %9s %9s %8s %9s\n", "governor", "cpu_J", "radio_J", "disp_J",
              "total_J", "cpu_%", "vs_ondm");
  bench::print_rule(74);

  std::vector<std::pair<std::string, bench::Aggregate>> rows;
  double ondemand_total = 0.0;
  for (const auto& governor : governors) {
    core::SessionConfig config;
    config.governor = governor;
    config.fixed_rep = 2;
    config.media_duration = sim::SimTime::seconds(120);
    config.net = core::NetProfile::kFair;
    const auto a = bench::run_averaged(config, bench::default_seeds());
    if (governor == "ondemand") ondemand_total = a.total_mj;
    rows.emplace_back(governor, a);
  }
  for (const auto& [governor, a] : rows) {
    std::printf("%-13s %9.2f %9.2f %9.2f %9.2f %7.1f%% %8.1f%%\n", governor.c_str(),
                a.cpu_mj / 1000.0, a.radio_mj / 1000.0, a.display_mj / 1000.0,
                a.total_mj / 1000.0, a.cpu_mj / a.total_mj * 100.0,
                (1.0 - a.total_mj / ondemand_total) * 100.0);
  }

  std::printf("\nExpected shape: radio ~50-60%% and display ~30%% of device energy; the\n"
              "CPU slice is what DVFS can address, and VAFS removes a third of it.\n");
  return 0;
}
