// F8 — device energy breakdown (CPU / radio / display) per approach.
//
// Shows where the energy goes in a streaming session and therefore how
// much a CPU-side policy can move the total: radio and display dominate,
// so a 35 % CPU saving is a ~5-10 % device saving — the honest framing a
// DVFS paper owes its readers.
#include <cstdio>
#include <string>
#include <vector>

#include "exp/bench_app.h"

int main(int argc, char** argv) {
  using namespace vafs;

  exp::BenchApp app(argc, argv, "f8",
                    "Device energy breakdown by component (720p, fair LTE, 120 s)");

  const std::vector<std::string> governors = {"performance", "ondemand", "interactive",
                                              "schedutil", "vafs"};

  core::SessionConfig base;
  base.fixed_rep = 2;
  base.media_duration = app.session_seconds(120);
  base.net = core::NetProfile::kFair;

  const exp::ResultSet& results = app.run(exp::ExperimentGrid(base).governors(governors));

  std::printf("%-13s %9s %9s %9s %9s %8s %9s\n", "governor", "cpu_J", "radio_J", "disp_J",
              "total_J", "cpu_%", "vs_ondm");
  exp::print_rule(74);

  const double ondemand_total = results.agg({{"governor", "ondemand"}}).total_mj.mean();
  for (const auto& governor : governors) {
    const auto& a = results.agg({{"governor", governor}});
    std::printf("%-13s %9.2f %9.2f %9.2f %9.2f %7.1f%% %8.1f%%\n", governor.c_str(),
                a.cpu_mj.mean() / 1000.0, a.radio_mj.mean() / 1000.0,
                a.display_mj.mean() / 1000.0, a.total_mj.mean() / 1000.0,
                a.cpu_mj.mean() / a.total_mj.mean() * 100.0,
                (1.0 - a.total_mj.mean() / ondemand_total) * 100.0);
  }

  std::printf("\nExpected shape: radio ~50-60%% and display ~30%% of device energy; the\n"
              "CPU slice is what DVFS can address, and VAFS removes a third of it.\n");
  return app.finish();
}
