// F9 — governor decision overhead (google-benchmark microbenchmarks).
//
// A userspace governor is only deployable if its per-decision cost is
// negligible next to the 33 ms frame period. Measures: one full VAFS
// plan+actuate decision, predictor observe/predict, the sysfs write path,
// and the simulation kernel's event costs for scale context.
#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "core/predictor.h"
#include "core/session.h"
#include "core/vafs_controller.h"
#include "cpu/cpufreq_policy.h"
#include "cpu/cpufreq_sysfs.h"
#include "governors/registry.h"
#include "net/downloader.h"
#include "simcore/simulator.h"
#include "stream/player.h"
#include "video/content.h"

namespace {

using namespace vafs;

/// Full device stack with a warmed-up VAFS controller mid-session.
struct World {
  World()
      : cpu(sim, cpu::OppTable::mobile_big_core(), cpu::CpuPowerModel()),
        radio(sim, net::RadioParams::lte()),
        bw(20.0),
        manifest(video::Manifest::typical_vod("bench", sim::SimTime::seconds(120))),
        content(5, video::ContentParams{}, &manifest) {
    governors::register_standard(registry);
    policy = std::make_unique<cpu::CpufreqPolicy>(sim, cpu, registry, "ondemand");
    binder = std::make_unique<cpu::CpufreqSysfs>(tree, *policy, 0);
    downloader = std::make_unique<net::Downloader>(sim, radio, bw, &cpu);
    player = std::make_unique<stream::Player>(sim, cpu, *downloader, content,
                                              std::make_unique<stream::FixedAbr>(2));
    controller = std::make_unique<core::VafsController>(sim, tree, binder->dir(), *player);
    controller->attach();
    player->start(nullptr);
    // Warm up: run 10 simulated seconds so predictors have history.
    while (sim.now() < sim::SimTime::seconds(10)) {
      if (!sim.step()) break;
    }
  }

  sim::Simulator sim;
  cpu::CpuModel cpu;
  cpu::GovernorRegistry registry;
  sysfs::Tree tree;
  net::RadioModel radio;
  net::ConstantBandwidth bw;
  video::Manifest manifest;
  video::ContentModel content;
  std::unique_ptr<cpu::CpufreqPolicy> policy;
  std::unique_ptr<cpu::CpufreqSysfs> binder;
  std::unique_ptr<net::Downloader> downloader;
  std::unique_ptr<stream::Player> player;
  std::unique_ptr<core::VafsController> controller;
};

void BM_VafsPlanDecision(benchmark::State& state) {
  World world;
  for (auto _ : state) {
    world.controller->plan_now();
    benchmark::DoNotOptimize(world.controller->last_planned_khz());
  }
}
BENCHMARK(BM_VafsPlanDecision);

void BM_PredictorObserve(benchmark::State& state) {
  core::PredictorConfig config;
  config.kind = static_cast<core::PredictorKind>(state.range(0));
  core::CycleDemandPredictor predictor(config);
  double x = 1.3e7;
  for (auto _ : state) {
    predictor.observe(x);
    x += 1000;
    benchmark::DoNotOptimize(predictor.observations());
  }
}
BENCHMARK(BM_PredictorObserve)->Arg(0)->Arg(1)->Arg(2);

void BM_PredictorPredict(benchmark::State& state) {
  core::PredictorConfig config;
  config.kind = static_cast<core::PredictorKind>(state.range(0));
  core::CycleDemandPredictor predictor(config);
  for (int i = 0; i < 64; ++i) predictor.observe(1.3e7 + i * 1e4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(predictor.predict());
  }
}
BENCHMARK(BM_PredictorPredict)->Arg(0)->Arg(1)->Arg(2);

void BM_SysfsSetspeedWrite(benchmark::State& state) {
  World world;
  std::uint32_t khz = 600'000;
  for (auto _ : state) {
    // Alternate between two OPPs so the write is never deduplicated.
    khz = khz == 600'000 ? 900'000 : 600'000;
    benchmark::DoNotOptimize(
        world.tree.write(world.binder->dir() + "/scaling_setspeed", std::to_string(khz)));
  }
}
BENCHMARK(BM_SysfsSetspeedWrite);

void BM_SysfsReadCurFreq(benchmark::State& state) {
  World world;
  const std::string path = world.binder->dir() + "/scaling_cur_freq";
  for (auto _ : state) {
    benchmark::DoNotOptimize(world.tree.read(path));
  }
}
BENCHMARK(BM_SysfsReadCurFreq);

void BM_EventScheduleAndFire(benchmark::State& state) {
  sim::Simulator simulator;
  for (auto _ : state) {
    simulator.after(sim::SimTime::micros(1), [] {});
    simulator.step();
  }
}
BENCHMARK(BM_EventScheduleAndFire);

void BM_FullSessionSimulation(benchmark::State& state) {
  // Wall-clock cost of simulating one full 120 s session — documents the
  // harness's own scale (thousands of sessions per minute).
  for (auto _ : state) {
    core::SessionConfig config;
    config.governor = "vafs";
    config.media_duration = sim::SimTime::seconds(120);
    config.net = core::NetProfile::kFair;
    const auto result = core::run_session(config);
    benchmark::DoNotOptimize(result.energy.cpu_mj);
  }
}
BENCHMARK(BM_FullSessionSimulation)->Unit(benchmark::kMillisecond);

}  // namespace

// Custom main: like every other bench binary, F9 writes a machine-readable
// BENCH_f9.json by default (google-benchmark's JSON reporter), unless the
// caller overrides --benchmark_out themselves.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_out", 0) == 0) has_out = true;
  }
  std::string out_flag = "--benchmark_out=BENCH_f9.json";
  std::string format_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
