// Fleet-scale smoke bench: a governor × network × fault grid scaled to an
// arbitrary session count by --seed-count, executed through the sharded
// fleet runner (src/fleet) instead of exp::run_grid.
//
// This is the binary the nightly million-session job drives:
//
//   bench_fleet --quick --seed-count 62500 --jobs 8
//       --checkpoint-dir ckpt --spool none --rss-limit-mb 256
//
// is 16 scenarios × 62500 seeds = 1,000,000 sessions at bounded memory.
// SIGTERM/SIGINT stop the run at the next shard boundary, write a final
// checkpoint and exit 75 (EX_TEMPFAIL); re-running with --resume picks up
// at the frontier and finishes with aggregates and a digest chain that are
// bit-identical to an uninterrupted run.
#include <sys/resource.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "exp/grid.h"
#include "exp/json.h"
#include "exp/options.h"
#include "exp/table.h"
#include "fault/plan.h"
#include "fleet/fleet_runner.h"
#include "obs/export.h"
#include "serve/client.h"
#include "serve/server.h"
#include "supervise/supervisor.h"

namespace {

std::atomic<bool> g_stop{false};

void handle_stop_signal(int) { g_stop.store(true, std::memory_order_relaxed); }

/// Peak RSS of this process in MiB (Linux ru_maxrss is KiB).
double peak_rss_mib() {
  rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<double>(ru.ru_maxrss) / 1024.0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vafs;

  exp::BenchOptions options;
  std::string error;
  if (!exp::parse_bench_args(argc, argv, &options, &error)) {
    std::fprintf(stderr, "bench_fleet: %s\n%s%s", error.c_str(),
                 exp::bench_usage("fleet").c_str(), exp::fleet_usage().c_str());
    return 2;
  }
  if (options.help) {
    std::printf("%s%s", exp::bench_usage("fleet").c_str(), exp::fleet_usage().c_str());
    return 0;
  }

  std::signal(SIGTERM, handle_stop_signal);
  std::signal(SIGINT, handle_stop_signal);

  // The grid: 4 governors × 2 networks × {clean, mild faults} = 16
  // scenarios. Sessions are short — fleet scale comes from the seed axis,
  // and the point is the shard/checkpoint machinery, not session length.
  core::SessionConfig base;
  base.fixed_rep = 2;  // 720p
  base.media_duration = sim::SimTime::seconds(options.quick ? 20 : 120);
  base.downloader.attempt_timeout = sim::SimTime::seconds(6);
  base.downloader.max_attempts = 4;

  exp::ExperimentGrid grid(base);
  grid.governors({"performance", "ondemand", "schedutil", "vafs"})
      .axis("net", {{"fair", [](core::SessionConfig& c) { c.net = core::NetProfile::kFair; }},
                    {"poor", [](core::SessionConfig& c) { c.net = core::NetProfile::kPoor; }}})
      .axis("fault",
            {{"clean", [](core::SessionConfig&) {}},
             {"mild", [](core::SessionConfig& c) { c.fault = fault::FaultPlanConfig::mild(); }}});
  // Device-population sweeps: every session draws its device from the mix
  // by a pure hash of its seed, so the draw is identical across shard
  // sizes, job counts and resumes. The mix id joins the scenario labels
  // (and thereby the checkpoint fingerprint): a checkpoint from one mix
  // cannot silently resume a run of another.
  if (options.mix != "none") {
    try {
      grid.population(device::PopulationMix::named(options.mix));
    } catch (const std::out_of_range& e) {
      std::fprintf(stderr, "bench_fleet: %s\n", e.what());
      return 2;
    }
  }

  const std::vector<exp::ScenarioSpec> scenarios = grid.scenarios();

  fleet::FleetOptions fopts;
  fopts.jobs = options.effective_jobs();
  fopts.seeds = options.fleet_seeds();
  const std::uint64_t tasks =
      static_cast<std::uint64_t>(scenarios.size()) * fopts.seeds.size();
  if (options.shards > 0) {
    fopts.shard_size = static_cast<std::size_t>((tasks + options.shards - 1) / options.shards);
  }
  fopts.batch = options.batch;
  fopts.checkpoint_dir = options.checkpoint_dir;
  fopts.resume = options.resume;
  fopts.trace = options.trace_flag != 0;  // default on: the digest chain IS the result
  fopts.task_timeout_ms = options.task_timeout_ms;
  if (options.spool == "csv") fopts.spool.format = fleet::SpoolFormat::kCsv;
  if (options.spool == "jsonl") fopts.spool.format = fleet::SpoolFormat::kJsonl;
  fopts.on_progress = [](std::uint64_t, std::uint64_t) {
    return !g_stop.load(std::memory_order_relaxed);
  };

  const bool supervised = options.supervise > 0;
  if (supervised && options.batch > 1) {
    std::fprintf(stderr, "bench_fleet: --supervise and --batch are mutually exclusive "
                 "(supervised workers run the serial per-task path)\n");
    return 2;
  }
  if (options.chaos_stall > 0 && options.task_deadline_ms == 0) {
    std::fprintf(stderr, "bench_fleet: --chaos-stall needs --task-deadline-ms: a stalled "
                 "worker keeps heartbeating, so only the task deadline can reap it\n");
    return 2;
  }
  if (!supervised && (options.chaos_enabled() || options.task_deadline_ms > 0 ||
                      options.worker_as_limit_mb > 0 || options.worker_rss_limit_mb > 0)) {
    std::fprintf(stderr, "bench_fleet: chaos/deadline/worker-budget flags need --supervise N\n");
    return 2;
  }
  if (!options.serve.empty() && supervised) {
    std::fprintf(stderr, "bench_fleet: --serve and --supervise are mutually exclusive "
                 "(supervised workers are subprocesses; run vafsd and point each worker's "
                 "parent at it instead)\n");
    return 2;
  }

  // Serving mode: route every session's VAFS decisions through the daemon
  // protocol. "auto" hosts the server in-process on a private socket; any
  // other value is the socket of an already-running vafsd. Either way the
  // digest chain must match an in-process run bit-for-bit.
  std::unique_ptr<serve::Server> serve_server;
  std::unique_ptr<serve::SocketBackend> serve_backend;
  if (!options.serve.empty()) {
    std::string socket = options.serve;
    if (socket == "auto") {
      socket = "/tmp/vafs-fleet-" + std::to_string(getpid()) + ".sock";
      serve::ServerOptions sopts;
      sopts.socket_path = socket;
      serve_server = std::make_unique<serve::Server>(sopts);
      if (!serve_server->start()) {
        std::fprintf(stderr, "bench_fleet: cannot start decision server on %s\n",
                     socket.c_str());
        return 1;
      }
    }
    try {
      serve::ServeConnection probe(socket);
      if (!probe.ping()) {
        std::fprintf(stderr, "bench_fleet: daemon at %s did not answer a ping\n",
                     socket.c_str());
        return 1;
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "bench_fleet: --serve: %s\n", e.what());
      return 1;
    }
    serve_backend = std::make_unique<serve::SocketBackend>(socket);
    fopts.decision_backend = serve_backend.get();
  }

  std::printf("fleet: %zu scenarios x %zu seeds = %llu sessions, shard size %zu, %d %s, "
              "batch %d\n",
              scenarios.size(), fopts.seeds.size(), static_cast<unsigned long long>(tasks),
              fopts.shard_size, supervised ? options.supervise : fopts.jobs,
              supervised ? "supervised workers" : "jobs", fopts.batch);

  supervise::SupervisedResult sup;
  const auto t0 = std::chrono::steady_clock::now();
  if (supervised) {
    supervise::SuperviseOptions sopts;
    sopts.workers = options.supervise;
    sopts.task_deadline_ms = options.task_deadline_ms;
    sopts.heartbeat_interval_ms = options.heartbeat_ms;
    sopts.heartbeat_timeout_ms = options.heartbeat_timeout_ms;
    sopts.max_task_attempts = options.task_retries;
    sopts.worker_as_limit_mb = options.worker_as_limit_mb;
    sopts.worker_rss_limit_mb = options.worker_rss_limit_mb;
    sopts.chaos.seed = options.chaos_seed;
    sopts.chaos.crash = options.chaos_crash;
    sopts.chaos.abort_rate = options.chaos_abort;
    sopts.chaos.exit_rate = options.chaos_exit;
    sopts.chaos.hang_silent = options.chaos_hang;
    sopts.chaos.stall = options.chaos_stall;
    sopts.chaos.leak = options.chaos_leak;
    sup = run_supervised(scenarios, fopts, sopts);
  } else {
    sup.fleet = run_fleet(scenarios, fopts);
  }
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  const fleet::FleetResult& result = sup.fleet;
  const double rss_mib = peak_rss_mib();

  if (!result.ok()) {
    std::fprintf(stderr, "bench_fleet: %s\n", result.error.c_str());
    return 1;
  }

  if (result.complete()) {
    std::printf("%-34s %10s %10s %10s %8s\n", "scenario", "total_J", "rebuf_s", "kbps", "runs");
    exp::print_rule(78);
    for (const auto& fs : result.scenarios) {
      const auto& a = fs.agg;
      std::printf("%-34s %10.1f %10.2f %10.0f %8d\n", fs.spec.id.c_str(),
                  a.total_mj.mean() / 1000.0, a.rebuffer_s.mean(), a.mean_bitrate_kbps.mean(),
                  a.runs);
    }
  }

  std::printf("fleet: %llu/%llu shards folded (%llu sessions run, %llu resumed, %zu failed), "
              "digest chain %s, peak RSS %.1f MiB, %.2f s (%.0f sessions/s)\n",
              static_cast<unsigned long long>(result.shards_done),
              static_cast<unsigned long long>(result.shard_count),
              static_cast<unsigned long long>(result.sessions_run),
              static_cast<unsigned long long>(result.sessions_resumed), result.failures.size(),
              obs::digest_hex(result.digest_chain).c_str(), rss_mib, elapsed_s,
              elapsed_s > 0 ? static_cast<double>(result.sessions_run) / elapsed_s : 0.0);

  serve::ServerStats serve_stats;
  if (serve_server != nullptr) {
    serve_server->stop();  // drain before reading the final counters
    serve_stats = serve_server->stats();
    std::printf("serve: %llu decisions on %llu streams over %llu connections, "
                "latency p50/p95/p99 %.0f/%.0f/%.0f us\n",
                static_cast<unsigned long long>(serve_stats.requests),
                static_cast<unsigned long long>(serve_stats.streams_opened),
                static_cast<unsigned long long>(serve_stats.connections_accepted),
                serve_stats.latency_p50_us, serve_stats.latency_p95_us,
                serve_stats.latency_p99_us);
  } else if (serve_backend != nullptr) {
    std::printf("serve: decisions answered by vafsd at %s over %llu client connections\n",
                serve_backend->socket_path().c_str(),
                static_cast<unsigned long long>(serve_backend->connections_opened()));
  }

  if (supervised) {
    std::printf("supervise: %llu spawns, %llu deaths (%llu heartbeat, %llu deadline, %llu rss "
                "kills), %llu retries, %zu quarantined (%llu resumed)\n",
                static_cast<unsigned long long>(sup.worker_spawns),
                static_cast<unsigned long long>(sup.worker_deaths),
                static_cast<unsigned long long>(sup.heartbeat_kills),
                static_cast<unsigned long long>(sup.deadline_kills),
                static_cast<unsigned long long>(sup.rss_kills),
                static_cast<unsigned long long>(sup.task_retries), sup.quarantine.size(),
                static_cast<unsigned long long>(sup.quarantined_resumed));
    for (const auto& q : sup.quarantine) {
      std::string fates;
      for (std::size_t i = 0; i < q.fates.size(); ++i) {
        if (i > 0) fates += ',';
        fates += q.fates[i];
      }
      std::fprintf(stderr, "quarantined: task %llu scenario %s seed %llu after %d attempts "
                   "[%s]\n",
                   static_cast<unsigned long long>(q.task_index), q.scenario.c_str(),
                   static_cast<unsigned long long>(q.seed), q.attempts, fates.c_str());
    }
  }

  // Artifact (skipped when stopped mid-run: partial aggregates are the
  // checkpoint's job, not the artifact's).
  if (result.complete() && options.out_json != "none") {
    const std::string path = options.out_json.empty() ? "BENCH_fleet.json" : options.out_json;
    exp::Json root = exp::Json::object();
    root.set("bench", "fleet");
    root.set("sessions", static_cast<std::uint64_t>(tasks));
    root.set("shard_size", static_cast<std::uint64_t>(fopts.shard_size));
    root.set("shards", result.shard_count);
    root.set("jobs", fopts.jobs);
    root.set("digest_chain", obs::digest_hex(result.digest_chain));
    root.set("fingerprint", obs::digest_hex(result.fingerprint));
    root.set("failures", static_cast<std::uint64_t>(result.failures.size()));
    root.set("peak_rss_mib", rss_mib);
    root.set("elapsed_s", elapsed_s);
    root.set("sessions_per_sec",
             elapsed_s > 0 ? static_cast<double>(result.sessions_run) / elapsed_s : 0.0);
    root.set("supervised", supervised ? static_cast<std::uint64_t>(options.supervise)
                                      : static_cast<std::uint64_t>(0));
    if (serve_backend != nullptr) {
      exp::Json sv = exp::Json::object();
      sv.set("mode", options.serve);
      sv.set("client_connections", serve_backend->connections_opened());
      if (serve_server != nullptr) {
        sv.set("requests", serve_stats.requests);
        sv.set("streams", serve_stats.streams_opened);
        sv.set("latency_p50_us", serve_stats.latency_p50_us);
        sv.set("latency_p95_us", serve_stats.latency_p95_us);
        sv.set("latency_p99_us", serve_stats.latency_p99_us);
      }
      root.set("serve", std::move(sv));
    }
    if (supervised) {
      exp::Json sv = exp::Json::object();
      sv.set("worker_spawns", sup.worker_spawns);
      sv.set("worker_deaths", sup.worker_deaths);
      sv.set("heartbeat_kills", sup.heartbeat_kills);
      sv.set("deadline_kills", sup.deadline_kills);
      sv.set("rss_kills", sup.rss_kills);
      sv.set("task_retries", sup.task_retries);
      sv.set("quarantined", static_cast<std::uint64_t>(sup.quarantine.size()));
      sv.set("quarantined_resumed", sup.quarantined_resumed);
      root.set("supervise", std::move(sv));
    }
    exp::Json scen = exp::Json::object();
    for (const auto& fs : result.scenarios) {
      exp::Json cell = exp::Json::object();
      cell.set("runs", fs.agg.runs);
      cell.set("total_mj_mean", fs.agg.total_mj.mean());
      cell.set("rebuffer_s_mean", fs.agg.rebuffer_s.mean());
      cell.set("mean_bitrate_kbps_mean", fs.agg.mean_bitrate_kbps.mean());
      scen.set(fs.spec.id, std::move(cell));
    }
    root.set("scenarios", std::move(scen));
    std::ofstream out(path, std::ios::trunc);
    out << root.dump() << '\n';
    if (!out) {
      std::fprintf(stderr, "bench_fleet: cannot write %s\n", path.c_str());
      return 1;
    }
    std::printf("fleet: wrote %s\n", path.c_str());
  }

  if (options.rss_limit_mb > 0 && rss_mib > static_cast<double>(options.rss_limit_mb)) {
    std::fprintf(stderr, "bench_fleet: peak RSS %.1f MiB exceeds the %llu MiB budget\n", rss_mib,
                 static_cast<unsigned long long>(options.rss_limit_mb));
    return 1;
  }

  if (result.stopped) {
    std::fprintf(stderr, "bench_fleet: stopped by signal after %llu/%llu shards; "
                 "checkpoint written, rerun with --resume\n",
                 static_cast<unsigned long long>(result.shards_done),
                 static_cast<unsigned long long>(result.shard_count));
    return 75;  // EX_TEMPFAIL: incomplete but resumable
  }
  return 0;
}
