// R1 — resilience under injected faults (robustness extension).
//
// Chaos grid: governor × fault scenario. Each cell streams the same
// 3-minute 720p session while the fault plan throws link outages,
// throughput collapses, flaky fetches, scaling_setspeed write errors and
// thermal caps at it. The questions the table answers:
//   - does every cell *finish* (no wedge, no abort), and at what QoE cost;
//   - how much energy the retries/backoff burn per scenario;
//   - for VAFS: how often the watchdog fails over, how long it stays in
//     fallback, and whether it re-engages (fallback_s < wall_s).
// Every fault schedule is seed-deterministic, so cells are reproducible
// and --jobs N is bit-identical to a serial run.
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "exp/bench_app.h"
#include "fault/plan.h"

int main(int argc, char** argv) {
  using namespace vafs;

  exp::BenchApp app(argc, argv, "r1", "Resilience: governor x fault-scenario chaos grid");

  const std::vector<std::string> governors = {"ondemand", "schedutil", "vafs"};

  core::SessionConfig base;
  base.fixed_rep = 2;  // 720p
  base.media_duration = app.session_seconds(180);
  base.net = core::NetProfile::kFair;
  // Degraded-mode machinery on for every cell: per-attempt timeout +
  // bounded retries in the downloader, watchdog failover for VAFS
  // (ignored by kernel governors).
  base.downloader.attempt_timeout = sim::SimTime::seconds(6);
  base.downloader.max_attempts = 4;
  base.vafs.watchdog.enabled = true;

  using Mutator = exp::ExperimentGrid::Mutator;
  const std::vector<std::pair<std::string, Mutator>> faults = {
      {"none", [](core::SessionConfig&) {}},
      {"outages",
       [](core::SessionConfig& c) {
         c.fault.outage_rate_per_min = 1.5;
         c.fault.outage_mean_duration = sim::SimTime::seconds(2);
       }},
      {"flaky",
       [](core::SessionConfig& c) {
         c.fault.collapse_rate_per_min = 2.0;
         c.fault.collapse_factor = 0.15;
         c.fault.fetch_failure_prob = 0.08;
         c.fault.fetch_hang_prob = 0.03;
       }},
      {"sysfs",
       [](core::SessionConfig& c) {
         c.fault.sysfs_fault_rate_per_min = 2.0;
         c.fault.sysfs_fault_mean_duration = sim::SimTime::seconds(4);
       }},
      {"thermal",
       [](core::SessionConfig& c) {
         c.fault.thermal_cap_rate_per_min = 1.0;
         c.fault.thermal_cap_fraction = 0.6;
       }},
      {"chaos", [](core::SessionConfig& c) { c.fault = fault::FaultPlanConfig::harsh(); }},
  };

  exp::ExperimentGrid grid(base);
  grid.governors(governors).axis("fault", faults);

  const exp::ResultSet& results = app.run(grid);

  std::printf("%-10s %-8s %8s %9s %7s %8s %8s %8s %9s %8s\n", "governor", "fault", "total_J",
              "rebuf_s", "misses", "retries", "fails", "t/o", "fb_s", "fb_in");
  exp::print_rule(94);

  for (const auto& governor : governors) {
    for (const auto& [fault_name, unused] : faults) {
      (void)unused;
      const auto& sr = results.at({{"governor", governor}, {"fault", fault_name}});
      const auto& a = sr.agg;
      if (!sr.ok()) {
        std::printf("%-10s %-8s FAILED: %s\n", governor.c_str(), fault_name.c_str(),
                    sr.failures.front().message.c_str());
        continue;
      }
      std::printf("%-10s %-8s %8.1f %9.2f %7.0f %8.1f %8.1f %8.1f %9.1f %8.1f\n",
                  governor.c_str(), fault_name.c_str(), a.total_mj.mean() / 1000.0,
                  a.rebuffer_s.mean(), a.deadline_misses.mean(), a.fetch_retries.mean(),
                  a.fetch_failures.mean(), a.fetch_timeouts.mean(), a.vafs_fallback_s.mean(),
                  a.vafs_fallback_entries.mean());
    }
    std::printf("\n");
  }

  std::printf("Expected shape: every cell finishes. Outages cost rebuffer time, not\n"
              "correctness; flaky fetches show up as retries (and a few exhausted\n"
              "fetches under chaos) that the player re-requests; sysfs faults touch\n"
              "only VAFS, which fails over (fb_in > 0) and re-engages (fb_s well\n"
              "under the session length) instead of silently planning nothing.\n");
  return app.finish();
}
