// S1: decision-serving latency and throughput under fleet load.
//
// The fleet runner is the load generator: `--jobs` workers each advance a
// lockstep batch of sessions (one open decision stream per live session),
// so the daemon multiplexes jobs x batch concurrent streams — >= 1000 by
// default — over one Unix-socket connection per worker thread. Every
// decision round trip is timed client-side (RTT through the wire protocol)
// and, when the server runs in-process, server-side (DecisionCore::decide
// alone), both on lock-free log-linear histograms.
//
// The headline proof rides along: the same grid is re-run with in-process
// decisions and the two digest chains must match bit-for-bit — a daemon
// answering thousands of interleaved streams is indistinguishable, event
// stream for event stream, from the inline planner. The bench exits 1 on
// a mismatch, so every CI run of it is a determinism check at scale.
//
//   bench_s1_serving --quick             # smoke: short sessions, 1 wave
//   bench_s1_serving --serve /run/vafsd.sock   # drive an external daemon
//
// tools/check_perf.py gates the `extra` metrics (s1:*) against
// bench/baselines/serving_baseline.json.
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "exp/grid.h"
#include "exp/json.h"
#include "exp/options.h"
#include "exp/table.h"
#include "fleet/fleet_runner.h"
#include "obs/export.h"
#include "serve/client.h"
#include "serve/server.h"
#include "serve/stats.h"

namespace {

using namespace vafs;

/// Decorates a backend's streams with client-side round-trip timing: the
/// full cost a session pays per decision (encode + socket + decode + the
/// decision itself), recorded from the worker thread that waited for it.
class TimingStream final : public core::DecisionStream {
 public:
  TimingStream(std::unique_ptr<core::DecisionStream> inner, serve::LatencyHistogram* hist)
      : inner_(std::move(inner)), hist_(hist) {}

  core::DecisionResponse decide(const core::DecisionRequest& request) override {
    const auto t0 = std::chrono::steady_clock::now();
    core::DecisionResponse resp = inner_->decide(request);
    hist_->record_ns(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() -
                                                             t0)
            .count()));
    return resp;
  }

 private:
  std::unique_ptr<core::DecisionStream> inner_;
  serve::LatencyHistogram* hist_;
};

class TimingBackend final : public core::DecisionBackend {
 public:
  TimingBackend(core::DecisionBackend* inner, serve::LatencyHistogram* hist)
      : inner_(inner), hist_(hist) {}

  std::unique_ptr<core::DecisionStream> open(const core::DecisionStreamInfo& info) override {
    return std::make_unique<TimingStream>(inner_->open(info), hist_);
  }

 private:
  core::DecisionBackend* inner_;
  serve::LatencyHistogram* hist_;
};

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

std::string serving_usage() {
  return "serving flags:\n"
         "  --serve MODE       'auto' (default): host the decision server in-process\n"
         "                     on a private socket; otherwise the socket path of a\n"
         "                     running vafsd (server-side latency is then reported\n"
         "                     by the daemon, not here)\n"
         "  --seed-count N     sessions per scenario (default: jobs x batch, i.e.\n"
         "                     two full-concurrency waves across the 2 scenarios)\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vafs;

  exp::BenchOptions options;
  std::string error;
  if (!exp::parse_bench_args(argc, argv, &options, &error)) {
    std::fprintf(stderr, "bench_s1_serving: %s\n%s%s", error.c_str(),
                 exp::bench_usage("s1_serving").c_str(), serving_usage().c_str());
    return 2;
  }
  if (options.help) {
    std::printf("%s%s", exp::bench_usage("s1_serving").c_str(), serving_usage().c_str());
    return 0;
  }

  const int jobs = options.effective_jobs();
  // Concurrency comes from lockstep batch width x workers: the default
  // targets >= 1024 concurrent streams regardless of core count (a single
  // worker still multiplexes 1024 live sessions over one connection).
  const int batch =
      options.batch > 1 ? options.batch : static_cast<int>((1024 + jobs - 1) / jobs);
  const std::uint64_t streams =
      static_cast<std::uint64_t>(jobs) * static_cast<std::uint64_t>(batch);

  core::SessionConfig base;
  base.fixed_rep = 2;  // 720p
  base.media_duration = sim::SimTime::seconds(options.quick ? 10 : 30);
  base.downloader.attempt_timeout = sim::SimTime::seconds(6);
  base.downloader.max_attempts = 4;

  // Every scenario runs the vafs governor — the only one that consults the
  // decision stream — under the two canonical network profiles.
  exp::ExperimentGrid grid(base);
  grid.governors({"vafs"})
      .axis("net", {{"fair", [](core::SessionConfig& c) { c.net = core::NetProfile::kFair; }},
                    {"poor", [](core::SessionConfig& c) { c.net = core::NetProfile::kPoor; }}});
  const std::vector<exp::ScenarioSpec> scenarios = grid.scenarios();

  // Default load: scenarios x (jobs x batch) seeds = two full-concurrency
  // waves; --quick halves that to one wave.
  if (options.seed_count == 0) {
    options.seed_count = options.quick ? (streams + 1) / 2 : streams;
  }
  fleet::FleetOptions fopts;
  fopts.jobs = jobs;
  fopts.batch = batch;
  // One shard per pack: every worker wave is a full batch of live streams.
  fopts.shard_size = static_cast<std::size_t>(batch);
  fopts.seeds = options.fleet_seeds();
  fopts.trace = options.trace_flag != 0;  // default on: the digest chain IS the proof

  const std::uint64_t tasks =
      static_cast<std::uint64_t>(scenarios.size()) * fopts.seeds.size();

  // ---- The daemon under test.
  std::unique_ptr<serve::Server> server;
  std::string socket = options.serve.empty() ? "auto" : options.serve;
  if (socket == "auto") {
    socket = "/tmp/vafs-s1-" + std::to_string(getpid()) + ".sock";
    serve::ServerOptions sopts;
    sopts.socket_path = socket;
    sopts.max_connections = static_cast<std::size_t>(jobs) + 8;
    server = std::make_unique<serve::Server>(sopts);
    if (!server->start()) {
      std::fprintf(stderr, "bench_s1_serving: cannot start server on %s\n", socket.c_str());
      return 1;
    }
  }
  serve::SocketBackend socket_backend(socket);
  try {
    serve::ServeConnection probe(socket);
    if (!probe.ping()) {
      std::fprintf(stderr, "bench_s1_serving: daemon at %s did not answer a ping\n",
                   socket.c_str());
      return 1;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_s1_serving: %s\n", e.what());
    return 1;
  }

  serve::LatencyHistogram rtt;
  TimingBackend timing(&socket_backend, &rtt);
  fopts.decision_backend = &timing;

  std::printf("s1: %zu scenarios x %zu seeds = %llu sessions, %d jobs x %d-stream batches "
              "= %llu concurrent streams, daemon %s\n",
              scenarios.size(), fopts.seeds.size(), static_cast<unsigned long long>(tasks),
              jobs, batch, static_cast<unsigned long long>(streams),
              server ? "in-process" : socket.c_str());

  // ---- Serving leg.
  const auto t0 = std::chrono::steady_clock::now();
  const fleet::FleetResult served = run_fleet(scenarios, fopts);
  const double serve_s = seconds_since(t0);
  if (!served.ok()) {
    std::fprintf(stderr, "bench_s1_serving: %s\n", served.error.c_str());
    return 1;
  }
  if (!served.failures.empty()) {
    std::fprintf(stderr, "bench_s1_serving: %zu sessions failed under the daemon "
                 "(first: %s)\n",
                 served.failures.size(), served.failures.front().message.c_str());
    return 1;
  }

  serve::ServerStats sstats;
  if (server != nullptr) {
    server->stop();  // drain so the counters below are final
    sstats = server->stats();
  }

  // ---- In-process reference leg: same grid, inline decisions.
  fopts.decision_backend = nullptr;
  const auto t1 = std::chrono::steady_clock::now();
  const fleet::FleetResult inproc = run_fleet(scenarios, fopts);
  const double inproc_s = seconds_since(t1);
  if (!inproc.ok()) {
    std::fprintf(stderr, "bench_s1_serving: reference leg: %s\n", inproc.error.c_str());
    return 1;
  }

  const std::uint64_t decisions = rtt.count();
  const double decisions_per_sec =
      serve_s > 0 ? static_cast<double>(decisions) / serve_s : 0.0;
  const double sessions_per_sec =
      serve_s > 0 ? static_cast<double>(served.sessions_run) / serve_s : 0.0;

  std::printf("%-26s %12s %12s\n", "", "daemon", "in-process");
  exp::print_rule(54);
  std::printf("%-26s %12.2f %12.2f\n", "wall seconds", serve_s, inproc_s);
  std::printf("%-26s %12.0f %12.0f\n", "sessions/sec", sessions_per_sec,
              inproc_s > 0 ? static_cast<double>(inproc.sessions_run) / inproc_s : 0.0);
  std::printf("%-26s %12s %12s\n", "digest chain",
              obs::digest_hex(served.digest_chain).c_str(),
              obs::digest_hex(inproc.digest_chain).c_str());
  std::printf("serve: %llu decisions (%.0f/s), RTT p50/p95/p99 %.0f/%.0f/%.0f us "
              "(mean %.1f)\n",
              static_cast<unsigned long long>(decisions), decisions_per_sec,
              rtt.percentile_us(0.50), rtt.percentile_us(0.95), rtt.percentile_us(0.99),
              rtt.mean_us());
  if (server != nullptr) {
    std::printf("serve: server-side decide p50/p95/p99 %.0f/%.0f/%.0f us over %llu "
                "connections (%llu streams)\n",
                sstats.latency_p50_us, sstats.latency_p95_us, sstats.latency_p99_us,
                static_cast<unsigned long long>(sstats.connections_accepted),
                static_cast<unsigned long long>(sstats.streams_opened));
  }

  const bool tracing = fopts.trace;
  bool digests_match = true;
  if (tracing) {
    digests_match = served.digest_chain == inproc.digest_chain;
    std::printf("differential: digest chains %s\n",
                digests_match ? "identical (daemon == in-process, bitwise)" : "DIFFER");
  }

  if (options.out_json != "none") {
    const std::string path =
        options.out_json.empty() ? "BENCH_s1_serving.json" : options.out_json;
    exp::Json root = exp::Json::object();
    root.set("bench", "s1_serving");
    root.set("sessions", static_cast<std::uint64_t>(tasks));
    root.set("jobs", jobs);
    root.set("batch", batch);
    root.set("daemon", server ? "in-process" : socket);
    root.set("digest_chain_served", obs::digest_hex(served.digest_chain));
    root.set("digest_chain_inproc", obs::digest_hex(inproc.digest_chain));
    root.set("digests_match", digests_match);
    exp::Json extra = exp::Json::object();
    extra.set("concurrent_streams", streams);
    extra.set("decisions", decisions);
    extra.set("decisions_per_sec", decisions_per_sec);
    extra.set("sessions_per_sec", sessions_per_sec);
    extra.set("decision_rtt_p50_us", rtt.percentile_us(0.50));
    extra.set("decision_rtt_p95_us", rtt.percentile_us(0.95));
    extra.set("decision_rtt_p99_us", rtt.percentile_us(0.99));
    extra.set("decision_rtt_mean_us", rtt.mean_us());
    if (server != nullptr) {
      extra.set("server_decide_p50_us", sstats.latency_p50_us);
      extra.set("server_decide_p99_us", sstats.latency_p99_us);
      extra.set("server_requests", sstats.requests);
    }
    root.set("extra", std::move(extra));
    std::ofstream out(path, std::ios::trunc);
    out << root.dump() << '\n';
    if (!out) {
      std::fprintf(stderr, "bench_s1_serving: cannot write %s\n", path.c_str());
      return 1;
    }
    std::printf("s1: wrote %s\n", path.c_str());
  }

  if (tracing && !digests_match) {
    std::fprintf(stderr, "bench_s1_serving: FAILED: daemon-served digest chain differs from "
                 "in-process\n");
    return 1;
  }
  return 0;
}
