// T1 — the headline table: CPU energy per governor × content quality.
//
// 120-second sessions, fair LTE, fixed ABR at each ladder rung, aggregated
// over seeds by the experiment engine. Reports CPU energy (with stddev
// across seeds), total device energy, and the saving of each governor
// relative to ondemand (the classic Android baseline).
//
// Expected shape: performance worst; ondemand/interactive pay heavily for
// reactive bursts; VAFS saves 20-40 % of CPU energy vs ondemand at mid
// qualities with unchanged QoE (QoE shown in T2); powersave "wins" only by
// destroying playback.
#include <cstdio>
#include <string>
#include <vector>

#include "exp/bench_app.h"

int main(int argc, char** argv) {
  using namespace vafs;

  exp::BenchApp app(argc, argv, "t1", "CPU energy (J) by governor and content quality");

  const std::vector<std::string> governors = {"performance", "ondemand", "interactive",
                                              "conservative", "schedutil", "powersave", "vafs",
                                              "vafs-oracle"};
  const std::vector<std::pair<std::size_t, std::string>> reps = {
      {0, "360p"}, {1, "480p"}, {2, "720p"}, {3, "1080p"}};

  core::SessionConfig base;
  base.media_duration = app.session_seconds(120);
  base.net = core::NetProfile::kFair;

  const exp::ResultSet& results =
      app.run(exp::ExperimentGrid(base).governors(governors).reps(reps));

  std::printf("%-13s", "governor");
  for (const auto& [rep, name] : reps) std::printf(" %9s(J) %8s", name.c_str(), "vs-ondm");
  std::printf("\n");
  exp::print_rule(88);

  for (const auto& governor : governors) {
    std::printf("%-13s", governor.c_str());
    for (const auto& [rep, name] : reps) {
      const double cpu_j = results.agg({{"governor", governor}, {"rep", name}}).cpu_mj.mean() / 1000.0;
      const double base_j = results.agg({{"governor", "ondemand"}, {"rep", name}}).cpu_mj.mean() / 1000.0;
      const double saving = (1.0 - cpu_j / base_j) * 100.0;
      std::printf(" %12.2f %7.1f%%", cpu_j, saving);
    }
    std::printf("\n");
  }

  exp::print_rule(88);
  std::printf("\nDispersion across seeds (CPU J, mean ± stddev):\n\n");
  std::printf("%-13s", "governor");
  for (const auto& [rep, name] : reps) std::printf(" %16s", name.c_str());
  std::printf("\n");
  exp::print_rule(82);
  for (const auto& governor : governors) {
    std::printf("%-13s", governor.c_str());
    for (const auto& [rep, name] : reps) {
      const auto& cpu = results.agg({{"governor", governor}, {"rep", name}}).cpu_mj;
      std::printf(" %9.2f ±%5.2f", cpu.mean() / 1000.0, cpu.stddev() / 1000.0);
    }
    std::printf("\n");
  }

  std::printf("\nTotal device energy (J), including radio and display:\n\n");
  std::printf("%-13s", "governor");
  for (const auto& [rep, name] : reps) std::printf(" %11s", name.c_str());
  std::printf("\n");
  exp::print_rule(62);
  for (const auto& governor : governors) {
    std::printf("%-13s", governor.c_str());
    for (const auto& [rep, name] : reps) {
      std::printf(" %11.2f",
                  results.agg({{"governor", governor}, {"rep", name}}).total_mj.mean() / 1000.0);
    }
    std::printf("\n");
  }

  std::printf("\nNote: powersave rows are not QoE-comparable (see T2: it drops nearly\n"
              "every frame at 720p+). VAFS savings vs ondemand should read 20-40%% at\n"
              "480p-1080p and shrink at 360p where decode fits the lowest OPP anyway.\n");
  return app.finish();
}
