// T1 — the headline table: CPU energy per governor × content quality.
//
// 120-second sessions, fair LTE, fixed ABR at each ladder rung, averaged
// over seeds. Reports CPU energy, total device energy, and the saving of
// each governor relative to ondemand (the classic Android baseline).
//
// Expected shape: performance worst; ondemand/interactive pay heavily for
// reactive bursts; VAFS saves 20-40 % of CPU energy vs ondemand at mid
// qualities with unchanged QoE (QoE shown in T2); powersave "wins" only by
// destroying playback.
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_util.h"

int main() {
  using namespace vafs;

  bench::print_header("T1", "CPU energy (J) by governor and content quality");

  const std::vector<std::string> governors = {"performance", "ondemand", "interactive",
                                              "conservative", "schedutil", "powersave", "vafs",
                                              "vafs-oracle"};
  const std::vector<std::pair<std::size_t, const char*>> reps = {
      {0, "360p"}, {1, "480p"}, {2, "720p"}, {3, "1080p"}};

  // governor -> rep -> aggregate
  std::map<std::string, std::map<std::size_t, bench::Aggregate>> results;

  for (const auto& governor : governors) {
    for (const auto& [rep, name] : reps) {
      core::SessionConfig config;
      config.governor = governor;
      config.fixed_rep = rep;
      config.media_duration = sim::SimTime::seconds(120);
      config.net = core::NetProfile::kFair;
      results[governor][rep] = bench::run_averaged(config, bench::default_seeds());
    }
  }

  std::printf("%-13s", "governor");
  for (const auto& [rep, name] : reps) std::printf(" %9s(J) %8s", name, "vs-ondm");
  std::printf("\n");
  bench::print_rule(88);

  for (const auto& governor : governors) {
    std::printf("%-13s", governor.c_str());
    for (const auto& [rep, name] : reps) {
      const double cpu_j = results[governor][rep].cpu_mj / 1000.0;
      const double base_j = results["ondemand"][rep].cpu_mj / 1000.0;
      const double saving = (1.0 - cpu_j / base_j) * 100.0;
      std::printf(" %12.2f %7.1f%%", cpu_j, saving);
    }
    std::printf("\n");
  }

  bench::print_rule(88);
  std::printf("\nTotal device energy (J), including radio and display:\n\n");
  std::printf("%-13s", "governor");
  for (const auto& [rep, name] : reps) std::printf(" %11s", name);
  std::printf("\n");
  bench::print_rule(62);
  for (const auto& governor : governors) {
    std::printf("%-13s", governor.c_str());
    for (const auto& [rep, name] : reps) {
      std::printf(" %11.2f", results[governor][rep].total_mj / 1000.0);
    }
    std::printf("\n");
  }

  std::printf("\nNote: powersave rows are not QoE-comparable (see T2: it drops nearly\n"
              "every frame at 720p+). VAFS savings vs ondemand should read 20-40%% at\n"
              "480p-1080p and shrink at 360p where decode fits the lowest OPP anyway.\n");
  return 0;
}
