// T2 + F3 — QoE preservation: startup delay, rebuffering, dropped frames
// and deadline misses per governor × quality (same sessions as T1).
//
// Expected shape: VAFS within noise of ondemand/interactive on every QoE
// metric; powersave's deadline-miss rate explodes at 720p/1080p (F3's
// crossover), which is why "just run slow" is not a usable policy.
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_util.h"

int main() {
  using namespace vafs;

  bench::print_header("T2/F3", "QoE per governor and quality (startup s / rebuf / drop %)");

  const std::vector<std::string> governors = {"performance", "ondemand", "interactive",
                                              "conservative", "schedutil", "powersave", "vafs"};
  const std::vector<std::pair<std::size_t, const char*>> reps = {
      {0, "360p"}, {1, "480p"}, {2, "720p"}, {3, "1080p"}};

  std::map<std::string, std::map<std::size_t, bench::Aggregate>> results;
  for (const auto& governor : governors) {
    for (const auto& [rep, name] : reps) {
      core::SessionConfig config;
      config.governor = governor;
      config.fixed_rep = rep;
      config.media_duration = sim::SimTime::seconds(120);
      config.net = core::NetProfile::kFair;
      results[governor][rep] = bench::run_averaged(config, bench::default_seeds());
    }
  }

  for (const auto& [rep, name] : reps) {
    std::printf("\n--- %s ---\n", name);
    std::printf("%-13s %10s %8s %10s %9s %12s %12s\n", "governor", "startup_s", "rebuf",
                "rebuf_s", "drop_%", "misses", "transitions");
    bench::print_rule(80);
    for (const auto& governor : governors) {
      const auto& a = results[governor][rep];
      std::printf("%-13s %10.2f %8.1f %10.2f %9.2f %12.0f %12.0f\n", governor.c_str(),
                  a.startup_s, a.rebuffer_events, a.rebuffer_s, a.drop_pct, a.deadline_misses,
                  a.transitions);
    }
  }

  std::printf("\nF3 reading: deadline-miss (drop) rate vs quality — powersave crosses\n"
              "from usable (<=480p) to broken (720p+); every other governor, including\n"
              "VAFS, stays at ~0%% drops across the ladder.\n");
  return 0;
}
