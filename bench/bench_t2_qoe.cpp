// T2 + F3 — QoE preservation: startup delay, rebuffering, dropped frames
// and deadline misses per governor × quality (same sessions as T1).
//
// Expected shape: VAFS within noise of ondemand/interactive on every QoE
// metric; powersave's deadline-miss rate explodes at 720p/1080p (F3's
// crossover), which is why "just run slow" is not a usable policy.
#include <cstdio>
#include <string>
#include <vector>

#include "exp/bench_app.h"

int main(int argc, char** argv) {
  using namespace vafs;

  exp::BenchApp app(argc, argv, "t2",
                    "T2/F3: QoE per governor and quality (startup s / rebuf / drop %)");

  const std::vector<std::string> governors = {"performance", "ondemand", "interactive",
                                              "conservative", "schedutil", "powersave", "vafs"};
  const std::vector<std::pair<std::size_t, std::string>> reps = {
      {0, "360p"}, {1, "480p"}, {2, "720p"}, {3, "1080p"}};

  core::SessionConfig base;
  base.media_duration = app.session_seconds(120);
  base.net = core::NetProfile::kFair;

  const exp::ResultSet& results =
      app.run(exp::ExperimentGrid(base).governors(governors).reps(reps));

  for (const auto& [rep, name] : reps) {
    std::printf("\n--- %s ---\n", name.c_str());
    std::printf("%-13s %10s %8s %10s %9s %12s %12s\n", "governor", "startup_s", "rebuf",
                "rebuf_s", "drop_%", "misses", "transitions");
    exp::print_rule(80);
    for (const auto& governor : governors) {
      const auto& a = results.agg({{"governor", governor}, {"rep", name}});
      std::printf("%-13s %10.2f %8.1f %10.2f %9.2f %12.0f %12.0f\n", governor.c_str(),
                  a.startup_s.mean(), a.rebuffer_events.mean(), a.rebuffer_s.mean(),
                  a.drop_pct.mean(), a.deadline_misses.mean(), a.transitions.mean());
    }
  }

  std::printf("\nF3 reading: deadline-miss (drop) rate vs quality — powersave crosses\n"
              "from usable (<=480p) to broken (720p+); every other governor, including\n"
              "VAFS, stays at ~0%% drops across the ladder.\n");
  return app.finish();
}
