// T3 — cycle-demand predictor accuracy.
//
// Two views:
//   (a) offline: each predictor kind replayed over the exact per-frame
//       decode-cost streams of the content model at every quality
//       (MAPE + over-provision ratio = mean(pred)/mean(actual));
//   (b) in-system: the MAPE the VAFS controller actually observed during
//       full sessions.
//
// Expected shape: EWMA lowest MAPE but under-provisions (misses deadlines
// without margin); window-max over-provisions heavily; the p90 quantile
// sits between — which is why it is the default.
#include <cstdio>
#include <string>
#include <vector>

#include "core/predictor.h"
#include "exp/bench_app.h"
#include "video/content.h"
#include "video/manifest.h"

int main(int argc, char** argv) {
  using namespace vafs;

  exp::BenchApp app(argc, argv, "t3", "Cycle-demand predictor accuracy (MAPE, over-provision)");

  const video::Manifest manifest =
      video::Manifest::typical_vod("t3", sim::SimTime::seconds(120));
  const video::ContentModel content(4242, video::ContentParams{}, &manifest);

  const std::vector<std::pair<core::PredictorKind, std::string>> kinds = {
      {core::PredictorKind::kEwma, "ewma"},
      {core::PredictorKind::kWindowMax, "window-max"},
      {core::PredictorKind::kQuantile, "quantile-p90"},
  };

  // (a) is a pure predictor replay — no sessions, so it bypasses the grid
  // runner and lands in the artifact's "extra" payload instead.
  std::printf("(a) offline replay over per-frame decode costs (window 24)\n\n");
  std::printf("%-14s %8s %10s %10s %12s\n", "predictor", "rep", "mape_%", "overprov",
              "underpred_%");
  exp::print_rule(60);

  exp::Json offline = exp::Json::array();
  for (const auto& [kind, kind_name] : kinds) {
    for (std::size_t rep = 0; rep < manifest.representation_count(); ++rep) {
      core::PredictorConfig config;
      config.kind = kind;
      config.window = 24;
      core::CycleDemandPredictor predictor(config);

      double sum_pred = 0, sum_actual = 0;
      std::uint64_t under = 0, n = 0;
      for (std::uint64_t f = 0; f < 3600; ++f) {
        const double actual = content.frame(rep, f).decode_cycles;
        if (predictor.observations() > 0) {
          const double predicted = predictor.predict();
          sum_pred += predicted;
          sum_actual += actual;
          if (predicted < actual) ++under;
          ++n;
        }
        predictor.observe(actual);
      }
      const double mape_pct = predictor.mape() * 100.0;
      const double overprov = sum_pred / sum_actual;
      const double under_pct = 100.0 * static_cast<double>(under) / static_cast<double>(n);
      std::printf("%-14s %8s %10.2f %10.3f %12.1f\n", kind_name.c_str(),
                  manifest.representation(rep).id.c_str(), mape_pct, overprov, under_pct);

      exp::Json row = exp::Json::object();
      row.set("predictor", kind_name);
      row.set("rep", manifest.representation(rep).id);
      row.set("mape_pct", mape_pct);
      row.set("overprovision", overprov);
      row.set("underprediction_pct", under_pct);
      offline.push(std::move(row));
    }
    exp::print_rule(60);
  }
  app.extra().set("offline_replay", std::move(offline));

  // (b) in-system MAPE: predictor kind × class awareness, full sessions.
  core::SessionConfig base;
  base.governor = "vafs";
  base.fixed_rep = 2;
  base.media_duration = app.session_seconds(120);
  base.net = core::NetProfile::kFair;

  exp::ExperimentGrid grid(base);
  std::vector<std::pair<std::string, exp::ExperimentGrid::Mutator>> kind_axis;
  for (const auto& [kind, name] : kinds) {
    kind_axis.emplace_back(name,
                           [kind = kind](core::SessionConfig& c) { c.vafs.predictor.kind = kind; });
  }
  grid.axis("predictor", std::move(kind_axis))
      .axis("classes", {{"mixed", [](core::SessionConfig& c) { c.vafs.class_aware = false; }},
                        {"idr+p", [](core::SessionConfig& c) { c.vafs.class_aware = true; }}});
  const exp::ResultSet& in_system = app.run(grid, "in_system");

  std::printf("\n(b) in-system MAPE observed by the VAFS controller (720p, fair LTE)\n\n");
  std::printf("%-14s %-12s %10s %10s %10s\n", "predictor", "classes", "mape_%", "cpu_J",
              "drop_%");
  exp::print_rule(62);
  for (const auto& [kind, kind_name] : kinds) {
    for (const std::string classes : {"mixed", "idr+p"}) {
      const auto& a = in_system.agg({{"predictor", kind_name}, {"classes", classes}});
      std::printf("%-14s %-12s %10.2f %10.2f %10.2f\n", kind_name.c_str(), classes.c_str(),
                  a.vafs_mape.mean() * 100.0, a.cpu_mj.mean() / 1000.0, a.drop_pct.mean());
    }
  }

  // (c) class-aware prediction on intra-heavy content (GOP 12, IDR 6x).
  core::SessionConfig intra = base;
  intra.content.gop_frames = 12;
  intra.content.idr_weight = 6.0;
  exp::ExperimentGrid intra_grid(intra);
  intra_grid.axis("classes",
                  {{"mixed", [](core::SessionConfig& c) { c.vafs.class_aware = false; }},
                   {"idr+p", [](core::SessionConfig& c) { c.vafs.class_aware = true; }}});
  const exp::ResultSet& intra_results = app.run(intra_grid, "intra_heavy");

  std::printf("\n(c) class-aware prediction on intra-heavy content (GOP 12, IDR 6x)\n\n");
  std::printf("%-12s %10s %10s %10s\n", "classes", "mape_%", "cpu_J", "drop_%");
  exp::print_rule(46);
  for (const std::string classes : {"mixed", "idr+p"}) {
    const auto& a = intra_results.agg({{"classes", classes}});
    std::printf("%-12s %10.2f %10.2f %10.2f\n", classes.c_str(), a.vafs_mape.mean() * 100.0,
                a.cpu_mj.mean() / 1000.0, a.drop_pct.mean());
  }
  std::printf("\nExpected shape: splitting the classes roughly halves the MAPE on\n"
              "intra-heavy content; the OPP grid absorbs most of the remaining\n"
              "difference, so energy moves by low single digits.\n");

  return app.finish();
}
