// T3 — cycle-demand predictor accuracy.
//
// Two views:
//   (a) offline: each predictor kind replayed over the exact per-frame
//       decode-cost streams of the content model at every quality
//       (MAPE + over-provision ratio = mean(pred)/mean(actual));
//   (b) in-system: the MAPE the VAFS controller actually observed during
//       full sessions.
//
// Expected shape: EWMA lowest MAPE but under-provisions (misses deadlines
// without margin); window-max over-provisions heavily; the p90 quantile
// sits between — which is why it is the default.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/predictor.h"
#include "video/content.h"
#include "video/manifest.h"

int main() {
  using namespace vafs;

  bench::print_header("T3", "Cycle-demand predictor accuracy (MAPE, over-provision)");

  const video::Manifest manifest =
      video::Manifest::typical_vod("t3", sim::SimTime::seconds(120));
  const video::ContentModel content(4242, video::ContentParams{}, &manifest);

  const std::vector<std::pair<core::PredictorKind, const char*>> kinds = {
      {core::PredictorKind::kEwma, "ewma"},
      {core::PredictorKind::kWindowMax, "window-max"},
      {core::PredictorKind::kQuantile, "quantile-p90"},
  };

  std::printf("(a) offline replay over per-frame decode costs (window 24)\n\n");
  std::printf("%-14s %8s %10s %10s %12s\n", "predictor", "rep", "mape_%", "overprov",
              "underpred_%");
  bench::print_rule(60);

  for (const auto& [kind, kind_name] : kinds) {
    for (std::size_t rep = 0; rep < manifest.representation_count(); ++rep) {
      core::PredictorConfig config;
      config.kind = kind;
      config.window = 24;
      core::CycleDemandPredictor predictor(config);

      double sum_pred = 0, sum_actual = 0;
      std::uint64_t under = 0, n = 0;
      for (std::uint64_t f = 0; f < 3600; ++f) {
        const double actual = content.frame(rep, f).decode_cycles;
        if (predictor.observations() > 0) {
          const double predicted = predictor.predict();
          sum_pred += predicted;
          sum_actual += actual;
          if (predicted < actual) ++under;
          ++n;
        }
        predictor.observe(actual);
      }
      std::printf("%-14s %8s %10.2f %10.3f %12.1f\n", kind_name,
                  manifest.representation(rep).id.c_str(), predictor.mape() * 100.0,
                  sum_pred / sum_actual, 100.0 * static_cast<double>(under) /
                                             static_cast<double>(n));
    }
    bench::print_rule(60);
  }

  std::printf("\n(b) in-system MAPE observed by the VAFS controller (720p, fair LTE)\n\n");
  std::printf("%-14s %-12s %10s %10s %10s\n", "predictor", "classes", "mape_%", "cpu_J",
              "drop_%");
  bench::print_rule(62);
  for (const auto& [kind, kind_name] : kinds) {
    for (const bool class_aware : {false, true}) {
      core::SessionConfig config;
      config.governor = "vafs";
      config.vafs.predictor.kind = kind;
      config.vafs.class_aware = class_aware;
      config.fixed_rep = 2;
      config.media_duration = sim::SimTime::seconds(120);
      config.net = core::NetProfile::kFair;
      const auto a = bench::run_averaged(config, bench::default_seeds());
      std::printf("%-14s %-12s %10.2f %10.2f %10.2f\n", kind_name,
                  class_aware ? "idr+p" : "mixed", a.vafs_mape * 100.0, a.cpu_mj / 1000.0,
                  a.drop_pct);
    }
  }

  std::printf("\n(c) class-aware prediction on intra-heavy content (GOP 12, IDR 6x)\n\n");
  std::printf("%-12s %10s %10s %10s\n", "classes", "mape_%", "cpu_J", "drop_%");
  bench::print_rule(46);
  for (const bool class_aware : {false, true}) {
    core::SessionConfig config;
    config.governor = "vafs";
    config.vafs.class_aware = class_aware;
    config.content.gop_frames = 12;
    config.content.idr_weight = 6.0;
    config.fixed_rep = 2;
    config.media_duration = sim::SimTime::seconds(120);
    config.net = core::NetProfile::kFair;
    const auto a = bench::run_averaged(config, bench::default_seeds());
    std::printf("%-12s %10.2f %10.2f %10.2f\n", class_aware ? "idr+p" : "mixed",
                a.vafs_mape * 100.0, a.cpu_mj / 1000.0, a.drop_pct);
  }
  std::printf("\nExpected shape: splitting the classes roughly halves the MAPE on\n"
              "intra-heavy content; the OPP grid absorbs most of the remaining\n"
              "difference, so energy moves by low single digits.\n");

  return 0;
}
