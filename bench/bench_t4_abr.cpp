// T4 — interaction with adaptive bitrate.
//
// Energy and QoE under fixed / rate-based / buffer-based ABR, ondemand vs
// VAFS, on the fair LTE profile. Expected shape: the VAFS saving is
// ABR-independent (the controller keys its predictors by representation,
// so quality switches do not confuse it), and QoE metrics match the
// baseline within noise for every ABR.
#include <cstdio>
#include <string>
#include <vector>

#include "exp/bench_app.h"

int main(int argc, char** argv) {
  using namespace vafs;

  exp::BenchApp app(argc, argv, "t4", "Energy & QoE under different ABR algorithms (fair LTE)");

  const std::vector<std::pair<core::AbrKind, std::string>> abrs = {
      {core::AbrKind::kFixed, "fixed"},
      {core::AbrKind::kRate, "rate"},
      {core::AbrKind::kBuffer, "buffer"},
      {core::AbrKind::kBola, "bola"}};
  const std::vector<std::string> governors = {"ondemand", "vafs"};

  core::SessionConfig base;
  base.fixed_rep = 2;
  base.media_duration = app.session_seconds(120);
  base.net = core::NetProfile::kFair;

  exp::ExperimentGrid grid(base);
  std::vector<std::pair<std::string, exp::ExperimentGrid::Mutator>> abr_axis;
  for (const auto& [kind, name] : abrs) {
    abr_axis.emplace_back(name, [kind = kind](core::SessionConfig& c) { c.abr = kind; });
  }
  grid.axis("abr", std::move(abr_axis)).governors(governors);

  const exp::ResultSet& results = app.run(grid);

  std::printf("%-8s %-10s %9s %9s %9s %9s %10s %9s\n", "abr", "governor", "cpu_J", "vs_ondm",
              "drop_%", "rebuf", "kbps", "switches");
  exp::print_rule(80);

  for (const auto& [kind, abr] : abrs) {
    const double ondemand_cpu = results.agg({{"abr", abr}, {"governor", "ondemand"}}).cpu_mj.mean();
    for (const auto& governor : governors) {
      const auto& sr = results.at({{"abr", abr}, {"governor", governor}});
      const auto& a = sr.agg;
      // Quality switches from one representative run (the first seed).
      const auto switches = sr.run0().qoe.quality_switches;
      std::printf("%-8s %-10s %9.2f %8.1f%% %9.2f %9.1f %10.0f %9llu\n", abr.c_str(),
                  governor.c_str(), a.cpu_mj.mean() / 1000.0,
                  (1.0 - a.cpu_mj.mean() / ondemand_cpu) * 100.0, a.drop_pct.mean(),
                  a.rebuffer_events.mean(), a.mean_bitrate_kbps.mean(),
                  static_cast<unsigned long long>(switches));
    }
    exp::print_rule(80);
  }
  return app.finish();
}
