// T4 — interaction with adaptive bitrate.
//
// Energy and QoE under fixed / rate-based / buffer-based ABR, ondemand vs
// VAFS, on the fair LTE profile. Expected shape: the VAFS saving is
// ABR-independent (the controller keys its predictors by representation,
// so quality switches do not confuse it), and QoE metrics match the
// baseline within noise for every ABR.
#include <cstdio>
#include <vector>

#include "bench_util.h"

int main() {
  using namespace vafs;

  bench::print_header("T4", "Energy & QoE under different ABR algorithms (fair LTE)");

  std::printf("%-8s %-10s %9s %9s %9s %9s %10s %9s\n", "abr", "governor", "cpu_J", "vs_ondm",
              "drop_%", "rebuf", "kbps", "switches");
  bench::print_rule(80);

  for (const auto abr : {core::AbrKind::kFixed, core::AbrKind::kRate, core::AbrKind::kBuffer,
                         core::AbrKind::kBola}) {
    double ondemand_cpu = 0.0;
    for (const std::string governor : {"ondemand", "vafs"}) {
      core::SessionConfig config;
      config.governor = governor;
      config.abr = abr;
      config.fixed_rep = 2;
      config.media_duration = sim::SimTime::seconds(120);
      config.net = core::NetProfile::kFair;
      const auto a = bench::run_averaged(config, bench::default_seeds());
      if (governor == "ondemand") ondemand_cpu = a.cpu_mj;

      // Quality switches from one representative run.
      config.seed = bench::default_seeds().front();
      const auto r = core::run_session(config);

      std::printf("%-8s %-10s %9.2f %8.1f%% %9.2f %9.1f %10.0f %9llu\n",
                  core::abr_kind_name(abr), governor.c_str(), a.cpu_mj / 1000.0,
                  (1.0 - a.cpu_mj / ondemand_cpu) * 100.0, a.drop_pct, a.rebuffer_events,
                  a.mean_bitrate_kbps, static_cast<unsigned long long>(r.qoe.quality_switches));
    }
    bench::print_rule(80);
  }
  return 0;
}
