// T5 — live streaming (extension): energy and latency under the live
// constraint.
//
// Live mode caps buffering at the encoder's publish rate (2 s segments
// here), so the CPU sees a strict cadence: one download burst every two
// seconds, decode in lockstep. Expected shape: governor energy ranking
// matches VoD; live latency and stall behaviour are governor-independent
// (the network and publish schedule set them, not the CPU) — confirming
// VAFS is safe for latency-critical sessions.
#include <cstdio>
#include <string>
#include <vector>

#include "exp/bench_app.h"

int main(int argc, char** argv) {
  using namespace vafs;

  exp::BenchApp app(argc, argv, "t5",
                    "Live streaming: 2 s segments, 120 s session, fair LTE, 720p");

  const std::vector<std::string> governors = {"performance", "ondemand", "interactive",
                                              "schedutil", "vafs"};

  core::SessionConfig base;
  base.fixed_rep = 2;
  base.segment_duration = sim::SimTime::seconds(2);
  base.media_duration = app.session_seconds(120);
  base.net = core::NetProfile::kFair;
  base.player.live = true;
  base.player.startup_buffer = sim::SimTime::seconds(2);
  base.player.buffer_target = sim::SimTime::seconds(6);
  base.player.rebuffer_resume = sim::SimTime::seconds(2);

  const exp::ResultSet& results = app.run(exp::ExperimentGrid(base).governors(governors));

  std::printf("%-13s %9s %9s %10s %11s %9s %8s\n", "governor", "cpu_J", "vs_ondm",
              "latency_s", "startup_s", "drop_%", "rebuf");
  exp::print_rule(76);

  const double ondemand_cpu = results.agg({{"governor", "ondemand"}}).cpu_mj.mean();
  for (const auto& governor : governors) {
    const auto& a = results.agg({{"governor", governor}});
    if (!a.all_finished) {
      std::printf("%-13s DID NOT FINISH\n", governor.c_str());
      continue;
    }
    std::printf("%-13s %9.2f %8.1f%% %10.2f %11.2f %9.2f %8.1f\n", governor.c_str(),
                a.cpu_mj.mean() / 1000.0, (1.0 - a.cpu_mj.mean() / ondemand_cpu) * 100.0,
                a.live_latency_s.mean(), a.startup_s.mean(), a.drop_pct.mean(),
                a.rebuffer_events.mean());
  }

  std::printf("\nExpected shape: same energy ordering as VoD; live latency within a\n"
              "few hundred ms across governors — frequency policy does not trade\n"
              "latency for energy.\n");
  return app.finish();
}
