// T5 — live streaming (extension): energy and latency under the live
// constraint.
//
// Live mode caps buffering at the encoder's publish rate (2 s segments
// here), so the CPU sees a strict cadence: one download burst every two
// seconds, decode in lockstep. Expected shape: governor energy ranking
// matches VoD; live latency and stall behaviour are governor-independent
// (the network and publish schedule set them, not the CPU) — confirming
// VAFS is safe for latency-critical sessions.
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "trace/recorder.h"

int main() {
  using namespace vafs;

  bench::print_header("T5", "Live streaming: 2 s segments, 120 s session, fair LTE, 720p");

  std::printf("%-13s %9s %9s %10s %11s %9s %8s\n", "governor", "cpu_J", "vs_ondm",
              "latency_s", "startup_s", "drop_%", "rebuf");
  bench::print_rule(76);

  double ondemand_cpu = 0.0;
  for (const std::string governor :
       {"performance", "ondemand", "interactive", "schedutil", "vafs"}) {
    core::SessionConfig config;
    config.governor = governor;
    config.fixed_rep = 2;
    config.segment_duration = sim::SimTime::seconds(2);
    config.media_duration = sim::SimTime::seconds(120);
    config.net = core::NetProfile::kFair;
    config.seed = 808;
    config.player.live = true;
    config.player.startup_buffer = sim::SimTime::seconds(2);
    config.player.buffer_target = sim::SimTime::seconds(6);
    config.player.rebuffer_resume = sim::SimTime::seconds(2);

    // The final live latency needs the live player object: capture it.
    double latency_s = 0.0;
    core::SessionHooks hooks;
    stream::Player* player = nullptr;
    hooks.on_ready = [&player](core::SessionLive& live) { player = live.player; };
    const auto r = core::run_session(config, hooks);
    if (player != nullptr) latency_s = player->live_latency().as_seconds_f();

    if (!r.finished) {
      std::printf("%-13s DID NOT FINISH\n", governor.c_str());
      continue;
    }
    if (governor == "ondemand") ondemand_cpu = r.energy.cpu_mj;
    std::printf("%-13s %9.2f %8.1f%% %10.2f %11.2f %9.2f %8llu\n", governor.c_str(),
                r.energy.cpu_mj / 1000.0,
                ondemand_cpu > 0 ? (1.0 - r.energy.cpu_mj / ondemand_cpu) * 100.0 : 0.0,
                latency_s, r.qoe.startup_delay.as_seconds_f(), r.qoe.drop_ratio() * 100.0,
                static_cast<unsigned long long>(r.qoe.rebuffer_events));
  }

  std::printf("\nExpected shape: same energy ordering as VoD; live latency within a\n"
              "few hundred ms across governors — frequency policy does not trade\n"
              "latency for energy.\n");
  return 0;
}
