// Throughput — how fast the simulator itself runs.
//
// Two grids, each timed end to end through the exp engine:
//
//   t1   the default T1 grid (8 governors × 4 ladder rungs, fair LTE,
//        120 s sessions) — the repo's headline table and the reference
//        workload for the ≥3× sessions/sec target in EXPERIMENTS.md.
//   net  governor × network profile (6 governors × calm-through-volatile
//        networks, rate ABR) — stresses the downloader/bandwidth event
//        paths that the fixed-ABR T1 grid exercises lightly.
//
// Reports sessions/sec and simulated events/sec for both. These are the
// numbers the CI perf gate tracks (tools/check_perf.py vs
// bench/baselines/throughput_baseline.json); the session *outputs* are
// covered by the other benches, so this one prints only timing.
//
// Methodology: each grid runs once untimed to warm allocators and page in
// the binary, then `reps` timed passes; the fastest pass is reported
// (minimum wall time = least scheduler noise, standard for throughput
// benchmarking). Use --jobs 1 for the steadiest numbers; the default uses
// every core, which also exercises the per-worker arena reuse path.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "exp/bench_app.h"

namespace {

using namespace vafs;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

std::uint64_t total_events(const exp::ResultSet& results) {
  std::uint64_t events = 0;
  for (const auto& sr : results.all()) {
    for (const auto& r : sr.runs) events += r.sim_events;
  }
  return events;
}

struct GridTiming {
  std::size_t sessions = 0;
  std::uint64_t events = 0;
  double wall_sec = 0.0;
  double sessions_per_sec = 0.0;
  double events_per_sec = 0.0;
};

/// Times `reps` full passes over the grid and reports the fastest.
GridTiming time_grid(const char* tag, const exp::ExperimentGrid& grid,
                     const exp::ResultSet& warm, const exp::RunOptions& opts, int reps) {
  GridTiming t;
  t.sessions = grid.scenarios().size() * opts.seeds.size();
  t.events = total_events(warm);
  for (int rep = 0; rep < reps; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    exp::run_grid(grid, opts);
    const double wall = seconds_since(start);
    std::printf("  [%s] pass %d: %.3f s  (%.1f sessions/s, %.2f M events/s)\n", tag, rep + 1,
                wall, static_cast<double>(t.sessions) / wall,
                static_cast<double>(t.events) / wall / 1e6);
    if (t.wall_sec == 0.0 || wall < t.wall_sec) t.wall_sec = wall;
  }
  t.sessions_per_sec = static_cast<double>(t.sessions) / t.wall_sec;
  t.events_per_sec = static_cast<double>(t.events) / t.wall_sec;
  return t;
}

void report(const char* tag, const GridTiming& t, int reps, exp::Json& extra) {
  std::printf("\n[%s] best of %d: %.3f s wall\n", tag, reps, t.wall_sec);
  std::printf("  %12.1f sessions/sec\n", t.sessions_per_sec);
  std::printf("  %12.2f M simulated events/sec\n", t.events_per_sec / 1e6);
  std::printf("  %12.1f k events per session (mean)\n\n",
              static_cast<double>(t.events) / static_cast<double>(t.sessions) / 1e3);
  const std::string prefix(tag);
  extra.set(prefix + "_sessions", static_cast<std::uint64_t>(t.sessions));
  extra.set(prefix + "_events", t.events);
  extra.set(prefix + "_wall_sec", t.wall_sec);
  extra.set(prefix + "_sessions_per_sec", t.sessions_per_sec);
  extra.set(prefix + "_events_per_sec", t.events_per_sec);
}

}  // namespace

int main(int argc, char** argv) {
  // default_trace=false: this bench *is* the perf baseline, so its sessions
  // run with tracing fully detached (the observer-effect-0 configuration).
  // --trace re-enables digests for a tracing-overhead A/B measurement.
  exp::BenchApp app(argc, argv, "throughput",
                    "Simulator throughput: sessions/sec and events/sec (T1 grid + governor x net grid)",
                    /*default_trace=*/false);

  // ---- Grid 1: the default T1 grid (bench_t1_energy_by_governor) ----------
  const std::vector<std::string> t1_governors = {"performance", "ondemand", "interactive",
                                                 "conservative", "schedutil", "powersave",
                                                 "vafs", "vafs-oracle"};
  const std::vector<std::pair<std::size_t, std::string>> t1_reps = {
      {0, "360p"}, {1, "480p"}, {2, "720p"}, {3, "1080p"}};

  core::SessionConfig t1_base;
  t1_base.media_duration = app.session_seconds(120);
  t1_base.net = core::NetProfile::kFair;
  const exp::ExperimentGrid t1_grid =
      exp::ExperimentGrid(t1_base).governors(t1_governors).reps(t1_reps);

  // ---- Grid 2: governor × network profile ----------------------------------
  const std::vector<std::string> net_governors = {"performance", "ondemand",  "interactive",
                                                  "conservative", "schedutil", "vafs"};
  const std::vector<std::pair<core::NetProfile, std::string>> nets = {
      {core::NetProfile::kPoor, "poor"},
      {core::NetProfile::kFair, "fair"},
      {core::NetProfile::kGood, "good"}};

  core::SessionConfig net_base;
  net_base.media_duration = app.session_seconds(120);
  // Rate-based ABR keeps poor-network sessions from stalling their way to
  // the sim cap: the workload stays a finite, representative stream.
  net_base.abr = core::AbrKind::kRate;

  std::vector<std::pair<std::string, exp::ExperimentGrid::Mutator>> net_values;
  for (const auto& [profile, name] : nets) {
    const core::NetProfile p = profile;
    net_values.emplace_back(name, [p](core::SessionConfig& c) { c.net = p; });
  }
  const exp::ExperimentGrid net_grid =
      exp::ExperimentGrid(net_base).governors(net_governors).axis("net", std::move(net_values));

  const int reps = app.quick() ? 2 : 3;
  exp::RunOptions timed_opts;
  timed_opts.jobs = app.jobs();
  timed_opts.seeds = app.seeds();
  timed_opts.batch = app.options().batch;
  timed_opts.trace = app.tracing();  // off by default; --trace A/Bs the digest cost

  std::printf("t1 grid:  %zu scenarios x %zu seeds = %zu sessions\n", t1_grid.scenarios().size(),
              app.seeds().size(), t1_grid.scenarios().size() * app.seeds().size());
  std::printf("net grid: %zu scenarios x %zu seeds = %zu sessions\n", net_grid.scenarios().size(),
              app.seeds().size(), net_grid.scenarios().size() * app.seeds().size());
  std::printf("%d timed reps per grid, %d jobs\n\n", reps, app.jobs());

  // Warmup passes (untimed); their results also feed the standard artifacts
  // so the JSON still carries the usual per-scenario metric aggregates.
  const exp::ResultSet& t1_warm = app.run(t1_grid, "t1");
  const exp::ResultSet& net_warm = app.run(net_grid, "net");

  const GridTiming t1 = time_grid("t1", t1_grid, t1_warm, timed_opts, reps);
  const GridTiming net = time_grid("net", net_grid, net_warm, timed_opts, reps);

  exp::Json& extra = app.extra();
  report("t1", t1, reps, extra);
  report("net", net, reps, extra);

  // ---- Batch sweep: the T1 grid through the lockstep SessionBatch path ----
  // Same grid, same jobs, same (bitwise-identical) per-session work — only
  // the per-worker driver changes, so the deltas below isolate what the
  // shared wheel + arena-pinned lanes buy (or cost) at each width.
  // All three sizes even under --quick: the perf gate's baseline lists
  // every batch metric, and a quick CI run must still produce them all.
  const std::vector<int> batch_sizes = {4, 8, 32};
  std::vector<std::pair<int, GridTiming>> batch_timings;
  for (const int batch : batch_sizes) {
    exp::RunOptions batch_opts = timed_opts;
    batch_opts.batch = batch;
    const std::string tag = "t1_batch" + std::to_string(batch);
    const GridTiming bt = time_grid(tag.c_str(), t1_grid, t1_warm, batch_opts, reps);
    report(tag.c_str(), bt, reps, extra);
    batch_timings.emplace_back(batch, bt);
  }
  std::printf("serial vs batch, t1 grid (%d jobs):\n\n", app.jobs());
  std::printf("%-12s %14s %10s\n", "path", "sessions/sec", "vs serial");
  exp::print_rule(38);
  std::printf("%-12s %14.1f %10s\n", "serial", t1.sessions_per_sec, "1.00x");
  for (const auto& [batch, bt] : batch_timings) {
    std::printf("batch=%-6d %14.1f %9.2fx\n", batch, bt.sessions_per_sec,
                bt.sessions_per_sec / t1.sessions_per_sec);
  }
  std::printf("\n");

  // Back-compat headline keys: the T1 grid is the reference workload.
  extra.set("sessions_per_sec", t1.sessions_per_sec);
  extra.set("events_per_sec", t1.events_per_sec);
  extra.set("timed_reps", reps);
  extra.set("jobs", app.jobs());

  std::printf("per-scenario event counts, t1 grid (seed %llu):\n\n",
              static_cast<unsigned long long>(app.seeds().front()));
  std::printf("%-13s", "governor");
  for (const auto& [rep, name] : t1_reps) std::printf(" %12s", name.c_str());
  std::printf("\n");
  exp::print_rule(65);
  for (const auto& governor : t1_governors) {
    std::printf("%-13s", governor.c_str());
    for (const auto& [rep, name] : t1_reps) {
      const auto& sr = t1_warm.at({{"governor", governor}, {"rep", name}});
      std::printf(" %12llu", static_cast<unsigned long long>(sr.run0().sim_events));
    }
    std::printf("\n");
  }
  return app.finish();
}
