// Shared helpers for the experiment benches: seed-averaged session runs
// and aligned table printing. Each bench binary regenerates one table or
// figure of the reconstructed evaluation (see DESIGN.md / EXPERIMENTS.md).
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "core/session.h"

namespace vafs::bench {

/// Aggregate of N seed-varied sessions of one configuration.
struct Aggregate {
  double cpu_mj = 0.0;
  double radio_mj = 0.0;
  double display_mj = 0.0;
  double total_mj = 0.0;
  double cpu_mean_mw = 0.0;
  double startup_s = 0.0;
  double rebuffer_events = 0.0;
  double rebuffer_s = 0.0;
  double drop_pct = 0.0;
  double deadline_misses = 0.0;
  double transitions = 0.0;
  double mean_bitrate_kbps = 0.0;
  double busy_fraction = 0.0;
  double wall_s = 0.0;
  double vafs_mape = 0.0;
  int runs = 0;
  bool all_finished = true;
};

/// Runs `config` once per seed and averages the scalar outputs.
inline Aggregate run_averaged(core::SessionConfig config, const std::vector<std::uint64_t>& seeds) {
  Aggregate agg;
  for (const auto seed : seeds) {
    config.seed = seed;
    const core::SessionResult r = core::run_session(config);
    agg.all_finished = agg.all_finished && r.finished;
    agg.cpu_mj += r.energy.cpu_mj;
    agg.radio_mj += r.energy.radio_mj;
    agg.display_mj += r.energy.display_mj;
    agg.total_mj += r.energy.total_mj();
    agg.cpu_mean_mw += r.energy.cpu_mean_mw();
    agg.startup_s += r.qoe.startup_delay.as_seconds_f();
    agg.rebuffer_events += static_cast<double>(r.qoe.rebuffer_events);
    agg.rebuffer_s += r.qoe.rebuffer_time.as_seconds_f();
    agg.drop_pct += r.qoe.drop_ratio() * 100.0;
    agg.deadline_misses += static_cast<double>(r.qoe.deadline_misses);
    agg.transitions += static_cast<double>(r.freq_transitions);
    agg.mean_bitrate_kbps += r.qoe.mean_bitrate_kbps;
    agg.busy_fraction += r.busy_fraction;
    agg.wall_s += r.wall.as_seconds_f();
    agg.vafs_mape += r.vafs_decode_mape;
    ++agg.runs;
  }
  const double n = agg.runs > 0 ? agg.runs : 1;
  agg.cpu_mj /= n;
  agg.radio_mj /= n;
  agg.display_mj /= n;
  agg.total_mj /= n;
  agg.cpu_mean_mw /= n;
  agg.startup_s /= n;
  agg.rebuffer_events /= n;
  agg.rebuffer_s /= n;
  agg.drop_pct /= n;
  agg.deadline_misses /= n;
  agg.transitions /= n;
  agg.mean_bitrate_kbps /= n;
  agg.busy_fraction /= n;
  agg.wall_s /= n;
  agg.vafs_mape /= n;
  return agg;
}

inline std::vector<std::uint64_t> default_seeds() { return {101, 202, 303}; }

inline void print_header(const char* experiment, const char* description) {
  std::printf("\n==============================================================================\n");
  std::printf("%s — %s\n", experiment, description);
  std::printf("==============================================================================\n");
}

inline void print_rule(int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace vafs::bench
