file(REMOVE_RECURSE
  "CMakeFiles/bench_f10_thermal.dir/bench_f10_thermal.cpp.o"
  "CMakeFiles/bench_f10_thermal.dir/bench_f10_thermal.cpp.o.d"
  "bench_f10_thermal"
  "bench_f10_thermal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f10_thermal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
