file(REMOVE_RECURSE
  "CMakeFiles/bench_f11_radio_tech.dir/bench_f11_radio_tech.cpp.o"
  "CMakeFiles/bench_f11_radio_tech.dir/bench_f11_radio_tech.cpp.o.d"
  "bench_f11_radio_tech"
  "bench_f11_radio_tech.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f11_radio_tech.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
