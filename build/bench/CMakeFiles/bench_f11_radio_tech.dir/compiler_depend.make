# Empty compiler generated dependencies file for bench_f11_radio_tech.
# This may be replaced when dependencies are built.
