
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_f12_cpuidle.cpp" "bench/CMakeFiles/bench_f12_cpuidle.dir/bench_f12_cpuidle.cpp.o" "gcc" "bench/CMakeFiles/bench_f12_cpuidle.dir/bench_f12_cpuidle.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/vafs_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/vafs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/vafs_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/video/CMakeFiles/vafs_video.dir/DependInfo.cmake"
  "/root/repo/build/src/governors/CMakeFiles/vafs_governors.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/vafs_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/vafs_net.dir/DependInfo.cmake"
  "/root/repo/build/src/thermal/CMakeFiles/vafs_thermal.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/vafs_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/vafs_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/sysfs/CMakeFiles/vafs_sysfs.dir/DependInfo.cmake"
  "/root/repo/build/src/simcore/CMakeFiles/vafs_simcore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
