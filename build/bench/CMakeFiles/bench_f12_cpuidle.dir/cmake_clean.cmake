file(REMOVE_RECURSE
  "CMakeFiles/bench_f12_cpuidle.dir/bench_f12_cpuidle.cpp.o"
  "CMakeFiles/bench_f12_cpuidle.dir/bench_f12_cpuidle.cpp.o.d"
  "bench_f12_cpuidle"
  "bench_f12_cpuidle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f12_cpuidle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
