# Empty compiler generated dependencies file for bench_f12_cpuidle.
# This may be replaced when dependencies are built.
