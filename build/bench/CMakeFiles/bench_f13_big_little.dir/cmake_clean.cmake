file(REMOVE_RECURSE
  "CMakeFiles/bench_f13_big_little.dir/bench_f13_big_little.cpp.o"
  "CMakeFiles/bench_f13_big_little.dir/bench_f13_big_little.cpp.o.d"
  "bench_f13_big_little"
  "bench_f13_big_little.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f13_big_little.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
