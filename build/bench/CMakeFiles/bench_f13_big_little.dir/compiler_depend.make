# Empty compiler generated dependencies file for bench_f13_big_little.
# This may be replaced when dependencies are built.
