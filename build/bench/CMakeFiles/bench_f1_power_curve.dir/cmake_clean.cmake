file(REMOVE_RECURSE
  "CMakeFiles/bench_f1_power_curve.dir/bench_f1_power_curve.cpp.o"
  "CMakeFiles/bench_f1_power_curve.dir/bench_f1_power_curve.cpp.o.d"
  "bench_f1_power_curve"
  "bench_f1_power_curve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f1_power_curve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
