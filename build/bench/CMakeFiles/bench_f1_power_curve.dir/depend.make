# Empty dependencies file for bench_f1_power_curve.
# This may be replaced when dependencies are built.
