file(REMOVE_RECURSE
  "CMakeFiles/bench_f2_timeline.dir/bench_f2_timeline.cpp.o"
  "CMakeFiles/bench_f2_timeline.dir/bench_f2_timeline.cpp.o.d"
  "bench_f2_timeline"
  "bench_f2_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f2_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
