# Empty dependencies file for bench_f2_timeline.
# This may be replaced when dependencies are built.
