file(REMOVE_RECURSE
  "CMakeFiles/bench_f5_residency.dir/bench_f5_residency.cpp.o"
  "CMakeFiles/bench_f5_residency.dir/bench_f5_residency.cpp.o.d"
  "bench_f5_residency"
  "bench_f5_residency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f5_residency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
