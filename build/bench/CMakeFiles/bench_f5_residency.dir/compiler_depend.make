# Empty compiler generated dependencies file for bench_f5_residency.
# This may be replaced when dependencies are built.
