file(REMOVE_RECURSE
  "CMakeFiles/bench_f6_sensitivity.dir/bench_f6_sensitivity.cpp.o"
  "CMakeFiles/bench_f6_sensitivity.dir/bench_f6_sensitivity.cpp.o.d"
  "bench_f6_sensitivity"
  "bench_f6_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f6_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
