# Empty compiler generated dependencies file for bench_f6_sensitivity.
# This may be replaced when dependencies are built.
