file(REMOVE_RECURSE
  "CMakeFiles/bench_f7_segment_duration.dir/bench_f7_segment_duration.cpp.o"
  "CMakeFiles/bench_f7_segment_duration.dir/bench_f7_segment_duration.cpp.o.d"
  "bench_f7_segment_duration"
  "bench_f7_segment_duration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f7_segment_duration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
