# Empty dependencies file for bench_f7_segment_duration.
# This may be replaced when dependencies are built.
