file(REMOVE_RECURSE
  "CMakeFiles/bench_f8_breakdown.dir/bench_f8_breakdown.cpp.o"
  "CMakeFiles/bench_f8_breakdown.dir/bench_f8_breakdown.cpp.o.d"
  "bench_f8_breakdown"
  "bench_f8_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f8_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
