# Empty compiler generated dependencies file for bench_f8_breakdown.
# This may be replaced when dependencies are built.
