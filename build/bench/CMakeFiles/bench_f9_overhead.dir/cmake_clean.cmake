file(REMOVE_RECURSE
  "CMakeFiles/bench_f9_overhead.dir/bench_f9_overhead.cpp.o"
  "CMakeFiles/bench_f9_overhead.dir/bench_f9_overhead.cpp.o.d"
  "bench_f9_overhead"
  "bench_f9_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f9_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
