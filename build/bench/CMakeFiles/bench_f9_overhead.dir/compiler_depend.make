# Empty compiler generated dependencies file for bench_f9_overhead.
# This may be replaced when dependencies are built.
