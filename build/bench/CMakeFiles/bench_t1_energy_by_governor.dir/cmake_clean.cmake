file(REMOVE_RECURSE
  "CMakeFiles/bench_t1_energy_by_governor.dir/bench_t1_energy_by_governor.cpp.o"
  "CMakeFiles/bench_t1_energy_by_governor.dir/bench_t1_energy_by_governor.cpp.o.d"
  "bench_t1_energy_by_governor"
  "bench_t1_energy_by_governor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t1_energy_by_governor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
