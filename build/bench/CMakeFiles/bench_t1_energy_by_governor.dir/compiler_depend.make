# Empty compiler generated dependencies file for bench_t1_energy_by_governor.
# This may be replaced when dependencies are built.
