file(REMOVE_RECURSE
  "CMakeFiles/bench_t2_qoe.dir/bench_t2_qoe.cpp.o"
  "CMakeFiles/bench_t2_qoe.dir/bench_t2_qoe.cpp.o.d"
  "bench_t2_qoe"
  "bench_t2_qoe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t2_qoe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
