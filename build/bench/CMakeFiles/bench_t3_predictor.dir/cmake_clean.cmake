file(REMOVE_RECURSE
  "CMakeFiles/bench_t3_predictor.dir/bench_t3_predictor.cpp.o"
  "CMakeFiles/bench_t3_predictor.dir/bench_t3_predictor.cpp.o.d"
  "bench_t3_predictor"
  "bench_t3_predictor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t3_predictor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
