# Empty dependencies file for bench_t3_predictor.
# This may be replaced when dependencies are built.
