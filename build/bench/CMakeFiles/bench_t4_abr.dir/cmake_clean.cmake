file(REMOVE_RECURSE
  "CMakeFiles/bench_t4_abr.dir/bench_t4_abr.cpp.o"
  "CMakeFiles/bench_t4_abr.dir/bench_t4_abr.cpp.o.d"
  "bench_t4_abr"
  "bench_t4_abr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t4_abr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
