# Empty compiler generated dependencies file for bench_t4_abr.
# This may be replaced when dependencies are built.
