file(REMOVE_RECURSE
  "CMakeFiles/bench_t5_live.dir/bench_t5_live.cpp.o"
  "CMakeFiles/bench_t5_live.dir/bench_t5_live.cpp.o.d"
  "bench_t5_live"
  "bench_t5_live.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t5_live.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
