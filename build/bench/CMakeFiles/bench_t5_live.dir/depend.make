# Empty dependencies file for bench_t5_live.
# This may be replaced when dependencies are built.
