file(REMOVE_RECURSE
  "CMakeFiles/battery_budget.dir/battery_budget.cpp.o"
  "CMakeFiles/battery_budget.dir/battery_budget.cpp.o.d"
  "battery_budget"
  "battery_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/battery_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
