# Empty dependencies file for battery_budget.
# This may be replaced when dependencies are built.
