file(REMOVE_RECURSE
  "CMakeFiles/binge_session.dir/binge_session.cpp.o"
  "CMakeFiles/binge_session.dir/binge_session.cpp.o.d"
  "binge_session"
  "binge_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/binge_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
