# Empty dependencies file for binge_session.
# This may be replaced when dependencies are built.
