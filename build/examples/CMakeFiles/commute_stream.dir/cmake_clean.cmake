file(REMOVE_RECURSE
  "CMakeFiles/commute_stream.dir/commute_stream.cpp.o"
  "CMakeFiles/commute_stream.dir/commute_stream.cpp.o.d"
  "commute_stream"
  "commute_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/commute_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
