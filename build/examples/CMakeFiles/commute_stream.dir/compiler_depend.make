# Empty compiler generated dependencies file for commute_stream.
# This may be replaced when dependencies are built.
