file(REMOVE_RECURSE
  "CMakeFiles/governor_tuning.dir/governor_tuning.cpp.o"
  "CMakeFiles/governor_tuning.dir/governor_tuning.cpp.o.d"
  "governor_tuning"
  "governor_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/governor_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
