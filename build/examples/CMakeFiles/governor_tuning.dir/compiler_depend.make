# Empty compiler generated dependencies file for governor_tuning.
# This may be replaced when dependencies are built.
