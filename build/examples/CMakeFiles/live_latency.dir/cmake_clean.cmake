file(REMOVE_RECURSE
  "CMakeFiles/live_latency.dir/live_latency.cpp.o"
  "CMakeFiles/live_latency.dir/live_latency.cpp.o.d"
  "live_latency"
  "live_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/live_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
