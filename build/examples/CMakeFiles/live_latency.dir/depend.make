# Empty dependencies file for live_latency.
# This may be replaced when dependencies are built.
