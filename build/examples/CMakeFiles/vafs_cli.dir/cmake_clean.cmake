file(REMOVE_RECURSE
  "CMakeFiles/vafs_cli.dir/vafs_cli.cpp.o"
  "CMakeFiles/vafs_cli.dir/vafs_cli.cpp.o.d"
  "vafs_cli"
  "vafs_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vafs_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
