# Empty compiler generated dependencies file for vafs_cli.
# This may be replaced when dependencies are built.
