file(REMOVE_RECURSE
  "CMakeFiles/vafs_core.dir/predictor.cpp.o"
  "CMakeFiles/vafs_core.dir/predictor.cpp.o.d"
  "CMakeFiles/vafs_core.dir/session.cpp.o"
  "CMakeFiles/vafs_core.dir/session.cpp.o.d"
  "CMakeFiles/vafs_core.dir/vafs_controller.cpp.o"
  "CMakeFiles/vafs_core.dir/vafs_controller.cpp.o.d"
  "libvafs_core.a"
  "libvafs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vafs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
