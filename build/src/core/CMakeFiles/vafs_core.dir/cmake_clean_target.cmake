file(REMOVE_RECURSE
  "libvafs_core.a"
)
