# Empty dependencies file for vafs_core.
# This may be replaced when dependencies are built.
