
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cpu/cpu_model.cpp" "src/cpu/CMakeFiles/vafs_cpu.dir/cpu_model.cpp.o" "gcc" "src/cpu/CMakeFiles/vafs_cpu.dir/cpu_model.cpp.o.d"
  "/root/repo/src/cpu/cpufreq_policy.cpp" "src/cpu/CMakeFiles/vafs_cpu.dir/cpufreq_policy.cpp.o" "gcc" "src/cpu/CMakeFiles/vafs_cpu.dir/cpufreq_policy.cpp.o.d"
  "/root/repo/src/cpu/cpufreq_sysfs.cpp" "src/cpu/CMakeFiles/vafs_cpu.dir/cpufreq_sysfs.cpp.o" "gcc" "src/cpu/CMakeFiles/vafs_cpu.dir/cpufreq_sysfs.cpp.o.d"
  "/root/repo/src/cpu/cpuidle.cpp" "src/cpu/CMakeFiles/vafs_cpu.dir/cpuidle.cpp.o" "gcc" "src/cpu/CMakeFiles/vafs_cpu.dir/cpuidle.cpp.o.d"
  "/root/repo/src/cpu/governor.cpp" "src/cpu/CMakeFiles/vafs_cpu.dir/governor.cpp.o" "gcc" "src/cpu/CMakeFiles/vafs_cpu.dir/governor.cpp.o.d"
  "/root/repo/src/cpu/opp.cpp" "src/cpu/CMakeFiles/vafs_cpu.dir/opp.cpp.o" "gcc" "src/cpu/CMakeFiles/vafs_cpu.dir/opp.cpp.o.d"
  "/root/repo/src/cpu/power_model.cpp" "src/cpu/CMakeFiles/vafs_cpu.dir/power_model.cpp.o" "gcc" "src/cpu/CMakeFiles/vafs_cpu.dir/power_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simcore/CMakeFiles/vafs_simcore.dir/DependInfo.cmake"
  "/root/repo/build/src/sysfs/CMakeFiles/vafs_sysfs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
