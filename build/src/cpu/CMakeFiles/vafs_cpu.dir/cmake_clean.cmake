file(REMOVE_RECURSE
  "CMakeFiles/vafs_cpu.dir/cpu_model.cpp.o"
  "CMakeFiles/vafs_cpu.dir/cpu_model.cpp.o.d"
  "CMakeFiles/vafs_cpu.dir/cpufreq_policy.cpp.o"
  "CMakeFiles/vafs_cpu.dir/cpufreq_policy.cpp.o.d"
  "CMakeFiles/vafs_cpu.dir/cpufreq_sysfs.cpp.o"
  "CMakeFiles/vafs_cpu.dir/cpufreq_sysfs.cpp.o.d"
  "CMakeFiles/vafs_cpu.dir/cpuidle.cpp.o"
  "CMakeFiles/vafs_cpu.dir/cpuidle.cpp.o.d"
  "CMakeFiles/vafs_cpu.dir/governor.cpp.o"
  "CMakeFiles/vafs_cpu.dir/governor.cpp.o.d"
  "CMakeFiles/vafs_cpu.dir/opp.cpp.o"
  "CMakeFiles/vafs_cpu.dir/opp.cpp.o.d"
  "CMakeFiles/vafs_cpu.dir/power_model.cpp.o"
  "CMakeFiles/vafs_cpu.dir/power_model.cpp.o.d"
  "libvafs_cpu.a"
  "libvafs_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vafs_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
