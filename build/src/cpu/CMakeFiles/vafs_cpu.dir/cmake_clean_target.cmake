file(REMOVE_RECURSE
  "libvafs_cpu.a"
)
