# Empty compiler generated dependencies file for vafs_cpu.
# This may be replaced when dependencies are built.
