file(REMOVE_RECURSE
  "CMakeFiles/vafs_energy.dir/meter.cpp.o"
  "CMakeFiles/vafs_energy.dir/meter.cpp.o.d"
  "libvafs_energy.a"
  "libvafs_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vafs_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
