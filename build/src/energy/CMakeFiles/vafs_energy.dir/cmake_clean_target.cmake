file(REMOVE_RECURSE
  "libvafs_energy.a"
)
