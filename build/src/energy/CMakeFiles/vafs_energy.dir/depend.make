# Empty dependencies file for vafs_energy.
# This may be replaced when dependencies are built.
