
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/governors/basic.cpp" "src/governors/CMakeFiles/vafs_governors.dir/basic.cpp.o" "gcc" "src/governors/CMakeFiles/vafs_governors.dir/basic.cpp.o.d"
  "/root/repo/src/governors/conservative.cpp" "src/governors/CMakeFiles/vafs_governors.dir/conservative.cpp.o" "gcc" "src/governors/CMakeFiles/vafs_governors.dir/conservative.cpp.o.d"
  "/root/repo/src/governors/interactive.cpp" "src/governors/CMakeFiles/vafs_governors.dir/interactive.cpp.o" "gcc" "src/governors/CMakeFiles/vafs_governors.dir/interactive.cpp.o.d"
  "/root/repo/src/governors/ondemand.cpp" "src/governors/CMakeFiles/vafs_governors.dir/ondemand.cpp.o" "gcc" "src/governors/CMakeFiles/vafs_governors.dir/ondemand.cpp.o.d"
  "/root/repo/src/governors/registry.cpp" "src/governors/CMakeFiles/vafs_governors.dir/registry.cpp.o" "gcc" "src/governors/CMakeFiles/vafs_governors.dir/registry.cpp.o.d"
  "/root/repo/src/governors/sampling_base.cpp" "src/governors/CMakeFiles/vafs_governors.dir/sampling_base.cpp.o" "gcc" "src/governors/CMakeFiles/vafs_governors.dir/sampling_base.cpp.o.d"
  "/root/repo/src/governors/schedutil.cpp" "src/governors/CMakeFiles/vafs_governors.dir/schedutil.cpp.o" "gcc" "src/governors/CMakeFiles/vafs_governors.dir/schedutil.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cpu/CMakeFiles/vafs_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/simcore/CMakeFiles/vafs_simcore.dir/DependInfo.cmake"
  "/root/repo/build/src/sysfs/CMakeFiles/vafs_sysfs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
