file(REMOVE_RECURSE
  "CMakeFiles/vafs_governors.dir/basic.cpp.o"
  "CMakeFiles/vafs_governors.dir/basic.cpp.o.d"
  "CMakeFiles/vafs_governors.dir/conservative.cpp.o"
  "CMakeFiles/vafs_governors.dir/conservative.cpp.o.d"
  "CMakeFiles/vafs_governors.dir/interactive.cpp.o"
  "CMakeFiles/vafs_governors.dir/interactive.cpp.o.d"
  "CMakeFiles/vafs_governors.dir/ondemand.cpp.o"
  "CMakeFiles/vafs_governors.dir/ondemand.cpp.o.d"
  "CMakeFiles/vafs_governors.dir/registry.cpp.o"
  "CMakeFiles/vafs_governors.dir/registry.cpp.o.d"
  "CMakeFiles/vafs_governors.dir/sampling_base.cpp.o"
  "CMakeFiles/vafs_governors.dir/sampling_base.cpp.o.d"
  "CMakeFiles/vafs_governors.dir/schedutil.cpp.o"
  "CMakeFiles/vafs_governors.dir/schedutil.cpp.o.d"
  "libvafs_governors.a"
  "libvafs_governors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vafs_governors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
