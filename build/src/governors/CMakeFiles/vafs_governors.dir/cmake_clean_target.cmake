file(REMOVE_RECURSE
  "libvafs_governors.a"
)
