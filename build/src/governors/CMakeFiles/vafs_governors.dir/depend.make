# Empty dependencies file for vafs_governors.
# This may be replaced when dependencies are built.
