file(REMOVE_RECURSE
  "CMakeFiles/vafs_net.dir/bandwidth.cpp.o"
  "CMakeFiles/vafs_net.dir/bandwidth.cpp.o.d"
  "CMakeFiles/vafs_net.dir/downloader.cpp.o"
  "CMakeFiles/vafs_net.dir/downloader.cpp.o.d"
  "CMakeFiles/vafs_net.dir/radio.cpp.o"
  "CMakeFiles/vafs_net.dir/radio.cpp.o.d"
  "libvafs_net.a"
  "libvafs_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vafs_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
