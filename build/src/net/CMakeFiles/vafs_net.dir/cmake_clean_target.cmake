file(REMOVE_RECURSE
  "libvafs_net.a"
)
