# Empty dependencies file for vafs_net.
# This may be replaced when dependencies are built.
