file(REMOVE_RECURSE
  "CMakeFiles/vafs_sched.dir/router.cpp.o"
  "CMakeFiles/vafs_sched.dir/router.cpp.o.d"
  "libvafs_sched.a"
  "libvafs_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vafs_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
