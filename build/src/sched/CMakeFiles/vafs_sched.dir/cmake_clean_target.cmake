file(REMOVE_RECURSE
  "libvafs_sched.a"
)
