# Empty compiler generated dependencies file for vafs_sched.
# This may be replaced when dependencies are built.
