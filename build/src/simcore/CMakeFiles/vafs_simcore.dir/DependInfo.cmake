
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simcore/event_queue.cpp" "src/simcore/CMakeFiles/vafs_simcore.dir/event_queue.cpp.o" "gcc" "src/simcore/CMakeFiles/vafs_simcore.dir/event_queue.cpp.o.d"
  "/root/repo/src/simcore/rng.cpp" "src/simcore/CMakeFiles/vafs_simcore.dir/rng.cpp.o" "gcc" "src/simcore/CMakeFiles/vafs_simcore.dir/rng.cpp.o.d"
  "/root/repo/src/simcore/simulator.cpp" "src/simcore/CMakeFiles/vafs_simcore.dir/simulator.cpp.o" "gcc" "src/simcore/CMakeFiles/vafs_simcore.dir/simulator.cpp.o.d"
  "/root/repo/src/simcore/stats.cpp" "src/simcore/CMakeFiles/vafs_simcore.dir/stats.cpp.o" "gcc" "src/simcore/CMakeFiles/vafs_simcore.dir/stats.cpp.o.d"
  "/root/repo/src/simcore/time.cpp" "src/simcore/CMakeFiles/vafs_simcore.dir/time.cpp.o" "gcc" "src/simcore/CMakeFiles/vafs_simcore.dir/time.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
