file(REMOVE_RECURSE
  "CMakeFiles/vafs_simcore.dir/event_queue.cpp.o"
  "CMakeFiles/vafs_simcore.dir/event_queue.cpp.o.d"
  "CMakeFiles/vafs_simcore.dir/rng.cpp.o"
  "CMakeFiles/vafs_simcore.dir/rng.cpp.o.d"
  "CMakeFiles/vafs_simcore.dir/simulator.cpp.o"
  "CMakeFiles/vafs_simcore.dir/simulator.cpp.o.d"
  "CMakeFiles/vafs_simcore.dir/stats.cpp.o"
  "CMakeFiles/vafs_simcore.dir/stats.cpp.o.d"
  "CMakeFiles/vafs_simcore.dir/time.cpp.o"
  "CMakeFiles/vafs_simcore.dir/time.cpp.o.d"
  "libvafs_simcore.a"
  "libvafs_simcore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vafs_simcore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
