file(REMOVE_RECURSE
  "libvafs_simcore.a"
)
