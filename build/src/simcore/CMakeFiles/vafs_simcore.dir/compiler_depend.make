# Empty compiler generated dependencies file for vafs_simcore.
# This may be replaced when dependencies are built.
