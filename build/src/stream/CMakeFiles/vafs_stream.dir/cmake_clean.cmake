file(REMOVE_RECURSE
  "CMakeFiles/vafs_stream.dir/abr.cpp.o"
  "CMakeFiles/vafs_stream.dir/abr.cpp.o.d"
  "CMakeFiles/vafs_stream.dir/player.cpp.o"
  "CMakeFiles/vafs_stream.dir/player.cpp.o.d"
  "libvafs_stream.a"
  "libvafs_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vafs_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
