file(REMOVE_RECURSE
  "libvafs_stream.a"
)
