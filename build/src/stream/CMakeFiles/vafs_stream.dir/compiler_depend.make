# Empty compiler generated dependencies file for vafs_stream.
# This may be replaced when dependencies are built.
