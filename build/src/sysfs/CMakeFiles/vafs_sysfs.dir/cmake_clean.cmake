file(REMOVE_RECURSE
  "CMakeFiles/vafs_sysfs.dir/tree.cpp.o"
  "CMakeFiles/vafs_sysfs.dir/tree.cpp.o.d"
  "libvafs_sysfs.a"
  "libvafs_sysfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vafs_sysfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
