file(REMOVE_RECURSE
  "libvafs_sysfs.a"
)
