# Empty compiler generated dependencies file for vafs_sysfs.
# This may be replaced when dependencies are built.
