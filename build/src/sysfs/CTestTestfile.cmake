# CMake generated Testfile for 
# Source directory: /root/repo/src/sysfs
# Build directory: /root/repo/build/src/sysfs
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
