
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/thermal/model.cpp" "src/thermal/CMakeFiles/vafs_thermal.dir/model.cpp.o" "gcc" "src/thermal/CMakeFiles/vafs_thermal.dir/model.cpp.o.d"
  "/root/repo/src/thermal/throttle.cpp" "src/thermal/CMakeFiles/vafs_thermal.dir/throttle.cpp.o" "gcc" "src/thermal/CMakeFiles/vafs_thermal.dir/throttle.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cpu/CMakeFiles/vafs_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/simcore/CMakeFiles/vafs_simcore.dir/DependInfo.cmake"
  "/root/repo/build/src/sysfs/CMakeFiles/vafs_sysfs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
