file(REMOVE_RECURSE
  "CMakeFiles/vafs_thermal.dir/model.cpp.o"
  "CMakeFiles/vafs_thermal.dir/model.cpp.o.d"
  "CMakeFiles/vafs_thermal.dir/throttle.cpp.o"
  "CMakeFiles/vafs_thermal.dir/throttle.cpp.o.d"
  "libvafs_thermal.a"
  "libvafs_thermal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vafs_thermal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
