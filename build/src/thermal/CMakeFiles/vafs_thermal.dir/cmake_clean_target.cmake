file(REMOVE_RECURSE
  "libvafs_thermal.a"
)
