# Empty compiler generated dependencies file for vafs_thermal.
# This may be replaced when dependencies are built.
