file(REMOVE_RECURSE
  "CMakeFiles/vafs_trace.dir/bandwidth_file.cpp.o"
  "CMakeFiles/vafs_trace.dir/bandwidth_file.cpp.o.d"
  "CMakeFiles/vafs_trace.dir/csv.cpp.o"
  "CMakeFiles/vafs_trace.dir/csv.cpp.o.d"
  "CMakeFiles/vafs_trace.dir/recorder.cpp.o"
  "CMakeFiles/vafs_trace.dir/recorder.cpp.o.d"
  "libvafs_trace.a"
  "libvafs_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vafs_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
