file(REMOVE_RECURSE
  "libvafs_trace.a"
)
