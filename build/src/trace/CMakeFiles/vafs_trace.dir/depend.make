# Empty dependencies file for vafs_trace.
# This may be replaced when dependencies are built.
