
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/video/buffer.cpp" "src/video/CMakeFiles/vafs_video.dir/buffer.cpp.o" "gcc" "src/video/CMakeFiles/vafs_video.dir/buffer.cpp.o.d"
  "/root/repo/src/video/content.cpp" "src/video/CMakeFiles/vafs_video.dir/content.cpp.o" "gcc" "src/video/CMakeFiles/vafs_video.dir/content.cpp.o.d"
  "/root/repo/src/video/manifest.cpp" "src/video/CMakeFiles/vafs_video.dir/manifest.cpp.o" "gcc" "src/video/CMakeFiles/vafs_video.dir/manifest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simcore/CMakeFiles/vafs_simcore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
