file(REMOVE_RECURSE
  "CMakeFiles/vafs_video.dir/buffer.cpp.o"
  "CMakeFiles/vafs_video.dir/buffer.cpp.o.d"
  "CMakeFiles/vafs_video.dir/content.cpp.o"
  "CMakeFiles/vafs_video.dir/content.cpp.o.d"
  "CMakeFiles/vafs_video.dir/manifest.cpp.o"
  "CMakeFiles/vafs_video.dir/manifest.cpp.o.d"
  "libvafs_video.a"
  "libvafs_video.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vafs_video.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
