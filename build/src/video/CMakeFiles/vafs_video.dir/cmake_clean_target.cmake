file(REMOVE_RECURSE
  "libvafs_video.a"
)
