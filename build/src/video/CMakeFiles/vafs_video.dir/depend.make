# Empty dependencies file for vafs_video.
# This may be replaced when dependencies are built.
