file(REMOVE_RECURSE
  "CMakeFiles/cpufreq_test.dir/cpufreq_test.cpp.o"
  "CMakeFiles/cpufreq_test.dir/cpufreq_test.cpp.o.d"
  "cpufreq_test"
  "cpufreq_test.pdb"
  "cpufreq_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpufreq_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
