# Empty dependencies file for cpufreq_test.
# This may be replaced when dependencies are built.
