file(REMOVE_RECURSE
  "CMakeFiles/cpuidle_test.dir/cpuidle_test.cpp.o"
  "CMakeFiles/cpuidle_test.dir/cpuidle_test.cpp.o.d"
  "cpuidle_test"
  "cpuidle_test.pdb"
  "cpuidle_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpuidle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
