# Empty dependencies file for cpuidle_test.
# This may be replaced when dependencies are built.
