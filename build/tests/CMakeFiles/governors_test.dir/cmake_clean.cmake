file(REMOVE_RECURSE
  "CMakeFiles/governors_test.dir/governors_test.cpp.o"
  "CMakeFiles/governors_test.dir/governors_test.cpp.o.d"
  "governors_test"
  "governors_test.pdb"
  "governors_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/governors_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
