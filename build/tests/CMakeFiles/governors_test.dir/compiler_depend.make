# Empty compiler generated dependencies file for governors_test.
# This may be replaced when dependencies are built.
