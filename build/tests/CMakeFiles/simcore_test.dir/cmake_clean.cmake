file(REMOVE_RECURSE
  "CMakeFiles/simcore_test.dir/simcore_test.cpp.o"
  "CMakeFiles/simcore_test.dir/simcore_test.cpp.o.d"
  "simcore_test"
  "simcore_test.pdb"
  "simcore_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simcore_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
