# Empty dependencies file for simcore_test.
# This may be replaced when dependencies are built.
