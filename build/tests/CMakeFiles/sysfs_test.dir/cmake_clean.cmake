file(REMOVE_RECURSE
  "CMakeFiles/sysfs_test.dir/sysfs_test.cpp.o"
  "CMakeFiles/sysfs_test.dir/sysfs_test.cpp.o.d"
  "sysfs_test"
  "sysfs_test.pdb"
  "sysfs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sysfs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
