# Empty dependencies file for sysfs_test.
# This may be replaced when dependencies are built.
