file(REMOVE_RECURSE
  "CMakeFiles/video_test.dir/video_test.cpp.o"
  "CMakeFiles/video_test.dir/video_test.cpp.o.d"
  "video_test"
  "video_test.pdb"
  "video_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/video_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
