# Empty compiler generated dependencies file for video_test.
# This may be replaced when dependencies are built.
