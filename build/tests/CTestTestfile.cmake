# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/simcore_test[1]_include.cmake")
include("/root/repo/build/tests/sysfs_test[1]_include.cmake")
include("/root/repo/build/tests/cpu_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/cpufreq_test[1]_include.cmake")
include("/root/repo/build/tests/governors_test[1]_include.cmake")
include("/root/repo/build/tests/video_test[1]_include.cmake")
include("/root/repo/build/tests/stream_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/session_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/energy_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/thermal_test[1]_include.cmake")
include("/root/repo/build/tests/cpuidle_test[1]_include.cmake")
include("/root/repo/build/tests/sched_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
