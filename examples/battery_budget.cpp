// Battery budget: how many minutes of 720p streaming a phone battery buys
// under each governor — the end-user framing of the energy results.
//
// Uses the measured mean device power of a 2-minute session to extrapolate
// playback hours from a typical 3000 mAh / 3.85 V battery (41.6 kJ).
#include <cstdio>

#include "core/session.h"

int main() {
  using namespace vafs;

  constexpr double battery_j = 3.000 * 3.85 * 3600.0;  // 3000 mAh at 3.85 V

  std::printf("Battery budget: 720p over fair LTE, 3000 mAh battery (%.1f kJ)\n\n", battery_j / 1000.0);
  std::printf("%-13s %12s %12s %14s %12s\n", "governor", "device_mW", "cpu_mW", "playback_h",
              "extra_min");
  for (int i = 0; i < 66; ++i) std::putchar('-');
  std::putchar('\n');

  double base_hours = 0.0;
  for (const char* governor :
       {"performance", "ondemand", "interactive", "conservative", "schedutil", "vafs"}) {
    core::SessionConfig config;
    config.governor = governor;
    config.fixed_rep = 2;
    config.media_duration = sim::SimTime::seconds(120);
    config.net = core::NetProfile::kFair;
    config.seed = 11;

    const auto r = core::run_session(config);
    if (!r.finished) continue;

    const double device_mw = r.energy.mean_mw();
    const double hours = battery_j / (device_mw / 1000.0) / 3600.0;
    if (std::string_view(governor) == "ondemand") base_hours = hours;
    const double extra_min = base_hours > 0 ? (hours - base_hours) * 60.0 : 0.0;
    std::printf("%-13s %12.0f %12.0f %14.2f %+12.0f\n", governor, device_mw,
                r.energy.cpu_mean_mw(), hours, extra_min);
  }

  std::printf("\n(extra_min is relative to ondemand. Radio and display dominate device\n"
              "power, so a ~40%% CPU saving buys tens of minutes, not hours — F8 shows\n"
              "the breakdown.)\n");
  return 0;
}
