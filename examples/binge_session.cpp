// Binge evening: three 20-minute episodes back to back, with seeks (the
// "skip intro" button) — the longest-horizon scenario in the examples, and
// a check that per-session results compose sensibly over an evening.
#include <cstdio>
#include <string>

#include "core/session.h"

namespace {

struct EveningTotals {
  double cpu_mj = 0;
  double radio_mj = 0;
  double display_mj = 0;
  double rebuffer_s = 0;
  double seek_s = 0;
  std::uint64_t drops = 0;
  bool ok = true;
};

EveningTotals run_evening(const std::string& governor) {
  EveningTotals totals;
  for (int episode = 0; episode < 3; ++episode) {
    vafs::core::SessionConfig config;
    config.governor = governor;
    config.abr = vafs::core::AbrKind::kBuffer;
    config.media_duration = vafs::sim::SimTime::seconds(20 * 60);
    config.net = vafs::core::NetProfile::kGood;
    config.seed = 9000 + static_cast<std::uint64_t>(episode);

    // "Skip intro": 75 s into the episode, jump ahead 90 s.
    vafs::core::SessionHooks hooks;
    hooks.on_ready = [](vafs::core::SessionLive& live) {
      live.sim->at(vafs::sim::SimTime::seconds(75), [player = live.player] {
        player->seek(vafs::sim::SimTime::seconds(165));
      });
    };

    const auto r = vafs::core::run_session(config, hooks);
    totals.ok = totals.ok && r.finished;
    totals.cpu_mj += r.energy.cpu_mj;
    totals.radio_mj += r.energy.radio_mj;
    totals.display_mj += r.energy.display_mj;
    totals.rebuffer_s += r.qoe.rebuffer_time.as_seconds_f();
    totals.seek_s += r.qoe.seek_time.as_seconds_f();
    totals.drops += r.qoe.frames_dropped;
  }
  return totals;
}

}  // namespace

int main() {
  std::printf("Binge evening: 3 x 20 min episodes, buffer-based ABR, good LTE,\n"
              "one skip-intro seek per episode\n\n");
  std::printf("%-12s %10s %10s %10s %10s %8s %7s\n", "governor", "cpu_J", "radio_J", "disp_J",
              "total_J", "seek_s", "drops");

  double ondemand_total = 0;
  for (const char* governor : {"ondemand", "interactive", "schedutil", "vafs"}) {
    const EveningTotals t = run_evening(governor);
    if (!t.ok) {
      std::printf("%-12s DID NOT FINISH\n", governor);
      continue;
    }
    const double total_j = (t.cpu_mj + t.radio_mj + t.display_mj) / 1000.0;
    if (std::string_view(governor) == "ondemand") ondemand_total = total_j;
    std::printf("%-12s %10.1f %10.1f %10.1f %10.1f %8.2f %7llu\n", governor, t.cpu_mj / 1000.0,
                t.radio_mj / 1000.0, t.display_mj / 1000.0, total_j, t.seek_s,
                static_cast<unsigned long long>(t.drops));
  }
  std::printf("\n(An hour of video; the CPU delta compounds: vs ondemand's total\n"
              "%.0f J, VAFS returns several phone-minutes per evening.)\n", ondemand_total);
  return 0;
}
