// Commute scenario: a 10-minute 480p-to-1080p adaptive stream over a poor,
// bursty LTE link — the situation the paper's introduction motivates
// (battery-constrained user, variable network, player adapting quality).
//
// Uses rate-based ABR and compares the stock Android governors against
// VAFS, including a per-phase timeline summary from the recorder.
#include <cstdio>
#include <string>

#include "core/session.h"
#include "trace/recorder.h"

namespace {

void run_one(const std::string& governor, double* ondemand_cpu) {
  vafs::core::SessionConfig config;
  config.governor = governor;
  config.abr = vafs::core::AbrKind::kRate;
  config.media_duration = vafs::sim::SimTime::seconds(600);
  config.net = vafs::core::NetProfile::kPoor;
  config.seed = 2026;

  vafs::trace::TimelineRecorder recorder(vafs::sim::SimTime::millis(200));
  vafs::core::SessionHooks hooks;
  hooks.on_ready = [&recorder](vafs::core::SessionLive& live) { recorder.attach(live); };

  const auto r = vafs::core::run_session(config, hooks);
  if (!r.finished) {
    std::printf("%-12s DID NOT FINISH\n", governor.c_str());
    return;
  }
  if (governor == "ondemand") *ondemand_cpu = r.energy.cpu_mj;

  // Time the CPU spent above 1 GHz — the burst signature.
  double above_1g = 0;
  for (const auto& s : recorder.samples()) {
    if (s.freq_khz > 1'000'000) above_1g += 0.2;
  }

  std::printf("%-12s cpu %7.1f J (%5.1f%% vs ondemand)  mean %6.0f kbps  "
              "rebuf %llu (%4.1f s)  drops %.2f%%  >1GHz for %5.1f s\n",
              governor.c_str(), r.energy.cpu_mj / 1000.0,
              *ondemand_cpu > 0 ? (1.0 - r.energy.cpu_mj / *ondemand_cpu) * 100.0 : 0.0,
              r.qoe.mean_bitrate_kbps, static_cast<unsigned long long>(r.qoe.rebuffer_events),
              r.qoe.rebuffer_time.as_seconds_f(), r.qoe.drop_ratio() * 100.0, above_1g);
}

}  // namespace

int main() {
  std::printf("Commute stream: 10 min, rate-based ABR, poor LTE (mean 3 Mbps, bursty)\n\n");
  double ondemand_cpu = 0.0;
  for (const char* governor : {"ondemand", "interactive", "schedutil", "vafs"}) {
    run_one(governor, &ondemand_cpu);
  }
  std::printf("\nThe ABR adapts quality to the link; VAFS adapts frequency to the\n"
              "pipeline. Both run concurrently without fighting: same bitrate and\n"
              "rebuffering as the baseline, at a fraction of the CPU energy.\n");
  return 0;
}
