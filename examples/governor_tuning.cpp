// Governor tuning through the sysfs interface — the low-level public API.
//
// Builds the device stack by hand (no session harness) and drives it the
// way a shell user or init script would:
//
//   cat  .../scaling_available_governors
//   echo ondemand  > .../scaling_governor
//   echo 95        > .../ondemand/up_threshold
//   echo userspace > .../scaling_governor        (what VAFS does)
//   echo 900000    > .../scaling_setspeed
//   cat  .../stats/time_in_state
//
// and shows how tunables change the energy of the same workload.
#include <cstdio>
#include <string>

#include "cpu/cpufreq_policy.h"
#include "cpu/cpufreq_sysfs.h"
#include "governors/registry.h"
#include "net/downloader.h"
#include "simcore/simulator.h"
#include "stream/player.h"
#include "video/content.h"

using namespace vafs;

namespace {

/// One 60 s 720p session against a hand-built stack whose governor (and
/// optional tunable write) is applied through sysfs. Returns CPU mJ.
double run_with(const std::string& governor, const std::string& tunable_path,
                const std::string& tunable_value, bool print_sysfs_tour) {
  sim::Simulator simulator;
  cpu::CpuModel cpu_model(simulator, cpu::OppTable::mobile_big_core(), cpu::CpuPowerModel());
  cpu::GovernorRegistry registry;
  governors::register_standard(registry);
  cpu::CpufreqPolicy policy(simulator, cpu_model, registry, "ondemand");
  sysfs::Tree tree;
  cpu::CpufreqSysfs binder(tree, policy, 0);
  const std::string dir = binder.dir();

  if (print_sysfs_tour) {
    std::printf("$ ls /sys/%s\n", dir.c_str());
    for (const auto& name : tree.list(dir).value_or({})) std::printf("  %s\n", name.c_str());
    std::printf("$ cat scaling_available_governors\n  %s",
                tree.read(dir + "/scaling_available_governors").value_or("?").c_str());
    std::printf("$ cat scaling_available_frequencies\n  %s",
                tree.read(dir + "/scaling_available_frequencies").value_or("?").c_str());
  }

  // Switch governor exactly the way a shell would.
  if (!tree.write(dir + "/scaling_governor", governor).ok()) {
    std::printf("failed to select governor %s\n", governor.c_str());
    return 0;
  }
  if (!tunable_path.empty()) {
    const auto status = tree.write(dir + "/" + tunable_path, tunable_value);
    std::printf("$ echo %s > %s   -> %s\n", tunable_value.c_str(), tunable_path.c_str(),
                status.ok() ? "ok" : "EINVAL");
  }

  net::RadioModel radio(simulator, net::RadioParams::lte());
  net::ConstantBandwidth bandwidth(12.0);
  net::Downloader downloader(simulator, radio, bandwidth, &cpu_model);
  video::Manifest manifest = video::Manifest::typical_vod("demo", sim::SimTime::seconds(60));
  video::ContentModel content(77, video::ContentParams{}, &manifest);
  stream::Player player(simulator, cpu_model, downloader, content,
                        std::make_unique<stream::FixedAbr>(2));

  bool done = false;
  player.start([&done] { done = true; });
  while (!done && simulator.step()) {
  }

  if (print_sysfs_tour) {
    std::printf("$ cat stats/time_in_state       (freq_khz  10ms-ticks)\n%s",
                tree.read(dir + "/stats/time_in_state").value_or("?").c_str());
    std::printf("$ cat stats/total_trans\n  %s",
                tree.read(dir + "/stats/total_trans").value_or("?").c_str());
  }
  return cpu_model.energy_mj();
}

}  // namespace

int main() {
  std::printf("=== sysfs tour: default ondemand on a 60 s 720p stream ===\n\n");
  const double base = run_with("ondemand", "", "", /*print_sysfs_tour=*/true);
  std::printf("\nondemand (up_threshold=80):            %8.1f mJ\n", base);

  const double strict = run_with("ondemand", "ondemand/up_threshold", "95", false);
  std::printf("ondemand (up_threshold=95):            %8.1f mJ  (%.1f%% vs default)\n", strict,
              (1 - strict / base) * 100.0);

  const double lazy =
      run_with("ondemand", "ondemand/sampling_rate", "100000", false);
  std::printf("ondemand (sampling_rate=100ms):        %8.1f mJ  (%.1f%% vs default)\n", lazy,
              (1 - lazy / base) * 100.0);

  const double conservative = run_with("conservative", "conservative/freq_step", "10", false);
  std::printf("conservative (freq_step=10%%):          %8.1f mJ  (%.1f%% vs default)\n",
              conservative, (1 - conservative / base) * 100.0);

  // The userspace path: pin a frequency by hand (a crude static VAFS).
  const double pinned = run_with("userspace", "scaling_setspeed", "900000", false);
  std::printf("userspace pinned at 900 MHz:           %8.1f mJ  (%.1f%% vs default)\n", pinned,
              (1 - pinned / base) * 100.0);

  std::printf("\nTunable tweaks recover part of the gap; the userspace pin shows the\n"
              "ceiling a *static* policy reaches. VAFS (see quickstart) gets the same\n"
              "or better dynamically, without knowing the content in advance.\n");
  return 0;
}
