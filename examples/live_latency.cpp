// Live sports stream: a latency-sensitive session (2 s segments, small
// buffer) where the user cares about being seconds — not half a minute —
// behind the action. Shows that VAFS's energy savings carry over to live
// without adding latency, and how segment duration trades latency against
// radio energy.
#include <cstdio>
#include <string>

#include "core/session.h"

namespace {

struct LiveRun {
  vafs::core::SessionResult result;
  double latency_s = 0.0;
};

LiveRun run_live(const std::string& governor, std::int64_t segment_s) {
  vafs::core::SessionConfig config;
  config.governor = governor;
  config.fixed_rep = 2;
  config.segment_duration = vafs::sim::SimTime::seconds(segment_s);
  config.media_duration = vafs::sim::SimTime::seconds(300);
  config.net = vafs::core::NetProfile::kGood;
  config.seed = 4242;
  config.player.live = true;
  config.player.startup_buffer = vafs::sim::SimTime::seconds(segment_s);
  config.player.buffer_target = vafs::sim::SimTime::seconds(3 * segment_s);
  config.player.rebuffer_resume = vafs::sim::SimTime::seconds(segment_s);

  LiveRun run;
  vafs::core::SessionHooks hooks;
  vafs::stream::Player* player = nullptr;
  hooks.on_ready = [&player](vafs::core::SessionLive& live) { player = live.player; };
  run.result = vafs::core::run_session(config, hooks);
  if (player != nullptr) run.latency_s = player->live_latency().as_seconds_f();
  return run;
}

}  // namespace

int main() {
  std::printf("Live 720p stream, 5 minutes, good LTE\n\n");

  std::printf("-- governor comparison (2 s segments) --\n");
  std::printf("%-12s %10s %12s %9s %8s\n", "governor", "cpu_J", "latency_s", "drop_%", "rebuf");
  for (const char* governor : {"ondemand", "interactive", "schedutil", "vafs"}) {
    const LiveRun run = run_live(governor, 2);
    if (!run.result.finished) {
      std::printf("%-12s DID NOT FINISH\n", governor);
      continue;
    }
    std::printf("%-12s %10.1f %12.2f %9.2f %8llu\n", governor,
                run.result.energy.cpu_mj / 1000.0, run.latency_s,
                run.result.qoe.drop_ratio() * 100.0,
                static_cast<unsigned long long>(run.result.qoe.rebuffer_events));
  }

  std::printf("\n-- segment duration vs latency and radio energy (vafs) --\n");
  std::printf("%8s %12s %10s %10s\n", "seg_s", "latency_s", "cpu_J", "radio_J");
  for (const std::int64_t seg : {1, 2, 4, 6}) {
    const LiveRun run = run_live("vafs", seg);
    if (!run.result.finished) continue;
    std::printf("%8lld %12.2f %10.1f %10.1f\n", static_cast<long long>(seg), run.latency_s,
                run.result.energy.cpu_mj / 1000.0, run.result.energy.radio_mj / 1000.0);
  }

  std::printf("\nShorter segments cut the latency floor (you see the goal sooner) but\n"
              "keep the radio out of its deep tail states — latency costs watts.\n");
  return 0;
}
