// Quickstart: stream one 2-minute 720p video over a fair LTE link under a
// stock governor and under VAFS, and print the energy / QoE comparison.
//
//   $ ./quickstart [governor...]        (default: ondemand vafs)
#include <cstdio>
#include <string>
#include <vector>

#include "core/session.h"

namespace {

void print_result(const std::string& name, const vafs::core::SessionResult& r) {
  std::printf("%-12s  cpu %8.1f mJ  radio %8.1f mJ  total %8.1f mJ  |  "
              "startup %6.2f s  rebuf %llu  drops %.2f %%  transitions %llu\n",
              name.c_str(), r.energy.cpu_mj, r.energy.radio_mj, r.energy.total_mj(),
              r.qoe.startup_delay.as_seconds_f(),
              static_cast<unsigned long long>(r.qoe.rebuffer_events), r.qoe.drop_ratio() * 100.0,
              static_cast<unsigned long long>(r.freq_transitions));
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> governors;
  for (int i = 1; i < argc; ++i) governors.emplace_back(argv[i]);
  if (governors.empty()) governors = {"performance", "ondemand", "interactive", "schedutil",
                                      "conservative", "powersave", "vafs"};

  std::printf("Streaming 120 s of 720p over fair LTE (4 s segments, fixed ABR)\n\n");

  double ondemand_cpu = 0.0;
  for (const auto& governor : governors) {
    vafs::core::SessionConfig config;
    config.governor = governor;
    config.media_duration = vafs::sim::SimTime::seconds(120);
    config.net = vafs::core::NetProfile::kFair;
    config.fixed_rep = 2;
    config.seed = 42;

    const auto result = vafs::core::run_session(config);
    if (!result.finished) {
      std::printf("%-12s  DID NOT FINISH (hit simulation cap)\n", governor.c_str());
      continue;
    }
    print_result(governor, result);
    if (governor == "ondemand") ondemand_cpu = result.energy.cpu_mj;
    if (governor == "vafs" && ondemand_cpu > 0) {
      std::printf("\nVAFS CPU energy saving vs ondemand: %.1f %%\n",
                  (1.0 - result.energy.cpu_mj / ondemand_cpu) * 100.0);
    }
  }
  return 0;
}
