// Trace replay: run the governor comparison against a recorded bandwidth
// trace file instead of a synthetic process.
//
//   $ ./trace_replay my_commute.bwtrace
//   $ ./trace_replay                       (generates and saves a demo trace)
//
// Trace format: "TIME_SECONDS MBPS" per line, '#' comments.
#include <cstdio>
#include <string>
#include <vector>

#include "core/session.h"
#include "trace/bandwidth_file.h"

int main(int argc, char** argv) {
  using namespace vafs;

  std::vector<net::TraceBandwidth::Step> steps;
  std::string error;

  if (argc > 1) {
    if (!trace::load_bandwidth_trace_file(argv[1], &steps, &error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 1;
    }
    std::printf("Loaded %zu steps from %s\n", steps.size(), argv[1]);
  } else {
    // No file given: synthesize a 5-minute fair-LTE trace and save it so
    // the run is repeatable and editable.
    steps = trace::generate_markov_trace(core::net_profile_params(core::NetProfile::kFair),
                                         sim::Rng(99), sim::SimTime::seconds(300));
    const char* path = "demo.bwtrace";
    if (!trace::save_bandwidth_trace_file(path, steps, &error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 1;
    }
    std::printf("Generated %zu-step demo trace -> %s (rerun with a file argument "
                "to replay your own)\n",
                steps.size(), path);
  }

  double mean = 0;
  for (const auto& s : steps) mean += s.mbps;
  std::printf("Trace mean bandwidth: %.1f Mbps across %zu steps\n\n",
              mean / static_cast<double>(steps.size()), steps.size());

  double ondemand_cpu = 0.0;
  for (const char* governor : {"ondemand", "schedutil", "vafs"}) {
    core::SessionConfig config;
    config.governor = governor;
    config.net = core::NetProfile::kTrace;
    config.trace = steps;
    config.abr = core::AbrKind::kRate;
    config.media_duration = sim::SimTime::seconds(180);
    config.seed = 1;

    const auto r = core::run_session(config);
    if (!r.finished) {
      std::printf("%-10s DID NOT FINISH\n", governor);
      continue;
    }
    if (std::string_view(governor) == "ondemand") ondemand_cpu = r.energy.cpu_mj;
    std::printf("%-10s cpu %7.1f J (%5.1f%% vs ondemand)  kbps %5.0f  rebuf %llu  "
                "drops %.2f%%\n",
                governor, r.energy.cpu_mj / 1000.0,
                ondemand_cpu > 0 ? (1.0 - r.energy.cpu_mj / ondemand_cpu) * 100.0 : 0.0,
                r.qoe.mean_bitrate_kbps,
                static_cast<unsigned long long>(r.qoe.rebuffer_events),
                r.qoe.drop_ratio() * 100.0);
  }
  return 0;
}
