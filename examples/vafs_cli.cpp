// vafs_cli — command-line session runner: the kitchen-sink entry point for
// exploring the simulator without writing code.
//
//   $ ./vafs_cli --governor vafs --rep 2 --net fair --duration 120
//   $ ./vafs_cli --governor ondemand --abr rate --net poor --seed 7
//   $ ./vafs_cli --governor vafs --big-little --thermal --csv
//   $ ./vafs_cli --trace my.bwtrace --live --segment 2
//
// Prints a human summary, or a single CSV row with --csv (header with
// --csv-header) for scripting sweeps.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/session.h"
#include "trace/bandwidth_file.h"

namespace {

using namespace vafs;

[[noreturn]] void usage(const char* argv0, const char* error = nullptr) {
  if (error != nullptr) std::fprintf(stderr, "error: %s\n\n", error);
  std::fprintf(stderr,
               "usage: %s [options]\n"
               "  --governor NAME    performance|powersave|ondemand|conservative|\n"
               "                     interactive|schedutil|vafs|vafs-oracle (default ondemand)\n"
               "  --rep N            fixed quality rung 0-3 (default 2 = 720p)\n"
               "  --abr KIND         fixed|rate|buffer (default fixed)\n"
               "  --net PROFILE      poor|fair|good|excellent (default fair)\n"
               "  --mbps X           constant bandwidth instead of a profile\n"
               "  --trace FILE       replay a bandwidth trace file\n"
               "  --radio TECH       lte|wifi|3g (default lte)\n"
               "  --duration SECS    media length (default 120)\n"
               "  --segment SECS     segment duration (default 4)\n"
               "  --seed N           RNG seed (default 42)\n"
               "  --live             live mode (availability-gated segments)\n"
               "  --big-little       enable the LITTLE cluster + router\n"
               "  --thermal          enable the thermal model + throttle\n"
               "  --cpuidle MODE     shallow|menu|oracle (default shallow)\n"
               "  --margin X         VAFS safety margin (default 0.15)\n"
               "  --csv              emit one CSV data row instead of the summary\n"
               "  --csv-header       emit the CSV header row and exit\n",
               argv0);
  std::exit(2);
}

const char* next_arg(int argc, char** argv, int* i, const char* flag) {
  if (*i + 1 >= argc) {
    std::fprintf(stderr, "error: %s needs a value\n", flag);
    std::exit(2);
  }
  return argv[++*i];
}

void print_csv_header() {
  std::printf("governor,rep,abr,net,radio,duration_s,segment_s,seed,live,big_little,thermal,"
              "cpuidle,cpu_mj,radio_mj,display_mj,total_mj,startup_s,rebuffer_events,"
              "rebuffer_s,drop_pct,transitions,mean_kbps,peak_temp_c,throttled_s,"
              "decode_little,finished\n");
}

}  // namespace

int main(int argc, char** argv) {
  core::SessionConfig config;
  std::string radio_name = "lte";
  bool csv = false;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto is = [&](const char* flag) { return std::strcmp(arg, flag) == 0; };
    if (is("--help") || is("-h")) usage(argv[0]);
    else if (is("--csv-header")) { print_csv_header(); return 0; }
    else if (is("--csv")) csv = true;
    else if (is("--governor")) config.governor = next_arg(argc, argv, &i, arg);
    else if (is("--rep")) config.fixed_rep = std::strtoul(next_arg(argc, argv, &i, arg), nullptr, 10);
    else if (is("--seed")) config.seed = std::strtoull(next_arg(argc, argv, &i, arg), nullptr, 10);
    else if (is("--duration")) {
      config.media_duration = sim::SimTime::seconds_f(std::strtod(next_arg(argc, argv, &i, arg), nullptr));
    } else if (is("--segment")) {
      config.segment_duration = sim::SimTime::seconds_f(std::strtod(next_arg(argc, argv, &i, arg), nullptr));
    } else if (is("--mbps")) {
      config.net = core::NetProfile::kConstant;
      config.constant_mbps = std::strtod(next_arg(argc, argv, &i, arg), nullptr);
    } else if (is("--margin")) {
      config.vafs.safety_margin = std::strtod(next_arg(argc, argv, &i, arg), nullptr);
    } else if (is("--net")) {
      const std::string v = next_arg(argc, argv, &i, arg);
      if (v == "poor") config.net = core::NetProfile::kPoor;
      else if (v == "fair") config.net = core::NetProfile::kFair;
      else if (v == "good") config.net = core::NetProfile::kGood;
      else if (v == "excellent") config.net = core::NetProfile::kExcellent;
      else usage(argv[0], "unknown --net profile");
    } else if (is("--trace")) {
      std::string error;
      if (!trace::load_bandwidth_trace_file(next_arg(argc, argv, &i, arg), &config.trace,
                                            &error)) {
        std::fprintf(stderr, "error: %s\n", error.c_str());
        return 1;
      }
      config.net = core::NetProfile::kTrace;
    } else if (is("--abr")) {
      const std::string v = next_arg(argc, argv, &i, arg);
      if (v == "fixed") config.abr = core::AbrKind::kFixed;
      else if (v == "rate") config.abr = core::AbrKind::kRate;
      else if (v == "buffer") config.abr = core::AbrKind::kBuffer;
      else usage(argv[0], "unknown --abr kind");
    } else if (is("--radio")) {
      radio_name = next_arg(argc, argv, &i, arg);
      if (radio_name == "lte") config.radio = net::RadioParams::lte();
      else if (radio_name == "wifi") config.radio = net::RadioParams::wifi();
      else if (radio_name == "3g") config.radio = net::RadioParams::umts_3g();
      else usage(argv[0], "unknown --radio tech");
    } else if (is("--cpuidle")) {
      const std::string v = next_arg(argc, argv, &i, arg);
      if (v == "shallow") config.cpuidle = cpu::CpuidleStrategy::kShallowOnly;
      else if (v == "menu") config.cpuidle = cpu::CpuidleStrategy::kMenu;
      else if (v == "oracle") config.cpuidle = cpu::CpuidleStrategy::kOracle;
      else usage(argv[0], "unknown --cpuidle mode");
    } else if (is("--live")) {
      config.player.live = true;
      config.player.startup_buffer = sim::SimTime::seconds(2);
      config.player.buffer_target = sim::SimTime::seconds(6);
    } else if (is("--big-little")) {
      config.big_little = true;
    } else if (is("--thermal")) {
      config.thermal_enabled = true;
    } else {
      usage(argv[0], (std::string("unknown option ") + arg).c_str());
    }
  }
  if (config.fixed_rep > 3) usage(argv[0], "--rep must be 0-3");

  const auto r = core::run_session(config);

  if (csv) {
    std::printf("%s,%zu,%s,%s,%s,%.1f,%.1f,%llu,%d,%d,%d,%s,%.2f,%.2f,%.2f,%.2f,%.3f,%llu,"
                "%.2f,%.3f,%llu,%.0f,%.1f,%.1f,%llu,%d\n",
                config.governor.c_str(), config.fixed_rep, core::abr_kind_name(config.abr),
                core::net_profile_name(config.net), radio_name.c_str(),
                config.media_duration.as_seconds_f(), config.segment_duration.as_seconds_f(),
                static_cast<unsigned long long>(config.seed), config.player.live ? 1 : 0,
                config.big_little ? 1 : 0, config.thermal_enabled ? 1 : 0,
                cpu::cpuidle_strategy_name(config.cpuidle), r.energy.cpu_mj, r.energy.radio_mj,
                r.energy.display_mj, r.energy.total_mj(), r.qoe.startup_delay.as_seconds_f(),
                static_cast<unsigned long long>(r.qoe.rebuffer_events),
                r.qoe.rebuffer_time.as_seconds_f(), r.qoe.drop_ratio() * 100.0,
                static_cast<unsigned long long>(r.freq_transitions), r.qoe.mean_bitrate_kbps,
                r.peak_temp_c, r.throttled_time.as_seconds_f(),
                static_cast<unsigned long long>(r.decode_frames_little), r.finished ? 1 : 0);
    return r.finished ? 0 : 1;
  }

  if (!r.finished) {
    std::printf("session DID NOT FINISH (hit the simulation cap)\n");
    return 1;
  }
  std::printf("governor:      %s\n", config.governor.c_str());
  std::printf("energy:        cpu %.1f mJ, radio %.1f mJ, display %.1f mJ, total %.1f mJ "
              "(mean %.0f mW)\n",
              r.energy.cpu_mj, r.energy.radio_mj, r.energy.display_mj, r.energy.total_mj(),
              r.energy.mean_mw());
  std::printf("qoe:           startup %.2f s, rebuffer %llu (%.2f s), drops %.2f %%, "
              "mean %.0f kbps, %llu quality switches\n",
              r.qoe.startup_delay.as_seconds_f(),
              static_cast<unsigned long long>(r.qoe.rebuffer_events),
              r.qoe.rebuffer_time.as_seconds_f(), r.qoe.drop_ratio() * 100.0,
              r.qoe.mean_bitrate_kbps,
              static_cast<unsigned long long>(r.qoe.quality_switches));
  std::printf("dvfs:          %llu transitions, busy %.1f %%\n",
              static_cast<unsigned long long>(r.freq_transitions), r.busy_fraction * 100.0);
  std::printf("residency:    ");
  for (const auto& [khz, frac] : r.residency) {
    if (frac > 0.001) std::printf(" %.1fG:%.0f%%", static_cast<double>(khz) / 1e6, frac * 100);
  }
  std::printf("\n");
  if (config.thermal_enabled) {
    std::printf("thermal:       peak %.1f C, throttled %.1f s (%llu events)\n", r.peak_temp_c,
                r.throttled_time.as_seconds_f(),
                static_cast<unsigned long long>(r.throttle_events));
  }
  if (config.big_little) {
    std::printf("big.LITTLE:    little %.1f mJ, decode big/little %llu/%llu, %llu migrations\n",
                r.cpu_little_mj, static_cast<unsigned long long>(r.decode_frames_big),
                static_cast<unsigned long long>(r.decode_frames_little),
                static_cast<unsigned long long>(r.decode_migrations));
  }
  if (r.vafs_plans > 0) {
    std::printf("vafs:          %llu plans, %llu setspeed writes, decode MAPE %.1f %%\n",
                static_cast<unsigned long long>(r.vafs_plans),
                static_cast<unsigned long long>(r.vafs_setspeed_writes),
                r.vafs_decode_mape * 100.0);
  }
  return 0;
}
