#include "core/decision_core.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <stdexcept>

namespace vafs::core {

DecisionCore::DecisionCore(const VafsConfig& config, DecisionGeometry geometry)
    : config_(config), geometry_(std::move(geometry)) {
  if (geometry_.clusters.empty() || geometry_.clusters.size() > kMaxDecisionClusters) {
    throw std::invalid_argument("DecisionCore: geometry must have 1.." +
                                std::to_string(kMaxDecisionClusters) + " clusters, got " +
                                std::to_string(geometry_.clusters.size()));
  }
  for (const auto& c : geometry_.clusters) {
    if (c.available_khz.empty()) {
      throw std::invalid_argument("DecisionCore: cluster with empty frequency table");
    }
  }
  if (geometry_.routed && (geometry_.primary >= geometry_.clusters.size() ||
                           geometry_.network >= geometry_.clusters.size())) {
    throw std::invalid_argument("DecisionCore: primary/network cluster out of range");
  }
}

double DecisionCore::decode_demand_hz(const DecisionRequest& req) const {
  if (req.player_state == DecisionPlayerState::kFinished) return 0.0;

  const double fps = 1.0 / sim::SimTime(req.frame_period_us).as_seconds_f();
  const std::size_t rep = static_cast<std::size_t>(req.current_rep);

  if (config_.oracle) {
    // Perfect knowledge needs the content model, which lives with the
    // session: the client scanned the upcoming GOP and shipped the mean
    // demand in the request (bit pattern preserved end to end).
    return req.oracle_decode_hz;
  }

  const auto it = decode_histories_.find(rep);
  if (it == decode_histories_.end() ||
      it->second.total_frames < config_.min_observations) {
    // Cold start: signal "no estimate" with a negative value; the planner
    // falls back to the conservative floor.
    return -1.0;
  }
  const DecodeHistory& history = it->second;

  if (!config_.class_aware || history.idr.observations() == 0 ||
      history.p.observations() == 0) {
    // Single-stream prediction (class-aware falls back here until both
    // classes have history; in practice the first frame is an IDR, so this
    // lasts one frame).
    const CycleDemandPredictor& mixed =
        history.p.observations() > 0 ? history.p : history.idr;
    return mixed.predict() * fps;
  }

  // Blend by the observed class mix: the sustained decode rate is the
  // GOP-weighted average of per-class predictions.
  const double idr_fraction = static_cast<double>(history.idr_frames) /
                              static_cast<double>(history.total_frames);
  const double blended = idr_fraction * history.idr.predict() +
                         (1.0 - idr_fraction) * history.p.predict();
  return blended * fps;
}

double DecisionCore::audio_demand_hz(const DecisionRequest& req) const {
  if (config_.audio_cycles_per_frame <= 0) return 0.0;
  if (req.player_state == DecisionPlayerState::kFinished) return 0.0;
  return config_.audio_cycles_per_frame / sim::SimTime(req.frame_period_us).as_seconds_f();
}

double DecisionCore::download_demand_hz(const DecisionRequest& req) const {
  if (!req.downloading) return 0.0;
  double mbps = req.throughput_mbps;
  if (mbps <= 0) mbps = config_.default_throughput_mbps;
  return mbps * 1e6 / 8.0 * config_.protocol_cycles_per_byte;
}

std::uint32_t DecisionCore::snap(const std::vector<std::uint32_t>& table, double required_khz,
                                 bool boosted) {
  assert(!table.empty());
  std::size_t idx = table.size() - 1;
  for (std::size_t i = 0; i < table.size(); ++i) {
    if (static_cast<double>(table[i]) >= required_khz) {
      idx = i;
      break;
    }
  }
  if (boosted && idx + 1 < table.size()) ++idx;
  return table[idx];
}

void DecisionCore::plan_single_cluster(const DecisionRequest& req, double margin, bool boosted,
                                       DecisionResponse& out) const {
  const auto state = req.player_state;
  const std::vector<std::uint32_t>& available = geometry_.clusters[0].available_khz;
  double required_khz;
  const double decode_hz = decode_demand_hz(req);

  if (!config_.race_to_idle_downloads && req.downloading) {
    // Ablation arm: react to download bursts like a load-following
    // governor would — run them at full speed.
    required_khz = static_cast<double>(available.back());
  } else if (decode_hz < 0 && state != DecisionPlayerState::kFinished) {
    // Cold start: conservative floor until the predictor has history.
    required_khz = config_.cold_start_fraction * static_cast<double>(available.back());
  } else {
    const double demand_hz =
        std::max(0.0, decode_hz) + download_demand_hz(req) + audio_demand_hz(req);
    required_khz = demand_hz * (1.0 + margin) / 1000.0;
  }

  out.decode_cluster = 0;
  out.cluster_count = 1;
  out.target_khz[0] = snap(available, required_khz, boosted);
}

void DecisionCore::plan_clusters(const DecisionRequest& req, double margin, bool boosted,
                                 DecisionResponse& out) const {
  const auto state = req.player_state;
  const double decode_hz = decode_demand_hz(req);
  const std::size_t n = geometry_.clusters.size();
  const std::size_t primary = geometry_.primary;
  const std::size_t net_c = geometry_.network;
  const auto penalty = [this](std::size_t c) { return geometry_.clusters[c].cycle_penalty; };
  const auto available = [this](std::size_t c) -> const std::vector<std::uint32_t>& {
    return geometry_.clusters[c].available_khz;
  };
  out.cluster_count = static_cast<std::uint32_t>(n);

  // Network and audio work always run on the network cluster (demand in
  // that cluster's own cycles).
  const double net_khz = (download_demand_hz(req) + audio_demand_hz(req)) *
                         penalty(net_c) * (1.0 + margin) / 1000.0;

  if (decode_hz < 0 && state != DecisionPlayerState::kFinished) {
    // Cold start: keep decode on the primary cluster at the conservative
    // floor; everything else parks (the network cluster at its demand).
    out.decode_cluster = static_cast<std::uint32_t>(primary);
    for (std::size_t c = 0; c < n; ++c) {
      const auto& table = available(c);
      if (c == primary) {
        out.target_khz[c] =
            snap(table, config_.cold_start_fraction * static_cast<double>(table.back()),
                 boosted);
      } else if (c == net_c) {
        out.target_khz[c] = snap(table, net_khz, false);
      } else {
        out.target_khz[c] = table.front();
      }
    }
    return;
  }

  // Decode goes to the least capable cluster that fits it: walk the
  // non-primary clusters in ascending capacity order and take the first
  // whose IPC-inflated decode demand — plus the network stack's, when
  // they share the cluster — sits under its top OPP (one step of headroom
  // when boosted). The primary cluster is the fallback.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [this](std::size_t a, std::size_t b) {
    return geometry_.clusters[a].capacity_khz < geometry_.clusters[b].capacity_khz;
  });

  std::size_t chosen = primary;
  for (const std::size_t c : order) {
    if (c == primary) continue;
    const double decode_khz =
        std::max(0.0, decode_hz) * penalty(c) * (1.0 + margin) / 1000.0;
    const double total = decode_khz + (c == net_c ? net_khz : 0.0);
    const auto& table = available(c);
    const double cap = static_cast<double>(
        boosted && table.size() >= 2 ? table[table.size() - 2] : table.back());
    if (total <= cap) {
      chosen = c;
      break;
    }
  }

  out.decode_cluster = static_cast<std::uint32_t>(chosen);
  for (std::size_t c = 0; c < n; ++c) {
    const auto& table = available(c);
    std::uint32_t khz;
    if (c == chosen) {
      double demand_khz =
          std::max(0.0, decode_hz) * penalty(c) * (1.0 + margin) / 1000.0;
      if (c == net_c) demand_khz += net_khz;
      khz = snap(table, demand_khz, boosted);
    } else if (c == net_c) {
      khz = snap(table, net_khz, false);
    } else {
      khz = table.front();  // idle clusters park at min
    }
    out.target_khz[c] = khz;
  }
}

DecisionResponse DecisionCore::decide(const DecisionRequest& req) {
  // Event mutations precede planning, and happen even when the plan is
  // skipped — observations and boost windows accumulate while the
  // controller is failed over, exactly as the inline histories did.
  if (req.event == DecisionEvent::kDecodeComplete) {
    const std::size_t rep = static_cast<std::size_t>(req.observe_rep);
    auto it = decode_histories_.find(rep);
    if (it == decode_histories_.end()) {
      it = decode_histories_.emplace(rep, DecodeHistory(config_.predictor)).first;
    }
    DecodeHistory& history = it->second;
    ++history.total_frames;
    if (config_.class_aware) {
      if (req.observe_idr) {
        ++history.idr_frames;
        history.idr.observe(req.observe_cycles);
      } else {
        history.p.observe(req.observe_cycles);
      }
    } else {
      history.p.observe(req.observe_cycles);  // single mixed stream
    }
  } else if (req.event == DecisionEvent::kFrameDropped) {
    boost_until_us_ = req.now_us + config_.boost_duration.as_micros();
  }

  DecisionResponse out;
  if (req.event == DecisionEvent::kQueryStats) {
    out.decode_mape = decode_mape();
    return out;
  }
  if (!req.want_plan) return out;

  const auto state = req.player_state;
  // Startup and seek-resume races: a fast refill matters more than energy
  // for the second or two they last.
  const bool latency_critical = state == DecisionPlayerState::kStartup ||
                                state == DecisionPlayerState::kSeeking;
  const double margin = latency_critical ? config_.startup_margin : config_.safety_margin;

  const bool playing = state == DecisionPlayerState::kPlaying;
  const bool thin_pipeline = playing && req.decoded_ahead <= config_.low_ahead_frames &&
                             req.decoded_frames < req.total_frames;
  const bool boosted = req.now_us < boost_until_us_ || thin_pipeline;

  out.planned = true;
  out.boosted = boosted;
  out.latency_critical = latency_critical;
  if (geometry_.routed) {
    plan_clusters(req, margin, boosted, out);
  } else {
    plan_single_cluster(req, margin, boosted, out);
  }
  return out;
}

const CycleDemandPredictor* DecisionCore::decode_predictor(std::size_t rep, bool idr) const {
  const auto it = decode_histories_.find(rep);
  if (it == decode_histories_.end()) return nullptr;
  return idr ? &it->second.idr : &it->second.p;
}

double DecisionCore::decode_mape() const {
  sim::OnlineStats merged;
  for (const auto& [rep, history] : decode_histories_) {
    merged.merge(history.p.ape_stats());
    merged.merge(history.idr.ape_stats());
  }
  return merged.mean();
}

namespace {

class LocalDecisionStream final : public DecisionStream {
 public:
  explicit LocalDecisionStream(const DecisionStreamInfo& info)
      : core_(info.config, info.geometry) {}

  DecisionResponse decide(const DecisionRequest& request) override {
    return core_.decide(request);
  }

  DecisionCore* local_core() override { return &core_; }

 private:
  DecisionCore core_;
};

}  // namespace

std::unique_ptr<DecisionStream> LocalDecisionBackend::open(const DecisionStreamInfo& info) {
  return std::make_unique<LocalDecisionStream>(info);
}

}  // namespace vafs::core
