// The VAFS decision core — the governor's plan math as a request/response
// service.
//
// VafsController historically computed its frequency plans inline, reading
// the player and simulator directly. This header splits the *decision*
// (what frequency should each cluster run at, given what the pipeline
// looks like right now?) from the *actuation* (sysfs writes, watchdog,
// tracing), so the same decision logic can run
//
//   - in-process, as before (LocalDecisionBackend — the default), or
//   - in a long-lived daemon answering thousands of device streams over a
//     socket (src/serve/), with the controller acting as a thin client.
//
// Determinism contract: a DecisionCore is a pure state machine. Its next
// response is a function of (VafsConfig, DecisionGeometry, the ordered
// request stream so far) and nothing else — no clocks, no allocator
// addresses, no thread identity. Requests carry doubles whose bit
// patterns survive serialization verbatim, and the core performs the
// exact floating-point operations the inline controller performed, in the
// same order. A session whose decisions are answered remotely therefore
// actuates the exact same frequencies at the exact same sim times and
// produces a bit-identical obs digest chain (proved by tests/serve_test).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/predictor.h"
#include "simcore/time.h"

namespace vafs::core {

/// Deadline-miss / actuation watchdog. When enabled, repeated deadline
/// misses or consecutive failed scaling_setspeed writes fail the
/// controller over to a safe mode — hand the policy back to a kernel
/// governor, or stay on userspace pinned at fmax — and re-engage only
/// after a hysteresis window with no further incidents. (Actuation-side:
/// the watchdog lives in VafsController, never in the decision core.)
struct VafsWatchdogConfig {
  bool enabled = false;

  /// Deadline misses within miss_window that trip the failover (the
  /// window tumbles: it restarts at the first miss after a quiet gap).
  std::uint32_t miss_threshold = 8;
  sim::SimTime miss_window = sim::SimTime::seconds(2);

  /// Consecutive rejected scaling_setspeed writes that trip the failover.
  std::uint32_t write_error_threshold = 3;

  /// Clean operation (no miss, no write error) required before the
  /// controller re-takes the policy.
  sim::SimTime hysteresis = sim::SimTime::seconds(5);

  /// kRestoreGovernor hands the policy to fallback_governor for the
  /// fallback's duration; kPinMax keeps the userspace governor but runs
  /// at fmax (safe, not frugal).
  enum class Mode : std::uint8_t { kRestoreGovernor, kPinMax };
  Mode mode = Mode::kRestoreGovernor;
  std::string fallback_governor = "ondemand";
};

struct VafsConfig {
  /// Headroom multiplier over predicted demand (F6 ablates it).
  double safety_margin = 0.15;
  /// Larger headroom before playback starts (startup delay matters more
  /// than energy for the first seconds).
  double startup_margin = 0.5;

  PredictorConfig predictor;

  /// Treat downloads as network-bound (plan only the protocol-processing
  /// rate). When false, a download burst plans the maximum frequency —
  /// the load-reactive behaviour this design exists to avoid (ablation).
  bool race_to_idle_downloads = true;

  /// Offline-calibrated network-stack cost. Matches DownloaderParams.
  double protocol_cycles_per_byte = 8.0;

  /// Throughput assumed for download planning before any measurement.
  double default_throughput_mbps = 15.0;

  /// Audio decode cost per frame period, matching
  /// PlayerConfig::audio_cycles_per_frame (offline-calibrated codec cost;
  /// 0 when the player has no audio pipeline).
  double audio_cycles_per_frame = 0.0;

  /// One-OPP boost window after a dropped frame / thin pipeline.
  sim::SimTime boost_duration = sim::SimTime::millis(500);
  /// decoded_ahead() at or below this (while playing) triggers a boost.
  std::uint64_t low_ahead_frames = 1;

  /// Decode-cost observations per representation before the predictor is
  /// trusted; until then the plan floor is cold_start_fraction × f_max.
  std::size_t min_observations = 3;
  double cold_start_fraction = 0.6;

  /// Frame-class-aware prediction: separate predictors for IDR and P
  /// frames, blended by the observed IDR fraction. Tightens prediction on
  /// content with heavy intra frames (short GOPs); ablated in T3.
  bool class_aware = true;

  /// Oracle mode: replace the predictor with the *exact* decode cost of
  /// the upcoming GOP (perfect future knowledge, impossible on a real
  /// device). Combined with safety_margin = 0 this is the offline
  /// lower-bound baseline the evaluation measures VAFS against. The GOP
  /// scan needs the content model, which lives with the session — the
  /// client computes DecisionRequest::oracle_decode_hz and the core
  /// consumes it, so oracle sessions serve remotely like any other.
  bool oracle = false;

  /// Off by default: fault-free sessions keep their exact pre-watchdog
  /// behaviour (a clean VAFS run drops the occasional frame without that
  /// being a failure).
  VafsWatchdogConfig watchdog;
};

/// Hard cap on clusters a decision spans — wide enough for any registry
/// profile (max 3 today), small enough to keep responses fixed-size.
inline constexpr std::size_t kMaxDecisionClusters = 8;

/// Static per-stream device geometry, captured once at stream open (at
/// VafsController::attach, after the sysfs frequency tables are read).
struct DecisionGeometry {
  struct Cluster {
    /// Available OPP frequencies, ascending (scaling_available_frequencies).
    std::vector<std::uint32_t> available_khz;
    /// Reference-cycle inflation on this cluster (ClusterRouter penalty).
    double cycle_penalty = 1.0;
    /// Reference-cycle retire rate at f_max (ClusterRouter::capacity_khz).
    double capacity_khz = 0.0;
  };
  std::vector<Cluster> clusters;  // [0] is the controller's own policy
  /// Router cluster roles (ignored unless routed).
  std::uint32_t primary = 0;
  std::uint32_t network = 0;
  /// Multi-cluster placement active (a ClusterRouter is present).
  bool routed = false;
};

/// Mirror of stream::PlayerState — the decision core must not pull the
/// player stack into the daemon's dependency cone. Values are pinned by
/// static_asserts in vafs_controller.cpp.
enum class DecisionPlayerState : std::uint8_t {
  kIdle,
  kStartup,
  kPlaying,
  kRebuffering,
  kSeeking,
  kFinished,
};

/// What happened in the pipeline to trigger this request. Only the kinds
/// that mutate core state are distinguished; every other trigger (state
/// change, fetch begin/end, explicit replan) is kReplan — the snapshot
/// fields carry all the information those plans use.
enum class DecisionEvent : std::uint8_t {
  kReplan = 0,
  /// A frame finished decoding: feed (observe_rep, observe_cycles,
  /// observe_idr) to the predictor, then plan.
  kDecodeComplete = 1,
  /// A frame was dropped: open the one-OPP boost window, then plan.
  kFrameDropped = 2,
  /// No plan — fill DecisionResponse::decode_mape (end-of-session stats).
  kQueryStats = 3,
};

struct DecisionRequest {
  DecisionEvent event = DecisionEvent::kReplan;
  /// False while the controller cannot actuate (watchdog fallback): the
  /// core applies the event's state mutation but skips the plan, exactly
  /// as the inline controller's early-return did.
  bool want_plan = true;

  // --- Pipeline snapshot (what plan_now used to read directly) ---
  std::int64_t now_us = 0;
  DecisionPlayerState player_state = DecisionPlayerState::kIdle;
  bool downloading = false;
  std::uint64_t decoded_ahead = 0;
  std::uint64_t decoded_frames = 0;
  std::uint64_t total_frames = 0;
  std::int64_t frame_period_us = 0;
  std::uint64_t current_rep = 0;
  /// Measured throughput estimate; <= 0 means "no measurement yet".
  double throughput_mbps = 0.0;
  /// Client-computed oracle decode demand (Hz); consumed only when
  /// VafsConfig::oracle is set.
  double oracle_decode_hz = 0.0;

  // --- kDecodeComplete payload ---
  std::uint64_t observe_rep = 0;
  double observe_cycles = 0.0;
  bool observe_idr = false;
};

struct DecisionResponse {
  /// True iff a plan was computed (want_plan and not kQueryStats).
  bool planned = false;
  bool boosted = false;
  bool latency_critical = false;
  /// Router decode placement (geometry cluster index; 0 single-cluster).
  std::uint32_t decode_cluster = 0;
  std::uint32_t cluster_count = 0;
  /// Target frequency per cluster, geometry order.
  std::uint32_t target_khz[kMaxDecisionClusters] = {};
  /// kQueryStats only: MAPE across the per-representation predictors.
  double decode_mape = 0.0;
};

/// The pure decision state machine: predictor histories, the boost
/// window, and the plan math, over a fixed geometry. One per stream.
class DecisionCore {
 public:
  DecisionCore(const VafsConfig& config, DecisionGeometry geometry);

  DecisionCore(const DecisionCore&) = delete;
  DecisionCore& operator=(const DecisionCore&) = delete;

  DecisionResponse decide(const DecisionRequest& request);

  // ---- Introspection (local mode and tests) ----
  const CycleDemandPredictor* decode_predictor(std::size_t rep, bool idr = false) const;
  double decode_mape() const;
  const VafsConfig& config() const { return config_; }
  const DecisionGeometry& geometry() const { return geometry_; }

 private:
  double decode_demand_hz(const DecisionRequest& req) const;
  double download_demand_hz(const DecisionRequest& req) const;
  double audio_demand_hz(const DecisionRequest& req) const;
  static std::uint32_t snap(const std::vector<std::uint32_t>& table, double required_khz,
                            bool boosted);
  void plan_single_cluster(const DecisionRequest& req, double margin, bool boosted,
                           DecisionResponse& out) const;
  void plan_clusters(const DecisionRequest& req, double margin, bool boosted,
                     DecisionResponse& out) const;

  VafsConfig config_;
  DecisionGeometry geometry_;

  /// Per-representation decode state: separate IDR/P predictors (merged
  /// into `p` when class_aware is off) plus the observed class mix.
  struct DecodeHistory {
    explicit DecodeHistory(const PredictorConfig& config) : p(config), idr(config) {}
    CycleDemandPredictor p;
    CycleDemandPredictor idr;
    std::uint64_t idr_frames = 0;
    std::uint64_t total_frames = 0;
  };
  std::map<std::size_t, DecodeHistory> decode_histories_;

  std::int64_t boost_until_us_ = 0;
};

/// Everything a backend needs to stand up the decision state for one
/// session: the VAFS config (watchdog fields are carried but unused by
/// the core) and the device geometry.
struct DecisionStreamInfo {
  VafsConfig config;
  DecisionGeometry geometry;
};

/// One session's decision channel. decide() may throw (core::SessionError
/// from a remote backend on connection loss or a server-side error); the
/// session surfaces that as a captured task failure.
class DecisionStream {
 public:
  virtual ~DecisionStream() = default;
  virtual DecisionResponse decide(const DecisionRequest& request) = 0;
  /// Local streams expose their core for introspection (predictor
  /// accessors, tests); remote streams return nullptr.
  virtual DecisionCore* local_core() { return nullptr; }
};

/// Factory for decision streams. The default (local) backend services
/// decisions in-process; src/serve's SocketBackend answers them from a
/// daemon over a Unix socket.
class DecisionBackend {
 public:
  virtual ~DecisionBackend() = default;
  virtual std::unique_ptr<DecisionStream> open(const DecisionStreamInfo& info) = 0;
};

/// The in-process backend: a DecisionCore behind the DecisionStream
/// interface — one virtual call of indirection, nothing else.
class LocalDecisionBackend final : public DecisionBackend {
 public:
  std::unique_ptr<DecisionStream> open(const DecisionStreamInfo& info) override;
};

}  // namespace vafs::core
