#include "core/predictor.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace vafs::core {

const char* predictor_kind_name(PredictorKind k) {
  switch (k) {
    case PredictorKind::kEwma: return "ewma";
    case PredictorKind::kWindowMax: return "window-max";
    case PredictorKind::kQuantile: return "quantile";
  }
  return "?";
}

CycleDemandPredictor::CycleDemandPredictor(PredictorConfig config) : config_(config) {
  assert(config_.window >= 1);
  assert(config_.ewma_alpha > 0 && config_.ewma_alpha <= 1);
  assert(config_.quantile > 0 && config_.quantile <= 1);
  window_.resize(config_.window, 0.0);
  sorted_window_.reserve(config_.window);
}

void CycleDemandPredictor::observe(double cycles) {
  if (count_ > 0 && cycles > 0) {
    const double predicted = predict();
    if (predicted > 0) ape_.add(std::abs(predicted - cycles) / cycles);
  }

  if (config_.kind == PredictorKind::kQuantile) {
    if (filled_ == window_.size()) {
      // Ring is full: the slot we are about to overwrite leaves the window.
      const double outgoing = window_[next_slot_];
      sorted_window_.erase(
          std::lower_bound(sorted_window_.begin(), sorted_window_.end(), outgoing));
    }
    sorted_window_.insert(
        std::upper_bound(sorted_window_.begin(), sorted_window_.end(), cycles), cycles);
  }

  window_[next_slot_] = cycles;
  next_slot_ = (next_slot_ + 1) % window_.size();
  filled_ = std::min(filled_ + 1, window_.size());
  ewma_ = count_ == 0 ? cycles : config_.ewma_alpha * cycles + (1 - config_.ewma_alpha) * ewma_;
  ++count_;
  cache_valid_ = false;
}

double CycleDemandPredictor::predict() const {
  if (!cache_valid_) {
    cached_prediction_ = compute_prediction();
    cache_valid_ = true;
  }
  return cached_prediction_;
}

double CycleDemandPredictor::compute_prediction() const {
  if (count_ == 0) return 0.0;
  switch (config_.kind) {
    case PredictorKind::kEwma:
      return ewma_;
    case PredictorKind::kWindowMax: {
      double peak = 0.0;
      for (std::size_t i = 0; i < filled_; ++i) peak = std::max(peak, window_[i]);
      return peak;
    }
    case PredictorKind::kQuantile: {
      const auto rank = static_cast<std::size_t>(
          config_.quantile * static_cast<double>(sorted_window_.size() - 1) + 0.5);
      return sorted_window_[rank];
    }
  }
  return 0.0;
}

}  // namespace vafs::core
