// Cycle-demand prediction for pipeline phases.
//
// Video decode cost is highly autocorrelated (same content, same encoder
// settings frame to frame), so short-history predictors work well. Three
// strategies are provided and ablated in T3/F6:
//   kEwma      — exponentially weighted moving average (cheap, smooth)
//   kWindowMax — max over a sliding window (very conservative)
//   kQuantile  — an upper quantile over the window (the default: robust to
//                jitter without paying worst-case frequency all the time)
#pragma once

#include <cstddef>
#include <vector>

#include "simcore/stats.h"

namespace vafs::core {

enum class PredictorKind { kEwma, kWindowMax, kQuantile };

const char* predictor_kind_name(PredictorKind k);

struct PredictorConfig {
  PredictorKind kind = PredictorKind::kQuantile;
  std::size_t window = 24;
  double ewma_alpha = 0.25;
  double quantile = 0.90;
};

class CycleDemandPredictor {
 public:
  explicit CycleDemandPredictor(PredictorConfig config = {});

  /// Feeds an observed demand (cycles). Also scores the previous
  /// prediction against this observation for the accuracy report.
  void observe(double cycles);

  /// Predicted demand of the next occurrence; 0 with no history. Pure
  /// between observe() calls, so the value is computed once per window
  /// state and memoized (the planner asks several times per frame).
  double predict() const;

  std::size_t observations() const { return count_; }

  /// Absolute percentage error statistics of past predictions (for T3).
  const sim::OnlineStats& ape_stats() const { return ape_; }
  double mape() const { return ape_.mean(); }

  const PredictorConfig& config() const { return config_; }

 private:
  double compute_prediction() const;

  PredictorConfig config_;
  std::vector<double> window_;  // ring buffer
  std::size_t next_slot_ = 0;
  std::size_t filled_ = 0;
  double ewma_ = 0.0;
  std::size_t count_ = 0;
  sim::OnlineStats ape_;

  /// kQuantile only: the window's values in ascending order, maintained
  /// incrementally on each observe (one erase + one insert instead of a
  /// full sort per prediction).
  std::vector<double> sorted_window_;
  mutable double cached_prediction_ = 0.0;
  mutable bool cache_valid_ = false;
};

}  // namespace vafs::core
