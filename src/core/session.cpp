#include "core/session.h"

#include <memory>
#include <string>

#include "cpu/cpufreq_policy.h"
#include "cpu/cpufreq_sysfs.h"
#include "fault/injector.h"
#include "governors/registry.h"
#include "net/bandwidth.h"
#include "obs/trace.h"
#include "stream/abr.h"
#include "video/content.h"
#include "video/manifest.h"

namespace vafs::core {

const char* net_profile_name(NetProfile p) {
  switch (p) {
    case NetProfile::kPoor: return "poor";
    case NetProfile::kFair: return "fair";
    case NetProfile::kGood: return "good";
    case NetProfile::kExcellent: return "excellent";
    case NetProfile::kConstant: return "constant";
    case NetProfile::kTrace: return "trace";
  }
  return "?";
}

const char* abr_kind_name(AbrKind k) {
  switch (k) {
    case AbrKind::kFixed: return "fixed";
    case AbrKind::kRate: return "rate";
    case AbrKind::kBuffer: return "buffer";
    case AbrKind::kBola: return "bola";
  }
  return "?";
}

net::MarkovBandwidth::Params net_profile_params(NetProfile p) {
  net::MarkovBandwidth::Params params;
  switch (p) {
    case NetProfile::kPoor:
      params.mean_mbps = 3.0;
      params.min_mbps = 0.4;
      params.max_mbps = 8.0;
      params.volatility = 0.45;
      break;
    case NetProfile::kFair:
      params.mean_mbps = 8.0;
      params.min_mbps = 1.0;
      params.max_mbps = 20.0;
      params.volatility = 0.40;
      break;
    case NetProfile::kGood:
      params.mean_mbps = 16.0;
      params.min_mbps = 4.0;
      params.max_mbps = 40.0;
      params.volatility = 0.35;
      break;
    case NetProfile::kExcellent:
      params.mean_mbps = 30.0;
      params.min_mbps = 10.0;
      params.max_mbps = 60.0;
      params.volatility = 0.30;
      break;
    case NetProfile::kConstant:
    case NetProfile::kTrace:
      break;  // unused
  }
  return params;
}

namespace {

std::unique_ptr<net::BandwidthProcess> make_bandwidth(const SessionConfig& config, sim::Rng rng) {
  if (config.net == NetProfile::kConstant) {
    return std::make_unique<net::ConstantBandwidth>(config.constant_mbps);
  }
  if (config.net == NetProfile::kTrace) {
    if (config.trace.empty()) {
      throw SessionError("NetProfile::kTrace requires a non-empty SessionConfig::trace");
    }
    return std::make_unique<net::TraceBandwidth>(config.trace, config.trace_loop);
  }
  return std::make_unique<net::MarkovBandwidth>(net_profile_params(config.net), rng);
}

std::unique_ptr<stream::AbrAlgorithm> make_abr(const SessionConfig& config) {
  switch (config.abr) {
    case AbrKind::kFixed: return std::make_unique<stream::FixedAbr>(config.fixed_rep);
    case AbrKind::kRate: return std::make_unique<stream::RateBasedAbr>();
    case AbrKind::kBuffer: return std::make_unique<stream::BufferBasedAbr>();
    case AbrKind::kBola:
      return std::make_unique<stream::BolaAbr>(config.player.buffer_target);
  }
  return nullptr;
}

}  // namespace

video::ContentStore& SessionArena::content_store(const ContentKey& key) {
  for (auto it = content_.begin(); it != content_.end(); ++it) {
    if (it->key == key) {
      content_.splice(content_.end(), content_, it);  // most-recent last
      return content_.back().store;
    }
  }
  if (content_.size() >= kContentCapacity) content_.pop_front();
  return content_.emplace_back(ContentEntry{key, {}}).store;
}

SessionResult run_session(const SessionConfig& config, const SessionHooks& hooks,
                          SessionArena* arena) {
  // The simulator is declared first so every component (all of which may
  // hold EventHandles into its queue) is destroyed before it.
  sim::Simulator simulator(arena != nullptr ? &arena->events : nullptr);
  sim::Rng master(config.seed);
  obs::Tracer* tracer = hooks.tracer;

  // Resolve the device. A population draw (pure hash of the seed) wins,
  // then an explicit named profile; a legacy() profile means the scalar
  // SessionConfig device fields are authoritative, and the cluster list
  // below reproduces the pre-profile device from them byte-for-byte.
  const device::DeviceProfile* prof = nullptr;
  if (!config.population.empty()) {
    prof = &config.population.pick(config.seed);
  } else if (!config.profile.legacy()) {
    prof = &config.profile;
  }

  std::vector<device::ClusterSpec> specs;
  double display_mw = config.display_mw;
  net::RadioParams radio_params = config.radio;
  thermal::ThermalParams thermal_params = config.thermal;
  cpu::CpuidleStrategy cpuidle_strategy = config.cpuidle;
  cpu::CpuidleParams cpuidle_params = config.cpuidle_params;
  std::string device_name;
  if (prof != nullptr) {
    device_name = prof->name;
    specs = prof->clusters;
    if (specs.empty()) {
      throw SessionError("device profile '" + prof->name + "' has no clusters");
    }
    display_mw = prof->display_mw;
    radio_params = prof->radio;
    thermal_params = prof->thermal;
    cpuidle_strategy = prof->cpuidle;
    cpuidle_params = prof->cpuidle_params;
  } else {
    specs.push_back(device::ClusterSpec{"big", cpu::OppTable::mobile_big_core(), config.power,
                                        1.0, config.cpu_transition_latency});
    if (config.big_little) {
      specs.push_back(device::ClusterSpec{"little", cpu::OppTable::mobile_little_core(),
                                          cpu::PowerModelParams::little_core(),
                                          config.little_cycle_penalty,
                                          config.cpu_transition_latency});
    }
  }

  // One CpuModel (+ optional cpuidle) per cluster. The primary cluster is
  // fully brought up (model, policy, power probe, sysfs binder) before any
  // secondary cluster is touched — the governor-timer event order in the
  // queue depends on it, and the single-/two-cluster legacy paths must
  // replay the pre-profile construction sequence exactly.
  std::vector<std::unique_ptr<cpu::CpuModel>> cpus;
  std::vector<std::unique_ptr<cpu::CpuidleModel>> cpuidles;
  std::vector<std::unique_ptr<cpu::CpufreqPolicy>> policies;

  cpus.push_back(std::make_unique<cpu::CpuModel>(simulator, specs[0].opps,
                                                 cpu::CpuPowerModel(specs[0].power),
                                                 specs[0].transition_latency));
  cpu::CpuModel& cpu_model = *cpus[0];

  // kShallowOnly with the default WFI power is exactly the base model's
  // flat idle pricing; attach a cpuidle model only for deeper strategies.
  if (cpuidle_strategy != cpu::CpuidleStrategy::kShallowOnly) {
    cpuidles.push_back(std::make_unique<cpu::CpuidleModel>(cpuidle_params, cpuidle_strategy));
    cpu_model.set_cpuidle(cpuidles.back().get());
  }

  cpu::GovernorRegistry registry;
  governors::register_standard(registry);

  // "vafs-oracle" = the VAFS controller with perfect decode-cost knowledge
  // and no safety margin: the offline lower bound for the energy tables.
  const bool use_oracle = config.governor == "vafs-oracle";
  const bool use_vafs = config.governor == "vafs" || use_oracle;
  // VAFS boots on a stock governor and takes over through sysfs, exactly
  // as a userspace daemon on a device would.
  policies.push_back(std::make_unique<cpu::CpufreqPolicy>(
      simulator, cpu_model, registry, use_vafs ? "ondemand" : config.governor));
  cpu::CpufreqPolicy& policy = *policies[0];
  policy.set_tracer(tracer);

  // Frequency series + change events, and mean CPU power per constant-
  // frequency stretch. The listener fires after the model has settled
  // accounting at `now` (advance() precedes it in set_frequency), so the
  // energy probe reads committed state and perturbs nothing.
  struct PowerProbe {
    sim::Simulator* sim;
    cpu::CpuModel* cpu;
    obs::Tracer* tracer;
    sim::SimTime last_t;
    double last_mj;

    /// Closes the constant-power segment open since last_t.
    void flush() {
      const sim::SimTime now = sim->now();
      const double mj = cpu->energy_mj();
      const double dt_s = (now - last_t).as_seconds_f();
      if (dt_s > 0) {
        tracer->timeline().push(obs::SeriesId::kCpuPowerMw, last_t, (mj - last_mj) / dt_s);
        last_t = now;
        last_mj = mj;
      }
    }
  };
  std::shared_ptr<PowerProbe> power_probe;
  if (tracer != nullptr) {
    tracer->record(simulator.now(), obs::EventKind::kSessionBegin, config.seed,
                   static_cast<std::uint64_t>(config.media_duration.as_micros()));
    power_probe = std::make_shared<PowerProbe>(
        PowerProbe{&simulator, &cpu_model, tracer, simulator.now(), cpu_model.energy_mj()});
    tracer->timeline().push(obs::SeriesId::kFreqKhz, simulator.now(),
                            static_cast<double>(cpu_model.cur_freq_khz()));
    cpu_model.add_freq_listener([probe = power_probe](std::uint32_t old_khz,
                                                      std::uint32_t new_khz) {
      const sim::SimTime now = probe->sim->now();
      probe->tracer->record(now, obs::EventKind::kFreqChange, old_khz, new_khz, 0);
      probe->tracer->timeline().push(obs::SeriesId::kFreqKhz, now,
                                     static_cast<double>(new_khz));
      probe->flush();
    });
  }

  sysfs::Tree tree;
  std::vector<std::unique_ptr<cpu::CpufreqSysfs>> binders;
  binders.push_back(std::make_unique<cpu::CpufreqSysfs>(tree, policy, 0));
  cpu::CpufreqSysfs& binder = *binders[0];

  // Secondary clusters (policy1..policyN-1) and the task router.
  std::unique_ptr<sched::ClusterRouter> router;
  cpu::CpuSink* sink = &cpu_model;
  for (std::size_t i = 1; i < specs.size(); ++i) {
    cpus.push_back(std::make_unique<cpu::CpuModel>(simulator, specs[i].opps,
                                                   cpu::CpuPowerModel(specs[i].power),
                                                   specs[i].transition_latency));
    cpu::CpuModel& model = *cpus[i];
    if (cpuidle_strategy != cpu::CpuidleStrategy::kShallowOnly) {
      cpuidles.push_back(std::make_unique<cpu::CpuidleModel>(cpuidle_params, cpuidle_strategy));
      model.set_cpuidle(cpuidles.back().get());
    }
    policies.push_back(std::make_unique<cpu::CpufreqPolicy>(
        simulator, model, registry, use_vafs ? "ondemand" : config.governor));
    policies[i]->set_tracer(tracer);
    if (tracer != nullptr) {
      sim::Simulator* sim = &simulator;
      model.add_freq_listener([sim, tracer, i](std::uint32_t old_khz, std::uint32_t new_khz) {
        tracer->record(sim->now(), obs::EventKind::kFreqChange, old_khz, new_khz, i);
      });
    }
    binders.push_back(std::make_unique<cpu::CpufreqSysfs>(tree, *policies[i],
                                                          static_cast<int>(i)));
  }
  if (specs.size() > 1) {
    std::vector<sched::ClusterRouter::ClusterRef> refs;
    refs.reserve(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
      refs.push_back(sched::ClusterRouter::ClusterRef{cpus[i].get(), specs[i].cycle_penalty});
    }
    router = std::make_unique<sched::ClusterRouter>(std::move(refs));
    sink = router.get();
  }

  net::RadioModel radio(simulator, radio_params);
  auto bandwidth = make_bandwidth(config, master.fork(1));

  video::Manifest manifest =
      video::Manifest::typical_vod("vod", config.media_duration, config.segment_duration);
  video::ContentModel content(master.fork(2).next_u64(), config.content, &manifest);
  if (arena != nullptr) {
    // Grids replay the same workload under every governor; share the
    // synthesized frames across those sessions (exact: every value is a
    // pure function of the key).
    SessionArena::ContentKey key;
    key.seed = config.seed;
    key.media_us = config.media_duration.as_micros();
    key.segment_us = config.segment_duration.as_micros();
    key.params = config.content;
    content.use_store(&arena->content_store(key));
  }

  if (config.fixed_rep >= manifest.representation_count()) {
    throw SessionError("fixed_rep " + std::to_string(config.fixed_rep) +
                       " out of range: manifest has " +
                       std::to_string(manifest.representation_count()) + " representations");
  }

  // Fault layer. Built only when a fault source is enabled; the forks here
  // come *after* the bandwidth (fork 1) and content (fork 2) draws, so the
  // base workload trajectory is identical with and without faults, and a
  // fault-free session draws nothing extra (byte-identical schedule).
  std::unique_ptr<fault::FaultInjector> injector;
  std::unique_ptr<fault::FaultyBandwidth> faulty_bandwidth;
  net::BandwidthProcess* link = bandwidth.get();
  net::FetchFaultHook* fetch_faults = nullptr;
  if (config.fault.any()) {
    fault::FaultPlan plan(config.fault, master.fork(3), config.sim_cap);
    injector = std::make_unique<fault::FaultInjector>(std::move(plan), master.fork(4));
    injector->set_tracer(tracer);
    faulty_bandwidth = std::make_unique<fault::FaultyBandwidth>(*bandwidth, *injector);
    link = faulty_bandwidth.get();
    fetch_faults = injector.get();
    if (tracer != nullptr) {
      // Planned fault windows, announced up front as complete spans (the
      // runtime injections they cause are traced as they happen).
      for (int k = 0; k < static_cast<int>(fault::kFaultKindCount); ++k) {
        const auto kind = static_cast<fault::FaultKind>(k);
        for (const auto& w : injector->plan().windows(kind)) {
          tracer->record(w.start, obs::EventKind::kFaultWindow, static_cast<std::uint64_t>(k),
                         static_cast<std::uint64_t>((w.end - w.start).as_micros()),
                         static_cast<std::uint64_t>(w.magnitude * 1e6));
        }
      }
    }
  }

  // The jitter stream is consumed only on actual retries, so deriving it
  // from the session seed (no master draw) keeps fault-free sessions
  // byte-identical while giving each seed distinct backoff timing.
  net::Downloader downloader(simulator, radio, *link, sink, config.downloader, fetch_faults,
                             config.seed ^ 0x9E3779B97F4A7C15ULL);
  downloader.set_tracer(tracer);

  stream::Player player(simulator, *sink, downloader, content, make_abr(config),
                        config.player);
  player.set_tracer(tracer);

  if (injector != nullptr) {
    if (!injector->plan().windows(fault::FaultKind::kDecodeSpike).empty()) {
      fault::FaultInjector* inj = injector.get();
      player.set_decode_scale([inj](sim::SimTime now) { return inj->decode_scale(now); });
    }
    if (!injector->plan().windows(fault::FaultKind::kSysfsWriteFault).empty()) {
      fault::FaultInjector* inj = injector.get();
      sim::Simulator* sim = &simulator;
      tree.set_write_interceptor(
          [inj, sim](std::string_view path, std::string_view) -> std::optional<sysfs::Errno> {
            if (!path.ends_with("/scaling_setspeed")) return std::nullopt;
            return inj->sysfs_write_error(sim->now());
          });
    }
    // Thermal-cap excursions arrive the way a vendor thermal daemon's do:
    // scaling_max_freq writes on the big policy, restored at window end.
    const auto& caps = injector->plan().windows(fault::FaultKind::kThermalCap);
    if (!caps.empty()) {
      const std::uint32_t fmax = cpu_model.opps().max().freq_khz;
      const std::string max_path = binder.dir() + "/scaling_max_freq";
      sysfs::Tree* tree_ptr = &tree;
      for (const auto& window : caps) {
        const auto capped =
            static_cast<std::uint32_t>(window.magnitude * static_cast<double>(fmax));
        simulator.at(window.start, [tree_ptr, max_path, capped] {
          (void)tree_ptr->write(max_path, std::to_string(capped));
        });
        simulator.at(window.end, [tree_ptr, max_path, fmax] {
          (void)tree_ptr->write(max_path, std::to_string(fmax));
        });
      }
    }
  }

  std::unique_ptr<VafsController> vafs_controller;
  if (use_vafs) {
    VafsConfig vafs_config = config.vafs;
    if (use_oracle) {
      vafs_config.oracle = true;
      vafs_config.safety_margin = 0.0;
    }
    vafs_controller = std::make_unique<VafsController>(simulator, tree, binder.dir(), player,
                                                       vafs_config);
    vafs_controller->set_tracer(tracer);  // before attach: traces boot-time fallback
    if (router) {
      std::vector<std::string> extra_dirs;
      for (std::size_t i = 1; i < binders.size(); ++i) extra_dirs.push_back(binders[i]->dir());
      vafs_controller->enable_clusters(std::move(extra_dirs), router.get());
    }
    if (!vafs_controller->attach()) {
      throw SessionError("VAFS failed to attach through sysfs (userspace governor rejected)");
    }
  }

  std::unique_ptr<thermal::ThermalModel> thermal_model;
  std::unique_ptr<thermal::ThermalThrottle> throttle;
  if (config.thermal_enabled) {
    // The sensor sits on the primary cluster — the hottest die area — and
    // the throttle acts on its policy, as vendor thermal drivers do.
    thermal_model = std::make_unique<thermal::ThermalModel>(simulator, cpu_model, thermal_params);
    throttle = std::make_unique<thermal::ThermalThrottle>(*thermal_model, policy,
                                                          config.throttle);
  }

  std::vector<cpu::CpuModel*> metered_cpus;
  for (const auto& c : cpus) metered_cpus.push_back(c.get());
  energy::DeviceEnergyMeter meter(simulator, metered_cpus, radio, display_mw);

  if (hooks.on_ready) {
    SessionLive live;
    live.sim = &simulator;
    live.cpu = &cpu_model;
    live.policy = &policy;
    live.tree = &tree;
    live.radio = &radio;
    live.player = &player;
    live.vafs = vafs_controller.get();
    live.faults = injector.get();
    live.thermal = thermal_model.get();
    live.cpu_little = cpus.size() > 1 ? cpus[1].get() : nullptr;
    live.router = router.get();
    for (const auto& c : cpus) live.cpus.push_back(c.get());
    for (const auto& p : policies) live.policies.push_back(p.get());
    hooks.on_ready(live);
  }

  meter.reset();
  bool done = false;
  player.start([&done] { done = true; });

  // Governor timers run forever, so the queue never drains; stop on the
  // player's completion (or the safety cap).
  while (!done && simulator.now() < config.sim_cap) {
    if (!simulator.step()) break;
  }

  if (tracer != nullptr) {
    // Close the stream: flush the last constant-frequency power segment
    // (never flushed by the listener — no further transition occurs), end
    // any open watchdog fallback span, then end the session span.
    power_probe->flush();
    if (vafs_controller != nullptr && vafs_controller->in_fallback()) {
      tracer->record(simulator.now(), obs::EventKind::kFallbackEnd);
    }
    tracer->record(simulator.now(), obs::EventKind::kSessionEnd);
  }

  SessionResult result;
  result.finished = done;
  result.sim_events = simulator.events_executed();
  result.qoe = player.qoe();
  result.energy = meter.report();
  result.wall = result.energy.wall;
  result.played = player.played();
  result.live_latency = player.live_latency();
  result.freq_transitions = cpu_model.transition_count();
  result.busy_fraction =
      result.wall > sim::SimTime::zero()
          ? cpu_model.total_busy_time().as_seconds_f() / result.wall.as_seconds_f()
          : 0.0;
  result.radio_promotions = radio.promotion_count();

  const auto& opps = cpu_model.opps();
  for (std::size_t i = 0; i < opps.size(); ++i) {
    const double frac = result.wall > sim::SimTime::zero()
                            ? cpu_model.time_in_state(i).as_seconds_f() /
                                  result.wall.as_seconds_f()
                            : 0.0;
    result.residency.emplace_back(opps.at(i).freq_khz, frac);
  }

  result.fetch_timeouts = downloader.total_timeouts();
  if (injector) {
    result.fault_windows = injector->plan().total_windows();
    result.injected_fetch_failures = injector->injected_fetch_failures();
    result.injected_fetch_hangs = injector->injected_fetch_hangs();
    result.injected_sysfs_errors = injector->injected_sysfs_errors();
  }
  if (vafs_controller) {
    result.vafs_decode_mape = vafs_controller->decode_mape();
    result.vafs_plans = vafs_controller->plan_count();
    result.vafs_setspeed_writes = vafs_controller->setspeed_writes();
    result.vafs_fallback_entries = vafs_controller->fallback_entries();
    result.vafs_fallback_time = vafs_controller->fallback_time();
    result.vafs_sysfs_write_errors = vafs_controller->sysfs_write_errors();
  }
  if (thermal_model) {
    result.peak_temp_c = thermal_model->peak_temperature_c();
    result.mean_temp_c = thermal_model->temperature_stats().mean();
    result.throttled_time = throttle->throttled_time();
    result.throttle_events = throttle->throttle_events();
  }
  if (router) {
    for (std::size_t i = 1; i < cpus.size(); ++i) {
      result.cpu_little_mj += cpus[i]->energy_mj();
      result.freq_transitions_little += cpus[i]->transition_count();
    }
    result.decode_frames_big = router->decode_tasks_on_big();
    result.decode_frames_little = router->decode_tasks_on_little();
    result.decode_migrations = router->migrations();
  }
  result.device = device_name;
  for (std::size_t i = 0; i < cpus.size(); ++i) {
    SessionResult::ClusterReport report;
    report.name = specs[i].name;
    report.cpu_mj = cpus[i]->energy_mj();
    report.freq_transitions = cpus[i]->transition_count();
    report.busy_fraction =
        result.wall > sim::SimTime::zero()
            ? cpus[i]->total_busy_time().as_seconds_f() / result.wall.as_seconds_f()
            : 0.0;
    const auto& cluster_opps = cpus[i]->opps();
    for (std::size_t j = 0; j < cluster_opps.size(); ++j) {
      const double frac = result.wall > sim::SimTime::zero()
                              ? cpus[i]->time_in_state(j).as_seconds_f() /
                                    result.wall.as_seconds_f()
                              : 0.0;
      report.residency.emplace_back(cluster_opps.at(j).freq_khz, frac);
    }
    if (router) report.decode_frames = router->decode_tasks_on(i);
    result.clusters.push_back(std::move(report));
  }
  if (tracer != nullptr) {
    result.trace_digest = tracer->digest();
    result.trace_events = tracer->recorded();
  }
  return result;
}

}  // namespace vafs::core
