#include "core/session.h"

#include "core/session_instance.h"
#include "net/bandwidth.h"

namespace vafs::core {

const char* net_profile_name(NetProfile p) {
  switch (p) {
    case NetProfile::kPoor: return "poor";
    case NetProfile::kFair: return "fair";
    case NetProfile::kGood: return "good";
    case NetProfile::kExcellent: return "excellent";
    case NetProfile::kConstant: return "constant";
    case NetProfile::kTrace: return "trace";
  }
  return "?";
}

const char* abr_kind_name(AbrKind k) {
  switch (k) {
    case AbrKind::kFixed: return "fixed";
    case AbrKind::kRate: return "rate";
    case AbrKind::kBuffer: return "buffer";
    case AbrKind::kBola: return "bola";
  }
  return "?";
}

net::MarkovBandwidth::Params net_profile_params(NetProfile p) {
  net::MarkovBandwidth::Params params;
  switch (p) {
    case NetProfile::kPoor:
      params.mean_mbps = 3.0;
      params.min_mbps = 0.4;
      params.max_mbps = 8.0;
      params.volatility = 0.45;
      break;
    case NetProfile::kFair:
      params.mean_mbps = 8.0;
      params.min_mbps = 1.0;
      params.max_mbps = 20.0;
      params.volatility = 0.40;
      break;
    case NetProfile::kGood:
      params.mean_mbps = 16.0;
      params.min_mbps = 4.0;
      params.max_mbps = 40.0;
      params.volatility = 0.35;
      break;
    case NetProfile::kExcellent:
      params.mean_mbps = 30.0;
      params.min_mbps = 10.0;
      params.max_mbps = 60.0;
      params.volatility = 0.30;
      break;
    case NetProfile::kConstant:
    case NetProfile::kTrace:
      break;  // unused
  }
  return params;
}

video::ContentStore& SessionArena::content_store(const ContentKey& key) {
  if (content_donor != nullptr) return content_donor->content_store(key);
  for (auto it = content_.begin(); it != content_.end(); ++it) {
    if (it->key == key) {
      content_.splice(content_.end(), content_, it);  // most-recent last
      return content_.back().store;
    }
  }
  if (content_.size() >= kContentCapacity) content_.pop_front();
  return content_.emplace_back(ContentEntry{key, {}}).store;
}

SessionResult run_session(const SessionConfig& config, const SessionHooks& hooks,
                          SessionArena* arena) {
  SessionInstance instance(config, hooks, arena);
  while (instance.step_one()) {
  }
  return instance.finish();
}

}  // namespace vafs::core
