// One-call session harness: builds the full device (CPU + cpufreq + sysfs
// + governors + radio + downloader + content + player + meter), streams a
// video under a named governor, and returns energy + QoE. Every benchmark,
// example and integration test is a thin wrapper over this.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/vafs_controller.h"
#include "device/profile.h"
#include "fault/plan.h"
#include "cpu/cpu_model.h"
#include "cpu/cpufreq_policy.h"
#include "energy/meter.h"
#include "net/bandwidth.h"
#include "net/downloader.h"
#include "net/radio.h"
#include "sched/router.h"
#include "simcore/simulator.h"
#include "stream/player.h"
#include "thermal/model.h"
#include "thermal/throttle.h"
#include "video/content.h"
#include "video/qoe.h"

namespace vafs::fault {
class FaultInjector;
}

namespace vafs::obs {
class Tracer;
}

namespace vafs::core {

enum class NetProfile { kPoor, kFair, kGood, kExcellent, kConstant, kTrace };
enum class AbrKind { kFixed, kRate, kBuffer, kBola };

const char* net_profile_name(NetProfile p);
const char* abr_kind_name(AbrKind k);

/// Setup failure surfaced by run_session instead of an assert: an invalid
/// configuration (empty kTrace trace, out-of-range fixed_rep) or a device
/// bring-up failure (VAFS unable to attach through sysfs). The experiment
/// runner catches these per run and records them with scenario + seed
/// context instead of aborting the whole grid.
class SessionError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct SessionConfig {
  /// A registered kernel governor name, or "vafs" for the userspace
  /// controller (which runs on top of the `userspace` governor).
  std::string governor = "ondemand";
  VafsConfig vafs;
  /// Sampling-governor tunables programmed through sysfs store hooks at
  /// bring-up, as (policy-relative attribute path, value) pairs — e.g.
  /// {"ondemand/up_threshold", "90"}. Applied to every cluster's policy
  /// directory in order; a rejected write (unknown attribute, or a value
  /// the governor's store hook refuses) throws SessionError so a tuner
  /// cannot silently evaluate an unapplied candidate. Empty (the default)
  /// performs no sysfs writes at all, keeping every existing session
  /// byte-identical.
  std::vector<std::pair<std::string, std::string>> governor_tunables;

  // Content.
  sim::SimTime media_duration = sim::SimTime::seconds(120);
  sim::SimTime segment_duration = sim::SimTime::seconds(4);
  AbrKind abr = AbrKind::kFixed;
  std::size_t fixed_rep = 2;  // 720p on the typical ladder
  video::ContentParams content;

  // Network.
  NetProfile net = NetProfile::kFair;
  double constant_mbps = 12.0;  // used by kConstant
  /// Step trace for kTrace (e.g. loaded via trace::load_bandwidth_trace).
  std::vector<net::TraceBandwidth::Step> trace;
  bool trace_loop = true;
  net::RadioParams radio = net::RadioParams::lte();
  net::DownloaderParams downloader;

  // Fault injection (all rates zero by default: the fault layer is not
  // even constructed and the session is byte-identical to a build without
  // it). The plan is compiled once, per-seed, before the session starts.
  fault::FaultPlanConfig fault;

  // Device. A named profile (device::profile("flagship"), ...) is the
  // authoritative device description: cluster topology AND the
  // device-level fields (display, radio, thermal params, cpuidle). The
  // default-constructed profile (legacy(), no clusters) keeps the scalar
  // fields below authoritative — byte-identical to the pre-profile
  // bring-up, so every existing knob still works.
  device::DeviceProfile profile;
  // Weighted device population: when non-empty it overrides `profile`
  // with a per-seed draw (a pure hash of `seed`, so fleet shard
  // boundaries, job counts and resume points cannot move a session onto
  // a different device).
  device::PopulationMix population;

  // Legacy scalar device fields (used when profile.legacy()).
  cpu::PowerModelParams power;
  double display_mw = 450.0;
  sim::SimTime cpu_transition_latency = sim::SimTime::micros(150);

  // Thermal (off by default; experiment F10 enables it).
  bool thermal_enabled = false;
  thermal::ThermalParams thermal;
  thermal::ThrottleParams throttle;

  // Idle-state handling (F12 sweeps the strategies).
  cpu::CpuidleStrategy cpuidle = cpu::CpuidleStrategy::kShallowOnly;
  cpu::CpuidleParams cpuidle_params = cpu::CpuidleParams::mobile();

  // big.LITTLE (F13) compat shim over the profile layer: adds a LITTLE
  // cluster with its own policy (policy1); network work runs there, decode
  // is placed by the router (statically on big for kernel governors,
  // dynamically by VAFS). Ignored when a named profile / population is
  // set — the profile's cluster list is the topology then.
  bool big_little = false;
  double little_cycle_penalty = 1.7;

  stream::PlayerConfig player;

  std::uint64_t seed = 42;
  /// Hard simulation cap — a safety net for pathological configurations.
  sim::SimTime sim_cap = sim::SimTime::seconds(1800);
  /// Wall-clock budget for the whole session, 0 = unlimited. A harness
  /// knob, not a model parameter: the deadline is checked between events
  /// (every few thousand steps), and an over-budget session throws
  /// SessionError with a deterministic message, so it surfaces as a
  /// captured task failure rather than an indefinite hang.
  std::int64_t task_timeout_ms = 0;
};

struct SessionResult {
  bool finished = false;  // false => hit sim_cap
  /// Discrete events executed by the simulator (throughput accounting).
  std::uint64_t sim_events = 0;
  video::QoeStats qoe;
  energy::DeviceEnergyReport energy;
  sim::SimTime wall;    // session start → last frame presented
  sim::SimTime played;  // media time presented
  /// End-to-end live latency at session end (live player mode); for VoD
  /// sessions the value is wall - played and carries no meaning.
  sim::SimTime live_latency;

  std::uint64_t freq_transitions = 0;
  /// (freq_khz, fraction of wall time programmed at it), ascending.
  std::vector<std::pair<std::uint32_t, double>> residency;
  double busy_fraction = 0.0;
  std::uint64_t radio_promotions = 0;

  // VAFS-only (zeroed otherwise).
  double vafs_decode_mape = 0.0;
  std::uint64_t vafs_plans = 0;
  std::uint64_t vafs_setspeed_writes = 0;

  // Resilience (zeroed for fault-free sessions with the watchdog off).
  // Player-visible fetch retries/failures live in qoe; these cover the
  // injection side and the controller's failover behaviour.
  std::uint64_t fault_windows = 0;
  std::uint64_t injected_fetch_failures = 0;
  std::uint64_t injected_fetch_hangs = 0;
  std::uint64_t injected_sysfs_errors = 0;
  std::uint64_t fetch_timeouts = 0;
  std::uint64_t vafs_fallback_entries = 0;
  sim::SimTime vafs_fallback_time;
  std::uint64_t vafs_sysfs_write_errors = 0;

  // Thermal (zeroed unless thermal_enabled).
  double peak_temp_c = 0.0;
  double mean_temp_c = 0.0;
  sim::SimTime throttled_time;
  std::uint64_t throttle_events = 0;

  // Flattened multi-cluster view (zeroed for single-cluster sessions).
  // cpu_mj in `energy` covers every cluster; cpu_little_mj is the share of
  // all non-primary clusters, the *_little/_big pair splits decode frames
  // primary vs rest. `residency`/`freq_transitions` above stay primary-
  // cluster, exactly as in the big.LITTLE era; `clusters` below has the
  // full per-cluster story.
  double cpu_little_mj = 0.0;
  std::uint64_t freq_transitions_little = 0;
  std::uint64_t decode_frames_big = 0;
  std::uint64_t decode_frames_little = 0;
  std::uint64_t decode_migrations = 0;

  /// Resolved device profile name ("" when the legacy scalar fields built
  /// the device) — fleet/population sweeps report per-class splits by it.
  std::string device;

  /// Per-cluster report, in cluster (policy) order. Single-cluster legacy
  /// sessions get one entry named "big".
  struct ClusterReport {
    std::string name;
    double cpu_mj = 0.0;
    std::uint64_t freq_transitions = 0;
    /// (freq_khz, fraction of wall time programmed at it), ascending.
    std::vector<std::pair<std::uint32_t, double>> residency;
    double busy_fraction = 0.0;
    /// Decode tasks run here (0 everywhere for router-less sessions).
    std::uint64_t decode_frames = 0;
  };
  std::vector<ClusterReport> clusters;

  // Observability (zeroed unless a tracer was attached via SessionHooks).
  // The digest is a canonical fingerprint of the session's full event
  // stream — identical digests mean identical behaviour, event for event.
  std::uint64_t trace_digest = 0;
  std::uint64_t trace_events = 0;
};

/// Live objects handed to `on_ready` so callers can attach probes before
/// the session starts (used by the timeline bench and the examples).
struct SessionLive {
  sim::Simulator* sim = nullptr;
  cpu::CpuModel* cpu = nullptr;              // primary cluster (== cpus[0])
  cpu::CpufreqPolicy* policy = nullptr;      // primary policy (== policies[0])
  sysfs::Tree* tree = nullptr;
  net::RadioModel* radio = nullptr;
  stream::Player* player = nullptr;
  VafsController* vafs = nullptr;            // null unless governor == "vafs"
  fault::FaultInjector* faults = nullptr;    // null unless config.fault.any()
  thermal::ThermalModel* thermal = nullptr;  // null unless thermal_enabled
  cpu::CpuModel* cpu_little = nullptr;       // cpus[1] on >=2 clusters, else null
  sched::ClusterRouter* router = nullptr;    // null on single-cluster devices
  std::vector<cpu::CpuModel*> cpus;          // all clusters, policy order
  std::vector<cpu::CpufreqPolicy*> policies;
};

struct SessionHooks {
  std::function<void(SessionLive&)> on_ready;

  /// Optional tracer (not owned, may be null). When set, every instrumented
  /// component records through it, the timeline series fill, and the
  /// result carries trace_digest / trace_events. Must outlive run_session.
  obs::Tracer* tracer = nullptr;

  /// Optional decision backend for the VAFS controller (not owned, may be
  /// null = in-process). Set to a serve::SocketBackend to have the
  /// decision daemon answer this session's plans — bit-identical results
  /// by the decision-core determinism contract. Must outlive run_session
  /// and be thread-safe if sessions run in parallel.
  DecisionBackend* decision_backend = nullptr;
};

/// Reusable storage for back-to-back sessions: holds the event queue's
/// slab/heap capacity between runs so a worker sweeping a grid allocates
/// only during its first session, and the synthesized content of each
/// distinct workload so a grid that replays the same (seed, content,
/// duration) tuple under every governor pays for frame synthesis once.
/// One arena per thread; never shared.
struct SessionArena {
  sim::EventQueue::Arena events;

  /// When set, content_store() delegates to this arena instead of the
  /// local cache. Batch lanes use it to pool synthesized content across a
  /// worker's lanes (an EventQueue::Arena serves exactly one live queue,
  /// so lanes need separate *event* arenas — but content is read-only
  /// per-session and a pure function of its key, so one worker-wide store
  /// is both safe and the same dedup a serial worker's single arena gets).
  /// Same-thread only; never point it at another worker's arena.
  SessionArena* content_donor = nullptr;

  /// Everything frame values are a pure function of. Durations are in
  /// micros; the manifest itself is derived from them inside run_session,
  /// so two equal keys describe byte-identical content.
  struct ContentKey {
    std::uint64_t seed = 0;
    std::int64_t media_us = 0;
    std::int64_t segment_us = 0;
    video::ContentParams params;
    bool operator==(const ContentKey& o) const {
      return seed == o.seed && media_us == o.media_us && segment_us == o.segment_us &&
             params.gop_frames == o.params.gop_frames && params.idr_weight == o.params.idr_weight &&
             params.size_sigma == o.params.size_sigma &&
             params.cycles_per_pixel == o.params.cycles_per_pixel &&
             params.cycles_per_bit == o.params.cycles_per_bit &&
             params.cycles_sigma == o.params.cycles_sigma;
    }
  };

  /// The store for `key`, created empty on first sight. The cache is a
  /// small LRU: the returned reference stays valid until kContentCapacity
  /// distinct *other* keys have been requested after it, so holding it for
  /// the duration of one session is always safe. Classic bench grids see a
  /// handful of keys and never evict; fleet-scale sweeps see one key per
  /// session and must not accumulate O(sessions) synthesized frames.
  /// Eviction is invisible in results: every value a store yields is a
  /// pure function of the key, so a recompute is bit-identical.
  video::ContentStore& content_store(const ContentKey& key);

  static constexpr std::size_t kContentCapacity = 64;

 private:
  struct ContentEntry {
    ContentKey key;
    video::ContentStore store;
  };
  std::list<ContentEntry> content_;  // list: stable references + O(1) LRU splice
};

SessionResult run_session(const SessionConfig& config, const SessionHooks& hooks = {},
                          SessionArena* arena = nullptr);

/// The Markov bandwidth parameters behind each named profile.
net::MarkovBandwidth::Params net_profile_params(NetProfile p);

}  // namespace vafs::core
