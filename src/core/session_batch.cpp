#include "core/session_batch.h"

#include <utility>

#include "core/session_instance.h"

namespace vafs::core {

SessionBatch::SessionBatch(std::size_t capacity, sim::SimTime quantum) : quantum_(quantum) {
  lanes_.reserve(capacity);
  wheel_.reserve(capacity);
}

SessionBatch::~SessionBatch() = default;

std::size_t SessionBatch::admit(const SessionConfig& config, const SessionHooks& hooks,
                                SessionArena* arena) {
  lanes_.push_back(std::make_unique<SessionInstance>(config, hooks, arena));
  errors_.emplace_back();
  return lanes_.size() - 1;
}

void SessionBatch::wheel_push(WheelEntry e) {
  wheel_.push_back(e);
  std::size_t i = wheel_.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!wheel_less(wheel_[i], wheel_[parent])) break;
    std::swap(wheel_[i], wheel_[parent]);
    i = parent;
  }
}

SessionBatch::WheelEntry SessionBatch::wheel_pop() {
  const WheelEntry top = wheel_[0];
  wheel_[0] = wheel_.back();
  wheel_.pop_back();
  std::size_t i = 0;
  const std::size_t n = wheel_.size();
  for (;;) {
    const std::size_t first = 4 * i + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t last = first + 4 < n ? first + 4 : n;
    for (std::size_t c = first + 1; c < last; ++c) {
      if (wheel_less(wheel_[c], wheel_[best])) best = c;
    }
    if (!wheel_less(wheel_[best], wheel_[i])) break;
    std::swap(wheel_[i], wheel_[best]);
    i = best;
  }
  return top;
}

void SessionBatch::run() {
  wheel_.clear();
  for (std::size_t i = 0; i < lanes_.size(); ++i) {
    const sim::SimTime t = lanes_[i]->next_event_time();
    if (t != sim::SimTime::max()) {
      wheel_push(WheelEntry{t, static_cast<std::uint32_t>(i)});
    }
  }
  while (!wheel_.empty()) {
    const WheelEntry cur = wheel_pop();
    SessionInstance& lane = *lanes_[cur.lane];
    // Burst: keep firing this lane while it stays the global minimum —
    // with one live lane (or a lane far ahead of the pack) this runs the
    // session at full serial speed with zero wheel traffic. A throw
    // retires only this lane (finish() resurfaces it); batchmates run on.
    // The burst horizon: one quantum past the runner-up lane's clock.
    // SimTime::max() (empty wheel, or horizon arithmetic saturating) means
    // "run this lane to retirement".
    sim::SimTime horizon = sim::SimTime::max();
    if (!wheel_.empty() && sim::SimTime::max() - quantum_ >= wheel_[0].time) {
      horizon = wheel_[0].time + quantum_;
    }
    try {
      sim::SimTime t;
      do {
        if (!lane.step_one()) break;
        t = lane.next_event_time();
      } while (t < horizon);
      t = lane.next_event_time();
      if (t != sim::SimTime::max()) {
        wheel_push(WheelEntry{t, cur.lane});
      }
    } catch (const std::exception& e) {
      errors_[cur.lane] = e.what();
    } catch (...) {
      errors_[cur.lane] = "unknown exception";
    }
  }
}

SessionResult SessionBatch::finish(std::size_t lane) {
  if (!errors_[lane].empty()) throw SessionError(errors_[lane]);
  return lanes_[lane]->finish();
}

}  // namespace vafs::core
