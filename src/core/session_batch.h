// Lockstep multi-session driver: N independent SessionInstances advanced
// off one shared 4-ary wheel keyed (next event time, lane).
//
// Sessions share no state — each lane owns its Simulator, Rng and sysfs
// tree — so per-session results are bitwise identical to running the same
// configs through run_session one at a time, under *any* lane
// interleaving. What the wheel buys is locality: the driver always fires
// the globally-earliest event, and consecutive events of one lane run as
// an uninterrupted burst (no wheel traffic) while that lane remains the
// global minimum, so a worker's instruction stream stays on one session's
// warm state for as long as the timeline allows.
//
// Lanes retire independently (different media lengths, sim caps, fault
// plans); a retired lane simply leaves the wheel while the rest run on —
// ragged batches need no padding.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/session.h"

namespace vafs::core {

class SessionInstance;

class SessionBatch {
 public:
  /// `capacity` is a reservation hint; admit() beyond it still works.
  ///
  /// `quantum` bounds the lockstep skew: the driver bursts the earliest
  /// lane until its clock passes the runner-up's by more than `quantum`,
  /// then rotates. Zero is strict earliest-event-first (maximum wheel
  /// traffic, per-event lane switching); larger quanta trade tighter
  /// lockstep for serial-grade cache locality within each burst. Any
  /// value produces bitwise-identical per-session results — lanes share
  /// nothing, so the interleaving is unobservable.
  explicit SessionBatch(std::size_t capacity = 0,
                        sim::SimTime quantum = sim::SimTime::millis(250));
  ~SessionBatch();
  SessionBatch(const SessionBatch&) = delete;
  SessionBatch& operator=(const SessionBatch&) = delete;

  /// Brings up one session (full device construction, player started) and
  /// returns its lane index. Throws SessionError on invalid configuration,
  /// exactly as run_session would; a throw leaves previously admitted
  /// lanes untouched, so one bad config cannot poison its batchmates.
  ///
  /// `config` and the hooks' tracer must outlive the batch. Each live lane
  /// needs its own arena (an EventQueue::Arena serves one queue at a
  /// time); pass null to allocate fresh.
  std::size_t admit(const SessionConfig& config, const SessionHooks& hooks, SessionArena* arena);

  /// Lanes admitted so far (retired lanes included).
  std::size_t size() const { return lanes_.size(); }

  /// Advances every lane to retirement in lockstep: repeatedly fires the
  /// globally earliest pending event across all lanes (ties broken by
  /// lower lane index). Idempotent — lanes already retired are skipped.
  void run();

  /// Closes lane `lane`'s trace stream and extracts its SessionResult.
  /// Call once per lane, after run(); the lane is dead afterwards. If the
  /// lane threw mid-run (run() retires just that lane and stores the
  /// message), rethrows it as SessionError — the same exception-per-task
  /// surface the serial path has.
  SessionResult finish(std::size_t lane);

 private:
  // 4-ary implicit min-heap over (time, lane); lanes are distinct so the
  // key is a strict total order.
  struct WheelEntry {
    sim::SimTime time;
    std::uint32_t lane;
  };
  static bool wheel_less(const WheelEntry& a, const WheelEntry& b) {
    return a.time != b.time ? a.time < b.time : a.lane < b.lane;
  }
  void wheel_push(WheelEntry e);
  WheelEntry wheel_pop();

  std::vector<std::unique_ptr<SessionInstance>> lanes_;
  std::vector<std::string> errors_;  // per lane; non-empty = lane threw mid-run
  std::vector<WheelEntry> wheel_;
  sim::SimTime quantum_;
};

}  // namespace vafs::core
