#include "core/session_instance.h"

#include <string>
#include <utility>

#include "cpu/cpufreq_policy.h"
#include "cpu/cpufreq_sysfs.h"
#include "fault/injector.h"
#include "governors/registry.h"
#include "net/bandwidth.h"
#include "obs/trace.h"
#include "stream/abr.h"
#include "video/content.h"
#include "video/manifest.h"

namespace vafs::core {
namespace {

std::unique_ptr<net::BandwidthProcess> make_bandwidth(const SessionConfig& config, sim::Rng rng) {
  if (config.net == NetProfile::kConstant) {
    return std::make_unique<net::ConstantBandwidth>(config.constant_mbps);
  }
  if (config.net == NetProfile::kTrace) {
    if (config.trace.empty()) {
      throw SessionError("NetProfile::kTrace requires a non-empty SessionConfig::trace");
    }
    return std::make_unique<net::TraceBandwidth>(config.trace, config.trace_loop);
  }
  return std::make_unique<net::MarkovBandwidth>(net_profile_params(config.net), rng);
}

std::unique_ptr<stream::AbrAlgorithm> make_abr(const SessionConfig& config) {
  switch (config.abr) {
    case AbrKind::kFixed: return std::make_unique<stream::FixedAbr>(config.fixed_rep);
    case AbrKind::kRate: return std::make_unique<stream::RateBasedAbr>();
    case AbrKind::kBuffer: return std::make_unique<stream::BufferBasedAbr>();
    case AbrKind::kBola:
      return std::make_unique<stream::BolaAbr>(config.player.buffer_target);
  }
  return nullptr;
}

}  // namespace

// Frequency series + change events, and mean CPU power per constant-
// frequency stretch. The listener fires after the model has settled
// accounting at `now` (advance() precedes it in set_frequency), so the
// energy probe reads committed state and perturbs nothing.
struct SessionInstance::PowerProbe {
  sim::Simulator* sim;
  cpu::CpuModel* cpu;
  obs::Tracer* tracer;
  sim::SimTime last_t;
  double last_mj;

  /// Closes the constant-power segment open since last_t.
  void flush() {
    const sim::SimTime now = sim->now();
    const double mj = cpu->energy_mj();
    const double dt_s = (now - last_t).as_seconds_f();
    if (dt_s > 0) {
      tracer->timeline().push(obs::SeriesId::kCpuPowerMw, last_t, (mj - last_mj) / dt_s);
      last_t = now;
      last_mj = mj;
    }
  }
};

SessionInstance::SessionInstance(const SessionConfig& config, const SessionHooks& hooks,
                                 SessionArena* arena)
    : config_(&config),
      simulator_(arena != nullptr ? &arena->events : nullptr),
      master_(config.seed),
      tracer_(hooks.tracer) {
  obs::Tracer* tracer = tracer_;

  // Resolve the device. A population draw (pure hash of the seed) wins,
  // then an explicit named profile; a legacy() profile means the scalar
  // SessionConfig device fields are authoritative, and the cluster list
  // below reproduces the pre-profile device from them byte-for-byte.
  const device::DeviceProfile* prof = nullptr;
  if (!config.population.empty()) {
    prof = &config.population.pick(config.seed);
  } else if (!config.profile.legacy()) {
    prof = &config.profile;
  }

  double display_mw = config.display_mw;
  net::RadioParams radio_params = config.radio;
  thermal::ThermalParams thermal_params = config.thermal;
  cpu::CpuidleStrategy cpuidle_strategy = config.cpuidle;
  cpu::CpuidleParams cpuidle_params = config.cpuidle_params;
  if (prof != nullptr) {
    device_name_ = prof->name;
    specs_ = prof->clusters;
    if (specs_.empty()) {
      throw SessionError("device profile '" + prof->name + "' has no clusters");
    }
    display_mw = prof->display_mw;
    radio_params = prof->radio;
    thermal_params = prof->thermal;
    cpuidle_strategy = prof->cpuidle;
    cpuidle_params = prof->cpuidle_params;
  } else {
    specs_.push_back(device::ClusterSpec{"big", cpu::OppTable::mobile_big_core(), config.power,
                                         1.0, config.cpu_transition_latency});
    if (config.big_little) {
      specs_.push_back(device::ClusterSpec{"little", cpu::OppTable::mobile_little_core(),
                                           cpu::PowerModelParams::little_core(),
                                           config.little_cycle_penalty,
                                           config.cpu_transition_latency});
    }
  }

  // One CpuModel (+ optional cpuidle) per cluster. The primary cluster is
  // fully brought up (model, policy, power probe, sysfs binder) before any
  // secondary cluster is touched — the governor-timer event order in the
  // queue depends on it, and the single-/two-cluster legacy paths must
  // replay the pre-profile construction sequence exactly.
  cpus_.push_back(std::make_unique<cpu::CpuModel>(simulator_, specs_[0].opps,
                                                  cpu::CpuPowerModel(specs_[0].power),
                                                  specs_[0].transition_latency));
  cpu::CpuModel& cpu_model = *cpus_[0];

  // kShallowOnly with the default WFI power is exactly the base model's
  // flat idle pricing; attach a cpuidle model only for deeper strategies.
  if (cpuidle_strategy != cpu::CpuidleStrategy::kShallowOnly) {
    cpuidles_.push_back(std::make_unique<cpu::CpuidleModel>(cpuidle_params, cpuidle_strategy));
    cpu_model.set_cpuidle(cpuidles_.back().get());
  }

  registry_ = std::make_unique<cpu::GovernorRegistry>();
  governors::register_standard(*registry_);

  // "vafs-oracle" = the VAFS controller with perfect decode-cost knowledge
  // and no safety margin: the offline lower bound for the energy tables.
  const bool use_oracle = config.governor == "vafs-oracle";
  const bool use_vafs = config.governor == "vafs" || use_oracle;
  // VAFS boots on a stock governor and takes over through sysfs, exactly
  // as a userspace daemon on a device would.
  policies_.push_back(std::make_unique<cpu::CpufreqPolicy>(
      simulator_, cpu_model, *registry_, use_vafs ? "ondemand" : config.governor));
  cpu::CpufreqPolicy& policy = *policies_[0];
  policy.set_tracer(tracer);

  if (tracer != nullptr) {
    tracer->record(simulator_.now(), obs::EventKind::kSessionBegin, config.seed,
                   static_cast<std::uint64_t>(config.media_duration.as_micros()));
    power_probe_ = std::make_shared<PowerProbe>(
        PowerProbe{&simulator_, &cpu_model, tracer, simulator_.now(), cpu_model.energy_mj()});
    tracer->timeline().push(obs::SeriesId::kFreqKhz, simulator_.now(),
                            static_cast<double>(cpu_model.cur_freq_khz()));
    cpu_model.add_freq_listener([probe = power_probe_](std::uint32_t old_khz,
                                                       std::uint32_t new_khz) {
      const sim::SimTime now = probe->sim->now();
      probe->tracer->record(now, obs::EventKind::kFreqChange, old_khz, new_khz, 0);
      probe->tracer->timeline().push(obs::SeriesId::kFreqKhz, now,
                                     static_cast<double>(new_khz));
      probe->flush();
    });
  }

  tree_ = std::make_unique<sysfs::Tree>();
  sysfs::Tree& tree = *tree_;
  binders_.push_back(std::make_unique<cpu::CpufreqSysfs>(tree, policy, 0));
  cpu::CpufreqSysfs& binder = *binders_[0];

  // Secondary clusters (policy1..policyN-1) and the task router.
  sink_ = &cpu_model;
  for (std::size_t i = 1; i < specs_.size(); ++i) {
    cpus_.push_back(std::make_unique<cpu::CpuModel>(simulator_, specs_[i].opps,
                                                    cpu::CpuPowerModel(specs_[i].power),
                                                    specs_[i].transition_latency));
    cpu::CpuModel& model = *cpus_[i];
    if (cpuidle_strategy != cpu::CpuidleStrategy::kShallowOnly) {
      cpuidles_.push_back(std::make_unique<cpu::CpuidleModel>(cpuidle_params, cpuidle_strategy));
      model.set_cpuidle(cpuidles_.back().get());
    }
    policies_.push_back(std::make_unique<cpu::CpufreqPolicy>(
        simulator_, model, *registry_, use_vafs ? "ondemand" : config.governor));
    policies_[i]->set_tracer(tracer);
    if (tracer != nullptr) {
      sim::Simulator* sim = &simulator_;
      model.add_freq_listener([sim, tracer, i](std::uint32_t old_khz, std::uint32_t new_khz) {
        tracer->record(sim->now(), obs::EventKind::kFreqChange, old_khz, new_khz, i);
      });
    }
    binders_.push_back(std::make_unique<cpu::CpufreqSysfs>(tree, *policies_[i],
                                                           static_cast<int>(i)));
  }
  // Program sampling-governor tunables through the same sysfs store hooks
  // a userspace tool would use, on every cluster's policy directory. Done
  // after all binders exist and before VAFS attaches (VAFS boots on
  // "ondemand", so its pre-attach warmup honours the tuned values too).
  for (const auto& [rel_path, value] : config.governor_tunables) {
    for (auto& b : binders_) {
      const sysfs::Status st = b->store(rel_path, value);
      if (!st.ok()) {
        throw SessionError("governor tunable '" + rel_path + "' = '" + value + "' rejected at " +
                           b->dir() + ": " + std::string(sysfs::errno_name(st.error())));
      }
    }
  }

  if (specs_.size() > 1) {
    std::vector<sched::ClusterRouter::ClusterRef> refs;
    refs.reserve(specs_.size());
    for (std::size_t i = 0; i < specs_.size(); ++i) {
      refs.push_back(sched::ClusterRouter::ClusterRef{cpus_[i].get(), specs_[i].cycle_penalty});
    }
    router_ = std::make_unique<sched::ClusterRouter>(std::move(refs));
    sink_ = router_.get();
  }

  radio_ = std::make_unique<net::RadioModel>(simulator_, radio_params);
  bandwidth_ = make_bandwidth(config, master_.fork(1));

  manifest_ = std::make_unique<video::Manifest>(
      video::Manifest::typical_vod("vod", config.media_duration, config.segment_duration));
  content_ = std::make_unique<video::ContentModel>(master_.fork(2).next_u64(), config.content,
                                                   manifest_.get());
  if (arena != nullptr) {
    // Grids replay the same workload under every governor; share the
    // synthesized frames across those sessions (exact: every value is a
    // pure function of the key).
    SessionArena::ContentKey key;
    key.seed = config.seed;
    key.media_us = config.media_duration.as_micros();
    key.segment_us = config.segment_duration.as_micros();
    key.params = config.content;
    content_->use_store(&arena->content_store(key));
  }

  if (config.fixed_rep >= manifest_->representation_count()) {
    throw SessionError("fixed_rep " + std::to_string(config.fixed_rep) +
                       " out of range: manifest has " +
                       std::to_string(manifest_->representation_count()) + " representations");
  }

  // Fault layer. Built only when a fault source is enabled; the forks here
  // come *after* the bandwidth (fork 1) and content (fork 2) draws, so the
  // base workload trajectory is identical with and without faults, and a
  // fault-free session draws nothing extra (byte-identical schedule).
  net::BandwidthProcess* link = bandwidth_.get();
  net::FetchFaultHook* fetch_faults = nullptr;
  if (config.fault.any()) {
    fault::FaultPlan plan(config.fault, master_.fork(3), config.sim_cap);
    injector_ = std::make_unique<fault::FaultInjector>(std::move(plan), master_.fork(4));
    injector_->set_tracer(tracer);
    faulty_bandwidth_ = std::make_unique<fault::FaultyBandwidth>(*bandwidth_, *injector_);
    link = faulty_bandwidth_.get();
    fetch_faults = injector_.get();
    if (tracer != nullptr) {
      // Planned fault windows, announced up front as complete spans (the
      // runtime injections they cause are traced as they happen).
      for (int k = 0; k < static_cast<int>(fault::kFaultKindCount); ++k) {
        const auto kind = static_cast<fault::FaultKind>(k);
        for (const auto& w : injector_->plan().windows(kind)) {
          tracer->record(w.start, obs::EventKind::kFaultWindow, static_cast<std::uint64_t>(k),
                         static_cast<std::uint64_t>((w.end - w.start).as_micros()),
                         static_cast<std::uint64_t>(w.magnitude * 1e6));
        }
      }
    }
  }

  // The jitter stream is consumed only on actual retries, so deriving it
  // from the session seed (no master draw) keeps fault-free sessions
  // byte-identical while giving each seed distinct backoff timing.
  downloader_ = std::make_unique<net::Downloader>(simulator_, *radio_, *link, sink_,
                                                  config.downloader, fetch_faults,
                                                  config.seed ^ 0x9E3779B97F4A7C15ULL);
  downloader_->set_tracer(tracer);

  player_ = std::make_unique<stream::Player>(simulator_, *sink_, *downloader_, *content_,
                                             make_abr(config), config.player);
  player_->set_tracer(tracer);

  if (injector_ != nullptr) {
    if (!injector_->plan().windows(fault::FaultKind::kDecodeSpike).empty()) {
      fault::FaultInjector* inj = injector_.get();
      player_->set_decode_scale([inj](sim::SimTime now) { return inj->decode_scale(now); });
    }
    if (!injector_->plan().windows(fault::FaultKind::kSysfsWriteFault).empty()) {
      fault::FaultInjector* inj = injector_.get();
      sim::Simulator* sim = &simulator_;
      tree.set_write_interceptor(
          [inj, sim](std::string_view path, std::string_view) -> std::optional<sysfs::Errno> {
            if (!path.ends_with("/scaling_setspeed")) return std::nullopt;
            return inj->sysfs_write_error(sim->now());
          });
    }
    // Thermal-cap excursions arrive the way a vendor thermal daemon's do:
    // scaling_max_freq writes on the big policy, restored at window end.
    const auto& caps = injector_->plan().windows(fault::FaultKind::kThermalCap);
    if (!caps.empty()) {
      const std::uint32_t fmax = cpu_model.opps().max().freq_khz;
      const std::string max_path = binder.dir() + "/scaling_max_freq";
      sysfs::Tree* tree_ptr = tree_.get();
      for (const auto& window : caps) {
        const auto capped =
            static_cast<std::uint32_t>(window.magnitude * static_cast<double>(fmax));
        simulator_.at(window.start, [tree_ptr, max_path, capped] {
          (void)tree_ptr->write(max_path, std::to_string(capped));
        });
        simulator_.at(window.end, [tree_ptr, max_path, fmax] {
          (void)tree_ptr->write(max_path, std::to_string(fmax));
        });
      }
    }
  }

  if (use_vafs) {
    VafsConfig vafs_config = config.vafs;
    if (use_oracle) {
      vafs_config.oracle = true;
      vafs_config.safety_margin = 0.0;
    }
    vafs_controller_ = std::make_unique<VafsController>(simulator_, tree, binder.dir(), *player_,
                                                        vafs_config);
    vafs_controller_->set_tracer(tracer);  // before attach: traces boot-time fallback
    if (hooks.decision_backend != nullptr) {
      vafs_controller_->set_decision_backend(hooks.decision_backend);
    }
    if (router_) {
      std::vector<std::string> extra_dirs;
      for (std::size_t i = 1; i < binders_.size(); ++i) extra_dirs.push_back(binders_[i]->dir());
      vafs_controller_->enable_clusters(std::move(extra_dirs), router_.get());
    }
    if (!vafs_controller_->attach()) {
      throw SessionError("VAFS failed to attach through sysfs (userspace governor rejected)");
    }
  }

  if (config.thermal_enabled) {
    // The sensor sits on the primary cluster — the hottest die area — and
    // the throttle acts on its policy, as vendor thermal drivers do.
    thermal_model_ = std::make_unique<thermal::ThermalModel>(simulator_, cpu_model,
                                                             thermal_params);
    throttle_ = std::make_unique<thermal::ThermalThrottle>(*thermal_model_, policy,
                                                           config.throttle);
  }

  std::vector<cpu::CpuModel*> metered_cpus;
  for (const auto& c : cpus_) metered_cpus.push_back(c.get());
  meter_ = std::make_unique<energy::DeviceEnergyMeter>(simulator_, metered_cpus, *radio_,
                                                       display_mw);

  if (hooks.on_ready) {
    SessionLive live;
    live.sim = &simulator_;
    live.cpu = &cpu_model;
    live.policy = &policy;
    live.tree = tree_.get();
    live.radio = radio_.get();
    live.player = player_.get();
    live.vafs = vafs_controller_.get();
    live.faults = injector_.get();
    live.thermal = thermal_model_.get();
    live.cpu_little = cpus_.size() > 1 ? cpus_[1].get() : nullptr;
    live.router = router_.get();
    for (const auto& c : cpus_) live.cpus.push_back(c.get());
    for (const auto& p : policies_) live.policies.push_back(p.get());
    hooks.on_ready(live);
  }

  meter_->reset();
  player_->start([this] { done_ = true; });

  if (config.task_timeout_ms > 0) {
    deadline_armed_ = true;
    wall_deadline_ =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(config.task_timeout_ms);
  }
}

SessionInstance::~SessionInstance() = default;

bool SessionInstance::step_one() {
  // Governor timers run forever, so the queue never drains on its own;
  // the session retires on the player's completion (or the safety cap).
  if (done_ || simulator_.now() >= config_->sim_cap) return false;
  if (deadline_armed_ && (++deadline_ticks_ & 0xFFF) == 0 &&
      std::chrono::steady_clock::now() >= wall_deadline_) {
    // Deterministic message (no tick or time counts): the same timed-out
    // task produces the same captured failure text on every run.
    throw SessionError("wall-clock task timeout: task_timeout_ms=" +
                       std::to_string(config_->task_timeout_ms) + " exceeded");
  }
  return simulator_.step();
}

sim::SimTime SessionInstance::next_event_time() {
  if (done_ || simulator_.now() >= config_->sim_cap) return sim::SimTime::max();
  return simulator_.next_event_time();
}

bool SessionInstance::retired() { return next_event_time() == sim::SimTime::max(); }

SessionResult SessionInstance::finish() {
  obs::Tracer* tracer = tracer_;
  if (tracer != nullptr) {
    // Close the stream: flush the last constant-frequency power segment
    // (never flushed by the listener — no further transition occurs), end
    // any open watchdog fallback span, then end the session span.
    power_probe_->flush();
    if (vafs_controller_ != nullptr && vafs_controller_->in_fallback()) {
      tracer->record(simulator_.now(), obs::EventKind::kFallbackEnd);
    }
    tracer->record(simulator_.now(), obs::EventKind::kSessionEnd);
  }

  cpu::CpuModel& cpu_model = *cpus_[0];
  SessionResult result;
  result.finished = done_;
  result.sim_events = simulator_.events_executed();
  result.qoe = player_->qoe();
  result.energy = meter_->report();
  result.wall = result.energy.wall;
  result.played = player_->played();
  result.live_latency = player_->live_latency();
  result.freq_transitions = cpu_model.transition_count();
  result.busy_fraction =
      result.wall > sim::SimTime::zero()
          ? cpu_model.total_busy_time().as_seconds_f() / result.wall.as_seconds_f()
          : 0.0;
  result.radio_promotions = radio_->promotion_count();

  const auto& opps = cpu_model.opps();
  for (std::size_t i = 0; i < opps.size(); ++i) {
    const double frac = result.wall > sim::SimTime::zero()
                            ? cpu_model.time_in_state(i).as_seconds_f() /
                                  result.wall.as_seconds_f()
                            : 0.0;
    result.residency.emplace_back(opps.at(i).freq_khz, frac);
  }

  result.fetch_timeouts = downloader_->total_timeouts();
  if (injector_) {
    result.fault_windows = injector_->plan().total_windows();
    result.injected_fetch_failures = injector_->injected_fetch_failures();
    result.injected_fetch_hangs = injector_->injected_fetch_hangs();
    result.injected_sysfs_errors = injector_->injected_sysfs_errors();
  }
  if (vafs_controller_) {
    result.vafs_decode_mape = vafs_controller_->decode_mape();
    result.vafs_plans = vafs_controller_->plan_count();
    result.vafs_setspeed_writes = vafs_controller_->setspeed_writes();
    result.vafs_fallback_entries = vafs_controller_->fallback_entries();
    result.vafs_fallback_time = vafs_controller_->fallback_time();
    result.vafs_sysfs_write_errors = vafs_controller_->sysfs_write_errors();
  }
  if (thermal_model_) {
    result.peak_temp_c = thermal_model_->peak_temperature_c();
    result.mean_temp_c = thermal_model_->temperature_stats().mean();
    result.throttled_time = throttle_->throttled_time();
    result.throttle_events = throttle_->throttle_events();
  }
  if (router_) {
    for (std::size_t i = 1; i < cpus_.size(); ++i) {
      result.cpu_little_mj += cpus_[i]->energy_mj();
      result.freq_transitions_little += cpus_[i]->transition_count();
    }
    result.decode_frames_big = router_->decode_tasks_on_big();
    result.decode_frames_little = router_->decode_tasks_on_little();
    result.decode_migrations = router_->migrations();
  }
  result.device = device_name_;
  for (std::size_t i = 0; i < cpus_.size(); ++i) {
    SessionResult::ClusterReport report;
    report.name = specs_[i].name;
    report.cpu_mj = cpus_[i]->energy_mj();
    report.freq_transitions = cpus_[i]->transition_count();
    report.busy_fraction =
        result.wall > sim::SimTime::zero()
            ? cpus_[i]->total_busy_time().as_seconds_f() / result.wall.as_seconds_f()
            : 0.0;
    const auto& cluster_opps = cpus_[i]->opps();
    for (std::size_t j = 0; j < cluster_opps.size(); ++j) {
      const double frac = result.wall > sim::SimTime::zero()
                              ? cpus_[i]->time_in_state(j).as_seconds_f() /
                                    result.wall.as_seconds_f()
                              : 0.0;
      report.residency.emplace_back(cluster_opps.at(j).freq_khz, frac);
    }
    if (router_) report.decode_frames = router_->decode_tasks_on(i);
    result.clusters.push_back(std::move(report));
  }
  if (tracer != nullptr) {
    result.trace_digest = tracer->digest();
    result.trace_events = tracer->recorded();
  }
  return result;
}

}  // namespace vafs::core
