// A fully-built, steppable streaming session: the device bring-up, run
// loop and result extraction of core::run_session, split into construct /
// step / finish so a driver other than the classic "run one session to
// completion" loop can own the clock. run_session() is a thin wrapper
// (construct, step until retired, finish); SessionBatch advances N
// instances in lockstep off a shared wheel. Both drivers execute the
// identical per-session event sequence — the construction order, the
// queue-operation order and the loop semantics in here are the single
// source of truth, which is what makes batch == serial bitwise.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/session.h"
#include "simcore/rng.h"

namespace vafs::cpu {
class CpufreqSysfs;
}
namespace vafs::fault {
class FaultyBandwidth;
}

namespace vafs::core {

class SessionInstance {
 public:
  /// Brings up the full device and starts the player, exactly as
  /// run_session did: every component constructed — and every event
  /// scheduled — in the same order, so the queue's sequence numbers (the
  /// tie-break for simultaneous events) are identical. Throws SessionError
  /// on invalid configuration or failed bring-up.
  ///
  /// `config` and the hooks' tracer must outlive the instance; `arena`
  /// may be null.
  SessionInstance(const SessionConfig& config, const SessionHooks& hooks, SessionArena* arena);
  ~SessionInstance();
  SessionInstance(const SessionInstance&) = delete;
  SessionInstance& operator=(const SessionInstance&) = delete;

  /// One iteration of the canonical run loop: fires the next event if the
  /// session is still live. Returns false once the session is retired —
  /// the player finished, the clock reached sim_cap, or the queue drained.
  bool step_one();

  /// Absolute time of the next pending event, or SimTime::max() when the
  /// session is retired (the wheel key in batch mode). May lazily drop
  /// cancelled events to answer.
  sim::SimTime next_event_time();

  /// True once step_one() has nothing left to do.
  bool retired();

  /// Closes the trace stream and extracts the SessionResult — the exact
  /// tail of run_session. Call once, after the run loop; the instance is
  /// dead afterwards (destruction is all that remains).
  SessionResult finish();

 private:
  struct PowerProbe;

  // Members are declared in construction order (the order run_session
  // declared its locals), so reverse member destruction replays the old
  // stack unwind: every component dies before the simulator it schedules
  // on.
  const SessionConfig* config_;
  sim::Simulator simulator_;
  sim::Rng master_;
  obs::Tracer* tracer_;

  std::string device_name_;
  std::vector<device::ClusterSpec> specs_;

  std::vector<std::unique_ptr<cpu::CpuModel>> cpus_;
  std::vector<std::unique_ptr<cpu::CpuidleModel>> cpuidles_;
  std::vector<std::unique_ptr<cpu::CpufreqPolicy>> policies_;
  std::unique_ptr<cpu::GovernorRegistry> registry_;
  std::shared_ptr<PowerProbe> power_probe_;
  std::unique_ptr<sysfs::Tree> tree_;
  std::vector<std::unique_ptr<cpu::CpufreqSysfs>> binders_;
  std::unique_ptr<sched::ClusterRouter> router_;
  cpu::CpuSink* sink_ = nullptr;
  std::unique_ptr<net::RadioModel> radio_;
  std::unique_ptr<net::BandwidthProcess> bandwidth_;
  std::unique_ptr<video::Manifest> manifest_;
  std::unique_ptr<video::ContentModel> content_;
  std::unique_ptr<fault::FaultInjector> injector_;
  std::unique_ptr<fault::FaultyBandwidth> faulty_bandwidth_;
  std::unique_ptr<net::Downloader> downloader_;
  std::unique_ptr<stream::Player> player_;
  std::unique_ptr<VafsController> vafs_controller_;
  std::unique_ptr<thermal::ThermalModel> thermal_model_;
  std::unique_ptr<thermal::ThermalThrottle> throttle_;
  std::unique_ptr<energy::DeviceEnergyMeter> meter_;

  bool done_ = false;

  // Cooperative wall-clock deadline (config.task_timeout_ms > 0). The
  // clock is sampled every 4096 steps so on-time sessions pay ~nothing and
  // execute the identical event sequence with or without a timeout.
  bool deadline_armed_ = false;
  std::uint64_t deadline_ticks_ = 0;
  std::chrono::steady_clock::time_point wall_deadline_{};
};

}  // namespace vafs::core
