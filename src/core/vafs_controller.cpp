#include "core/vafs_controller.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "obs/trace.h"

namespace vafs::core {
namespace {

std::vector<std::uint32_t> parse_freq_list(std::string_view text) {
  std::vector<std::uint32_t> out;
  std::uint64_t cur = 0;
  bool in_number = false;
  for (const char c : text) {
    if (c >= '0' && c <= '9') {
      cur = cur * 10 + static_cast<std::uint64_t>(c - '0');
      in_number = true;
    } else if (in_number) {
      out.push_back(static_cast<std::uint32_t>(cur));
      cur = 0;
      in_number = false;
    }
  }
  if (in_number) out.push_back(static_cast<std::uint32_t>(cur));
  std::sort(out.begin(), out.end());
  return out;
}

// DecisionPlayerState mirrors stream::PlayerState value-for-value so the
// snapshot cast below is a plain relabeling (the decision core must not
// depend on the player stack).
constexpr bool state_mirror_ok(stream::PlayerState s, DecisionPlayerState d) {
  return static_cast<int>(s) == static_cast<int>(d);
}
static_assert(state_mirror_ok(stream::PlayerState::kIdle, DecisionPlayerState::kIdle));
static_assert(state_mirror_ok(stream::PlayerState::kStartup, DecisionPlayerState::kStartup));
static_assert(state_mirror_ok(stream::PlayerState::kPlaying, DecisionPlayerState::kPlaying));
static_assert(
    state_mirror_ok(stream::PlayerState::kRebuffering, DecisionPlayerState::kRebuffering));
static_assert(state_mirror_ok(stream::PlayerState::kSeeking, DecisionPlayerState::kSeeking));
static_assert(state_mirror_ok(stream::PlayerState::kFinished, DecisionPlayerState::kFinished));

}  // namespace

VafsController::VafsController(sim::Simulator& simulator, sysfs::Tree& tree,
                               std::string policy_dir, stream::Player& player, VafsConfig config)
    : sim_(simulator),
      tree_(tree),
      dir_(std::move(policy_dir)),
      player_(player),
      config_(config) {
  player_.add_observer(this);
}

void VafsController::enable_clusters(std::vector<std::string> extra_policy_dirs,
                                     sched::ClusterRouter* router) {
  assert(!attached_ && "enable_clusters must precede attach()");
  assert(router != nullptr);
  assert(extra_policy_dirs.size() + 1 == router->cluster_count() &&
         "one policy dir per non-primary router cluster, in router order");
  router_ = router;
  extra_.clear();
  for (auto& dir : extra_policy_dirs) {
    ExtraCluster c;
    c.dir = std::move(dir);
    extra_.push_back(std::move(c));
  }
}

void VafsController::enable_big_little(std::string little_policy_dir,
                                       sched::ClusterRouter* router) {
  enable_clusters({std::move(little_policy_dir)}, router);
}

bool VafsController::attach() {
  const auto avail = tree_.read(dir_ + "/scaling_available_frequencies");
  if (!avail.ok()) return false;
  available_khz_ = parse_freq_list(avail.value());
  if (available_khz_.empty()) return false;

  for (ExtraCluster& c : extra_) {
    const auto extra_avail = tree_.read(c.dir + "/scaling_available_frequencies");
    if (!extra_avail.ok()) return false;
    c.available_khz = parse_freq_list(extra_avail.value());
    if (c.available_khz.empty()) return false;
    if (!tree_.write(c.dir + "/scaling_governor", "userspace").ok()) return false;
  }

  // The frequency tables are known: open the decision stream now, before
  // the governor takeover, so a watchdog boot-fallback still has a live
  // stream accumulating observations for the eventual re-engage.
  DecisionGeometry geometry;
  geometry.clusters.resize(extra_.size() + 1);
  geometry.clusters[0].available_khz = available_khz_;
  for (std::size_t i = 0; i < extra_.size(); ++i) {
    geometry.clusters[i + 1].available_khz = extra_[i].available_khz;
  }
  if (router_ != nullptr) {
    geometry.routed = true;
    geometry.primary = static_cast<std::uint32_t>(router_->primary_cluster());
    geometry.network = static_cast<std::uint32_t>(router_->network_cluster());
    for (std::size_t c = 0; c < geometry.clusters.size(); ++c) {
      geometry.clusters[c].cycle_penalty = router_->cycle_penalty(c);
      geometry.clusters[c].capacity_khz = router_->capacity_khz(c);
    }
  }
  DecisionBackend* backend = backend_ != nullptr ? backend_ : &local_backend_;
  stream_ = backend->open(DecisionStreamInfo{config_, std::move(geometry)});

  if (!tree_.write(dir_ + "/scaling_governor", "userspace").ok()) {
    if (config_.watchdog.enabled) {
      // Boot straight into safe mode; the hysteresis timer retries the
      // takeover once the actuation channel recovers.
      attached_ = true;
      last_written_khz_ = 0;
      for (ExtraCluster& c : extra_) c.last_written_khz = 0;
      enter_fallback(2);
      return true;
    }
    return false;
  }
  attached_ = true;
  last_written_khz_ = 0;
  for (ExtraCluster& c : extra_) c.last_written_khz = 0;
  plan_now();
  return true;
}

void VafsController::detach(std::string_view restore_governor) {
  if (!attached_) return;
  attached_ = false;
  reengage_event_.cancel();
  if (fallback_) {
    fallback_accum_ += sim_.now() - fallback_since_;
    fallback_ = false;
    if (tracer_ != nullptr) tracer_->record(sim_.now(), obs::EventKind::kFallbackEnd);
  }
  tree_.write(dir_ + "/scaling_governor", restore_governor);
  for (const ExtraCluster& c : extra_) tree_.write(c.dir + "/scaling_governor", restore_governor);
}

double VafsController::oracle_decode_hz() const {
  // Perfect knowledge: mean decode cost of the next GOP's worth of
  // frames, read straight from the content model (the frame timeline is
  // fps-aligned across representations, so indexing by playback frame is
  // exact for fixed-rep sessions and a close bound under ABR).
  if (player_.state() == stream::PlayerState::kFinished) return 0.0;
  const double fps = 1.0 / player_.frame_period().as_seconds_f();
  const std::size_t rep = player_.current_rep();
  const auto& content = player_.content();
  const std::uint64_t start = player_.decoded_frames();
  const std::uint64_t gop = content.params().gop_frames;
  const std::uint64_t end = std::min(start + gop, player_.total_frames());
  if (end <= start) return 0.0;
  // Most plans arrive between decodes (fetch/state triggers), with the
  // window unmoved — reuse the last sum; recompute (identically) when
  // the window advances.
  if (rep != gop_rep_ || start != gop_start_ || end != gop_end_) {
    double cycles = 0.0;
    for (std::uint64_t f = start; f < end; ++f) {
      cycles += content.frame(rep, f).decode_cycles;
    }
    gop_rep_ = rep;
    gop_start_ = start;
    gop_end_ = end;
    gop_cycles_ = cycles;
  }
  return gop_cycles_ / static_cast<double>(end - start) * fps;
}

DecisionRequest VafsController::make_request(DecisionEvent event) const {
  DecisionRequest req;
  req.event = event;
  req.want_plan = attached_ && !fallback_;  // safe mode owns the policy
  req.now_us = sim_.now().as_micros();
  req.player_state = static_cast<DecisionPlayerState>(player_.state());
  req.downloading = downloading_;
  req.decoded_ahead = player_.decoded_ahead();
  req.decoded_frames = player_.decoded_frames();
  req.total_frames = player_.total_frames();
  req.frame_period_us = player_.frame_period().as_micros();
  req.current_rep = player_.current_rep();
  req.throughput_mbps = player_.throughput_estimate_mbps();
  if (config_.oracle) req.oracle_decode_hz = oracle_decode_hz();
  return req;
}

void VafsController::deliver(const DecisionRequest& request) {
  if (stream_ == nullptr) return;  // before attach() no stream exists
  // A plain replan with planning suppressed carries no state mutation:
  // skip the round trip entirely (kDecodeComplete / kFrameDropped must
  // still go through — observations and boosts accumulate in fallback).
  if (!request.want_plan && request.event == DecisionEvent::kReplan) return;

  const DecisionResponse resp = stream_->decide(request);
  if (!resp.planned) return;
  ++plans_;

  if (tracer_ != nullptr) {
    tracer_->record(sim_.now(), obs::EventKind::kVafsPlan,
                    static_cast<std::uint64_t>(request.player_state), resp.boosted ? 1 : 0,
                    resp.latency_critical ? 1 : 0);
  }

  if (router_ != nullptr) router_->set_decode_cluster(resp.decode_cluster);
  for (std::size_t c = 0; c < resp.cluster_count; ++c) {
    write_cluster_setspeed(c, resp.target_khz[c]);
  }
}

void VafsController::plan_now() { deliver(make_request(DecisionEvent::kReplan)); }

void VafsController::write_cluster_setspeed(std::size_t cluster, std::uint32_t khz) {
  std::uint32_t& last =
      cluster == 0 ? last_written_khz_ : extra_[cluster - 1].last_written_khz;
  const std::string& dir = cluster == 0 ? dir_ : extra_[cluster - 1].dir;
  if (khz == last) return;
  const auto status = tree_.write(dir + "/scaling_setspeed", std::to_string(khz));
  if (tracer_ != nullptr) {
    tracer_->record(sim_.now(), obs::EventKind::kSetspeedWrite, khz,
                    static_cast<std::uint64_t>(status.error()), cluster);
  }
  if (!status.ok()) {
    // Keep the last-written record unchanged so the next plan retries the
    // write (the dedup short-circuit would otherwise swallow it).
    note_write_failure();
    return;
  }
  consecutive_write_errors_ = 0;
  last = khz;
  ++writes_;
}

void VafsController::note_write_failure() {
  ++write_errors_;
  ++consecutive_write_errors_;
  const auto& wd = config_.watchdog;
  if (!wd.enabled || !attached_) return;
  last_incident_ = sim_.now();
  if (!fallback_ && consecutive_write_errors_ >= wd.write_error_threshold) enter_fallback(0);
}

void VafsController::note_deadline_miss() {
  const auto& wd = config_.watchdog;
  if (!wd.enabled || !attached_) return;
  last_incident_ = sim_.now();  // misses during fallback delay re-engage
  if (fallback_) return;
  if (sim_.now() - miss_window_start_ > wd.miss_window) {
    miss_window_start_ = sim_.now();
    miss_count_ = 0;
  }
  if (++miss_count_ >= wd.miss_threshold) enter_fallback(1);
}

void VafsController::enter_fallback(std::uint64_t cause) {
  if (fallback_) return;
  fallback_ = true;
  ++fallback_entries_;
  fallback_since_ = sim_.now();
  last_incident_ = sim_.now();
  consecutive_write_errors_ = 0;
  miss_count_ = 0;
  const auto& wd = config_.watchdog;
  if (tracer_ != nullptr) {
    tracer_->record(sim_.now(), obs::EventKind::kFallbackBegin,
                    static_cast<std::uint64_t>(wd.mode), cause);
  }
  if (wd.mode == VafsWatchdogConfig::Mode::kRestoreGovernor) {
    tree_.write(dir_ + "/scaling_governor", wd.fallback_governor);
    for (const ExtraCluster& c : extra_) {
      tree_.write(c.dir + "/scaling_governor", wd.fallback_governor);
    }
  } else if (!available_khz_.empty()) {
    // Pin fmax; best-effort — the actuation channel may be the very thing
    // that is broken, in which case the CPU rides at its last frequency
    // until re-engage replans.
    if (tree_.write(dir_ + "/scaling_setspeed", std::to_string(available_khz_.back())).ok()) {
      last_written_khz_ = available_khz_.back();
    }
    for (ExtraCluster& c : extra_) {
      if (!c.available_khz.empty() &&
          tree_.write(c.dir + "/scaling_setspeed", std::to_string(c.available_khz.back()))
              .ok()) {
        c.last_written_khz = c.available_khz.back();
      }
    }
  }
  reengage_event_.cancel();
  reengage_event_ = sim_.after(wd.hysteresis, [this] { try_reengage(); });
}

void VafsController::try_reengage() {
  if (!fallback_ || !attached_) return;
  const auto& wd = config_.watchdog;
  const sim::SimTime clean_at = last_incident_ + wd.hysteresis;
  if (sim_.now() < clean_at) {
    reengage_event_ = sim_.after(clean_at - sim_.now(), [this] { try_reengage(); });
    return;
  }
  if (wd.mode == VafsWatchdogConfig::Mode::kRestoreGovernor) {
    bool all_ok = tree_.write(dir_ + "/scaling_governor", "userspace").ok();
    for (const ExtraCluster& c : extra_) {
      all_ok = tree_.write(c.dir + "/scaling_governor", "userspace").ok() && all_ok;
    }
    if (!all_ok) {
      reengage_event_ = sim_.after(wd.hysteresis, [this] { try_reengage(); });
      return;
    }
  }
  fallback_accum_ += sim_.now() - fallback_since_;
  fallback_ = false;
  if (tracer_ != nullptr) tracer_->record(sim_.now(), obs::EventKind::kFallbackEnd);
  consecutive_write_errors_ = 0;
  miss_count_ = 0;
  miss_window_start_ = sim_.now();
  // The governor switch reset the frequency out from under us: force the
  // next plan to rewrite whatever it targets.
  last_written_khz_ = 0;
  for (ExtraCluster& c : extra_) c.last_written_khz = 0;
  plan_now();
}

const CycleDemandPredictor* VafsController::decode_predictor(std::size_t rep, bool idr) const {
  if (stream_ == nullptr) return nullptr;
  DecisionCore* core = stream_->local_core();
  if (core == nullptr) return nullptr;
  return core->decode_predictor(rep, idr);
}

double VafsController::decode_mape() {
  if (stream_ == nullptr) return 0.0;
  if (DecisionCore* core = stream_->local_core()) return core->decode_mape();
  DecisionRequest req;
  req.event = DecisionEvent::kQueryStats;
  req.want_plan = false;
  return stream_->decide(req).decode_mape;
}

void VafsController::on_state_change(stream::PlayerState, stream::PlayerState) { plan_now(); }

void VafsController::on_segment_request(std::size_t, std::size_t, std::uint64_t) {
  downloading_ = true;
  plan_now();
}

void VafsController::on_segment_complete(std::size_t, std::size_t, const net::FetchResult&) {
  downloading_ = false;
  plan_now();
}

void VafsController::on_segment_failed(std::size_t, std::size_t, const net::FetchResult&) {
  // The fetch is dead until the player re-requests it: stop planning for
  // download demand in the meantime.
  downloading_ = false;
  plan_now();
}

void VafsController::on_decode_complete(std::uint64_t frame, double cycles, sim::SimTime,
                                        bool idr) {
  DecisionRequest req = make_request(DecisionEvent::kDecodeComplete);
  req.observe_rep = player_.rep_of_frame(frame);
  req.observe_cycles = cycles;
  req.observe_idr = idr;
  deliver(req);
}

void VafsController::on_frame_dropped(std::uint64_t) {
  // The miss may trip the watchdog (traced fallback writes) before the
  // boost lands in the core; the boost mutation itself is silent and both
  // happen at the same instant, so the observable sequence is unchanged.
  note_deadline_miss();
  deliver(make_request(DecisionEvent::kFrameDropped));
}

}  // namespace vafs::core
