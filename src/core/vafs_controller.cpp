#include "core/vafs_controller.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

#include "obs/trace.h"

namespace vafs::core {
namespace {

std::vector<std::uint32_t> parse_freq_list(std::string_view text) {
  std::vector<std::uint32_t> out;
  std::uint64_t cur = 0;
  bool in_number = false;
  for (const char c : text) {
    if (c >= '0' && c <= '9') {
      cur = cur * 10 + static_cast<std::uint64_t>(c - '0');
      in_number = true;
    } else if (in_number) {
      out.push_back(static_cast<std::uint32_t>(cur));
      cur = 0;
      in_number = false;
    }
  }
  if (in_number) out.push_back(static_cast<std::uint32_t>(cur));
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

VafsController::VafsController(sim::Simulator& simulator, sysfs::Tree& tree,
                               std::string policy_dir, stream::Player& player, VafsConfig config)
    : sim_(simulator),
      tree_(tree),
      dir_(std::move(policy_dir)),
      player_(player),
      config_(config) {
  player_.add_observer(this);
}

void VafsController::enable_clusters(std::vector<std::string> extra_policy_dirs,
                                     sched::ClusterRouter* router) {
  assert(!attached_ && "enable_clusters must precede attach()");
  assert(router != nullptr);
  assert(extra_policy_dirs.size() + 1 == router->cluster_count() &&
         "one policy dir per non-primary router cluster, in router order");
  router_ = router;
  extra_.clear();
  for (auto& dir : extra_policy_dirs) {
    ExtraCluster c;
    c.dir = std::move(dir);
    extra_.push_back(std::move(c));
  }
}

void VafsController::enable_big_little(std::string little_policy_dir,
                                       sched::ClusterRouter* router) {
  enable_clusters({std::move(little_policy_dir)}, router);
}

bool VafsController::attach() {
  const auto avail = tree_.read(dir_ + "/scaling_available_frequencies");
  if (!avail.ok()) return false;
  available_khz_ = parse_freq_list(avail.value());
  if (available_khz_.empty()) return false;

  for (ExtraCluster& c : extra_) {
    const auto extra_avail = tree_.read(c.dir + "/scaling_available_frequencies");
    if (!extra_avail.ok()) return false;
    c.available_khz = parse_freq_list(extra_avail.value());
    if (c.available_khz.empty()) return false;
    if (!tree_.write(c.dir + "/scaling_governor", "userspace").ok()) return false;
  }

  if (!tree_.write(dir_ + "/scaling_governor", "userspace").ok()) {
    if (config_.watchdog.enabled) {
      // Boot straight into safe mode; the hysteresis timer retries the
      // takeover once the actuation channel recovers.
      attached_ = true;
      last_written_khz_ = 0;
      for (ExtraCluster& c : extra_) c.last_written_khz = 0;
      enter_fallback(2);
      return true;
    }
    return false;
  }
  attached_ = true;
  last_written_khz_ = 0;
  for (ExtraCluster& c : extra_) c.last_written_khz = 0;
  plan_now();
  return true;
}

void VafsController::detach(std::string_view restore_governor) {
  if (!attached_) return;
  attached_ = false;
  reengage_event_.cancel();
  if (fallback_) {
    fallback_accum_ += sim_.now() - fallback_since_;
    fallback_ = false;
    if (tracer_ != nullptr) tracer_->record(sim_.now(), obs::EventKind::kFallbackEnd);
  }
  tree_.write(dir_ + "/scaling_governor", restore_governor);
  for (const ExtraCluster& c : extra_) tree_.write(c.dir + "/scaling_governor", restore_governor);
}

double VafsController::decode_demand_hz() const {
  if (player_.state() == stream::PlayerState::kFinished) return 0.0;

  const double fps = 1.0 / player_.frame_period().as_seconds_f();
  const std::size_t rep = player_.current_rep();

  if (config_.oracle) {
    // Perfect knowledge: mean decode cost of the next GOP's worth of
    // frames, read straight from the content model (the frame timeline is
    // fps-aligned across representations, so indexing by playback frame
    // is exact for fixed-rep sessions and a close bound under ABR).
    const auto& content = player_.content();
    const std::uint64_t start = player_.decoded_frames();
    const std::uint64_t gop = content.params().gop_frames;
    const std::uint64_t end = std::min(start + gop, player_.total_frames());
    if (end <= start) return 0.0;
    // Most plans arrive between decodes (fetch/state triggers), with the
    // window unmoved — reuse the last sum; recompute (identically) when
    // the window advances.
    if (rep != gop_rep_ || start != gop_start_ || end != gop_end_) {
      double cycles = 0.0;
      for (std::uint64_t f = start; f < end; ++f) {
        cycles += content.frame(rep, f).decode_cycles;
      }
      gop_rep_ = rep;
      gop_start_ = start;
      gop_end_ = end;
      gop_cycles_ = cycles;
    }
    return gop_cycles_ / static_cast<double>(end - start) * fps;
  }

  const auto it = decode_histories_.find(rep);
  if (it == decode_histories_.end() ||
      it->second.total_frames < config_.min_observations) {
    // Cold start: signal "no estimate" with a negative value; the planner
    // falls back to the conservative floor.
    return -1.0;
  }
  const DecodeHistory& history = it->second;

  if (!config_.class_aware || history.idr.observations() == 0 ||
      history.p.observations() == 0) {
    // Single-stream prediction (class-aware falls back here until both
    // classes have history; in practice the first frame is an IDR, so this
    // lasts one frame).
    const CycleDemandPredictor& mixed =
        history.p.observations() > 0 ? history.p : history.idr;
    return mixed.predict() * fps;
  }

  // Blend by the observed class mix: the sustained decode rate is the
  // GOP-weighted average of per-class predictions.
  const double idr_fraction = static_cast<double>(history.idr_frames) /
                              static_cast<double>(history.total_frames);
  const double blended = idr_fraction * history.idr.predict() +
                         (1.0 - idr_fraction) * history.p.predict();
  return blended * fps;
}

double VafsController::audio_demand_hz() const {
  if (config_.audio_cycles_per_frame <= 0) return 0.0;
  if (player_.state() == stream::PlayerState::kFinished) return 0.0;
  return config_.audio_cycles_per_frame / player_.frame_period().as_seconds_f();
}

double VafsController::download_demand_hz() const {
  if (!downloading_) return 0.0;
  double mbps = player_.throughput_estimate_mbps();
  if (mbps <= 0) mbps = config_.default_throughput_mbps;
  return mbps * 1e6 / 8.0 * config_.protocol_cycles_per_byte;
}

std::uint32_t VafsController::snap(const std::vector<std::uint32_t>& table, double required_khz,
                                   bool boosted) {
  assert(!table.empty());
  std::size_t idx = table.size() - 1;
  for (std::size_t i = 0; i < table.size(); ++i) {
    if (static_cast<double>(table[i]) >= required_khz) {
      idx = i;
      break;
    }
  }
  if (boosted && idx + 1 < table.size()) ++idx;
  return table[idx];
}

std::uint32_t VafsController::snap_to_available(double required_khz, bool boosted) const {
  return snap(available_khz_, required_khz, boosted);
}

void VafsController::plan_now() {
  if (!attached_ || fallback_) return;  // safe mode owns the policy
  ++plans_;

  const auto state = player_.state();
  // Startup and seek-resume races: a fast refill matters more than energy
  // for the second or two they last.
  const bool latency_critical = state == stream::PlayerState::kStartup ||
                                state == stream::PlayerState::kSeeking;
  const double margin = latency_critical ? config_.startup_margin : config_.safety_margin;

  const bool playing = state == stream::PlayerState::kPlaying;
  const bool thin_pipeline = playing && player_.decoded_ahead() <= config_.low_ahead_frames &&
                             player_.decoded_frames() < player_.total_frames();
  const bool boosted = sim_.now() < boost_until_ || thin_pipeline;

  if (tracer_ != nullptr) {
    tracer_->record(sim_.now(), obs::EventKind::kVafsPlan, static_cast<std::uint64_t>(state),
                    boosted ? 1 : 0, latency_critical ? 1 : 0);
  }

  if (router_ != nullptr) {
    plan_clusters(margin, boosted);
  } else {
    plan_single_cluster(margin, boosted);
  }
}

void VafsController::plan_single_cluster(double margin, bool boosted) {
  const auto state = player_.state();
  double required_khz;
  const double decode_hz = decode_demand_hz();

  if (!config_.race_to_idle_downloads && downloading_) {
    // Ablation arm: react to download bursts like a load-following
    // governor would — run them at full speed.
    required_khz = static_cast<double>(available_khz_.back());
  } else if (decode_hz < 0 && state != stream::PlayerState::kFinished) {
    // Cold start: conservative floor until the predictor has history.
    required_khz = config_.cold_start_fraction * static_cast<double>(available_khz_.back());
  } else {
    const double demand_hz =
        std::max(0.0, decode_hz) + download_demand_hz() + audio_demand_hz();
    required_khz = demand_hz * (1.0 + margin) / 1000.0;
  }

  write_setspeed(snap_to_available(required_khz, boosted));
}

void VafsController::plan_clusters(double margin, bool boosted) {
  const auto state = player_.state();
  const double decode_hz = decode_demand_hz();
  const std::size_t n = router_->cluster_count();
  const std::size_t primary = router_->primary_cluster();
  const std::size_t net_c = router_->network_cluster();

  // Network and audio work always run on the network cluster (demand in
  // that cluster's own cycles).
  const double net_khz = (download_demand_hz() + audio_demand_hz()) *
                         router_->cycle_penalty(net_c) * (1.0 + margin) / 1000.0;

  if (decode_hz < 0 && state != stream::PlayerState::kFinished) {
    // Cold start: keep decode on the primary cluster at the conservative
    // floor; everything else parks (the network cluster at its demand).
    router_->set_decode_cluster(primary);
    for (std::size_t c = 0; c < n; ++c) {
      const auto& table = available(c);
      if (c == primary) {
        write_cluster_setspeed(
            c, snap(table, config_.cold_start_fraction * static_cast<double>(table.back()),
                    boosted));
      } else if (c == net_c) {
        write_cluster_setspeed(c, snap(table, net_khz, false));
      } else {
        write_cluster_setspeed(c, table.front());
      }
    }
    return;
  }

  // Decode goes to the least capable cluster that fits it: walk the
  // non-primary clusters in ascending capacity order and take the first
  // whose IPC-inflated decode demand — plus the network stack's, when
  // they share the cluster — sits under its top OPP (one step of headroom
  // when boosted). The primary cluster is the fallback.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [this](std::size_t a, std::size_t b) {
    return router_->capacity_khz(a) < router_->capacity_khz(b);
  });

  std::size_t chosen = primary;
  for (const std::size_t c : order) {
    if (c == primary) continue;
    const double decode_khz =
        std::max(0.0, decode_hz) * router_->cycle_penalty(c) * (1.0 + margin) / 1000.0;
    const double total = decode_khz + (c == net_c ? net_khz : 0.0);
    const auto& table = available(c);
    const double cap = static_cast<double>(
        boosted && table.size() >= 2 ? table[table.size() - 2] : table.back());
    if (total <= cap) {
      chosen = c;
      break;
    }
  }

  router_->set_decode_cluster(chosen);
  for (std::size_t c = 0; c < n; ++c) {
    const auto& table = available(c);
    std::uint32_t khz;
    if (c == chosen) {
      double demand_khz =
          std::max(0.0, decode_hz) * router_->cycle_penalty(c) * (1.0 + margin) / 1000.0;
      if (c == net_c) demand_khz += net_khz;
      khz = snap(table, demand_khz, boosted);
    } else if (c == net_c) {
      khz = snap(table, net_khz, false);
    } else {
      khz = table.front();  // idle clusters park at min
    }
    write_cluster_setspeed(c, khz);
  }
}

void VafsController::write_cluster_setspeed(std::size_t cluster, std::uint32_t khz) {
  std::uint32_t& last =
      cluster == 0 ? last_written_khz_ : extra_[cluster - 1].last_written_khz;
  const std::string& dir = cluster == 0 ? dir_ : extra_[cluster - 1].dir;
  if (khz == last) return;
  const auto status = tree_.write(dir + "/scaling_setspeed", std::to_string(khz));
  if (tracer_ != nullptr) {
    tracer_->record(sim_.now(), obs::EventKind::kSetspeedWrite, khz,
                    static_cast<std::uint64_t>(status.error()), cluster);
  }
  if (!status.ok()) {
    // Keep the last-written record unchanged so the next plan retries the
    // write (the dedup short-circuit would otherwise swallow it).
    note_write_failure();
    return;
  }
  consecutive_write_errors_ = 0;
  last = khz;
  ++writes_;
}

void VafsController::note_write_failure() {
  ++write_errors_;
  ++consecutive_write_errors_;
  const auto& wd = config_.watchdog;
  if (!wd.enabled || !attached_) return;
  last_incident_ = sim_.now();
  if (!fallback_ && consecutive_write_errors_ >= wd.write_error_threshold) enter_fallback(0);
}

void VafsController::note_deadline_miss() {
  const auto& wd = config_.watchdog;
  if (!wd.enabled || !attached_) return;
  last_incident_ = sim_.now();  // misses during fallback delay re-engage
  if (fallback_) return;
  if (sim_.now() - miss_window_start_ > wd.miss_window) {
    miss_window_start_ = sim_.now();
    miss_count_ = 0;
  }
  if (++miss_count_ >= wd.miss_threshold) enter_fallback(1);
}

void VafsController::enter_fallback(std::uint64_t cause) {
  if (fallback_) return;
  fallback_ = true;
  ++fallback_entries_;
  fallback_since_ = sim_.now();
  last_incident_ = sim_.now();
  consecutive_write_errors_ = 0;
  miss_count_ = 0;
  const auto& wd = config_.watchdog;
  if (tracer_ != nullptr) {
    tracer_->record(sim_.now(), obs::EventKind::kFallbackBegin,
                    static_cast<std::uint64_t>(wd.mode), cause);
  }
  if (wd.mode == VafsWatchdogConfig::Mode::kRestoreGovernor) {
    tree_.write(dir_ + "/scaling_governor", wd.fallback_governor);
    for (const ExtraCluster& c : extra_) {
      tree_.write(c.dir + "/scaling_governor", wd.fallback_governor);
    }
  } else if (!available_khz_.empty()) {
    // Pin fmax; best-effort — the actuation channel may be the very thing
    // that is broken, in which case the CPU rides at its last frequency
    // until re-engage replans.
    if (tree_.write(dir_ + "/scaling_setspeed", std::to_string(available_khz_.back())).ok()) {
      last_written_khz_ = available_khz_.back();
    }
    for (ExtraCluster& c : extra_) {
      if (!c.available_khz.empty() &&
          tree_.write(c.dir + "/scaling_setspeed", std::to_string(c.available_khz.back()))
              .ok()) {
        c.last_written_khz = c.available_khz.back();
      }
    }
  }
  reengage_event_.cancel();
  reengage_event_ = sim_.after(wd.hysteresis, [this] { try_reengage(); });
}

void VafsController::try_reengage() {
  if (!fallback_ || !attached_) return;
  const auto& wd = config_.watchdog;
  const sim::SimTime clean_at = last_incident_ + wd.hysteresis;
  if (sim_.now() < clean_at) {
    reengage_event_ = sim_.after(clean_at - sim_.now(), [this] { try_reengage(); });
    return;
  }
  if (wd.mode == VafsWatchdogConfig::Mode::kRestoreGovernor) {
    bool all_ok = tree_.write(dir_ + "/scaling_governor", "userspace").ok();
    for (const ExtraCluster& c : extra_) {
      all_ok = tree_.write(c.dir + "/scaling_governor", "userspace").ok() && all_ok;
    }
    if (!all_ok) {
      reengage_event_ = sim_.after(wd.hysteresis, [this] { try_reengage(); });
      return;
    }
  }
  fallback_accum_ += sim_.now() - fallback_since_;
  fallback_ = false;
  if (tracer_ != nullptr) tracer_->record(sim_.now(), obs::EventKind::kFallbackEnd);
  consecutive_write_errors_ = 0;
  miss_count_ = 0;
  miss_window_start_ = sim_.now();
  // The governor switch reset the frequency out from under us: force the
  // next plan to rewrite whatever it targets.
  last_written_khz_ = 0;
  for (ExtraCluster& c : extra_) c.last_written_khz = 0;
  plan_now();
}

const CycleDemandPredictor* VafsController::decode_predictor(std::size_t rep, bool idr) const {
  const auto it = decode_histories_.find(rep);
  if (it == decode_histories_.end()) return nullptr;
  return idr ? &it->second.idr : &it->second.p;
}

double VafsController::decode_mape() const {
  sim::OnlineStats merged;
  for (const auto& [rep, history] : decode_histories_) {
    merged.merge(history.p.ape_stats());
    merged.merge(history.idr.ape_stats());
  }
  return merged.mean();
}

void VafsController::on_state_change(stream::PlayerState, stream::PlayerState) { plan_now(); }

void VafsController::on_segment_request(std::size_t, std::size_t, std::uint64_t) {
  downloading_ = true;
  plan_now();
}

void VafsController::on_segment_complete(std::size_t, std::size_t, const net::FetchResult&) {
  downloading_ = false;
  plan_now();
}

void VafsController::on_segment_failed(std::size_t, std::size_t, const net::FetchResult&) {
  // The fetch is dead until the player re-requests it: stop planning for
  // download demand in the meantime.
  downloading_ = false;
  plan_now();
}

void VafsController::on_decode_complete(std::uint64_t frame, double cycles, sim::SimTime,
                                        bool idr) {
  const std::size_t rep = player_.rep_of_frame(frame);
  auto it = decode_histories_.find(rep);
  if (it == decode_histories_.end()) {
    it = decode_histories_.emplace(rep, DecodeHistory(config_.predictor)).first;
  }
  DecodeHistory& history = it->second;
  ++history.total_frames;
  if (config_.class_aware) {
    if (idr) {
      ++history.idr_frames;
      history.idr.observe(cycles);
    } else {
      history.p.observe(cycles);
    }
  } else {
    history.p.observe(cycles);  // single mixed stream
  }
  plan_now();
}

void VafsController::on_frame_dropped(std::uint64_t) {
  boost_until_ = sim_.now() + config_.boost_duration;
  note_deadline_miss();
  plan_now();
}

}  // namespace vafs::core
