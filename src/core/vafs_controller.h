// VAFS — Video-Aware Frequency Scaling. The paper's contribution.
//
// A *userspace* policy: it observes the player pipeline, predicts the CPU
// cycle demand of the current phase, derives the minimum frequency that
// meets the pipeline's soft deadlines with a safety margin, and actuates
// exclusively through the cpufreq sysfs interface:
//
//   echo userspace            > .../scaling_governor       (attach)
//   echo <khz>                > .../scaling_setspeed       (every re-plan)
//
// Demand model (all rates in cycles/second):
//   decode:   predicted cycles-per-frame (per representation, windowed
//             quantile by default) × fps
//   download: measured throughput × protocol cycles-per-byte while a
//             segment fetch is in flight (downloads are network-bound, so
//             the CPU only needs to keep up with arrival — the
//             race_to_idle_downloads flag ablates this against the
//             "burst to max" behaviour of load-reactive governors)
//   target  = (decode + download) × (1 + safety_margin), snapped to the
//             lowest available OPP above it
//
// Recovery: a dropped frame or a thin decode pipeline boosts the plan by
// one OPP for boost_duration. Cold start (too little history) plans a
// conservative mid frequency.
//
// Structure: the controller is the *actuator* — sysfs writes, the
// watchdog, tracing, player observation. The plan math and predictor
// state live in core::DecisionCore (core/decision_core.h); every pipeline
// event becomes a DecisionRequest answered through a DecisionStream,
// which by default wraps an in-process core and can instead be served by
// the decision daemon (src/serve/).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/decision_core.h"
#include "sched/router.h"
#include "simcore/simulator.h"
#include "stream/player.h"
#include "sysfs/tree.h"

namespace vafs::obs {
class Tracer;
}

namespace vafs::core {

class VafsController final : public stream::PlayerObserver {
 public:
  /// `policy_dir` is the sysfs policy directory, e.g.
  /// "devices/system/cpu/cpufreq/policy0". The controller registers itself
  /// as a player observer. Call attach() to take control of the CPU.
  VafsController(sim::Simulator& simulator, sysfs::Tree& tree, std::string policy_dir,
                 stream::Player& player, VafsConfig config = {});

  VafsController(const VafsController&) = delete;
  VafsController& operator=(const VafsController&) = delete;

  /// Multi-cluster mode: also control the policies of clusters 1..N-1 (at
  /// `extra_policy_dirs`, one per non-primary router cluster, in router
  /// index order) and place decode via `router`. Call before attach().
  /// Planning then chooses the decode cluster each re-plan: the least
  /// capable cluster whose IPC-inflated demand (plus the network stack's,
  /// when they share a cluster) fits under its top OPP with margin, the
  /// primary cluster otherwise.
  void enable_clusters(std::vector<std::string> extra_policy_dirs, sched::ClusterRouter* router);

  /// Two-cluster convenience, preserved from the big.LITTLE-only era.
  void enable_big_little(std::string little_policy_dir, sched::ClusterRouter* router);

  /// Route decisions through `backend` (not owned, must outlive the
  /// controller) instead of the in-process default. Call before attach():
  /// the stream opens there, once the device geometry is known.
  void set_decision_backend(DecisionBackend* backend) { backend_ = backend; }

  /// Switches the policy to the userspace governor (via sysfs) and writes
  /// the first plan. Returns false if the sysfs writes were rejected.
  bool attach();

  /// Restores `governor` (e.g. "ondemand") and stops planning.
  void detach(std::string_view restore_governor);

  /// Re-evaluates the plan and writes scaling_setspeed if it changed.
  /// Public so the overhead benchmark (F9) can time a single decision.
  void plan_now();

  /// Optional tracer (not owned, may be null): plans, setspeed writes and
  /// watchdog transitions are recorded through it. Set before attach() so
  /// the attach-time fallback (if any) lands in the trace.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  // ---- Introspection ----

  std::uint64_t plan_count() const { return plans_; }
  std::uint64_t setspeed_writes() const { return writes_; }
  std::uint32_t last_planned_khz() const { return last_written_khz_; }

  /// Watchdog state: currently failed over to safe mode?
  bool in_fallback() const { return fallback_; }
  std::uint64_t fallback_entries() const { return fallback_entries_; }
  /// Total time spent in fallback so far (open interval included).
  sim::SimTime fallback_time() const {
    return fallback_ ? fallback_accum_ + (sim_.now() - fallback_since_) : fallback_accum_;
  }
  /// scaling_setspeed writes rejected by sysfs (counted with or without
  /// the watchdog; only the watchdog acts on them).
  std::uint64_t sysfs_write_errors() const { return write_errors_; }
  /// Decode predictor for a representation and frame class (class-aware
  /// mode keys P and IDR separately; otherwise `idr` is ignored).
  /// Returns nullptr if never observed — or if the decision stream is
  /// remote (predictor state lives in the daemon).
  const CycleDemandPredictor* decode_predictor(std::size_t rep, bool idr = false) const;
  /// MAPE across all per-representation decode predictors. Non-const:
  /// a remote stream answers this with a stats round trip.
  double decode_mape();
  const VafsConfig& config() const { return config_; }
  bool big_little() const { return router_ != nullptr; }
  /// Clusters under control: 1 single-cluster, router cluster count otherwise.
  std::size_t cluster_count() const { return extra_.size() + 1; }
  /// Last frequency written to cluster `c`'s policy (0 before any write).
  std::uint32_t last_planned_khz(std::size_t c) const {
    return c == 0 ? last_written_khz_ : extra_[c - 1].last_written_khz;
  }
  std::uint32_t last_planned_little_khz() const {
    return extra_.empty() ? 0 : extra_[0].last_written_khz;
  }

  // ---- PlayerObserver ----

  void on_state_change(stream::PlayerState from, stream::PlayerState to) override;
  void on_segment_request(std::size_t segment, std::size_t rep, std::uint64_t bytes) override;
  void on_segment_complete(std::size_t segment, std::size_t rep,
                           const net::FetchResult& result) override;
  void on_segment_failed(std::size_t segment, std::size_t rep,
                         const net::FetchResult& result) override;
  void on_decode_complete(std::uint64_t frame, double cycles, sim::SimTime wall,
                          bool idr) override;
  void on_frame_dropped(std::uint64_t frame) override;

 private:
  DecisionRequest make_request(DecisionEvent event) const;
  /// Sends the request down the decision stream and actuates the reply:
  /// trace the plan, route decode, write setspeed per cluster (deduped).
  void deliver(const DecisionRequest& request);
  double oracle_decode_hz() const;
  const std::vector<std::uint32_t>& available(std::size_t cluster) const {
    return cluster == 0 ? available_khz_ : extra_[cluster - 1].available_khz;
  }
  void write_cluster_setspeed(std::size_t cluster, std::uint32_t khz);
  void note_write_failure();
  void note_deadline_miss();
  /// `cause`: 0 = consecutive write errors, 1 = deadline misses, 2 = the
  /// attach-time governor write was rejected (trace payload only).
  void enter_fallback(std::uint64_t cause);
  void try_reengage();

  sim::Simulator& sim_;
  sysfs::Tree& tree_;
  std::string dir_;
  stream::Player& player_;
  VafsConfig config_;
  obs::Tracer* tracer_ = nullptr;

  // Decision channel: opened at attach() (geometry known then). Default
  // in-process; set_decision_backend() swaps in e.g. the socket client.
  DecisionBackend* backend_ = nullptr;
  LocalDecisionBackend local_backend_;
  std::unique_ptr<DecisionStream> stream_;

  // Multi-cluster mode (null/empty when single-cluster). extra_[i] is
  // router cluster i+1; cluster 0 is the controller's own policy_dir.
  struct ExtraCluster {
    std::string dir;
    std::vector<std::uint32_t> available_khz;  // parsed from sysfs, ascending
    std::uint32_t last_written_khz = 0;
  };
  sched::ClusterRouter* router_ = nullptr;
  std::vector<ExtraCluster> extra_;

  bool attached_ = false;
  bool downloading_ = false;
  std::vector<std::uint32_t> available_khz_;  // parsed from sysfs, ascending

  /// Oracle GOP-scan memo: the last (rep, window) summed by
  /// oracle_decode_hz() and its result, reused while the window is unmoved.
  mutable std::size_t gop_rep_ = SIZE_MAX;
  mutable std::uint64_t gop_start_ = 0;
  mutable std::uint64_t gop_end_ = 0;
  mutable double gop_cycles_ = 0.0;

  std::uint32_t last_written_khz_ = 0;
  std::uint64_t plans_ = 0;
  std::uint64_t writes_ = 0;

  // Watchdog state.
  bool fallback_ = false;
  std::uint64_t fallback_entries_ = 0;
  sim::SimTime fallback_accum_;
  sim::SimTime fallback_since_;
  sim::SimTime last_incident_;  // most recent miss or write error
  std::uint64_t write_errors_ = 0;
  std::uint32_t consecutive_write_errors_ = 0;
  std::uint32_t miss_count_ = 0;
  sim::SimTime miss_window_start_;
  sim::EventHandle reengage_event_;
};

}  // namespace vafs::core
