#include "cpu/cpu_model.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace vafs::cpu {
namespace {

constexpr double kPeltHalflifeUs = 32'000.0;  // 32 ms, as in the kernel
constexpr double kCycleEpsilon = 0.5;         // sub-cycle residue counts as done

}  // namespace

CpuModel::CpuModel(sim::Simulator& simulator, OppTable opps, CpuPowerModel power,
                   sim::SimTime transition_latency)
    : sim_(simulator),
      opps_(std::move(opps)),
      power_(power),
      transition_latency_(transition_latency),
      cur_opp_(0),
      wall_in_state_(opps_.size(), sim::SimTime::zero()),
      busy_in_state_(opps_.size(), sim::SimTime::zero()),
      trans_table_(opps_.size() * opps_.size(), 0) {}

void CpuModel::advance_slow() {
  sim::SimTime now = sim_.now();
  while (last_advance_ < now) {
    // A segment ends at `now` or at the freeze boundary, whichever is first;
    // within a segment the execution conditions are constant.
    const bool frozen = last_advance_ < freeze_until_;
    const sim::SimTime seg_end = frozen ? std::min(now, freeze_until_) : now;
    const sim::SimTime d = seg_end - last_advance_;
    const bool is_busy = !tasks_.empty();

    wall_in_state_[cur_opp_] += d;
    if (is_busy) {
      busy_in_state_[cur_opp_] += d;
      total_busy_ += d;  // micros are integral, so the running sum is exact
    } else {
      idle_time_ += d;
    }

    // PELT: frequency-invariant decayed utilization. A fully-decayed idle
    // signal stays at exactly 0 without evaluating the exponential.
    const double contrib =
        is_busy && !frozen
            ? static_cast<double>(cur_freq_khz()) / static_cast<double>(opps_.max().freq_khz)
            : 0.0;
    if (pelt_util_ != 0.0 || contrib != 0.0) {
      const double decay = pelt_decay(d);
      pelt_util_ = pelt_util_ * decay + contrib * (1.0 - decay);
    }

    if (is_busy && !frozen) {
      // Processor sharing: k tasks each retire d * f / k cycles. k is
      // constant within the segment because every change point (submit,
      // cancel, completion, freq change) re-enters advance() first.
      const double per_task =
          static_cast<double>(d.as_micros()) * cycles_per_us() / static_cast<double>(tasks_.size());
      for (auto& task : tasks_) {
        task.cycles_remaining = std::max(0.0, task.cycles_remaining - per_task);
      }
    }
    last_advance_ = seg_end;
  }
}

double CpuModel::pelt_decay(sim::SimTime d) {
  if (d != decay_for_) {
    decay_for_ = d;
    decay_value_ = std::exp2(-d.as_seconds_f() * 1e6 / kPeltHalflifeUs);
  }
  return decay_value_;
}

void CpuModel::reschedule_completion() {
  if (tasks_.empty()) {
    completion_event_.cancel();
    return;
  }

  double min_cycles = tasks_.front().cycles_remaining;
  for (const auto& task : tasks_) min_cycles = std::min(min_cycles, task.cycles_remaining);

  const sim::SimTime now = sim_.now();
  sim::SimTime when = now;
  if (freeze_until_ > now) when = freeze_until_;
  const double exec_us =
      min_cycles * static_cast<double>(tasks_.size()) / cycles_per_us();
  when += sim::SimTime::micros(static_cast<std::int64_t>(std::ceil(exec_us)));
  if (when <= now) when = now;  // fire "immediately" for zero-cycle tasks
  // Re-arm the pending event in place when possible; this is the hottest
  // schedule path in a session (every submit/cancel/freq change lands here).
  if (!sim_.reschedule(completion_event_, when)) {
    completion_event_ = sim_.at(when, [this] { on_completion_event(); });
  }
}

void CpuModel::on_completion_event() {
  advance();
  // Collect finished tasks first; callbacks may submit new work or change
  // frequency, both of which re-enter this object. Stable compaction keeps
  // survivors and callbacks in submission order.
  std::size_t kept = 0;
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    if (tasks_[i].cycles_remaining <= kCycleEpsilon) {
      if (tasks_[i].on_complete) done_scratch_.push_back(std::move(tasks_[i].on_complete));
    } else {
      if (kept != i) tasks_[kept] = std::move(tasks_[i]);
      ++kept;
    }
  }
  tasks_.resize(kept);
  if (tasks_.empty()) {  // busy -> idle (callbacks may immediately resubmit)
    idle_open_ = true;
    idle_since_ = sim_.now();
  }
  reschedule_completion();
  for (auto& fn : done_scratch_) fn();
  done_scratch_.clear();
}

void CpuModel::close_idle_period() {
  if (!idle_open_) return;
  idle_open_ = false;
  const sim::SimTime duration = sim_.now() - idle_since_;
  if (cpuidle_ != nullptr) idle_energy_mj_ += cpuidle_->record_idle(duration);
}

CpuModel::TaskId CpuModel::submit(std::string_view name, double cycles,
                                  sim::EventFn on_complete) {
  assert(cycles >= 0.0);
  advance();
  if (tasks_.empty()) close_idle_period();  // idle -> busy
  const TaskId id = next_task_id_++;
  tasks_.push_back(Task{id, name, cycles, std::move(on_complete)});
  reschedule_completion();
  return id;
}

bool CpuModel::cancel(TaskId id) {
  advance();
  for (auto it = tasks_.begin(); it != tasks_.end(); ++it) {
    if (it->id == id) {
      tasks_.erase(it);
      if (tasks_.empty()) {  // busy -> idle
        idle_open_ = true;
        idle_since_ = sim_.now();
      }
      reschedule_completion();
      return true;
    }
  }
  return false;
}

void CpuModel::set_frequency(std::uint32_t target_khz, Relation rel) {
  advance();
  const std::size_t new_index = opps_.resolve_index(target_khz, rel);
  if (new_index == cur_opp_) return;
  const Opp& opp = opps_.at(new_index);

  const std::uint32_t old_khz = cur_freq_khz();
  trans_table_[cur_opp_ * opps_.size() + new_index] += 1;
  cur_opp_ = new_index;
  ++transitions_;
  freeze_until_ = sim_.now() + transition_latency_;
  reschedule_completion();
  for (const auto& fn : freq_listeners_) fn(old_khz, opp.freq_khz);
}

sim::SimTime CpuModel::total_busy_time() {
  advance();
  return total_busy_;
}

double CpuModel::pelt_util() {
  advance();
  return pelt_util_;
}

sim::SimTime CpuModel::time_in_state(std::size_t opp_index) {
  advance();
  assert(opp_index < wall_in_state_.size());
  return wall_in_state_[opp_index];
}

sim::SimTime CpuModel::busy_time_in_state(std::size_t opp_index) {
  advance();
  assert(opp_index < busy_in_state_.size());
  return busy_in_state_[opp_index];
}

sim::SimTime CpuModel::total_idle_time() {
  advance();
  return idle_time_;
}

double CpuModel::energy_mj() {
  advance();
  double mj = 0.0;
  for (std::size_t i = 0; i < opps_.size(); ++i) {
    mj += busy_in_state_[i].as_seconds_f() * power_.busy_mw(opps_.at(i));
  }
  if (cpuidle_ != nullptr) {
    mj += idle_energy_mj_;
    if (idle_open_) mj += cpuidle_->preview(sim_.now() - idle_since_);
  } else {
    mj += idle_time_.as_seconds_f() * power_.idle_mw();
  }
  mj += static_cast<double>(transitions_) * power_.transition_uj() / 1000.0;
  return mj;
}

void CpuModel::set_cpuidle(CpuidleModel* cpuidle) {
  advance();
  // Mixing flat and per-period pricing of already-elapsed idle time would
  // double- or under-count; require attachment before any idle accrues.
  assert((cpuidle == nullptr || idle_time_.is_zero()) &&
         "attach cpuidle before the core accrues idle time");
  close_idle_period();
  cpuidle_ = cpuidle;
  if (!busy()) {
    idle_open_ = true;
    idle_since_ = sim_.now();
  }
}

std::uint64_t CpuModel::transitions_between(std::size_t from, std::size_t to) const {
  assert(from < opps_.size() && to < opps_.size());
  return trans_table_[from * opps_.size() + to];
}

void CpuModel::add_freq_listener(std::function<void(std::uint32_t, std::uint32_t)> fn) {
  freq_listeners_.push_back(std::move(fn));
}

}  // namespace vafs::cpu
