// The simulated CPU: executes cycle-quantified tasks at the currently
// programmed OPP, tracks per-OPP residency exactly, and exposes the load
// signals real governors consume (windowed busy fraction and a PELT-style
// decayed utilization).
//
// Execution model: a single core with processor sharing — all runnable
// tasks progress at rate f / k where k is the number of runnable tasks.
// This is sufficient for the video pipeline, whose phases (download
// processing, frame decode) overlap only briefly; what governors observe is
// busy time and residency, both of which are exact here.
//
// DVFS transitions have a latency during which no cycles retire (the core
// stalls at the *new* OPP's power) and a fixed energy cost.
#pragma once

#include <cstdint>
#include <functional>
#include <string_view>
#include <vector>

#include "cpu/cpu_sink.h"
#include "cpu/cpuidle.h"
#include "cpu/opp.h"
#include "cpu/power_model.h"
#include "simcore/simulator.h"

namespace vafs::cpu {

class CpuModel final : public CpuSink {
 public:
  using TaskId = std::uint64_t;
  static constexpr TaskId kInvalidTask = 0;

  CpuModel(sim::Simulator& simulator, OppTable opps, CpuPowerModel power,
           sim::SimTime transition_latency = sim::SimTime::micros(150));

  CpuModel(const CpuModel&) = delete;
  CpuModel& operator=(const CpuModel&) = delete;

  // ---- Workload interface -------------------------------------------------

  /// Submits a task needing `cycles` CPU cycles; `on_complete` fires (via
  /// the event queue) when it has retired them all. Returns its id.
  TaskId submit(std::string_view name, double cycles, sim::EventFn on_complete) override;

  /// Cancels a pending task. Returns false if it already completed.
  bool cancel(TaskId id) override;

  bool busy() const { return !tasks_.empty(); }
  std::size_t runnable_count() const { return tasks_.size(); }

  // ---- Frequency control --------------------------------------------------

  const OppTable& opps() const { return opps_; }
  std::uint32_t cur_freq_khz() const { return opps_.at(cur_opp_).freq_khz; }
  std::size_t cur_opp_index() const { return cur_opp_; }

  /// Programs a new frequency (snapped to the OPP grid). A real change
  /// stalls the core for the transition latency and costs transition
  /// energy; re-programming the current OPP is free.
  void set_frequency(std::uint32_t target_khz, Relation rel = Relation::kAtLeast);

  std::uint64_t transition_count() const { return transitions_; }
  sim::SimTime transition_latency() const { return transition_latency_; }

  /// Transition matrix: how often the CPU moved from OPP `from` to OPP
  /// `to` — the kernel's stats/trans_table.
  std::uint64_t transitions_between(std::size_t from, std::size_t to) const;

  // ---- Load signals (what governors read) ---------------------------------

  /// Total busy time since construction (all OPPs). Sampling governors
  /// compute window load by differencing two readings.
  sim::SimTime total_busy_time();

  /// PELT-style utilization in [0, 1]: exponentially decayed (32 ms
  /// half-life), frequency-invariant (busy time at f counts as f/f_max).
  /// This is the signal schedutil consumes.
  double pelt_util();

  // ---- Residency & energy (what the power meter reads) --------------------

  /// Wall-clock time spent programmed at OPP i (busy + idle), like the
  /// kernel's stats/time_in_state.
  sim::SimTime time_in_state(std::size_t opp_index);

  /// Busy time at OPP i (the energy-relevant split).
  sim::SimTime busy_time_in_state(std::size_t opp_index);

  sim::SimTime total_idle_time();

  /// Total CPU energy so far, in millijoules: residency-weighted power
  /// plus transition costs. Idle periods are priced by the attached
  /// cpuidle model if any, else at the power model's flat WFI power.
  double energy_mj();

  const CpuPowerModel& power_model() const { return power_; }

  /// Attaches a cpuidle model (not owned; may be null to detach). Idle
  /// periods completed from now on are priced by it.
  void set_cpuidle(CpuidleModel* cpuidle);
  CpuidleModel* cpuidle() { return cpuidle_; }

  // ---- Observers -----------------------------------------------------------

  /// Called after every actual frequency change with (old_khz, new_khz).
  void add_freq_listener(std::function<void(std::uint32_t, std::uint32_t)> fn);

 private:
  struct Task {
    TaskId id;
    std::string_view name;  // referenced, not owned (a literal in practice)
    double cycles_remaining;
    sim::EventFn on_complete;
  };

  /// Brings accounting (residency, PELT, task progress) up to now().
  /// Every public reader calls this first, so most calls find the clock
  /// already caught up — that no-op check stays inline.
  void advance() {
    if (last_advance_ < sim_.now()) advance_slow();
  }
  void advance_slow();

  /// exp2 of the PELT decay for a segment of length `d`, memoized on the
  /// last distinct d — idle stretches tick at a governor's fixed sampling
  /// period, so consecutive segments repeat the same length constantly.
  double pelt_decay(sim::SimTime d);

  /// Re-schedules the completion event for the earliest-finishing task.
  void reschedule_completion();

  void on_completion_event();

  double cycles_per_us() const { return static_cast<double>(cur_freq_khz()) / 1000.0; }

  sim::Simulator& sim_;
  OppTable opps_;
  CpuPowerModel power_;
  sim::SimTime transition_latency_;

  std::size_t cur_opp_;
  std::vector<Task> tasks_;
  /// Completion callbacks collected before firing; member so the capacity
  /// survives across completion events (cleared after each use, never
  /// accessed reentrantly — callbacks run after collection finishes).
  std::vector<sim::EventFn> done_scratch_;
  TaskId next_task_id_ = 1;

  sim::SimTime last_advance_ = sim::SimTime::zero();
  sim::SimTime freeze_until_ = sim::SimTime::zero();

  /// Closes the open idle period (if tracking) and prices it.
  void close_idle_period();

  std::vector<sim::SimTime> wall_in_state_;
  std::vector<sim::SimTime> busy_in_state_;
  sim::SimTime total_busy_ = sim::SimTime::zero();  // running sum of busy_in_state_
  sim::SimTime idle_time_ = sim::SimTime::zero();
  std::uint64_t transitions_ = 0;
  std::vector<std::uint64_t> trans_table_;  // size() x size(), row-major from->to

  CpuidleModel* cpuidle_ = nullptr;
  bool idle_open_ = true;  // the core starts idle
  sim::SimTime idle_since_ = sim::SimTime::zero();
  double idle_energy_mj_ = 0.0;  // priced by cpuidle_; unused when null

  double pelt_util_ = 0.0;
  sim::SimTime decay_for_ = sim::SimTime::max();  // pelt_decay memo key
  double decay_value_ = 0.0;

  sim::EventHandle completion_event_;
  std::vector<std::function<void(std::uint32_t, std::uint32_t)>> freq_listeners_;
};

}  // namespace vafs::cpu
