// The compute-sink interface: anything that can execute cycle-quantified
// tasks. CpuModel implements it directly (single cluster); the big.LITTLE
// ClusterRouter implements it by routing tasks between two CpuModels.
// Workload producers (player, downloader) depend only on this interface.
#pragma once

#include <cstdint>
#include <string_view>

#include "simcore/event_queue.h"

namespace vafs::cpu {

class CpuSink {
 public:
  virtual ~CpuSink() = default;

  /// Submits a task needing `cycles` CPU cycles; `on_complete` fires when
  /// it has retired them all. Returns a task id (0 is never used).
  /// `name` classifies the task (e.g. "decode", "http-recv"); it is
  /// referenced, not copied, so it must outlive the task — in practice a
  /// string literal.
  virtual std::uint64_t submit(std::string_view name, double cycles,
                               sim::EventFn on_complete) = 0;

  /// Cancels a pending task; returns false if it already completed (its
  /// callback has then already run) or is unknown.
  virtual bool cancel(std::uint64_t id) = 0;
};

}  // namespace vafs::cpu
