#include "cpu/cpufreq_policy.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <string>

#include "obs/trace.h"

namespace vafs::cpu {

CpufreqPolicy::CpufreqPolicy(sim::Simulator& simulator, CpuModel& cpu,
                             const GovernorRegistry& registry, std::string_view default_governor)
    : sim_(simulator),
      cpu_(cpu),
      registry_(registry),
      min_khz_(cpu.opps().min().freq_khz),
      max_khz_(cpu.opps().max().freq_khz) {
  governor_ = registry_.create(default_governor);
  if (!governor_) {
    throw std::runtime_error("cpufreq: unknown governor '" + std::string(default_governor) +
                             "'");
  }
  governor_->start(*this);
}

CpufreqPolicy::~CpufreqPolicy() {
  if (governor_) governor_->stop();
}

sysfs::Status CpufreqPolicy::set_governor(std::string_view name) {
  if (governor_ && governor_->name() == name) return {};
  auto next = registry_.create(name);
  if (!next) return sysfs::Errno::kInval;

  const std::string old_name(governor_ ? governor_->name() : std::string_view{});
  if (governor_) governor_->stop();
  governor_ = std::move(next);
  governor_->start(*this);
  for (const auto& fn : governor_listeners_) fn(old_name, governor_->name());
  return {};
}

sysfs::Status CpufreqPolicy::set_min(std::uint32_t khz) {
  const auto hw_min = cpu_.opps().min().freq_khz;
  const auto hw_max = cpu_.opps().max().freq_khz;
  khz = std::clamp(khz, hw_min, hw_max);
  min_khz_ = khz;
  max_khz_ = std::max(max_khz_, min_khz_);
  if (cur_khz() < min_khz_) set_target(min_khz_, Relation::kAtLeast);
  if (governor_) governor_->limits_changed();
  return {};
}

sysfs::Status CpufreqPolicy::set_max(std::uint32_t khz) {
  const auto hw_min = cpu_.opps().min().freq_khz;
  const auto hw_max = cpu_.opps().max().freq_khz;
  khz = std::clamp(khz, hw_min, hw_max);
  max_khz_ = khz;
  min_khz_ = std::min(min_khz_, max_khz_);
  if (cur_khz() > max_khz_) set_target(max_khz_, Relation::kAtMost);
  if (governor_) governor_->limits_changed();
  return {};
}

void CpufreqPolicy::set_target(std::uint32_t target_khz, Relation rel) {
  const std::uint32_t requested_khz = target_khz;
  target_khz = std::clamp(target_khz, min_khz_, max_khz_);
  cpu_.set_frequency(target_khz, rel);
  // The OPP snap may have landed outside [min,max] when the bounds fall
  // between grid points; bias back inside if so.
  if (cpu_.cur_freq_khz() > max_khz_) cpu_.set_frequency(max_khz_, Relation::kAtMost);
  if (cpu_.cur_freq_khz() < min_khz_) cpu_.set_frequency(min_khz_, Relation::kAtLeast);
  if (tracer_ != nullptr) {
    tracer_->record(sim_.now(), obs::EventKind::kGovernorDecision, requested_khz,
                    static_cast<std::uint64_t>(rel), cur_khz());
  }
}

void CpufreqPolicy::add_governor_listener(
    std::function<void(std::string_view, std::string_view)> fn) {
  governor_listeners_.push_back(std::move(fn));
}

}  // namespace vafs::cpu
