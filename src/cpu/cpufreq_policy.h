// The cpufreq policy core: owns the active governor, enforces the
// scaling_min_freq / scaling_max_freq bounds, and routes governor targets
// to the CPU model — the equivalent of the kernel's `struct cpufreq_policy`
// plus the policy core's clamping logic.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "cpu/cpu_model.h"
#include "cpu/governor.h"
#include "simcore/simulator.h"
#include "sysfs/result.h"

namespace vafs::obs {
class Tracer;
}

namespace vafs::cpu {

class CpufreqPolicy {
 public:
  /// The registry must outlive the policy. `default_governor` must exist
  /// in the registry; it is started immediately.
  CpufreqPolicy(sim::Simulator& simulator, CpuModel& cpu, const GovernorRegistry& registry,
                std::string_view default_governor);
  ~CpufreqPolicy();

  CpufreqPolicy(const CpufreqPolicy&) = delete;
  CpufreqPolicy& operator=(const CpufreqPolicy&) = delete;

  // ---- Governor management ----

  /// Switches governors by name (stop old, start new). Unknown names fail
  /// with EINVAL; switching to the current governor is a no-op.
  sysfs::Status set_governor(std::string_view name);
  std::string_view governor_name() const { return governor_ ? governor_->name() : ""; }
  Governor* governor() { return governor_.get(); }

  // ---- Limits ----

  std::uint32_t min_khz() const { return min_khz_; }
  std::uint32_t max_khz() const { return max_khz_; }

  /// Sets bounds; values are clamped to the hardware range and min<=max is
  /// enforced kernel-style (min rises above max => max is raised too when
  /// setting min, and vice versa is rejected). Re-clamps the current
  /// frequency and notifies the governor.
  sysfs::Status set_min(std::uint32_t khz);
  sysfs::Status set_max(std::uint32_t khz);

  // ---- Target routing (what governors call) ----

  /// Clamps `target_khz` into [min, max], snaps to the OPP grid, and
  /// programs the CPU.
  void set_target(std::uint32_t target_khz, Relation rel = Relation::kAtLeast);

  std::uint32_t cur_khz() const { return cpu_.cur_freq_khz(); }

  CpuModel& cpu() { return cpu_; }
  const OppTable& opps() const { return cpu_.opps(); }
  sim::Simulator& simulator() { return sim_; }
  const GovernorRegistry& registry() const { return registry_; }

  /// Called with (old_name, new_name) after every governor switch; the
  /// sysfs binder uses this to swap tunable directories.
  void add_governor_listener(std::function<void(std::string_view, std::string_view)> fn);

  /// Optional tracer; governors and the policy core record their decisions
  /// through it. May be null (the default) — never owned.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }
  obs::Tracer* tracer() const { return tracer_; }

 private:
  sim::Simulator& sim_;
  CpuModel& cpu_;
  const GovernorRegistry& registry_;
  std::unique_ptr<Governor> governor_;
  std::uint32_t min_khz_;
  std::uint32_t max_khz_;
  std::vector<std::function<void(std::string_view, std::string_view)>> governor_listeners_;
  obs::Tracer* tracer_ = nullptr;
};

}  // namespace vafs::cpu
