#include "cpu/cpufreq_sysfs.h"

#include <cassert>
#include <string>

namespace vafs::cpu {

std::optional<std::uint32_t> parse_khz(std::string_view text) {
  if (text.empty() || text.size() > 10) return std::nullopt;
  std::uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return std::nullopt;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  // UINT32_MAX itself is CPUFREQ_ENTRY_INVALID in the kernel's tables —
  // reject it as a value rather than reusing it as an error sentinel.
  if (value >= UINT32_MAX) return std::nullopt;
  return static_cast<std::uint32_t>(value);
}

CpufreqSysfs::CpufreqSysfs(sysfs::Tree& tree, CpufreqPolicy& policy, unsigned index)
    : tree_(tree), policy_(policy), dir_("devices/system/cpu/cpufreq/policy" + std::to_string(index)) {
  auto must = [](sysfs::Status status) {
    assert(status.ok());
    (void)status;
  };

  must(tree_.mkdir(dir_));
  must(tree_.mkdir(dir_ + "/stats"));

  auto& p = policy_;

  must(tree_.add_attr(dir_ + "/scaling_available_frequencies",
                      [&p] { return p.opps().available_frequencies_string(); }, nullptr));
  must(tree_.add_attr(dir_ + "/scaling_available_governors",
                      [&p] { return p.registry().available_string(); }, nullptr));
  must(tree_.add_attr(dir_ + "/cpuinfo_min_freq",
                      [&p] { return std::to_string(p.opps().min().freq_khz); }, nullptr));
  must(tree_.add_attr(dir_ + "/cpuinfo_max_freq",
                      [&p] { return std::to_string(p.opps().max().freq_khz); }, nullptr));
  must(tree_.add_attr(dir_ + "/cpuinfo_transition_latency",
                      [&p] {
                        // Kernel reports nanoseconds.
                        return std::to_string(p.cpu().transition_latency().as_micros() * 1000);
                      },
                      nullptr));
  must(tree_.add_attr(dir_ + "/scaling_cur_freq",
                      [&p] { return std::to_string(p.cur_khz()); }, nullptr));
  must(tree_.add_attr(dir_ + "/scaling_min_freq",
                      [&p] { return std::to_string(p.min_khz()); },
                      [&p](std::string_view v) {
                        const auto khz = parse_khz(v);
                        if (!khz) return sysfs::Status(sysfs::Errno::kInval);
                        return p.set_min(*khz);
                      }));
  must(tree_.add_attr(dir_ + "/scaling_max_freq",
                      [&p] { return std::to_string(p.max_khz()); },
                      [&p](std::string_view v) {
                        const auto khz = parse_khz(v);
                        if (!khz) return sysfs::Status(sysfs::Errno::kInval);
                        return p.set_max(*khz);
                      }));
  must(tree_.add_attr(dir_ + "/scaling_governor",
                      [&p] { return std::string(p.governor_name()); },
                      [&p](std::string_view v) { return p.set_governor(v); }));
  must(tree_.add_attr(dir_ + "/scaling_setspeed",
                      [&p]() -> std::string {
                        Governor* gov = p.governor();
                        if (gov == nullptr || !gov->supports_setspeed()) return "<unsupported>";
                        return std::to_string(p.cur_khz());
                      },
                      [&p](std::string_view v) -> sysfs::Status {
                        Governor* gov = p.governor();
                        if (gov == nullptr || !gov->supports_setspeed()) {
                          return sysfs::Errno::kInval;
                        }
                        const auto khz = parse_khz(v);
                        if (!khz) return sysfs::Errno::kInval;
                        return gov->set_speed(*khz);
                      }));
  must(tree_.add_attr(dir_ + "/stats/time_in_state",
                      [&p] {
                        // Kernel format: "<freq_khz> <time in 10ms units>" per line.
                        std::string out;
                        for (std::size_t i = 0; i < p.opps().size(); ++i) {
                          out += std::to_string(p.opps().at(i).freq_khz);
                          out += ' ';
                          out += std::to_string(p.cpu().time_in_state(i).as_micros() / 10'000);
                          out += '\n';
                        }
                        return out;
                      },
                      nullptr));
  must(tree_.add_attr(dir_ + "/stats/total_trans",
                      [&p] { return std::to_string(p.cpu().transition_count()); }, nullptr));
  must(tree_.add_attr(dir_ + "/stats/trans_table",
                      [&p] {
                        // Kernel format (abridged): header row of target
                        // frequencies, then one row per source frequency.
                        const auto& opps = p.opps();
                        std::string out = "From : To\n";
                        out += "     ";
                        for (std::size_t j = 0; j < opps.size(); ++j) {
                          out += ' ';
                          out += std::to_string(opps.at(j).freq_khz);
                        }
                        out += '\n';
                        for (std::size_t i = 0; i < opps.size(); ++i) {
                          out += std::to_string(opps.at(i).freq_khz);
                          out += ':';
                          for (std::size_t j = 0; j < opps.size(); ++j) {
                            out += ' ';
                            out += std::to_string(p.cpu().transitions_between(i, j));
                          }
                          out += '\n';
                        }
                        return out;
                      },
                      nullptr));

  publish_tunables(policy_.governor_name());
  policy_.add_governor_listener([this](std::string_view old_name, std::string_view new_name) {
    retract_tunables(old_name);
    publish_tunables(new_name);
  });
}

CpufreqSysfs::~CpufreqSysfs() { tree_.remove(dir_); }

sysfs::Status CpufreqSysfs::store(std::string_view rel_path, std::string_view value) {
  return tree_.write(dir_ + "/" + std::string(rel_path), value);
}

void CpufreqSysfs::publish_tunables(std::string_view governor_name) {
  Governor* gov = policy_.governor();
  if (gov == nullptr) return;
  auto tunables = gov->tunables();
  if (tunables.empty()) return;
  const std::string subdir = dir_ + "/" + std::string(governor_name);
  tree_.mkdir(subdir);
  for (auto& tunable : tunables) {
    tree_.add_attr(subdir + "/" + tunable.name, std::move(tunable.show), std::move(tunable.store));
  }
}

void CpufreqSysfs::retract_tunables(std::string_view governor_name) {
  if (governor_name.empty()) return;
  const std::string subdir = dir_ + "/" + std::string(governor_name);
  if (tree_.exists(subdir)) tree_.remove(subdir);
}

}  // namespace vafs::cpu
