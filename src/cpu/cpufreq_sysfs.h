// Publishes a CpufreqPolicy into a sysfs::Tree with the kernel's attribute
// layout: devices/system/cpu/cpufreq/policy<N>/{scaling_governor, ...} and
// the stats/ subdirectory. Userspace policies (the VAFS governor, the
// example tools) drive the CPU exclusively through these attributes.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "cpu/cpufreq_policy.h"
#include "sysfs/tree.h"

namespace vafs::cpu {

class CpufreqSysfs {
 public:
  /// Binds `policy` into `tree` as policy<index>. Both must outlive this
  /// object. The active governor's tunables appear under
  /// policy<index>/<governor_name>/ and follow governor switches.
  CpufreqSysfs(sysfs::Tree& tree, CpufreqPolicy& policy, unsigned index = 0);
  ~CpufreqSysfs();

  CpufreqSysfs(const CpufreqSysfs&) = delete;
  CpufreqSysfs& operator=(const CpufreqSysfs&) = delete;

  /// "devices/system/cpu/cpufreq/policy<N>"
  const std::string& dir() const { return dir_; }

  /// Writes `value` to an attribute relative to this policy's directory,
  /// e.g. store("ondemand/up_threshold", "90"). This is how session-level
  /// config (SessionConfig::governor_tunables, the auto-tuner's knob
  /// plumbing) programs sampling-governor tunables: through the same sysfs
  /// store hooks a userspace tool would hit, validation included.
  sysfs::Status store(std::string_view rel_path, std::string_view value);

 private:
  void publish_tunables(std::string_view governor_name);
  void retract_tunables(std::string_view governor_name);

  sysfs::Tree& tree_;
  CpufreqPolicy& policy_;
  std::string dir_;
};

/// Parses a non-negative decimal integer, rejecting trailing garbage —
/// the validation a kernel store() hook performs. Returns nullopt for
/// empty/garbage input, overflow, and the literal UINT32_MAX (the
/// kernel's CPUFREQ_ENTRY_INVALID sentinel, never a programmable
/// frequency) — so store hooks reject all of them with EINVAL instead of
/// conflating "4294967295" with a parse failure.
std::optional<std::uint32_t> parse_khz(std::string_view text);

}  // namespace vafs::cpu
