#include "cpu/cpuidle.h"

#include <algorithm>
#include <cassert>

namespace vafs::cpu {

const char* cpuidle_strategy_name(CpuidleStrategy s) {
  switch (s) {
    case CpuidleStrategy::kShallowOnly: return "shallow";
    case CpuidleStrategy::kMenu: return "menu";
    case CpuidleStrategy::kOracle: return "oracle";
  }
  return "?";
}

CpuidleParams CpuidleParams::mobile() {
  // Target residencies sit at the energy break-even against the previous
  // state given the 300 mW transition power: core-off beats WFI beyond
  // ~4.3 ms; cluster-off beats core-off beyond ~72 ms.
  CpuidleParams p;
  p.states = {
      {"wfi", 18.0, sim::SimTime::zero(), sim::SimTime::zero()},
      {"core-off", 4.0, sim::SimTime::micros(200), sim::SimTime::millis(5)},
      {"cluster-off", 1.5, sim::SimTime::micros(800), sim::SimTime::millis(70)},
  };
  return p;
}

CpuidleModel::CpuidleModel(CpuidleParams params, CpuidleStrategy strategy)
    : params_(std::move(params)),
      strategy_(strategy),
      predicted_us_(1000.0),
      entries_(params_.states.size(), 0),
      time_in_(params_.states.size()) {
  assert(!params_.states.empty());
  assert(params_.states.front().entry_exit.is_zero() && "state 0 must be free to enter");
}

double CpuidleModel::energy_of(std::size_t state, sim::SimTime duration) const {
  const CState& s = params_.states[state];
  const sim::SimTime overhead = std::min(s.entry_exit, duration);
  const sim::SimTime resident = duration - overhead;
  return overhead.as_seconds_f() * params_.overhead_mw +
         resident.as_seconds_f() * s.power_mw;
}

std::size_t CpuidleModel::select(sim::SimTime duration) const {
  switch (strategy_) {
    case CpuidleStrategy::kShallowOnly:
      return 0;
    case CpuidleStrategy::kMenu: {
      // Deepest state whose target residency fits the prediction.
      std::size_t chosen = 0;
      for (std::size_t i = 1; i < params_.states.size(); ++i) {
        if (params_.states[i].target_residency <= duration) chosen = i;
      }
      return chosen;
    }
    case CpuidleStrategy::kOracle: {
      std::size_t best = 0;
      double best_mj = energy_of(0, duration);
      for (std::size_t i = 1; i < params_.states.size(); ++i) {
        const double mj = energy_of(i, duration);
        if (mj < best_mj) {
          best = i;
          best_mj = mj;
        }
      }
      return best;
    }
  }
  return 0;
}

double CpuidleModel::record_idle(sim::SimTime duration) {
  if (duration <= sim::SimTime::zero()) return 0.0;
  // Menu selects on the *predicted* duration, then pays for the actual one
  // (mispredictions cost real energy, as on hardware).
  const sim::SimTime basis = strategy_ == CpuidleStrategy::kMenu
                                 ? sim::SimTime::micros(static_cast<std::int64_t>(predicted_us_))
                                 : duration;
  const std::size_t state = select(basis);
  ++entries_[state];
  time_in_[state] += duration;
  ++periods_;

  predicted_us_ = params_.menu_alpha * static_cast<double>(duration.as_micros()) +
                  (1.0 - params_.menu_alpha) * predicted_us_;
  return energy_of(state, duration);
}

double CpuidleModel::preview(sim::SimTime duration) const {
  if (duration <= sim::SimTime::zero()) return 0.0;
  const sim::SimTime basis = strategy_ == CpuidleStrategy::kMenu
                                 ? sim::SimTime::micros(static_cast<std::int64_t>(predicted_us_))
                                 : duration;
  return energy_of(select(basis), duration);
}

}  // namespace vafs::cpu
