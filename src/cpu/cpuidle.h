// CPU idle states (cpuidle): how deeply the core sleeps between work.
//
// The flat idle power of the base model is state 0 (WFI). Deeper states
// (core power-gating, cluster off) draw far less but cost an entry/exit
// overhead and only pay off beyond a target residency. Selection per idle
// period:
//   kShallowOnly — always WFI (the base model's behaviour, the default)
//   kMenu        — menu-governor style: predict the next idle duration
//                  from an EWMA of recent ones, pick the deepest state
//                  whose target residency fits the prediction
//   kOracle      — pick the energy-optimal state for the *actual*
//                  duration (an idealized upper bound for comparison)
//
// Wake latency (≤ ~1.5 ms) is not fed back into task timing: it is two
// orders of magnitude below the 33 ms frame period, so it cannot move the
// QoE metrics this library reports (documented simplification).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "simcore/time.h"

namespace vafs::cpu {

struct CState {
  std::string name;
  double power_mw = 0.0;
  /// Combined entry+exit time; charged at `overhead_mw`.
  sim::SimTime entry_exit;
  /// Minimum idle duration for which this state is worth entering.
  sim::SimTime target_residency;
};

enum class CpuidleStrategy { kShallowOnly, kMenu, kOracle };

const char* cpuidle_strategy_name(CpuidleStrategy s);

struct CpuidleParams {
  /// Ascending depth; state 0 must have zero entry/exit (WFI).
  std::vector<CState> states;
  /// Power drawn during entry/exit transitions.
  double overhead_mw = 300.0;
  /// EWMA weight of the menu predictor.
  double menu_alpha = 0.3;

  /// A mobile big-core ladder: WFI 18 mW, core-off 4 mW (400 µs / 2 ms),
  /// cluster-off 1.5 mW (1.5 ms / 10 ms).
  static CpuidleParams mobile();
};

class CpuidleModel {
 public:
  explicit CpuidleModel(CpuidleParams params, CpuidleStrategy strategy);

  /// Accounts one completed idle period; returns its energy (mJ) and
  /// records per-state statistics. Also feeds the menu predictor.
  double record_idle(sim::SimTime duration);

  /// Energy (mJ) a period of `duration` would cost right now, without
  /// recording it — used to price a still-open idle period.
  double preview(sim::SimTime duration) const;

  CpuidleStrategy strategy() const { return strategy_; }
  const CpuidleParams& params() const { return params_; }

  std::uint64_t entries(std::size_t state) const { return entries_[state]; }
  sim::SimTime time_in(std::size_t state) const { return time_in_[state]; }
  std::uint64_t periods() const { return periods_; }

 private:
  /// State chosen for a (predicted or actual) duration.
  std::size_t select(sim::SimTime duration) const;
  double energy_of(std::size_t state, sim::SimTime duration) const;

  CpuidleParams params_;
  CpuidleStrategy strategy_;
  double predicted_us_;
  std::vector<std::uint64_t> entries_;
  std::vector<sim::SimTime> time_in_;
  std::uint64_t periods_ = 0;
};

}  // namespace vafs::cpu
