#include "cpu/governor.h"

#include <cassert>

namespace vafs::cpu {

void GovernorRegistry::add(std::string name, Factory factory) {
  assert(!factories_.contains(name) && "governor already registered");
  factories_.emplace(std::move(name), std::move(factory));
}

bool GovernorRegistry::contains(std::string_view name) const {
  return factories_.find(name) != factories_.end();
}

std::unique_ptr<Governor> GovernorRegistry::create(std::string_view name) const {
  const auto it = factories_.find(name);
  if (it == factories_.end()) return nullptr;
  return it->second();
}

std::string GovernorRegistry::available_string() const {
  std::string out;
  for (const auto& [name, factory] : factories_) {
    if (!out.empty()) out += ' ';
    out += name;
  }
  return out;
}

std::vector<std::string> GovernorRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) out.push_back(name);
  return out;
}

}  // namespace vafs::cpu
