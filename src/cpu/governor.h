// The governor interface and registry — the contract between the cpufreq
// policy core and frequency-selection policies, mirroring the kernel's
// `struct cpufreq_governor`.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "sysfs/result.h"

namespace vafs::cpu {

class CpufreqPolicy;

/// A tunable attribute a governor exposes under
/// policyN/<governor_name>/<name> while it is active.
struct Tunable {
  std::string name;
  std::function<std::string()> show;
  std::function<sysfs::Status(std::string_view)> store;  // null => read-only
};

/// A frequency-selection policy. Lifetime: constructed by the registry,
/// start()ed when attached to a policy, stop()ped when detached (governor
/// switch or teardown). A governor instance serves one policy at a time.
class Governor {
 public:
  virtual ~Governor() = default;

  virtual std::string_view name() const = 0;

  /// Attaches to `policy`; the governor may immediately set a frequency
  /// and/or arm sampling timers on the policy's simulator.
  virtual void start(CpufreqPolicy& policy) = 0;

  /// Detaches; must cancel all timers. The policy outlives this call.
  virtual void stop() = 0;

  /// Called after scaling_min_freq / scaling_max_freq change so the
  /// governor can re-evaluate its target within the new bounds.
  virtual void limits_changed() {}

  /// Only the `userspace` governor accepts scaling_setspeed writes.
  virtual bool supports_setspeed() const { return false; }
  virtual sysfs::Status set_speed(std::uint32_t /*khz*/) { return sysfs::Errno::kAccess; }

  /// Tunables to publish under policyN/<name>/ while active.
  virtual std::vector<Tunable> tunables() { return {}; }
};

/// Name → factory map, so `echo <name> > scaling_governor` can construct
/// governors by string, as the kernel module system does.
class GovernorRegistry {
 public:
  using Factory = std::function<std::unique_ptr<Governor>()>;

  void add(std::string name, Factory factory);
  bool contains(std::string_view name) const;
  std::unique_ptr<Governor> create(std::string_view name) const;

  /// Space-separated list for `scaling_available_governors`.
  std::string available_string() const;
  std::vector<std::string> names() const;

 private:
  std::map<std::string, Factory, std::less<>> factories_;
};

}  // namespace vafs::cpu
