#include "cpu/opp.h"

#include <algorithm>
#include <cassert>

namespace vafs::cpu {

OppTable::OppTable(std::vector<Opp> opps) : opps_(std::move(opps)) {
  assert(!opps_.empty() && "OPP table must not be empty");
  std::sort(opps_.begin(), opps_.end(),
            [](const Opp& a, const Opp& b) { return a.freq_khz < b.freq_khz; });
  for (std::size_t i = 1; i < opps_.size(); ++i) {
    assert(opps_[i].freq_khz != opps_[i - 1].freq_khz && "duplicate OPP frequency");
  }
}

std::size_t OppTable::index_of(std::uint32_t freq_khz) const {
  for (std::size_t i = 0; i < opps_.size(); ++i) {
    if (opps_[i].freq_khz == freq_khz) return i;
  }
  return SIZE_MAX;
}

std::size_t OppTable::resolve_index(std::uint32_t target_khz, Relation rel) const {
  if (rel == Relation::kAtLeast) {
    for (std::size_t i = 0; i < opps_.size(); ++i) {
      if (opps_[i].freq_khz >= target_khz) return i;
    }
    return opps_.size() - 1;
  }
  for (std::size_t i = opps_.size(); i-- > 0;) {
    if (opps_[i].freq_khz <= target_khz) return i;
  }
  return 0;
}

std::string OppTable::available_frequencies_string() const {
  std::string out;
  for (const auto& opp : opps_) {
    if (!out.empty()) out += ' ';
    out += std::to_string(opp.freq_khz);
  }
  return out;
}

OppTable OppTable::mobile_big_core() {
  // Frequencies and voltages shaped after published big-core OPP tables
  // (e.g. Exynos/Snapdragon class parts): voltage grows superlinearly with
  // frequency, which is what makes high OPPs disproportionately expensive.
  return OppTable({
      {300'000, 650'000},
      {600'000, 700'000},
      {900'000, 750'000},
      {1'200'000, 825'000},
      {1'500'000, 900'000},
      {1'800'000, 1'000'000},
      {2'000'000, 1'100'000},
      {2'100'000, 1'200'000},
  });
}

OppTable OppTable::mobile_little_core() {
  return OppTable({
      {300'000, 600'000},
      {500'000, 650'000},
      {800'000, 700'000},
      {1'000'000, 750'000},
      {1'200'000, 800'000},
      {1'500'000, 900'000},
  });
}

}  // namespace vafs::cpu
