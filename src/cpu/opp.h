// Operating performance points (OPPs): the discrete frequency/voltage pairs
// a CPU cluster can run at. Governors never pick arbitrary frequencies —
// they pick OPPs, optionally snapping a target up or down.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace vafs::cpu {

/// One frequency/voltage operating point.
struct Opp {
  std::uint32_t freq_khz = 0;
  std::uint32_t volt_uv = 0;  // microvolts

  double freq_mhz() const { return static_cast<double>(freq_khz) / 1000.0; }
  double volt() const { return static_cast<double>(volt_uv) / 1e6; }
};

/// How to snap a requested frequency onto the discrete OPP grid.
/// Mirrors the kernel's CPUFREQ_RELATION_L / _H.
enum class Relation {
  kAtLeast,  // lowest OPP >= target (kernel RELATION_L)
  kAtMost,   // highest OPP <= target (kernel RELATION_H)
};

/// An immutable, ascending-sorted table of OPPs.
class OppTable {
 public:
  /// Builds a table; the constructor sorts by frequency and rejects
  /// duplicates and empty tables via assert.
  explicit OppTable(std::vector<Opp> opps);

  std::size_t size() const { return opps_.size(); }
  const Opp& at(std::size_t i) const { return opps_[i]; }
  const Opp& min() const { return opps_.front(); }
  const Opp& max() const { return opps_.back(); }

  /// Index of the OPP matching `freq_khz` exactly, or SIZE_MAX.
  std::size_t index_of(std::uint32_t freq_khz) const;

  /// Snaps `target_khz` to the table under `rel`, clamped to the table's
  /// range (kAtLeast above max() returns max(); kAtMost below min()
  /// returns min()).
  const Opp& resolve(std::uint32_t target_khz, Relation rel) const {
    return opps_[resolve_index(target_khz, rel)];
  }

  /// Index form of resolve() — one table scan where resolve() + index_of()
  /// would take two. This is the per-sample path of every governor.
  std::size_t resolve_index(std::uint32_t target_khz, Relation rel) const;

  /// The next OPP above / below index i, clamped to the table edges.
  std::size_t step_up(std::size_t i) const { return i + 1 < opps_.size() ? i + 1 : i; }
  std::size_t step_down(std::size_t i) const { return i > 0 ? i - 1 : 0; }

  /// Space-separated frequency list, ascending — the exact format of the
  /// sysfs `scaling_available_frequencies` attribute.
  std::string available_frequencies_string() const;

  /// A typical mobile big-core table (300 MHz – 2.1 GHz, 8 points) with a
  /// quadratic-ish voltage ramp. Used as the default SoC in examples,
  /// tests and benches.
  static OppTable mobile_big_core();

  /// A LITTLE-core table (300 MHz – 1.5 GHz, 6 points).
  static OppTable mobile_little_core();

 private:
  std::vector<Opp> opps_;
};

}  // namespace vafs::cpu
