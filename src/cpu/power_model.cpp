#include "cpu/power_model.h"

namespace vafs::cpu {

double CpuPowerModel::busy_mw(const Opp& opp) const {
  const double v = opp.volt();
  const double dyn = p_.c_eff_mw_per_mhz_v2 * opp.freq_mhz() * v * v;
  const double leak = p_.leak_mw_at_1v * v * v;
  return dyn + leak;
}

}  // namespace vafs::cpu
