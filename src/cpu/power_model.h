// CPU power model: the simulated stand-in for the hardware power monitor.
//
// Dynamic power follows the standard CMOS relation P_dyn = C_eff · V² · f;
// static (leakage) power grows with voltage. This shape — not its absolute
// calibration — is what DVFS energy results depend on: it makes high OPPs
// superlinearly expensive, which is the slack a deadline-aware governor
// converts into savings.
#pragma once

#include <cstdint>

#include "cpu/opp.h"

namespace vafs::cpu {

struct PowerModelParams {
  /// Effective switched capacitance coefficient, in mW / (MHz · V²).
  /// 0.45 puts a 2.1 GHz / 1.2 V big core at ~1.4 W busy — in the range
  /// published for mobile big cores.
  double c_eff_mw_per_mhz_v2 = 0.45;

  /// Leakage at nominal voltage (1.0 V), in mW; scales with V².
  double leak_mw_at_1v = 80.0;

  /// Power while idle in the shallow C-state (clock-gated, WFI), in mW.
  double idle_mw = 18.0;

  /// Energy cost of one DVFS transition (PLL relock + voltage ramp), µJ.
  double transition_uj = 12.0;

  /// The defaults above: a mobile big core.
  static PowerModelParams big_core() { return {}; }

  /// A LITTLE (in-order) core: ~1/3 the switched capacitance, far less
  /// leakage and idle draw. Pair with OppTable::mobile_little_core().
  static PowerModelParams little_core() {
    PowerModelParams p;
    p.c_eff_mw_per_mhz_v2 = 0.15;
    p.leak_mw_at_1v = 25.0;
    p.idle_mw = 6.0;
    p.transition_uj = 8.0;
    return p;
  }
};

/// Evaluates power at an OPP. Stateless and cheap; energy integration is
/// done by the callers that know residency times.
class CpuPowerModel {
 public:
  explicit CpuPowerModel(PowerModelParams params = {}) : p_(params) {}

  /// Power while executing at this OPP (100 % duty within the busy time).
  double busy_mw(const Opp& opp) const;

  /// Power while idle (independent of the programmed OPP in this model:
  /// the core is clock-gated).
  double idle_mw() const { return p_.idle_mw; }

  /// Per-transition energy, µJ.
  double transition_uj() const { return p_.transition_uj; }

  const PowerModelParams& params() const { return p_; }

 private:
  PowerModelParams p_;
};

}  // namespace vafs::cpu
