#include "device/profile.h"

#include <stdexcept>
#include <utility>

namespace vafs::device {
namespace {

// ---------------------------------------------------------------------------
// The registry. OPP ladders are shaped after published mobile tables
// (ascending frequency, superlinear voltage); power coefficients follow
// the big/LITTLE split of cpu::PowerModelParams with process-quality
// scaling per device class. Capacities are strictly descending within
// each profile, which the router and the VAFS planner rely on.

ClusterSpec make_cluster(std::string name, std::vector<cpu::Opp> opps,
                         cpu::PowerModelParams power, double penalty,
                         sim::SimTime latency = sim::SimTime::micros(150)) {
  return ClusterSpec{std::move(name), cpu::OppTable(std::move(opps)), power, penalty, latency};
}

/// The current hardwired device, materialized: one big core, stock power
/// model, 150 µs transitions — sessions on this profile are bit-identical
/// to the legacy (profile-less) bring-up at default SessionConfig scalars.
DeviceProfile make_default() {
  DeviceProfile p;
  p.name = "default";
  p.clusters.push_back(make_cluster("big", {{300'000, 650'000},
                                            {600'000, 700'000},
                                            {900'000, 750'000},
                                            {1'200'000, 825'000},
                                            {1'500'000, 900'000},
                                            {1'800'000, 1'000'000},
                                            {2'000'000, 1'100'000},
                                            {2'100'000, 1'200'000}},
                                    cpu::PowerModelParams::big_core(), 1.0));
  return p;
}

/// Flagship SoC: prime + mid + little (tri-cluster, like recent Snapdragon
/// 8-series). The prime core out-retires the reference big core (penalty
/// 0.9) but pays for it in leakage; the little cluster is wide-ranged and
/// cheap. Bright OLED panel.
DeviceProfile make_flagship() {
  DeviceProfile p;
  p.name = "flagship";

  cpu::PowerModelParams prime;
  prime.c_eff_mw_per_mhz_v2 = 0.52;
  prime.leak_mw_at_1v = 120.0;
  prime.idle_mw = 22.0;
  prime.transition_uj = 14.0;
  p.clusters.push_back(make_cluster("prime", {{480'000, 600'000},
                                              {800'000, 650'000},
                                              {1'200'000, 725'000},
                                              {1'600'000, 800'000},
                                              {2'000'000, 900'000},
                                              {2'400'000, 1'000'000},
                                              {2'700'000, 1'100'000},
                                              {2'850'000, 1'175'000}},
                                    prime, 0.9, sim::SimTime::micros(120)));

  cpu::PowerModelParams mid;
  mid.c_eff_mw_per_mhz_v2 = 0.38;
  mid.leak_mw_at_1v = 70.0;
  mid.idle_mw = 14.0;
  mid.transition_uj = 10.0;
  p.clusters.push_back(make_cluster("mid", {{400'000, 600'000},
                                            {700'000, 650'000},
                                            {1'000'000, 700'000},
                                            {1'400'000, 775'000},
                                            {1'800'000, 875'000},
                                            {2'200'000, 975'000},
                                            {2'400'000, 1'050'000}},
                                    mid, 1.1, sim::SimTime::micros(120)));

  cpu::PowerModelParams little;
  little.c_eff_mw_per_mhz_v2 = 0.13;
  little.leak_mw_at_1v = 20.0;
  little.idle_mw = 5.0;
  little.transition_uj = 7.0;
  p.clusters.push_back(make_cluster("little", {{300'000, 575'000},
                                               {600'000, 625'000},
                                               {900'000, 675'000},
                                               {1'200'000, 725'000},
                                               {1'500'000, 800'000},
                                               {1'800'000, 900'000}},
                                    little, 1.5, sim::SimTime::micros(120)));

  p.display_mw = 560.0;
  p.radio = net::RadioParams::lte();
  // Big vapor chamber: low junction-to-ambient resistance, slow to heat.
  p.thermal.resistance_k_per_w = 11.0;
  p.thermal.capacitance_j_per_k = 10.0;
  return p;
}

/// Mid-range big.LITTLE part. This is the profile the big_little=true
/// compat shim maps to in spirit: the same OPP tables and power split the
/// legacy two-cluster session used.
DeviceProfile make_midrange() {
  DeviceProfile p;
  p.name = "midrange";
  p.clusters.push_back(make_cluster("big", {{300'000, 650'000},
                                            {600'000, 700'000},
                                            {900'000, 750'000},
                                            {1'200'000, 825'000},
                                            {1'500'000, 900'000},
                                            {1'800'000, 1'000'000},
                                            {2'000'000, 1'100'000},
                                            {2'100'000, 1'200'000}},
                                    cpu::PowerModelParams::big_core(), 1.0));
  p.clusters.push_back(make_cluster("little", {{300'000, 600'000},
                                               {500'000, 650'000},
                                               {800'000, 700'000},
                                               {1'000'000, 750'000},
                                               {1'200'000, 800'000},
                                               {1'500'000, 900'000}},
                                    cpu::PowerModelParams::little_core(), 1.7));
  p.display_mw = 430.0;
  return p;
}

/// Budget part: a cheap process (high leakage per MHz), a coarse
/// 5-point big ladder that tops out at 1.8 GHz, an in-order little
/// cluster with a steep IPC penalty, a dim panel, and a chassis that
/// heats fast (thermal caps bite here first).
DeviceProfile make_budget() {
  DeviceProfile p;
  p.name = "budget";

  cpu::PowerModelParams big;
  big.c_eff_mw_per_mhz_v2 = 0.50;
  big.leak_mw_at_1v = 110.0;
  big.idle_mw = 20.0;
  big.transition_uj = 16.0;
  p.clusters.push_back(make_cluster("big", {{400'000, 700'000},
                                            {800'000, 775'000},
                                            {1'200'000, 875'000},
                                            {1'500'000, 975'000},
                                            {1'800'000, 1'100'000}},
                                    big, 1.15, sim::SimTime::micros(250)));

  cpu::PowerModelParams little;
  little.c_eff_mw_per_mhz_v2 = 0.17;
  little.leak_mw_at_1v = 30.0;
  little.idle_mw = 7.0;
  little.transition_uj = 10.0;
  p.clusters.push_back(make_cluster("little", {{300'000, 650'000},
                                               {600'000, 700'000},
                                               {900'000, 775'000},
                                               {1'200'000, 850'000},
                                               {1'400'000, 925'000}},
                                    little, 1.9, sim::SimTime::micros(250)));

  p.display_mw = 370.0;
  p.radio = net::RadioParams::lte();
  // Plastic chassis, no heat spreader: hotter per watt, faster to heat.
  p.thermal.resistance_k_per_w = 18.0;
  p.thermal.capacitance_j_per_k = 5.0;
  return p;
}

/// Handheld / tablet-class device: one beefy symmetric cluster with a wide
/// OPP range, a large bright panel, and WiFi instead of a cellular modem.
DeviceProfile make_handheld() {
  DeviceProfile p;
  p.name = "handheld";

  cpu::PowerModelParams core;
  core.c_eff_mw_per_mhz_v2 = 0.42;
  core.leak_mw_at_1v = 90.0;
  core.idle_mw = 16.0;
  core.transition_uj = 12.0;
  p.clusters.push_back(make_cluster("perf", {{400'000, 600'000},
                                             {700'000, 650'000},
                                             {1'000'000, 700'000},
                                             {1'300'000, 750'000},
                                             {1'600'000, 825'000},
                                             {1'900'000, 900'000},
                                             {2'200'000, 1'000'000},
                                             {2'400'000, 1'075'000}},
                                    core, 0.95, sim::SimTime::micros(100)));

  p.display_mw = 900.0;
  p.radio = net::RadioParams::wifi();
  // Large chassis: plenty of spreading area and mass.
  p.thermal.resistance_k_per_w = 9.0;
  p.thermal.capacitance_j_per_k = 14.0;
  return p;
}

struct Registry {
  std::vector<std::string> names;
  std::vector<DeviceProfile> profiles;

  Registry() {
    add(make_default());
    add(make_flagship());
    add(make_midrange());
    add(make_budget());
    add(make_handheld());
  }

  void add(DeviceProfile p) {
    names.push_back(p.name);
    profiles.push_back(std::move(p));
  }
};

const Registry& registry() {
  static const Registry r;
  return r;
}

/// splitmix64: the standard 64-bit finalizer — one well-mixed draw per
/// seed, with no sequential state that shard order could perturb.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

const std::vector<std::string>& profile_names() { return registry().names; }

const DeviceProfile& profile(std::string_view name) {
  const Registry& r = registry();
  for (std::size_t i = 0; i < r.names.size(); ++i) {
    if (r.names[i] == name) return r.profiles[i];
  }
  std::string known;
  for (const auto& n : r.names) {
    if (!known.empty()) known += ", ";
    known += n;
  }
  throw std::out_of_range("unknown device profile '" + std::string(name) + "' (known: " + known +
                          ")");
}

PopulationMix& PopulationMix::add(const DeviceProfile& p, double weight) {
  entries.push_back(Entry{p, weight});
  return *this;
}

std::size_t PopulationMix::pick_index(std::uint64_t seed) const {
  if (entries.empty()) return 0;
  double total = 0.0;
  for (const auto& e : entries) total += e.weight;
  // 53 uniform bits — a draw in [0, 1) every platform computes identically.
  const double u =
      static_cast<double>(mix64(seed ^ 0xD6E8FEB86659FD93ULL) >> 11) * 0x1.0p-53;
  double accum = 0.0;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    accum += entries[i].weight;
    if (u * total < accum) return i;
  }
  return entries.size() - 1;
}

const DeviceProfile& PopulationMix::pick(std::uint64_t seed) const {
  return entries[pick_index(seed)].profile;
}

const std::vector<std::string>& PopulationMix::mix_names() {
  static const std::vector<std::string> names = {"global", "premium", "budget"};
  return names;
}

PopulationMix PopulationMix::named(std::string_view name) {
  PopulationMix mix;
  mix.id = std::string(name);
  if (name == "global") {
    // A volume-shaped installed base: mid-range dominates, the default
    // single-big-core device stands in for aging handsets.
    mix.add(profile("flagship"), 0.15)
        .add(profile("midrange"), 0.40)
        .add(profile("budget"), 0.30)
        .add(profile("handheld"), 0.05)
        .add(profile("default"), 0.10);
  } else if (name == "premium") {
    mix.add(profile("flagship"), 0.55)
        .add(profile("midrange"), 0.30)
        .add(profile("handheld"), 0.15);
  } else if (name == "budget") {
    mix.add(profile("budget"), 0.55)
        .add(profile("midrange"), 0.25)
        .add(profile("default"), 0.20);
  } else {
    std::string known;
    for (const auto& n : mix_names()) {
      if (!known.empty()) known += ", ";
      known += n;
    }
    throw std::out_of_range("unknown population mix '" + std::string(name) + "' (known: " +
                            known + ")");
  }
  return mix;
}

}  // namespace vafs::device
