// Device-profile library: the hardware a session runs on, as a value type.
//
// A DeviceProfile names an ordered list of CPU clusters (each with its own
// OPP ladder, power model, IPC penalty and DVFS transition latency) plus
// the device-level defaults a session needs (display draw, radio
// technology, thermal constants, cpuidle ladder). run_session constructs
// one CpuModel + CpufreqPolicy per cluster from it; the scheduler's
// ClusterRouter and the VAFS controller plan against the per-cluster
// capacities instead of assuming one big core.
//
// Conventions:
//   - clusters are listed in *descending capacity* order; clusters[0] is
//     the primary cluster (sysfs policy0, decode's default home, the
//     thermal sensor's location);
//   - `cycle_penalty` expresses IPC relative to the reference big core the
//     content model's cycle counts are calibrated against: a task of N
//     reference cycles needs penalty·N cycles on that cluster;
//   - capacity_khz = f_max / penalty is the cluster's retire rate for
//     reference-cycle work, the single number placement decisions use.
//
// The registry (profile()/profile_names()) holds ~5 named devices spanning
// 1-3 clusters; PopulationMix draws a profile per session seed so fleet
// sweeps answer "what does a governor save across an installed base", not
// on one phone.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "cpu/cpuidle.h"
#include "cpu/opp.h"
#include "cpu/power_model.h"
#include "net/radio.h"
#include "simcore/time.h"
#include "thermal/model.h"

namespace vafs::device {

/// One CPU cluster of a device.
struct ClusterSpec {
  std::string name;  // "big", "little", "prime", ...
  cpu::OppTable opps;
  cpu::PowerModelParams power;
  /// Reference-cycle inflation (>= lower IPC than the reference big core;
  /// < 1 = higher IPC, e.g. a flagship prime core).
  double cycle_penalty = 1.0;
  /// DVFS transition latency of this cluster's policy.
  sim::SimTime transition_latency = sim::SimTime::micros(150);

  /// Reference-cycle retire rate at f_max, in kHz-equivalents: the
  /// capacity number routing and VAFS planning compare clusters by.
  double capacity_khz() const {
    return static_cast<double>(opps.max().freq_khz) / cycle_penalty;
  }
};

struct DeviceProfile {
  /// Registry key ("default", "flagship", ...). A default-constructed
  /// profile has no clusters and means "the legacy SessionConfig device":
  /// run_session then builds the device from the pre-profile scalar fields
  /// (power, cpu_transition_latency, big_little, ...), byte-identical to
  /// the pre-refactor bring-up.
  std::string name = "default";
  /// Descending capacity; clusters[0] is primary (policy0). Empty = legacy.
  std::vector<ClusterSpec> clusters;

  // Device-level session defaults. For named profiles these are
  // authoritative in run_session; the legacy/default path keeps reading
  // the SessionConfig scalars so every pre-profile knob still works.
  double display_mw = 450.0;
  net::RadioParams radio = net::RadioParams::lte();
  thermal::ThermalParams thermal;
  cpu::CpuidleStrategy cpuidle = cpu::CpuidleStrategy::kShallowOnly;
  cpu::CpuidleParams cpuidle_params = cpu::CpuidleParams::mobile();

  bool legacy() const { return clusters.empty(); }
  std::size_t cluster_count() const { return clusters.size(); }
};

/// Names of every registered profile, in registry order (default first).
const std::vector<std::string>& profile_names();

/// The registered profile called `name`; throws std::out_of_range for an
/// unknown name (listing the known ones).
const DeviceProfile& profile(std::string_view name);

/// A weighted device population. pick() is a pure function of the session
/// seed (a splitmix64 hash of it selects the entry), so a fleet sweep's
/// per-session device draw is independent of shard boundaries, job counts
/// and resume points — the same seed always streams on the same device.
struct PopulationMix {
  struct Entry {
    DeviceProfile profile;
    double weight = 1.0;
  };
  /// Mix label for scenario ids / artifacts ("global", "premium", ...).
  std::string id;
  std::vector<Entry> entries;

  bool empty() const { return entries.empty(); }
  PopulationMix& add(const DeviceProfile& p, double weight);

  /// The entry a session with this seed runs on. Deterministic; uniform
  /// hash of the seed against the cumulative weights.
  const DeviceProfile& pick(std::uint64_t seed) const;

  /// Index form of pick(), for tests and distribution reporting.
  std::size_t pick_index(std::uint64_t seed) const;

  /// Registered mixes: "global" (all five classes, volume-weighted),
  /// "premium" (flagship-heavy), "budget" (low-end-heavy). Throws
  /// std::out_of_range for anything else.
  static PopulationMix named(std::string_view name);
  static const std::vector<std::string>& mix_names();
};

}  // namespace vafs::device
