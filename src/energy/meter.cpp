#include "energy/meter.h"

#include <cassert>

namespace vafs::energy {

DeviceEnergyMeter::DeviceEnergyMeter(sim::Simulator& simulator, cpu::CpuModel& cpu_model,
                                     net::RadioModel& radio, double display_mw)
    : DeviceEnergyMeter(simulator, std::vector<cpu::CpuModel*>{&cpu_model}, radio, display_mw) {}

DeviceEnergyMeter::DeviceEnergyMeter(sim::Simulator& simulator, std::vector<cpu::CpuModel*> cpus,
                                     net::RadioModel& radio, double display_mw)
    : sim_(simulator), cpus_(std::move(cpus)), radio_(radio), display_mw_(display_mw) {
  assert(!cpus_.empty());
  reset();
}

double DeviceEnergyMeter::cpus_energy_mj() const {
  double mj = 0.0;
  for (auto* model : cpus_) mj += model->energy_mj();
  return mj;
}

void DeviceEnergyMeter::reset() {
  base_time_ = sim_.now();
  base_cpu_mj_ = cpus_energy_mj();
  base_radio_mj_ = radio_.energy_mj();
}

DeviceEnergyReport DeviceEnergyMeter::report() {
  DeviceEnergyReport r;
  r.wall = sim_.now() - base_time_;
  r.cpu_mj = cpus_energy_mj() - base_cpu_mj_;
  r.radio_mj = radio_.energy_mj() - base_radio_mj_;
  r.display_mj = r.wall.as_seconds_f() * display_mw_;
  return r;
}

}  // namespace vafs::energy
