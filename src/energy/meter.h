// Device-level energy metering: the simulated stand-in for the external
// power monitor a hardware evaluation would use. Aggregates the CPU and
// radio models' residency-integrated energy plus a constant display draw.
#pragma once

#include <vector>

#include "cpu/cpu_model.h"
#include "net/radio.h"
#include "simcore/simulator.h"

namespace vafs::energy {

struct DeviceEnergyReport {
  double cpu_mj = 0.0;
  double radio_mj = 0.0;
  double display_mj = 0.0;
  sim::SimTime wall;

  double total_mj() const { return cpu_mj + radio_mj + display_mj; }
  double mean_mw() const {
    const double secs = wall.as_seconds_f();
    return secs > 0 ? total_mj() / secs : 0.0;
  }
  double cpu_mean_mw() const {
    const double secs = wall.as_seconds_f();
    return secs > 0 ? cpu_mj / secs : 0.0;
  }
};

class DeviceEnergyMeter {
 public:
  /// Display power is constant while streaming (brightness does not depend
  /// on the governor); 450 mW is a typical mid-brightness panel.
  DeviceEnergyMeter(sim::Simulator& simulator, cpu::CpuModel& cpu_model, net::RadioModel& radio,
                    double display_mw = 450.0);

  /// Multi-cluster variant (big.LITTLE): cpu_mj aggregates all clusters.
  DeviceEnergyMeter(sim::Simulator& simulator, std::vector<cpu::CpuModel*> cpus,
                    net::RadioModel& radio, double display_mw = 450.0);

  /// Re-baselines the meter at the current instant.
  void reset();

  /// Energy since the last reset (or construction).
  DeviceEnergyReport report();

 private:
  double cpus_energy_mj() const;

  sim::Simulator& sim_;
  std::vector<cpu::CpuModel*> cpus_;
  net::RadioModel& radio_;
  double display_mw_;

  sim::SimTime base_time_;
  double base_cpu_mj_ = 0.0;
  double base_radio_mj_ = 0.0;
};

}  // namespace vafs::energy
