#include "exp/aggregate.h"

namespace vafs::exp {

void Aggregate::add(const core::SessionResult& r) {
  all_finished = all_finished && r.finished;
  cpu_mj.add(r.energy.cpu_mj);
  radio_mj.add(r.energy.radio_mj);
  display_mj.add(r.energy.display_mj);
  total_mj.add(r.energy.total_mj());
  cpu_mean_mw.add(r.energy.cpu_mean_mw());
  startup_s.add(r.qoe.startup_delay.as_seconds_f());
  rebuffer_events.add(static_cast<double>(r.qoe.rebuffer_events));
  rebuffer_s.add(r.qoe.rebuffer_time.as_seconds_f());
  drop_pct.add(r.qoe.drop_ratio() * 100.0);
  deadline_misses.add(static_cast<double>(r.qoe.deadline_misses));
  quality_switches.add(static_cast<double>(r.qoe.quality_switches));
  mean_bitrate_kbps.add(r.qoe.mean_bitrate_kbps);
  transitions.add(static_cast<double>(r.freq_transitions));
  busy_fraction.add(r.busy_fraction);
  wall_s.add(r.wall.as_seconds_f());
  live_latency_s.add(r.live_latency.as_seconds_f());
  radio_promotions.add(static_cast<double>(r.radio_promotions));
  vafs_mape.add(r.vafs_decode_mape);
  vafs_plans.add(static_cast<double>(r.vafs_plans));
  vafs_setspeed_writes.add(static_cast<double>(r.vafs_setspeed_writes));
  peak_temp_c.add(r.peak_temp_c);
  mean_temp_c.add(r.mean_temp_c);
  throttled_s.add(r.throttled_time.as_seconds_f());
  throttle_events.add(static_cast<double>(r.throttle_events));
  cpu_little_mj.add(r.cpu_little_mj);
  transitions_little.add(static_cast<double>(r.freq_transitions_little));
  decode_frames_big.add(static_cast<double>(r.decode_frames_big));
  decode_frames_little.add(static_cast<double>(r.decode_frames_little));
  decode_migrations.add(static_cast<double>(r.decode_migrations));
  fetch_retries.add(static_cast<double>(r.qoe.fetch_retries));
  fetch_failures.add(static_cast<double>(r.qoe.fetch_failures));
  fetch_timeouts.add(static_cast<double>(r.fetch_timeouts));
  vafs_fallback_entries.add(static_cast<double>(r.vafs_fallback_entries));
  vafs_fallback_s.add(r.vafs_fallback_time.as_seconds_f());
  vafs_sysfs_write_errors.add(static_cast<double>(r.vafs_sysfs_write_errors));
  ++runs;
}

void Aggregate::merge(const Aggregate& other) {
  for (const auto& m : metrics()) (this->*(m.member)).merge(other.*(m.member));
  runs += other.runs;
  all_finished = all_finished && other.all_finished;
}

const std::vector<Aggregate::MetricRef>& Aggregate::metrics() {
  static const std::vector<MetricRef> kTable = {
#define VAFS_EXP_REF(name) {#name, &Aggregate::name},
      VAFS_EXP_METRICS(VAFS_EXP_REF)
#undef VAFS_EXP_REF
  };
  return kTable;
}

}  // namespace vafs::exp
