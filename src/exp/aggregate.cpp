#include "exp/aggregate.h"

namespace vafs::exp {

void Aggregate::add(const core::SessionResult& r) {
  double values[kMetricCount];
  session_values(r, values);
  add_values(values, r.finished);
}

void Aggregate::session_values(const core::SessionResult& r, double* out) {
  std::size_t i = 0;
  out[i++] = r.energy.cpu_mj;
  out[i++] = r.energy.radio_mj;
  out[i++] = r.energy.display_mj;
  out[i++] = r.energy.total_mj();
  out[i++] = r.energy.cpu_mean_mw();
  out[i++] = r.qoe.startup_delay.as_seconds_f();
  out[i++] = static_cast<double>(r.qoe.rebuffer_events);
  out[i++] = r.qoe.rebuffer_time.as_seconds_f();
  out[i++] = r.qoe.drop_ratio() * 100.0;
  out[i++] = static_cast<double>(r.qoe.deadline_misses);
  out[i++] = static_cast<double>(r.qoe.quality_switches);
  out[i++] = r.qoe.mean_bitrate_kbps;
  out[i++] = static_cast<double>(r.freq_transitions);
  out[i++] = r.busy_fraction;
  out[i++] = r.wall.as_seconds_f();
  out[i++] = r.live_latency.as_seconds_f();
  out[i++] = static_cast<double>(r.radio_promotions);
  out[i++] = r.vafs_decode_mape;
  out[i++] = static_cast<double>(r.vafs_plans);
  out[i++] = static_cast<double>(r.vafs_setspeed_writes);
  out[i++] = r.peak_temp_c;
  out[i++] = r.mean_temp_c;
  out[i++] = r.throttled_time.as_seconds_f();
  out[i++] = static_cast<double>(r.throttle_events);
  out[i++] = r.cpu_little_mj;
  out[i++] = static_cast<double>(r.freq_transitions_little);
  out[i++] = static_cast<double>(r.decode_frames_big);
  out[i++] = static_cast<double>(r.decode_frames_little);
  out[i++] = static_cast<double>(r.decode_migrations);
  out[i++] = static_cast<double>(r.qoe.fetch_retries);
  out[i++] = static_cast<double>(r.qoe.fetch_failures);
  out[i++] = static_cast<double>(r.fetch_timeouts);
  out[i++] = static_cast<double>(r.vafs_fallback_entries);
  out[i++] = r.vafs_fallback_time.as_seconds_f();
  out[i++] = static_cast<double>(r.vafs_sysfs_write_errors);
  static_assert(kMetricCount == 35, "session_values must cover every VAFS_EXP_METRICS entry");
}

void Aggregate::add_values(const double* values, bool finished) {
  all_finished = all_finished && finished;
  const auto& table = metrics();
  for (std::size_t i = 0; i < table.size(); ++i) (this->*(table[i].member)).add(values[i]);
  ++runs;
}

void Aggregate::merge(const Aggregate& other) {
  for (const auto& m : metrics()) (this->*(m.member)).merge(other.*(m.member));
  runs += other.runs;
  all_finished = all_finished && other.all_finished;
}

const std::vector<Aggregate::MetricRef>& Aggregate::metrics() {
  static const std::vector<MetricRef> kTable = {
#define VAFS_EXP_REF(name) {#name, &Aggregate::name},
      VAFS_EXP_METRICS(VAFS_EXP_REF)
#undef VAFS_EXP_REF
  };
  return kTable;
}

}  // namespace vafs::exp
