// Per-scenario aggregate over N seed-varied sessions. Unlike the old
// bench::run_averaged (bare means), every metric carries full dispersion —
// mean / stddev / min / max via sim::OnlineStats — and aggregates merge,
// so partial results from parallel shards combine exactly.
#pragma once

#include <cstddef>
#include <vector>

#include "core/session.h"
#include "simcore/stats.h"

namespace vafs::exp {

/// Every scalar the evaluation tables draw from a SessionResult. Adding a
/// metric here automatically adds it to add()/merge(), the metric table,
/// and the JSON/CSV sinks.
#define VAFS_EXP_METRICS(X) \
  X(cpu_mj)                 \
  X(radio_mj)               \
  X(display_mj)             \
  X(total_mj)               \
  X(cpu_mean_mw)            \
  X(startup_s)              \
  X(rebuffer_events)        \
  X(rebuffer_s)             \
  X(drop_pct)               \
  X(deadline_misses)        \
  X(quality_switches)       \
  X(mean_bitrate_kbps)      \
  X(transitions)            \
  X(busy_fraction)          \
  X(wall_s)                 \
  X(live_latency_s)         \
  X(radio_promotions)       \
  X(vafs_mape)              \
  X(vafs_plans)             \
  X(vafs_setspeed_writes)   \
  X(peak_temp_c)            \
  X(mean_temp_c)            \
  X(throttled_s)            \
  X(throttle_events)        \
  X(cpu_little_mj)          \
  X(transitions_little)     \
  X(decode_frames_big)      \
  X(decode_frames_little)   \
  X(decode_migrations)      \
  X(fetch_retries)          \
  X(fetch_failures)         \
  X(fetch_timeouts)         \
  X(vafs_fallback_entries)  \
  X(vafs_fallback_s)        \
  X(vafs_sysfs_write_errors)

/// Number of metrics in VAFS_EXP_METRICS — the width of a session's value
/// vector as it crosses the supervisor wire and lands in the spool.
#define VAFS_EXP_COUNT(name) +1
inline constexpr std::size_t kMetricCount = 0 VAFS_EXP_METRICS(VAFS_EXP_COUNT);
#undef VAFS_EXP_COUNT

struct Aggregate {
#define VAFS_EXP_DECLARE(name) sim::OnlineStats name;
  VAFS_EXP_METRICS(VAFS_EXP_DECLARE)
#undef VAFS_EXP_DECLARE

  int runs = 0;
  bool all_finished = true;

  /// Folds one session's scalar outputs into every metric. Implemented as
  /// session_values + add_values so a value vector that crossed a process
  /// boundary folds bit-identically to an in-process SessionResult.
  void add(const core::SessionResult& r);
  /// Extracts the per-metric scalars of one session into out[kMetricCount],
  /// declaration order — the canonical flattening used by add(), the
  /// supervisor wire protocol and the spool.
  static void session_values(const core::SessionResult& r, double* out);
  /// Folds a pre-extracted value vector (from session_values).
  void add_values(const double* values, bool finished);
  /// Exact parallel combine (Chan et al. merge under the hood).
  void merge(const Aggregate& other);

  struct MetricRef {
    const char* name;
    sim::OnlineStats Aggregate::*member;
  };
  /// Stable name -> member table, in declaration order (drives the sinks).
  static const std::vector<MetricRef>& metrics();
};

}  // namespace vafs::exp
