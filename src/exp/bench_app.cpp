#include "exp/bench_app.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "obs/export.h"

namespace vafs::exp {

BenchApp::BenchApp(int argc, char** argv, std::string bench_id, std::string title,
                   bool default_trace)
    : bench_id_(std::move(bench_id)), title_(std::move(title)), default_trace_(default_trace) {
  std::string error;
  if (!parse_bench_args(argc, argv, &options_, &error)) {
    std::fprintf(stderr, "%s\n%s", error.c_str(), bench_usage(bench_id_).c_str());
    std::exit(2);
  }
  if (options_.help) {
    std::fputs(bench_usage(bench_id_).c_str(), stdout);
    std::exit(0);
  }
  seeds_ = options_.effective_seeds();

  std::string display = bench_id_;
  for (auto& c : display) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  print_header(display.c_str(), title_.c_str());
  std::printf("[exp] jobs=%d seeds=%zu%s\n", jobs(), seeds_.size(),
              options_.quick ? " quick" : "");
}

const ResultSet& BenchApp::run(const ExperimentGrid& grid, std::string section,
                               RunOptions::HookFactory hooks) {
  RunOptions run_options;
  run_options.jobs = jobs();
  run_options.seeds = seeds_;
  run_options.batch = options_.batch;
  run_options.hooks = std::move(hooks);
  run_options.trace = tracing();
  // The first grid's (scenario 0, seed 0) session is the representative one
  // --trace-out exports; later run() calls leave the captured ring alone.
  if (options_.trace_out != "none" && capture_ == nullptr) {
    capture_ = std::make_unique<obs::Tracer>();
    run_options.capture = capture_.get();
  }
  sections_.push_back(Section{std::move(section), run_grid(grid, run_options)});
  return sections_.back().results;
}

int BenchApp::finish() {
  const std::vector<Section> sections(sections_.begin(), sections_.end());

  std::string json_path = options_.out_json.empty() ? "BENCH_" + bench_id_ + ".json"
                                                    : options_.out_json;
  if (json_path != "none") {
    Json report = bench_report_json(bench_id_, title_, options_, sections);
    if (!extra_.empty()) report.set("extra", extra_);
    std::ofstream out(json_path, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "[exp] cannot write %s\n", json_path.c_str());
      return 1;
    }
    out << report.dump();
    std::printf("[exp] wrote %s\n", json_path.c_str());
  }

  std::string csv_path = options_.out_csv.empty() ? "BENCH_" + bench_id_ + ".csv"
                                                  : options_.out_csv;
  if (csv_path != "none") {
    std::ofstream out(csv_path, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "[exp] cannot write %s\n", csv_path.c_str());
      return 1;
    }
    write_bench_csv(out, sections);
    std::printf("[exp] wrote %s\n", csv_path.c_str());
  }

  if (capture_ != nullptr && capture_->recorded() > 0) {
    const std::string trace_path = options_.trace_out.empty()
                                       ? "BENCH_" + bench_id_ + ".trace.json"
                                       : options_.trace_out;
    std::ofstream out(trace_path, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "[exp] cannot write %s\n", trace_path.c_str());
      return 1;
    }
    obs::write_chrome_trace(out, *capture_, "vafs " + bench_id_);
    std::printf("[exp] wrote %s (%llu events, digest %s)\n", trace_path.c_str(),
                static_cast<unsigned long long>(capture_->recorded()),
                obs::digest_hex(capture_->digest()).c_str());
  }
  return 0;
}

}  // namespace vafs::exp
