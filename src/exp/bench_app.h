// The per-binary harness every bench main() is built on: parses the shared
// CLI flags, runs declarative grids on the thread pool, and emits the
// BENCH_<id>.json / .csv artifacts on finish() — so a bench body is just
// "declare grid, run, print its figure-specific table".
#pragma once

#include <deque>
#include <memory>
#include <string>

#include "exp/grid.h"
#include "exp/json.h"
#include "exp/options.h"
#include "exp/runner.h"
#include "exp/sinks.h"
#include "exp/table.h"
#include "obs/trace.h"
#include "simcore/time.h"

namespace vafs::exp {

class BenchApp {
 public:
  /// Parses argv; on --help or a flag error, prints usage and exits the
  /// process (benches have no other CLI to fall back to).
  /// `default_trace` is what --trace/--no-trace default to when neither is
  /// given: digest tracers cost a few instructions per event, so perf
  /// benches (bench_throughput) opt out to keep their baseline honest.
  BenchApp(int argc, char** argv, std::string bench_id, std::string title,
           bool default_trace = true);

  BenchApp(const BenchApp&) = delete;
  BenchApp& operator=(const BenchApp&) = delete;

  const BenchOptions& options() const { return options_; }
  bool quick() const { return options_.quick; }
  /// Whether runs get digest tracers attached (--trace / --no-trace /
  /// the bench's default, in that order of precedence).
  bool tracing() const {
    return options_.trace_flag < 0 ? default_trace_ : options_.trace_flag != 0;
  }
  const std::vector<std::uint64_t>& seeds() const { return seeds_; }
  int jobs() const { return options_.effective_jobs(); }

  /// Session length helper: `normal` seconds, capped at 30 under --quick.
  sim::SimTime session_seconds(int normal) const {
    return sim::SimTime::seconds(options_.quick && normal > 30 ? 30 : normal);
  }

  /// Runs every scenario × seed on the pool and records the results under
  /// `section` for the artifacts. The returned reference stays valid for
  /// the app's lifetime.
  const ResultSet& run(const ExperimentGrid& grid, std::string section = "main",
                       RunOptions::HookFactory hooks = nullptr);

  /// Bench-specific JSON payload, emitted under "extra" (e.g. F1's power
  /// curve, F5's residency distributions).
  Json& extra() { return extra_; }

  /// Writes the JSON/CSV artifacts and returns the process exit code.
  int finish();

 private:
  std::string bench_id_;
  std::string title_;
  BenchOptions options_;
  bool default_trace_ = true;
  std::vector<std::uint64_t> seeds_;
  std::deque<Section> sections_;  // deque: stable references across run() calls
  Json extra_ = Json::object();
  /// Full-ring tracer attached to task (0, 0) of the first run() when
  /// --trace-out asks for a Chrome trace; exported by finish().
  std::unique_ptr<obs::Tracer> capture_;
};

}  // namespace vafs::exp
