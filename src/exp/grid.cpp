#include "exp/grid.h"

#include <cassert>

namespace vafs::exp {

const std::string* ScenarioSpec::label(std::string_view axis) const {
  for (const auto& [name, value] : labels) {
    if (name == axis) return &value;
  }
  return nullptr;
}

ExperimentGrid& ExperimentGrid::axis(std::string name,
                                     std::vector<std::pair<std::string, Mutator>> values) {
  assert(!values.empty() && "an axis needs at least one value");
  axes_.push_back(Axis{std::move(name), std::move(values)});
  return *this;
}

ExperimentGrid& ExperimentGrid::governors(const std::vector<std::string>& names) {
  std::vector<std::pair<std::string, Mutator>> values;
  values.reserve(names.size());
  for (const auto& name : names) {
    values.emplace_back(name, [name](core::SessionConfig& c) { c.governor = name; });
  }
  return axis("governor", std::move(values));
}

ExperimentGrid& ExperimentGrid::devices(const std::vector<std::string>& names) {
  std::vector<std::pair<std::string, Mutator>> values;
  values.reserve(names.size());
  for (const auto& name : names) {
    const device::DeviceProfile& p = device::profile(name);  // validate up front
    values.emplace_back(name, [&p](core::SessionConfig& c) { c.profile = p; });
  }
  return axis("device", std::move(values));
}

ExperimentGrid& ExperimentGrid::population(const device::PopulationMix& mix) {
  std::vector<std::pair<std::string, Mutator>> values;
  values.emplace_back(mix.id.empty() ? "custom" : mix.id,
                      [mix](core::SessionConfig& c) { c.population = mix; });
  return axis("mix", std::move(values));
}

ExperimentGrid& ExperimentGrid::reps(
    const std::vector<std::pair<std::size_t, std::string>>& rungs) {
  std::vector<std::pair<std::string, Mutator>> values;
  values.reserve(rungs.size());
  for (const auto& [rep, name] : rungs) {
    values.emplace_back(name, [rep](core::SessionConfig& c) { c.fixed_rep = rep; });
  }
  return axis("rep", std::move(values));
}

std::vector<ScenarioSpec> ExperimentGrid::scenarios() const {
  std::vector<ScenarioSpec> out;
  std::size_t total = 1;
  for (const auto& a : axes_) total *= a.values.size();
  out.reserve(total);

  // Odometer over the axes, last axis fastest.
  std::vector<std::size_t> index(axes_.size(), 0);
  for (std::size_t n = 0; n < total; ++n) {
    ScenarioSpec spec;
    spec.config = base_;
    for (std::size_t d = 0; d < axes_.size(); ++d) {
      const auto& [label, mutate] = axes_[d].values[index[d]];
      mutate(spec.config);
      spec.labels.emplace_back(axes_[d].name, label);
      if (!spec.id.empty()) spec.id.push_back(' ');
      spec.id += axes_[d].name;
      spec.id.push_back('=');
      spec.id += label;
    }
    if (axes_.empty()) spec.id = "base";
    out.push_back(std::move(spec));

    for (std::size_t d = axes_.size(); d-- > 0;) {
      if (++index[d] < axes_[d].values.size()) break;
      index[d] = 0;
    }
  }
  return out;
}

}  // namespace vafs::exp
