// Declarative experiment grids: named axes of SessionConfig mutators whose
// cartesian product yields the scenario list a bench runs. Replaces the
// hand-rolled nested governor × quality × ... loops every bench used to
// carry.
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/session.h"

namespace vafs::exp {

/// One fully-specified cell of a grid: the config to run plus the axis
/// labels that name it (e.g. {governor: vafs, rep: 720p}).
struct ScenarioSpec {
  std::string id;  // "governor=vafs rep=720p"
  std::vector<std::pair<std::string, std::string>> labels;  // (axis, value)
  core::SessionConfig config;

  /// Label value for `axis`; nullptr when the axis is absent.
  const std::string* label(std::string_view axis) const;
};

class ExperimentGrid {
 public:
  using Mutator = std::function<void(core::SessionConfig&)>;

  explicit ExperimentGrid(core::SessionConfig base = {}) : base_(std::move(base)) {}

  /// Adds a named axis; scenarios enumerate axes in declaration order with
  /// the last axis varying fastest (matching the old nested-loop order).
  ExperimentGrid& axis(std::string name,
                       std::vector<std::pair<std::string, Mutator>> values);

  /// Common axis: governor names straight into SessionConfig::governor.
  ExperimentGrid& governors(const std::vector<std::string>& names);
  /// Common axis: representation ladder rungs into SessionConfig::fixed_rep.
  ExperimentGrid& reps(const std::vector<std::pair<std::size_t, std::string>>& rungs);
  /// Common axis: registry device-profile names into SessionConfig::profile
  /// (throws std::out_of_range up front for an unknown name).
  ExperimentGrid& devices(const std::vector<std::string>& names);
  /// Single-value axis recording a weighted device population: every
  /// scenario carries the mix (sessions draw their device per seed) and
  /// the mix id lands in the scenario labels, so artifacts — and the fleet
  /// checkpoint fingerprint — distinguish sweeps over different mixes.
  ExperimentGrid& population(const device::PopulationMix& mix);

  /// Cartesian product of every axis over the base config.
  std::vector<ScenarioSpec> scenarios() const;

 private:
  struct Axis {
    std::string name;
    std::vector<std::pair<std::string, Mutator>> values;
  };
  core::SessionConfig base_;
  std::vector<Axis> axes_;
};

}  // namespace vafs::exp
