#include "exp/json.h"

#include <cassert>
#include <charconv>
#include <cmath>

namespace vafs::exp {

Json& Json::push(Json v) {
  assert(kind_ == Kind::kArray);
  items_.push_back(std::move(v));
  return *this;
}

Json& Json::set(std::string key, Json value) {
  assert(kind_ == Kind::kObject);
  for (auto& [k, v] : members_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  members_.emplace_back(std::move(key), std::move(value));
  return *this;
}

const Json* Json::find(std::string_view key) const {
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, v);
  assert(ec == std::errc());
  return std::string(buf, end);
}

namespace {

void write_escaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void newline_indent(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out.push_back('\n');
  out.append(static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth), ' ');
}

}  // namespace

void Json::write(std::string& out, int indent, int depth) const {
  switch (kind_) {
    case Kind::kNull: out += "null"; break;
    case Kind::kBool: out += bool_ ? "true" : "false"; break;
    case Kind::kNumber: out += json_number(num_); break;
    case Kind::kString: write_escaped(out, str_); break;
    case Kind::kArray: {
      if (items_.empty()) {
        out += "[]";
        break;
      }
      out.push_back('[');
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i) out.push_back(',');
        newline_indent(out, indent, depth + 1);
        items_[i].write(out, indent, depth + 1);
      }
      newline_indent(out, indent, depth);
      out.push_back(']');
      break;
    }
    case Kind::kObject: {
      if (members_.empty()) {
        out += "{}";
        break;
      }
      out.push_back('{');
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i) out.push_back(',');
        newline_indent(out, indent, depth + 1);
        write_escaped(out, members_[i].first);
        out += indent > 0 ? ": " : ":";
        members_[i].second.write(out, indent, depth + 1);
      }
      newline_indent(out, indent, depth);
      out.push_back('}');
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  write(out, indent, 0);
  if (indent > 0) out.push_back('\n');
  return out;
}

namespace {

// Recursive-descent parser. Depth-capped so a pathological
// "[[[[...]]]]"  cannot exhaust the stack; 100 is an order of magnitude
// past the deepest artifact this repo writes.
class Parser {
 public:
  static constexpr int kMaxDepth = 100;

  Parser(std::string_view text, std::string* error) : text_(text), error_(error) {}

  bool parse(Json* out) {
    skip_ws();
    if (!value(out, 0)) return false;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing garbage after top-level value");
    return true;
  }

 private:
  bool fail(const std::string& why) {
    if (error_) *error_ = "json: " + why + " at offset " + std::to_string(pos_);
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return fail("invalid literal");
    pos_ += word.size();
    return true;
  }

  bool string(std::string* out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') return fail("expected '\"'");
    ++pos_;
    out->clear();
    while (pos_ < text_.size()) {
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) return fail("unescaped control character in string");
      if (c != '\\') {
        out->push_back(static_cast<char>(c));
        ++pos_;
        continue;
      }
      if (++pos_ >= text_.size()) return fail("truncated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else return fail("bad hex digit in \\u escape");
          }
          // UTF-8 encode; surrogate pairs are not combined (the writer
          // only emits \u00xx control escapes) but lone surrogates still
          // round-trip as 3-byte sequences rather than failing.
          if (cp < 0x80) {
            out->push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          }
          break;
        }
        default: return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  bool number(Json* out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
      return fail("malformed number");
    }
    if (text_[pos_] == '0') {
      ++pos_;
    } else {
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return fail("malformed fraction");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return fail("malformed exponent");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    double v = 0.0;
    const auto [end, ec] =
        std::from_chars(text_.data() + start, text_.data() + pos_, v);
    if (ec == std::errc::result_out_of_range) {
      // Overflow saturates to ±inf like strtod; keep it as a number so
      // "1e999" parses (it re-renders as null, same as any non-finite).
      v = (text_[start] == '-') ? -HUGE_VAL : HUGE_VAL;
    } else if (ec != std::errc() || end != text_.data() + pos_) {
      return fail("malformed number");
    }
    *out = Json(v);
    return true;
  }

  bool value(Json* out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case 'n': return literal("null") && (*out = Json(), true);
      case 't': return literal("true") && (*out = Json(true), true);
      case 'f': return literal("false") && (*out = Json(false), true);
      case '"': {
        std::string s;
        if (!string(&s)) return false;
        *out = Json(std::move(s));
        return true;
      }
      case '[': {
        ++pos_;
        *out = Json::array();
        skip_ws();
        if (pos_ < text_.size() && text_[pos_] == ']') {
          ++pos_;
          return true;
        }
        while (true) {
          Json item;
          skip_ws();
          if (!value(&item, depth + 1)) return false;
          out->push(std::move(item));
          skip_ws();
          if (pos_ >= text_.size()) return fail("unterminated array");
          if (text_[pos_] == ',') {
            ++pos_;
            continue;
          }
          if (text_[pos_] == ']') {
            ++pos_;
            return true;
          }
          return fail("expected ',' or ']'");
        }
      }
      case '{': {
        ++pos_;
        *out = Json::object();
        skip_ws();
        if (pos_ < text_.size() && text_[pos_] == '}') {
          ++pos_;
          return true;
        }
        while (true) {
          skip_ws();
          std::string key;
          if (!string(&key)) return false;
          skip_ws();
          if (pos_ >= text_.size() || text_[pos_] != ':') return fail("expected ':'");
          ++pos_;
          skip_ws();
          Json member;
          if (!value(&member, depth + 1)) return false;
          out->set(std::move(key), std::move(member));
          skip_ws();
          if (pos_ >= text_.size()) return fail("unterminated object");
          if (text_[pos_] == ',') {
            ++pos_;
            continue;
          }
          if (text_[pos_] == '}') {
            ++pos_;
            return true;
          }
          return fail("expected ',' or '}'");
        }
      }
      default: return number(out);
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string* error_;
};

}  // namespace

bool json_parse(std::string_view text, Json* out, std::string* error) {
  *out = Json();
  Parser p(text, error);
  Json parsed;
  if (!p.parse(&parsed)) return false;
  *out = std::move(parsed);
  return true;
}

}  // namespace vafs::exp
