#include "exp/json.h"

#include <cassert>
#include <charconv>
#include <cmath>

namespace vafs::exp {

Json& Json::push(Json v) {
  assert(kind_ == Kind::kArray);
  items_.push_back(std::move(v));
  return *this;
}

Json& Json::set(std::string key, Json value) {
  assert(kind_ == Kind::kObject);
  for (auto& [k, v] : members_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  members_.emplace_back(std::move(key), std::move(value));
  return *this;
}

const Json* Json::find(std::string_view key) const {
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, v);
  assert(ec == std::errc());
  return std::string(buf, end);
}

namespace {

void write_escaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void newline_indent(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out.push_back('\n');
  out.append(static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth), ' ');
}

}  // namespace

void Json::write(std::string& out, int indent, int depth) const {
  switch (kind_) {
    case Kind::kNull: out += "null"; break;
    case Kind::kBool: out += bool_ ? "true" : "false"; break;
    case Kind::kNumber: out += json_number(num_); break;
    case Kind::kString: write_escaped(out, str_); break;
    case Kind::kArray: {
      if (items_.empty()) {
        out += "[]";
        break;
      }
      out.push_back('[');
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i) out.push_back(',');
        newline_indent(out, indent, depth + 1);
        items_[i].write(out, indent, depth + 1);
      }
      newline_indent(out, indent, depth);
      out.push_back(']');
      break;
    }
    case Kind::kObject: {
      if (members_.empty()) {
        out += "{}";
        break;
      }
      out.push_back('{');
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i) out.push_back(',');
        newline_indent(out, indent, depth + 1);
        write_escaped(out, members_[i].first);
        out += indent > 0 ? ": " : ":";
        members_[i].second.write(out, indent, depth + 1);
      }
      newline_indent(out, indent, depth);
      out.push_back('}');
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  write(out, indent, 0);
  if (indent > 0) out.push_back('\n');
  return out;
}

}  // namespace vafs::exp
