// Minimal ordered JSON value tree + serializer for the machine-readable
// experiment artifacts (BENCH_<id>.json). No external dependencies; object
// members keep insertion order so artifacts diff cleanly across runs.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace vafs::exp {

class Json {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() = default;  // null
  Json(bool b) : kind_(Kind::kBool), bool_(b) {}
  Json(double v) : kind_(Kind::kNumber), num_(v) {}
  Json(int v) : Json(static_cast<double>(v)) {}
  Json(std::int64_t v) : Json(static_cast<double>(v)) {}
  Json(std::uint64_t v) : Json(static_cast<double>(v)) {}
  Json(const char* s) : kind_(Kind::kString), str_(s) {}
  Json(std::string s) : kind_(Kind::kString), str_(std::move(s)) {}

  static Json array() {
    Json j;
    j.kind_ = Kind::kArray;
    return j;
  }
  static Json object() {
    Json j;
    j.kind_ = Kind::kObject;
    return j;
  }

  Kind kind() const { return kind_; }
  bool empty() const { return items_.empty() && members_.empty(); }

  /// Array append. Aborts (assert) on non-arrays.
  Json& push(Json v);
  /// Object insert-or-replace, preserving first-insertion order.
  Json& set(std::string key, Json value);
  /// Object member lookup; nullptr when absent (or not an object).
  const Json* find(std::string_view key) const;

  std::string dump(int indent = 2) const;

 private:
  void write(std::string& out, int indent, int depth) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Json> items_;                            // kArray
  std::vector<std::pair<std::string, Json>> members_;  // kObject
};

/// Shortest round-trip decimal rendering of a double (JSON number syntax;
/// non-finite values render as null).
std::string json_number(double v);

}  // namespace vafs::exp
