// Minimal ordered JSON value tree + serializer/parser for the
// machine-readable experiment artifacts (BENCH_<id>.json,
// tuned_configs.json). No external dependencies; object members keep
// insertion order so artifacts diff cleanly across runs and survive a
// parse → dump round trip byte-identically.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace vafs::exp {

class Json {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() = default;  // null
  Json(bool b) : kind_(Kind::kBool), bool_(b) {}
  Json(double v) : kind_(Kind::kNumber), num_(v) {}
  Json(int v) : Json(static_cast<double>(v)) {}
  Json(std::int64_t v) : Json(static_cast<double>(v)) {}
  Json(std::uint64_t v) : Json(static_cast<double>(v)) {}
  Json(const char* s) : kind_(Kind::kString), str_(s) {}
  Json(std::string s) : kind_(Kind::kString), str_(std::move(s)) {}

  static Json array() {
    Json j;
    j.kind_ = Kind::kArray;
    return j;
  }
  static Json object() {
    Json j;
    j.kind_ = Kind::kObject;
    return j;
  }

  Kind kind() const { return kind_; }
  bool empty() const { return items_.empty() && members_.empty(); }

  // Value accessors; each returns the stored value only for the matching
  // kind (callers check kind() — artifacts consumed here are
  // schema-checked, not duck-typed).
  bool boolean() const { return bool_; }
  double number() const { return num_; }
  const std::string& str() const { return str_; }
  const std::vector<Json>& items() const { return items_; }
  const std::vector<std::pair<std::string, Json>>& members() const { return members_; }

  /// Array append. Aborts (assert) on non-arrays.
  Json& push(Json v);
  /// Object insert-or-replace, preserving first-insertion order.
  Json& set(std::string key, Json value);
  /// Object member lookup; nullptr when absent (or not an object).
  const Json* find(std::string_view key) const;

  std::string dump(int indent = 2) const;

 private:
  void write(std::string& out, int indent, int depth) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Json> items_;                            // kArray
  std::vector<std::pair<std::string, Json>> members_;  // kObject
};

/// Shortest round-trip decimal rendering of a double (JSON number syntax;
/// non-finite values render as null).
std::string json_number(double v);

/// Strict RFC 8259 parser for the artifacts this module writes (and any
/// well-formed JSON): no comments, no trailing commas, no garbage after
/// the top-level value. On failure returns false and sets *error to a
/// message with the byte offset; *out is left null. Duplicate object keys
/// keep the last value (matching Json::set semantics). Nesting deeper
/// than an internal cap (far beyond any artifact) is rejected rather than
/// risking stack exhaustion on adversarial input.
bool json_parse(std::string_view text, Json* out, std::string* error);

}  // namespace vafs::exp
