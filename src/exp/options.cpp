#include "exp/options.h"

#include <charconv>
#include <cstdlib>
#include <cstring>
#include <thread>

namespace vafs::exp {

int BenchOptions::effective_jobs() const {
  if (jobs > 0) return jobs;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

std::vector<std::uint64_t> BenchOptions::effective_seeds() const {
  if (quick && !seeds.empty()) return {seeds.front()};
  return seeds;
}

std::vector<std::uint64_t> BenchOptions::fleet_seeds() const {
  if (seed_count == 0) return effective_seeds();
  const std::uint64_t base = seeds.empty() ? 101 : seeds.front();
  std::vector<std::uint64_t> out;
  out.reserve(seed_count);
  for (std::uint64_t i = 0; i < seed_count; ++i) out.push_back(base + i);
  return out;
}

namespace {

bool parse_u64(std::string_view s, std::uint64_t* out) {
  if (s.empty()) return false;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc() && ptr == s.data() + s.size();
}

bool parse_rate(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size() || !(v >= 0.0) || v > 1.0) return false;
  *out = v;
  return true;
}

bool parse_seed_list(std::string_view s, std::vector<std::uint64_t>* out) {
  out->clear();
  while (!s.empty()) {
    const std::size_t comma = s.find(',');
    const std::string_view item = s.substr(0, comma);
    std::uint64_t seed = 0;
    if (!parse_u64(item, &seed)) return false;
    out->push_back(seed);
    if (comma == std::string_view::npos) break;
    s.remove_prefix(comma + 1);
  }
  return !out->empty();
}

}  // namespace

bool parse_bench_args(int argc, char** argv, BenchOptions* options, std::string* error) {
  // Accepts both "--flag value" and "--flag=value".
  const auto next_value = [&](int& i, std::string_view flag, std::string_view inline_value,
                              bool has_inline, std::string* value) {
    if (has_inline) {
      *value = std::string(inline_value);
      return true;
    }
    if (i + 1 >= argc) {
      *error = std::string(flag) + " requires a value";
      return false;
    }
    *value = argv[++i];
    return true;
  };

  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    std::string_view inline_value;
    bool has_inline = false;
    if (const std::size_t eq = arg.find('='); eq != std::string_view::npos) {
      inline_value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_inline = true;
    }

    std::string value;
    if (arg == "--help" || arg == "-h") {
      options->help = true;
    } else if (arg == "--quick") {
      options->quick = true;
    } else if (arg == "--jobs" || arg == "-j") {
      if (!next_value(i, arg, inline_value, has_inline, &value)) return false;
      std::uint64_t jobs = 0;
      if (!parse_u64(value, &jobs) || jobs == 0 || jobs > 4096) {
        *error = "--jobs wants an integer in [1, 4096], got '" + value + "'";
        return false;
      }
      options->jobs = static_cast<int>(jobs);
    } else if (arg == "--batch") {
      if (!next_value(i, arg, inline_value, has_inline, &value)) return false;
      std::uint64_t batch = 0;
      if (!parse_u64(value, &batch) || batch == 0 || batch > 65536) {
        *error = "--batch wants an integer in [1, 65536], got '" + value + "'";
        return false;
      }
      options->batch = static_cast<int>(batch);
    } else if (arg == "--seeds") {
      if (!next_value(i, arg, inline_value, has_inline, &value)) return false;
      if (!parse_seed_list(value, &options->seeds)) {
        *error = "--seeds wants a comma-separated integer list, got '" + value + "'";
        return false;
      }
    } else if (arg == "--seed") {
      if (!next_value(i, arg, inline_value, has_inline, &value)) return false;
      std::uint64_t seed = 0;
      if (!parse_u64(value, &seed)) {
        *error = "--seed wants an integer, got '" + value + "'";
        return false;
      }
      options->seeds = {seed};
    } else if (arg == "--out-json") {
      if (!next_value(i, arg, inline_value, has_inline, &value)) return false;
      options->out_json = value;
    } else if (arg == "--out-csv") {
      if (!next_value(i, arg, inline_value, has_inline, &value)) return false;
      options->out_csv = value;
    } else if (arg == "--trace") {
      options->trace_flag = 1;
    } else if (arg == "--no-trace") {
      options->trace_flag = 0;
    } else if (arg == "--trace-out") {
      if (!next_value(i, arg, inline_value, has_inline, &value)) return false;
      options->trace_out = value;
    } else if (arg == "--seed-count") {
      if (!next_value(i, arg, inline_value, has_inline, &value)) return false;
      if (!parse_u64(value, &options->seed_count) || options->seed_count == 0) {
        *error = "--seed-count wants a positive integer, got '" + value + "'";
        return false;
      }
    } else if (arg == "--shards") {
      if (!next_value(i, arg, inline_value, has_inline, &value)) return false;
      if (!parse_u64(value, &options->shards) || options->shards == 0) {
        *error = "--shards wants a positive integer, got '" + value + "'";
        return false;
      }
    } else if (arg == "--checkpoint-dir") {
      if (!next_value(i, arg, inline_value, has_inline, &value)) return false;
      options->checkpoint_dir = value;
    } else if (arg == "--resume") {
      options->resume = true;
    } else if (arg == "--spool") {
      if (!next_value(i, arg, inline_value, has_inline, &value)) return false;
      if (value != "none" && value != "csv" && value != "jsonl") {
        *error = "--spool wants none|csv|jsonl, got '" + value + "'";
        return false;
      }
      options->spool = value;
    } else if (arg == "--rss-limit-mb") {
      if (!next_value(i, arg, inline_value, has_inline, &value)) return false;
      if (!parse_u64(value, &options->rss_limit_mb)) {
        *error = "--rss-limit-mb wants an integer, got '" + value + "'";
        return false;
      }
    } else if (arg == "--mix") {
      if (!next_value(i, arg, inline_value, has_inline, &value)) return false;
      options->mix = value;
    } else if (arg == "--serve") {
      if (!next_value(i, arg, inline_value, has_inline, &value)) return false;
      if (value.empty()) {
        *error = "--serve wants 'auto' or a vafsd socket path";
        return false;
      }
      options->serve = value;
    } else if (arg == "--tuned") {
      if (!next_value(i, arg, inline_value, has_inline, &value)) return false;
      if (value.empty()) {
        *error = "--tuned wants a tuned_configs.json path or 'none'";
        return false;
      }
      options->tuned = value;
    } else if (arg == "--supervise") {
      if (!next_value(i, arg, inline_value, has_inline, &value)) return false;
      std::uint64_t n = 0;
      if (!parse_u64(value, &n) || n == 0 || n > 1024) {
        *error = "--supervise wants a worker count in [1, 1024], got '" + value + "'";
        return false;
      }
      options->supervise = static_cast<int>(n);
    } else if (arg == "--task-timeout-ms") {
      if (!next_value(i, arg, inline_value, has_inline, &value)) return false;
      std::uint64_t ms = 0;
      if (!parse_u64(value, &ms)) {
        *error = "--task-timeout-ms wants an integer, got '" + value + "'";
        return false;
      }
      options->task_timeout_ms = static_cast<std::int64_t>(ms);
    } else if (arg == "--task-deadline-ms") {
      if (!next_value(i, arg, inline_value, has_inline, &value)) return false;
      std::uint64_t ms = 0;
      if (!parse_u64(value, &ms)) {
        *error = "--task-deadline-ms wants an integer, got '" + value + "'";
        return false;
      }
      options->task_deadline_ms = static_cast<std::int64_t>(ms);
    } else if (arg == "--task-retries") {
      if (!next_value(i, arg, inline_value, has_inline, &value)) return false;
      std::uint64_t n = 0;
      if (!parse_u64(value, &n) || n == 0 || n > 100) {
        *error = "--task-retries wants an integer in [1, 100], got '" + value + "'";
        return false;
      }
      options->task_retries = static_cast<int>(n);
    } else if (arg == "--heartbeat-ms") {
      if (!next_value(i, arg, inline_value, has_inline, &value)) return false;
      std::uint64_t ms = 0;
      if (!parse_u64(value, &ms) || ms == 0) {
        *error = "--heartbeat-ms wants a positive integer, got '" + value + "'";
        return false;
      }
      options->heartbeat_ms = static_cast<std::int64_t>(ms);
    } else if (arg == "--heartbeat-timeout-ms") {
      if (!next_value(i, arg, inline_value, has_inline, &value)) return false;
      std::uint64_t ms = 0;
      if (!parse_u64(value, &ms)) {
        *error = "--heartbeat-timeout-ms wants an integer, got '" + value + "'";
        return false;
      }
      options->heartbeat_timeout_ms = static_cast<std::int64_t>(ms);
    } else if (arg == "--worker-as-limit-mb") {
      if (!next_value(i, arg, inline_value, has_inline, &value)) return false;
      if (!parse_u64(value, &options->worker_as_limit_mb)) {
        *error = "--worker-as-limit-mb wants an integer, got '" + value + "'";
        return false;
      }
    } else if (arg == "--worker-rss-limit-mb") {
      if (!next_value(i, arg, inline_value, has_inline, &value)) return false;
      if (!parse_u64(value, &options->worker_rss_limit_mb)) {
        *error = "--worker-rss-limit-mb wants an integer, got '" + value + "'";
        return false;
      }
    } else if (arg == "--chaos-seed") {
      if (!next_value(i, arg, inline_value, has_inline, &value)) return false;
      if (!parse_u64(value, &options->chaos_seed)) {
        *error = "--chaos-seed wants an integer, got '" + value + "'";
        return false;
      }
    } else if (arg == "--chaos-crash" || arg == "--chaos-abort" || arg == "--chaos-exit" ||
               arg == "--chaos-hang" || arg == "--chaos-stall" || arg == "--chaos-leak") {
      if (!next_value(i, arg, inline_value, has_inline, &value)) return false;
      double rate = 0.0;
      if (!parse_rate(value, &rate)) {
        *error = std::string(arg) + " wants a rate in [0, 1], got '" + value + "'";
        return false;
      }
      if (arg == "--chaos-crash") options->chaos_crash = rate;
      else if (arg == "--chaos-abort") options->chaos_abort = rate;
      else if (arg == "--chaos-exit") options->chaos_exit = rate;
      else if (arg == "--chaos-hang") options->chaos_hang = rate;
      else if (arg == "--chaos-stall") options->chaos_stall = rate;
      else options->chaos_leak = rate;
    } else {
      *error = "unknown flag '" + std::string(arg) + "'";
      return false;
    }
  }
  return true;
}

std::string bench_usage(const std::string& bench_id) {
  return "usage: bench_" + bench_id +
         " [--jobs N] [--batch N] [--seeds a,b,c] [--quick]"
         " [--out-json PATH|none] [--out-csv PATH|none]"
         " [--trace|--no-trace] [--trace-out PATH|none]\n"
         "  --jobs N       worker threads for the session grid (default: all cores)\n"
         "  --seeds LIST   comma-separated session seeds (default: 101,202,303)\n"
         "  --seed N       single-seed shorthand for --seeds N (the tuner's search\n"
         "                 seed in bench_f15)\n"
         "  --batch N      sessions per lockstep batch per worker (default: 1 = serial;\n"
         "                 results are bitwise identical at every batch size)\n"
         "  --quick        first seed only, shortened sessions (smoke mode)\n"
         "  --out-json P   machine-readable results (default: BENCH_" +
         bench_id + ".json; 'none' disables)\n"
         "  --out-csv P    long-format CSV of every metric (default: BENCH_" +
         bench_id + ".csv; 'none' disables)\n"
         "  --trace        per-run trace digests in artifacts (--no-trace disables)\n"
         "  --trace-out P  Chrome trace JSON of the first session (default: off;\n"
         "                 empty/default path is BENCH_" +
         bench_id + ".trace.json)\n"
         "  --tuned P      tuned_configs.json for benches with a 'tuned' governor\n"
         "                 variant (default: the checked-in artifact; 'none' disables)\n";
}

std::string fleet_usage() {
  return "fleet flags:\n"
         "  --seed-count N     run N sequential seeds from the first --seeds entry\n"
         "                     (the grid's session count = scenarios x N)\n"
         "  --shards N         cut the grid into N shards (default: 64-session shards)\n"
         "  --checkpoint-dir D write/refresh a resume manifest (and the spool) in D\n"
         "  --resume           resume from D's manifest; fresh start when none exists\n"
         "  --spool F          per-session rows: none (default), csv or jsonl\n"
         "  --rss-limit-mb N   fail if peak RSS exceeds N MiB (0 = report only)\n"
         "  --mix NAME         device-population mix (none, global, premium, budget):\n"
         "                     each session draws its device profile per seed\n"
         "  --serve MODE       route VAFS decisions through the decision daemon:\n"
         "                     'auto' starts an in-process server on a private\n"
         "                     socket, any other value is the socket path of a\n"
         "                     running vafsd. Bit-identical to in-process.\n"
         "supervision flags:\n"
         "  --supervise N      run sessions in N crash/hang/OOM-tolerant worker\n"
         "                     subprocesses (default: in-process threads)\n"
         "  --task-timeout-ms N    cooperative per-task deadline: an over-budget\n"
         "                     session becomes a captured failure (0 = off)\n"
         "  --task-deadline-ms N   hard external per-task deadline: SIGKILL the\n"
         "                     worker, retry, quarantine (supervised only; 0 = off)\n"
         "  --task-retries N   total attempts per task before quarantine (default 3)\n"
         "  --heartbeat-ms N   worker heartbeat interval (default 250)\n"
         "  --heartbeat-timeout-ms N  silence before a worker is declared hung\n"
         "                     and SIGKILLed (default 5000; 0 = off)\n"
         "  --worker-as-limit-mb N    RLIMIT_AS per worker, MiB (0 = unlimited)\n"
         "  --worker-rss-limit-mb N   SIGKILL workers whose RSS exceeds N MiB (0 = off)\n"
         "chaos flags (HarnessChaos fault injection, test mode; rates in [0, 1]):\n"
         "  --chaos-seed N     fate-hash seed (fates are pure in seed/task/attempt)\n"
         "  --chaos-crash R    raise(SIGSEGV) before the task runs\n"
         "  --chaos-abort R    abort() — the assert/std::terminate shape\n"
         "  --chaos-exit R     _exit(41) — silent early death\n"
         "  --chaos-hang R     stop heartbeating and sleep forever\n"
         "  --chaos-stall R    keep heartbeating, never finish (needs a deadline)\n"
         "  --chaos-leak R     allocate until a budget kills the worker\n";
}

}  // namespace vafs::exp
