// Shared command-line surface of every bench binary:
//   --jobs N        worker threads (default: hardware concurrency)
//   --seeds a,b,c   seed list (default: 101,202,303)
//   --seed N        single-seed shorthand for --seeds N
//   --quick         first seed only + shortened sessions (smoke mode)
//   --out-json P    JSON artifact path ("none" disables; default BENCH_<id>.json)
//   --out-csv P     CSV artifact path ("none" disables; default BENCH_<id>.csv)
//   --batch N       sessions per lockstep batch per worker (default 1 = serial)
//   --trace / --no-trace   force per-run trace digests on/off (default: per bench)
//   --trace-out P   Chrome trace JSON of one captured session ("none" disables)
//   --help          usage
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace vafs::exp {

struct BenchOptions {
  int jobs = 0;  // 0 = auto (hardware concurrency)
  std::vector<std::uint64_t> seeds = {101, 202, 303};
  bool quick = false;
  std::string out_json;  // empty = default path, "none" = disabled
  std::string out_csv;
  /// -1 = bench default, 0 = forced off (--no-trace), 1 = forced on (--trace).
  int trace_flag = -1;
  /// Sessions advanced in lockstep per worker (core::SessionBatch);
  /// 1 = the classic serial path. Bitwise identical at every size.
  int batch = 1;
  /// Chrome trace output path for the captured session; empty = default
  /// (BENCH_<id>.trace.json), "none" = no capture.
  std::string trace_out = "none";
  bool help = false;

  // --- Fleet flags (bench_fleet; the figure benches accept and ignore
  // them so the CLI surface stays uniform) ---
  /// Expand the seed axis to this many sequential seeds starting at the
  /// first --seeds entry (0 = use the --seeds list as given). This is how
  /// a grid reaches millions of sessions without a million-entry flag.
  std::uint64_t seed_count = 0;
  /// Cut the grid into this many shards; 0 = default 64-session shards.
  std::uint64_t shards = 0;
  /// Checkpoint-manifest directory; empty disables checkpointing.
  std::string checkpoint_dir;
  /// Resume from checkpoint_dir's manifest if one exists.
  bool resume = false;
  /// Per-session row spool format: "none", "csv" or "jsonl".
  std::string spool = "none";
  /// Peak-RSS budget for the whole run; bench_fleet fails when exceeded
  /// (0 = report only).
  std::uint64_t rss_limit_mb = 0;
  /// Device-population mix for the sweep: "none" (the legacy fixed
  /// device) or a registered device::PopulationMix name ("global",
  /// "premium", "budget"). Each session then draws its device profile
  /// from the mix by a pure hash of its seed.
  std::string mix = "none";
  /// Decision serving mode: "" = in-process decisions (default), "auto" =
  /// start an in-process serve::Server on a private socket and route every
  /// session's VAFS decisions through it, any other value = the socket
  /// path of an already-running vafsd to connect to. Results are
  /// bit-identical to in-process either way.
  std::string serve;
  /// Tuned-config artifact for benches with a "tuned" governor variant
  /// (bench_f14): "" = the checked-in default next to the bench sources,
  /// "none" = disable the variant, else a tuned_configs.json path
  /// (bench_f15 output).
  std::string tuned;

  // --- Supervision flags (bench_fleet --supervise; src/supervise) ---
  /// Worker subprocesses; 0 = in-process fleet (the default).
  int supervise = 0;
  /// Cooperative per-task wall-clock deadline (captured failure), ms.
  std::int64_t task_timeout_ms = 0;
  /// Hard external per-task deadline (SIGKILL + retry/quarantine), ms.
  std::int64_t task_deadline_ms = 0;
  /// Total attempts per task before quarantine.
  int task_retries = 3;
  std::int64_t heartbeat_ms = 250;
  std::int64_t heartbeat_timeout_ms = 5000;
  /// RLIMIT_AS per worker, MiB (0 = unlimited).
  std::uint64_t worker_as_limit_mb = 0;
  /// Supervisor-enforced RSS budget per worker, MiB (0 = off).
  std::uint64_t worker_rss_limit_mb = 0;
  /// HarnessChaos fault injection (test mode): seed + per-fate rates.
  std::uint64_t chaos_seed = 0;
  double chaos_crash = 0.0;
  double chaos_abort = 0.0;
  double chaos_exit = 0.0;
  double chaos_hang = 0.0;
  double chaos_stall = 0.0;
  double chaos_leak = 0.0;

  bool chaos_enabled() const {
    return chaos_crash > 0 || chaos_abort > 0 || chaos_exit > 0 || chaos_hang > 0 ||
           chaos_stall > 0 || chaos_leak > 0;
  }

  /// Jobs with `auto` resolved against this machine.
  int effective_jobs() const;
  /// Seed list after --quick truncation.
  std::vector<std::uint64_t> effective_seeds() const;
  /// Seed list after --seed-count expansion (sequential from the first
  /// seed; not truncated by --quick — fleet smoke runs shorten sessions,
  /// not the grid).
  std::vector<std::uint64_t> fleet_seeds() const;
};

/// Parses the shared flags. Unknown flags are an error. Returns false and
/// fills `error` on malformed input; `--help` parses as success with
/// options.help set.
bool parse_bench_args(int argc, char** argv, BenchOptions* options, std::string* error);

/// Usage text for `--help` / parse errors.
std::string bench_usage(const std::string& bench_id);

/// Extra usage lines for the fleet flags; bench_fleet appends this to
/// bench_usage("fleet").
std::string fleet_usage();

}  // namespace vafs::exp
