#include "exp/runner.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

namespace vafs::exp {

const ScenarioResult& ResultSet::at(
    std::initializer_list<std::pair<std::string_view, std::string_view>> query) const {
  const ScenarioResult* found = nullptr;
  for (const auto& sr : scenarios_) {
    bool match = true;
    for (const auto& [axis, value] : query) {
      const std::string* label = sr.spec.label(axis);
      if (label == nullptr || *label != value) {
        match = false;
        break;
      }
    }
    if (!match) continue;
    if (found != nullptr) {
      std::fprintf(stderr, "exp::ResultSet::at: query is ambiguous (matches '%s' and '%s')\n",
                   found->spec.id.c_str(), sr.spec.id.c_str());
      std::abort();
    }
    found = &sr;
  }
  if (found == nullptr) {
    std::fprintf(stderr, "exp::ResultSet::at: no scenario matches the query\n");
    std::abort();
  }
  return *found;
}

ResultSet run_grid(const std::vector<ScenarioSpec>& scenarios, const RunOptions& opts) {
  std::vector<ScenarioResult> results(scenarios.size());
  for (std::size_t s = 0; s < scenarios.size(); ++s) {
    results[s].spec = scenarios[s];
    results[s].seeds = opts.seeds;
    results[s].runs.resize(opts.seeds.size());
  }

  // Flattened task list: task t = (scenario t / nseeds, seed t % nseeds).
  // Hooks are constructed up front on this thread (factories may touch
  // bench-local containers); each task's hooks then fire only on the one
  // worker that runs it.
  const std::size_t nseeds = opts.seeds.size();
  const std::size_t ntasks = scenarios.size() * nseeds;
  std::vector<core::SessionHooks> hooks(ntasks);
  if (opts.hooks) {
    for (std::size_t t = 0; t < ntasks; ++t) {
      hooks[t] = opts.hooks(scenarios[t / nseeds], t / nseeds, t % nseeds);
    }
  }

  // One arena per worker: sessions on the same thread reuse the event
  // slab/heap capacity, so only the first session of each worker allocates.
  const auto run_task = [&](std::size_t t, core::SessionArena& arena) {
    const std::size_t s = t / nseeds;
    const std::size_t i = t % nseeds;
    core::SessionConfig config = scenarios[s].config;
    config.seed = opts.seeds[i];
    results[s].runs[i] = core::run_session(config, hooks[t], &arena);
  };

  const int jobs = opts.jobs;
  if (jobs <= 1 || ntasks <= 1) {
    core::SessionArena arena;
    for (std::size_t t = 0; t < ntasks; ++t) run_task(t, arena);
  } else {
    std::atomic<std::size_t> next{0};
    std::mutex error_mutex;
    std::exception_ptr error;
    const auto worker = [&] {
      core::SessionArena arena;
      for (;;) {
        const std::size_t t = next.fetch_add(1, std::memory_order_relaxed);
        if (t >= ntasks) return;
        try {
          run_task(t, arena);
        } catch (...) {
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (!error) error = std::current_exception();
        }
      }
    };
    std::vector<std::thread> pool;
    const std::size_t width = std::min<std::size_t>(static_cast<std::size_t>(jobs), ntasks);
    pool.reserve(width);
    for (std::size_t w = 0; w < width; ++w) pool.emplace_back(worker);
    for (auto& th : pool) th.join();
    if (error) std::rethrow_exception(error);
  }

  // Serial aggregation in (scenario, seed) order: identical regardless of
  // the completion order above.
  for (auto& sr : results) {
    for (const auto& r : sr.runs) sr.agg.add(r);
  }
  return ResultSet(std::move(results));
}

ResultSet run_grid(const ExperimentGrid& grid, const RunOptions& opts) {
  return run_grid(grid.scenarios(), opts);
}

}  // namespace vafs::exp
