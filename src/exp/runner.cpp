#include "exp/runner.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <exception>
#include <optional>
#include <string>
#include <thread>

#include "core/session_batch.h"
#include "obs/trace.h"

namespace vafs::exp {

const ScenarioResult& ResultSet::at(
    std::initializer_list<std::pair<std::string_view, std::string_view>> query) const {
  const ScenarioResult* found = nullptr;
  for (const auto& sr : scenarios_) {
    bool match = true;
    for (const auto& [axis, value] : query) {
      const std::string* label = sr.spec.label(axis);
      if (label == nullptr || *label != value) {
        match = false;
        break;
      }
    }
    if (!match) continue;
    if (found != nullptr) {
      std::fprintf(stderr, "exp::ResultSet::at: query is ambiguous (matches '%s' and '%s')\n",
                   found->spec.id.c_str(), sr.spec.id.c_str());
      std::abort();
    }
    found = &sr;
  }
  if (found == nullptr) {
    std::fprintf(stderr, "exp::ResultSet::at: no scenario matches the query\n");
    std::abort();
  }
  return *found;
}

TaskOutcome run_one_task(const ScenarioSpec& spec, std::uint64_t seed,
                         core::SessionHooks hooks, bool trace, core::SessionArena* arena,
                         std::int64_t task_timeout_ms) {
  TaskOutcome out;
  core::SessionConfig config = spec.config;
  config.seed = seed;
  if (task_timeout_ms > 0) config.task_timeout_ms = task_timeout_ms;
  // Digest-only tracer per task (no event storage, no allocation): the
  // digest and event count land in the SessionResult before the tracer
  // goes out of scope. Hooks that supplied their own tracer win.
  std::optional<obs::Tracer> digest_tracer;
  if (hooks.tracer == nullptr && trace) {
    digest_tracer.emplace(obs::Tracer::Config{0});
    hooks.tracer = &*digest_tracer;
  }
  try {
    out.result = core::run_session(config, hooks, arena);
  } catch (const std::exception& e) {
    out.error = "scenario '" + spec.id + "' seed " + std::to_string(seed) + ": " + e.what();
  } catch (...) {
    out.error = "scenario '" + spec.id + "' seed " + std::to_string(seed) + ": unknown exception";
  }
  return out;
}

std::vector<TaskOutcome> run_task_batch(const std::vector<BatchTask>& tasks, bool trace,
                                        std::deque<core::SessionArena>& arenas,
                                        std::int64_t task_timeout_ms) {
  const std::size_t n = tasks.size();
  std::vector<TaskOutcome> out(n);
  if (arenas.size() < n) arenas.resize(n);
  // One worker-wide content pool: lanes keep private event arenas but
  // share arenas[0]'s synthesized-content cache, so a pack replaying one
  // workload under N governors synthesizes frames once, like serial.
  for (std::size_t i = 1; i < n; ++i) arenas[i].content_donor = &arenas[0];

  // Per-cell digest tracers live in a deque (stable addresses across
  // emplacements) and stay alive until the lane's finish() seals the
  // digest into its result — exactly the serial tracer lifetime, just for
  // N cells at once. Cells whose hooks brought a tracer keep it.
  std::deque<obs::Tracer> digest_tracers;
  core::SessionBatch batch(n);
  // lane_of[cell]: the batch lane running that cell, or npos when
  // admission itself threw (error already recorded).
  constexpr std::size_t kNoLane = static_cast<std::size_t>(-1);
  std::vector<std::size_t> lane_of(n, kNoLane);
  // Each lane's stamped config must outlive run(): admit() borrows it.
  std::deque<core::SessionConfig> configs;

  const auto task_error = [&](std::size_t i, const char* what) {
    return "scenario '" + tasks[i].spec->id + "' seed " + std::to_string(tasks[i].seed) + ": " +
           what;
  };

  for (std::size_t i = 0; i < n; ++i) {
    core::SessionConfig& config = configs.emplace_back(tasks[i].spec->config);
    config.seed = tasks[i].seed;
    if (task_timeout_ms > 0) config.task_timeout_ms = task_timeout_ms;
    core::SessionHooks hooks = tasks[i].hooks;
    if (hooks.tracer == nullptr && trace) {
      digest_tracers.emplace_back(obs::Tracer::Config{0});
      hooks.tracer = &digest_tracers.back();
    }
    try {
      lane_of[i] = batch.admit(config, hooks, &arenas[i]);
    } catch (const std::exception& e) {
      out[i].error = task_error(i, e.what());
    } catch (...) {
      out[i].error = task_error(i, "unknown exception");
    }
  }

  batch.run();

  for (std::size_t i = 0; i < n; ++i) {
    if (lane_of[i] == kNoLane) continue;
    try {
      out[i].result = batch.finish(lane_of[i]);
    } catch (const std::exception& e) {
      out[i].error = task_error(i, e.what());
    } catch (...) {
      out[i].error = task_error(i, "unknown exception");
    }
  }
  return out;
}

ResultSet run_grid(const std::vector<ScenarioSpec>& scenarios, const RunOptions& opts) {
  std::vector<ScenarioResult> results(scenarios.size());
  for (std::size_t s = 0; s < scenarios.size(); ++s) {
    results[s].spec = scenarios[s];
    results[s].seeds = opts.seeds;
    results[s].runs.resize(opts.seeds.size());
  }

  // Flattened task list: task t = (scenario t / nseeds, seed t % nseeds).
  // Hooks are constructed up front on this thread (factories may touch
  // bench-local containers); each task's hooks then fire only on the one
  // worker that runs it.
  const std::size_t nseeds = opts.seeds.size();
  const std::size_t ntasks = scenarios.size() * nseeds;
  std::vector<core::SessionHooks> hooks(ntasks);
  if (opts.hooks) {
    for (std::size_t t = 0; t < ntasks; ++t) {
      hooks[t] = opts.hooks(scenarios[t / nseeds], t / nseeds, t % nseeds);
    }
  }
  if (opts.decision_backend != nullptr) {
    for (auto& h : hooks) {
      if (h.decision_backend == nullptr) h.decision_backend = opts.decision_backend;
    }
  }

  // One arena per worker: sessions on the same thread reuse the event
  // slab/heap capacity, so only the first session of each worker allocates.
  // A task that throws records its message into a preallocated slot (no
  // shared mutable state, no lock) instead of killing the grid; slots are
  // folded into per-scenario failure lists in (scenario, seed) order below,
  // so the failure report is as deterministic as the results.
  std::vector<std::string> errors(ntasks);
  const auto run_task = [&](std::size_t t, core::SessionArena& arena) {
    const std::size_t s = t / nseeds;
    const std::size_t i = t % nseeds;
    core::SessionHooks task_hooks = hooks[t];
    // The designated capture task gets the bench's full-ring tracer; every
    // other task gets run_one_task's digest-only tracer when opts.trace.
    // Hooks that supplied their own tracer win either way.
    if (task_hooks.tracer == nullptr && opts.capture != nullptr && s == opts.capture_scenario &&
        i == opts.capture_seed) {
      task_hooks.tracer = opts.capture;
    }
    TaskOutcome out = run_one_task(scenarios[s], opts.seeds[i], std::move(task_hooks), opts.trace,
                                   &arena, opts.task_timeout_ms);
    results[s].runs[i] = std::move(out.result);
    errors[t] = std::move(out.error);
  };

  // Batch mode packs runs of `batch` consecutive tasks — still in
  // canonical order — through one SessionBatch per chunk; the last chunk
  // is ragged when batch does not divide ntasks. Per-task results and
  // errors land in the same preallocated slots, so the aggregation below
  // cannot tell the paths apart.
  const auto run_chunk = [&](std::size_t lo, std::size_t hi,
                             std::deque<core::SessionArena>& arenas) {
    std::vector<BatchTask> pack;
    pack.reserve(hi - lo);
    for (std::size_t t = lo; t < hi; ++t) {
      const std::size_t s = t / nseeds;
      const std::size_t i = t % nseeds;
      BatchTask bt;
      bt.spec = &scenarios[s];
      bt.seed = opts.seeds[i];
      bt.hooks = hooks[t];
      if (bt.hooks.tracer == nullptr && opts.capture != nullptr && s == opts.capture_scenario &&
          i == opts.capture_seed) {
        bt.hooks.tracer = opts.capture;
      }
      pack.push_back(std::move(bt));
    }
    std::vector<TaskOutcome> outs = run_task_batch(pack, opts.trace, arenas, opts.task_timeout_ms);
    for (std::size_t t = lo; t < hi; ++t) {
      results[t / nseeds].runs[t % nseeds] = std::move(outs[t - lo].result);
      errors[t] = std::move(outs[t - lo].error);
    }
  };

  const int jobs = opts.jobs;
  if (opts.batch > 1) {
    const std::size_t bsz = static_cast<std::size_t>(opts.batch);
    const std::size_t nchunks = (ntasks + bsz - 1) / bsz;
    if (jobs <= 1 || nchunks <= 1) {
      std::deque<core::SessionArena> arenas;
      for (std::size_t c = 0; c < nchunks; ++c) {
        run_chunk(c * bsz, std::min(ntasks, (c + 1) * bsz), arenas);
      }
    } else {
      std::atomic<std::size_t> next{0};
      const auto worker = [&] {
        std::deque<core::SessionArena> arenas;
        for (;;) {
          const std::size_t c = next.fetch_add(1, std::memory_order_relaxed);
          if (c >= nchunks) return;
          run_chunk(c * bsz, std::min(ntasks, (c + 1) * bsz), arenas);
        }
      };
      std::vector<std::thread> pool;
      const std::size_t width = std::min<std::size_t>(static_cast<std::size_t>(jobs), nchunks);
      pool.reserve(width);
      for (std::size_t w = 0; w < width; ++w) pool.emplace_back(worker);
      for (auto& th : pool) th.join();
    }
  } else if (jobs <= 1 || ntasks <= 1) {
    core::SessionArena arena;
    for (std::size_t t = 0; t < ntasks; ++t) run_task(t, arena);
  } else {
    std::atomic<std::size_t> next{0};
    const auto worker = [&] {
      core::SessionArena arena;
      for (;;) {
        const std::size_t t = next.fetch_add(1, std::memory_order_relaxed);
        if (t >= ntasks) return;
        run_task(t, arena);
      }
    };
    std::vector<std::thread> pool;
    const std::size_t width = std::min<std::size_t>(static_cast<std::size_t>(jobs), ntasks);
    pool.reserve(width);
    for (std::size_t w = 0; w < width; ++w) pool.emplace_back(worker);
    for (auto& th : pool) th.join();
  }

  // Serial aggregation in (scenario, seed) order: identical regardless of
  // the completion order above. Failed runs are skipped (their slots are
  // default-constructed) and clear all_finished.
  for (std::size_t s = 0; s < results.size(); ++s) {
    auto& sr = results[s];
    for (std::size_t i = 0; i < nseeds; ++i) {
      std::string& err = errors[s * nseeds + i];
      if (err.empty()) {
        sr.agg.add(sr.runs[i]);
      } else {
        sr.failures.push_back(RunFailure{i, opts.seeds[i], std::move(err)});
        sr.agg.all_finished = false;
      }
    }
  }
  return ResultSet(std::move(results));
}

ResultSet run_grid(const ExperimentGrid& grid, const RunOptions& opts) {
  return run_grid(grid.scenarios(), opts);
}

}  // namespace vafs::exp
