#include "exp/runner.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <optional>
#include <string>
#include <thread>

#include "obs/trace.h"

namespace vafs::exp {

const ScenarioResult& ResultSet::at(
    std::initializer_list<std::pair<std::string_view, std::string_view>> query) const {
  const ScenarioResult* found = nullptr;
  for (const auto& sr : scenarios_) {
    bool match = true;
    for (const auto& [axis, value] : query) {
      const std::string* label = sr.spec.label(axis);
      if (label == nullptr || *label != value) {
        match = false;
        break;
      }
    }
    if (!match) continue;
    if (found != nullptr) {
      std::fprintf(stderr, "exp::ResultSet::at: query is ambiguous (matches '%s' and '%s')\n",
                   found->spec.id.c_str(), sr.spec.id.c_str());
      std::abort();
    }
    found = &sr;
  }
  if (found == nullptr) {
    std::fprintf(stderr, "exp::ResultSet::at: no scenario matches the query\n");
    std::abort();
  }
  return *found;
}

TaskOutcome run_one_task(const ScenarioSpec& spec, std::uint64_t seed,
                         core::SessionHooks hooks, bool trace, core::SessionArena* arena) {
  TaskOutcome out;
  core::SessionConfig config = spec.config;
  config.seed = seed;
  // Digest-only tracer per task (no event storage, no allocation): the
  // digest and event count land in the SessionResult before the tracer
  // goes out of scope. Hooks that supplied their own tracer win.
  std::optional<obs::Tracer> digest_tracer;
  if (hooks.tracer == nullptr && trace) {
    digest_tracer.emplace(obs::Tracer::Config{0});
    hooks.tracer = &*digest_tracer;
  }
  try {
    out.result = core::run_session(config, hooks, arena);
  } catch (const std::exception& e) {
    out.error = "scenario '" + spec.id + "' seed " + std::to_string(seed) + ": " + e.what();
  } catch (...) {
    out.error = "scenario '" + spec.id + "' seed " + std::to_string(seed) + ": unknown exception";
  }
  return out;
}

ResultSet run_grid(const std::vector<ScenarioSpec>& scenarios, const RunOptions& opts) {
  std::vector<ScenarioResult> results(scenarios.size());
  for (std::size_t s = 0; s < scenarios.size(); ++s) {
    results[s].spec = scenarios[s];
    results[s].seeds = opts.seeds;
    results[s].runs.resize(opts.seeds.size());
  }

  // Flattened task list: task t = (scenario t / nseeds, seed t % nseeds).
  // Hooks are constructed up front on this thread (factories may touch
  // bench-local containers); each task's hooks then fire only on the one
  // worker that runs it.
  const std::size_t nseeds = opts.seeds.size();
  const std::size_t ntasks = scenarios.size() * nseeds;
  std::vector<core::SessionHooks> hooks(ntasks);
  if (opts.hooks) {
    for (std::size_t t = 0; t < ntasks; ++t) {
      hooks[t] = opts.hooks(scenarios[t / nseeds], t / nseeds, t % nseeds);
    }
  }

  // One arena per worker: sessions on the same thread reuse the event
  // slab/heap capacity, so only the first session of each worker allocates.
  // A task that throws records its message into a preallocated slot (no
  // shared mutable state, no lock) instead of killing the grid; slots are
  // folded into per-scenario failure lists in (scenario, seed) order below,
  // so the failure report is as deterministic as the results.
  std::vector<std::string> errors(ntasks);
  const auto run_task = [&](std::size_t t, core::SessionArena& arena) {
    const std::size_t s = t / nseeds;
    const std::size_t i = t % nseeds;
    core::SessionHooks task_hooks = hooks[t];
    // The designated capture task gets the bench's full-ring tracer; every
    // other task gets run_one_task's digest-only tracer when opts.trace.
    // Hooks that supplied their own tracer win either way.
    if (task_hooks.tracer == nullptr && opts.capture != nullptr && s == opts.capture_scenario &&
        i == opts.capture_seed) {
      task_hooks.tracer = opts.capture;
    }
    TaskOutcome out =
        run_one_task(scenarios[s], opts.seeds[i], std::move(task_hooks), opts.trace, &arena);
    results[s].runs[i] = std::move(out.result);
    errors[t] = std::move(out.error);
  };

  const int jobs = opts.jobs;
  if (jobs <= 1 || ntasks <= 1) {
    core::SessionArena arena;
    for (std::size_t t = 0; t < ntasks; ++t) run_task(t, arena);
  } else {
    std::atomic<std::size_t> next{0};
    const auto worker = [&] {
      core::SessionArena arena;
      for (;;) {
        const std::size_t t = next.fetch_add(1, std::memory_order_relaxed);
        if (t >= ntasks) return;
        run_task(t, arena);
      }
    };
    std::vector<std::thread> pool;
    const std::size_t width = std::min<std::size_t>(static_cast<std::size_t>(jobs), ntasks);
    pool.reserve(width);
    for (std::size_t w = 0; w < width; ++w) pool.emplace_back(worker);
    for (auto& th : pool) th.join();
  }

  // Serial aggregation in (scenario, seed) order: identical regardless of
  // the completion order above. Failed runs are skipped (their slots are
  // default-constructed) and clear all_finished.
  for (std::size_t s = 0; s < results.size(); ++s) {
    auto& sr = results[s];
    for (std::size_t i = 0; i < nseeds; ++i) {
      std::string& err = errors[s * nseeds + i];
      if (err.empty()) {
        sr.agg.add(sr.runs[i]);
      } else {
        sr.failures.push_back(RunFailure{i, opts.seeds[i], std::move(err)});
        sr.agg.all_finished = false;
      }
    }
  }
  return ResultSet(std::move(results));
}

ResultSet run_grid(const ExperimentGrid& grid, const RunOptions& opts) {
  return run_grid(grid.scenarios(), opts);
}

}  // namespace vafs::exp
