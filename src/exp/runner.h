// Parallel experiment execution. Each (scenario, seed) pair is one task: a
// full core::run_session call, which owns its Simulator / Rng / sysfs tree
// and shares nothing, so tasks run concurrently on a fixed-size thread
// pool. Results land in preallocated slots and are aggregated serially in
// (scenario, seed) order afterwards, so a parallel run is bit-identical to
// a serial one regardless of completion order.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <initializer_list>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/session.h"
#include "exp/aggregate.h"
#include "exp/grid.h"

namespace vafs::exp {

struct RunOptions {
  /// Worker threads; <= 1 runs inline on the calling thread.
  int jobs = 1;
  /// One session per scenario per seed, aggregated in this order.
  std::vector<std::uint64_t> seeds = {101, 202, 303};
  /// Sessions advanced in lockstep per worker (core::SessionBatch): tasks
  /// are packed, in canonical (scenario, seed) order, into chunks of this
  /// size. <= 1 keeps the classic one-session-at-a-time path. Results are
  /// bitwise identical at every batch size — sessions share nothing.
  int batch = 1;

  /// Optional probe factory (e.g. timeline recorders). Called once per
  /// task *before* execution starts, from the calling thread; the hooks it
  /// returns fire on the worker running that task, so any state they
  /// capture must not be shared across tasks.
  using HookFactory = std::function<core::SessionHooks(
      const ScenarioSpec& spec, std::size_t scenario_index, std::size_t seed_index)>;
  HookFactory hooks;

  /// Attach a digest-only (allocation-free) tracer to every run whose
  /// hooks did not already provide one, so each SessionResult carries
  /// trace_digest / trace_events in the artifacts.
  bool trace = false;

  /// Optional full-ring tracer (not owned) attached to the single task
  /// (capture_scenario, capture_seed) — the cheap way for a bench to get
  /// one exportable trace out of a grid without buffering every session.
  /// Ignored for tasks whose hooks already provide a tracer.
  obs::Tracer* capture = nullptr;
  std::size_t capture_scenario = 0;
  std::size_t capture_seed = 0;

  /// Per-task wall-clock deadline, 0 = unlimited (SessionConfig::
  /// task_timeout_ms). A deadline-exceeded task becomes a captured
  /// failure — "wall-clock task timeout: ... exceeded" — in the scenario's
  /// failure list and the JSON/CSV artifacts, like any other task error.
  std::int64_t task_timeout_ms = 0;

  /// Optional decision backend (not owned, thread-safe, must outlive the
  /// run) handed to every task whose hooks did not bring their own:
  /// VAFS sessions then get their plans answered by the decision daemon
  /// instead of in-process. Results are bit-identical either way.
  core::DecisionBackend* decision_backend = nullptr;
};

/// One run that threw instead of returning: which seed, and a message
/// already wrapped with scenario + seed context ("scenario 'x' seed 101:
/// what()"), so a log line or JSON entry is self-describing.
struct RunFailure {
  std::size_t seed_index = 0;
  std::uint64_t seed = 0;
  std::string message;
};

/// One scenario's runs (per-seed, in seed order) plus their aggregate.
/// A run that threw (core::SessionError or anything else) leaves its slot
/// default-constructed, lands in `failures`, is skipped by `agg`, and
/// clears agg.all_finished — the grid keeps going instead of aborting.
struct ScenarioResult {
  ScenarioSpec spec;
  std::vector<std::uint64_t> seeds;
  std::vector<core::SessionResult> runs;
  std::vector<RunFailure> failures;  // in seed order (deterministic)
  Aggregate agg;

  bool ok() const { return failures.empty(); }

  /// The first seed's raw result — for per-run values (residency vectors,
  /// setspeed write counts) the old benches took from one representative
  /// run. Default-constructed if that seed's run failed (check failures).
  const core::SessionResult& run0() const { return runs.front(); }
};

class ResultSet {
 public:
  ResultSet() = default;
  explicit ResultSet(std::vector<ScenarioResult> scenarios)
      : scenarios_(std::move(scenarios)) {}

  const std::vector<ScenarioResult>& all() const { return scenarios_; }
  bool empty() const { return scenarios_.empty(); }

  /// The unique scenario matching every given (axis, value) pair; aborts
  /// if none or several match — table printers want exactly one cell.
  const ScenarioResult& at(
      std::initializer_list<std::pair<std::string_view, std::string_view>> query) const;
  const Aggregate& agg(
      std::initializer_list<std::pair<std::string_view, std::string_view>> query) const {
    return at(query).agg;
  }

 private:
  std::vector<ScenarioResult> scenarios_;
};

/// One executed (scenario, seed) cell. `error` is empty on success and
/// carries the scenario + seed context otherwise; a failed task leaves
/// `result` default-constructed.
struct TaskOutcome {
  core::SessionResult result;
  std::string error;

  bool ok() const { return error.empty(); }
};

/// Runs one (scenario, seed) cell exactly as run_grid does: the scenario
/// config stamped with `seed`, a digest-only tracer attached when `trace`
/// is set and the hooks brought none, exceptions captured instead of
/// propagated. This is the shard-safe entry point the fleet runner builds
/// on — any partition of a grid into run_one_task calls produces the same
/// per-cell results as one run_grid call, because cells share nothing.
TaskOutcome run_one_task(const ScenarioSpec& spec, std::uint64_t seed,
                         core::SessionHooks hooks, bool trace, core::SessionArena* arena,
                         std::int64_t task_timeout_ms = 0);

/// One cell of a batch pack: the scenario (borrowed — must outlive the
/// call), the seed to stamp, and the cell's hooks.
struct BatchTask {
  const ScenarioSpec* spec = nullptr;
  std::uint64_t seed = 0;
  core::SessionHooks hooks;
};

/// Runs a pack of cells in lockstep through one core::SessionBatch — the
/// batch-mode counterpart of calling run_one_task once per cell, with
/// bitwise-identical per-cell outcomes (same results, same digests, same
/// error messages) in the same order. A cell that fails — at bring-up or
/// mid-run — yields its error slot exactly as the serial path would and
/// does not disturb its batchmates. `arenas` backs the lanes one-to-one
/// (grown to tasks.size() if shorter; a deque because arenas are pinned —
/// an EventQueue::Arena serves one live queue and never moves); reuse it
/// across packs on the same worker to stay allocation-free.
std::vector<TaskOutcome> run_task_batch(const std::vector<BatchTask>& tasks, bool trace,
                                        std::deque<core::SessionArena>& arenas,
                                        std::int64_t task_timeout_ms = 0);

/// Runs scenarios × seeds on a pool of `opts.jobs` threads.
ResultSet run_grid(const std::vector<ScenarioSpec>& scenarios, const RunOptions& opts);
ResultSet run_grid(const ExperimentGrid& grid, const RunOptions& opts);

}  // namespace vafs::exp
