#include "exp/sinks.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "obs/export.h"
#include "trace/csv.h"

namespace vafs::exp {

namespace {

/// Exact nearest-rank quantile of a sorted sample (no interpolation: the
/// returned value is always one of the observed values, so the column is
/// bit-reproducible).
double nearest_rank(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  std::size_t rank = static_cast<std::size_t>(std::ceil(p * static_cast<double>(sorted.size())));
  if (rank == 0) rank = 1;
  if (rank > sorted.size()) rank = sorted.size();
  return sorted[rank - 1];
}

/// Whether any run of the scenario carried a tracer (digest-only or full).
/// Clean no-trace artifacts keep their exact pre-tracing shape.
bool has_trace_digests(const ScenarioResult& sr) {
  for (const auto& run : sr.runs) {
    if (run.trace_events != 0) return true;
  }
  return false;
}

}  // namespace

Json aggregate_metrics_json(const Aggregate& agg) {
  Json metrics = Json::object();
  for (const auto& m : Aggregate::metrics()) {
    const sim::OnlineStats& s = agg.*(m.member);
    Json cell = Json::object();
    cell.set("mean", s.mean());
    cell.set("stddev", s.stddev());
    cell.set("min", s.min());
    cell.set("max", s.max());
    metrics.set(m.name, std::move(cell));
  }
  return metrics;
}

Json bench_report_json(const std::string& bench_id, const std::string& title,
                       const BenchOptions& options, const std::vector<Section>& sections) {
  Json root = Json::object();
  root.set("bench", bench_id);
  root.set("title", title);
  // v2: scenarios may carry "trace_digests" (per-seed canonical trace
  // hashes as hex strings — Json numbers are doubles and would mangle
  // 64-bit values).
  root.set("schema_version", 2);

  Json opts = Json::object();
  opts.set("jobs", options.effective_jobs());
  Json seeds = Json::array();
  for (const auto seed : options.effective_seeds()) seeds.push(seed);
  opts.set("seeds", std::move(seeds));
  opts.set("quick", options.quick);
  root.set("options", std::move(opts));

  Json out_sections = Json::array();
  for (const auto& section : sections) {
    Json sec = Json::object();
    sec.set("name", section.name);
    Json scenarios = Json::array();
    for (const auto& sr : section.results.all()) {
      Json scenario = Json::object();
      scenario.set("id", sr.spec.id);
      Json labels = Json::object();
      for (const auto& [axis, value] : sr.spec.labels) labels.set(axis, value);
      scenario.set("labels", std::move(labels));
      scenario.set("runs", sr.agg.runs);
      scenario.set("all_finished", sr.agg.all_finished);
      // Emitted only on failure so clean artifacts are byte-identical to
      // builds without the failure surface.
      if (!sr.failures.empty()) {
        scenario.set("failed_runs", static_cast<std::int64_t>(sr.failures.size()));
        Json failures = Json::array();
        for (const auto& f : sr.failures) {
          Json failure = Json::object();
          failure.set("seed", f.seed);
          failure.set("message", f.message);
          failures.push(std::move(failure));
        }
        scenario.set("failures", std::move(failures));
      }
      scenario.set("metrics", aggregate_metrics_json(sr.agg));
      if (has_trace_digests(sr)) {
        Json digests = Json::array();
        for (const auto& run : sr.runs) digests.push(obs::digest_hex(run.trace_digest));
        scenario.set("trace_digests", std::move(digests));
      }
      scenarios.push(std::move(scenario));
    }
    sec.set("scenarios", std::move(scenarios));
    out_sections.push(std::move(sec));
  }
  root.set("sections", std::move(out_sections));
  return root;
}

void write_bench_csv(std::ostream& out, const std::vector<Section>& sections) {
  trace::CsvWriter csv(out, {"section", "scenario", "metric", "mean", "stddev", "min", "max",
                             "q50", "q95", "runs"});
  for (const auto& section : sections) {
    for (const auto& sr : section.results.all()) {
      // Per-metric quantile guards, computed exactly from the successful
      // per-seed values (the folded OnlineStats cannot produce quantiles).
      // Benches that fold aggregate-only (no retained runs) fall back to
      // mean/max — an unbiased centre and a hard upper bound.
      std::set<std::size_t> failed_slots;
      for (const auto& f : sr.failures) failed_slots.insert(f.seed_index);
      std::vector<std::vector<double>> columns(kMetricCount);
      double values[kMetricCount];
      for (std::size_t i = 0; i < sr.runs.size(); ++i) {
        if (failed_slots.count(i) != 0) continue;
        Aggregate::session_values(sr.runs[i], values);
        for (std::size_t k = 0; k < kMetricCount; ++k) columns[k].push_back(values[k]);
      }
      for (auto& column : columns) std::sort(column.begin(), column.end());

      std::size_t metric_index = 0;
      for (const auto& m : Aggregate::metrics()) {
        const sim::OnlineStats& s = sr.agg.*(m.member);
        const std::vector<double>& column = columns[metric_index++];
        const double q50 = column.empty() ? s.mean() : nearest_rank(column, 0.50);
        const double q95 = column.empty() ? s.max() : nearest_rank(column, 0.95);
        csv.row()
            .cell(section.name)
            .cell(sr.spec.id)
            .cell(std::string(m.name))
            .cell(s.mean())
            .cell(s.stddev())
            .cell(s.min())
            .cell(s.max())
            .cell(q50)
            .cell(q95)
            .cell(static_cast<std::int64_t>(sr.agg.runs));
      }
      // Per-seed trace digests as pseudo-metric rows; the hex string rides
      // in the "mean" column (digests are identities, not statistics).
      if (has_trace_digests(sr)) {
        for (std::size_t i = 0; i < sr.runs.size(); ++i) {
          csv.row()
              .cell(section.name)
              .cell(sr.spec.id)
              .cell("trace_digest[" + std::to_string(sr.seeds[i]) + "]")
              .cell(obs::digest_hex(sr.runs[i].trace_digest))
              .cell(0.0)
              .cell(0.0)
              .cell(0.0)
              .cell(0.0)
              .cell(0.0)
              .cell(static_cast<std::int64_t>(1));
        }
      }
      // Failure count as an extra pseudo-metric row, only when non-zero
      // (clean CSVs keep their exact shape).
      if (!sr.failures.empty()) {
        const auto n = static_cast<double>(sr.failures.size());
        csv.row()
            .cell(section.name)
            .cell(sr.spec.id)
            .cell(std::string("failed_runs"))
            .cell(n)
            .cell(0.0)
            .cell(n)
            .cell(n)
            .cell(n)
            .cell(n)
            .cell(static_cast<std::int64_t>(sr.agg.runs));
      }
    }
  }
}

}  // namespace vafs::exp
