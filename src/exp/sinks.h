// Machine-readable sinks for experiment results: the BENCH_<id>.json
// artifact (per-scenario mean/stddev/min/max for every metric) and a
// long-format CSV. The aligned text tables stay with each bench — they are
// figure-specific — while these two formats are uniform across the suite.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "exp/json.h"
#include "exp/options.h"
#include "exp/runner.h"

namespace vafs::exp {

/// A named group of scenarios (benches with several sweeps emit several
/// sections, e.g. F6's margin / window / race-to-idle sweeps).
struct Section {
  std::string name;
  ResultSet results;
};

/// JSON object keyed by metric name, each value
/// {"mean":..,"stddev":..,"min":..,"max":..}.
Json aggregate_metrics_json(const Aggregate& agg);

/// The full artifact: bench id/title, the options it ran under, and every
/// section's scenarios.
Json bench_report_json(const std::string& bench_id, const std::string& title,
                       const BenchOptions& options, const std::vector<Section>& sections);

/// Long-format CSV: section,scenario,metric,mean,stddev,min,max,runs.
void write_bench_csv(std::ostream& out, const std::vector<Section>& sections);

}  // namespace vafs::exp
