// Aligned-text helpers shared by the bench table printers (moved here from
// the old bench/bench_util.h).
#pragma once

#include <cstdio>

namespace vafs::exp {

inline void print_header(const char* experiment, const char* description) {
  std::printf("\n==============================================================================\n");
  std::printf("%s — %s\n", experiment, description);
  std::printf("==============================================================================\n");
}

inline void print_rule(int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace vafs::exp
