#include "fault/injector.h"

#include <algorithm>

#include "obs/trace.h"

namespace vafs::fault {

FaultInjector::FaultInjector(FaultPlan plan, sim::Rng rng)
    : plan_(std::move(plan)), fate_seed_(rng.next_u64()) {}

const FaultWindow* FaultInjector::active(FaultKind kind, sim::SimTime now) const {
  const auto& ws = plan_.windows(kind);
  // First window starting after now; the candidate is its predecessor.
  auto it = std::upper_bound(ws.begin(), ws.end(), now,
                             [](sim::SimTime t, const FaultWindow& w) { return t < w.start; });
  if (it == ws.begin()) return nullptr;
  --it;
  return now < it->end ? &*it : nullptr;
}

double FaultInjector::bandwidth_scale(sim::SimTime now) const {
  if (active(FaultKind::kLinkOutage, now) != nullptr) return 0.0;
  if (const FaultWindow* w = active(FaultKind::kThroughputCollapse, now)) return w->magnitude;
  return 1.0;
}

sim::SimTime FaultInjector::next_bandwidth_change(sim::SimTime now) const {
  sim::SimTime next = sim::SimTime::max();
  for (const FaultKind kind : {FaultKind::kLinkOutage, FaultKind::kThroughputCollapse}) {
    for (const auto& w : plan_.windows(kind)) {
      if (w.start > now) {
        next = std::min(next, w.start);
        break;  // windows are sorted; later ones are no earlier
      }
      if (w.end > now) next = std::min(next, w.end);
    }
  }
  return next;
}

double FaultInjector::decode_scale(sim::SimTime now) const {
  const FaultWindow* w = active(FaultKind::kDecodeSpike, now);
  return w != nullptr ? std::max(1.0, w->magnitude) : 1.0;
}

std::optional<sysfs::Errno> FaultInjector::sysfs_write_error(sim::SimTime now) {
  const FaultWindow* w = active(FaultKind::kSysfsWriteFault, now);
  if (w == nullptr) return std::nullopt;
  ++sysfs_errors_;
  const sysfs::Errno err = w->magnitude > 0.5 ? sysfs::Errno::kInval : sysfs::Errno::kAccess;
  if (tracer_ != nullptr) {
    tracer_->record(now, obs::EventKind::kInjectSysfsError, static_cast<std::uint64_t>(err));
  }
  return err;
}

net::FetchFate FaultInjector::fetch_attempt_fate(sim::SimTime now, std::uint64_t fetch_id,
                                                 unsigned attempt, sim::SimTime* fail_delay) {
  const FaultPlanConfig& c = plan_.config();
  if (c.fetch_failure_prob <= 0 && c.fetch_hang_prob <= 0) return net::FetchFate::kOk;
  // Keyed stream: the fate (and its delay) of attempt n of fetch k is the
  // same no matter what other fetches did — required for shard-boundary
  // invariance of the whole session.
  sim::Rng draw(sim::mix_stream(fate_seed_, fetch_id, attempt));
  const double u = draw.uniform();
  if (u < c.fetch_failure_prob) {
    ++fetch_failures_;
    sim::SimTime delay =
        sim::SimTime::seconds_f(draw.exponential(c.fetch_failure_mean_delay.as_seconds_f()));
    if (fail_delay != nullptr) *fail_delay = delay;
    if (tracer_ != nullptr) {
      tracer_->record(now, obs::EventKind::kInjectFetchFail,
                      static_cast<std::uint64_t>(delay.as_micros()));
    }
    return net::FetchFate::kFail;
  }
  if (u < c.fetch_failure_prob + c.fetch_hang_prob) {
    ++fetch_hangs_;
    if (tracer_ != nullptr) tracer_->record(now, obs::EventKind::kInjectFetchHang);
    return net::FetchFate::kHang;
  }
  return net::FetchFate::kOk;
}

}  // namespace vafs::fault
