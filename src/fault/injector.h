// Runtime side of fault injection: answers "is a fault active at time t"
// against a compiled FaultPlan (binary search over the per-kind windows),
// draws per-fetch fates keyed by (fetch id, attempt) from a fixed seed,
// and decorates a BandwidthProcess with the outage/collapse overlay. One
// injector per session; stateless apart from its counters — every draw is
// a pure function of its identifiers, so fate sequences survive any
// reordering of the surrounding work (shard boundaries included).
#pragma once

#include <cstdint>
#include <optional>

#include "fault/plan.h"
#include "net/bandwidth.h"
#include "net/downloader.h"
#include "simcore/rng.h"
#include "sysfs/result.h"

namespace vafs::obs {
class Tracer;
}

namespace vafs::fault {

class FaultInjector final : public net::FetchFaultHook {
 public:
  FaultInjector(FaultPlan plan, sim::Rng rng);

  const FaultPlan& plan() const { return plan_; }

  /// Bandwidth multiplier at `now`: 0 inside an outage, the collapse
  /// factor inside a collapse (outage wins when both overlap), 1 otherwise.
  double bandwidth_scale(sim::SimTime now) const;
  /// Earliest outage/collapse window boundary strictly after `now`
  /// (SimTime::max() when none remain) — the pump re-arm point.
  sim::SimTime next_bandwidth_change(sim::SimTime now) const;

  /// Decode-cycle multiplier at `now` (>= 1).
  double decode_scale(sim::SimTime now) const;

  /// Errno to fail a scaling_setspeed write with at `now`, or nullopt to
  /// let the write through.
  std::optional<sysfs::Errno> sysfs_write_error(sim::SimTime now);

  // ---- net::FetchFaultHook ----
  net::FetchFate fetch_attempt_fate(sim::SimTime now, std::uint64_t fetch_id, unsigned attempt,
                                    sim::SimTime* fail_delay) override;

  // ---- Counters (for result plumbing and tests) ----
  std::uint64_t injected_fetch_failures() const { return fetch_failures_; }
  std::uint64_t injected_fetch_hangs() const { return fetch_hangs_; }
  std::uint64_t injected_sysfs_errors() const { return sysfs_errors_; }

  /// Optional tracer (not owned, may be null): runtime injections (fetch
  /// failures/hangs, sysfs errors) are recorded through it.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

 private:
  /// The window of `kind` covering `now`, or nullptr. Queries may go
  /// backwards in time (the downloader integrates rate over
  /// [last_pump, now]), so this is a fresh binary search per call.
  const FaultWindow* active(FaultKind kind, sim::SimTime now) const;

  FaultPlan plan_;
  /// Root of the per-(fetch, attempt) fate streams; drawn once from the
  /// session's fork so different seeds get unrelated fate tables.
  std::uint64_t fate_seed_;
  obs::Tracer* tracer_ = nullptr;
  std::uint64_t fetch_failures_ = 0;
  std::uint64_t fetch_hangs_ = 0;
  std::uint64_t sysfs_errors_ = 0;
};

/// BandwidthProcess decorator applying the injector's outage/collapse
/// overlay to a base process. The base keeps its own RNG stream, so the
/// underlying trajectory is identical with and without faults.
class FaultyBandwidth final : public net::BandwidthProcess {
 public:
  FaultyBandwidth(net::BandwidthProcess& base, const FaultInjector& injector)
      : base_(base), injector_(injector) {}

  double current_mbps(sim::SimTime now) override {
    return base_.current_mbps(now) * injector_.bandwidth_scale(now);
  }
  sim::SimTime next_change(sim::SimTime now) override {
    return std::min(base_.next_change(now), injector_.next_bandwidth_change(now));
  }

 private:
  net::BandwidthProcess& base_;
  const FaultInjector& injector_;
};

}  // namespace vafs::fault
