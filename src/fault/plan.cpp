#include "fault/plan.h"

#include <algorithm>

namespace vafs::fault {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kLinkOutage: return "link-outage";
    case FaultKind::kThroughputCollapse: return "throughput-collapse";
    case FaultKind::kDecodeSpike: return "decode-spike";
    case FaultKind::kSysfsWriteFault: return "sysfs-write-fault";
    case FaultKind::kThermalCap: return "thermal-cap";
  }
  return "?";
}

bool FaultPlanConfig::any() const {
  return outage_rate_per_min > 0 || collapse_rate_per_min > 0 || fetch_failure_prob > 0 ||
         fetch_hang_prob > 0 || decode_spike_rate_per_min > 0 || sysfs_fault_rate_per_min > 0 ||
         thermal_cap_rate_per_min > 0;
}

FaultPlanConfig FaultPlanConfig::mild() {
  FaultPlanConfig c;
  c.outage_rate_per_min = 0.5;
  c.outage_mean_duration = sim::SimTime::seconds(1);
  c.outage_max_duration = sim::SimTime::seconds(4);
  c.collapse_rate_per_min = 1.0;
  c.collapse_factor = 0.25;
  c.fetch_failure_prob = 0.03;
  c.fetch_hang_prob = 0.01;
  c.decode_spike_rate_per_min = 0.5;
  c.decode_spike_factor = 1.8;
  c.sysfs_fault_rate_per_min = 0.5;
  c.thermal_cap_rate_per_min = 0.25;
  c.thermal_cap_fraction = 0.75;
  return c;
}

FaultPlanConfig FaultPlanConfig::harsh() {
  FaultPlanConfig c;
  c.outage_rate_per_min = 2.0;
  c.outage_mean_duration = sim::SimTime::seconds(3);
  c.outage_max_duration = sim::SimTime::seconds(12);
  c.collapse_rate_per_min = 3.0;
  c.collapse_factor = 0.08;
  c.fetch_failure_prob = 0.10;
  c.fetch_hang_prob = 0.04;
  c.decode_spike_rate_per_min = 2.0;
  c.decode_spike_factor = 3.0;
  c.sysfs_fault_rate_per_min = 2.0;
  c.sysfs_fault_mean_duration = sim::SimTime::seconds(5);
  c.thermal_cap_rate_per_min = 1.0;
  c.thermal_cap_fraction = 0.55;
  return c;
}

namespace {

/// Poisson arrivals at `rate_per_min` with exponential durations, clipped
/// to the horizon; a window never starts before the previous one of the
/// same kind ends.
void compile_kind(FaultKind kind, double rate_per_min, sim::SimTime mean_duration,
                  sim::SimTime max_duration, double magnitude, sim::Rng rng,
                  sim::SimTime horizon, std::vector<FaultWindow>& out,
                  double* einval_fraction = nullptr) {
  if (rate_per_min <= 0 || horizon <= sim::SimTime::zero()) return;
  const double mean_gap_s = 60.0 / rate_per_min;
  sim::SimTime t = sim::SimTime::zero();
  for (;;) {
    t += sim::SimTime::seconds_f(rng.exponential(mean_gap_s));
    if (t >= horizon) return;
    const double duration_s =
        std::min(rng.exponential(mean_duration.as_seconds_f()), max_duration.as_seconds_f());
    sim::SimTime end = t + sim::SimTime::seconds_f(std::max(duration_s, 1e-3));
    end = std::min(end, horizon);
    FaultWindow w{kind, t, end, magnitude};
    if (einval_fraction != nullptr) {
      // Sysfs windows encode the errno choice in the magnitude:
      // 1.0 => EINVAL, 0.0 => EACCES.
      w.magnitude = rng.bernoulli(*einval_fraction) ? 1.0 : 0.0;
    }
    out.push_back(w);
    t = end;
  }
}

}  // namespace

FaultPlan::FaultPlan(const FaultPlanConfig& config, sim::Rng rng, sim::SimTime horizon)
    : config_(config), horizon_(horizon) {
  // One forked substream per kind: re-tuning one kind leaves the others'
  // schedules untouched.
  compile_kind(FaultKind::kLinkOutage, config.outage_rate_per_min, config.outage_mean_duration,
               config.outage_max_duration, 0.0, rng.fork(1), horizon,
               windows_[static_cast<std::size_t>(FaultKind::kLinkOutage)]);
  compile_kind(FaultKind::kThroughputCollapse, config.collapse_rate_per_min,
               config.collapse_mean_duration, config.collapse_max_duration,
               config.collapse_factor, rng.fork(2), horizon,
               windows_[static_cast<std::size_t>(FaultKind::kThroughputCollapse)]);
  compile_kind(FaultKind::kDecodeSpike, config.decode_spike_rate_per_min,
               config.decode_spike_mean_duration, config.decode_spike_max_duration,
               config.decode_spike_factor, rng.fork(3), horizon,
               windows_[static_cast<std::size_t>(FaultKind::kDecodeSpike)]);
  double einval = config.sysfs_einval_fraction;
  compile_kind(FaultKind::kSysfsWriteFault, config.sysfs_fault_rate_per_min,
               config.sysfs_fault_mean_duration, config.sysfs_fault_max_duration, 0.0,
               rng.fork(4), horizon,
               windows_[static_cast<std::size_t>(FaultKind::kSysfsWriteFault)], &einval);
  compile_kind(FaultKind::kThermalCap, config.thermal_cap_rate_per_min,
               config.thermal_cap_mean_duration, config.thermal_cap_max_duration,
               config.thermal_cap_fraction, rng.fork(5), horizon,
               windows_[static_cast<std::size_t>(FaultKind::kThermalCap)]);
}

std::size_t FaultPlan::total_windows() const {
  std::size_t n = 0;
  for (const auto& ws : windows_) n += ws.size();
  return n;
}

}  // namespace vafs::fault
