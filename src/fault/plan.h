// Deterministic fault planning. A FaultPlan compiles a FaultPlanConfig
// (rates, durations, magnitudes per fault kind) into a seeded schedule of
// FaultWindows before the session starts. Everything downstream — the
// bandwidth overlay, the sysfs write interceptor, the thermal-cap
// excursions — replays that fixed schedule, so a faulted session is
// exactly as reproducible as a clean one: same seed, same schedule, same
// result, serial or parallel.
//
// Each fault kind draws from its own forked RNG substream, so enabling or
// re-tuning one kind never perturbs the schedule of another.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "simcore/rng.h"
#include "simcore/time.h"

namespace vafs::fault {

enum class FaultKind : std::uint8_t {
  kLinkOutage,          // bandwidth drops to zero
  kThroughputCollapse,  // bandwidth scaled down by a factor
  kDecodeSpike,         // decode cycle cost scaled up by a factor
  kSysfsWriteFault,     // scaling_setspeed writes fail (EACCES/EINVAL)
  kThermalCap,          // scaling_max_freq capped to a fraction of fmax
};
inline constexpr std::size_t kFaultKindCount = 5;

const char* fault_kind_name(FaultKind kind);

/// One scheduled excursion: [start, end) with a kind-specific magnitude
/// (collapse/spike factor, thermal-cap fraction, EINVAL-vs-EACCES flag;
/// unused for outages).
struct FaultWindow {
  FaultKind kind = FaultKind::kLinkOutage;
  sim::SimTime start;
  sim::SimTime end;
  double magnitude = 0.0;
};

/// Knobs for the planner. Rates are Poisson arrivals per minute; windows
/// of one kind never overlap (a new arrival during an active window is
/// pushed past its end). Durations are exponential with the given mean,
/// truncated at the max. All rates default to zero: a default config
/// injects nothing and costs nothing.
struct FaultPlanConfig {
  // Link outages: bandwidth is zero inside the window.
  double outage_rate_per_min = 0.0;
  sim::SimTime outage_mean_duration = sim::SimTime::seconds(2);
  sim::SimTime outage_max_duration = sim::SimTime::seconds(10);

  // Throughput collapses: bandwidth is scaled by collapse_factor.
  double collapse_rate_per_min = 0.0;
  double collapse_factor = 0.1;
  sim::SimTime collapse_mean_duration = sim::SimTime::seconds(4);
  sim::SimTime collapse_max_duration = sim::SimTime::seconds(20);

  // Per-fetch-attempt fates, drawn at request time (not windowed): the
  // server errors out after a delay, or goes silent (only the
  // downloader's timeout rescues a hang).
  double fetch_failure_prob = 0.0;
  sim::SimTime fetch_failure_mean_delay = sim::SimTime::millis(300);
  double fetch_hang_prob = 0.0;

  // Decode-cost spikes: frame decode cycles scaled by spike_factor.
  double decode_spike_rate_per_min = 0.0;
  double decode_spike_factor = 2.5;
  sim::SimTime decode_spike_mean_duration = sim::SimTime::seconds(3);
  sim::SimTime decode_spike_max_duration = sim::SimTime::seconds(12);

  // Sysfs write faults on scaling_setspeed: writes inside a window fail
  // with EINVAL (probability sysfs_einval_fraction, drawn per window) or
  // EACCES otherwise.
  double sysfs_fault_rate_per_min = 0.0;
  sim::SimTime sysfs_fault_mean_duration = sim::SimTime::seconds(3);
  sim::SimTime sysfs_fault_max_duration = sim::SimTime::seconds(15);
  double sysfs_einval_fraction = 0.5;

  // Thermal-cap excursions: scaling_max_freq capped to
  // thermal_cap_fraction x cpuinfo_max_freq for the window.
  double thermal_cap_rate_per_min = 0.0;
  double thermal_cap_fraction = 0.6;
  sim::SimTime thermal_cap_mean_duration = sim::SimTime::seconds(5);
  sim::SimTime thermal_cap_max_duration = sim::SimTime::seconds(30);

  /// True if any fault source is enabled. run_session skips the whole
  /// fault layer when false, keeping the zero-fault hot path untouched.
  bool any() const;

  /// Presets used by the chaos bench and the fuzzer.
  static FaultPlanConfig mild();
  static FaultPlanConfig harsh();
};

/// The compiled schedule: per-kind sorted, non-overlapping windows over
/// [0, horizon). Per-fetch fates stay probabilistic (they are drawn by the
/// injector from its own stream at request time) — the plan only carries
/// their probabilities via config().
class FaultPlan {
 public:
  FaultPlan() = default;
  FaultPlan(const FaultPlanConfig& config, sim::Rng rng, sim::SimTime horizon);

  const FaultPlanConfig& config() const { return config_; }
  const std::vector<FaultWindow>& windows(FaultKind kind) const {
    return windows_[static_cast<std::size_t>(kind)];
  }
  std::size_t total_windows() const;
  sim::SimTime horizon() const { return horizon_; }

 private:
  FaultPlanConfig config_;
  sim::SimTime horizon_;
  std::array<std::vector<FaultWindow>, kFaultKindCount> windows_;
};

}  // namespace vafs::fault
