#include "fleet/checkpoint.h"

#include <bit>
#include <fstream>
#include <sstream>

#include "fleet/io.h"
#include "fleet/textio.h"
#include "simcore/stats.h"

namespace vafs::fleet {
namespace {

constexpr std::uint64_t kFnvOffset = 0xCBF29CE484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001B3ULL;

std::uint64_t checksum(const char* data, std::size_t n) {
  std::uint64_t h = kFnvOffset;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= kFnvPrime;
  }
  return h;
}

/// Reads one line and tokenizes on single spaces. Returns false at EOF.
bool next_line(std::istringstream& in, std::vector<std::string>* tokens) {
  std::string line;
  if (!std::getline(in, line)) return false;
  split_fields(line, tokens);
  return true;
}

std::string serialize(const CheckpointState& state) {
  const auto& metrics = exp::Aggregate::metrics();
  std::string out;
  out += "vafs-fleet-checkpoint " + std::to_string(kCheckpointSchema) + "\n";
  const auto field = [&out](const char* name, std::uint64_t v, bool hex) {
    out += name;
    out += ' ';
    if (hex) {
      append_hex64(out, v);
    } else {
      out += std::to_string(v);
    }
    out += '\n';
  };
  field("fingerprint", state.fingerprint, true);
  field("shards_done", state.shards_done, false);
  field("tasks_done", state.tasks_done, false);
  field("digest_chain", state.digest_chain, true);
  field("spool_offset", state.spool_offset, false);
  field("quarantine_offset", state.quarantine_offset, false);
  field("scenarios", state.aggregates.size(), false);
  for (std::size_t s = 0; s < state.aggregates.size(); ++s) {
    const exp::Aggregate& agg = state.aggregates[s];
    out += "scenario " + std::to_string(s) + " runs " + std::to_string(agg.runs) +
           " finished " + (agg.all_finished ? std::string("1") : std::string("0")) + "\n";
    for (std::size_t m = 0; m < metrics.size(); ++m) {
      const sim::OnlineStats::State st = (agg.*metrics[m].member).state();
      out += "m " + std::to_string(m) + ' ' + std::to_string(st.n) + ' ';
      append_hex64(out, std::bit_cast<std::uint64_t>(st.mean));
      out += ' ';
      append_hex64(out, std::bit_cast<std::uint64_t>(st.m2));
      out += ' ';
      append_hex64(out, std::bit_cast<std::uint64_t>(st.min));
      out += ' ';
      append_hex64(out, std::bit_cast<std::uint64_t>(st.max));
      out += '\n';
    }
  }
  field("failures", state.failures.size(), false);
  for (const CheckpointFailure& f : state.failures) {
    out += "failure " + std::to_string(f.task_index) + ' ' + std::to_string(f.seed) + ' ' +
           hex_encode(f.message) + "\n";
  }
  field("quarantined", state.quarantined.size(), false);
  for (const CheckpointQuarantine& q : state.quarantined) {
    out += "quarantine " + std::to_string(q.task_index) + ' ' + std::to_string(q.seed) + ' ' +
           std::to_string(q.attempts) + ' ' + hex_encode(q.fates) + ' ' +
           hex_encode(q.stderr_tail) + ' ' + std::to_string(q.last_trace_events) + ' ';
    append_hex64(out, q.last_trace_digest);
    out += '\n';
  }
  out += "end ";
  append_hex64(out, checksum(out.data(), out.size()));
  out += '\n';
  return out;
}

}  // namespace

bool write_checkpoint(const std::string& path, const CheckpointState& state, std::string* error) {
  return write_file_durable(path, serialize(state), "checkpoint", "manifest", error);
}

bool read_checkpoint(const std::string& path, CheckpointState* state, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *error = "checkpoint: cannot open '" + path + "'";
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string content = buffer.str();

  // Integrity first: the file must end with "end <hex64>\n" whose digest
  // covers every byte before that line. Anything else is truncation or
  // corruption — reject before interpreting a single field.
  const auto fail = [&](const std::string& why) {
    *error = "checkpoint '" + path + "': " + why;
    return false;
  };
  if (content.empty() || content.back() != '\n') {
    return fail("truncated (no terminating end line)");
  }
  const std::size_t last_line_start = content.rfind('\n', content.size() - 2) + 1;
  const std::string last_line = content.substr(last_line_start, content.size() - last_line_start - 1);
  std::uint64_t stated = 0;
  if (last_line.size() != 4 + 16 || last_line.compare(0, 4, "end ") != 0 ||
      !parse_hex64(last_line.substr(4), &stated)) {
    return fail("truncated (malformed end line)");
  }
  // The end line's own "end " prefix is inside the checksummed region —
  // serialize() folds it before appending the digest.
  const std::uint64_t computed = checksum(content.data(), last_line_start + 4);
  if (computed != stated) {
    return fail("corrupt (checksum mismatch: file may be truncated or bit-flipped)");
  }

  std::istringstream lines(content.substr(0, last_line_start));
  std::vector<std::string> t;
  const auto expect_field = [&](const char* name, std::uint64_t* out, bool hex) {
    if (!next_line(lines, &t) || t.size() != 2 || t[0] != name) return false;
    return hex ? parse_hex64(t[1], out) : parse_u64(t[1], out);
  };

  if (!next_line(lines, &t) || t.size() != 2 || t[0] != "vafs-fleet-checkpoint") {
    return fail("not a fleet checkpoint manifest");
  }
  std::uint64_t schema = 0;
  if (!parse_u64(t[1], &schema) || schema != static_cast<std::uint64_t>(kCheckpointSchema)) {
    return fail("unsupported schema '" + t[1] + "' (want " + std::to_string(kCheckpointSchema) +
                ")");
  }

  CheckpointState cs;
  std::uint64_t scenario_count = 0;
  if (!expect_field("fingerprint", &cs.fingerprint, true)) return fail("bad fingerprint line");
  if (!expect_field("shards_done", &cs.shards_done, false)) return fail("bad shards_done line");
  if (!expect_field("tasks_done", &cs.tasks_done, false)) return fail("bad tasks_done line");
  if (!expect_field("digest_chain", &cs.digest_chain, true)) return fail("bad digest_chain line");
  if (!expect_field("spool_offset", &cs.spool_offset, false)) return fail("bad spool_offset line");
  if (!expect_field("quarantine_offset", &cs.quarantine_offset, false)) {
    return fail("bad quarantine_offset line");
  }
  if (!expect_field("scenarios", &scenario_count, false)) return fail("bad scenarios line");

  const auto& metrics = exp::Aggregate::metrics();
  cs.aggregates.resize(scenario_count);
  for (std::uint64_t s = 0; s < scenario_count; ++s) {
    std::uint64_t index = 0;
    std::uint64_t runs = 0;
    std::uint64_t finished = 0;
    if (!next_line(lines, &t) || t.size() != 6 || t[0] != "scenario" ||
        !parse_u64(t[1], &index) || index != s || t[2] != "runs" || !parse_u64(t[3], &runs) ||
        t[4] != "finished" || !parse_u64(t[5], &finished) || finished > 1) {
      return fail("bad scenario header for scenario " + std::to_string(s));
    }
    exp::Aggregate& agg = cs.aggregates[s];
    agg.runs = static_cast<int>(runs);
    agg.all_finished = finished == 1;
    for (std::size_t m = 0; m < metrics.size(); ++m) {
      std::uint64_t mi = 0;
      sim::OnlineStats::State st;
      std::uint64_t mean_bits = 0;
      std::uint64_t m2_bits = 0;
      std::uint64_t min_bits = 0;
      std::uint64_t max_bits = 0;
      if (!next_line(lines, &t) || t.size() != 7 || t[0] != "m" || !parse_u64(t[1], &mi) ||
          mi != m || !parse_u64(t[2], &st.n) || !parse_hex64(t[3], &mean_bits) ||
          !parse_hex64(t[4], &m2_bits) || !parse_hex64(t[5], &min_bits) ||
          !parse_hex64(t[6], &max_bits)) {
        return fail("bad metric line " + std::to_string(m) + " in scenario " + std::to_string(s));
      }
      st.mean = std::bit_cast<double>(mean_bits);
      st.m2 = std::bit_cast<double>(m2_bits);
      st.min = std::bit_cast<double>(min_bits);
      st.max = std::bit_cast<double>(max_bits);
      agg.*metrics[m].member = sim::OnlineStats::from_state(st);
    }
  }

  std::uint64_t failure_count = 0;
  if (!expect_field("failures", &failure_count, false)) return fail("bad failures line");
  cs.failures.resize(failure_count);
  for (std::uint64_t f = 0; f < failure_count; ++f) {
    CheckpointFailure& cf = cs.failures[f];
    if (!next_line(lines, &t) || t.size() != 4 || t[0] != "failure" ||
        !parse_u64(t[1], &cf.task_index) || !parse_u64(t[2], &cf.seed) ||
        !hex_decode(t[3], &cf.message)) {
      return fail("bad failure line " + std::to_string(f));
    }
  }

  std::uint64_t quarantine_count = 0;
  if (!expect_field("quarantined", &quarantine_count, false)) return fail("bad quarantined line");
  cs.quarantined.resize(quarantine_count);
  for (std::uint64_t q = 0; q < quarantine_count; ++q) {
    CheckpointQuarantine& cq = cs.quarantined[q];
    if (!next_line(lines, &t) || t.size() != 8 || t[0] != "quarantine" ||
        !parse_u64(t[1], &cq.task_index) || !parse_u64(t[2], &cq.seed) ||
        !parse_u64(t[3], &cq.attempts) || !hex_decode(t[4], &cq.fates) ||
        !hex_decode(t[5], &cq.stderr_tail) || !parse_u64(t[6], &cq.last_trace_events) ||
        !parse_hex64(t[7], &cq.last_trace_digest)) {
      return fail("bad quarantine line " + std::to_string(q));
    }
  }
  if (next_line(lines, &t)) return fail("trailing content after quarantine list");

  *state = std::move(cs);
  return true;
}

}  // namespace vafs::fleet
