// Checkpoint manifests for resumable fleet runs.
//
// A manifest captures the fold state at a shard boundary: how many shards
// (and tasks) have been folded, every scenario's partial Aggregate, the
// running trace-digest chain, the failure list and the spool offset. The
// format is line-oriented text (schema v1); doubles are serialized as
// IEEE-754 hex bit patterns so a write → read round trip is bit-exact —
// an aggregate restored from a manifest continues folding exactly as the
// uninterrupted run would have.
//
// Integrity: the last line carries an FNV-1a digest of every byte above
// it. A truncated, padded or bit-flipped manifest fails that check and is
// rejected with a pointed error instead of resuming from garbage. Writes
// go to a sibling .tmp and rename into place, so a kill mid-write leaves
// the previous manifest intact.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "exp/aggregate.h"

namespace vafs::fleet {

inline constexpr int kCheckpointSchema = 1;

/// One failed task, in canonical task order (mirrors exp::RunFailure but
/// keyed by absolute task index so it survives resharding of the report).
struct CheckpointFailure {
  std::uint64_t task_index = 0;
  std::uint64_t seed = 0;
  std::string message;
};

struct CheckpointState {
  std::uint64_t fingerprint = 0;
  std::uint64_t shards_done = 0;
  std::uint64_t tasks_done = 0;
  std::uint64_t digest_chain = 0;
  /// Bytes of finalized spool rows at the cut; a resume truncates the
  /// spool file back to this offset before appending.
  std::uint64_t spool_offset = 0;
  /// One partial aggregate per scenario, grid order.
  std::vector<exp::Aggregate> aggregates;
  std::vector<CheckpointFailure> failures;
};

/// Serializes `state` to `path` atomically (tmp + rename). Returns false
/// and fills `error` on I/O failure.
bool write_checkpoint(const std::string& path, const CheckpointState& state, std::string* error);

/// Parses `path` into `state`. Returns false with a descriptive `error`
/// for I/O failures, schema mismatches, truncation or corruption.
bool read_checkpoint(const std::string& path, CheckpointState* state, std::string* error);

}  // namespace vafs::fleet
