// Checkpoint manifests for resumable fleet runs.
//
// A manifest captures the fold state at a shard boundary: how many shards
// (and tasks) have been folded, every scenario's partial Aggregate, the
// running trace-digest chain, the failure and quarantine lists and the
// spool/quarantine-log offsets. The format is line-oriented text (schema
// v2); doubles are serialized as IEEE-754 hex bit patterns so a
// write → read round trip is bit-exact — an aggregate restored from a
// manifest continues folding exactly as the uninterrupted run would have.
//
// Integrity: the last line carries an FNV-1a digest of every byte above
// it. A truncated, padded or bit-flipped manifest fails that check and is
// rejected with a pointed error instead of resuming from garbage.
// Durability: the body is written to a sibling .tmp with every write()
// return checked, fsync'd, renamed into place, and the directory fsync'd —
// a kill or ENOSPC at any byte leaves the previous manifest intact and is
// reported as a clean refusal (fleet/io.h injects those faults in tests).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "exp/aggregate.h"

namespace vafs::fleet {

/// v2 adds the quarantine list + quarantine-log offset (supervised runs);
/// plain in-process runs write both empty. v1 manifests are refused.
inline constexpr int kCheckpointSchema = 2;

/// One failed task, in canonical task order (mirrors exp::RunFailure but
/// keyed by absolute task index so it survives resharding of the report).
struct CheckpointFailure {
  std::uint64_t task_index = 0;
  std::uint64_t seed = 0;
  std::string message;
};

/// One quarantined task (supervised runs only): a task whose worker died
/// max_task_attempts times, excluded from aggregates and the digest chain.
/// Mirrors the quarantine.jsonl record so a resumed supervisor can report
/// previously-quarantined tasks without re-parsing the log.
struct CheckpointQuarantine {
  std::uint64_t task_index = 0;
  std::uint64_t seed = 0;
  std::uint64_t attempts = 0;
  /// Comma-joined per-attempt fate taxonomy, e.g. "crash:SIGSEGV,exit:41".
  std::string fates;
  /// Captured stderr of the final attempt's worker (bounded tail).
  std::string stderr_tail;
  /// Last obs checkpoint window the worker reported for the in-flight
  /// task: events recorded and streaming digest at the last 64-event
  /// tracer checkpoint before death.
  std::uint64_t last_trace_events = 0;
  std::uint64_t last_trace_digest = 0;
};

struct CheckpointState {
  std::uint64_t fingerprint = 0;
  std::uint64_t shards_done = 0;
  std::uint64_t tasks_done = 0;
  std::uint64_t digest_chain = 0;
  /// Bytes of finalized spool rows at the cut; a resume truncates the
  /// spool file back to this offset before appending.
  std::uint64_t spool_offset = 0;
  /// Bytes of finalized quarantine.jsonl records at the cut (same
  /// truncate-on-resume contract as the spool).
  std::uint64_t quarantine_offset = 0;
  /// One partial aggregate per scenario, grid order.
  std::vector<exp::Aggregate> aggregates;
  std::vector<CheckpointFailure> failures;
  /// Quarantined tasks folded so far, canonical task order.
  std::vector<CheckpointQuarantine> quarantined;
};

/// Serializes `state` to `path` atomically and durably (tmp + fsync +
/// rename + directory fsync). Returns false and fills `error` on any I/O
/// failure — the previous manifest at `path`, if any, is left intact.
bool write_checkpoint(const std::string& path, const CheckpointState& state, std::string* error);

/// Parses `path` into `state`. Returns false with a descriptive `error`
/// for I/O failures, schema mismatches, truncation or corruption.
bool read_checkpoint(const std::string& path, CheckpointState* state, std::string* error);

}  // namespace vafs::fleet
