#include "fleet/fleet_runner.h"

#include <atomic>
#include <condition_variable>
#include <deque>
#include <filesystem>
#include <map>
#include <mutex>
#include <thread>
#include <utility>

#include "exp/runner.h"
#include "fleet/shard_plan.h"
#include "obs/trace.h"

namespace vafs::fleet {
namespace {

/// Per-worker shard deques with stealing. Shards are dealt round-robin in
/// id order, so each worker's deque front holds its lowest id and
/// self-service pops keep the fold frontier moving; thieves take from the
/// *back* of a victim — the work farthest from the frontier — leaving the
/// owner its frontier-adjacent shards.
class ShardQueue {
 public:
  ShardQueue(std::size_t begin, std::size_t end, std::size_t workers) : deques_(workers) {
    for (std::size_t id = begin; id < end; ++id) {
      deques_[(id - begin) % workers].q.push_back(id);
    }
  }

  bool take(std::size_t worker, std::size_t* out) {
    if (pop(worker, out, /*front=*/true)) return true;
    for (std::size_t i = 1; i < deques_.size(); ++i) {
      if (pop((worker + i) % deques_.size(), out, /*front=*/false)) return true;
    }
    return false;
  }

 private:
  struct Deque {
    std::mutex m;
    std::deque<std::size_t> q;
  };

  bool pop(std::size_t w, std::size_t* out, bool front) {
    Deque& d = deques_[w];
    std::lock_guard<std::mutex> lock(d.m);
    if (d.q.empty()) return false;
    *out = front ? d.q.front() : d.q.back();
    if (front) {
      d.q.pop_front();
    } else {
      d.q.pop_back();
    }
    return true;
  }

  std::vector<Deque> deques_;
};

std::string manifest_path(const std::string& dir) { return dir + "/manifest.ckpt"; }

}  // namespace

FleetResult run_fleet(const std::vector<exp::ScenarioSpec>& scenarios, const FleetOptions& opts) {
  FleetResult result;
  result.scenarios.reserve(scenarios.size());
  for (const auto& spec : scenarios) result.scenarios.push_back(FleetScenario{spec, {}});

  const ShardPlan plan(scenarios.size(), opts.seeds.size(), opts.shard_size);
  result.fingerprint = grid_fingerprint(scenarios, opts.seeds, plan.shard_size());
  result.shard_count = plan.shard_count();

  const bool checkpointing = !opts.checkpoint_dir.empty();
  if (checkpointing) {
    std::error_code ec;
    std::filesystem::create_directories(opts.checkpoint_dir, ec);
    if (ec) {
      result.error = "fleet: cannot create checkpoint dir '" + opts.checkpoint_dir +
                     "': " + ec.message();
      return result;
    }
  }

  // ---- Resume: restore the fold state from the manifest, if any.
  std::uint64_t frontier = 0;  // shards folded so far
  std::uint64_t spool_resume_offset = 0;
  std::uint64_t quarantine_offset = 0;  // carried through for supervised manifests
  if (opts.resume && checkpointing &&
      std::filesystem::exists(manifest_path(opts.checkpoint_dir))) {
    CheckpointState cs;
    std::string error;
    if (!read_checkpoint(manifest_path(opts.checkpoint_dir), &cs, &error)) {
      result.error = "fleet: resume failed: " + error;
      return result;
    }
    if (cs.fingerprint != result.fingerprint) {
      result.error =
          "fleet: resume refused: the manifest was written for a different grid, seed list or "
          "shard size (fingerprint mismatch)";
      return result;
    }
    if (cs.aggregates.size() != scenarios.size() || cs.shards_done > result.shard_count) {
      result.error = "fleet: resume refused: manifest shape does not match the grid";
      return result;
    }
    for (std::size_t s = 0; s < scenarios.size(); ++s) {
      result.scenarios[s].agg = cs.aggregates[s];
    }
    result.failures = std::move(cs.failures);
    result.quarantined = std::move(cs.quarantined);
    result.digest_chain = cs.digest_chain;
    result.sessions_resumed = cs.tasks_done;
    frontier = cs.shards_done;
    spool_resume_offset = cs.spool_offset;
    quarantine_offset = cs.quarantine_offset;
  }

  // ---- Spool.
  SpoolOptions spool_opts = opts.spool;
  if (spool_opts.format != SpoolFormat::kNone && spool_opts.path.empty() && checkpointing) {
    spool_opts.path = opts.checkpoint_dir +
                      (spool_opts.format == SpoolFormat::kCsv ? "/spool.csv" : "/spool.jsonl");
  }
  Spool spool;
  {
    std::string error;
    if (!spool.open(spool_opts, spool_resume_offset, &error)) {
      result.error = "fleet: " + error;
      return result;
    }
  }

  std::uint64_t tasks_done = result.sessions_resumed;
  result.shards_done = frontier;

  const auto write_manifest = [&](std::string* error) {
    // sync, not flush: the manifest's spool_offset must never point past
    // bytes a power loss could still lose.
    if (!spool.sync(error)) return false;
    CheckpointState cs;
    cs.fingerprint = result.fingerprint;
    cs.shards_done = result.shards_done;
    cs.tasks_done = tasks_done;
    cs.digest_chain = result.digest_chain;
    cs.spool_offset = spool.offset();
    cs.quarantine_offset = quarantine_offset;
    cs.aggregates.reserve(result.scenarios.size());
    for (const auto& fs : result.scenarios) cs.aggregates.push_back(fs.agg);
    cs.failures = result.failures;
    cs.quarantined = result.quarantined;
    return write_checkpoint(manifest_path(opts.checkpoint_dir), cs, error);
  };

  // ---- Workers: execute shards, deposit outcomes into a reorder buffer.
  const std::size_t shard_count = result.shard_count;
  const std::size_t workers = static_cast<std::size_t>(
      std::max(1, std::min<int>(opts.jobs, static_cast<int>(shard_count - frontier) > 0
                                               ? static_cast<int>(shard_count - frontier)
                                               : 1)));
  const std::size_t max_pending =
      opts.max_pending_shards > 0 ? opts.max_pending_shards : 2 * workers + 2;

  std::mutex mu;
  std::condition_variable space_cv;  // workers: room to start a new shard
  std::condition_variable fold_cv;   // folder: the frontier shard arrived
  std::map<std::size_t, std::vector<exp::TaskOutcome>> pending;
  bool stop = false;

  ShardQueue queue(frontier, shard_count, workers);
  const auto worker_body = [&](std::size_t w) {
    core::SessionArena arena;
    // Batch mode: per-lane arenas (an EventQueue::Arena serves one live
    // queue at a time), persisted across shards for allocation-free reuse.
    std::deque<core::SessionArena> lane_arenas;
    const std::size_t batch = opts.batch > 1 ? static_cast<std::size_t>(opts.batch) : 1;
    for (;;) {
      {
        // Backpressure gates *starting* work, never depositing it: the
        // reorder buffer stays <= max_pending + workers shards, and the
        // worker holding the frontier shard can always hand it over.
        std::unique_lock<std::mutex> lock(mu);
        space_cv.wait(lock, [&] { return stop || pending.size() < max_pending; });
        if (stop) return;
      }
      std::size_t sid = 0;
      if (!queue.take(w, &sid)) return;
      const Shard shard = plan.shard(sid);
      std::vector<exp::TaskOutcome> outcomes;
      outcomes.reserve(shard.task_count);
      if (batch > 1) {
        // Pack the shard's tasks — still in canonical order — into
        // lockstep sub-batches; the last pack is ragged when batch does
        // not divide the shard. Outcomes land in the same order the
        // serial loop below would produce them.
        for (std::size_t lo = 0; lo < shard.task_count; lo += batch) {
          const std::size_t hi = std::min(shard.task_count, lo + batch);
          std::vector<exp::BatchTask> pack;
          pack.reserve(hi - lo);
          for (std::size_t i = lo; i < hi; ++i) {
            const TaskRef ref = plan.task(shard.first_task + i);
            core::SessionHooks hooks;
            hooks.decision_backend = opts.decision_backend;
            pack.push_back(exp::BatchTask{&scenarios[ref.scenario],
                                          opts.seeds[ref.seed_index], std::move(hooks)});
          }
          for (auto& o :
               exp::run_task_batch(pack, opts.trace, lane_arenas, opts.task_timeout_ms)) {
            outcomes.push_back(std::move(o));
          }
        }
      } else {
        for (std::size_t i = 0; i < shard.task_count; ++i) {
          const TaskRef ref = plan.task(shard.first_task + i);
          core::SessionHooks hooks;
          hooks.decision_backend = opts.decision_backend;
          outcomes.push_back(exp::run_one_task(scenarios[ref.scenario],
                                               opts.seeds[ref.seed_index], std::move(hooks),
                                               opts.trace, &arena, opts.task_timeout_ms));
        }
      }
      {
        std::lock_guard<std::mutex> lock(mu);
        if (stop) return;  // a stopped run discards undelivered shards
        pending.emplace(sid, std::move(outcomes));
      }
      fold_cv.notify_one();
    }
  };

  std::vector<std::thread> pool;
  if (frontier < shard_count) {
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(worker_body, w);
  }

  const auto shutdown = [&] {
    {
      std::lock_guard<std::mutex> lock(mu);
      stop = true;
    }
    space_cv.notify_all();
    for (auto& th : pool) th.join();
    pool.clear();
  };

  // ---- Fold loop: strictly in shard-id order == canonical task order.
  for (std::size_t next = frontier; next < shard_count; ++next) {
    std::vector<exp::TaskOutcome> outcomes;
    {
      std::unique_lock<std::mutex> lock(mu);
      fold_cv.wait(lock, [&] { return pending.count(next) > 0; });
      outcomes = std::move(pending[next]);
      pending.erase(next);
    }
    space_cv.notify_all();

    const Shard shard = plan.shard(next);
    for (std::size_t i = 0; i < shard.task_count; ++i) {
      const std::uint64_t task_index = shard.first_task + i;
      const TaskRef ref = plan.task(task_index);
      exp::TaskOutcome& out = outcomes[i];
      FleetScenario& fs = result.scenarios[ref.scenario];
      if (out.ok()) {
        fs.agg.add(out.result);
        spool.append(fs.spec, opts.seeds[ref.seed_index], out.result);
      } else {
        result.failures.push_back(CheckpointFailure{task_index, opts.seeds[ref.seed_index],
                                                    std::move(out.error)});
        fs.agg.all_finished = false;
        spool.append_failure(fs.spec, opts.seeds[ref.seed_index]);
      }
      // Failed tasks fold a zero digest, keeping the chain aligned with
      // the task order regardless of which tasks failed.
      result.digest_chain = obs::chain_digest(result.digest_chain, out.result.trace_digest);
    }
    tasks_done += shard.task_count;
    result.sessions_run += shard.task_count;
    result.shards_done = next + 1;

    const bool last = next + 1 == shard_count;
    if (checkpointing &&
        (last || (result.shards_done % opts.checkpoint_every_shards) == 0)) {
      std::string error;
      if (!write_manifest(&error)) {
        result.error = "fleet: " + error;
        shutdown();
        return result;
      }
    }
    if (opts.on_progress && !opts.on_progress(result.shards_done, shard_count)) {
      result.stopped = true;
      if (checkpointing) {
        std::string error;
        if (!write_manifest(&error)) result.error = "fleet: " + error;
      }
      break;
    }
  }

  shutdown();
  {
    std::string error;
    if (!spool.close(&error) && result.error.empty()) result.error = "fleet: " + error;
  }
  return result;
}

FleetResult run_fleet(const exp::ExperimentGrid& grid, const FleetOptions& opts) {
  return run_fleet(grid.scenarios(), opts);
}

}  // namespace vafs::fleet
