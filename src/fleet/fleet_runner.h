// Fleet-scale sharded session runner.
//
// run_fleet executes a scenario × seed grid of any size at bounded memory:
// the grid is cut into deterministic shards (shard_plan.h), shards run on
// a work-stealing pool, and a folding loop on the calling thread folds
// each completed shard into per-scenario Aggregates *strictly in shard-id
// order* (a reorder buffer holds early finishers). Because the fold order
// is the canonical (scenario, seed) order and Aggregate::add is applied
// per session, the final aggregates are bit-identical to a serial
// exp::run_grid over the same grid — any job count, any interleaving.
//
// Memory never holds more than (max_pending_shards + jobs) shards of
// SessionResults: workers stall before *starting* a new shard while the
// reorder buffer is full (deposits are never gated, so the fold frontier
// always makes progress — no deadlock). O(shards outstanding), never
// O(sessions).
//
// Kill/resume: with a checkpoint directory set, the folder writes a
// manifest (checkpoint.h) every checkpoint_every_shards folds and on
// clean stops. A resumed run restores the aggregates, digest chain,
// failure list and spool offset bit-exactly and re-runs only the shards
// past the frontier — the final state is bit-identical to a run that was
// never killed, at any kill point, repeatedly.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "exp/aggregate.h"
#include "exp/grid.h"
#include "fleet/checkpoint.h"
#include "fleet/spool.h"

namespace vafs::fleet {

struct FleetOptions {
  /// Worker threads; <= 1 still uses one worker thread (the calling
  /// thread folds).
  int jobs = 1;
  std::vector<std::uint64_t> seeds = {101, 202, 303};
  /// Sessions per shard (the checkpoint/fold granularity).
  std::size_t shard_size = 64;
  /// Sessions advanced in lockstep per worker (core::SessionBatch),
  /// packed within each shard; 1 = the classic serial path. The digest
  /// chain, checkpoint/resume bytes and fold order are identical at every
  /// batch size.
  int batch = 1;

  /// Directory for the checkpoint manifest; empty disables checkpointing.
  /// Created if missing.
  std::string checkpoint_dir;
  /// Manifest rewrite cadence, in folded shards.
  std::uint64_t checkpoint_every_shards = 64;
  /// Resume from checkpoint_dir's manifest (fresh start if none exists;
  /// hard error if one exists but is corrupt or for a different grid).
  bool resume = false;

  /// Attach a digest-only tracer per session and chain the per-session
  /// digests in fold order (the fingerprint kill/resume runs compare).
  bool trace = true;

  /// Per-task cooperative wall-clock deadline, 0 = unlimited
  /// (SessionConfig::task_timeout_ms): an over-budget session becomes a
  /// captured task failure instead of wedging its worker.
  std::int64_t task_timeout_ms = 0;

  /// Optional per-session row spool. With an empty path and a checkpoint
  /// directory set, the spool lands next to the manifest.
  SpoolOptions spool;

  /// Completed-but-unfolded shards the reorder buffer may hold before
  /// workers stall; 0 = 2 * jobs + 2.
  std::size_t max_pending_shards = 0;

  /// Fires on the folding thread after every folded shard. Return false
  /// to stop cleanly: a final checkpoint is written and the run returns
  /// with stopped = true. bench_fleet routes SIGTERM through this; the
  /// differential tests use it as a deterministic kill switch.
  std::function<bool(std::uint64_t shards_done, std::uint64_t shard_count)> on_progress;

  /// Optional decision backend (not owned, thread-safe, outlives the run)
  /// for every session's VAFS controller — the fleet-as-load-generator
  /// mode: each worker thread drives its own daemon connection. Digest
  /// chains are bit-identical to in-process decisions.
  core::DecisionBackend* decision_backend = nullptr;
};

struct FleetScenario {
  exp::ScenarioSpec spec;
  exp::Aggregate agg;
};

struct FleetResult {
  std::vector<FleetScenario> scenarios;
  /// Failed tasks in canonical task order (resumed + fresh).
  std::vector<CheckpointFailure> failures;
  /// Quarantined tasks carried through from a supervised run's manifest
  /// (run_fleet itself never quarantines; a resume preserves the list so
  /// the manifest round-trips losslessly between the two runners).
  std::vector<CheckpointQuarantine> quarantined;
  /// chain_digest fold of every task's trace digest, canonical order.
  std::uint64_t digest_chain = 0;
  std::uint64_t fingerprint = 0;
  std::uint64_t shard_count = 0;
  std::uint64_t shards_done = 0;      // folded, including resumed shards
  std::uint64_t sessions_run = 0;     // executed by this call
  std::uint64_t sessions_resumed = 0; // restored from the manifest
  /// on_progress ended the run before the last shard folded.
  bool stopped = false;
  /// Non-empty: setup or checkpoint/spool I/O failed; partial results are
  /// whatever had folded by then.
  std::string error;

  bool ok() const { return error.empty(); }
  bool complete() const { return ok() && !stopped && shards_done == shard_count; }
};

FleetResult run_fleet(const std::vector<exp::ScenarioSpec>& scenarios, const FleetOptions& opts);
FleetResult run_fleet(const exp::ExperimentGrid& grid, const FleetOptions& opts);

}  // namespace vafs::fleet
