#include "fleet/io.h"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

namespace vafs::fleet {

std::function<std::size_t(std::size_t)> IoHooks::write_gate;
std::function<bool()> IoHooks::fsync_gate;

void IoHooks::reset() {
  write_gate = nullptr;
  fsync_gate = nullptr;
}

bool write_all(int fd, const char* data, std::size_t n, std::string* error) {
  while (n > 0) {
    std::size_t allow = n;
    if (IoHooks::write_gate) {
      allow = IoHooks::write_gate(n);
      if (allow > n) allow = n;
    }
    const bool gated_short = allow < n;
    ssize_t wrote = 0;
    if (allow > 0) {
      wrote = ::write(fd, data, allow);
      if (wrote < 0) {
        if (errno == EINTR) continue;
        *error = std::strerror(errno);
        return false;
      }
    }
    if (gated_short) {
      // The injected "disk" accepted a prefix and then filled up.
      *error = std::strerror(ENOSPC);
      return false;
    }
    data += wrote;
    n -= static_cast<std::size_t>(wrote);
  }
  return true;
}

bool fsync_fd(int fd, std::string* error) {
  if (IoHooks::fsync_gate && !IoHooks::fsync_gate()) {
    *error = std::strerror(EIO);
    return false;
  }
  while (::fsync(fd) != 0) {
    if (errno == EINTR) continue;
    *error = std::strerror(errno);
    return false;
  }
  return true;
}

bool fsync_parent_dir(const std::string& path, std::string* error) {
  const std::size_t slash = path.rfind('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash + 1);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return true;  // not fatal: the rename itself already landed
  std::string sync_error;
  const bool ok = fsync_fd(fd, &sync_error);
  ::close(fd);
  if (!ok) {
    *error = "fsync of directory '" + dir + "': " + sync_error;
    return false;
  }
  return true;
}

}  // namespace vafs::fleet
