#include "fleet/io.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

namespace vafs::fleet {

std::function<std::size_t(std::size_t)> IoHooks::write_gate;
std::function<bool()> IoHooks::fsync_gate;

void IoHooks::reset() {
  write_gate = nullptr;
  fsync_gate = nullptr;
}

bool write_all(int fd, const char* data, std::size_t n, std::string* error) {
  while (n > 0) {
    std::size_t allow = n;
    if (IoHooks::write_gate) {
      allow = IoHooks::write_gate(n);
      if (allow > n) allow = n;
    }
    const bool gated_short = allow < n;
    ssize_t wrote = 0;
    if (allow > 0) {
      wrote = ::write(fd, data, allow);
      if (wrote < 0) {
        if (errno == EINTR) continue;
        *error = std::strerror(errno);
        return false;
      }
    }
    if (gated_short) {
      // The injected "disk" accepted a prefix and then filled up.
      *error = std::strerror(ENOSPC);
      return false;
    }
    data += wrote;
    n -= static_cast<std::size_t>(wrote);
  }
  return true;
}

bool fsync_fd(int fd, std::string* error) {
  if (IoHooks::fsync_gate && !IoHooks::fsync_gate()) {
    *error = std::strerror(EIO);
    return false;
  }
  while (::fsync(fd) != 0) {
    if (errno == EINTR) continue;
    *error = std::strerror(errno);
    return false;
  }
  return true;
}

bool fsync_parent_dir(const std::string& path, std::string* error) {
  const std::size_t slash = path.rfind('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash + 1);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return true;  // not fatal: the rename itself already landed
  std::string sync_error;
  const bool ok = fsync_fd(fd, &sync_error);
  ::close(fd);
  if (!ok) {
    *error = "fsync of directory '" + dir + "': " + sync_error;
    return false;
  }
  return true;
}

bool write_file_durable(const std::string& path, std::string_view body, std::string_view what,
                        std::string_view noun, std::string* error) {
  const std::string tag(what);
  const std::string kind(noun);
  const std::string tmp = path + ".tmp";
  const auto refuse = [&](const std::string& why) {
    ::unlink(tmp.c_str());
    *error = tag + ": " + why + "; " + kind + " left untouched at '" + path + "'";
    return false;
  };
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    *error = tag + ": cannot open '" + tmp + "' for writing; " + kind +
             " left untouched at '" + path + "'";
    return false;
  }
  std::string io_error;
  if (!write_all(fd, body.data(), body.size(), &io_error)) {
    ::close(fd);
    return refuse("write to '" + tmp + "' failed: " + io_error);
  }
  // Data must be on disk *before* the rename publishes it, otherwise a
  // crash can leave a durable rename pointing at non-durable bytes.
  if (!fsync_fd(fd, &io_error)) {
    ::close(fd);
    return refuse("fsync of '" + tmp + "' failed: " + io_error);
  }
  if (::close(fd) != 0) {
    return refuse("close of '" + tmp + "' failed");
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    return refuse("rename '" + tmp + "' -> '" + path + "' failed");
  }
  if (!fsync_parent_dir(path, &io_error)) {
    // The rename itself landed; the new file is valid but its directory
    // entry may not survive a power loss. Report it.
    *error = tag + ": " + io_error;
    return false;
  }
  return true;
}

}  // namespace vafs::fleet
