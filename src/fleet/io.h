// Durable POSIX write helpers for the fleet persistence layer (checkpoint
// manifests, spools, quarantine logs), plus test-only failure injection.
//
// Every byte that a resume depends on goes through write_all/fsync_fd:
// short writes are retried, EINTR is handled, and errors surface as a
// descriptive message instead of a silently truncated file. Callers follow
// the write-fsync-rename-fsync(dir) discipline so a kill at any boundary
// leaves either the old or the new file intact, never a torn one.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <string_view>

namespace vafs::fleet {

/// Test-only injection points for the durable-write paths. Production code
/// consults these before each physical write()/fsync(); tests install
/// callbacks to simulate a full disk (ENOSPC), a short write at an exact
/// byte boundary, or a failing fsync. Global and deliberately unguarded:
/// install only from single-threaded test setup and reset() afterwards.
struct IoHooks {
  /// Called with the byte count about to be written; returns how many
  /// bytes the "disk" accepts. >= n lets the write through untouched;
  /// anything less writes that many real bytes and then fails the call
  /// with ENOSPC — the truncated-at-byte-k kill/ENOSPC simulation.
  static std::function<std::size_t(std::size_t n)> write_gate;
  /// Return false to fail the next fsync() with EIO.
  static std::function<bool()> fsync_gate;

  static void reset();
};

/// Writes all n bytes to fd (retrying short writes and EINTR). On failure
/// fills `error` with the errno text and returns false; the file may hold
/// a prefix of the data — callers must treat the destination as torn.
bool write_all(int fd, const char* data, std::size_t n, std::string* error);

/// fsync with EINTR retry and hook consultation.
bool fsync_fd(int fd, std::string* error);

/// fsyncs the directory containing `path`, making a completed rename into
/// that directory durable. Failure to *open* the directory is ignored
/// (some filesystems refuse O_RDONLY on directories); a failing fsync on
/// an opened directory is reported.
bool fsync_parent_dir(const std::string& path, std::string* error);

/// Publishes `body` at `path` atomically and durably: sibling .tmp, every
/// write checked (write_all), fsync, rename into place, directory fsync.
/// On any failure the previous file at `path` — if any — is left intact,
/// the .tmp is unlinked and `error` gets a pointed message prefixed with
/// `what` (e.g. "checkpoint") naming the untouched file as `noun`
/// (e.g. "manifest"). The checkpoint manifest and the tuner's search-state
/// file share this path so both survive a kill or ENOSPC at every byte
/// boundary.
bool write_file_durable(const std::string& path, std::string_view body, std::string_view what,
                        std::string_view noun, std::string* error);

}  // namespace vafs::fleet
