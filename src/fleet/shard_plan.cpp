#include "fleet/shard_plan.h"

#include <algorithm>
#include <cassert>
#include <string>

#include "exp/aggregate.h"

namespace vafs::fleet {
namespace {

// FNV-1a over bytes, with 64-bit words folded whole. Stable across
// platforms (no host-endianness leak: words are folded value-wise).
constexpr std::uint64_t kFnvOffset = 0xCBF29CE484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001B3ULL;

std::uint64_t fold_bytes(std::uint64_t h, const char* data, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t fold_word(std::uint64_t h, std::uint64_t word) {
  for (int shift = 0; shift < 64; shift += 8) {
    h ^= (word >> shift) & 0xFF;
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace

ShardPlan::ShardPlan(std::size_t scenario_count, std::size_t seed_count, std::size_t shard_size)
    : scenarios_(scenario_count),
      seeds_(seed_count),
      tasks_(scenario_count * seed_count),
      shard_size_(shard_size > 0 ? shard_size : 1) {}

std::size_t ShardPlan::shard_count() const {
  return tasks_ == 0 ? 0 : (tasks_ + shard_size_ - 1) / shard_size_;
}

Shard ShardPlan::shard(std::size_t id) const {
  assert(id < shard_count());
  Shard s;
  s.id = id;
  s.first_task = id * shard_size_;
  s.task_count = std::min(shard_size_, tasks_ - s.first_task);
  return s;
}

TaskRef ShardPlan::task(std::size_t index) const {
  assert(index < tasks_ && seeds_ > 0);
  return TaskRef{index / seeds_, index % seeds_};
}

std::uint64_t grid_fingerprint(const std::vector<exp::ScenarioSpec>& scenarios,
                               const std::vector<std::uint64_t>& seeds, std::size_t shard_size) {
  std::uint64_t h = kFnvOffset;
  h = fold_word(h, scenarios.size());
  for (const auto& spec : scenarios) {
    h = fold_bytes(h, spec.id.data(), spec.id.size());
    h = fold_word(h, 0);  // terminator: ids "ab","c" vs "a","bc" differ
  }
  h = fold_word(h, seeds.size());
  for (const std::uint64_t seed : seeds) h = fold_word(h, seed);
  h = fold_word(h, shard_size);
  // The metric schema: a checkpoint's aggregate rows are positional, so a
  // reordered or extended metric table must invalidate old checkpoints.
  for (const auto& metric : exp::Aggregate::metrics()) {
    h = fold_bytes(h, metric.name, std::char_traits<char>::length(metric.name));
    h = fold_word(h, 1);
  }
  return h;
}

}  // namespace vafs::fleet
