// Deterministic sharding of a scenario × seed grid.
//
// A shard is a contiguous run of the canonical task order — scenario-major
// with the seed varying fastest, exactly the order run_grid flattens to —
// so the concatenation of all shards replays a serial run task for task.
// Shard boundaries are a pure function of (task count, shard size): any
// two processes given the same grid and shard size agree on every shard,
// which is what makes checkpoints portable across job counts, kill points
// and resumed runs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "exp/grid.h"

namespace vafs::fleet {

/// Canonical coordinates of task t: scenario t / nseeds, seed t % nseeds.
struct TaskRef {
  std::size_t scenario = 0;
  std::size_t seed_index = 0;
};

/// One contiguous chunk of the canonical task order.
struct Shard {
  std::size_t id = 0;
  std::size_t first_task = 0;
  std::size_t task_count = 0;
};

class ShardPlan {
 public:
  ShardPlan() = default;
  ShardPlan(std::size_t scenario_count, std::size_t seed_count, std::size_t shard_size);

  std::size_t scenario_count() const { return scenarios_; }
  std::size_t seed_count() const { return seeds_; }
  std::size_t task_count() const { return tasks_; }
  std::size_t shard_size() const { return shard_size_; }
  /// ceil(task_count / shard_size); the last shard may be short.
  std::size_t shard_count() const;

  Shard shard(std::size_t id) const;
  TaskRef task(std::size_t index) const;

 private:
  std::size_t scenarios_ = 0;
  std::size_t seeds_ = 0;
  std::size_t tasks_ = 0;
  std::size_t shard_size_ = 1;
};

/// Order-sensitive fingerprint of everything that determines what a fleet
/// run means: scenario ids (and their order), the seed list, the shard
/// size and the metric schema. A checkpoint written under one fingerprint
/// refuses to resume under another — resuming a different grid, a
/// reordered grid or a different shard layout would silently corrupt the
/// fold otherwise.
std::uint64_t grid_fingerprint(const std::vector<exp::ScenarioSpec>& scenarios,
                               const std::vector<std::uint64_t>& seeds, std::size_t shard_size);

}  // namespace vafs::fleet
