#include "fleet/spool.h"

#include <filesystem>
#include <string_view>

#include "exp/aggregate.h"
#include "exp/json.h"

namespace vafs::fleet {
namespace {

/// CSV field, always quoted (scenario ids carry spaces and axis labels).
std::string csv_quote(const std::string& text) {
  std::string out = "\"";
  for (const char c : text) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

/// Minimal JSON string escaping — scenario ids and metric names are ASCII
/// identifiers/labels; escape the two structural characters anyway.
std::string json_quote(const std::string& text) {
  std::string out = "\"";
  for (const char c : text) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

/// Session value of a named metric, via the Aggregate metric table: a
/// one-session aggregate's mean IS the session's value (bit-exact), so the
/// spool reuses the exact metric definitions add() encodes instead of
/// duplicating the SessionResult → metric mapping.
double metric_value(const exp::Aggregate& one, const char* name) {
  for (const auto& m : exp::Aggregate::metrics()) {
    if (std::string_view(m.name) == name) return (one.*m.member).mean();
  }
  return 0.0;
}

}  // namespace

Spool::~Spool() {
  std::string error;
  close(&error);  // best effort; run_fleet close()s explicitly to see errors
}

bool Spool::open(const SpoolOptions& options, std::uint64_t resume_offset, std::string* error) {
  options_ = options;
  if (options_.format == SpoolFormat::kNone) return true;
  if (options_.path.empty()) {
    *error = "spool: format set but no path given";
    return false;
  }

  if (resume_offset > 0) {
    // Resume: roll the file back to the checkpointed frontier. Rows past
    // the offset belong to shards after the checkpoint cut; the resumed
    // fold rewrites them identically.
    std::error_code ec;
    const auto size = std::filesystem::file_size(options_.path, ec);
    if (ec) {
      *error = "spool: cannot stat '" + options_.path + "' for resume: " + ec.message();
      return false;
    }
    if (size < resume_offset) {
      *error = "spool: '" + options_.path + "' is shorter (" + std::to_string(size) +
               " B) than the checkpointed offset (" + std::to_string(resume_offset) + " B)";
      return false;
    }
    std::filesystem::resize_file(options_.path, resume_offset, ec);
    if (ec) {
      *error = "spool: cannot truncate '" + options_.path + "': " + ec.message();
      return false;
    }
  }

  file_ = std::fopen(options_.path.c_str(), resume_offset > 0 ? "ab" : "wb");
  if (file_ == nullptr) {
    *error = "spool: cannot open '" + options_.path + "' for writing";
    return false;
  }
  offset_ = resume_offset;
  buffer_.clear();
  buffer_.reserve(options_.buffer_bytes + 1024);
  write_failed_ = false;
  if (resume_offset == 0 && options_.format == SpoolFormat::kCsv) {
    append_row("scenario,seed,metric,value\n");
  }
  return true;
}

void Spool::append_row(std::string row) {
  offset_ += row.size();
  buffer_ += row;
  if (buffer_.size() >= options_.buffer_bytes) {
    std::string error;
    if (!flush(&error)) write_failed_ = true;
  }
}

void Spool::append(const exp::ScenarioSpec& spec, std::uint64_t seed,
                   const core::SessionResult& result) {
  if (!enabled()) return;
  exp::Aggregate one;
  one.add(result);
  if (options_.format == SpoolFormat::kCsv) {
    const std::string prefix = csv_quote(spec.id) + ',' + std::to_string(seed) + ',';
    std::string rows;
    for (const auto& name : options_.metrics) {
      rows += prefix + name + ',' + exp::json_number(metric_value(one, name.c_str())) + '\n';
    }
    append_row(std::move(rows));
    return;
  }
  std::string row = "{\"scenario\":" + json_quote(spec.id) + ",\"seed\":" + std::to_string(seed) +
                    ",\"metrics\":{";
  bool first = true;
  for (const auto& name : options_.metrics) {
    if (!first) row += ',';
    first = false;
    row += json_quote(name) + ':' + exp::json_number(metric_value(one, name.c_str()));
  }
  row += "}}\n";
  append_row(std::move(row));
}

void Spool::append_failure(const exp::ScenarioSpec& spec, std::uint64_t seed) {
  if (!enabled()) return;
  if (options_.format == SpoolFormat::kCsv) {
    append_row(csv_quote(spec.id) + ',' + std::to_string(seed) + ",failed,1\n");
    return;
  }
  append_row("{\"scenario\":" + json_quote(spec.id) + ",\"seed\":" + std::to_string(seed) +
             ",\"failed\":true}\n");
}

bool Spool::flush(std::string* error) {
  if (!enabled()) return true;
  if (!buffer_.empty()) {
    const std::size_t wrote = std::fwrite(buffer_.data(), 1, buffer_.size(), file_);
    if (wrote != buffer_.size()) {
      *error = "spool: short write to '" + options_.path + "'";
      write_failed_ = true;
      return false;
    }
    buffer_.clear();
  }
  if (std::fflush(file_) != 0) {
    *error = "spool: flush of '" + options_.path + "' failed";
    write_failed_ = true;
    return false;
  }
  if (write_failed_) {
    *error = "spool: an earlier buffered write to '" + options_.path + "' failed";
    return false;
  }
  return true;
}

bool Spool::close(std::string* error) {
  if (!enabled()) return true;
  const bool ok = flush(error);
  std::fclose(file_);
  file_ = nullptr;
  return ok;
}

}  // namespace vafs::fleet
