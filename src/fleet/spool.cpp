#include "fleet/spool.h"

#include <filesystem>
#include <string_view>

#include <unistd.h>

#include "exp/aggregate.h"
#include "exp/json.h"
#include "fleet/io.h"
#include "obs/export.h"

namespace vafs::fleet {
namespace {

/// CSV field, always quoted (scenario ids carry spaces and axis labels).
std::string csv_quote(const std::string& text) {
  std::string out = "\"";
  for (const char c : text) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

/// Minimal JSON string escaping — scenario ids and metric names are ASCII
/// identifiers/labels; escape the two structural characters anyway.
std::string json_quote(const std::string& text) {
  std::string out = "\"";
  for (const char c : text) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

/// Named metric -> Aggregate metric-table index (kMetricCount if unknown).
std::size_t metric_index(const std::string& name) {
  const auto& table = exp::Aggregate::metrics();
  for (std::size_t i = 0; i < table.size(); ++i) {
    if (std::string_view(table[i].name) == name) return i;
  }
  return exp::kMetricCount;
}

}  // namespace

Spool::~Spool() {
  std::string error;
  close(&error);  // best effort; run_fleet close()s explicitly to see errors
}

bool Spool::open(const SpoolOptions& options, std::uint64_t resume_offset, std::string* error) {
  options_ = options;
  if (options_.format == SpoolFormat::kNone) return true;
  if (options_.path.empty()) {
    *error = "spool: format set but no path given";
    return false;
  }

  if (resume_offset > 0) {
    // Resume: roll the file back to the checkpointed frontier. Rows past
    // the offset belong to shards after the checkpoint cut; the resumed
    // fold rewrites them identically.
    std::error_code ec;
    const auto size = std::filesystem::file_size(options_.path, ec);
    if (ec) {
      *error = "spool: cannot stat '" + options_.path + "' for resume: " + ec.message();
      return false;
    }
    if (size < resume_offset) {
      *error = "spool: '" + options_.path + "' is shorter (" + std::to_string(size) +
               " B) than the checkpointed offset (" + std::to_string(resume_offset) + " B)";
      return false;
    }
    std::filesystem::resize_file(options_.path, resume_offset, ec);
    if (ec) {
      *error = "spool: cannot truncate '" + options_.path + "': " + ec.message();
      return false;
    }
  }

  file_ = std::fopen(options_.path.c_str(), resume_offset > 0 ? "ab" : "wb");
  if (file_ == nullptr) {
    *error = "spool: cannot open '" + options_.path + "' for writing";
    return false;
  }
  offset_ = resume_offset;
  buffer_.clear();
  buffer_.reserve(options_.buffer_bytes + 1024);
  write_failed_ = false;
  metric_indices_.clear();
  for (const auto& name : options_.metrics) metric_indices_.push_back(metric_index(name));
  if (resume_offset == 0 && options_.format == SpoolFormat::kCsv) {
    append_row("scenario,seed,metric,value\n");
  }
  return true;
}

void Spool::append_row(std::string row) {
  offset_ += row.size();
  buffer_ += row;
  if (buffer_.size() >= options_.buffer_bytes) {
    std::string error;
    if (!flush(&error)) write_failed_ = true;
  }
}

void Spool::append(const exp::ScenarioSpec& spec, std::uint64_t seed,
                   const core::SessionResult& result) {
  if (!enabled()) return;
  double values[exp::kMetricCount];
  exp::Aggregate::session_values(result, values);
  append_values(spec, seed, values, result.trace_digest);
}

void Spool::append_values(const exp::ScenarioSpec& spec, std::uint64_t seed,
                          const double* values, std::uint64_t digest) {
  if (!enabled()) return;
  const auto value_at = [&](std::size_t slot) {
    const std::size_t idx = metric_indices_[slot];
    return idx < exp::kMetricCount ? values[idx] : 0.0;
  };
  if (options_.format == SpoolFormat::kCsv) {
    const std::string prefix = csv_quote(spec.id) + ',' + std::to_string(seed) + ',';
    std::string rows;
    for (std::size_t slot = 0; slot < options_.metrics.size(); ++slot) {
      rows += prefix + options_.metrics[slot] + ',' + exp::json_number(value_at(slot)) + '\n';
    }
    append_row(std::move(rows));
    return;
  }
  std::string row = "{\"scenario\":" + json_quote(spec.id) + ",\"seed\":" + std::to_string(seed) +
                    ",\"digest\":\"" + obs::digest_hex(digest) + "\",\"metrics\":{";
  bool first = true;
  for (std::size_t slot = 0; slot < options_.metrics.size(); ++slot) {
    if (!first) row += ',';
    first = false;
    row += json_quote(options_.metrics[slot]) + ':' + exp::json_number(value_at(slot));
  }
  row += "}}\n";
  append_row(std::move(row));
}

void Spool::append_failure(const exp::ScenarioSpec& spec, std::uint64_t seed) {
  if (!enabled()) return;
  if (options_.format == SpoolFormat::kCsv) {
    append_row(csv_quote(spec.id) + ',' + std::to_string(seed) + ",failed,1\n");
    return;
  }
  append_row("{\"scenario\":" + json_quote(spec.id) + ",\"seed\":" + std::to_string(seed) +
             ",\"failed\":true}\n");
}

bool Spool::flush(std::string* error) {
  if (!enabled()) return true;
  if (!buffer_.empty()) {
    std::size_t allow = buffer_.size();
    if (IoHooks::write_gate) {
      allow = IoHooks::write_gate(buffer_.size());
      if (allow > buffer_.size()) allow = buffer_.size();
    }
    const std::size_t wrote = allow > 0 ? std::fwrite(buffer_.data(), 1, allow, file_) : 0;
    if (wrote != buffer_.size()) {
      *error = "spool: short write to '" + options_.path + "' (" + std::to_string(wrote) + " of " +
               std::to_string(buffer_.size()) + " B; disk full?)";
      write_failed_ = true;
      return false;
    }
    buffer_.clear();
  }
  if (std::fflush(file_) != 0) {
    *error = "spool: flush of '" + options_.path + "' failed";
    write_failed_ = true;
    return false;
  }
  if (write_failed_) {
    *error = "spool: an earlier buffered write to '" + options_.path + "' failed";
    return false;
  }
  return true;
}

bool Spool::sync(std::string* error) {
  if (!enabled()) return true;
  if (!flush(error)) return false;
  std::string sync_error;
  if (!fsync_fd(::fileno(file_), &sync_error)) {
    *error = "spool: fsync of '" + options_.path + "' failed: " + sync_error;
    write_failed_ = true;
    return false;
  }
  return true;
}

bool Spool::close(std::string* error) {
  if (!enabled()) return true;
  const bool ok = flush(error);
  std::fclose(file_);
  file_ = nullptr;
  return ok;
}

}  // namespace vafs::fleet
