// Bounded per-session row spool (schema v1).
//
// Fleet runs don't keep SessionResults: each folded task may append one
// long-format row per selected metric to a spool file instead. The spool
// holds a small staging buffer (flushed on overflow and at checkpoints),
// so its memory is O(buffer), never O(sessions). Rows are written in fold
// order — canonical task order — which makes the file deterministic and
// resumable: a checkpoint records the spool byte offset at its shard
// boundary, and a resumed run truncates the file back to that offset
// before appending, reproducing the uninterrupted file byte for byte.
//
// Schema v1, CSV:   scenario,seed,metric,value  (header row included)
// Schema v1, JSONL: {"scenario":...,"seed":N,"digest":"<hex16>",
//                   "metrics":{...}} per session ("digest" is the
//                   session's trace digest, 0 when tracing is off — the
//                   per-stream ground truth the nightly daemon-kill leg
//                   compares survivors against);
//                   {"scenario":...,"seed":N,"failed":true} for failures.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "core/session.h"
#include "exp/grid.h"

namespace vafs::fleet {

enum class SpoolFormat : std::uint8_t { kNone, kCsv, kJsonl };

struct SpoolOptions {
  SpoolFormat format = SpoolFormat::kNone;
  std::string path;
  /// Metrics spooled per session (long format). The default keeps the
  /// common energy/QoE columns; a million-session run at 4 metrics/row is
  /// a few hundred MB of CSV, so keep this list tight at fleet scale.
  std::vector<std::string> metrics = {"total_mj", "rebuffer_s", "mean_bitrate_kbps", "wall_s"};
  /// Staging-buffer flush threshold, bytes.
  std::size_t buffer_bytes = 1 << 16;
};

class Spool {
 public:
  Spool() = default;
  ~Spool();

  Spool(const Spool&) = delete;
  Spool& operator=(const Spool&) = delete;

  /// Opens (or, resuming, truncates to `resume_offset` and reopens) the
  /// spool file. A fresh run writes the CSV header; a resume never does.
  /// No-op success when options.format == kNone.
  bool open(const SpoolOptions& options, std::uint64_t resume_offset, std::string* error);

  bool enabled() const { return file_ != nullptr; }

  /// Appends one session's rows (buffered; deterministic content).
  void append(const exp::ScenarioSpec& spec, std::uint64_t seed,
              const core::SessionResult& result);
  /// Same rows from a pre-extracted exp::kMetricCount value vector plus
  /// the session's trace digest (the supervisor wire format) —
  /// byte-identical to append() for the same session, since both draw
  /// from Aggregate::session_values and the same digest.
  void append_values(const exp::ScenarioSpec& spec, std::uint64_t seed, const double* values,
                     std::uint64_t digest);
  /// Appends a failure marker row for a task that threw.
  void append_failure(const exp::ScenarioSpec& spec, std::uint64_t seed);

  /// Bytes of finalized rows so far (buffered + written) — the offset a
  /// checkpoint records. flush() before checkpointing so the file itself
  /// is at least this long on disk.
  std::uint64_t offset() const { return offset_; }
  bool flush(std::string* error);
  /// flush + fsync: everything appended so far is durable. Called before
  /// each checkpoint manifest write so the recorded offset never points
  /// past what a power loss could preserve.
  bool sync(std::string* error);
  /// Flushes and closes; returns false on a write error.
  bool close(std::string* error);

 private:
  void append_row(std::string row);

  SpoolOptions options_;
  std::FILE* file_ = nullptr;
  std::string buffer_;
  std::uint64_t offset_ = 0;
  bool write_failed_ = false;
  /// options_.metrics resolved to Aggregate metric-table indices at open()
  /// (npos-equivalent kMetricCount for unknown names → 0.0 rows).
  std::vector<std::size_t> metric_indices_;
};

}  // namespace vafs::fleet
