// Line-oriented text serialization helpers shared by the checkpoint
// manifest, the supervisor wire protocol and the quarantine log: 64-bit
// hex fields (doubles travel as IEEE-754 bit patterns, so round trips are
// bit-exact), hex-encoded free-text payloads (keeps formats strictly
// line-oriented no matter what an error message contains), and strict
// integer parsing.
#pragma once

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

namespace vafs::fleet {

inline void append_hex64(std::string& out, std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, v);
  out += buf;
}

inline bool parse_hex64(std::string_view s, std::uint64_t* out) {
  if (s.size() != 16) return false;
  std::uint64_t v = 0;
  for (const char c : s) {
    v <<= 4;
    if (c >= '0' && c <= '9') {
      v |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      return false;
    }
  }
  *out = v;
  return true;
}

/// Arbitrary bytes as lowercase hex; "-" marks the empty string so every
/// field stays non-empty and single-token.
inline std::string hex_encode(std::string_view text) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  out.reserve(text.size() * 2);
  for (const char c : text) {
    const auto b = static_cast<unsigned char>(c);
    out += digits[b >> 4];
    out += digits[b & 0xF];
  }
  return out.empty() ? "-" : out;
}

inline bool hex_decode(std::string_view hex, std::string* out) {
  out->clear();
  if (hex == "-") return true;
  if (hex.size() % 2 != 0) return false;
  const auto nibble = [](char c, unsigned* v) {
    if (c >= '0' && c <= '9') {
      *v = static_cast<unsigned>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      *v = static_cast<unsigned>(c - 'a' + 10);
    } else {
      return false;
    }
    return true;
  };
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    unsigned hi = 0;
    unsigned lo = 0;
    if (!nibble(hex[i], &hi) || !nibble(hex[i + 1], &lo)) return false;
    out->push_back(static_cast<char>((hi << 4) | lo));
  }
  return true;
}

inline bool parse_u64(std::string_view s, std::uint64_t* out) {
  if (s.empty()) return false;
  std::uint64_t v = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *out = v;
  return true;
}

/// Splits `line` (no trailing newline) on single spaces; empty tokens are
/// preserved, matching the strict single-space formats above.
inline void split_fields(std::string_view line, std::vector<std::string>* tokens) {
  tokens->clear();
  std::size_t start = 0;
  while (start <= line.size()) {
    const std::size_t space = line.find(' ', start);
    tokens->emplace_back(line.substr(start, space - start));
    if (space == std::string_view::npos) break;
    start = space + 1;
  }
}

}  // namespace vafs::fleet
