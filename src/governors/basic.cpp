#include "governors/basic.h"

namespace vafs::governors {

void PerformanceGovernor::start(cpu::CpufreqPolicy& policy) {
  policy_ = &policy;
  policy_->set_target(policy_->max_khz(), cpu::Relation::kAtMost);
}

void PerformanceGovernor::limits_changed() {
  if (policy_ != nullptr) policy_->set_target(policy_->max_khz(), cpu::Relation::kAtMost);
}

void PowersaveGovernor::start(cpu::CpufreqPolicy& policy) {
  policy_ = &policy;
  policy_->set_target(policy_->min_khz(), cpu::Relation::kAtLeast);
}

void PowersaveGovernor::limits_changed() {
  if (policy_ != nullptr) policy_->set_target(policy_->min_khz(), cpu::Relation::kAtLeast);
}

void UserspaceGovernor::start(cpu::CpufreqPolicy& policy) {
  policy_ = &policy;
  // Kernel behaviour: keep the current frequency until userspace speaks.
  requested_khz_ = policy_->cur_khz();
}

void UserspaceGovernor::limits_changed() {
  if (policy_ != nullptr && requested_khz_ != 0) {
    policy_->set_target(requested_khz_, cpu::Relation::kAtLeast);
  }
}

sysfs::Status UserspaceGovernor::set_speed(std::uint32_t khz) {
  if (policy_ == nullptr) return sysfs::Errno::kInval;
  requested_khz_ = khz;
  policy_->set_target(khz, cpu::Relation::kAtLeast);
  return {};
}

}  // namespace vafs::governors
