// The three trivial governors: performance (pin max), powersave (pin min),
// and userspace (frequency chosen by a userspace policy via
// scaling_setspeed). userspace is the actuation path of the VAFS governor.
#pragma once

#include "cpu/cpufreq_policy.h"
#include "cpu/governor.h"

namespace vafs::governors {

class PerformanceGovernor : public cpu::Governor {
 public:
  std::string_view name() const override { return "performance"; }
  void start(cpu::CpufreqPolicy& policy) override;
  void stop() override { policy_ = nullptr; }
  void limits_changed() override;

 private:
  cpu::CpufreqPolicy* policy_ = nullptr;
};

class PowersaveGovernor : public cpu::Governor {
 public:
  std::string_view name() const override { return "powersave"; }
  void start(cpu::CpufreqPolicy& policy) override;
  void stop() override { policy_ = nullptr; }
  void limits_changed() override;

 private:
  cpu::CpufreqPolicy* policy_ = nullptr;
};

class UserspaceGovernor : public cpu::Governor {
 public:
  std::string_view name() const override { return "userspace"; }
  void start(cpu::CpufreqPolicy& policy) override;
  void stop() override { policy_ = nullptr; }
  void limits_changed() override;

  bool supports_setspeed() const override { return true; }
  sysfs::Status set_speed(std::uint32_t khz) override;

 private:
  cpu::CpufreqPolicy* policy_ = nullptr;
  std::uint32_t requested_khz_ = 0;  // 0 = nothing requested yet
};

}  // namespace vafs::governors
