#include "governors/conservative.h"

#include <algorithm>

namespace vafs::governors {

std::uint32_t ConservativeGovernor::step_khz() const {
  auto* p = const_cast<ConservativeGovernor*>(this)->policy();
  const auto max = p->opps().max().freq_khz;
  // Kernel floor: at least 5 MHz so a tiny step still moves off an OPP.
  return std::max<std::uint32_t>(max / 100 * t_.freq_step_pct, 5000);
}

void ConservativeGovernor::on_sample() {
  auto* p = policy();
  const double load = window_load() * 100.0;

  if (load > static_cast<double>(t_.up_threshold)) {
    if (p->cur_khz() < p->max_khz()) {
      p->set_target(p->cur_khz() + step_khz(), cpu::Relation::kAtLeast);
    }
    return;
  }
  if (load < static_cast<double>(t_.down_threshold)) {
    if (p->cur_khz() > p->min_khz()) {
      const std::uint32_t cur = p->cur_khz();
      const std::uint32_t step = step_khz();
      const std::uint32_t target = cur > step ? cur - step : p->min_khz();
      p->set_target(target, cpu::Relation::kAtMost);
    }
  }
}

std::vector<cpu::Tunable> ConservativeGovernor::tunables() {
  return {
      {"sampling_rate", [this] { return std::to_string(t_.sampling_rate_us); },
       [this](std::string_view v) -> sysfs::Status {
         const auto us = parse_u64(v);
         if (us == UINT64_MAX || us < 1000) return sysfs::Errno::kInval;
         t_.sampling_rate_us = us;
         rearm();
         return {};
       }},
      {"up_threshold", [this] { return std::to_string(t_.up_threshold); },
       [this](std::string_view v) -> sysfs::Status {
         const auto pct = parse_u64(v);
         if (pct == UINT64_MAX || pct <= t_.down_threshold || pct > 100) {
           return sysfs::Errno::kInval;
         }
         t_.up_threshold = static_cast<unsigned>(pct);
         return {};
       }},
      {"down_threshold", [this] { return std::to_string(t_.down_threshold); },
       [this](std::string_view v) -> sysfs::Status {
         const auto pct = parse_u64(v);
         if (pct == UINT64_MAX || pct >= t_.up_threshold) return sysfs::Errno::kInval;
         t_.down_threshold = static_cast<unsigned>(pct);
         return {};
       }},
      {"freq_step", [this] { return std::to_string(t_.freq_step_pct); },
       [this](std::string_view v) -> sysfs::Status {
         const auto pct = parse_u64(v);
         if (pct == UINT64_MAX || pct == 0 || pct > 100) return sysfs::Errno::kInval;
         t_.freq_step_pct = static_cast<unsigned>(pct);
         return {};
       }},
  };
}

}  // namespace vafs::governors
