// The conservative governor: like ondemand but moves in fixed steps
// (freq_step percent of max) when load crosses the up/down thresholds —
// gentler ramps, historically marketed for battery life.
#pragma once

#include "governors/sampling_base.h"

namespace vafs::governors {

struct ConservativeTunables {
  std::uint64_t sampling_rate_us = 20'000;
  unsigned up_threshold = 80;    // percent
  unsigned down_threshold = 20;  // percent, < up_threshold
  unsigned freq_step_pct = 5;    // step as percent of max frequency
};

class ConservativeGovernor : public SamplingGovernorBase {
 public:
  explicit ConservativeGovernor(ConservativeTunables tunables = {}) : t_(tunables) {}

  std::string_view name() const override { return "conservative"; }
  std::vector<cpu::Tunable> tunables() override;

 protected:
  sim::SimTime sampling_period() const override {
    return sim::SimTime::micros(static_cast<std::int64_t>(t_.sampling_rate_us));
  }
  void on_sample() override;

 private:
  std::uint32_t step_khz() const;
  ConservativeTunables t_;
};

}  // namespace vafs::governors
