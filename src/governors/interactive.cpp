#include "governors/interactive.h"

#include <algorithm>

namespace vafs::governors {

void InteractiveGovernor::on_start() {
  auto* p = policy();
  if (t_.hispeed_freq_khz == 0) {
    // Default hispeed: the OPP nearest 60 % of max — a common OEM tuning.
    const auto target = static_cast<std::uint32_t>(
        static_cast<std::uint64_t>(p->opps().max().freq_khz) * 60 / 100);
    t_.hispeed_freq_khz = p->opps().resolve(target, cpu::Relation::kAtLeast).freq_khz;
  }
  last_raise_ = p->simulator().now();
}

void InteractiveGovernor::on_sample() {
  auto* p = policy();
  const double load = window_load() * 100.0;
  const std::uint32_t cur = p->cur_khz();
  const sim::SimTime now = p->simulator().now();

  std::uint32_t target;
  if (load >= static_cast<double>(t_.go_hispeed_load)) {
    target = std::max(t_.hispeed_freq_khz, cur);
    // Already at/above hispeed and still saturated: go all the way up.
    if (cur >= t_.hispeed_freq_khz) target = p->max_khz();
  } else {
    target = static_cast<std::uint32_t>(static_cast<double>(cur) * load /
                                        static_cast<double>(t_.target_load));
  }

  if (target > cur) {
    last_raise_ = now;
    p->set_target(target, cpu::Relation::kAtLeast);
    return;
  }
  // Hold the floor for min_sample_time after any raise.
  if (now - last_raise_ <
      sim::SimTime::micros(static_cast<std::int64_t>(t_.min_sample_time_us))) {
    return;
  }
  if (target < cur) p->set_target(target, cpu::Relation::kAtLeast);
}

std::vector<cpu::Tunable> InteractiveGovernor::tunables() {
  return {
      {"timer_rate", [this] { return std::to_string(t_.timer_rate_us); },
       [this](std::string_view v) -> sysfs::Status {
         const auto us = parse_u64(v);
         if (us == UINT64_MAX || us < 1000) return sysfs::Errno::kInval;
         t_.timer_rate_us = us;
         rearm();
         return {};
       }},
      {"hispeed_freq", [this] { return std::to_string(t_.hispeed_freq_khz); },
       [this](std::string_view v) -> sysfs::Status {
         const auto khz = parse_u64(v);
         if (khz == UINT64_MAX || khz == 0 || khz > UINT32_MAX) return sysfs::Errno::kInval;
         t_.hispeed_freq_khz = static_cast<std::uint32_t>(khz);
         return {};
       }},
      {"go_hispeed_load", [this] { return std::to_string(t_.go_hispeed_load); },
       [this](std::string_view v) -> sysfs::Status {
         const auto pct = parse_u64(v);
         if (pct == UINT64_MAX || pct == 0 || pct > 100) return sysfs::Errno::kInval;
         t_.go_hispeed_load = static_cast<unsigned>(pct);
         return {};
       }},
      {"target_loads", [this] { return std::to_string(t_.target_load); },
       [this](std::string_view v) -> sysfs::Status {
         const auto pct = parse_u64(v);
         if (pct == UINT64_MAX || pct == 0 || pct > 100) return sysfs::Errno::kInval;
         t_.target_load = static_cast<unsigned>(pct);
         return {};
       }},
      {"min_sample_time", [this] { return std::to_string(t_.min_sample_time_us); },
       [this](std::string_view v) -> sysfs::Status {
         const auto us = parse_u64(v);
         if (us == UINT64_MAX) return sysfs::Errno::kInval;
         t_.min_sample_time_us = us;
         return {};
       }},
  };
}

}  // namespace vafs::governors
