// The interactive governor (Android's long-time default before schedutil):
// jump to hispeed_freq when load crosses go_hispeed_load, target a
// load-proportional frequency otherwise, and refuse to scale down for
// min_sample_time after a raise — the hold that makes it snappy and
// power-hungry under periodic loads like video.
#pragma once

#include "governors/sampling_base.h"

namespace vafs::governors {

struct InteractiveTunables {
  std::uint64_t timer_rate_us = 20'000;
  std::uint32_t hispeed_freq_khz = 0;  // 0 => chosen at start (~60 % of max)
  unsigned go_hispeed_load = 99;       // percent
  unsigned target_load = 90;           // percent
  std::uint64_t min_sample_time_us = 80'000;
};

class InteractiveGovernor : public SamplingGovernorBase {
 public:
  explicit InteractiveGovernor(InteractiveTunables tunables = {}) : t_(tunables) {}

  std::string_view name() const override { return "interactive"; }
  std::vector<cpu::Tunable> tunables() override;

 protected:
  sim::SimTime sampling_period() const override {
    return sim::SimTime::micros(static_cast<std::int64_t>(t_.timer_rate_us));
  }
  void on_sample() override;
  void on_start() override;

 private:
  InteractiveTunables t_;
  sim::SimTime last_raise_ = sim::SimTime::zero();
};

}  // namespace vafs::governors
