#include "governors/ondemand.h"

namespace vafs::governors {

void OndemandGovernor::on_start() {
  // Kernel ondemand starts from the current frequency; no initial jump.
  down_skip_ = 0;
}

void OndemandGovernor::on_sample() {
  auto* p = policy();
  const double load = window_load() * 100.0;
  const double bias = 1.0 - static_cast<double>(t_.powersave_bias) / 1000.0;

  if (load > static_cast<double>(t_.up_threshold)) {
    down_skip_ = 0;
    p->set_target(static_cast<std::uint32_t>(static_cast<double>(p->max_khz()) * bias),
                  cpu::Relation::kAtMost);
    return;
  }

  // sampling_down_factor: once at max, stay there for N samples before
  // considering a down-scale (reduces thrash under bursty load).
  if (p->cur_khz() == p->max_khz() && t_.sampling_down_factor > 1) {
    if (++down_skip_ < t_.sampling_down_factor) return;
  }
  down_skip_ = 0;

  // Proportional down-scale: lowest frequency at which this load would
  // still be under the threshold.
  const double target =
      static_cast<double>(p->cur_khz()) * load / static_cast<double>(t_.up_threshold) * bias;
  p->set_target(static_cast<std::uint32_t>(target), cpu::Relation::kAtLeast);
}

std::vector<cpu::Tunable> OndemandGovernor::tunables() {
  return {
      {"sampling_rate", [this] { return std::to_string(t_.sampling_rate_us); },
       [this](std::string_view v) -> sysfs::Status {
         const auto us = parse_u64(v);
         if (us == UINT64_MAX || us < 1000) return sysfs::Errno::kInval;
         t_.sampling_rate_us = us;
         rearm();
         return {};
       }},
      {"up_threshold", [this] { return std::to_string(t_.up_threshold); },
       [this](std::string_view v) -> sysfs::Status {
         const auto pct = parse_u64(v);
         if (pct == UINT64_MAX || pct == 0 || pct > 100) return sysfs::Errno::kInval;
         t_.up_threshold = static_cast<unsigned>(pct);
         return {};
       }},
      {"sampling_down_factor", [this] { return std::to_string(t_.sampling_down_factor); },
       [this](std::string_view v) -> sysfs::Status {
         const auto n = parse_u64(v);
         if (n == UINT64_MAX || n == 0 || n > 100'000) return sysfs::Errno::kInval;
         t_.sampling_down_factor = static_cast<unsigned>(n);
         return {};
       }},
      {"powersave_bias", [this] { return std::to_string(t_.powersave_bias); },
       [this](std::string_view v) -> sysfs::Status {
         const auto n = parse_u64(v);
         if (n == UINT64_MAX || n > 1000) return sysfs::Errno::kInval;
         t_.powersave_bias = static_cast<unsigned>(n);
         return {};
       }},
  };
}

}  // namespace vafs::governors
