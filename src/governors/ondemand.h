// The ondemand governor: jump to the maximum frequency when windowed load
// exceeds up_threshold, otherwise pick the lowest frequency that would keep
// the observed load under the threshold (freq_next = cur · load /
// up_threshold, snapped upward). This is the classic Linux policy most
// Android devices shipped with before interactive/schedutil, and the primary
// baseline in DVFS papers.
#pragma once

#include "governors/sampling_base.h"

namespace vafs::governors {

struct OndemandTunables {
  std::uint64_t sampling_rate_us = 20'000;
  unsigned up_threshold = 80;           // percent, (0, 100]
  unsigned sampling_down_factor = 1;    // hold samples at max before rescaling down
  /// Kernel powersave_bias (0..1000): shaves bias/1000 off every computed
  /// target, trading performance for energy without switching governors.
  unsigned powersave_bias = 0;
};

class OndemandGovernor : public SamplingGovernorBase {
 public:
  explicit OndemandGovernor(OndemandTunables tunables = {}) : t_(tunables) {}

  std::string_view name() const override { return "ondemand"; }
  std::vector<cpu::Tunable> tunables() override;

 protected:
  sim::SimTime sampling_period() const override {
    return sim::SimTime::micros(static_cast<std::int64_t>(t_.sampling_rate_us));
  }
  void on_sample() override;
  void on_start() override;

 private:
  OndemandTunables t_;
  unsigned down_skip_ = 0;
};

}  // namespace vafs::governors
