#include "governors/registry.h"

#include <memory>

#include "governors/basic.h"
#include "governors/conservative.h"
#include "governors/interactive.h"
#include "governors/ondemand.h"
#include "governors/schedutil.h"

namespace vafs::governors {

void register_standard(cpu::GovernorRegistry& registry) {
  registry.add("performance", [] { return std::make_unique<PerformanceGovernor>(); });
  registry.add("powersave", [] { return std::make_unique<PowersaveGovernor>(); });
  registry.add("userspace", [] { return std::make_unique<UserspaceGovernor>(); });
  registry.add("ondemand", [] { return std::make_unique<OndemandGovernor>(); });
  registry.add("conservative", [] { return std::make_unique<ConservativeGovernor>(); });
  registry.add("interactive", [] { return std::make_unique<InteractiveGovernor>(); });
  registry.add("schedutil", [] { return std::make_unique<SchedutilGovernor>(); });
}

}  // namespace vafs::governors
