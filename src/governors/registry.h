// Registration of the standard governor set, so callers can write
//   GovernorRegistry reg; governors::register_standard(reg);
// and get the same lineup `scaling_available_governors` shows on a device.
#pragma once

#include "cpu/governor.h"

namespace vafs::governors {

/// Adds performance, powersave, userspace, ondemand, conservative,
/// interactive and schedutil with default tunables.
void register_standard(cpu::GovernorRegistry& registry);

}  // namespace vafs::governors
