#include "governors/sampling_base.h"

#include <algorithm>

#include "obs/trace.h"

namespace vafs::governors {

std::uint64_t parse_u64(std::string_view text) {
  if (text.empty() || text.size() > 19) return UINT64_MAX;
  std::uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return UINT64_MAX;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return value;
}

void SamplingGovernorBase::start(cpu::CpufreqPolicy& policy) {
  policy_ = &policy;
  last_busy_ = policy_->cpu().total_busy_time();
  last_wall_ = policy_->simulator().now();
  on_start();
  arm_next();
}

void SamplingGovernorBase::stop() {
  timer_.cancel();
  policy_ = nullptr;
}

void SamplingGovernorBase::arm_next() {
  // A periodic series: one armed event carried across samples instead of a
  // fresh schedule per sample. The period is fixed at arm time; tunable
  // writes that change it go through rearm(), which re-creates the series,
  // and stop() cancels it (detaching mid-sample included).
  timer_.cancel();
  timer_ = policy_->simulator().every(sampling_period(), [this] { sample(); });
}

void SamplingGovernorBase::sample() {
  obs::Tracer* tracer = policy_->tracer();
  if (tracer == nullptr) {
    on_sample();
    return;
  }
  const std::uint32_t before_khz = policy_->cur_khz();
  on_sample();
  tracer->record(policy_->simulator().now(), obs::EventKind::kGovernorSample, before_khz,
                 policy_->cur_khz());
}

void SamplingGovernorBase::rearm() {
  if (policy_ == nullptr) return;
  arm_next();
}

double SamplingGovernorBase::window_load() {
  const sim::SimTime busy = policy_->cpu().total_busy_time();
  const sim::SimTime wall = policy_->simulator().now();
  const sim::SimTime d_busy = busy - last_busy_;
  const sim::SimTime d_wall = wall - last_wall_;
  last_busy_ = busy;
  last_wall_ = wall;
  if (d_wall <= sim::SimTime::zero()) return 0.0;
  return std::min(1.0, d_busy.as_seconds_f() / d_wall.as_seconds_f());
}

}  // namespace vafs::governors
