// Shared machinery for sampling governors: a periodic timer plus the
// windowed-load computation (busy fraction since the previous sample) that
// ondemand-family governors are built on.
#pragma once

#include "cpu/cpufreq_policy.h"
#include "cpu/governor.h"
#include "simcore/simulator.h"

namespace vafs::governors {

class SamplingGovernorBase : public cpu::Governor {
 public:
  void start(cpu::CpufreqPolicy& policy) override;
  void stop() override;

 protected:
  /// Per-governor sampling period (read each re-arm, so tunable changes
  /// take effect at the next sample).
  virtual sim::SimTime sampling_period() const = 0;

  /// Called every sampling period while attached.
  virtual void on_sample() = 0;

  /// Hook for initial frequency choice; default leaves the frequency alone.
  virtual void on_start() {}

  /// Busy fraction of wall time since the previous call (or since start).
  /// Matches what the kernel derives from idle-time deltas. Returns 0 for
  /// an empty window.
  double window_load();

  cpu::CpufreqPolicy* policy() { return policy_; }

  /// Cancels and re-arms the timer (used after tunable writes that change
  /// the period).
  void rearm();

 private:
  void arm_next();
  /// Timer tick: runs on_sample(), bracketing it with a trace record when a
  /// tracer is attached to the policy.
  void sample();

  cpu::CpufreqPolicy* policy_ = nullptr;
  sim::EventHandle timer_;
  sim::SimTime last_busy_ = sim::SimTime::zero();
  sim::SimTime last_wall_ = sim::SimTime::zero();
};

/// Parses an unsigned decimal tunable; returns UINT64_MAX on failure.
std::uint64_t parse_u64(std::string_view text);

}  // namespace vafs::governors
