#include "governors/schedutil.h"

namespace vafs::governors {

void SchedutilGovernor::on_start() {
  last_change_ = policy()->simulator().now() - sim::SimTime::micros(
                     static_cast<std::int64_t>(t_.rate_limit_us));
}

void SchedutilGovernor::on_sample() {
  auto* p = policy();
  const sim::SimTime now = p->simulator().now();
  if (now - last_change_ <
      sim::SimTime::micros(static_cast<std::int64_t>(t_.rate_limit_us))) {
    return;
  }

  const double util = p->cpu().pelt_util();
  const auto max_khz = static_cast<double>(p->opps().max().freq_khz);
  const auto target = static_cast<std::uint32_t>(t_.headroom * max_khz * util);

  const std::uint32_t before = p->cur_khz();
  p->set_target(target, cpu::Relation::kAtLeast);
  if (p->cur_khz() != before) last_change_ = now;
}

std::vector<cpu::Tunable> SchedutilGovernor::tunables() {
  return {
      {"rate_limit_us", [this] { return std::to_string(t_.rate_limit_us); },
       [this](std::string_view v) -> sysfs::Status {
         const auto us = parse_u64(v);
         if (us == UINT64_MAX) return sysfs::Errno::kInval;
         t_.rate_limit_us = us;
         return {};
       }},
  };
}

}  // namespace vafs::governors
