// The schedutil governor: maps the scheduler's decayed, frequency-invariant
// utilization straight to a frequency with 25 % headroom
// (next = 1.25 · max · util), rate-limited. The modern kernel default.
#pragma once

#include "governors/sampling_base.h"

namespace vafs::governors {

struct SchedutilTunables {
  std::uint64_t rate_limit_us = 10'000;  // min gap between freq changes
  double headroom = 1.25;                // the kernel's "util + util/4"
};

class SchedutilGovernor : public SamplingGovernorBase {
 public:
  explicit SchedutilGovernor(SchedutilTunables tunables = {}) : t_(tunables) {}

  std::string_view name() const override { return "schedutil"; }
  std::vector<cpu::Tunable> tunables() override;

 protected:
  // Real schedutil is invoked from scheduler hooks; sampling at 4 ms
  // approximates that callback density closely enough for the signals the
  // evaluation observes.
  sim::SimTime sampling_period() const override { return sim::SimTime::micros(4000); }
  void on_sample() override;
  void on_start() override;

 private:
  SchedutilTunables t_;
  sim::SimTime last_change_ = sim::SimTime::zero();
};

}  // namespace vafs::governors
