#include "net/bandwidth.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace vafs::net {

MarkovBandwidth::MarkovBandwidth(Params params, sim::Rng rng)
    : p_(params), rng_(rng), cur_mbps_(params.mean_mbps), cur_until_(sim::SimTime::zero()) {
  assert(p_.min_mbps > 0 && p_.min_mbps <= p_.mean_mbps && p_.mean_mbps <= p_.max_mbps);
}

void MarkovBandwidth::advance_to(sim::SimTime now) {
  while (cur_until_ <= now) {
    // Multiplicative step with mean reversion: log-rate walks toward the
    // log-mean, bounded to [min, max].
    const double log_cur = std::log(cur_mbps_);
    const double log_mean = std::log(p_.mean_mbps);
    const double pulled = log_cur + p_.reversion * (log_mean - log_cur);
    const double stepped = pulled + rng_.normal(0.0, p_.volatility);
    cur_mbps_ = std::clamp(std::exp(stepped), p_.min_mbps, p_.max_mbps);

    const double dwell_us = rng_.exponential(p_.mean_dwell.as_seconds_f() * 1e6);
    cur_until_ += sim::SimTime::micros(std::max<std::int64_t>(1000, static_cast<std::int64_t>(dwell_us)));
  }
}

double MarkovBandwidth::current_mbps(sim::SimTime now) {
  advance_to(now);
  return cur_mbps_;
}

sim::SimTime MarkovBandwidth::next_change(sim::SimTime now) {
  advance_to(now);
  return cur_until_;
}

TraceBandwidth::TraceBandwidth(std::vector<Step> steps, bool loop)
    : steps_(std::move(steps)), loop_(loop) {
  assert(!steps_.empty());
  assert(steps_.front().at == sim::SimTime::zero() && "trace must start at t=0");
  for (std::size_t i = 1; i < steps_.size(); ++i) {
    assert(steps_[i].at > steps_[i - 1].at && "trace steps must be increasing");
  }
  // Loop period: one more step-length past the last change point, estimated
  // as the median step so short traces loop smoothly.
  if (steps_.size() >= 2) {
    duration_ = steps_.back().at + (steps_.back().at - steps_[steps_.size() - 2].at);
  } else {
    duration_ = std::max(steps_.back().at, sim::SimTime::seconds(1)) + sim::SimTime::seconds(1);
  }
}

std::size_t TraceBandwidth::locate(sim::SimTime now, sim::SimTime* remaining) const {
  sim::SimTime t = now;
  if (loop_ && duration_ > sim::SimTime::zero()) {
    t = sim::SimTime(now.as_micros() % duration_.as_micros());
  }
  // Find the last step at or before t.
  std::size_t idx = 0;
  for (std::size_t i = 0; i < steps_.size(); ++i) {
    if (steps_[i].at <= t) idx = i;
  }
  const sim::SimTime seg_end = (idx + 1 < steps_.size()) ? steps_[idx + 1].at : duration_;
  *remaining = seg_end - t;
  return idx;
}

double TraceBandwidth::current_mbps(sim::SimTime now) {
  if (!loop_ && now >= steps_.back().at) return steps_.back().mbps;
  sim::SimTime remaining;
  return steps_[locate(now, &remaining)].mbps;
}

sim::SimTime TraceBandwidth::next_change(sim::SimTime now) {
  if (!loop_ && now >= steps_.back().at) return sim::SimTime::max();
  sim::SimTime remaining;
  locate(now, &remaining);
  if (remaining <= sim::SimTime::zero()) remaining = sim::SimTime::micros(1);
  return now + remaining;
}

}  // namespace vafs::net
