// Bandwidth processes: piecewise-constant downlink rate models. The
// downloader computes exact byte-arrival times across constant-rate
// segments, so a process only needs to answer "what is the rate now" and
// "when does it next change".
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "simcore/rng.h"
#include "simcore/time.h"

namespace vafs::net {

class BandwidthProcess {
 public:
  virtual ~BandwidthProcess() = default;

  /// Downlink rate at `now`, in megabits per second. Never negative;
  /// zero models an outage.
  virtual double current_mbps(sim::SimTime now) = 0;

  /// Earliest time strictly after `now` at which the rate may change.
  /// SimTime::max() if it never will.
  virtual sim::SimTime next_change(sim::SimTime now) = 0;
};

/// Fixed rate forever.
class ConstantBandwidth final : public BandwidthProcess {
 public:
  explicit ConstantBandwidth(double mbps) : mbps_(mbps) {}
  double current_mbps(sim::SimTime) override { return mbps_; }
  sim::SimTime next_change(sim::SimTime) override { return sim::SimTime::max(); }

 private:
  double mbps_;
};

/// A mean-reverting random walk over a bounded range, held for
/// exponentially distributed dwell times — the standard synthetic stand-in
/// for drive/commute LTE traces.
class MarkovBandwidth final : public BandwidthProcess {
 public:
  struct Params {
    double mean_mbps = 12.0;
    double min_mbps = 0.5;
    double max_mbps = 40.0;
    /// Relative step size per dwell change (lognormal sigma).
    double volatility = 0.35;
    /// Mean dwell at one rate before stepping.
    sim::SimTime mean_dwell = sim::SimTime::millis(800);
    /// Pull toward the mean per step, in [0, 1].
    double reversion = 0.25;
  };

  MarkovBandwidth(Params params, sim::Rng rng);

  double current_mbps(sim::SimTime now) override;
  sim::SimTime next_change(sim::SimTime now) override;

 private:
  void advance_to(sim::SimTime now);

  Params p_;
  sim::Rng rng_;
  double cur_mbps_;
  sim::SimTime cur_until_;
};

/// Replays (time, mbps) steps; optionally loops the trace.
class TraceBandwidth final : public BandwidthProcess {
 public:
  struct Step {
    sim::SimTime at;
    double mbps;
  };

  /// `steps` must start at time zero and be strictly increasing.
  TraceBandwidth(std::vector<Step> steps, bool loop);

  double current_mbps(sim::SimTime now) override;
  sim::SimTime next_change(sim::SimTime now) override;

 private:
  /// Maps absolute time onto the (possibly looping) trace and returns the
  /// step index plus time remaining in that step.
  std::size_t locate(sim::SimTime now, sim::SimTime* remaining) const;

  std::vector<Step> steps_;
  bool loop_;
  sim::SimTime duration_;
};

}  // namespace vafs::net
