#include "net/downloader.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace vafs::net {
namespace {

double mbps_to_bytes_per_us(double mbps) { return mbps * 1e6 / 8.0 / 1e6; }

}  // namespace

Downloader::Downloader(sim::Simulator& simulator, RadioModel& radio,
                       BandwidthProcess& bandwidth, cpu::CpuSink* cpu_model,
                       DownloaderParams params)
    : sim_(simulator), radio_(radio), bandwidth_(bandwidth), cpu_(cpu_model), params_(params) {}

void Downloader::fetch(std::uint64_t bytes, std::function<void(const FetchResult&)> on_done) {
  const std::uint64_t id = next_id_++;
  Job job;
  job.id = id;
  job.result.bytes = bytes;
  job.result.started = sim_.now();
  job.bytes_remaining = static_cast<double>(bytes);
  job.on_done = std::move(on_done);
  jobs_.push_back(std::move(job));

  radio_.acquire([this, id] {
    sim_.after(params_.rtt, [this, id] {
      pump();  // settle existing receivers before the receiver set changes
      for (auto& j : jobs_) {
        if (j.id != id) continue;
        j.receiving = true;
        j.result.first_byte = sim_.now();
        if (cpu_ != nullptr && params_.cpu_cycles_per_request > 0) {
          cpu_->submit("http-request", params_.cpu_cycles_per_request, nullptr);
        }
        if (j.bytes_remaining <= 0) {
          j.receiving = false;
          finish_job(id);  // zero-byte fetch completes straight away
          return;
        }
        break;
      }
      pump();  // re-arm with the new receiver set
    });
  });
}

void Downloader::pump() {
  const sim::SimTime now = sim_.now();
  const sim::SimTime elapsed = now - last_pump_;

  // Count receivers *before* this pump's boundary changes.
  std::size_t receivers = 0;
  for (const auto& j : jobs_) {
    if (j.receiving) ++receivers;
  }

  if (elapsed > sim::SimTime::zero() && receivers > 0) {
    // Rate was constant over [last_pump_, now]: pump events are armed at
    // every bandwidth change point and at every receiver-set change.
    const double rate = bandwidth_.current_mbps(last_pump_);
    const double per_job_bytes = mbps_to_bytes_per_us(rate) *
                                 static_cast<double>(elapsed.as_micros()) /
                                 static_cast<double>(receivers);
    std::vector<std::uint64_t> finished;
    for (auto& j : jobs_) {
      if (!j.receiving) continue;
      const double arrived = std::min(per_job_bytes, j.bytes_remaining);
      j.bytes_remaining -= arrived;
      if (cpu_ != nullptr && arrived > 0) {
        const double cycles = arrived * params_.cpu_cycles_per_byte;
        if (j.bytes_remaining <= 0.5) {
          // Final chunk: completion is gated on its CPU processing.
          const std::uint64_t id = j.id;
          j.bytes_remaining = 0;
          j.receiving = false;  // stop accruing
          cpu_->submit("http-recv-final", cycles, [this, id] { finish_job(id); });
        } else {
          cpu_->submit("http-recv", cycles, nullptr);
        }
      } else if (j.bytes_remaining <= 0.5) {
        j.bytes_remaining = 0;
        j.receiving = false;
        finished.push_back(j.id);
      }
    }
    for (const auto id : finished) finish_job(id);
  }
  last_pump_ = now;

  // Re-arm: next bandwidth change or earliest completion.
  receivers = 0;
  for (const auto& j : jobs_) {
    if (j.receiving) ++receivers;
  }
  if (receivers == 0) {
    pump_event_.cancel();
    return;
  }

  const double rate = bandwidth_.current_mbps(now);
  sim::SimTime next = bandwidth_.next_change(now);
  if (rate > 0) {
    const double per_job_rate = mbps_to_bytes_per_us(rate) / static_cast<double>(receivers);
    double min_remaining = -1;
    for (const auto& j : jobs_) {
      if (j.receiving && (min_remaining < 0 || j.bytes_remaining < min_remaining)) {
        min_remaining = j.bytes_remaining;
      }
    }
    const auto done_us = static_cast<std::int64_t>(std::ceil(min_remaining / per_job_rate));
    next = std::min(next, now + sim::SimTime::micros(std::max<std::int64_t>(1, done_us)));
  }
  if (next == sim::SimTime::max()) {  // outage with no scheduled recovery
    pump_event_.cancel();
    return;
  }
  // Re-arm in place when a pump is pending (the common case when a new job
  // or an early wake moved the horizon); fresh schedule otherwise.
  if (!sim_.reschedule(pump_event_, next)) {
    pump_event_ = sim_.at(next, [this] { pump(); });
  }
}

void Downloader::finish_job(std::uint64_t id) {
  for (auto it = jobs_.begin(); it != jobs_.end(); ++it) {
    if (it->id != id) continue;
    Job job = std::move(*it);
    jobs_.erase(it);
    job.result.completed = sim_.now();
    total_bytes_ += job.result.bytes;
    radio_.release();
    if (job.on_done) job.on_done(job.result);
    return;
  }
  assert(false && "finish_job: unknown job");
}

}  // namespace vafs::net
