#include "net/downloader.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "obs/trace.h"

namespace vafs::net {
namespace {

double mbps_to_bytes_per_us(double mbps) { return mbps * 1e6 / 8.0 / 1e6; }

}  // namespace

const char* fetch_error_name(FetchError e) {
  switch (e) {
    case FetchError::kNone: return "none";
    case FetchError::kTimeout: return "timeout";
    case FetchError::kInjected: return "injected";
  }
  return "?";
}

Downloader::Downloader(sim::Simulator& simulator, RadioModel& radio,
                       BandwidthProcess& bandwidth, cpu::CpuSink* cpu_model,
                       DownloaderParams params, FetchFaultHook* faults,
                       std::uint64_t retry_seed)
    : sim_(simulator),
      radio_(radio),
      bandwidth_(bandwidth),
      cpu_(cpu_model),
      params_(params),
      faults_(faults),
      retry_seed_(retry_seed) {}

Downloader::Job* Downloader::find_job(std::uint64_t id) {
  for (auto& j : jobs_) {
    if (j.id == id) return &j;
  }
  return nullptr;
}

void Downloader::fetch(std::uint64_t bytes, std::function<void(const FetchResult&)> on_done) {
  const std::uint64_t id = next_id_++;
  Job job;
  job.id = id;
  job.result.bytes = bytes;
  job.result.started = sim_.now();
  job.bytes_remaining = static_cast<double>(bytes);
  job.on_done = std::move(on_done);
  jobs_.push_back(std::move(job));
  if (tracer_ != nullptr) tracer_->record(sim_.now(), obs::EventKind::kFetchBegin, id, bytes);
  start_attempt(jobs_.back());
}

void Downloader::start_attempt(Job& job) {
  ++job.attempts;
  job.attempt_epoch = ++attempt_seq_;
  job.bytes_remaining = static_cast<double>(job.result.bytes);
  job.fate = FetchFate::kOk;
  job.fail_delay = sim::SimTime::zero();
  if (faults_ != nullptr) {
    job.fate = faults_->fetch_attempt_fate(sim_.now(), job.id, job.attempts, &job.fail_delay);
  }
  if (tracer_ != nullptr) {
    tracer_->record(sim_.now(), obs::EventKind::kAttemptBegin, job.id, job.attempts,
                    static_cast<std::uint64_t>(job.fate));
  }

  const std::uint64_t id = job.id;
  const std::uint64_t epoch = job.attempt_epoch;
  if (params_.attempt_timeout != sim::SimTime::max()) {
    job.timeout_event = sim_.after(params_.attempt_timeout, [this, id, epoch] {
      attempt_failed(id, epoch, FetchError::kTimeout);
    });
  }
  job.radio = RadioHold::kAcquiring;
  // May fire synchronously (radio already active) — don't touch `job`
  // through the reference after this call.
  radio_.acquire([this, id, epoch] { on_radio_ready(id, epoch); });
}

void Downloader::on_radio_ready(std::uint64_t id, std::uint64_t epoch) {
  Job* job = find_job(id);
  if (job == nullptr || job->attempt_epoch != epoch) {
    // The attempt this acquire belonged to was aborted (or the whole fetch
    // gave up) while the radio was promoting: balance the acquire.
    radio_.release();
    return;
  }
  job->radio = RadioHold::kHeld;
  sim_.after(params_.rtt, [this, id, epoch] { begin_receive(id, epoch); });
}

void Downloader::begin_receive(std::uint64_t id, std::uint64_t epoch) {
  {
    Job* job = find_job(id);
    if (job == nullptr || job->attempt_epoch != epoch) return;  // attempt aborted mid-RTT
    if (job->fate == FetchFate::kHang) return;  // server went silent; only the timeout rescues
    if (job->fate == FetchFate::kFail) {
      const sim::SimTime delay = job->fail_delay;
      job->fail_event = sim_.after(delay, [this, id, epoch] {
        attempt_failed(id, epoch, FetchError::kInjected);
      });
      return;
    }
  }
  pump();  // settle existing receivers before the receiver set changes
  Job* job = find_job(id);  // pump may finish jobs and shift the vector
  assert(job != nullptr && job->attempt_epoch == epoch);
  job->receiving = true;
  job->result.first_byte = sim_.now();
  if (cpu_ != nullptr && params_.cpu_cycles_per_request > 0) {
    cpu_->submit("http-request", params_.cpu_cycles_per_request, nullptr);
  }
  if (job->bytes_remaining <= 0) {
    job->receiving = false;
    finish_job(id);  // zero-byte fetch completes straight away
    return;
  }
  pump();  // re-arm with the new receiver set
}

void Downloader::attempt_failed(std::uint64_t id, std::uint64_t epoch, FetchError error) {
  Job* job = find_job(id);
  if (job == nullptr || job->attempt_epoch != epoch) return;

  job->timeout_event.cancel();
  job->fail_event.cancel();
  if (job->receiving) {
    pump();  // settle arrivals (and other jobs) through now
    job = find_job(id);
    assert(job != nullptr);
    job->receiving = false;
  }
  if (job->radio == RadioHold::kHeld) radio_.release();
  // kAcquiring: the pending ready callback sees the bumped epoch below and
  // releases; kNone: nothing to balance.
  job->radio = RadioHold::kNone;
  job->attempt_epoch = ++attempt_seq_;  // stales this attempt's callbacks

  if (error == FetchError::kTimeout) ++timeouts_;
  if (tracer_ != nullptr) {
    tracer_->record(sim_.now(), obs::EventKind::kAttemptEnd, job->id, job->attempts,
                    static_cast<std::uint64_t>(error));
  }

  if (job->attempts >= params_.max_attempts) {
    ++failed_fetches_;
    const std::uint64_t jid = job->id;
    for (auto it = jobs_.begin(); it != jobs_.end(); ++it) {
      if (it->id != jid) continue;
      Job failed = std::move(*it);
      jobs_.erase(it);
      failed.result.completed = sim_.now();
      failed.result.ok = false;
      failed.result.error = error;
      failed.result.attempts = failed.attempts;
      if (tracer_ != nullptr) {
        tracer_->record(sim_.now(), obs::EventKind::kFetchEnd, jid,
                        static_cast<std::uint64_t>(error), failed.attempts);
      }
      if (failed.on_done) failed.on_done(failed.result);
      return;
    }
    assert(false && "attempt_failed: job vanished");
    return;
  }

  ++retries_;
  const double expo = std::pow(params_.backoff_factor, static_cast<double>(job->attempts - 1));
  double backoff_us =
      static_cast<double>(params_.backoff_base.as_micros()) * std::max(1.0, expo);
  if (params_.backoff_jitter > 0) {
    // Keyed draw: this retry's jitter depends only on (seed, fetch,
    // attempt), so any other fetch's retry history leaves it untouched.
    sim::Rng jitter(sim::mix_stream(retry_seed_, job->id, job->attempts));
    backoff_us *= 1.0 + params_.backoff_jitter * (jitter.uniform() * 2.0 - 1.0);
  }
  const auto delay = sim::SimTime::micros(
      std::max<std::int64_t>(1, static_cast<std::int64_t>(std::llround(backoff_us))));
  if (tracer_ != nullptr) {
    tracer_->record(sim_.now(), obs::EventKind::kRetryBackoff, id,
                    static_cast<std::uint64_t>(delay.as_micros()), job->attempts + 1);
  }
  job->retry_event = sim_.after(delay, [this, id] {
    Job* j = find_job(id);
    if (j != nullptr) start_attempt(*j);
  });
}

void Downloader::pump() {
  const sim::SimTime now = sim_.now();
  const sim::SimTime elapsed = now - last_pump_;

  // Count receivers *before* this pump's boundary changes.
  std::size_t receivers = 0;
  for (const auto& j : jobs_) {
    if (j.receiving) ++receivers;
  }

  if (elapsed > sim::SimTime::zero() && receivers > 0) {
    // Rate was constant over [last_pump_, now]: pump events are armed at
    // every bandwidth change point and at every receiver-set change.
    const double rate = bandwidth_.current_mbps(last_pump_);
    if (tracer_ != nullptr) {
      // Passive capture: the rate was read for byte accounting anyway, so
      // sampling it here perturbs nothing.
      tracer_->timeline().push(obs::SeriesId::kBandwidthMbps, last_pump_, rate);
    }
    const double per_job_bytes = mbps_to_bytes_per_us(rate) *
                                 static_cast<double>(elapsed.as_micros()) /
                                 static_cast<double>(receivers);
    std::vector<std::uint64_t> finished;
    for (auto& j : jobs_) {
      if (!j.receiving) continue;
      const double arrived = std::min(per_job_bytes, j.bytes_remaining);
      j.bytes_remaining -= arrived;
      if (cpu_ != nullptr && arrived > 0) {
        const double cycles = arrived * params_.cpu_cycles_per_byte;
        if (j.bytes_remaining <= 0.5) {
          // Final chunk: completion is gated on its CPU processing. The
          // payload is fully down, so the attempt can no longer time out.
          const std::uint64_t id = j.id;
          j.bytes_remaining = 0;
          j.receiving = false;  // stop accruing
          j.timeout_event.cancel();
          cpu_->submit("http-recv-final", cycles, [this, id] { finish_job(id); });
        } else {
          cpu_->submit("http-recv", cycles, nullptr);
        }
      } else if (j.bytes_remaining <= 0.5) {
        j.bytes_remaining = 0;
        j.receiving = false;
        finished.push_back(j.id);
      }
    }
    for (const auto id : finished) finish_job(id);
  }
  last_pump_ = now;

  // Re-arm: next bandwidth change or earliest completion.
  receivers = 0;
  for (const auto& j : jobs_) {
    if (j.receiving) ++receivers;
  }
  if (receivers == 0) {
    pump_event_.cancel();
    return;
  }

  const double rate = bandwidth_.current_mbps(now);
  sim::SimTime next = bandwidth_.next_change(now);
  if (rate > 0) {
    const double per_job_rate = mbps_to_bytes_per_us(rate) / static_cast<double>(receivers);
    double min_remaining = -1;
    for (const auto& j : jobs_) {
      if (j.receiving && (min_remaining < 0 || j.bytes_remaining < min_remaining)) {
        min_remaining = j.bytes_remaining;
      }
    }
    const auto done_us = static_cast<std::int64_t>(std::ceil(min_remaining / per_job_rate));
    next = std::min(next, now + sim::SimTime::micros(std::max<std::int64_t>(1, done_us)));
  }
  if (next == sim::SimTime::max()) {  // outage with no scheduled recovery
    pump_event_.cancel();
    return;
  }
  // Re-arm in place when a pump is pending (the common case when a new job
  // or an early wake moved the horizon); fresh schedule otherwise.
  if (!sim_.reschedule(pump_event_, next)) {
    pump_event_ = sim_.at(next, [this] { pump(); });
  }
}

void Downloader::finish_job(std::uint64_t id) {
  for (auto it = jobs_.begin(); it != jobs_.end(); ++it) {
    if (it->id != id) continue;
    Job job = std::move(*it);
    jobs_.erase(it);
    job.timeout_event.cancel();
    job.fail_event.cancel();
    job.result.completed = sim_.now();
    job.result.attempts = job.attempts;
    total_bytes_ += job.result.bytes;
    radio_.release();
    if (tracer_ != nullptr) {
      tracer_->record(sim_.now(), obs::EventKind::kAttemptEnd, id, job.attempts, 0);
      tracer_->record(sim_.now(), obs::EventKind::kFetchEnd, id, 0, job.attempts);
    }
    if (job.on_done) job.on_done(job.result);
    return;
  }
  assert(false && "finish_job: unknown job");
}

}  // namespace vafs::net
