// HTTP-segment downloader: turns a byte count into a timed arrival process
// over the radio + bandwidth models, charging protocol-processing cycles
// (TCP/TLS/HTTP) to the CPU as the bytes arrive. This CPU load during
// download bursts is exactly what workload-agnostic governors overreact to.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "cpu/cpu_sink.h"
#include "net/bandwidth.h"
#include "net/radio.h"
#include "simcore/simulator.h"

namespace vafs::net {

struct DownloaderParams {
  /// Request/response round trip before the first byte.
  sim::SimTime rtt = sim::SimTime::millis(70);

  /// CPU cycles charged per payload byte (TCP + TLS record processing +
  /// HTTP parsing + copies). 8 cycles/B puts a 12 Mbps stream at ~12 MHz
  /// of CPU — consistent with published smartphone measurements.
  double cpu_cycles_per_byte = 8.0;

  /// Fixed per-request CPU cost (socket + TLS handshake resume + headers).
  double cpu_cycles_per_request = 2.0e6;
};

struct FetchResult {
  std::uint64_t bytes = 0;
  sim::SimTime started;      // fetch() call time
  sim::SimTime first_byte;   // after radio ready + RTT
  sim::SimTime completed;    // last byte arrived and processed

  double throughput_mbps() const {
    const double secs = (completed - first_byte).as_seconds_f();
    return secs > 0 ? static_cast<double>(bytes) * 8.0 / 1e6 / secs : 0.0;
  }
};

class Downloader {
 public:
  /// `cpu` may be null to model a zero-cost network stack (used by some
  /// unit tests); all other dependencies must outlive the downloader.
  Downloader(sim::Simulator& simulator, RadioModel& radio, BandwidthProcess& bandwidth,
             cpu::CpuSink* cpu_model, DownloaderParams params = {});

  Downloader(const Downloader&) = delete;
  Downloader& operator=(const Downloader&) = delete;

  /// Fetches `bytes`; `on_done` fires when the payload has both arrived
  /// and been processed by the CPU. Multiple concurrent fetches share the
  /// link fairly (equal split of the bandwidth process's rate).
  void fetch(std::uint64_t bytes, std::function<void(const FetchResult&)> on_done);

  unsigned inflight() const { return static_cast<unsigned>(jobs_.size()); }
  std::uint64_t total_bytes_fetched() const { return total_bytes_; }

 private:
  struct Job {
    std::uint64_t id;
    FetchResult result;
    double bytes_remaining;
    bool receiving = false;  // radio ready + RTT elapsed
    std::function<void(const FetchResult&)> on_done;
  };

  /// Advances all receiving jobs to now, then re-arms the next event
  /// (bandwidth change or earliest job completion).
  void pump();
  void finish_job(std::uint64_t id);

  sim::Simulator& sim_;
  RadioModel& radio_;
  BandwidthProcess& bandwidth_;
  cpu::CpuSink* cpu_;
  DownloaderParams params_;

  std::vector<Job> jobs_;
  std::uint64_t next_id_ = 1;
  std::uint64_t total_bytes_ = 0;
  sim::SimTime last_pump_ = sim::SimTime::zero();
  sim::EventHandle pump_event_;
};

}  // namespace vafs::net
