// HTTP-segment downloader: turns a byte count into a timed arrival process
// over the radio + bandwidth models, charging protocol-processing cycles
// (TCP/TLS/HTTP) to the CPU as the bytes arrive. This CPU load during
// download bursts is exactly what workload-agnostic governors overreact to.
//
// Failure model: every fetch is a sequence of attempts. An attempt can be
// failed by the fault hook (server error after a delay, or a silent hang)
// or by the per-attempt timeout; the downloader then releases the radio,
// waits out an exponential backoff (with jitter), and retries from byte
// zero, up to max_attempts. Exhausted fetches complete with ok = false so
// the player can stall-and-rerequest instead of wedging.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "cpu/cpu_sink.h"
#include "net/bandwidth.h"
#include "net/radio.h"
#include "simcore/rng.h"
#include "simcore/simulator.h"

namespace vafs::obs {
class Tracer;
}

namespace vafs::net {

/// Outcome of one fetch attempt, decided at request time by the fault
/// hook: proceed normally, fail after a delay (an HTTP 5xx / reset), or
/// hang silently (nothing arrives; only the timeout rescues it).
enum class FetchFate : std::uint8_t { kOk, kFail, kHang };

/// Injection point for per-fetch faults. Implemented by
/// fault::FaultInjector; declared here so net does not depend on fault.
class FetchFaultHook {
 public:
  virtual ~FetchFaultHook() = default;
  /// Fate of one attempt. `fetch_id` and `attempt` (1-based) identify the
  /// attempt so implementations can key their draws per (fetch, attempt)
  /// rather than consuming a sequential stream — the draw must be a pure
  /// function of the identifiers, or moving a shard boundary across a
  /// faulted segment would shift every later fate in the session. For
  /// kFail, `fail_delay` (if non-null) receives the delay from first-byte
  /// eligibility to the injected failure.
  virtual FetchFate fetch_attempt_fate(sim::SimTime now, std::uint64_t fetch_id,
                                       unsigned attempt, sim::SimTime* fail_delay) = 0;
};

struct DownloaderParams {
  /// Request/response round trip before the first byte.
  sim::SimTime rtt = sim::SimTime::millis(70);

  /// CPU cycles charged per payload byte (TCP + TLS record processing +
  /// HTTP parsing + copies). 8 cycles/B puts a 12 Mbps stream at ~12 MHz
  /// of CPU — consistent with published smartphone measurements.
  double cpu_cycles_per_byte = 8.0;

  /// Fixed per-request CPU cost (socket + TLS handshake resume + headers).
  double cpu_cycles_per_request = 2.0e6;

  /// Per-attempt watchdog: an attempt still incomplete after this long is
  /// aborted and retried. SimTime::max() disables it (no timer is armed —
  /// the zero-fault event schedule is byte-identical to the pre-retry
  /// downloader).
  sim::SimTime attempt_timeout = sim::SimTime::max();

  /// Attempts per fetch before giving up with ok = false.
  unsigned max_attempts = 3;

  /// Backoff before attempt n+1: base * factor^(n-1), scaled by a uniform
  /// jitter in [1-jitter, 1+jitter]. Each jitter draw is keyed by
  /// (retry_seed, fetch id, attempt) — a pure function of which retry it
  /// is, not of how many retries happened before — so one fetch's retries
  /// never perturb another's timing.
  sim::SimTime backoff_base = sim::SimTime::millis(200);
  double backoff_factor = 2.0;
  double backoff_jitter = 0.25;
};

enum class FetchError : std::uint8_t { kNone, kTimeout, kInjected };

const char* fetch_error_name(FetchError e);

struct FetchResult {
  std::uint64_t bytes = 0;
  sim::SimTime started;      // fetch() call time
  sim::SimTime first_byte;   // after radio ready + RTT (last attempt's)
  sim::SimTime completed;    // last byte arrived and processed, or gave up
  bool ok = true;            // false => all attempts exhausted
  FetchError error = FetchError::kNone;  // cause of the *last* failed attempt
  unsigned attempts = 1;

  double throughput_mbps() const {
    const double secs = (completed - first_byte).as_seconds_f();
    return ok && secs > 0 ? static_cast<double>(bytes) * 8.0 / 1e6 / secs : 0.0;
  }
};

class Downloader {
 public:
  /// `cpu` may be null to model a zero-cost network stack (used by some
  /// unit tests); all other dependencies must outlive the downloader.
  /// `faults` (optional) decides per-attempt fates; `retry_seed` seeds the
  /// backoff-jitter stream (consumed only on retries).
  Downloader(sim::Simulator& simulator, RadioModel& radio, BandwidthProcess& bandwidth,
             cpu::CpuSink* cpu_model, DownloaderParams params = {},
             FetchFaultHook* faults = nullptr, std::uint64_t retry_seed = 0x9E3779B97F4A7C15ULL);

  Downloader(const Downloader&) = delete;
  Downloader& operator=(const Downloader&) = delete;

  /// Fetches `bytes`; `on_done` fires when the payload has both arrived
  /// and been processed by the CPU — or when every attempt has failed
  /// (result.ok == false). Multiple concurrent fetches share the link
  /// fairly (equal split of the bandwidth process's rate).
  void fetch(std::uint64_t bytes, std::function<void(const FetchResult&)> on_done);

  unsigned inflight() const { return static_cast<unsigned>(jobs_.size()); }
  std::uint64_t total_bytes_fetched() const { return total_bytes_; }

  /// Attempts beyond each fetch's first (timeouts + injected failures that
  /// were retried).
  std::uint64_t total_retries() const { return retries_; }
  /// Attempts aborted by the per-attempt timeout.
  std::uint64_t total_timeouts() const { return timeouts_; }
  /// Fetches that exhausted max_attempts and completed with ok = false.
  std::uint64_t failed_fetches() const { return failed_fetches_; }

  /// Optional tracer (not owned, may be null): fetch/attempt spans, retry
  /// backoffs and the observed-bandwidth series are recorded through it.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

 private:
  /// Whether (and how) the current attempt holds the radio: kAcquiring
  /// between acquire() and its ready callback, kHeld afterwards. An
  /// aborted kAcquiring attempt leaves its stale ready callback to do the
  /// release, so every acquire pairs with exactly one release.
  enum class RadioHold : std::uint8_t { kNone, kAcquiring, kHeld };

  struct Job {
    std::uint64_t id;
    FetchResult result;
    double bytes_remaining;
    bool receiving = false;  // radio ready + RTT elapsed
    unsigned attempts = 0;
    /// Distinguishes this attempt's scheduled callbacks from an aborted
    /// predecessor's (bumped on every attempt start and abort).
    std::uint64_t attempt_epoch = 0;
    FetchFate fate = FetchFate::kOk;
    sim::SimTime fail_delay;
    RadioHold radio = RadioHold::kNone;
    sim::EventHandle timeout_event;
    sim::EventHandle fail_event;
    sim::EventHandle retry_event;
    std::function<void(const FetchResult&)> on_done;
  };

  Job* find_job(std::uint64_t id);
  void start_attempt(Job& job);
  void on_radio_ready(std::uint64_t id, std::uint64_t epoch);
  void begin_receive(std::uint64_t id, std::uint64_t epoch);
  /// Aborts the current attempt (releasing the radio if held) and either
  /// schedules a retry or completes the fetch with ok = false.
  void attempt_failed(std::uint64_t id, std::uint64_t epoch, FetchError error);

  /// Advances all receiving jobs to now, then re-arms the next event
  /// (bandwidth change or earliest job completion).
  void pump();
  void finish_job(std::uint64_t id);

  sim::Simulator& sim_;
  RadioModel& radio_;
  BandwidthProcess& bandwidth_;
  cpu::CpuSink* cpu_;
  DownloaderParams params_;
  FetchFaultHook* faults_;
  std::uint64_t retry_seed_;
  obs::Tracer* tracer_ = nullptr;

  std::vector<Job> jobs_;
  std::uint64_t next_id_ = 1;
  std::uint64_t attempt_seq_ = 0;
  std::uint64_t total_bytes_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t timeouts_ = 0;
  std::uint64_t failed_fetches_ = 0;
  sim::SimTime last_pump_ = sim::SimTime::zero();
  sim::EventHandle pump_event_;
};

}  // namespace vafs::net
