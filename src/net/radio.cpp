#include "net/radio.h"

#include <cassert>
#include <utility>

namespace vafs::net {

const char* radio_state_name(RadioState s) {
  switch (s) {
    case RadioState::kIdle: return "IDLE";
    case RadioState::kPromotion: return "PROMOTION";
    case RadioState::kActive: return "ACTIVE";
    case RadioState::kTailCr: return "TAIL_CR";
    case RadioState::kTailDrx: return "TAIL_DRX";
  }
  return "?";
}

RadioParams RadioParams::wifi() {
  RadioParams p;
  p.idle_mw = 12.0;
  p.promotion_mw = 150.0;
  p.active_mw = 700.0;
  p.tail_cr_mw = 250.0;
  p.tail_drx_mw = 120.0;
  p.promotion_delay = sim::SimTime::millis(10);
  p.tail_cr = sim::SimTime::millis(60);
  p.tail_drx = sim::SimTime::millis(400);
  return p;
}

RadioParams RadioParams::umts_3g() {
  RadioParams p;
  p.idle_mw = 8.0;
  p.promotion_mw = 500.0;
  p.active_mw = 800.0;   // DCH
  p.tail_cr_mw = 800.0;  // DCH inactivity tail
  p.tail_drx_mw = 460.0; // FACH
  p.promotion_delay = sim::SimTime::seconds(2);
  p.tail_cr = sim::SimTime::seconds(5);    // T1
  p.tail_drx = sim::SimTime::seconds(12);  // T2
  return p;
}

RadioModel::RadioModel(sim::Simulator& simulator, RadioParams params)
    : sim_(simulator), params_(params) {}

double RadioModel::state_mw(RadioState s) const {
  switch (s) {
    case RadioState::kIdle: return params_.idle_mw;
    case RadioState::kPromotion: return params_.promotion_mw;
    case RadioState::kActive: return params_.active_mw;
    case RadioState::kTailCr: return params_.tail_cr_mw;
    case RadioState::kTailDrx: return params_.tail_drx_mw;
  }
  return 0.0;
}

void RadioModel::settle() {
  const sim::SimTime now = sim_.now();
  residency_[static_cast<int>(state_)] += now - last_change_;
  last_change_ = now;
}

void RadioModel::enter(RadioState next) {
  settle();
  state_ = next;
}

void RadioModel::acquire(std::function<void()> ready) {
  ++refcount_;
  switch (state_) {
    case RadioState::kActive:
      if (ready) ready();
      return;
    case RadioState::kTailCr:
    case RadioState::kTailDrx:
      // Still connected: resume immediately, cancel the pending demotion.
      timer_.cancel();
      enter(RadioState::kActive);
      if (ready) ready();
      return;
    case RadioState::kPromotion:
      // Join the in-flight promotion.
      if (ready) waiting_.push_back(std::move(ready));
      return;
    case RadioState::kIdle: {
      ++promotions_;
      enter(RadioState::kPromotion);
      if (ready) waiting_.push_back(std::move(ready));
      timer_ = sim_.after(params_.promotion_delay, [this] {
        enter(RadioState::kActive);
        auto ready_list = std::exchange(waiting_, {});
        for (auto& fn : ready_list) fn();
        // A transfer may have been acquired+released entirely within the
        // promotion window; if nothing holds the radio now, start the tail.
        if (refcount_ == 0 && state_ == RadioState::kActive) start_tail();
      });
      return;
    }
  }
}

void RadioModel::release() {
  assert(refcount_ > 0 && "release without acquire");
  --refcount_;
  if (refcount_ > 0) return;

  // The last transfer ended. From ACTIVE, start the tail now; if we are
  // still promoting (acquire+release inside the promotion window), the
  // promotion callback starts the tail once it reaches ACTIVE.
  if (state_ == RadioState::kActive) start_tail();
}

void RadioModel::start_tail() {
  enter(RadioState::kTailCr);
  timer_ = sim_.after(params_.tail_cr, [this] {
    enter(RadioState::kTailDrx);
    timer_ = sim_.after(params_.tail_drx, [this] { enter(RadioState::kIdle); });
  });
}

sim::SimTime RadioModel::time_in(RadioState s) {
  settle();
  return residency_[static_cast<int>(s)];
}

double RadioModel::energy_mj() {
  settle();
  double mj = 0.0;
  for (int s = 0; s < 5; ++s) {
    mj += residency_[s].as_seconds_f() * state_mw(static_cast<RadioState>(s));
  }
  return mj;
}

}  // namespace vafs::net
