// LTE radio model: the RRC state machine whose tail timers make radio
// energy depend on *when* the player downloads, not just how much.
//
// States and default powers follow published LTE measurement studies
// (promotion ~260 ms; a continuous-reception tail followed by DRX before
// the connection releases; active power ~1.2 W):
//
//   IDLE --acquire--> PROMOTION --(delay)--> ACTIVE
//   ACTIVE --release--> TAIL_CR --(t_cr)--> TAIL_DRX --(t_drx)--> IDLE
//   TAIL_* --acquire--> ACTIVE            (no promotion cost)
//
// Concurrent transfers are refcounted; the tail starts when the last one
// releases.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "simcore/simulator.h"

namespace vafs::net {

enum class RadioState { kIdle, kPromotion, kActive, kTailCr, kTailDrx };

const char* radio_state_name(RadioState s);

struct RadioParams {
  double idle_mw = 10.0;
  double promotion_mw = 450.0;
  double active_mw = 1210.0;
  double tail_cr_mw = 1060.0;
  double tail_drx_mw = 550.0;

  sim::SimTime promotion_delay = sim::SimTime::millis(260);
  sim::SimTime tail_cr = sim::SimTime::millis(200);
  sim::SimTime tail_drx = sim::SimTime::seconds_f(9.8);

  /// An LTE profile (the defaults above).
  static RadioParams lte() { return {}; }

  /// A WiFi-like profile: cheap idle (PSM), no promotion to speak of,
  /// short tail.
  static RadioParams wifi();

  /// UMTS 3G, mapped onto the same machine: promotion = IDLE→DCH
  /// signalling (~2 s), ACTIVE = DCH, TAIL_CR = the DCH inactivity tail
  /// (T1 ≈ 5 s at DCH power), TAIL_DRX = FACH (T2 ≈ 12 s at roughly half
  /// power) — the published timer/power structure of 3G RRC.
  static RadioParams umts_3g();
};

class RadioModel {
 public:
  RadioModel(sim::Simulator& simulator, RadioParams params = RadioParams::lte());

  RadioModel(const RadioModel&) = delete;
  RadioModel& operator=(const RadioModel&) = delete;

  /// Requests the radio for a transfer. `ready` fires when the radio is in
  /// ACTIVE (immediately if it already is; after the promotion delay from
  /// IDLE). Each acquire must be paired with exactly one release.
  void acquire(std::function<void()> ready);

  /// Ends one transfer; when the last concurrent transfer releases, the
  /// tail timers start.
  void release();

  RadioState state() const { return state_; }
  unsigned active_transfers() const { return refcount_; }
  std::uint64_t promotion_count() const { return promotions_; }

  /// Wall time spent in `s` so far.
  sim::SimTime time_in(RadioState s);

  /// Radio energy so far, mJ (residency-weighted state power).
  double energy_mj();

  const RadioParams& params() const { return params_; }

 private:
  void enter(RadioState next);
  void settle();  // accrue residency up to now
  void start_tail();

  double state_mw(RadioState s) const;

  sim::Simulator& sim_;
  RadioParams params_;
  RadioState state_ = RadioState::kIdle;
  unsigned refcount_ = 0;
  std::uint64_t promotions_ = 0;

  sim::SimTime last_change_ = sim::SimTime::zero();
  sim::SimTime residency_[5] = {};
  sim::EventHandle timer_;
  std::vector<std::function<void()>> waiting_;
};

}  // namespace vafs::net
