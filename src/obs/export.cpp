#include "obs/export.h"

#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <ostream>

namespace vafs::obs {
namespace {

/// Minimal JSON string escaper. Event/track/arg names are static C
/// identifiers, but the process name is caller-provided.
void write_escaped(std::ostream& out, std::string_view text) {
  out << '"';
  for (char ch : text) {
    switch (ch) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      case '\r': out << "\\r"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          out << buf;
        } else {
          out << ch;
        }
    }
  }
  out << '"';
}

void write_double(std::ostream& out, double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.10g", value);
  out << buf;
}

void write_args(std::ostream& out, const EventInfo& info, const TraceEvent& ev) {
  out << "\"args\":{";
  bool first = true;
  const auto arg = [&](const char* name, std::uint64_t value) {
    if (name == nullptr) return;
    if (!first) out << ',';
    first = false;
    write_escaped(out, name);
    out << ':' << value;
  };
  arg(info.arg_a, ev.a);
  arg(info.arg_b, ev.b);
  arg(info.arg_c, ev.c);
  out << '}';
}

/// Async span pairing id. Attempts nest inside their fetch span and reuse
/// the job id in arg a, so they are disambiguated with the attempt ordinal.
std::uint64_t async_id(const TraceEvent& ev) {
  if (ev.kind == EventKind::kAttemptBegin || ev.kind == EventKind::kAttemptEnd) {
    return (ev.a << 20) | (ev.b & 0xFFFFF);
  }
  return ev.a;
}

}  // namespace

void write_chrome_trace(std::ostream& out, const Tracer& tracer,
                        std::string_view process_name) {
  out << "{\"traceEvents\":[\n";
  bool first = true;
  const auto sep = [&] {
    if (!first) out << ",\n";
    first = false;
  };

  // Metadata: one pid, one named tid per track.
  sep();
  out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{\"name\":";
  write_escaped(out, process_name);
  out << "}}";
  for (std::size_t t = 0; t < kTrackCount; ++t) {
    sep();
    out << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << t
        << ",\"args\":{\"name\":";
    write_escaped(out, track_name(static_cast<Track>(t)));
    out << "}}";
    sep();
    out << "{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":1,\"tid\":" << t
        << ",\"args\":{\"sort_index\":" << t << "}}";
  }

  for (std::size_t i = 0; i < tracer.size(); ++i) {
    const TraceEvent& ev = tracer.event(i);
    const EventInfo& info = event_info(ev.kind);
    const auto tid = static_cast<unsigned>(info.track);
    sep();
    out << "{\"name\":";
    write_escaped(out, info.name);
    out << ",\"pid\":1,\"tid\":" << tid << ",\"ts\":" << ev.t_us;
    switch (info.phase) {
      case Phase::kInstant:
        out << ",\"ph\":\"i\",\"s\":\"t\",";
        break;
      case Phase::kBegin:
        out << ",\"ph\":\"B\",";
        break;
      case Phase::kEnd:
        out << ",\"ph\":\"E\",";
        break;
      case Phase::kAsyncBegin:
        out << ",\"ph\":\"b\",\"cat\":";
        write_escaped(out, info.name);
        out << ",\"id\":" << async_id(ev) << ',';
        break;
      case Phase::kAsyncEnd:
        out << ",\"ph\":\"e\",\"cat\":";
        write_escaped(out, info.name);
        out << ",\"id\":" << async_id(ev) << ',';
        break;
      case Phase::kComplete:
        out << ",\"ph\":\"X\",\"dur\":" << ev.b << ',';
        break;
    }
    write_args(out, info, ev);
    out << '}';
  }

  // Timeline series as counter tracks.
  for (std::size_t s = 0; s < kSeriesCount; ++s) {
    const auto id = static_cast<SeriesId>(s);
    const Series& series = tracer.timeline().at(id);
    for (const Sample& sample : series.samples()) {
      sep();
      out << "{\"name\":";
      write_escaped(out, series_name(id));
      out << ",\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":" << sample.t_us << ",\"args\":{";
      write_escaped(out, series_unit(id));
      out << ':';
      write_double(out, sample.value);
      out << "}}";
    }
  }

  out << "\n]}\n";
}

void write_timeline_csv(std::ostream& out, const Timeline& timeline) {
  out << "series,t_us,value\n";
  for (std::size_t s = 0; s < kSeriesCount; ++s) {
    const auto id = static_cast<SeriesId>(s);
    const char* name = series_name(id);
    for (const Sample& sample : timeline.at(id).samples()) {
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.10g", sample.value);
      out << name << ',' << sample.t_us << ',' << buf << '\n';
    }
  }
}

std::string digest_hex(std::uint64_t digest) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "0x%016" PRIx64, digest);
  return buf;
}

bool parse_digest_hex(std::string_view text, std::uint64_t* out) {
  if (text.size() >= 2 && text[0] == '0' && (text[1] == 'x' || text[1] == 'X')) {
    text.remove_prefix(2);
  }
  if (text.empty() || text.size() > 16) return false;
  std::uint64_t value = 0;
  for (char ch : text) {
    value <<= 4;
    if (ch >= '0' && ch <= '9') {
      value |= static_cast<std::uint64_t>(ch - '0');
    } else if (ch >= 'a' && ch <= 'f') {
      value |= static_cast<std::uint64_t>(ch - 'a' + 10);
    } else if (ch >= 'A' && ch <= 'F') {
      value |= static_cast<std::uint64_t>(ch - 'A' + 10);
    } else {
      return false;
    }
  }
  *out = value;
  return true;
}

}  // namespace vafs::obs
