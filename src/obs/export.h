// Trace exporters: Chrome trace_event JSON (loadable in Perfetto /
// chrome://tracing), long-format CSV timelines for tools/plot_timeline.py,
// and digest formatting helpers for the artifact sinks.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "obs/trace.h"

namespace vafs::obs {

/// Writes the tracer's retained events and timeline series as a Chrome
/// trace_event JSON document ({"traceEvents": [...]}): one pid, one tid
/// per Track (named via metadata events), sync spans as B/E, overlappable
/// spans as async b/e keyed by their id argument, fault windows as X
/// complete events, timeline series as C counter events.
void write_chrome_trace(std::ostream& out, const Tracer& tracer,
                        std::string_view process_name = "vafs-session");

/// Writes every timeline sample as `series,t_us,value` rows (header
/// included, nothing downsampled or truncated).
void write_timeline_csv(std::ostream& out, const Timeline& timeline);

/// Canonical artifact form of a digest: "0x" + 16 lowercase hex digits.
/// JSON numbers are doubles, so digests travel as strings.
std::string digest_hex(std::uint64_t digest);

/// Parses digest_hex output (with or without the 0x prefix). Returns false
/// on malformed input.
bool parse_digest_hex(std::string_view text, std::uint64_t* out);

}  // namespace vafs::obs
