#include "obs/timeline.h"

#include <algorithm>
#include <bit>
#include <cassert>

namespace vafs::obs {

FixedBinHistogram::FixedBinHistogram(HistogramSpec spec)
    : spec_(spec),
      width_((spec.hi - spec.lo) / static_cast<double>(spec.bins > 0 ? spec.bins : 1)),
      counts_(spec.bins > 0 ? spec.bins : 1, 0) {
  assert(spec.hi > spec.lo);
}

void FixedBinHistogram::add(double value) {
  std::size_t bin;
  if (value < spec_.lo) {
    bin = 0;
  } else if (value >= spec_.hi) {
    bin = counts_.size() - 1;
  } else {
    bin = static_cast<std::size_t>((value - spec_.lo) / width_);
    bin = std::min(bin, counts_.size() - 1);  // guard hi-adjacent rounding
  }
  ++counts_[bin];
  ++total_;
}

void FixedBinHistogram::merge(const FixedBinHistogram& other) {
  assert(spec_ == other.spec_ && "histogram merge requires matching specs");
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  total_ += other.total_;
}

double FixedBinHistogram::bin_lo(std::size_t bin) const {
  return spec_.lo + width_ * static_cast<double>(bin);
}

double FixedBinHistogram::bin_hi(std::size_t bin) const {
  return bin + 1 == counts_.size() ? spec_.hi : spec_.lo + width_ * static_cast<double>(bin + 1);
}

const char* series_name(SeriesId id) {
  switch (id) {
    case SeriesId::kFreqKhz: return "freq_khz";
    case SeriesId::kBufferSeconds: return "buffer_s";
    case SeriesId::kBandwidthMbps: return "bandwidth_mbps";
    case SeriesId::kCpuPowerMw: return "cpu_power_mw";
  }
  return "?";
}

const char* series_unit(SeriesId id) {
  switch (id) {
    case SeriesId::kFreqKhz: return "kHz";
    case SeriesId::kBufferSeconds: return "s";
    case SeriesId::kBandwidthMbps: return "Mbps";
    case SeriesId::kCpuPowerMw: return "mW";
  }
  return "?";
}

HistogramSpec series_histogram_spec(SeriesId id) {
  switch (id) {
    case SeriesId::kFreqKhz: return {0.0, 3.2e6, 32};
    case SeriesId::kBufferSeconds: return {0.0, 30.0, 30};
    case SeriesId::kBandwidthMbps: return {0.0, 80.0, 40};
    case SeriesId::kCpuPowerMw: return {0.0, 4000.0, 40};
  }
  return {};
}

void Series::push(sim::SimTime at, double value) {
  samples_.push_back(Sample{at.as_micros(), value});
  hist_.add(value);
  stats_.add(value);
}

namespace {

/// Total order on samples: time, then value bit pattern. Bit comparison
/// makes merges of equal-time samples deterministic regardless of the
/// merge grouping (IEEE `<` would leave NaNs and ±0.0 unordered).
bool sample_less(const Sample& x, const Sample& y) {
  if (x.t_us != y.t_us) return x.t_us < y.t_us;
  return std::bit_cast<std::uint64_t>(x.value) < std::bit_cast<std::uint64_t>(y.value);
}

}  // namespace

void Series::merge(const Series& other) {
  // Concatenate + sort rather than std::merge: a session may push several
  // samples at one instant in non-bit order, so the inputs are only sorted
  // by time. Sorting the union under the total order yields the sorted
  // multiset union — the same sequence for any merge grouping.
  samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
  std::stable_sort(samples_.begin(), samples_.end(), sample_less);
  hist_.merge(other.hist_);
  stats_.merge(other.stats_);
}

Timeline::Timeline() {
  for (std::size_t i = 0; i < kSeriesCount; ++i) {
    series_[i] = Series(series_histogram_spec(static_cast<SeriesId>(i)));
  }
}

void Timeline::merge(const Timeline& other) {
  for (std::size_t i = 0; i < kSeriesCount; ++i) series_[i].merge(other.series_[i]);
}

}  // namespace vafs::obs
