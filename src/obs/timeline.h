// Timeline series for the observability layer: named (sim-time, value)
// sample streams with fixed-bin histograms. Histogram counts are integral
// and merges are exact, so merging per-session timelines is associative
// and order-independent (the property tests assert it); the floating
// summary stats merge by parallel Welford, which is order-stable only up
// to rounding.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "simcore/stats.h"
#include "simcore/time.h"

namespace vafs::obs {

struct HistogramSpec {
  double lo = 0.0;
  double hi = 1.0;
  std::uint32_t bins = 32;

  bool operator==(const HistogramSpec&) const = default;
};

/// Fixed-bin counting histogram over [lo, hi); out-of-range samples land
/// in saturating edge bins (kernel time_in_state style). Counts are u64,
/// so merge (element-wise add) is exactly associative and commutative.
class FixedBinHistogram {
 public:
  FixedBinHistogram() : FixedBinHistogram(HistogramSpec{}) {}
  explicit FixedBinHistogram(HistogramSpec spec);

  void add(double value);
  /// Element-wise count addition. Specs must match (asserted).
  void merge(const FixedBinHistogram& other);

  const HistogramSpec& spec() const { return spec_; }
  std::size_t bins() const { return counts_.size(); }
  std::uint64_t count(std::size_t bin) const { return counts_[bin]; }
  std::uint64_t total() const { return total_; }
  double bin_lo(std::size_t bin) const;
  double bin_hi(std::size_t bin) const;

  bool operator==(const FixedBinHistogram& other) const {
    return spec_ == other.spec_ && counts_ == other.counts_ && total_ == other.total_;
  }

 private:
  HistogramSpec spec_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// The well-known per-session series every instrumented session maintains.
enum class SeriesId : std::uint8_t {
  kFreqKhz,        // big-cluster programmed frequency at each transition
  kBufferSeconds,  // playback buffer level at arrivals and presentations
  kBandwidthMbps,  // link rate observed passively at downloader pumps
  kCpuPowerMw,     // mean CPU power over each constant-frequency segment
};
inline constexpr std::size_t kSeriesCount = 4;

const char* series_name(SeriesId id);
const char* series_unit(SeriesId id);
HistogramSpec series_histogram_spec(SeriesId id);

struct Sample {
  std::int64_t t_us = 0;
  double value = 0.0;

  bool operator==(const Sample&) const = default;
};

/// One sample stream: retained samples (time order), a fixed-bin histogram
/// and running summary stats.
class Series {
 public:
  Series() = default;
  explicit Series(HistogramSpec spec) : hist_(spec) {}

  void push(sim::SimTime at, double value);

  /// Merges `other` into this series: samples are merge-sorted under the
  /// total order (t_us, value-bits) — so repeated merges commute and
  /// associate exactly — histograms add, stats merge (parallel Welford).
  void merge(const Series& other);

  const std::vector<Sample>& samples() const { return samples_; }
  const FixedBinHistogram& hist() const { return hist_; }
  const sim::OnlineStats& stats() const { return stats_; }

 private:
  std::vector<Sample> samples_;
  FixedBinHistogram hist_;
  sim::OnlineStats stats_;
};

/// The fixed set of well-known series, preallocated so instrumented hot
/// paths index an array instead of hashing names.
class Timeline {
 public:
  Timeline();

  void push(SeriesId id, sim::SimTime at, double value) {
    series_[static_cast<std::size_t>(id)].push(at, value);
  }
  Series& at(SeriesId id) { return series_[static_cast<std::size_t>(id)]; }
  const Series& at(SeriesId id) const { return series_[static_cast<std::size_t>(id)]; }

  void merge(const Timeline& other);

 private:
  std::array<Series, kSeriesCount> series_;
};

}  // namespace vafs::obs
