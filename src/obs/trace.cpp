#include "obs/trace.h"

#include <cassert>

namespace vafs::obs {
namespace {

/// splitmix64 finalizer: avalanche each word before folding it, so events
/// differing in one low bit flip roughly half the digest.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

constexpr std::uint64_t kDigestSeed = 0xCBF29CE484222325ULL;  // FNV offset basis
constexpr std::uint64_t kDigestPrime = 0x100000001B3ULL;      // FNV prime

constexpr std::uint64_t fold(std::uint64_t h, std::uint64_t word) {
  return (h ^ mix64(word)) * kDigestPrime;
}

constexpr EventInfo kEventInfos[kEventKindCount] = {
    // name, track, phase, arg names
    {"session", Track::kSession, Phase::kBegin, "seed", "media_us", nullptr},
    {"session", Track::kSession, Phase::kEnd, nullptr, nullptr, nullptr},
    {"fault_window", Track::kSession, Phase::kComplete, "fault_kind", "duration_us",
     "magnitude_ppm"},
    {"player_state", Track::kPlayer, Phase::kInstant, "from", "to", nullptr},
    {"segment", Track::kPlayer, Phase::kAsyncBegin, "segment", "rep", "bytes"},
    {"segment", Track::kPlayer, Phase::kAsyncEnd, "segment", "status", "attempts"},
    {"seek", Track::kPlayer, Phase::kInstant, "target_segment", nullptr, nullptr},
    {"frame_drop", Track::kPlayer, Phase::kInstant, "frame", nullptr, nullptr},
    {"decode", Track::kDecode, Phase::kBegin, "frame", nullptr, nullptr},
    {"decode", Track::kDecode, Phase::kEnd, "frame", "cycles", "class"},
    {"fetch", Track::kNet, Phase::kAsyncBegin, "job", "bytes", nullptr},
    {"fetch", Track::kNet, Phase::kAsyncEnd, "job", "error", "attempts"},
    {"attempt", Track::kNet, Phase::kAsyncBegin, "job", "attempt", "fate"},
    {"attempt", Track::kNet, Phase::kAsyncEnd, "job", "attempt", "error"},
    {"retry_backoff", Track::kNet, Phase::kInstant, "job", "backoff_us", "next_attempt"},
    {"governor_sample", Track::kGovernor, Phase::kInstant, "khz_before", "khz_after", nullptr},
    {"governor_decision", Track::kGovernor, Phase::kInstant, "requested_khz", "relation",
     "resolved_khz"},
    {"freq_change", Track::kCpu, Phase::kInstant, "old_khz", "new_khz", "cluster"},
    {"vafs_plan", Track::kVafs, Phase::kInstant, "player_state", "boosted", "latency_critical"},
    {"setspeed_write", Track::kVafs, Phase::kInstant, "khz", "errno", "cluster"},
    {"fallback", Track::kWatchdog, Phase::kBegin, "mode", "cause", nullptr},
    {"fallback", Track::kWatchdog, Phase::kEnd, nullptr, nullptr, nullptr},
    {"throttle_step", Track::kThermal, Phase::kInstant, "step", "capped_khz", nullptr},
    {"inject_fetch_fail", Track::kFault, Phase::kInstant, "delay_us", nullptr, nullptr},
    {"inject_fetch_hang", Track::kFault, Phase::kInstant, nullptr, nullptr, nullptr},
    {"inject_sysfs_error", Track::kFault, Phase::kInstant, "errno", nullptr, nullptr},
    {"worker_spawn", Track::kHarness, Phase::kInstant, "worker", "pid", nullptr},
    {"worker_exit", Track::kHarness, Phase::kInstant, "worker", "fate", "status"},
    {"task_dispatch", Track::kHarness, Phase::kInstant, "task", "worker", "attempt"},
    {"task_retry", Track::kHarness, Phase::kInstant, "task", "attempt", "fate"},
    {"task_quarantine", Track::kHarness, Phase::kInstant, "task", "attempts", nullptr},
    {"heartbeat_miss", Track::kHarness, Phase::kInstant, "worker", "silent_ms", nullptr},
    {"task_deadline", Track::kHarness, Phase::kInstant, "task", "worker", "deadline_ms"},
    {"worker_over_budget", Track::kHarness, Phase::kInstant, "worker", "rss_mib", "limit_mib"},
    {"serve_connect", Track::kServe, Phase::kInstant, "conn", nullptr, nullptr},
    {"serve_disconnect", Track::kServe, Phase::kInstant, "conn", "requests", nullptr},
    {"serve_request", Track::kServe, Phase::kComplete, "stream", "duration_us", "frame"},
    {"serve_reject", Track::kServe, Phase::kInstant, "conn", "reason", nullptr},
    {"serve_error", Track::kServe, Phase::kInstant, "conn", "error", nullptr},
};

}  // namespace

const char* track_name(Track track) {
  switch (track) {
    case Track::kSession: return "session";
    case Track::kPlayer: return "player";
    case Track::kDecode: return "decode";
    case Track::kNet: return "net";
    case Track::kGovernor: return "governor";
    case Track::kCpu: return "cpu";
    case Track::kVafs: return "vafs";
    case Track::kWatchdog: return "watchdog";
    case Track::kThermal: return "thermal";
    case Track::kFault: return "fault";
    case Track::kHarness: return "harness";
    case Track::kServe: return "serve";
  }
  return "?";
}

const EventInfo& event_info(EventKind kind) {
  const auto i = static_cast<std::size_t>(kind);
  assert(i < kEventKindCount);
  return kEventInfos[i];
}

std::uint64_t chain_digest(std::uint64_t chain, std::uint64_t session_digest) {
  return fold(chain, session_digest);
}

Tracer::Tracer(Config config) : capacity_(config.ring_capacity), digest_(kDigestSeed) {}

void Tracer::record(sim::SimTime at, EventKind kind, std::uint64_t a, std::uint64_t b,
                    std::uint64_t c) {
  std::uint64_t h = digest_;
  h = fold(h, static_cast<std::uint64_t>(kind));
  h = fold(h, static_cast<std::uint64_t>(at.as_micros()));
  h = fold(h, a);
  h = fold(h, b);
  h = fold(h, c);
  digest_ = h;

  ++recorded_;
  if (recorded_ % kCheckpointInterval == 0) {
    checkpoints_.push_back(digest_);
    // Mirror order matters for readers: publish the digest before the
    // event count so a count of N always pairs with a digest at least as
    // new as checkpoint N (the heartbeat reader tolerates newer).
    if (mirror_digest_ != nullptr) mirror_digest_->store(digest_, std::memory_order_relaxed);
    if (mirror_events_ != nullptr) mirror_events_->store(recorded_, std::memory_order_release);
  }

  if (capacity_ == 0) {
    ++dropped_;
    return;
  }
  TraceEvent ev;
  ev.t_us = at.as_micros();
  ev.kind = kind;
  ev.a = a;
  ev.b = b;
  ev.c = c;
  if (ring_.size() < capacity_) {
    ring_.push_back(ev);
  } else {
    ring_[head_] = ev;
    head_ = (head_ + 1) % capacity_;
    ++dropped_;
  }
}

const TraceEvent& Tracer::event(std::size_t i) const {
  assert(i < ring_.size());
  return ring_.size() < capacity_ ? ring_[i] : ring_[(head_ + i) % capacity_];
}

}  // namespace vafs::obs
