// Structured session tracing — the observability core.
//
// A Tracer records a typed event stream (spans, instants, counters) with
// sim-time stamps into a per-session ring buffer, and folds every event
// into a streaming 64-bit digest at record time. The digest is a canonical
// fingerprint of the session's *behaviour*: two runs produce the same
// digest iff they executed the same events with the same integer payloads
// in the same order, so it detects regressions that shift trajectories
// without moving any aggregate metric (frequency oscillation, watchdog
// flapping, retry-pattern changes).
//
// Determinism contract: events carry only integral payloads (micros, kHz,
// counts, ids, enum codes — doubles are quantized by the call site before
// recording), so the digest is bit-identical across compilers, optimization
// levels and --jobs widths. The digest streams, so ring-buffer eviction
// never changes it; a Tracer with ring_capacity = 0 is a pure digest sink
// that allocates nothing (the mode the experiment runner uses per task).
//
// Instrumented components hold a null-initialized `Tracer*` and guard
// every record with a pointer test — a detached session pays one untaken
// branch per site and is bit-identical to an uninstrumented build
// (verified by the observer-effect property tests and the perf gate).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/timeline.h"
#include "simcore/time.h"

namespace vafs::obs {

/// Logical track an event belongs to — rendered as one row ("thread") per
/// track in the Chrome trace export.
enum class Track : std::uint8_t {
  kSession,
  kPlayer,
  kDecode,
  kNet,
  kGovernor,
  kCpu,
  kVafs,
  kWatchdog,
  kThermal,
  kFault,
  // Appended in PR 8 (after every sim-facing track, so sim-event digests
  // are unchanged): supervisor-side worker lifecycle, stamped with wall
  // milliseconds since run start rather than sim time.
  kHarness,
  // Appended in PR 10: decision-daemon request spans and connection
  // lifecycle (src/serve), stamped with wall microseconds since server
  // start — never part of a session's own digest.
  kServe,
};
inline constexpr std::size_t kTrackCount = 12;

const char* track_name(Track track);

/// Chrome trace_event phase class of an event kind. Sync begin/end pairs
/// (kBegin/kEnd) require strict stack nesting per track and are used only
/// for strictly serial spans (decode, watchdog fallback, the session
/// itself); overlappable spans (fetches, attempts, segments) use async
/// begin/end (kAsyncBegin/kAsyncEnd) paired by their first argument.
enum class Phase : std::uint8_t {
  kInstant,
  kBegin,
  kEnd,
  kAsyncBegin,
  kAsyncEnd,
  kComplete,  // self-contained span; arg1 carries the duration in micros
};

/// The event taxonomy. Argument meanings (a, b, c) per kind are listed in
/// event_info(); every argument is integral by construction.
enum class EventKind : std::uint8_t {
  // Session track.
  kSessionBegin,     // a=seed, b=media_us
  kSessionEnd,
  kFaultWindow,      // a=fault kind, b=duration_us, c=magnitude_ppm
  // Player track.
  kPlayerState,      // a=from, b=to (PlayerState codes)
  kSegmentBegin,     // async id=a: a=segment, b=rep, c=bytes
  kSegmentEnd,       // async id=a: a=segment, b=status(0 ok,1 failed,2 stale), c=attempts
  kSeek,             // a=target segment
  kFrameDrop,        // a=frame
  // Decode track (strictly serial: sync span).
  kDecodeBegin,      // a=frame
  kDecodeEnd,        // a=frame, b=cycles, c=class(0 P,1 IDR,2 cancelled)
  // Net track.
  kFetchBegin,       // async id=a: a=job, b=bytes
  kFetchEnd,         // async id=a: a=job, b=error(FetchError), c=attempts
  kAttemptBegin,     // async id=a: a=job, b=attempt, c=fate(FetchFate)
  kAttemptEnd,       // async id=a: a=job, b=attempt, c=error(FetchError)
  kRetryBackoff,     // a=job, b=backoff_us, c=next attempt
  // Governor track.
  kGovernorSample,   // a=khz before the sample, b=khz after
  kGovernorDecision, // a=requested khz, b=relation, c=resolved khz
  // Cpu track.
  kFreqChange,       // a=old khz, b=new khz, c=cluster(0 big,1 little)
  // Vafs track.
  kVafsPlan,         // a=player state, b=boosted, c=latency_critical
  kSetspeedWrite,    // a=khz, b=errno(0 ok), c=cluster
  // Watchdog track (serial: sync span).
  kFallbackBegin,    // a=mode, b=cause(0 writes,1 misses,2 attach)
  kFallbackEnd,
  // Thermal track.
  kThrottleStep,     // a=step, b=capped khz
  // Fault track (runtime injections; planned windows are kFaultWindow).
  kInjectFetchFail,  // a=injected delay_us
  kInjectFetchHang,
  kInjectSysfsError, // a=errno code
  // Harness track (appended in PR 8; supervisor-recorded, wall-time
  // stamped — never part of a session's own digest).
  kWorkerSpawn,       // a=worker slot, b=pid
  kWorkerExit,        // a=worker slot, b=WorkerFate code, c=status/signal
  kTaskDispatch,      // a=task index, b=worker slot, c=attempt
  kTaskRetry,         // a=task index, b=attempt, c=WorkerFate code
  kTaskQuarantine,    // a=task index, b=attempts
  kHeartbeatMiss,     // a=worker slot, b=silent_ms
  kTaskDeadline,      // a=task index, b=worker slot, c=deadline_ms
  kWorkerOverBudget,  // a=worker slot, b=rss_mib, c=limit_mib
  // Serve track (appended in PR 10; daemon-recorded, wall-time stamped).
  kServeConnect,      // a=connection id
  kServeDisconnect,   // a=connection id, b=requests served
  kServeRequest,      // a=stream id, b=duration_us, c=frame type
  kServeReject,       // a=connection id, b=reason(0 capacity)
  kServeError,        // a=connection id, b=WireError code
};
inline constexpr std::size_t kEventKindCount = 39;

/// Static descriptor of an event kind: display name, track, phase and
/// argument names (nullptr = unused). Drives the Chrome exporter, the
/// golden-diff pretty printer and the span-nesting checker.
struct EventInfo {
  const char* name;
  Track track;
  Phase phase;
  const char* arg_a;
  const char* arg_b;
  const char* arg_c;
};

const EventInfo& event_info(EventKind kind);

/// Folds one session digest into a running chain with the same
/// avalanche-and-multiply step the per-event digest uses. Chaining the
/// per-session digests of a grid in canonical (scenario, seed) order gives
/// a single order-sensitive fingerprint of the whole run — the quantity
/// fleet checkpoints carry and the nightly kill/resume job compares.
/// chain_digest(0, ...) starts a fresh chain.
std::uint64_t chain_digest(std::uint64_t chain, std::uint64_t session_digest);

struct TraceEvent {
  std::int64_t t_us = 0;
  EventKind kind = EventKind::kSessionBegin;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint64_t c = 0;
};

class Tracer {
 public:
  struct Config {
    /// Events retained for export/diffing; older events are evicted (the
    /// digest is unaffected). 0 = digest-only mode: no event storage at
    /// all — the allocation-free default for grid runs.
    std::size_t ring_capacity = 1 << 16;
  };

  /// Running digest checkpoint cadence: checkpoints() holds the digest
  /// after every kCheckpointInterval-th event, letting a golden mismatch
  /// be localized to a small window without storing reference streams.
  static constexpr std::uint64_t kCheckpointInterval = 64;

  Tracer() : Tracer(Config{}) {}
  explicit Tracer(Config config);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void record(sim::SimTime at, EventKind kind, std::uint64_t a = 0, std::uint64_t b = 0,
              std::uint64_t c = 0);

  /// Canonical 64-bit digest of the full ordered event stream so far.
  std::uint64_t digest() const { return digest_; }
  /// Events recorded (including any evicted from the ring).
  std::uint64_t recorded() const { return recorded_; }
  /// Events evicted from the ring (0 in digest-only mode counts nothing
  /// as stored, so everything recorded counts as dropped there).
  std::uint64_t dropped() const { return dropped_; }

  /// Digest after event (i+1)*kCheckpointInterval, for each full block.
  const std::vector<std::uint64_t>& checkpoints() const { return checkpoints_; }

  /// Mirrors each digest checkpoint (event count + digest) into the given
  /// atomics as it is taken — the supervised worker's heartbeat thread
  /// reads them to report the in-flight task's "last obs checkpoint
  /// window" without touching the (single-threaded) tracer itself. The
  /// atomics must outlive the tracer; pass nullptrs to detach.
  void mirror_checkpoints(std::atomic<std::uint64_t>* events, std::atomic<std::uint64_t>* digest) {
    mirror_events_ = events;
    mirror_digest_ = digest;
  }

  // Retained events, oldest first.
  std::size_t size() const { return ring_.size(); }
  /// i in [0, size()); index 0 is the oldest retained event. The absolute
  /// stream index of event(i) is recorded() - size() + i.
  const TraceEvent& event(std::size_t i) const;

  /// Timeline series (frequency / buffer / bandwidth / power) attached to
  /// this tracer; instrumented components push samples here.
  Timeline& timeline() { return timeline_; }
  const Timeline& timeline() const { return timeline_; }

 private:
  std::size_t capacity_;
  std::vector<TraceEvent> ring_;
  std::size_t head_ = 0;  // slot the next event lands in once the ring is full
  std::uint64_t recorded_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t digest_;
  std::vector<std::uint64_t> checkpoints_;
  std::atomic<std::uint64_t>* mirror_events_ = nullptr;
  std::atomic<std::uint64_t>* mirror_digest_ = nullptr;
  Timeline timeline_;
};

}  // namespace vafs::obs
