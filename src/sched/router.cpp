#include "sched/router.h"

#include <cassert>
#include <string_view>
#include <utility>

namespace vafs::sched {

ClusterRouter::ClusterRouter(std::vector<ClusterRef> clusters)
    : clusters_(std::move(clusters)), decode_counts_(clusters_.size(), 0) {
  assert(!clusters_.empty() && "router needs at least one cluster");
  assert(clusters_.size() <= (1u << 7) && "cluster index must fit the id namespace byte");
  for (std::size_t i = 1; i < clusters_.size(); ++i) {
    if (capacity_khz(i) > capacity_khz(primary_cluster_)) primary_cluster_ = i;
    if (capacity_khz(i) < capacity_khz(network_cluster_)) network_cluster_ = i;
  }
  decode_cluster_ = primary_cluster_;
}

ClusterRouter::ClusterRouter(cpu::CpuModel& big, cpu::CpuModel& little,
                             double little_cycle_penalty)
    : ClusterRouter(std::vector<ClusterRef>{{&big, 1.0}, {&little, little_cycle_penalty}}) {}

double ClusterRouter::capacity_khz(std::size_t i) const {
  return static_cast<double>(clusters_[i].cpu->opps().max().freq_khz) /
         clusters_[i].cycle_penalty;
}

std::uint64_t ClusterRouter::submit(std::string_view name, double cycles,
                                    sim::EventFn on_complete) {
  const bool is_decode = name.starts_with("decode");
  const std::size_t target = is_decode ? decode_cluster_ : network_cluster_;
  if (is_decode) ++decode_counts_[target];
  const std::uint64_t raw = clusters_[target].cpu->submit(
      name, cycles * clusters_[target].cycle_penalty, std::move(on_complete));
  // Cluster index in the top byte: ids stay unique across clusters and
  // cancel() dispatches exactly. CpuModel ids count up from 1, far below
  // 2^56; cluster 0 ids are numerically identical to the raw ids.
  return raw | (static_cast<std::uint64_t>(target) << kClusterShift);
}

bool ClusterRouter::cancel(std::uint64_t id) {
  const std::size_t target = static_cast<std::size_t>(id >> kClusterShift);
  if (target >= clusters_.size()) return false;
  return clusters_[target].cpu->cancel(id & ((1ULL << kClusterShift) - 1));
}

void ClusterRouter::set_decode_cluster(std::size_t i) {
  assert(i < clusters_.size());
  if (i == decode_cluster_) return;
  decode_cluster_ = i;
  ++migrations_;
}

std::uint64_t ClusterRouter::decode_tasks_on_little() const {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < decode_counts_.size(); ++i) {
    if (i != primary_cluster_) total += decode_counts_[i];
  }
  return total;
}

}  // namespace vafs::sched
