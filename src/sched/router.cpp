#include "sched/router.h"

#include <string_view>

namespace vafs::sched {

const char* cluster_name(Cluster c) { return c == Cluster::kBig ? "big" : "little"; }

ClusterRouter::ClusterRouter(cpu::CpuModel& big, cpu::CpuModel& little,
                             double little_cycle_penalty)
    : big_(big), little_(little), little_penalty_(little_cycle_penalty) {}

std::uint64_t ClusterRouter::submit(std::string_view name, double cycles,
                                    sim::EventFn on_complete) {
  const bool is_decode = name.starts_with("decode");
  if (is_decode && decode_cluster_ == Cluster::kBig) {
    ++decode_big_;
    return big_.submit(name, cycles, std::move(on_complete));
  }
  if (is_decode) ++decode_little_;
  // LITTLE: inflate the cycle count by the IPC penalty.
  return little_.submit(name, cycles * little_penalty_, std::move(on_complete));
}

bool ClusterRouter::cancel(std::uint64_t id) {
  if (big_.cancel(id)) return true;
  return little_.cancel(id);
}

void ClusterRouter::set_decode_cluster(Cluster c) {
  if (c == decode_cluster_) return;
  decode_cluster_ = c;
  ++migrations_;
}

}  // namespace vafs::sched
