// Heterogeneous-cluster task routing: a CpuSink that places pipeline tasks
// on one of N clusters.
//
// Placement policy mirrors what Android affinity / EAS achieves for a
// video pipeline: network-stack work (latency-insensitive, light) always
// runs on the most efficient cluster (lowest capacity); decode runs on
// whichever cluster the current policy selects — statically the primary
// (highest-capacity) cluster, or moved by the VAFS controller when the
// predicted demand fits a smaller cluster's capacity. Tasks already
// submitted stay where they are; routing affects future submissions only
// (cheap "migration", no state to move in this model).
//
// Task ids are namespaced per cluster (the owning cluster's index rides in
// the id's top byte), so cancel() dispatches to exactly the submitting
// cluster. The pre-namespace design forwarded raw CpuModel ids — unique
// per model, not across them — and broke ties big-first on cancel, which
// could cancel a same-id task on the wrong cluster.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "cpu/cpu_model.h"
#include "cpu/cpu_sink.h"

namespace vafs::sched {

class ClusterRouter final : public cpu::CpuSink {
 public:
  /// One routable cluster: the model plus its reference-cycle inflation
  /// (a task of N reference cycles needs cycle_penalty·N cycles there).
  struct ClusterRef {
    cpu::CpuModel* cpu = nullptr;
    double cycle_penalty = 1.0;
  };

  /// All clusters must outlive the router; at least one is required.
  /// Decode starts on the highest-capacity cluster; network work always
  /// goes to the lowest-capacity one (ties: the earliest such cluster).
  explicit ClusterRouter(std::vector<ClusterRef> clusters);

  /// Two-cluster convenience (the big.LITTLE shape): big has penalty 1.
  ClusterRouter(cpu::CpuModel& big, cpu::CpuModel& little, double little_cycle_penalty = 1.7);

  /// Routes by task class: "decode" tasks to the decode cluster, all
  /// network/other tasks to the network cluster; cycles are inflated by
  /// the target cluster's penalty. The returned id is cluster-namespaced.
  std::uint64_t submit(std::string_view name, double cycles,
                       sim::EventFn on_complete) override;

  /// Cancels on the cluster encoded in the id.
  bool cancel(std::uint64_t id) override;

  std::size_t cluster_count() const { return clusters_.size(); }
  cpu::CpuModel& cluster(std::size_t i) { return *clusters_[i].cpu; }
  double cycle_penalty(std::size_t i) const { return clusters_[i].cycle_penalty; }
  /// Reference-cycle retire rate at f_max (kHz-equivalents): f_max/penalty.
  double capacity_khz(std::size_t i) const;

  void set_decode_cluster(std::size_t i);
  std::size_t decode_cluster() const { return decode_cluster_; }
  /// Where non-decode (network, audio) work runs: lowest capacity.
  std::size_t network_cluster() const { return network_cluster_; }
  /// Decode's static home: highest capacity (the router's initial choice).
  std::size_t primary_cluster() const { return primary_cluster_; }

  std::uint64_t decode_tasks_on(std::size_t i) const { return decode_counts_[i]; }
  std::uint64_t migrations() const { return migrations_; }

  // Flattened big.LITTLE-era views (primary vs everything else), kept so
  // the existing result plumbing and bench tables stay source-compatible.
  std::uint64_t decode_tasks_on_big() const { return decode_counts_[primary_cluster_]; }
  std::uint64_t decode_tasks_on_little() const;

 private:
  static constexpr std::uint64_t kClusterShift = 56;

  std::vector<ClusterRef> clusters_;
  std::vector<std::uint64_t> decode_counts_;
  std::size_t primary_cluster_ = 0;
  std::size_t network_cluster_ = 0;
  std::size_t decode_cluster_ = 0;
  std::uint64_t migrations_ = 0;
};

}  // namespace vafs::sched
