// big.LITTLE task routing: a CpuSink that places pipeline tasks on one of
// two clusters.
//
// Placement policy mirrors what Android affinity / EAS achieves for a
// video pipeline: network-stack work (latency-insensitive, light) always
// runs on the LITTLE cluster; decode runs on whichever cluster the current
// policy selects — statically the big cluster, or moved by the VAFS
// controller when the predicted demand fits the LITTLE cluster's capacity.
// Tasks already submitted stay where they are; routing affects future
// submissions only (cheap "migration", no state to move in this model).
#pragma once

#include <cstdint>
#include <string_view>

#include "cpu/cpu_model.h"
#include "cpu/cpu_sink.h"

namespace vafs::sched {

enum class Cluster { kBig, kLittle };

const char* cluster_name(Cluster c);

class ClusterRouter final : public cpu::CpuSink {
 public:
  /// Both clusters must outlive the router. Decode starts on big.
  /// `little_cycle_penalty` models the LITTLE cluster's lower IPC: a task
  /// of N big-core cycles needs penalty·N little-core cycles (in-order
  /// LITTLE cores retire ~60 % of a big core's work per cycle).
  ClusterRouter(cpu::CpuModel& big, cpu::CpuModel& little, double little_cycle_penalty = 1.7);

  /// Routes by task class: "decode" tasks to the decode cluster, all
  /// network/other tasks to LITTLE.
  std::uint64_t submit(std::string_view name, double cycles,
                       sim::EventFn on_complete) override;

  /// Tries both clusters (task ids are unique per CpuModel instance but
  /// not across them; ties are broken big-first, which is harmless for
  /// the pipeline's usage where ids are only cancelled once).
  bool cancel(std::uint64_t id) override;

  void set_decode_cluster(Cluster c);
  Cluster decode_cluster() const { return decode_cluster_; }

  cpu::CpuModel& big() { return big_; }
  cpu::CpuModel& little() { return little_; }
  double little_cycle_penalty() const { return little_penalty_; }

  std::uint64_t decode_tasks_on_big() const { return decode_big_; }
  std::uint64_t decode_tasks_on_little() const { return decode_little_; }
  std::uint64_t migrations() const { return migrations_; }

 private:
  cpu::CpuModel& big_;
  cpu::CpuModel& little_;
  double little_penalty_;
  Cluster decode_cluster_ = Cluster::kBig;
  std::uint64_t decode_big_ = 0;
  std::uint64_t decode_little_ = 0;
  std::uint64_t migrations_ = 0;
};

}  // namespace vafs::sched
