#include "serve/client.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <map>

#include "core/session.h"

namespace vafs::serve {
namespace {

[[noreturn]] void throw_transport(const char* what) {
  throw core::SessionError(std::string("serve: ") + what);
}

bool write_all(int fd, const std::uint8_t* buf, std::size_t len) {
  std::size_t sent = 0;
  while (sent < len) {
    // MSG_NOSIGNAL: a dead daemon surfaces as a SessionError via EPIPE,
    // never as a SIGPIPE killing the client process.
    const ssize_t n = send(fd, buf + sent, len - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool read_all(int fd, std::uint8_t* buf, std::size_t len) {
  std::size_t got = 0;
  while (got < len) {
    const ssize_t n = read(fd, buf + got, len - got);
    if (n == 0) return false;
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

ServeConnection::ServeConnection(const std::string& socket_path) {
  fd_ = socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) throw_transport("socket() failed");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    close(fd_);
    fd_ = -1;
    throw_transport("socket path too long");
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  if (connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    close(fd_);
    fd_ = -1;
    throw_transport("connect failed (daemon not running?)");
  }
}

ServeConnection::~ServeConnection() {
  if (fd_ >= 0) close(fd_);
}

void ServeConnection::send_frame(MsgType type, std::uint64_t stream_id,
                                 const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> frame;
  encode_frame(frame, type, stream_id, payload);
  if (!write_all(fd_, frame.data(), frame.size())) {
    broken_ = true;
    throw_transport("connection lost on send");
  }
}

MsgType ServeConnection::round_trip(MsgType type, std::uint64_t stream_id,
                                    const std::vector<std::uint8_t>& payload,
                                    std::vector<std::uint8_t>& reply_payload) {
  send_frame(type, stream_id, payload);

  std::uint8_t header_buf[kWireHeaderSize];
  if (!read_all(fd_, header_buf, kWireHeaderSize)) {
    broken_ = true;
    throw_transport("connection lost awaiting reply");
  }
  FrameHeader header;
  if (decode_header(header_buf, header) != WireError::kNone) {
    broken_ = true;
    throw_transport("malformed reply header");
  }
  reply_payload.resize(header.payload_len);
  if (header.payload_len > 0 &&
      !read_all(fd_, reply_payload.data(), reply_payload.size())) {
    broken_ = true;
    throw_transport("connection lost mid-reply");
  }
  if (verify_payload(header, reply_payload.data(), reply_payload.size()) !=
      WireError::kNone) {
    broken_ = true;
    throw_transport("reply checksum mismatch");
  }
  return header.type;
}

std::uint64_t ServeConnection::open_stream(const core::DecisionStreamInfo& info) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t id = next_stream_id_++;
  std::vector<std::uint8_t> payload;
  encode_stream_info(payload, info);
  std::vector<std::uint8_t> reply;
  const MsgType type = round_trip(MsgType::kHello, id, payload, reply);
  if (type == MsgType::kError) {
    WireError code = WireError::kNone;
    decode_error(reply.data(), reply.size(), code);
    throw core::SessionError(std::string("serve: stream rejected: ") + wire_error_name(code));
  }
  if (type != MsgType::kHelloOk) throw_transport("unexpected reply to hello");
  return id;
}

core::DecisionResponse ServeConnection::decide(std::uint64_t stream_id,
                                               const core::DecisionRequest& req) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::uint8_t> payload;
  encode_request(payload, req);
  std::vector<std::uint8_t> reply;
  const MsgType type = round_trip(MsgType::kDecide, stream_id, payload, reply);
  if (type == MsgType::kError) {
    WireError code = WireError::kNone;
    decode_error(reply.data(), reply.size(), code);
    throw core::SessionError(std::string("serve: decide failed: ") + wire_error_name(code));
  }
  if (type != MsgType::kDecision) throw_transport("unexpected reply to decide");
  core::DecisionResponse resp;
  if (!decode_response(reply.data(), reply.size(), resp)) {
    broken_ = true;
    throw_transport("malformed decision payload");
  }
  return resp;
}

void ServeConnection::close_stream(std::uint64_t stream_id) noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  if (broken_ || fd_ < 0) return;
  std::vector<std::uint8_t> frame;
  encode_frame(frame, MsgType::kClose, stream_id, {});
  if (!write_all(fd_, frame.data(), frame.size())) broken_ = true;
}

bool ServeConnection::ping() noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  try {
    std::vector<std::uint8_t> reply;
    return round_trip(MsgType::kPing, 0, {}, reply) == MsgType::kPong;
  } catch (const core::SessionError&) {
    return false;
  }
}

std::shared_ptr<ServeConnection> SocketBackend::thread_connection() {
  // One connection per (backend, thread). Keyed by a process-unique
  // backend id, not the pointer, so a recycled address never resurrects a
  // connection to an older daemon.
  thread_local std::map<std::uint64_t, std::shared_ptr<ServeConnection>> per_thread;
  auto& slot = per_thread[id_];
  if (!slot || slot->broken()) slot = nullptr;
  if (!slot) {
    slot = std::make_shared<ServeConnection>(socket_path_);
    connections_.fetch_add(1, std::memory_order_relaxed);
  }
  return slot;
}

std::unique_ptr<core::DecisionStream> SocketBackend::open(
    const core::DecisionStreamInfo& info) {
  std::shared_ptr<ServeConnection> conn = thread_connection();
  const std::uint64_t id = conn->open_stream(info);
  return std::make_unique<RemoteDecisionStream>(std::move(conn), id);
}

namespace {
std::atomic<std::uint64_t> g_backend_ids{1};
}

std::uint64_t SocketBackend::allocate_id() {
  return g_backend_ids.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace vafs::serve
