// Client side of the decision daemon protocol.
//
// ServeConnection is one Unix-socket connection: it frames messages,
// verifies reply checksums, and serializes round trips with a mutex so
// several streams can share it. RemoteDecisionStream adapts one (conn,
// stream id) pair to the core::DecisionStream interface — any transport
// or server failure surfaces as core::SessionError, which the session
// layer already captures per task. SocketBackend is the piece the fleet
// plugs in: a DecisionBackend handing each worker thread its own lazily
// opened connection (one socket per thread, ids allocated per connection,
// zero cross-thread sharing).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "core/decision_core.h"
#include "serve/wire.h"

namespace vafs::serve {

class ServeConnection {
 public:
  /// Connects to the daemon at `socket_path`; throws core::SessionError
  /// if the connect fails.
  explicit ServeConnection(const std::string& socket_path);
  ~ServeConnection();

  ServeConnection(const ServeConnection&) = delete;
  ServeConnection& operator=(const ServeConnection&) = delete;

  /// Opens a daemon-side stream and returns its connection-scoped id.
  std::uint64_t open_stream(const core::DecisionStreamInfo& info);
  /// One decision round trip. Throws core::SessionError on transport
  /// failure or a server-side error reply.
  core::DecisionResponse decide(std::uint64_t stream_id, const core::DecisionRequest& req);
  /// Fire-and-forget stream close (best effort; errors ignored).
  void close_stream(std::uint64_t stream_id) noexcept;
  /// Health probe: true iff the daemon answered the ping.
  bool ping() noexcept;

  /// True after any transport failure: the connection is dead and every
  /// further call will throw. SocketBackend uses this to reconnect.
  bool broken() const { return broken_; }

 private:
  /// Sends one frame and reads the reply frame (verified). Throws
  /// core::SessionError on any transport or protocol failure; a kError
  /// reply is returned to the caller for classification.
  MsgType round_trip(MsgType type, std::uint64_t stream_id,
                     const std::vector<std::uint8_t>& payload,
                     std::vector<std::uint8_t>& reply_payload);
  void send_frame(MsgType type, std::uint64_t stream_id,
                  const std::vector<std::uint8_t>& payload);

  std::mutex mutex_;
  int fd_ = -1;
  bool broken_ = false;
  std::uint64_t next_stream_id_ = 0;
};

/// One remote decision stream (shared connection + id).
class RemoteDecisionStream final : public core::DecisionStream {
 public:
  RemoteDecisionStream(std::shared_ptr<ServeConnection> conn, std::uint64_t stream_id)
      : conn_(std::move(conn)), stream_id_(stream_id) {}
  ~RemoteDecisionStream() override { conn_->close_stream(stream_id_); }

  core::DecisionResponse decide(const core::DecisionRequest& request) override {
    return conn_->decide(stream_id_, request);
  }

 private:
  std::shared_ptr<ServeConnection> conn_;
  std::uint64_t stream_id_;
};

/// DecisionBackend over the daemon socket. Thread-compatible with the
/// experiment/fleet runners: each calling thread gets its own connection
/// (created on first open), so worker parallelism maps to connection
/// concurrency with no shared socket state between workers.
class SocketBackend final : public core::DecisionBackend {
 public:
  explicit SocketBackend(std::string socket_path) : socket_path_(std::move(socket_path)) {}

  std::unique_ptr<core::DecisionStream> open(const core::DecisionStreamInfo& info) override;

  const std::string& socket_path() const { return socket_path_; }
  /// Connections opened so far (monotonic; for tests/benchmarks).
  std::uint64_t connections_opened() const {
    return connections_.load(std::memory_order_relaxed);
  }

 private:
  static std::uint64_t allocate_id();
  std::shared_ptr<ServeConnection> thread_connection();

  std::string socket_path_;
  std::uint64_t id_ = allocate_id();
  std::atomic<std::uint64_t> connections_{0};
};

}  // namespace vafs::serve
