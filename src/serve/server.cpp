#include "serve/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace vafs::serve {
namespace {

constexpr int kPollMs = 50;       // stop-flag check cadence
constexpr int kDrainGraceMs = 1000;  // max wait for a mid-frame peer at drain

/// poll()-driven exact read. Returns 1 on success, 0 on orderly close or
/// drain, -1 on error. Drain semantics: once `stopping` flips, an idle
/// read (nothing consumed, not `committed` to a frame) gives up at the
/// next poll tick, while a mid-frame read keeps going so the in-flight
/// request is finished and answered — bounded by kDrainGraceMs in case
/// the peer wedged mid-send.
int read_exact(int fd, std::uint8_t* buf, std::size_t len, const std::atomic<bool>& stopping,
               bool committed) {
  std::size_t got = 0;
  int stopped_ticks = 0;
  while (got < len) {
    pollfd pfd{fd, POLLIN, 0};
    const int pr = poll(&pfd, 1, kPollMs);
    if (pr < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (pr == 0) {
      if (stopping.load(std::memory_order_acquire)) {
        if (!committed && got == 0) return 0;
        if (++stopped_ticks * kPollMs >= kDrainGraceMs) return 0;
      }
      continue;
    }
    const ssize_t n = read(fd, buf + got, len - got);
    if (n == 0) return 0;
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      return -1;
    }
    got += static_cast<std::size_t>(n);
  }
  return 1;
}

bool write_all(int fd, const std::uint8_t* buf, std::size_t len) {
  std::size_t sent = 0;
  while (sent < len) {
    // MSG_NOSIGNAL: a peer that died mid-reply is an EPIPE error, not a
    // process-killing SIGPIPE — this server is often hosted in-process by
    // tests and benches that do not ignore the signal.
    const ssize_t n = send(fd, buf + sent, len - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN) {
        pollfd pfd{fd, POLLOUT, 0};
        poll(&pfd, 1, kPollMs);
        continue;
      }
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

void append_error_frame(std::vector<std::uint8_t>& out, std::uint64_t stream_id,
                        WireError code) {
  std::vector<std::uint8_t> payload;
  encode_error(payload, code);
  encode_frame(out, MsgType::kError, stream_id, payload);
}

}  // namespace

Server::Server(ServerOptions options) : options_(std::move(options)) {}

Server::~Server() { stop(); }

bool Server::start() {
  if (running_.load(std::memory_order_acquire)) return true;

  listen_fd_ = socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return false;

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
    close(listen_fd_);
    listen_fd_ = -1;
    errno = ENAMETOOLONG;
    return false;
  }
  std::memcpy(addr.sun_path, options_.socket_path.c_str(), options_.socket_path.size() + 1);
  unlink(options_.socket_path.c_str());  // stale socket from a dead daemon
  if (bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0 ||
      listen(listen_fd_, options_.listen_backlog) < 0) {
    close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }

  start_time_ = std::chrono::steady_clock::now();
  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { accept_loop(); });
  return true;
}

void Server::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);
  if (accept_thread_.joinable()) accept_thread_.join();
  // The registry is stable now: only this thread mutates it.
  std::vector<std::unique_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    conns.swap(connections_);
  }
  for (auto& c : conns) {
    if (c->thread.joinable()) c->thread.join();
  }
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }
  unlink(options_.socket_path.c_str());
}

std::int64_t Server::wall_us() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - start_time_)
      .count();
}

void Server::trace(obs::EventKind kind, std::uint64_t a, std::uint64_t b, std::uint64_t c) {
  if (options_.tracer == nullptr) return;
  std::lock_guard<std::mutex> lock(tracer_mutex_);
  options_.tracer->record(sim::SimTime::micros(wall_us()), kind, a, b, c);
}

void Server::accept_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int pr = poll(&pfd, 1, kPollMs);
    if (pr <= 0) continue;
    const int fd = accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) continue;

    std::lock_guard<std::mutex> lock(connections_mutex_);
    // Reap finished connections so a long-lived daemon's registry doesn't
    // grow with churn (their threads have already flagged done).
    std::size_t live = 0;
    for (auto it = connections_.begin(); it != connections_.end();) {
      if ((*it)->done.load(std::memory_order_acquire)) {
        if ((*it)->thread.joinable()) (*it)->thread.join();
        it = connections_.erase(it);
      } else {
        ++live;
        ++it;
      }
    }
    if (live >= options_.max_connections) {
      // Bounded, observable backpressure: one error frame, then close.
      std::vector<std::uint8_t> reply;
      append_error_frame(reply, 0, WireError::kServerOverloaded);
      write_all(fd, reply.data(), reply.size());
      close(fd);
      rejected_.fetch_add(1, std::memory_order_relaxed);
      trace(obs::EventKind::kServeReject, next_connection_id_, 0);
      continue;
    }

    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    conn->id = next_connection_id_++;
    accepted_.fetch_add(1, std::memory_order_relaxed);
    trace(obs::EventKind::kServeConnect, conn->id);
    Connection* raw = conn.get();
    conn->thread = std::thread([this, raw] { serve_connection(*raw); });
    connections_.push_back(std::move(conn));
  }
}

void Server::serve_connection(Connection& conn) {
  StreamMap streams;
  std::uint8_t header_buf[kWireHeaderSize];
  std::vector<std::uint8_t> payload;
  std::vector<std::uint8_t> reply;

  for (;;) {
    // Between frames a drain request closes immediately; inside a frame
    // (header partially read, or payload pending) it finishes the frame
    // and answers it first.
    const int hr = read_exact(conn.fd, header_buf, kWireHeaderSize, stopping_,
                              /*committed=*/false);
    if (hr <= 0) break;

    FrameHeader header;
    const WireError herr = decode_header(header_buf, header);
    if (herr != WireError::kNone) {
      // The framing itself is broken — byte boundaries are gone, so no
      // reply can be framed reliably. Count it and drop the connection.
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      trace(obs::EventKind::kServeError, conn.id, static_cast<std::uint64_t>(herr));
      if (herr == WireError::kBadVersion || herr == WireError::kOversized) {
        // Header structure was intact: tell the peer why before closing.
        reply.clear();
        append_error_frame(reply, header.stream_id, herr);
        write_all(conn.fd, reply.data(), reply.size());
      }
      break;
    }

    payload.resize(header.payload_len);
    if (header.payload_len > 0) {
      const int prr = read_exact(conn.fd, payload.data(), payload.size(), stopping_,
                                 /*committed=*/true);
      if (prr <= 0) break;  // truncated frame: peer died mid-send
    }
    const WireError perr = verify_payload(header, payload.data(), payload.size());
    if (perr != WireError::kNone) {
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      trace(obs::EventKind::kServeError, conn.id, static_cast<std::uint64_t>(perr));
      reply.clear();
      append_error_frame(reply, header.stream_id, perr);
      if (!write_all(conn.fd, reply.data(), reply.size())) break;
      continue;  // framing is intact: the connection survives a bad payload
    }

    reply.clear();
    if (!handle_frame(conn, streams, header, payload, reply)) break;
    if (!reply.empty() && !write_all(conn.fd, reply.data(), reply.size())) break;

    if (stopping_.load(std::memory_order_acquire)) break;  // drained: answered in-flight
  }

  close(conn.fd);
  streams_closed_.fetch_add(streams.size(), std::memory_order_relaxed);
  closed_.fetch_add(1, std::memory_order_relaxed);
  trace(obs::EventKind::kServeDisconnect, conn.id, conn.requests);
  requests_.fetch_add(conn.requests, std::memory_order_relaxed);
  conn.done.store(true, std::memory_order_release);
}

bool Server::handle_frame(Connection& conn, StreamMap& streams, const FrameHeader& header,
                          const std::vector<std::uint8_t>& payload,
                          std::vector<std::uint8_t>& reply) {
  switch (header.type) {
    case MsgType::kPing:
      encode_frame(reply, MsgType::kPong, header.stream_id, {});
      return true;

    case MsgType::kHello: {
      if (streams.count(header.stream_id) != 0) {
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        append_error_frame(reply, header.stream_id, WireError::kDuplicateStream);
        return true;
      }
      core::DecisionStreamInfo info;
      if (!decode_stream_info(payload.data(), payload.size(), info)) {
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        trace(obs::EventKind::kServeError, conn.id,
              static_cast<std::uint64_t>(WireError::kShortPayload));
        append_error_frame(reply, header.stream_id, WireError::kShortPayload);
        return true;
      }
      try {
        streams.emplace(header.stream_id,
                        std::make_unique<core::DecisionCore>(info.config, info.geometry));
      } catch (const std::invalid_argument&) {
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        append_error_frame(reply, header.stream_id, WireError::kBadGeometry);
        return true;
      }
      streams_opened_.fetch_add(1, std::memory_order_relaxed);
      encode_frame(reply, MsgType::kHelloOk, header.stream_id, {});
      return true;
    }

    case MsgType::kDecide: {
      const auto it = streams.find(header.stream_id);
      if (it == streams.end()) {
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        append_error_frame(reply, header.stream_id, WireError::kUnknownStream);
        return true;
      }
      core::DecisionRequest req;
      if (!decode_request(payload.data(), payload.size(), req)) {
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        append_error_frame(reply, header.stream_id, WireError::kShortPayload);
        return true;
      }
      const auto t0 = std::chrono::steady_clock::now();
      const core::DecisionResponse resp = it->second->decide(req);
      const auto t1 = std::chrono::steady_clock::now();
      const std::uint64_t ns = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
      latency_.record_ns(ns);
      ++conn.requests;
      trace(obs::EventKind::kServeRequest, header.stream_id, ns / 1000,
            static_cast<std::uint64_t>(req.event));
      std::vector<std::uint8_t> body;
      encode_response(body, resp);
      encode_frame(reply, MsgType::kDecision, header.stream_id, body);
      return true;
    }

    case MsgType::kClose: {
      const auto it = streams.find(header.stream_id);
      if (it != streams.end()) {
        streams.erase(it);
        streams_closed_.fetch_add(1, std::memory_order_relaxed);
      }
      return true;  // fire-and-forget
    }

    case MsgType::kHelloOk:
    case MsgType::kDecision:
    case MsgType::kPong:
    case MsgType::kError:
      // Server-to-client message types arriving at the server: a confused
      // peer. Answer with an error; keep the (intact) connection.
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      append_error_frame(reply, header.stream_id, WireError::kBadType);
      return true;
  }
  return false;
}

ServerStats Server::stats() const {
  ServerStats s;
  s.connections_accepted = accepted_.load(std::memory_order_relaxed);
  s.connections_rejected = rejected_.load(std::memory_order_relaxed);
  s.connections_closed = closed_.load(std::memory_order_relaxed);
  s.streams_opened = streams_opened_.load(std::memory_order_relaxed);
  s.streams_closed = streams_closed_.load(std::memory_order_relaxed);
  s.requests = requests_.load(std::memory_order_relaxed);
  s.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  s.latency_p50_us = latency_.percentile_us(0.50);
  s.latency_p95_us = latency_.percentile_us(0.95);
  s.latency_p99_us = latency_.percentile_us(0.99);
  s.latency_mean_us = latency_.mean_us();
  return s;
}

}  // namespace vafs::serve
