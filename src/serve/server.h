// The VAFS decision daemon: a Unix-domain socket server multiplexing many
// per-connection decision streams.
//
// Threading model: one accept thread plus one thread per connection. A
// connection owns its streams outright — stream ids are connection-scoped
// and every DecisionCore is touched only by its connection's thread, so
// the server holds no cross-connection state and per-stream decision
// order is exactly the client's send order (the determinism proof's load-
// bearing property). Shared state is limited to relaxed-atomic counters,
// the connection registry, and an optional mutex-guarded tracer.
//
// Shutdown: stop() (or SIGTERM in vafsd) flips a flag every poll loop
// watches. Connection threads finish the frame currently in flight —
// including one mid-read — answer it, then close; the accept thread stops
// taking new work immediately. stop() joins everything and unlinks the
// socket, so a drained daemon exits 0 with no request dropped mid-answer.
//
// Backpressure: at most `max_connections` live connections. Beyond that
// the listener still accepts (the kernel backlog stays bounded), answers
// a single kServerOverloaded error frame, and closes — observable by the
// client and counted in stats().
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/trace.h"
#include "serve/stats.h"
#include "serve/wire.h"

namespace vafs::serve {

struct ServerOptions {
  std::string socket_path;
  /// Live-connection cap; further clients get an error frame and a close.
  std::size_t max_connections = 1024;
  /// Kernel accept backlog.
  int listen_backlog = 128;
  /// Optional request-span tracing on Track::kServe (mutex-guarded; meant
  /// for tests and small runs, not the 1000-stream benchmark).
  obs::Tracer* tracer = nullptr;
};

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and starts the accept thread. False (with errno
  /// intact) if the socket could not be bound.
  bool start();

  /// Requests drain, joins all threads, unlinks the socket. Idempotent.
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Point-in-time snapshot of counters and merged latency percentiles.
  ServerStats stats() const;

  const std::string& socket_path() const { return options_.socket_path; }

 private:
  struct Connection {
    int fd = -1;
    std::uint64_t id = 0;
    std::thread thread;
    std::atomic<bool> done{false};
    std::uint64_t requests = 0;  // connection-thread-local until disconnect
  };
  /// Connection-scoped stream table: only the owning thread touches it.
  using StreamMap = std::map<std::uint64_t, std::unique_ptr<core::DecisionCore>>;

  void accept_loop();
  void serve_connection(Connection& conn);
  /// One frame: dispatch and build the reply frame(s) into `reply`.
  /// Returns false to drop the connection (unanswerable violation).
  bool handle_frame(Connection& conn, StreamMap& streams, const FrameHeader& header,
                    const std::vector<std::uint8_t>& payload,
                    std::vector<std::uint8_t>& reply);
  void trace(obs::EventKind kind, std::uint64_t a, std::uint64_t b = 0, std::uint64_t c = 0);
  std::int64_t wall_us() const;

  ServerOptions options_;
  int listen_fd_ = -1;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;

  std::mutex connections_mutex_;
  std::vector<std::unique_ptr<Connection>> connections_;
  std::uint64_t next_connection_id_ = 0;

  // Aggregate counters (relaxed; exact once quiesced).
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> closed_{0};
  std::atomic<std::uint64_t> streams_opened_{0};
  std::atomic<std::uint64_t> streams_closed_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> protocol_errors_{0};
  LatencyHistogram latency_;

  std::mutex tracer_mutex_;
  std::chrono::steady_clock::time_point start_time_;
};

}  // namespace vafs::serve
