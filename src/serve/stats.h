// Serving-side metrics: a lock-free log-linear latency histogram and the
// server's aggregate counters.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace vafs::serve {

/// Log-linear histogram over nanosecond durations: 20 power-of-two decades
/// from 1 µs to ~1 s, 8 linear sub-bins each, plus an underflow and an
/// overflow bin. Relative error of a percentile estimate is bounded by the
/// sub-bin width (≤ 12.5%). All counters are relaxed atomics so concurrent
/// connection threads record without coordination and a snapshot reader
/// never races.
class LatencyHistogram {
 public:
  static constexpr std::size_t kDecades = 20;   // 2^0 .. 2^19 µs
  static constexpr std::size_t kSubBins = 8;
  static constexpr std::size_t kBins = kDecades * kSubBins + 2;  // +under/overflow

  void record_ns(std::uint64_t ns) {
    bins_[bin_of(ns)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_ns_.fetch_add(ns, std::memory_order_relaxed);
  }

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double mean_us() const {
    const std::uint64_t n = count();
    if (n == 0) return 0.0;
    return static_cast<double>(sum_ns_.load(std::memory_order_relaxed)) / 1e3 /
           static_cast<double>(n);
  }

  /// Accumulates another histogram's counts into this one.
  void merge(const LatencyHistogram& other) {
    for (std::size_t i = 0; i < kBins; ++i) {
      const std::uint64_t v = other.bins_[i].load(std::memory_order_relaxed);
      if (v != 0) bins_[i].fetch_add(v, std::memory_order_relaxed);
    }
    count_.fetch_add(other.count_.load(std::memory_order_relaxed), std::memory_order_relaxed);
    sum_ns_.fetch_add(other.sum_ns_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
  }

  /// The p-quantile (p in [0,1]) in microseconds — the lower edge of the
  /// bin containing the p-th sample; 0 with no samples.
  double percentile_us(double p) const {
    const std::uint64_t n = count();
    if (n == 0) return 0.0;
    std::uint64_t rank = static_cast<std::uint64_t>(p * static_cast<double>(n - 1)) + 1;
    for (std::size_t i = 0; i < kBins; ++i) {
      const std::uint64_t v = bins_[i].load(std::memory_order_relaxed);
      if (v >= rank) return bin_floor_us(i);
      rank -= v;
    }
    return bin_floor_us(kBins - 1);
  }

 private:
  static std::size_t bin_of(std::uint64_t ns) {
    const std::uint64_t us = ns / 1000;
    if (us < 1) return 0;                              // underflow: sub-µs
    std::size_t decade = 0;
    std::uint64_t v = us;
    while (v >= 2 && decade + 1 < kDecades) {
      v >>= 1;
      ++decade;
    }
    if (us >> decade >= 2) return kBins - 1;           // overflow: >= 2^20 µs
    const std::uint64_t base = std::uint64_t{1} << decade;
    const std::uint64_t sub = (us - base) * kSubBins / base;  // 0..7
    return 1 + decade * kSubBins + static_cast<std::size_t>(sub);
  }

  static double bin_floor_us(std::size_t bin) {
    if (bin == 0) return 0.0;
    if (bin == kBins - 1) return static_cast<double>(std::uint64_t{1} << kDecades);
    const std::size_t decade = (bin - 1) / kSubBins;
    const std::size_t sub = (bin - 1) % kSubBins;
    const double base = static_cast<double>(std::uint64_t{1} << decade);
    return base + base * static_cast<double>(sub) / static_cast<double>(kSubBins);
  }

  std::atomic<std::uint64_t> bins_[kBins] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_ns_{0};
};

/// Aggregate server counters (snapshot copies are plain values).
struct ServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_rejected = 0;
  std::uint64_t connections_closed = 0;
  std::uint64_t streams_opened = 0;
  std::uint64_t streams_closed = 0;
  std::uint64_t requests = 0;
  std::uint64_t protocol_errors = 0;
  double latency_p50_us = 0.0;
  double latency_p95_us = 0.0;
  double latency_p99_us = 0.0;
  double latency_mean_us = 0.0;
};

}  // namespace vafs::serve
