// vafsd — the VAFS decision daemon.
//
//   vafsd --socket /tmp/vafs.sock [--max-connections N]
//
// Serves decision streams until SIGTERM/SIGINT, then drains in-flight
// requests, prints a JSON stats summary to stdout, and exits 0. Exits 1
// if the socket cannot be bound.
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>

#include "serve/server.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void handle_signal(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  vafs::serve::ServerOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--socket" && i + 1 < argc) {
      options.socket_path = argv[++i];
    } else if (arg == "--max-connections" && i + 1 < argc) {
      options.max_connections = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: vafsd --socket PATH [--max-connections N]\n");
      return 0;
    } else {
      std::fprintf(stderr, "vafsd: unknown argument '%s'\n", arg.c_str());
      return 2;
    }
  }
  if (options.socket_path.empty()) {
    std::fprintf(stderr, "vafsd: --socket PATH is required\n");
    return 2;
  }

  std::signal(SIGTERM, handle_signal);
  std::signal(SIGINT, handle_signal);
  std::signal(SIGPIPE, SIG_IGN);  // peer death surfaces as write() errors

  vafs::serve::Server server(options);
  if (!server.start()) {
    std::fprintf(stderr, "vafsd: failed to bind %s: %s\n", options.socket_path.c_str(),
                 std::strerror(errno));
    return 1;
  }
  // Readiness line: clients wait for this before connecting.
  std::printf("vafsd: listening on %s\n", options.socket_path.c_str());
  std::fflush(stdout);

  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  server.stop();  // drains in-flight requests

  const vafs::serve::ServerStats s = server.stats();
  std::printf(
      "{\"connections_accepted\": %llu, \"connections_rejected\": %llu, "
      "\"streams_opened\": %llu, \"requests\": %llu, \"protocol_errors\": %llu, "
      "\"latency_p50_us\": %.3f, \"latency_p95_us\": %.3f, \"latency_p99_us\": %.3f}\n",
      static_cast<unsigned long long>(s.connections_accepted),
      static_cast<unsigned long long>(s.connections_rejected),
      static_cast<unsigned long long>(s.streams_opened),
      static_cast<unsigned long long>(s.requests),
      static_cast<unsigned long long>(s.protocol_errors), s.latency_p50_us, s.latency_p95_us,
      s.latency_p99_us);
  return 0;
}
