#include "serve/wire.h"

#include <bit>
#include <cstring>

namespace vafs::serve {
namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t fnv1a(std::uint64_t h, const std::uint8_t* data, std::size_t len) {
  for (std::size_t i = 0; i < len; ++i) {
    h ^= data[i];
    h *= kFnvPrime;
  }
  return h;
}

void put_u32(std::uint8_t* out, std::uint32_t v) {
  out[0] = static_cast<std::uint8_t>(v);
  out[1] = static_cast<std::uint8_t>(v >> 8);
  out[2] = static_cast<std::uint8_t>(v >> 16);
  out[3] = static_cast<std::uint8_t>(v >> 24);
}

void put_u64(std::uint8_t* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint32_t get_u32(const std::uint8_t* in) {
  return static_cast<std::uint32_t>(in[0]) | static_cast<std::uint32_t>(in[1]) << 8 |
         static_cast<std::uint32_t>(in[2]) << 16 | static_cast<std::uint32_t>(in[3]) << 24;
}

std::uint64_t get_u64(const std::uint8_t* in) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(in[i]) << (8 * i);
  return v;
}

bool valid_type(std::uint8_t t) {
  return t >= static_cast<std::uint8_t>(MsgType::kHello) &&
         t <= static_cast<std::uint8_t>(MsgType::kPong);
}

}  // namespace

const char* wire_error_name(WireError e) {
  switch (e) {
    case WireError::kNone: return "none";
    case WireError::kBadMagic: return "bad_magic";
    case WireError::kBadVersion: return "bad_version";
    case WireError::kBadType: return "bad_type";
    case WireError::kOversized: return "oversized";
    case WireError::kBadChecksum: return "bad_checksum";
    case WireError::kShortPayload: return "short_payload";
    case WireError::kUnknownStream: return "unknown_stream";
    case WireError::kDuplicateStream: return "duplicate_stream";
    case WireError::kBadGeometry: return "bad_geometry";
    case WireError::kServerOverloaded: return "server_overloaded";
    case WireError::kServerDraining: return "server_draining";
  }
  return "?";
}

std::uint64_t frame_checksum(std::uint8_t version, MsgType type, std::uint64_t stream_id,
                             const std::uint8_t* payload, std::size_t len) {
  std::uint8_t head[10];
  head[0] = version;
  head[1] = static_cast<std::uint8_t>(type);
  put_u64(head + 2, stream_id);
  std::uint64_t h = fnv1a(kFnvOffset, head, sizeof(head));
  return fnv1a(h, payload, len);
}

void encode_frame(std::vector<std::uint8_t>& out, MsgType type, std::uint64_t stream_id,
                  const std::vector<std::uint8_t>& payload) {
  const std::size_t base = out.size();
  out.resize(base + kWireHeaderSize + payload.size());
  std::uint8_t* p = out.data() + base;
  put_u32(p, static_cast<std::uint32_t>(payload.size()));
  p[4] = kWireMagic0;
  p[5] = kWireMagic1;
  p[6] = kWireVersion;
  p[7] = static_cast<std::uint8_t>(type);
  put_u64(p + 8, stream_id);
  put_u64(p + 16,
          frame_checksum(kWireVersion, type, stream_id, payload.data(), payload.size()));
  if (!payload.empty()) std::memcpy(p + kWireHeaderSize, payload.data(), payload.size());
}

WireError decode_header(const std::uint8_t* buf, FrameHeader& header) {
  header.payload_len = get_u32(buf);
  if (buf[4] != kWireMagic0 || buf[5] != kWireMagic1) return WireError::kBadMagic;
  header.version = buf[6];
  if (header.version != kWireVersion) return WireError::kBadVersion;
  if (!valid_type(buf[7])) return WireError::kBadType;
  header.type = static_cast<MsgType>(buf[7]);
  if (header.payload_len > kMaxPayload) return WireError::kOversized;
  header.stream_id = get_u64(buf + 8);
  header.checksum = get_u64(buf + 16);
  return WireError::kNone;
}

WireError verify_payload(const FrameHeader& header, const std::uint8_t* payload,
                         std::size_t len) {
  if (len != header.payload_len) return WireError::kShortPayload;
  if (frame_checksum(header.version, header.type, header.stream_id, payload, len) !=
      header.checksum) {
    return WireError::kBadChecksum;
  }
  return WireError::kNone;
}

void WireWriter::u32(std::uint32_t v) {
  std::uint8_t buf[4];
  put_u32(buf, v);
  out_.insert(out_.end(), buf, buf + 4);
}

void WireWriter::u64(std::uint64_t v) {
  std::uint8_t buf[8];
  put_u64(buf, v);
  out_.insert(out_.end(), buf, buf + 8);
}

void WireWriter::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

bool WireReader::u8(std::uint8_t& v) {
  if (!ok_ || size_ - pos_ < 1) return ok_ = false;
  v = data_[pos_++];
  return true;
}

bool WireReader::u32(std::uint32_t& v) {
  if (!ok_ || size_ - pos_ < 4) return ok_ = false;
  v = get_u32(data_ + pos_);
  pos_ += 4;
  return true;
}

bool WireReader::u64(std::uint64_t& v) {
  if (!ok_ || size_ - pos_ < 8) return ok_ = false;
  v = get_u64(data_ + pos_);
  pos_ += 8;
  return true;
}

bool WireReader::i64(std::int64_t& v) {
  std::uint64_t u = 0;
  if (!u64(u)) return false;
  v = static_cast<std::int64_t>(u);
  return true;
}

bool WireReader::f64(double& v) {
  std::uint64_t u = 0;
  if (!u64(u)) return false;
  v = std::bit_cast<double>(u);
  return true;
}

// ---- DecisionStreamInfo --------------------------------------------------

void encode_stream_info(std::vector<std::uint8_t>& out, const core::DecisionStreamInfo& info) {
  WireWriter w(out);
  const core::VafsConfig& c = info.config;
  w.f64(c.safety_margin);
  w.f64(c.startup_margin);
  w.u8(static_cast<std::uint8_t>(c.predictor.kind));
  w.u64(c.predictor.window);
  w.f64(c.predictor.ewma_alpha);
  w.f64(c.predictor.quantile);
  w.u8(c.race_to_idle_downloads ? 1 : 0);
  w.f64(c.protocol_cycles_per_byte);
  w.f64(c.default_throughput_mbps);
  w.f64(c.audio_cycles_per_frame);
  w.i64(c.boost_duration.as_micros());
  w.u64(c.low_ahead_frames);
  w.u64(c.min_observations);
  w.f64(c.cold_start_fraction);
  w.u8(c.class_aware ? 1 : 0);
  w.u8(c.oracle ? 1 : 0);

  const core::DecisionGeometry& g = info.geometry;
  w.u32(static_cast<std::uint32_t>(g.clusters.size()));
  for (const auto& cl : g.clusters) {
    w.u32(static_cast<std::uint32_t>(cl.available_khz.size()));
    for (const std::uint32_t khz : cl.available_khz) w.u32(khz);
    w.f64(cl.cycle_penalty);
    w.f64(cl.capacity_khz);
  }
  w.u32(g.primary);
  w.u32(g.network);
  w.u8(g.routed ? 1 : 0);
}

bool decode_stream_info(const std::uint8_t* data, std::size_t size,
                        core::DecisionStreamInfo& info) {
  WireReader r(data, size);
  core::VafsConfig& c = info.config;
  std::uint8_t kind = 0, race = 0, classes = 0, oracle = 0;
  std::uint64_t window = 0, low_ahead = 0, min_obs = 0;
  std::int64_t boost_us = 0;
  r.f64(c.safety_margin);
  r.f64(c.startup_margin);
  r.u8(kind);
  r.u64(window);
  r.f64(c.predictor.ewma_alpha);
  r.f64(c.predictor.quantile);
  r.u8(race);
  r.f64(c.protocol_cycles_per_byte);
  r.f64(c.default_throughput_mbps);
  r.f64(c.audio_cycles_per_frame);
  r.i64(boost_us);
  r.u64(low_ahead);
  r.u64(min_obs);
  r.f64(c.cold_start_fraction);
  r.u8(classes);
  r.u8(oracle);
  if (!r.ok()) return false;
  if (kind > static_cast<std::uint8_t>(core::PredictorKind::kQuantile)) return false;
  c.predictor.kind = static_cast<core::PredictorKind>(kind);
  c.predictor.window = static_cast<std::size_t>(window);
  c.race_to_idle_downloads = race != 0;
  c.boost_duration = sim::SimTime::micros(boost_us);
  c.low_ahead_frames = low_ahead;
  c.min_observations = static_cast<std::size_t>(min_obs);
  c.class_aware = classes != 0;
  c.oracle = oracle != 0;

  core::DecisionGeometry& g = info.geometry;
  std::uint32_t n = 0;
  if (!r.u32(n)) return false;
  if (n == 0 || n > core::kMaxDecisionClusters) return false;
  g.clusters.clear();
  g.clusters.resize(n);
  for (auto& cl : g.clusters) {
    std::uint32_t freqs = 0;
    if (!r.u32(freqs)) return false;
    // A table longer than the remaining payload is corrupt; bound before
    // allocating.
    if (freqs == 0 || static_cast<std::size_t>(freqs) * 4 > r.remaining()) return false;
    cl.available_khz.resize(freqs);
    for (auto& khz : cl.available_khz) r.u32(khz);
    r.f64(cl.cycle_penalty);
    r.f64(cl.capacity_khz);
  }
  std::uint8_t routed = 0;
  r.u32(g.primary);
  r.u32(g.network);
  r.u8(routed);
  if (!r.ok()) return false;
  g.routed = routed != 0;
  if (g.routed && (g.primary >= n || g.network >= n)) return false;
  return true;
}

// ---- DecisionRequest -----------------------------------------------------

void encode_request(std::vector<std::uint8_t>& out, const core::DecisionRequest& req) {
  WireWriter w(out);
  w.u8(static_cast<std::uint8_t>(req.event));
  w.u8(req.want_plan ? 1 : 0);
  w.i64(req.now_us);
  w.u8(static_cast<std::uint8_t>(req.player_state));
  w.u8(req.downloading ? 1 : 0);
  w.u64(req.decoded_ahead);
  w.u64(req.decoded_frames);
  w.u64(req.total_frames);
  w.i64(req.frame_period_us);
  w.u64(req.current_rep);
  w.f64(req.throughput_mbps);
  w.f64(req.oracle_decode_hz);
  w.u64(req.observe_rep);
  w.f64(req.observe_cycles);
  w.u8(req.observe_idr ? 1 : 0);
}

bool decode_request(const std::uint8_t* data, std::size_t size, core::DecisionRequest& req) {
  WireReader r(data, size);
  std::uint8_t event = 0, want = 0, state = 0, downloading = 0, idr = 0;
  r.u8(event);
  r.u8(want);
  r.i64(req.now_us);
  r.u8(state);
  r.u8(downloading);
  r.u64(req.decoded_ahead);
  r.u64(req.decoded_frames);
  r.u64(req.total_frames);
  r.i64(req.frame_period_us);
  r.u64(req.current_rep);
  r.f64(req.throughput_mbps);
  r.f64(req.oracle_decode_hz);
  r.u64(req.observe_rep);
  r.f64(req.observe_cycles);
  r.u8(idr);
  if (!r.ok()) return false;
  if (event > static_cast<std::uint8_t>(core::DecisionEvent::kQueryStats)) return false;
  if (state > static_cast<std::uint8_t>(core::DecisionPlayerState::kFinished)) return false;
  req.event = static_cast<core::DecisionEvent>(event);
  req.want_plan = want != 0;
  req.player_state = static_cast<core::DecisionPlayerState>(state);
  req.downloading = downloading != 0;
  req.observe_idr = idr != 0;
  return true;
}

// ---- DecisionResponse ----------------------------------------------------

void encode_response(std::vector<std::uint8_t>& out, const core::DecisionResponse& resp) {
  WireWriter w(out);
  w.u8(resp.planned ? 1 : 0);
  w.u8(resp.boosted ? 1 : 0);
  w.u8(resp.latency_critical ? 1 : 0);
  w.u32(resp.decode_cluster);
  w.u32(resp.cluster_count);
  for (const std::uint32_t khz : resp.target_khz) w.u32(khz);
  w.f64(resp.decode_mape);
}

bool decode_response(const std::uint8_t* data, std::size_t size, core::DecisionResponse& resp) {
  WireReader r(data, size);
  std::uint8_t planned = 0, boosted = 0, critical = 0;
  r.u8(planned);
  r.u8(boosted);
  r.u8(critical);
  r.u32(resp.decode_cluster);
  r.u32(resp.cluster_count);
  for (auto& khz : resp.target_khz) r.u32(khz);
  r.f64(resp.decode_mape);
  if (!r.ok()) return false;
  if (resp.cluster_count > core::kMaxDecisionClusters) return false;
  resp.planned = planned != 0;
  resp.boosted = boosted != 0;
  resp.latency_critical = critical != 0;
  return true;
}

void encode_error(std::vector<std::uint8_t>& out, WireError code) {
  WireWriter w(out);
  w.u32(static_cast<std::uint32_t>(code));
}

bool decode_error(const std::uint8_t* data, std::size_t size, WireError& code) {
  WireReader r(data, size);
  std::uint32_t v = 0;
  if (!r.u32(v)) return false;
  if (v > static_cast<std::uint32_t>(WireError::kServerDraining)) return false;
  code = static_cast<WireError>(v);
  return true;
}

}  // namespace vafs::serve
