// The decision daemon's wire protocol: length-prefixed binary frames over
// a Unix-domain stream socket.
//
// Frame layout (all integers little-endian):
//
//   u32  payload_len      bytes after the header (<= kMaxPayload)
//   u8   magic 'V'
//   u8   magic 'F'
//   u8   version          kWireVersion
//   u8   type             MsgType
//   u64  stream_id        connection-scoped session identifier
//   u64  checksum         FNV-1a over (version, type, stream_id, payload)
//   ...  payload
//
// A connection multiplexes many decision streams; stream ids are scoped
// to their connection, so two clients can both use stream 0 without
// coordination and the server keeps zero cross-connection state — the
// property the determinism proof leans on: each DecisionCore sees exactly
// one client's request order.
//
// Every numeric field is fixed-width and doubles travel as their IEEE-754
// bit pattern (std::bit_cast), so a value decodes to the identical bits
// the client encoded — the decision core's arithmetic is then exactly the
// in-process controller's.
//
// Malformed input (bad magic, unknown version/type, oversized length,
// checksum mismatch, short payload) decodes to a WireError; the server
// answers with an Error frame when the header was intact enough to reply
// to, and drops the connection otherwise. VafsConfig's watchdog block is
// not carried: the watchdog is actuation-side state the decision core
// never reads.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/decision_core.h"

namespace vafs::serve {

inline constexpr std::uint8_t kWireMagic0 = 'V';
inline constexpr std::uint8_t kWireMagic1 = 'F';
inline constexpr std::uint8_t kWireVersion = 1;
inline constexpr std::size_t kWireHeaderSize = 24;
/// Generous cap: the largest legitimate payload (Hello with 8 clusters of
/// long OPP tables) is well under 4 KiB.
inline constexpr std::uint32_t kMaxPayload = 64 * 1024;

enum class MsgType : std::uint8_t {
  kHello = 1,     // open stream: payload = DecisionStreamInfo
  kHelloOk = 2,   // stream opened (empty payload)
  kDecide = 3,    // payload = DecisionRequest
  kDecision = 4,  // payload = DecisionResponse
  kClose = 5,     // close stream (empty payload, no reply)
  kError = 6,     // payload = u32 WireError code
  kPing = 7,      // health probe (empty payload)
  kPong = 8,      // health reply (empty payload)
};

enum class WireError : std::uint32_t {
  kNone = 0,
  kBadMagic = 1,
  kBadVersion = 2,
  kBadType = 3,
  kOversized = 4,
  kBadChecksum = 5,
  kShortPayload = 6,
  kUnknownStream = 7,
  kDuplicateStream = 8,
  kBadGeometry = 9,
  kServerOverloaded = 10,
  kServerDraining = 11,
};

const char* wire_error_name(WireError e);

struct FrameHeader {
  std::uint32_t payload_len = 0;
  std::uint8_t version = kWireVersion;
  MsgType type = MsgType::kPing;
  std::uint64_t stream_id = 0;
  std::uint64_t checksum = 0;
};

/// FNV-1a over the checksummed region: version, type, stream_id (LE
/// bytes), then the payload.
std::uint64_t frame_checksum(std::uint8_t version, MsgType type, std::uint64_t stream_id,
                             const std::uint8_t* payload, std::size_t len);

/// Serializes a complete frame (header + payload) into `out` (appended).
void encode_frame(std::vector<std::uint8_t>& out, MsgType type, std::uint64_t stream_id,
                  const std::vector<std::uint8_t>& payload);

/// Parses and validates the 24-byte header. On success fills `header` and
/// returns kNone; the caller then reads payload_len bytes and calls
/// verify_payload. Magic/version/type/length problems return their error.
WireError decode_header(const std::uint8_t* buf, FrameHeader& header);

/// Checks the payload against the header's checksum.
WireError verify_payload(const FrameHeader& header, const std::uint8_t* payload,
                         std::size_t len);

// ---- Little-endian field writer / reader --------------------------------

class WireWriter {
 public:
  explicit WireWriter(std::vector<std::uint8_t>& out) : out_(out) {}
  void u8(std::uint8_t v) { out_.push_back(v); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v);  // IEEE-754 bit pattern

 private:
  std::vector<std::uint8_t>& out_;
};

/// Bounds-checked reader: every getter returns false once the buffer is
/// exhausted (and keeps returning false), so decode loops can check once
/// at the end instead of after every field.
class WireReader {
 public:
  WireReader(const std::uint8_t* data, std::size_t size) : data_(data), size_(size) {}
  bool u8(std::uint8_t& v);
  bool u32(std::uint32_t& v);
  bool u64(std::uint64_t& v);
  bool i64(std::int64_t& v);
  bool f64(double& v);
  bool ok() const { return ok_; }
  std::size_t remaining() const { return size_ - pos_; }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

// ---- Message payloads ----------------------------------------------------

void encode_stream_info(std::vector<std::uint8_t>& out, const core::DecisionStreamInfo& info);
bool decode_stream_info(const std::uint8_t* data, std::size_t size,
                        core::DecisionStreamInfo& info);

void encode_request(std::vector<std::uint8_t>& out, const core::DecisionRequest& req);
bool decode_request(const std::uint8_t* data, std::size_t size, core::DecisionRequest& req);

void encode_response(std::vector<std::uint8_t>& out, const core::DecisionResponse& resp);
bool decode_response(const std::uint8_t* data, std::size_t size, core::DecisionResponse& resp);

void encode_error(std::vector<std::uint8_t>& out, WireError code);
bool decode_error(const std::uint8_t* data, std::size_t size, WireError& code);

}  // namespace vafs::serve
