#include "simcore/event_queue.h"

#include <cassert>
#include <utility>

namespace vafs::sim {

void EventHandle::cancel() {
  if (cancelled_) *cancelled_ = true;
}

bool EventHandle::pending() const { return cancelled_ && !*cancelled_; }

EventHandle EventQueue::schedule(SimTime when, EventFn fn) {
  auto flag = std::make_shared<bool>(false);
  heap_.push(Entry{when, next_seq_++, std::move(fn), flag});
  return EventHandle(std::move(flag));
}

void EventQueue::drop_cancelled_head() {
  while (!heap_.empty() && *heap_.top().cancelled) heap_.pop();
}

bool EventQueue::empty() {
  drop_cancelled_head();
  return heap_.empty();
}

SimTime EventQueue::next_time() {
  drop_cancelled_head();
  assert(!heap_.empty());
  return heap_.top().time;
}

EventQueue::Popped EventQueue::pop() {
  drop_cancelled_head();
  assert(!heap_.empty());
  // priority_queue::top() returns const&; the entry is moved out via the
  // usual const_cast idiom, which is safe because pop() follows immediately.
  Entry& top = const_cast<Entry&>(heap_.top());
  Popped out{top.time, std::move(top.fn)};
  // Mark fired so outstanding handles report !pending().
  *top.cancelled = true;
  heap_.pop();
  return out;
}

}  // namespace vafs::sim
