#include "simcore/event_queue.h"

#include <utility>

namespace vafs::sim {

namespace {
/// Below this heap size, compaction is not worth the pass.
constexpr std::size_t kCompactMinHeap = 64;
}  // namespace

void EventHandle::cancel() {
  if (queue_ != nullptr) queue_->cancel_slot(slot_, gen_);
}

bool EventHandle::pending() const {
  return queue_ != nullptr && queue_->slot_matches(slot_, gen_);
}

EventQueue::EventQueue(Arena* arena) : arena_(arena) {
  if (arena_ != nullptr) {
    slots_ = std::move(arena_->slots_);
    heap_ = std::move(arena_->heap_);
    free_ = std::move(arena_->free_);
  }
}

EventQueue::~EventQueue() {
  if (arena_ != nullptr) {
    // Return the storage with its capacity; contents (including any
    // pending callbacks) are destroyed, generations reset with the slots.
    slots_.clear();
    heap_.clear();
    free_.clear();
    arena_->slots_ = std::move(slots_);
    arena_->heap_ = std::move(heap_);
    arena_->free_ = std::move(free_);
  }
}

std::uint32_t EventQueue::alloc_slot() {
  if (!free_.empty()) {
    const std::uint32_t idx = free_.back();
    free_.pop_back();
    return idx;
  }
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

EventHandle EventQueue::arm(SimTime when, SimTime period, EventFn&& fn) {
  const std::uint32_t idx = alloc_slot();
  Slot& s = slots_[idx];
  s.fn = std::move(fn);
  s.seq = next_seq_++;
  s.period = period;
  s.in_heap = true;
  push_entry(HeapEntry{when, s.seq, idx, s.gen});
  return EventHandle(this, idx, s.gen);
}

EventHandle EventQueue::schedule(SimTime when, EventFn fn) {
  return arm(when, SimTime::zero(), std::move(fn));
}

EventHandle EventQueue::schedule_periodic(SimTime first, SimTime period, EventFn fn) {
  assert(period > SimTime::zero());
  return arm(first, period, std::move(fn));
}

bool EventQueue::reschedule(const EventHandle& h, SimTime when) {
  if (h.queue_ != this || !slot_matches(h.slot_, h.gen_)) return false;
  Slot& s = slots_[h.slot_];
  if (s.in_heap) ++stale_;  // the old entry is now dead weight in the heap
  s.seq = next_seq_++;
  s.in_heap = true;
  push_entry(HeapEntry{when, s.seq, h.slot_, s.gen});
  return true;
}

void EventQueue::cancel_slot(std::uint32_t slot, std::uint32_t gen) {
  if (!slot_matches(slot, gen)) return;
  Slot& s = slots_[slot];
  if (s.in_heap) {
    ++stale_;
    s.in_heap = false;
  }
  ++s.gen;
  s.fn.reset();  // release captures eagerly
  s.period = SimTime::zero();
  free_.push_back(slot);
}

void EventQueue::push_entry(const HeapEntry& e) {
  if (stale_ > (heap_.size() >> 1) && heap_.size() >= kCompactMinHeap) compact();
  heap_.push_back(e);
  std::size_t i = heap_.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) >> 2;
    if (!before(heap_[i], heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

void EventQueue::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t first_child = (i << 2) + 1;
    if (first_child >= n) return;
    std::size_t best = first_child;
    const std::size_t last_child = first_child + 4 <= n ? first_child + 4 : n;
    for (std::size_t c = first_child + 1; c < last_child; ++c) {
      if (before(heap_[c], heap_[best])) best = c;
    }
    if (!before(heap_[best], heap_[i])) return;
    std::swap(heap_[i], heap_[best]);
    i = best;
  }
}

void EventQueue::pop_root() {
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
}

void EventQueue::settle_head() {
  while (!heap_.empty() && is_stale(heap_.front())) {
    pop_root();
    --stale_;
  }
}

void EventQueue::compact() {
  std::size_t kept = 0;
  for (std::size_t i = 0; i < heap_.size(); ++i) {
    if (!is_stale(heap_[i])) heap_[kept++] = heap_[i];
  }
  heap_.resize(kept);
  stale_ = 0;
  if (heap_.size() > 1) {
    for (std::size_t i = (heap_.size() - 2) >> 2; ; --i) {
      sift_down(i);
      if (i == 0) break;
    }
  }
}

bool EventQueue::empty() {
  settle_head();
  return heap_.empty();
}

SimTime EventQueue::next_time() {
  settle_head();
  assert(!heap_.empty());
  return heap_.front().time;
}

void EventQueue::take_root(Popped* out) {
  const HeapEntry e = heap_.front();
  pop_root();

  Slot& s = slots_[e.slot];
  s.in_heap = false;
  out->time = e.time;
  out->slot = e.slot;
  out->gen = e.gen;
  out->periodic = !s.period.is_zero();
  out->fn = std::move(s.fn);
  if (!out->periodic) {
    // One-shot: the slot dies with the firing, so outstanding handles
    // report !pending() while the callback runs.
    ++s.gen;
    free_.push_back(e.slot);
  }
}

EventQueue::Popped EventQueue::pop() {
  settle_head();
  assert(!heap_.empty());
  Popped out;
  take_root(&out);
  return out;
}

bool EventQueue::pop_next(SimTime deadline, Popped* out) {
  settle_head();
  if (heap_.empty() || heap_.front().time > deadline) return false;
  take_root(out);
  return true;
}

void EventQueue::rearm(Popped&& popped) {
  if (!popped.periodic) return;
  if (!slot_matches(popped.slot, popped.gen)) return;  // series cancelled mid-fire
  Slot& s = slots_[popped.slot];
  if (s.in_heap) ++stale_;  // callback rescheduled its own series entry
  s.fn = std::move(popped.fn);
  s.seq = next_seq_++;
  s.in_heap = true;
  push_entry(HeapEntry{popped.time + s.period, s.seq, popped.slot, s.gen});
}

}  // namespace vafs::sim
