// The event queue at the heart of the discrete-event simulation.
//
// Events are (time, sequence, callback) triples ordered by time and, for
// equal times, by insertion order — guaranteeing deterministic execution.
// Scheduling returns an EventHandle that can cancel the event in O(1)
// (lazily: the entry stays in the heap but is skipped when popped).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "simcore/time.h"

namespace vafs::sim {

using EventFn = std::function<void()>;

/// Handle to a scheduled event; allows cancellation. Copyable and cheap.
/// A default-constructed handle refers to no event.
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancels the event if it has not fired yet. Safe to call repeatedly
  /// and on empty handles.
  void cancel();

  /// True if the handle refers to an event that is still pending.
  bool pending() const;

 private:
  friend class EventQueue;
  friend class Simulator;
  explicit EventHandle(std::shared_ptr<bool> cancelled) : cancelled_(std::move(cancelled)) {}
  std::shared_ptr<bool> cancelled_;
};

/// Min-heap of timed events with stable ordering for simultaneous events.
class EventQueue {
 public:
  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Schedules `fn` to run at absolute time `when`. `when` must not be in
  /// the past relative to the last popped event (checked by Simulator).
  EventHandle schedule(SimTime when, EventFn fn);

  /// True if no runnable (non-cancelled) event remains. May pop and drop
  /// cancelled entries to answer.
  bool empty();

  /// Time of the earliest runnable event. Requires !empty().
  SimTime next_time();

  /// Removes and returns the earliest runnable event. Requires !empty().
  struct Popped {
    SimTime time;
    EventFn fn;
  };
  Popped pop();

  /// Number of entries in the heap, including not-yet-collected cancelled
  /// ones. For tests and introspection only.
  std::size_t raw_size() const { return heap_.size(); }

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;
    EventFn fn;
    std::shared_ptr<bool> cancelled;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void drop_cancelled_head();

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace vafs::sim
