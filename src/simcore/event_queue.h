// The event queue at the heart of the discrete-event simulation.
//
// Events are (time, sequence, callback) triples ordered by time and, for
// equal times, by insertion order — guaranteeing deterministic execution.
//
// Storage is allocation-free in steady state: callbacks live in a slab of
// pooled slots (small-buffer callables, no std::function), the priority
// structure is a 4-ary implicit heap of 24-byte POD entries, and handles
// are (slot, generation) pairs — cancellation is O(1) and lazy (the heap
// entry is skipped when it surfaces, with a compaction pass when stale
// entries outnumber live ones). A slab can be donated via EventQueue::Arena
// so back-to-back simulations (the experiment runner's per-worker loop)
// reuse the same memory.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "simcore/inline_fn.h"
#include "simcore/time.h"

namespace vafs::sim {

/// Event callbacks: move-only, 64 bytes of inline capture storage — enough
/// for every callback in the pipeline (heap fallback beyond that).
using EventFn = InlineFunction<64>;

class EventQueue;

/// Handle to a scheduled event; allows cancellation. Copyable and cheap.
/// A default-constructed handle refers to no event. A handle must not be
/// used after its EventQueue is destroyed (components always die with or
/// before their Simulator, which owns the queue).
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancels the event if it has not fired yet. Safe to call repeatedly
  /// and on empty handles. For a periodic series, cancels the series.
  void cancel();

  /// True if the handle refers to an event that is still pending.
  bool pending() const;

 private:
  friend class EventQueue;
  EventHandle(EventQueue* queue, std::uint32_t slot, std::uint32_t gen)
      : queue_(queue), slot_(slot), gen_(gen) {}

  EventQueue* queue_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint32_t gen_ = 0;
};

/// Min-heap of timed events with stable ordering for simultaneous events.
class EventQueue {
 private:
  struct Slot {
    EventFn fn;
    std::uint64_t seq = 0;  // sequence of this slot's live heap entry
    SimTime period;         // nonzero => periodic series
    std::uint32_t gen = 0;  // bumped on free; validates handles and entries
    bool in_heap = false;
  };
  struct HeapEntry {
    SimTime time;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;
  };

 public:
  /// Reusable slab + heap storage. Donate one arena to at most one live
  /// EventQueue at a time; capacity survives queue destruction, so a
  /// worker running thousands of back-to-back sessions allocates only
  /// during the first.
  class Arena {
   public:
    Arena() = default;
    Arena(const Arena&) = delete;
    Arena& operator=(const Arena&) = delete;

   private:
    friend class EventQueue;
    std::vector<Slot> slots_;
    std::vector<HeapEntry> heap_;
    std::vector<std::uint32_t> free_;
  };

  explicit EventQueue(Arena* arena = nullptr);
  ~EventQueue();
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Schedules `fn` to run at absolute time `when`. `when` must not be in
  /// the past relative to the last popped event (checked by Simulator).
  EventHandle schedule(SimTime when, EventFn fn);

  /// Schedules a periodic series: first firing at `first`, then every
  /// `period` after each firing (re-armed by rearm()). The handle cancels
  /// the whole series.
  EventHandle schedule_periodic(SimTime first, SimTime period, EventFn fn);

  /// Moves a still-pending event to `when`, keeping its callback (the
  /// allocation-free form of cancel + re-schedule with the same lambda).
  /// The event is re-sequenced as if newly scheduled. Returns false — and
  /// does nothing — if the handle is empty, fired or cancelled.
  bool reschedule(const EventHandle& h, SimTime when);

  /// True if no runnable (non-cancelled) event remains. May drop stale
  /// entries to answer.
  bool empty();

  /// Time of the earliest runnable event. Requires !empty().
  SimTime next_time();

  /// Removes and returns the earliest runnable event. Requires !empty().
  /// For periodic events, pass the fired Popped back to rearm() to keep
  /// the series alive (the Simulator run loop does this).
  struct Popped {
    SimTime time;
    EventFn fn;
    std::uint32_t slot = 0;
    std::uint32_t gen = 0;
    bool periodic = false;
  };
  Popped pop();

  /// Fused empty() + next_time() + pop(): pops the earliest runnable event
  /// into `out` if one exists and fires no later than `deadline`. One
  /// settle of the heap head where the three-call form does three — this
  /// is the run loop's per-event path.
  bool pop_next(SimTime deadline, Popped* out);

  /// Re-arms a popped periodic event one period after its firing time —
  /// unless the series was cancelled from inside its own callback. No-op
  /// for one-shot events.
  void rearm(Popped&& popped);

  /// Number of entries in the heap, including not-yet-collected stale
  /// ones. For tests and introspection only.
  std::size_t raw_size() const { return heap_.size(); }
  /// Stale (cancelled/rescheduled) entries still occupying the heap.
  std::size_t stale_entries() const { return stale_; }
  /// Total slots in the slab (live + free). For tests.
  std::size_t slab_size() const { return slots_.size(); }

 private:
  friend class EventHandle;

  bool slot_matches(std::uint32_t slot, std::uint32_t gen) const {
    return slot < slots_.size() && slots_[slot].gen == gen;
  }
  void cancel_slot(std::uint32_t slot, std::uint32_t gen);

  std::uint32_t alloc_slot();
  EventHandle arm(SimTime when, SimTime period, EventFn&& fn);

  bool is_stale(const HeapEntry& e) const {
    const Slot& s = slots_[e.slot];
    return s.gen != e.gen || s.seq != e.seq;
  }

  /// Heap ops on the 4-ary implicit heap (children of i: 4i+1 .. 4i+4).
  static bool before(const HeapEntry& a, const HeapEntry& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }
  void push_entry(const HeapEntry& e);
  void pop_root();
  /// Pops the (already settled, live) root into `out`.
  void take_root(Popped* out);
  void sift_down(std::size_t i);
  /// Drops stale entries off the head so the root is live (or heap empty).
  void settle_head();
  /// Removes every stale entry and re-heapifies. Called when stale entries
  /// outnumber live ones.
  void compact();

  Arena* arena_ = nullptr;
  std::vector<Slot> slots_;
  std::vector<HeapEntry> heap_;
  std::vector<std::uint32_t> free_;
  std::uint64_t next_seq_ = 0;
  std::size_t stale_ = 0;
};

}  // namespace vafs::sim
