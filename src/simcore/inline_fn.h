// A small-buffer, move-only callable — the allocation-free replacement for
// std::function<void()> on the simulation hot path.
//
// Every event the simulator fires used to carry a heap-allocated
// std::function; the captures are almost always tiny ([this] plus a few
// scalars), so InlineFunction stores the callable inside a fixed inline
// buffer and only falls back to the heap for oversized captures (none in
// this codebase today). Move-only: the event queue is the single owner of
// a scheduled callback.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace vafs::sim {

template <std::size_t Capacity>
class InlineFunction {
 public:
  InlineFunction() = default;
  InlineFunction(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFunction> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  InlineFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= Capacity && alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &inline_ops<Fn>;
    } else {
      // Oversized capture: box it. Rare by design — the hot path never
      // takes this branch.
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &boxed_ops<Fn>;
    }
  }

  InlineFunction(InlineFunction&& other) noexcept { move_from(std::move(other)); }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(std::move(other));
    }
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { reset(); }

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  explicit operator bool() const { return ops_ != nullptr; }

  void operator()() { ops_->invoke(buf_); }

 private:
  struct Ops {
    void (*invoke)(void*);
    /// Move-constructs into `dst` from `src`, then destroys `src`.
    void (*relocate)(void* src, void* dst);
    void (*destroy)(void*);
  };

  template <typename Fn>
  static constexpr Ops inline_ops = {
      [](void* p) { (*std::launder(reinterpret_cast<Fn*>(p)))(); },
      [](void* src, void* dst) {
        Fn* s = std::launder(reinterpret_cast<Fn*>(src));
        ::new (dst) Fn(std::move(*s));
        s->~Fn();
      },
      [](void* p) { std::launder(reinterpret_cast<Fn*>(p))->~Fn(); },
  };

  template <typename Fn>
  static constexpr Ops boxed_ops = {
      [](void* p) { (**std::launder(reinterpret_cast<Fn**>(p)))(); },
      [](void* src, void* dst) {
        Fn** s = std::launder(reinterpret_cast<Fn**>(src));
        ::new (dst) Fn*(*s);
      },
      [](void* p) { delete *std::launder(reinterpret_cast<Fn**>(p)); },
  };

  void move_from(InlineFunction&& other) {
    if (other.ops_ != nullptr) {
      other.ops_->relocate(other.buf_, buf_);
      ops_ = other.ops_;
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[Capacity];
  const Ops* ops_ = nullptr;
};

}  // namespace vafs::sim
