#include "simcore/rng.h"

#include <cassert>
#include <cmath>

namespace vafs::sim {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t v, int k) { return (v << k) | (v >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& lane : s_) lane = splitmix64(x);
}

Rng Rng::fork(std::uint64_t stream) {
  // Mix the child stream id with fresh output so siblings are independent.
  return Rng(next_u64() ^ (0xA0761D6478BD642FULL * (stream + 1)));
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random bits into the mantissa: uniform over [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  return lo + static_cast<std::int64_t>(next_u64() % span);
}

double Rng::normal(double mean, double stddev) {
  // Box–Muller; guard the log against u1 == 0.
  double u1 = uniform();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * M_PI * u2);
}

double Rng::lognormal(double mu, double sigma) { return std::exp(normal(mu, sigma)); }

double Rng::exponential(double mean) {
  assert(mean > 0);
  double u = uniform();
  if (u < 1e-300) u = 1e-300;
  return -mean * std::log(u);
}

std::uint64_t mix_stream(std::uint64_t seed, std::uint64_t k1, std::uint64_t k2) {
  // Chain the keys through splitmix64 with distinct additive offsets so
  // (a, b) and (b, a) land in unrelated streams.
  std::uint64_t x = seed;
  std::uint64_t h = splitmix64(x);
  x ^= k1 + 0xA0761D6478BD642FULL;
  h ^= splitmix64(x);
  x ^= k2 + 0xE7037ED1A0B428DBULL;
  h ^= splitmix64(x);
  return h;
}

bool Rng::bernoulli(double p) {
  if (p <= 0) return false;
  if (p >= 1) return true;
  return uniform() < p;
}

}  // namespace vafs::sim
