// Deterministic random number generation for workload synthesis.
//
// xoshiro256** seeded via splitmix64. One Rng instance per stochastic
// process (bandwidth walk, frame-size jitter, ...) — forked from a master
// seed — so adding a new consumer never perturbs existing streams.
#pragma once

#include <cstdint>

namespace vafs::sim {

/// xoshiro256** PRNG with distribution helpers. Not thread-safe; the
/// simulation is single-threaded by design.
class Rng {
 public:
  /// Seeds the four lanes from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed);

  /// Derives an independent child generator; `stream` distinguishes
  /// children forked from the same parent state.
  Rng fork(std::uint64_t stream);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box–Muller (consumes two uniforms, caches none —
  /// keeps the stream position deterministic and easy to reason about).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Lognormal with the given parameters of the *underlying* normal.
  double lognormal(double mu, double sigma);

  /// Exponential with the given mean (= 1/lambda). Requires mean > 0.
  double exponential(double mean);

  /// True with probability p (clamped to [0, 1]).
  bool bernoulli(double p);

 private:
  std::uint64_t s_[4];
};

/// Collapses (seed, k1, k2) into one avalanche-mixed 64-bit stream seed.
/// A draw keyed this way — `Rng(mix_stream(seed, id, attempt))` — is a pure
/// function of the identifiers, independent of how many draws happened
/// before it. The retry/fault substreams use it so that reordering or
/// resharding the surrounding work cannot shift any session's stream.
std::uint64_t mix_stream(std::uint64_t seed, std::uint64_t k1, std::uint64_t k2 = 0);

}  // namespace vafs::sim
