#include "simcore/simulator.h"

#include <cassert>
#include <memory>
#include <utility>

namespace vafs::sim {

EventHandle Simulator::at(SimTime when, EventFn fn) {
  assert(when >= now_ && "cannot schedule in the past");
  return queue_.schedule(when, std::move(fn));
}

EventHandle Simulator::after(SimTime delay, EventFn fn) {
  assert(!delay.is_negative() && "negative delay");
  return at(now_ + delay, std::move(fn));
}

// Periodic series: each firing re-schedules the next through a small shared
// state object. Cancelling the returned handle flips the shared `stopped`
// flag, which both cancels the pending event and stops re-scheduling.
struct Simulator::PeriodicState {
  SimTime period;
  std::function<void()> fn;
  EventHandle pending;
};

EventHandle Simulator::every(SimTime period, std::function<void()> fn) {
  assert(period > SimTime::zero() && "period must be positive");
  auto stopped = std::make_shared<bool>(false);
  auto state = std::make_shared<PeriodicState>(PeriodicState{period, std::move(fn), {}});

  // `tick` owns its own recursion: fire the user fn, then re-arm.
  auto tick = std::make_shared<std::function<void()>>();
  *tick = [this, state, stopped, tick]() {
    if (*stopped) return;
    state->fn();
    if (*stopped) return;  // fn may have cancelled the series
    state->pending = queue_.schedule(now_ + state->period, [tick] { (*tick)(); });
  };
  state->pending = queue_.schedule(now_ + period, [tick] { (*tick)(); });

  // The returned handle wraps `stopped` directly: EventHandle::cancel sets
  // the flag; the tick lambda checks it before doing anything.
  return EventHandle(stopped);
}

std::uint64_t Simulator::run(std::uint64_t limit) {
  std::uint64_t fired = 0;
  while (fired < limit && !queue_.empty()) {
    auto ev = queue_.pop();
    assert(ev.time >= now_);
    now_ = ev.time;
    ev.fn();
    ++fired;
    ++events_executed_;
  }
  return fired;
}

std::uint64_t Simulator::run_until(SimTime deadline) {
  std::uint64_t fired = 0;
  while (!queue_.empty() && queue_.next_time() <= deadline) {
    auto ev = queue_.pop();
    assert(ev.time >= now_);
    now_ = ev.time;
    ev.fn();
    ++fired;
    ++events_executed_;
  }
  if (now_ < deadline) now_ = deadline;
  return fired;
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  auto ev = queue_.pop();
  now_ = ev.time;
  ev.fn();
  ++events_executed_;
  return true;
}

}  // namespace vafs::sim
