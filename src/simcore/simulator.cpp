#include "simcore/simulator.h"

#include <cassert>
#include <utility>

namespace vafs::sim {

EventHandle Simulator::at(SimTime when, EventFn fn) {
  assert(when >= now_ && "cannot schedule in the past");
  return queue_.schedule(when, std::move(fn));
}

EventHandle Simulator::after(SimTime delay, EventFn fn) {
  assert(!delay.is_negative() && "negative delay");
  return at(now_ + delay, std::move(fn));
}

EventHandle Simulator::every(SimTime period, EventFn fn) {
  assert(period > SimTime::zero() && "period must be positive");
  return queue_.schedule_periodic(now_ + period, period, std::move(fn));
}

bool Simulator::reschedule(EventHandle& handle, SimTime when) {
  assert(when >= now_ && "cannot schedule in the past");
  return queue_.reschedule(handle, when);
}

void Simulator::fire(EventQueue::Popped&& ev) {
  now_ = ev.time;
  ev.fn();
  queue_.rearm(std::move(ev));  // keeps periodic series alive; no-op otherwise
  ++events_executed_;
}

std::uint64_t Simulator::run(std::uint64_t limit) {
  std::uint64_t fired = 0;
  EventQueue::Popped ev;
  while (fired < limit && queue_.pop_next(SimTime::max(), &ev)) {
    assert(ev.time >= now_);
    fire(std::move(ev));
    ++fired;
  }
  return fired;
}

std::uint64_t Simulator::run_until(SimTime deadline) {
  std::uint64_t fired = 0;
  EventQueue::Popped ev;
  while (queue_.pop_next(deadline, &ev)) {
    assert(ev.time >= now_);
    fire(std::move(ev));
    ++fired;
  }
  if (now_ < deadline) now_ = deadline;
  return fired;
}

bool Simulator::step() {
  EventQueue::Popped ev;
  if (!queue_.pop_next(SimTime::max(), &ev)) return false;
  fire(std::move(ev));
  return true;
}

}  // namespace vafs::sim
