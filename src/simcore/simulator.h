// The simulation driver: a clock plus the event queue.
//
// Components hold a Simulator& and schedule callbacks on it. The driver
// loop (run / run_until / step) advances the clock to each event's time and
// fires it. Determinism: same seed + same schedule calls => identical runs.
#pragma once

#include <cstdint>

#include "simcore/event_queue.h"
#include "simcore/time.h"

namespace vafs::sim {

class Simulator {
 public:
  /// With an arena, the event slab/heap storage is borrowed from (and
  /// returned to) it — back-to-back simulators sharing one arena run
  /// allocation-free after the first session warms the capacity.
  explicit Simulator(EventQueue::Arena* arena = nullptr) : queue_(arena) {}
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  SimTime now() const { return now_; }

  /// Schedules `fn` at absolute time `when` (must be >= now()).
  EventHandle at(SimTime when, EventFn fn);

  /// Schedules `fn` after a relative delay (must be >= 0).
  EventHandle after(SimTime delay, EventFn fn);

  /// Schedules `fn` to run repeatedly with the given period, first firing
  /// after one period. The returned handle cancels the *series*.
  EventHandle every(SimTime period, EventFn fn);

  /// Moves a still-pending event to absolute time `when` (>= now()),
  /// keeping its callback — the allocation-free re-arm for timer-style
  /// events. Returns false if the handle no longer refers to a pending
  /// event (caller then schedules a fresh one).
  bool reschedule(EventHandle& handle, SimTime when);

  /// Runs events until the queue drains or `limit` events fired.
  /// Returns the number of events executed.
  std::uint64_t run(std::uint64_t limit = UINT64_MAX);

  /// Runs events with time <= deadline, then advances the clock to exactly
  /// `deadline` (even if the queue drained earlier). Returns events fired.
  std::uint64_t run_until(SimTime deadline);

  /// Fires exactly one event if any is pending. Returns whether one fired.
  bool step();

  /// True if no runnable events remain.
  bool idle() { return queue_.empty(); }

  /// Absolute time of the earliest runnable event, or SimTime::max() when
  /// none remain. May lazily drop cancelled entries to answer; does not
  /// advance the clock or fire anything.
  SimTime next_event_time() { return queue_.empty() ? SimTime::max() : queue_.next_time(); }

  /// Total events executed over the simulator's lifetime.
  std::uint64_t events_executed() const { return events_executed_; }

 private:
  void fire(EventQueue::Popped&& ev);

  SimTime now_ = SimTime::zero();
  EventQueue queue_;
  std::uint64_t events_executed_ = 0;
};

}  // namespace vafs::sim
