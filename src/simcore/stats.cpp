#include "simcore/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

namespace vafs::sim {

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::add_n(const double* xs, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) add(xs[i]);
}

double OnlineStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

void OnlineStats::merge(const OnlineStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

OnlineStats::State OnlineStats::state() const {
  return State{static_cast<std::uint64_t>(n_), mean_, m2_, min_, max_};
}

OnlineStats OnlineStats::from_state(const State& s) {
  OnlineStats stats;
  stats.n_ = static_cast<std::size_t>(s.n);
  stats.mean_ = s.mean;
  stats.m2_ = s.m2;
  stats.min_ = s.min;
  stats.max_ = s.max;
  return stats;
}

double SampleSet::mean() const {
  if (samples_.empty()) return 0.0;
  double s = 0;
  for (double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

double SampleSet::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  if (sorted_.size() != samples_.size()) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
  }
  p = std::clamp(p, 0.0, 1.0);
  const auto rank = static_cast<std::size_t>(p * static_cast<double>(sorted_.size() - 1) + 0.5);
  return sorted_[rank];
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), bin_width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0.0) {
  assert(hi > lo && bins > 0);
}

void Histogram::add(double x, double weight) {
  std::size_t i;
  if (x < lo_) {
    i = 0;
  } else if (x >= hi_) {
    i = counts_.size() - 1;
  } else {
    i = static_cast<std::size_t>((x - lo_) / bin_width_);
    i = std::min(i, counts_.size() - 1);
  }
  counts_[i] += weight;
  total_ += weight;
}

double Histogram::bin_lo(std::size_t i) const { return lo_ + bin_width_ * static_cast<double>(i); }
double Histogram::bin_hi(std::size_t i) const { return bin_lo(i) + bin_width_; }

double Histogram::bin_fraction(std::size_t i) const {
  return total_ > 0 ? counts_[i] / total_ : 0.0;
}

std::string Histogram::render(std::size_t width) const {
  double peak = 0.0;
  for (double c : counts_) peak = std::max(peak, c);
  std::string out;
  char line[128];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar =
        peak > 0 ? static_cast<std::size_t>(counts_[i] / peak * static_cast<double>(width)) : 0;
    std::snprintf(line, sizeof(line), "[%10.1f, %10.1f) %6.2f%% |", bin_lo(i), bin_hi(i),
                  bin_fraction(i) * 100.0);
    out += line;
    out.append(bar, '#');
    out += '\n';
  }
  return out;
}

}  // namespace vafs::sim
