// Online statistics used throughout the evaluation harness.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace vafs::sim {

/// Welford-style running mean/variance with min/max tracking.
class OnlineStats {
 public:
  void add(double x);

  /// Folds `n` samples in one call — identical arithmetic to n add()
  /// calls (bit-for-bit), but one non-inlined call per block instead of
  /// one per sample. The flush path of StatsBatch.
  void add_n(const double* xs, std::size_t n);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than 2 samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }

  /// Merges another accumulator into this one (parallel Welford).
  void merge(const OnlineStats& other);

  /// The full internal state, exposed for bit-exact serialization (fleet
  /// checkpoints store the raw double bit patterns). A state()/from_state()
  /// round trip reproduces the accumulator exactly — subsequent add() and
  /// merge() calls are bit-identical to the original's.
  struct State {
    std::uint64_t n = 0;
    double mean = 0.0;
    double m2 = 0.0;
    double min = 0.0;
    double max = 0.0;
  };
  State state() const;
  static OnlineStats from_state(const State& s);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-size staging buffer in front of an OnlineStats: per-tick samplers
/// (thermal integrator, residency probes) append to the buffer — one store
/// and a bounds check — and pay the accumulator call once per block rather
/// than once per sample. Results are bit-identical to unbatched add()
/// calls; flush() before reading the target accumulator.
template <std::size_t N = 64>
class StatsBatch {
 public:
  void add(double x, OnlineStats& into) {
    buf_[n_++] = x;
    if (n_ == N) flush(into);
  }
  void flush(OnlineStats& into) {
    into.add_n(buf_, n_);
    n_ = 0;
  }
  std::size_t buffered() const { return n_; }

 private:
  double buf_[N];
  std::size_t n_ = 0;
};

/// Stores samples for exact quantiles. Suited to the session-scale sample
/// counts in this library (thousands to low millions).
class SampleSet {
 public:
  void add(double x) { samples_.push_back(x); }
  std::size_t count() const { return samples_.size(); }
  double mean() const;
  /// Exact p-quantile (p in [0, 1]) by nearest-rank on a sorted copy
  /// (lazily cached). Returns 0 when empty.
  double percentile(double p) const;
  double min() const { return percentile(0.0); }
  double max() const { return percentile(1.0); }
  const std::vector<double>& samples() const { return samples_; }

 private:
  std::vector<double> samples_;
  mutable std::vector<double> sorted_;  // cache, invalidated by add()
};

/// Fixed-width histogram over [lo, hi); out-of-range samples land in
/// saturating edge bins. Used for frequency-residency distributions.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x, double weight = 1.0);

  std::size_t bins() const { return counts_.size(); }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;
  double bin_weight(std::size_t i) const { return counts_[i]; }
  double total_weight() const { return total_; }
  /// Fraction of total weight in bin i (0 if histogram is empty).
  double bin_fraction(std::size_t i) const;

  /// Multi-line ASCII rendering for reports.
  std::string render(std::size_t width = 40) const;

 private:
  double lo_, hi_, bin_width_;
  std::vector<double> counts_;
  double total_ = 0.0;
};

}  // namespace vafs::sim
