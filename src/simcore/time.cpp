#include "simcore/time.h"

#include <cstdio>

namespace vafs::sim {

std::string SimTime::to_string() const {
  char buf[40];
  const std::int64_t us = micros_;
  if (us % 1'000'000 == 0) {
    std::snprintf(buf, sizeof(buf), "%llds", static_cast<long long>(us / 1'000'000));
  } else if (us % 1000 == 0) {
    std::snprintf(buf, sizeof(buf), "%lldms", static_cast<long long>(us / 1000));
  } else if (us > 1'000'000 || us < -1'000'000) {
    std::snprintf(buf, sizeof(buf), "%.3fs", static_cast<double>(us) / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%lldus", static_cast<long long>(us));
  }
  return buf;
}

}  // namespace vafs::sim
