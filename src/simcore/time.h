// Simulation time: a strong integral type counted in microseconds.
//
// All modules in this library express time as SimTime. Using a single,
// integral microsecond clock keeps the discrete-event simulation exactly
// reproducible (no floating-point drift between runs or platforms).
#pragma once

#include <cstdint>
#include <string>

namespace vafs::sim {

/// A point in (or duration of) simulated time, in microseconds.
///
/// SimTime is deliberately a thin wrapper: it supports the arithmetic a
/// discrete-event simulation needs and nothing else. Negative values are
/// valid as durations (e.g. "deadline minus now" may be negative when a
/// deadline has passed) but never as absolute queue times.
class SimTime {
 public:
  constexpr SimTime() = default;
  constexpr explicit SimTime(std::int64_t micros) : micros_(micros) {}

  /// Named constructors.
  static constexpr SimTime micros(std::int64_t us) { return SimTime(us); }
  static constexpr SimTime millis(std::int64_t ms) { return SimTime(ms * 1000); }
  static constexpr SimTime seconds(std::int64_t s) { return SimTime(s * 1'000'000); }
  static constexpr SimTime seconds_f(double s) {
    return SimTime(static_cast<std::int64_t>(s * 1e6));
  }
  static constexpr SimTime zero() { return SimTime(0); }
  static constexpr SimTime max() { return SimTime(INT64_MAX); }

  constexpr std::int64_t as_micros() const { return micros_; }
  constexpr double as_millis_f() const { return static_cast<double>(micros_) / 1e3; }
  constexpr double as_seconds_f() const { return static_cast<double>(micros_) / 1e6; }

  constexpr bool is_zero() const { return micros_ == 0; }
  constexpr bool is_negative() const { return micros_ < 0; }

  constexpr SimTime operator+(SimTime other) const { return SimTime(micros_ + other.micros_); }
  constexpr SimTime operator-(SimTime other) const { return SimTime(micros_ - other.micros_); }
  constexpr SimTime operator*(std::int64_t k) const { return SimTime(micros_ * k); }
  constexpr SimTime operator/(std::int64_t k) const { return SimTime(micros_ / k); }
  constexpr SimTime& operator+=(SimTime other) { micros_ += other.micros_; return *this; }
  constexpr SimTime& operator-=(SimTime other) { micros_ -= other.micros_; return *this; }

  constexpr auto operator<=>(const SimTime&) const = default;

  /// Scales a duration by a real factor, rounding to the nearest microsecond.
  constexpr SimTime scaled(double factor) const {
    return SimTime(static_cast<std::int64_t>(static_cast<double>(micros_) * factor + 0.5));
  }

  /// Human-readable rendering, e.g. "1.500s", "250ms", "12us".
  std::string to_string() const;

 private:
  std::int64_t micros_ = 0;
};

constexpr SimTime operator*(std::int64_t k, SimTime t) { return t * k; }

}  // namespace vafs::sim
