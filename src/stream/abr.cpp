#include "stream/abr.h"

#include <algorithm>
#include <cmath>

namespace vafs::stream {

std::size_t RateBasedAbr::choose(const AbrContext& ctx) {
  if (ctx.throughput_mbps <= 0.0) return 0;  // no estimate yet: be safe
  const double budget_kbps = safety_ * ctx.throughput_mbps * 1000.0;
  return ctx.manifest->rep_index_for_bitrate(budget_kbps);
}

std::size_t BolaAbr::choose(const AbrContext& ctx) {
  const auto& manifest = *ctx.manifest;
  const std::size_t reps = manifest.representation_count();
  const double base_kbps = static_cast<double>(manifest.representation(0).bitrate_kbps);
  const double seg_s = manifest.nominal_segment_duration().as_seconds_f();

  // Buffer level and capacity in segments.
  const double q = ctx.buffer_level.as_seconds_f() / seg_s;
  const double q_max = std::max(2.0, buffer_capacity_.as_seconds_f() / seg_s);

  const double v_top =
      std::log(static_cast<double>(manifest.representation(reps - 1).bitrate_kbps) / base_kbps);
  const double big_v = (q_max - 1.0) / (v_top + gamma_p_);

  std::size_t best = 0;
  double best_score = -1e300;
  for (std::size_t m = 0; m < reps; ++m) {
    const double kbps = static_cast<double>(manifest.representation(m).bitrate_kbps);
    const double utility = std::log(kbps / base_kbps);
    const double score = (big_v * (utility + gamma_p_) - q) / kbps;
    if (score > best_score) {
      best_score = score;
      best = m;
    }
  }
  return best;
}

std::size_t BufferBasedAbr::choose(const AbrContext& ctx) {
  const auto reps = ctx.manifest->representation_count();
  if (ctx.buffer_level <= reservoir_) return 0;
  if (ctx.buffer_level >= cushion_) return reps - 1;
  const double frac = (ctx.buffer_level - reservoir_).as_seconds_f() /
                      (cushion_ - reservoir_).as_seconds_f();
  const auto idx = static_cast<std::size_t>(frac * static_cast<double>(reps - 1) + 0.5);
  return std::min(idx, reps - 1);
}

}  // namespace vafs::stream
