// Adaptive-bitrate algorithms. The evaluation runs the governor matrix
// under each of these (T4) to show the DVFS result is ABR-independent.
#pragma once

#include <cstddef>
#include <memory>
#include <string_view>

#include "simcore/time.h"
#include "video/manifest.h"

namespace vafs::stream {

/// Everything an ABR decision may look at.
struct AbrContext {
  /// Smoothed measured throughput (EWMA over completed segments), Mbps.
  /// Zero before the first segment completes.
  double throughput_mbps = 0.0;
  sim::SimTime buffer_level;
  std::size_t last_rep = 0;
  std::size_t next_segment = 0;
  const video::Manifest* manifest = nullptr;
};

class AbrAlgorithm {
 public:
  virtual ~AbrAlgorithm() = default;
  virtual std::string_view name() const = 0;
  /// Returns the representation index for the next segment.
  virtual std::size_t choose(const AbrContext& ctx) = 0;
};

/// Always the same rung (used for the per-quality energy matrix, T1).
class FixedAbr final : public AbrAlgorithm {
 public:
  explicit FixedAbr(std::size_t rep) : rep_(rep) {}
  std::string_view name() const override { return "fixed"; }
  std::size_t choose(const AbrContext&) override { return rep_; }

 private:
  std::size_t rep_;
};

/// Highest bitrate under safety · throughput; starts at the bottom rung.
class RateBasedAbr final : public AbrAlgorithm {
 public:
  explicit RateBasedAbr(double safety = 0.8) : safety_(safety) {}
  std::string_view name() const override { return "rate"; }
  std::size_t choose(const AbrContext& ctx) override;

 private:
  double safety_;
};

/// BBA-style: map buffer level linearly from reservoir → cushion onto the
/// ladder; below the reservoir pick the bottom, above the cushion the top.
class BufferBasedAbr final : public AbrAlgorithm {
 public:
  BufferBasedAbr(sim::SimTime reservoir = sim::SimTime::seconds(5),
                 sim::SimTime cushion = sim::SimTime::seconds(15))
      : reservoir_(reservoir), cushion_(cushion) {}
  std::string_view name() const override { return "buffer"; }
  std::size_t choose(const AbrContext& ctx) override;

 private:
  sim::SimTime reservoir_;
  sim::SimTime cushion_;
};

/// BOLA (Spiteri et al., INFOCOM'16), BASIC variant: pick the
/// representation maximizing (V·(v_m + γp) − Q) / s_m, where v_m =
/// ln(bitrate_m / bitrate_0) is the utility, Q the buffer level in
/// segments, s_m ∝ bitrate_m the segment size, and V is derived from the
/// buffer capacity so the top rung is reachable exactly when the buffer
/// is full. Lyapunov-drift-based: provably avoids rebuffering while
/// maximizing time-average utility.
class BolaAbr final : public AbrAlgorithm {
 public:
  explicit BolaAbr(sim::SimTime buffer_capacity = sim::SimTime::seconds(12),
                   double gamma_p = 5.0)
      : buffer_capacity_(buffer_capacity), gamma_p_(gamma_p) {}
  std::string_view name() const override { return "bola"; }
  std::size_t choose(const AbrContext& ctx) override;

 private:
  sim::SimTime buffer_capacity_;
  double gamma_p_;
};

}  // namespace vafs::stream
