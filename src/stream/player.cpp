#include "stream/player.h"

#include <cassert>
#include <cmath>

#include "obs/trace.h"

namespace vafs::stream {

const char* player_state_name(PlayerState s) {
  switch (s) {
    case PlayerState::kIdle: return "IDLE";
    case PlayerState::kStartup: return "STARTUP";
    case PlayerState::kPlaying: return "PLAYING";
    case PlayerState::kRebuffering: return "REBUFFERING";
    case PlayerState::kSeeking: return "SEEKING";
    case PlayerState::kFinished: return "FINISHED";
  }
  return "?";
}

Player::Player(sim::Simulator& simulator, cpu::CpuSink& cpu_model, net::Downloader& downloader,
               const video::ContentModel& content, std::unique_ptr<AbrAlgorithm> abr,
               PlayerConfig config)
    : sim_(simulator),
      cpu_(cpu_model),
      downloader_(downloader),
      content_(content),
      abr_(std::move(abr)),
      config_(config) {
  assert(abr_ != nullptr);
  const auto& manifest = content_.manifest();
  const double fps = manifest.representation(0).fps;
  for (const auto& rep : manifest.representations()) {
    assert(rep.fps == fps && "all representations must share one fps");
    (void)rep;
  }
  frame_period_ = sim::SimTime::micros(static_cast<std::int64_t>(std::llround(1e6 / fps)));
  total_frames_ = 0;
  for (std::size_t s = 0; s < manifest.segment_count(); ++s) {
    total_frames_ += manifest.frames_in_segment(0, s);
  }
}

void Player::add_observer(PlayerObserver* observer) { observers_.push_back(observer); }

void Player::set_state(PlayerState next) {
  if (state_ == next) return;
  const PlayerState prev = state_;
  state_ = next;
  if (tracer_ != nullptr) {
    tracer_->record(sim_.now(), obs::EventKind::kPlayerState,
                    static_cast<std::uint64_t>(prev), static_cast<std::uint64_t>(next));
  }
  for (auto* o : observers_) o->on_state_change(prev, next);
}

void Player::trace_buffer_level() {
  if (tracer_ == nullptr) return;
  tracer_->timeline().push(obs::SeriesId::kBufferSeconds, sim_.now(),
                           buffer_.level().as_seconds_f());
}

void Player::start(std::function<void()> on_finished) {
  assert(state_ == PlayerState::kIdle && "player already started");
  on_finished_ = std::move(on_finished);
  session_start_ = sim_.now();
  set_state(PlayerState::kStartup);
  maybe_fetch();
}

std::size_t Player::current_rep() const {
  if (records_.empty()) return last_rep_;
  const std::uint64_t frame = playhead_ < total_frames_ ? playhead_ : total_frames_ - 1;
  return record_for_frame(frame).rep;
}

const Player::SegmentRecord& Player::record_for_frame(std::uint64_t frame) const {
  assert(!records_.empty());
  // Records are in playback order; linear scan from the back is O(1)
  // amortized because callers ask near the frontier.
  for (auto it = records_.rbegin(); it != records_.rend(); ++it) {
    if (it->first_frame <= frame) return *it;
  }
  return records_.front();
}

void Player::maybe_fetch() {
  if (fetch_inflight_ || state_ == PlayerState::kFinished) return;
  const auto& manifest = content_.manifest();
  const std::size_t next = buffer_.next_segment_index();
  if (next >= manifest.segment_count()) return;
  if (buffer_.level() >= config_.buffer_target) return;  // vsync re-checks

  if (config_.live) {
    // The encoder publishes segment n once it has fully elapsed.
    const sim::SimTime available_at =
        session_start_ +
        manifest.nominal_segment_duration() * static_cast<std::int64_t>(next + 1) +
        config_.live_encode_delay;
    if (sim_.now() < available_at) {
      live_wait_event_.cancel();
      live_wait_event_ = sim_.at(available_at, [this] { maybe_fetch(); });
      return;
    }
  }

  AbrContext ctx;
  ctx.throughput_mbps = throughput_mbps_;
  ctx.buffer_level = buffer_.level();
  ctx.last_rep = last_rep_;
  ctx.next_segment = next;
  ctx.manifest = &manifest;
  const std::size_t rep = abr_->choose(ctx);
  assert(rep < manifest.representation_count());

  const std::uint64_t bytes = content_.segment_bytes(rep, next);
  fetch_inflight_ = true;
  fetch_segment_ = next;
  if (tracer_ != nullptr) {
    tracer_->record(sim_.now(), obs::EventKind::kSegmentBegin, next, rep, bytes);
  }
  for (auto* o : observers_) o->on_segment_request(next, rep, bytes);
  downloader_.fetch(bytes,
                    [this, next, rep, epoch = pipeline_epoch_](const net::FetchResult& result) {
                      on_segment_done(next, rep, epoch, result);
                    });
}

void Player::on_segment_done(std::size_t segment, std::size_t rep, std::uint64_t epoch,
                             const net::FetchResult& result) {
  if (epoch != pipeline_epoch_) return;  // stale pre-seek fetch: drop it
  fetch_inflight_ = false;
  qoe_.fetch_retries += result.attempts > 0 ? result.attempts - 1 : 0;

  if (!result.ok) {
    // The downloader exhausted its retries. Stay in the current state
    // (startup/rebuffering stalls continue, playing drains the buffer)
    // and re-request the same segment after a short pause — the session
    // degrades to a longer stall instead of wedging on a dead fetch.
    ++qoe_.fetch_failures;
    if (tracer_ != nullptr) {
      tracer_->record(sim_.now(), obs::EventKind::kSegmentEnd, segment, 1, result.attempts);
    }
    for (auto* o : observers_) o->on_segment_failed(segment, rep, result);
    refetch_event_.cancel();
    refetch_event_ = sim_.after(config_.fetch_retry_delay, [this, epoch] {
      if (epoch == pipeline_epoch_) maybe_fetch();
    });
    return;
  }

  // Throughput EWMA for the ABR context.
  const double mbps = result.throughput_mbps();
  if (mbps > 0) {
    throughput_mbps_ = throughput_mbps_ <= 0
                           ? mbps
                           : config_.throughput_ewma_alpha * mbps +
                                 (1 - config_.throughput_ewma_alpha) * throughput_mbps_;
  }

  if (!records_.empty() && records_.back().rep != rep) ++qoe_.quality_switches;
  last_rep_ = rep;

  const auto& manifest = content_.manifest();
  const std::uint64_t frames = manifest.frames_in_segment(rep, segment);
  records_.push_back(SegmentRecord{segment, rep,
                                   frames_downloaded_, frames, result.bytes});
  frames_downloaded_ += frames;
  buffer_.push(video::BufferedSegment{segment, rep, manifest.segment_duration(segment),
                                      result.bytes});
  if (tracer_ != nullptr) {
    tracer_->record(sim_.now(), obs::EventKind::kSegmentEnd, segment, 0, result.attempts);
    trace_buffer_level();
  }
  for (auto* o : observers_) o->on_segment_complete(segment, rep, result);

  maybe_decode();
  maybe_start_playback();
  maybe_resume_seek();
  if (state_ == PlayerState::kRebuffering) {
    const bool everything_fetched = buffer_.next_segment_index() >= manifest.segment_count();
    if (buffer_.level() >= config_.rebuffer_resume || everything_fetched) {
      qoe_.rebuffer_time += sim_.now() - rebuffer_start_;
      set_state(PlayerState::kPlaying);
      schedule_vsync();
    }
  }
  maybe_fetch();
}

void Player::maybe_resume_seek() {
  if (state_ != PlayerState::kSeeking) return;
  const auto& manifest = content_.manifest();
  const bool everything_fetched = buffer_.next_segment_index() >= manifest.segment_count();
  const bool buffered = buffer_.level() >= config_.rebuffer_resume || everything_fetched;
  if (buffered && decoded_count_ > playhead_) {
    qoe_.seek_time += sim_.now() - seek_start_;
    set_state(PlayerState::kPlaying);
    schedule_vsync();
  }
}

void Player::maybe_start_playback() {
  if (state_ != PlayerState::kStartup) return;
  const auto& manifest = content_.manifest();
  const bool everything_fetched = buffer_.next_segment_index() >= manifest.segment_count();
  const bool buffered_enough = buffer_.level() >= config_.startup_buffer || everything_fetched;
  if (buffered_enough && decoded_count_ > 0) {
    qoe_.startup_delay = sim_.now() - session_start_;
    set_state(PlayerState::kPlaying);
    schedule_vsync();
  }
}

void Player::maybe_decode() {
  if (decode_inflight_) return;
  if (decode_cursor_ >= frames_downloaded_) return;  // nothing arrived yet
  if (decode_cursor_ >= playhead_ + config_.decode_ahead_frames) return;  // far enough ahead

  const std::uint64_t frame = decode_cursor_;
  const SegmentRecord& rec = record_for_frame(frame);
  const auto& manifest = content_.manifest();
  const std::uint64_t rep_frame =
      manifest.first_frame_of_segment(rec.rep, rec.segment_index) + (frame - rec.first_frame);
  const video::FrameInfo info = content_.frame(rec.rep, rep_frame);
  // Fault-injected decode-cost spikes scale the submitted cycles; the
  // observer callback reports the scaled cost (what a device would see).
  const double decode_cycles =
      decode_scale_ ? info.decode_cycles * decode_scale_(sim_.now()) : info.decode_cycles;

  decode_inflight_ = true;
  const sim::SimTime started = sim_.now();
  if (tracer_ != nullptr) tracer_->record(sim_.now(), obs::EventKind::kDecodeBegin, frame);
  for (auto* o : observers_) o->on_decode_start(frame);
  decode_task_id_ = cpu_.submit(
      "decode", decode_cycles,
      [this, frame, cycles = decode_cycles, started, idr = info.is_idr,
       epoch = pipeline_epoch_] { on_frame_decoded(frame, cycles, started, idr, epoch); });
  if (config_.audio_cycles_per_frame > 0) {
    cpu_.submit("audio", config_.audio_cycles_per_frame, nullptr);
  }
}

void Player::on_frame_decoded(std::uint64_t frame, double cycles, sim::SimTime started,
                              bool idr, std::uint64_t epoch) {
  if (epoch != pipeline_epoch_) return;  // stale pre-seek decode
  decode_inflight_ = false;
  assert(frame == decode_cursor_);
  ++decode_cursor_;
  decoded_count_ = decode_cursor_;
  if (tracer_ != nullptr) {
    tracer_->record(sim_.now(), obs::EventKind::kDecodeEnd, frame,
                    static_cast<std::uint64_t>(std::llround(cycles)), idr ? 1 : 0);
  }
  for (auto* o : observers_) o->on_decode_complete(frame, cycles, sim_.now() - started, idr);
  maybe_decode();
  maybe_start_playback();
  maybe_resume_seek();
}

bool Player::seek(sim::SimTime target) {
  if (state_ != PlayerState::kPlaying && state_ != PlayerState::kRebuffering &&
      state_ != PlayerState::kSeeking) {
    return false;
  }
  const auto& manifest = content_.manifest();

  // Close whatever stall we were in.
  if (state_ == PlayerState::kRebuffering) qoe_.rebuffer_time += sim_.now() - rebuffer_start_;
  if (state_ == PlayerState::kSeeking) qoe_.seek_time += sim_.now() - seek_start_;

  // Snap to the containing segment (decode restarts on its IDR).
  if (target.is_negative()) target = sim::SimTime::zero();
  std::size_t seg = static_cast<std::size_t>(target.as_micros() /
                                             manifest.nominal_segment_duration().as_micros());
  seg = std::min(seg, manifest.segment_count() - 1);

  ++pipeline_epoch_;  // stales in-flight fetch + decode callbacks
  ++qoe_.seek_count;
  seek_start_ = sim_.now();
  vsync_event_.cancel();
  live_wait_event_.cancel();
  refetch_event_.cancel();
  if (tracer_ != nullptr) {
    // Close the spans the seek abandons, so the trace stays well-formed.
    if (fetch_inflight_) {
      tracer_->record(sim_.now(), obs::EventKind::kSegmentEnd, fetch_segment_, 2, 0);
    }
    if (decode_inflight_) {
      tracer_->record(sim_.now(), obs::EventKind::kDecodeEnd, decode_cursor_, 0, 2);
    }
    tracer_->record(sim_.now(), obs::EventKind::kSeek, seg);
  }
  if (decode_inflight_) {
    cpu_.cancel(decode_task_id_);
    decode_inflight_ = false;
  }

  playhead_ = manifest.first_frame_of_segment(0, seg);
  decode_cursor_ = playhead_;
  decoded_count_ = playhead_;
  frames_downloaded_ = playhead_;
  records_.clear();
  buffer_.reset(seg);
  fetch_inflight_ = false;  // the old fetch (if any) is epoch-stale now

  set_state(PlayerState::kSeeking);
  maybe_fetch();
  return true;
}

void Player::schedule_vsync() {
  // A periodic series: ticks stay armed across frames without a fresh
  // schedule per tick. Paths that leave kPlaying cancel the series.
  vsync_event_.cancel();
  vsync_event_ = sim_.every(frame_period_, [this] { on_vsync(); });
}

void Player::on_vsync() {
  if (state_ != PlayerState::kPlaying) {
    vsync_event_.cancel();  // defensive: a state change should have cancelled
    return;
  }
  if (playhead_ >= total_frames_) {
    finish();  // cancels the series
    return;
  }

  if (decoded_count_ > playhead_) {
    // The due frame is ready: present it.
    const SegmentRecord& rec = record_for_frame(playhead_);
    bitrate_weighted_sum_ +=
        static_cast<double>(content_.manifest().representation(rec.rep).bitrate_kbps);
    ++qoe_.frames_presented;
    for (auto* o : observers_) o->on_frame_presented(playhead_);
    ++playhead_;
    buffer_.drain(frame_period_);
    trace_buffer_level();
    maybe_decode();  // the ahead-window moved
    maybe_fetch();   // the buffer drained
    if (playhead_ >= total_frames_) finish();
    return;  // otherwise the periodic series carries the next tick
  }

  if (playhead_ < frames_downloaded_) {
    // Data arrived but decoding is late: drop the frame and move on.
    ++qoe_.deadline_misses;
    ++qoe_.frames_dropped;
    if (tracer_ != nullptr) tracer_->record(sim_.now(), obs::EventKind::kFrameDrop, playhead_);
    for (auto* o : observers_) o->on_frame_dropped(playhead_);
    ++playhead_;
    buffer_.drain(frame_period_);
    trace_buffer_level();
    maybe_decode();
    maybe_fetch();
    if (playhead_ >= total_frames_) finish();
    return;
  }

  // The due frame has not even been downloaded: stall.
  ++qoe_.rebuffer_events;
  rebuffer_start_ = sim_.now();
  vsync_event_.cancel();  // ticks stop until playback resumes
  set_state(PlayerState::kRebuffering);
  maybe_fetch();
}

void Player::finish() {
  vsync_event_.cancel();
  live_wait_event_.cancel();
  refetch_event_.cancel();
  if (qoe_.frames_presented > 0) {
    qoe_.mean_bitrate_kbps = bitrate_weighted_sum_ / static_cast<double>(qoe_.frames_presented);
  }
  set_state(PlayerState::kFinished);
  if (on_finished_) on_finished_();
}

}  // namespace vafs::stream
