// The streaming player: wires downloader, playback buffer, decoder and
// display into one pipeline and produces the QoE record.
//
// Pipeline, per session:
//   startup:  fetch segments until the buffer reaches startup_buffer and
//             the first frame is decoded, then start the playback clock
//   playing:  one vsync per frame period; the due frame is presented if
//             decoded, dropped (with a deadline-miss) if its data arrived
//             but decoding is late, and playback stalls (rebuffer) if the
//             data itself is missing
//   decode:   strictly in order, one frame at a time, at most
//             decode_ahead_frames past the playhead; each frame is a CPU
//             task of its ContentModel cycle cost
//   download: keep the buffer at buffer_target; one segment in flight;
//             bitrate chosen by the ABR algorithm per segment
//
// All representations must share one fps (asserted) so the frame timeline
// is representation-independent.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "cpu/cpu_sink.h"
#include "net/downloader.h"
#include "simcore/simulator.h"
#include "stream/abr.h"
#include "video/buffer.h"
#include "video/content.h"
#include "video/qoe.h"

namespace vafs::obs {
class Tracer;
}

namespace vafs::stream {

enum class PlayerState { kIdle, kStartup, kPlaying, kRebuffering, kSeeking, kFinished };

const char* player_state_name(PlayerState s);

struct PlayerConfig {
  sim::SimTime buffer_target = sim::SimTime::seconds(12);
  sim::SimTime startup_buffer = sim::SimTime::seconds(4);
  sim::SimTime rebuffer_resume = sim::SimTime::seconds(4);
  unsigned decode_ahead_frames = 4;
  /// Throughput EWMA weight for the ABR context.
  double throughput_ewma_alpha = 0.4;

  /// Live mode: segment n only becomes fetchable once the encoder has
  /// produced it — at media time (n+1)·segment_duration plus
  /// live_encode_delay after the session starts (the viewer joins at
  /// stream start). Caps how far ahead the player can buffer and makes
  /// end-to-end latency a QoE dimension (see Player::live_latency()).
  bool live = false;
  sim::SimTime live_encode_delay = sim::SimTime::millis(500);

  /// Audio decode cost per video-frame period (0 disables the audio
  /// pipeline). ~1.2 Mcycles/frame ≈ an AAC stream's ~36 MHz at 30 fps.
  /// Audio never gates presentation (it is never the bottleneck); it adds
  /// the steady background load a real player carries.
  double audio_cycles_per_frame = 0.0;

  /// Pause before re-requesting a segment whose fetch exhausted the
  /// downloader's retries (a beat for the link to recover; real players
  /// back off before re-issuing a failed request).
  sim::SimTime fetch_retry_delay = sim::SimTime::millis(250);
};

/// Observer hooks — the interface the VAFS governor (and trace recorders)
/// subscribe to. All callbacks fire synchronously inside player events.
class PlayerObserver {
 public:
  virtual ~PlayerObserver() = default;
  virtual void on_state_change(PlayerState /*from*/, PlayerState /*to*/) {}
  virtual void on_segment_request(std::size_t /*segment*/, std::size_t /*rep*/,
                                  std::uint64_t /*bytes*/) {}
  virtual void on_segment_complete(std::size_t /*segment*/, std::size_t /*rep*/,
                                   const net::FetchResult& /*result*/) {}
  /// A fetch exhausted the downloader's retries; the player will re-request
  /// after its fetch_retry_delay.
  virtual void on_segment_failed(std::size_t /*segment*/, std::size_t /*rep*/,
                                 const net::FetchResult& /*result*/) {}
  virtual void on_decode_start(std::uint64_t /*frame*/) {}
  /// `idr` distinguishes intra frames from predicted frames — a userspace
  /// policy gets this from the demuxer on a real device.
  virtual void on_decode_complete(std::uint64_t /*frame*/, double /*cycles*/,
                                  sim::SimTime /*wall*/, bool /*idr*/) {}
  virtual void on_frame_presented(std::uint64_t /*frame*/) {}
  virtual void on_frame_dropped(std::uint64_t /*frame*/) {}
};

class Player {
 public:
  /// All dependencies must outlive the player. `abr` is owned.
  Player(sim::Simulator& simulator, cpu::CpuSink& cpu_model, net::Downloader& downloader,
         const video::ContentModel& content, std::unique_ptr<AbrAlgorithm> abr,
         PlayerConfig config = {});

  Player(const Player&) = delete;
  Player& operator=(const Player&) = delete;

  /// Begins the session; `on_finished` fires when the last frame presents.
  void start(std::function<void()> on_finished = nullptr);

  /// Seeks to `target` media time (snapped down to a segment boundary,
  /// where decode can restart on an IDR frame). Flushes the buffer and the
  /// decode pipeline; any in-flight segment download becomes stale and is
  /// ignored on completion (its radio/CPU cost has already been paid — the
  /// model does not abort transfers, mirroring players that let the
  /// request drain). Playback resumes once enough data is re-buffered;
  /// the stall is accounted as QoeStats::seek_time, not rebuffering.
  /// Only valid while playing, rebuffering or already seeking; returns
  /// false (and does nothing) otherwise.
  bool seek(sim::SimTime target);

  // ---- Introspection (consumed by VAFS and the harness) ----

  PlayerState state() const { return state_; }
  const video::QoeStats& qoe() const { return qoe_; }
  sim::SimTime buffer_level() const { return buffer_.level(); }
  sim::SimTime frame_period() const { return frame_period_; }
  std::uint64_t playhead_frame() const { return playhead_; }
  std::uint64_t decoded_frames() const { return decoded_count_; }
  /// Frames decoded beyond the playhead (the decode pipeline's slack).
  std::uint64_t decoded_ahead() const {
    return decoded_count_ > playhead_ ? decoded_count_ - playhead_ : 0;
  }
  std::uint64_t total_frames() const { return total_frames_; }
  /// Representation of the segment the playhead is in (or of the last
  /// requested segment before playback starts).
  std::size_t current_rep() const;
  /// Media time played so far.
  sim::SimTime played() const { return frame_period_ * static_cast<std::int64_t>(playhead_); }
  /// Representation a downloaded playback-sequence frame belongs to.
  /// Requires at least one downloaded segment.
  std::size_t rep_of_frame(std::uint64_t frame) const { return record_for_frame(frame).rep; }
  const video::ContentModel& content() const { return content_; }
  const PlayerConfig& config() const { return config_; }
  double throughput_estimate_mbps() const { return throughput_mbps_; }
  /// Live mode: how far behind the live edge playback currently is
  /// (wall time since start minus media time played). Startup delay plus
  /// accumulated stalls.
  sim::SimTime live_latency() const { return (sim_.now() - session_start_) - played(); }

  /// Registers an observer (not owned; must outlive the player).
  void add_observer(PlayerObserver* observer);

  /// Optional tracer (not owned, may be null): segment/decode spans, state
  /// changes, drops and the buffer-level series are recorded through it.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  /// Installs a decode-cost multiplier sampled at decode-submit time
  /// (fault injection: decode-cost spikes). Call before start().
  void set_decode_scale(std::function<double(sim::SimTime)> scale) {
    decode_scale_ = std::move(scale);
  }

 private:
  struct SegmentRecord {
    std::size_t segment_index;
    std::size_t rep;
    std::uint64_t first_frame;  // playback-sequence frame number
    std::uint64_t frames;
    std::uint64_t bytes;
  };

  void set_state(PlayerState next);
  void maybe_fetch();
  void on_segment_done(std::size_t segment, std::size_t rep, std::uint64_t epoch,
                       const net::FetchResult& result);
  void maybe_start_playback();
  void maybe_resume_seek();
  void maybe_decode();
  void on_frame_decoded(std::uint64_t frame, double cycles, sim::SimTime started, bool idr,
                        std::uint64_t epoch);
  void schedule_vsync();
  void on_vsync();
  void finish();

  /// The (rep, per-rep frame index) a playback-sequence frame maps to.
  const SegmentRecord& record_for_frame(std::uint64_t frame) const;

  sim::Simulator& sim_;
  cpu::CpuSink& cpu_;
  net::Downloader& downloader_;
  const video::ContentModel& content_;
  std::unique_ptr<AbrAlgorithm> abr_;
  PlayerConfig config_;

  PlayerState state_ = PlayerState::kIdle;
  video::PlaybackBuffer buffer_;
  video::QoeStats qoe_;
  std::function<void()> on_finished_;
  std::vector<PlayerObserver*> observers_;

  sim::SimTime frame_period_;
  std::uint64_t total_frames_ = 0;

  /// Pushes the current buffer level onto the tracer's timeline (no-op
  /// when detached).
  void trace_buffer_level();

  obs::Tracer* tracer_ = nullptr;

  // Download state.
  bool fetch_inflight_ = false;
  std::size_t fetch_segment_ = 0;  // segment of the in-flight fetch (trace span id)
  std::size_t last_rep_ = 0;
  double throughput_mbps_ = 0.0;
  sim::EventHandle refetch_event_;  // delayed re-request after a failed fetch
  std::function<double(sim::SimTime)> decode_scale_;

  // Decode state.
  std::vector<SegmentRecord> records_;
  std::uint64_t frames_downloaded_ = 0;  // frames whose bytes have arrived
  std::uint64_t decode_cursor_ = 0;      // next frame to decode
  std::uint64_t decoded_count_ = 0;      // frames fully decoded (in order)
  bool decode_inflight_ = false;
  std::uint64_t decode_task_id_ = 0;     // for cancellation on seek
  std::uint64_t pipeline_epoch_ = 0;     // bumped by seek; stales callbacks

  // Playback state.
  std::uint64_t playhead_ = 0;  // next frame due for presentation
  sim::SimTime session_start_;
  sim::SimTime rebuffer_start_;
  sim::SimTime seek_start_;
  sim::EventHandle vsync_event_;
  sim::EventHandle live_wait_event_;  // re-check fetch at availability time
  double bitrate_weighted_sum_ = 0.0;  // presented frames × their kbps
};

}  // namespace vafs::stream
