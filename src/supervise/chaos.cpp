#include "supervise/chaos.h"

namespace vafs::supervise {
namespace {

constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

const char* chaos_fate_name(ChaosFate fate) {
  switch (fate) {
    case ChaosFate::kNone: return "none";
    case ChaosFate::kCrash: return "crash";
    case ChaosFate::kAbort: return "abort";
    case ChaosFate::kExit: return "exit";
    case ChaosFate::kHangSilent: return "hang-silent";
    case ChaosFate::kStall: return "stall";
    case ChaosFate::kLeak: return "leak";
  }
  return "?";
}

ChaosFate chaos_fate(const ChaosConfig& config, std::uint64_t task_index, int attempt) {
  if (!config.any()) return ChaosFate::kNone;
  std::uint64_t h = splitmix64(config.seed ^ 0xC4A05F47E5ULL);
  h = splitmix64(h ^ task_index);
  h = splitmix64(h ^ static_cast<std::uint64_t>(attempt));
  // Map to [0, 1) with 53 uniform bits, then walk the probability bands in
  // declaration order.
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  double edge = config.crash;
  if (u < edge) return ChaosFate::kCrash;
  edge += config.abort_rate;
  if (u < edge) return ChaosFate::kAbort;
  edge += config.exit_rate;
  if (u < edge) return ChaosFate::kExit;
  edge += config.hang_silent;
  if (u < edge) return ChaosFate::kHangSilent;
  edge += config.stall;
  if (u < edge) return ChaosFate::kStall;
  edge += config.leak;
  if (u < edge) return ChaosFate::kLeak;
  return ChaosFate::kNone;
}

}  // namespace vafs::supervise
