// HarnessChaos: seeded deterministic fault injection *inside supervised
// workers*, dogfooding the PR 3 philosophy (break things on purpose,
// verify the system degrades instead of wedging) at the harness layer.
//
// A worker about to execute (task, attempt) consults chaos_fate(): a pure
// hash of (seed, task_index, attempt) — no RNG state, no wall clock — so
// the injected fate of every attempt is a function of the task alone.
// That makes the quarantine set itself deterministic: a task is
// quarantined iff all of its first max_task_attempts fates are lethal,
// regardless of worker count, scheduling, respawn timing, or where a
// resume cut the run.
#pragma once

#include <cstdint>

namespace vafs::supervise {

/// Injection probabilities (each in [0, 1]; evaluated in ChaosFate order
/// over disjoint probability bands, so their sum should stay <= 1).
struct ChaosConfig {
  std::uint64_t seed = 0;
  double crash = 0.0;        ///< raise(SIGSEGV) before the task runs
  double abort_rate = 0.0;   ///< abort() — the assert/std::terminate shape
  double exit_rate = 0.0;    ///< _exit(41) — silent early death, no signal
  double hang_silent = 0.0;  ///< stop heartbeating and sleep forever
  double stall = 0.0;        ///< keep heartbeating but never finish
  double leak = 0.0;         ///< allocate until the budget kills the worker

  bool any() const {
    return crash > 0 || abort_rate > 0 || exit_rate > 0 || stall > 0 || hang_silent > 0 ||
           leak > 0;
  }
};

enum class ChaosFate : std::uint8_t {
  kNone,
  kCrash,
  kAbort,
  kExit,
  kHangSilent,
  kStall,
  kLeak,
};

const char* chaos_fate_name(ChaosFate fate);

/// The injected fate of one (task, attempt) execution under `config` —
/// pure and platform-stable (splitmix64 over the three keys).
ChaosFate chaos_fate(const ChaosConfig& config, std::uint64_t task_index, int attempt);

}  // namespace vafs::supervise
