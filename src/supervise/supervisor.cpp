#include "supervise/supervisor.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <mutex>
#include <cstdio>
#include <cstring>
#include <deque>
#include <filesystem>
#include <map>
#include <optional>
#include <set>
#include <thread>

#include <fcntl.h>
#include <poll.h>
#include <sys/resource.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include "exp/runner.h"
#include "fleet/io.h"
#include "fleet/shard_plan.h"
#include "obs/export.h"
#include "supervise/wire.h"

namespace vafs::supervise {
namespace {

using Clock = std::chrono::steady_clock;

std::string manifest_path(const std::string& dir) { return dir + "/manifest.ckpt"; }

std::int64_t ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(b - a).count();
}

const char* signal_name(int sig) {
  switch (sig) {
    case SIGSEGV: return "SIGSEGV";
    case SIGBUS: return "SIGBUS";
    case SIGILL: return "SIGILL";
    case SIGFPE: return "SIGFPE";
    case SIGABRT: return "SIGABRT";
    case SIGKILL: return "SIGKILL";
    case SIGTERM: return "SIGTERM";
    case SIGINT: return "SIGINT";
    case SIGPIPE: return "SIGPIPE";
    case SIGHUP: return "SIGHUP";
  }
  return nullptr;
}

std::string signal_label(int sig) {
  const char* name = signal_name(sig);
  return name != nullptr ? std::string(name) : "SIG" + std::to_string(sig);
}

/// JSON string body escaping for the quarantine log (ASCII control chars,
/// quotes, backslashes — scenario ids and stderr tails carry newlines).
std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// One quarantine.jsonl line. Deterministic: no timestamps, no pids — the
/// kill/resume byte-identity tests diff this file directly.
std::string quarantine_json(const QuarantineRecord& q) {
  std::string line = "{\"task\":" + std::to_string(q.task_index) + ",\"scenario\":\"" +
                     json_escape(q.scenario) + "\",\"seed\":" + std::to_string(q.seed) +
                     ",\"attempts\":" + std::to_string(q.attempts) + ",\"fates\":[";
  for (std::size_t i = 0; i < q.fates.size(); ++i) {
    if (i > 0) line += ',';
    line += '"' + json_escape(q.fates[i]) + '"';
  }
  line += "],\"stderr\":\"" + json_escape(q.stderr_tail) +
          "\",\"last_trace_events\":" + std::to_string(q.last_trace_events) +
          ",\"last_trace_digest\":\"" + obs::digest_hex(q.last_trace_digest) + "\"}\n";
  return line;
}

/// RSS of a live process in MiB via /proc/<pid>/statm (0 when unreadable).
std::uint64_t read_rss_mib(pid_t pid) {
#ifdef __linux__
  const std::string path = "/proc/" + std::to_string(pid) + "/statm";
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return 0;
  unsigned long long vsz_pages = 0;
  unsigned long long rss_pages = 0;
  const int got = std::fscanf(f, "%llu %llu", &vsz_pages, &rss_pages);
  std::fclose(f);
  if (got != 2) return 0;
  const auto page = static_cast<std::uint64_t>(::sysconf(_SC_PAGESIZE));
  return rss_pages * page >> 20;
#else
  (void)pid;
  return 0;
#endif
}

/// Writes one full line to a (blocking) pipe fd, retrying EINTR. EPIPE is
/// swallowed: a dead peer is detected elsewhere (EOF / waitpid).
void write_line(int fd, std::string_view line) {
  std::size_t off = 0;
  while (off < line.size()) {
    const ssize_t n = ::write(fd, line.data() + off, line.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;
    }
    off += static_cast<std::size_t>(n);
  }
}

// ---------------------------------------------------------------------------
// Worker side (runs in the forked child; never returns).
// ---------------------------------------------------------------------------

struct WorkerContext {
  const std::vector<exp::ScenarioSpec>* scenarios = nullptr;
  const fleet::ShardPlan* plan = nullptr;
  const std::vector<std::uint64_t>* seeds = nullptr;
  bool trace = true;
  std::int64_t task_timeout_ms = 0;
  std::int64_t heartbeat_interval_ms = 250;
  ChaosConfig chaos;
  std::uint64_t chaos_leak_cap_mb = 512;
};

[[noreturn]] void execute_chaos(ChaosFate fate, std::uint64_t task, int attempt,
                                std::atomic<bool>* beating, std::uint64_t leak_cap_mb) {
  // Announce on stderr first: the supervisor captures this tail into the
  // quarantine record, and the text is deterministic by construction.
  std::fprintf(stderr, "chaos: task %llu attempt %d fate %s\n",
               static_cast<unsigned long long>(task), attempt, chaos_fate_name(fate));
  std::fflush(stderr);
  switch (fate) {
    case ChaosFate::kCrash:
      ::raise(SIGSEGV);
      break;
    case ChaosFate::kAbort:
      std::abort();
    case ChaosFate::kExit:
      ::_exit(41);
    case ChaosFate::kHangSilent:
      beating->store(false, std::memory_order_relaxed);
      for (;;) ::pause();
    case ChaosFate::kStall:
      // Keep heartbeating, never finish: only the task deadline catches it.
      for (;;) ::usleep(50 * 1000);
    case ChaosFate::kLeak: {
      // Allocate-and-touch until a budget stops us, then mimic the kernel
      // OOM killer (SIGKILL — no unwind, no exit status).
      constexpr std::size_t kChunk = 8u << 20;
      std::vector<char*> chunks;
      const std::size_t max_chunks =
          leak_cap_mb > 0 ? static_cast<std::size_t>((leak_cap_mb << 20) / kChunk) : 0;
      try {
        for (std::size_t i = 0; i < max_chunks; ++i) {
          char* p = new char[kChunk];
          std::memset(p, 1, kChunk);
          chunks.push_back(p);
        }
      } catch (...) {
      }
      ::raise(SIGKILL);
      break;
    }
    case ChaosFate::kNone:
      break;
  }
  ::_exit(40);  // unreachable for real fates; satisfies [[noreturn]]
}

[[noreturn]] void worker_main(int cmd_rd, int res_wr, const WorkerContext& ctx) {
  ::signal(SIGPIPE, SIG_IGN);

  // Heartbeat thread: one H line per interval, carrying the in-flight
  // task's last obs checkpoint window (mirrored atomics — the tracer
  // itself stays single-threaded).
  std::atomic<bool> stop{false};
  std::atomic<bool> beating{true};
  std::atomic<std::uint64_t> mirror_events{0};
  std::atomic<std::uint64_t> mirror_digest{0};
  std::mutex beat_mu;
  std::condition_variable beat_cv;
  std::thread beat_thread([&] {
    std::uint64_t beat = 0;
    const auto interval = std::chrono::milliseconds(
        ctx.heartbeat_interval_ms > 0 ? ctx.heartbeat_interval_ms : 250);
    std::unique_lock<std::mutex> lock(beat_mu);
    while (!stop.load(std::memory_order_relaxed)) {
      if (beating.load(std::memory_order_relaxed)) {
        WireHeartbeat h;
        h.beat = ++beat;
        h.trace_events = mirror_events.load(std::memory_order_acquire);
        h.trace_digest = mirror_digest.load(std::memory_order_relaxed);
        std::string line;
        encode_heartbeat(&line, h);
        write_line(res_wr, line);
      }
      // cv instead of sleep: a Q command must not pay a full interval of
      // shutdown latency waiting for the beat thread to wake up.
      beat_cv.wait_for(lock, interval,
                       [&] { return stop.load(std::memory_order_relaxed); });
    }
  });
  const auto stop_beats = [&] {
    {
      std::lock_guard<std::mutex> lock(beat_mu);
      stop.store(true, std::memory_order_relaxed);
    }
    beat_cv.notify_one();
  };

  core::SessionArena arena;
  std::string buf;
  char chunk[512];
  const auto read_cmd_line = [&](std::string* line) {
    for (;;) {
      const std::size_t nl = buf.find('\n');
      if (nl != std::string::npos) {
        *line = buf.substr(0, nl);
        buf.erase(0, nl + 1);
        return true;
      }
      const ssize_t n = ::read(cmd_rd, chunk, sizeof(chunk));
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      if (n == 0) return false;  // supervisor died: exit quietly
      buf.append(chunk, static_cast<std::size_t>(n));
    }
  };

  std::string line;
  while (read_cmd_line(&line)) {
    if (is_quit(line)) break;
    std::uint64_t task = 0;
    int attempt = 0;
    if (!parse_task(line, &task, &attempt)) continue;

    // Begin-ack before anything can kill us: the supervisor charges the
    // strike for this death to `task` only after seeing the B.
    {
      std::string ack;
      encode_begin(&ack, task);
      write_line(res_wr, ack);
    }

    const ChaosFate fate = chaos_fate(ctx.chaos, task, attempt);
    if (fate != ChaosFate::kNone) {
      execute_chaos(fate, task, attempt, &beating, ctx.chaos_leak_cap_mb);
    }

    mirror_events.store(0, std::memory_order_relaxed);
    mirror_digest.store(0, std::memory_order_relaxed);
    const fleet::TaskRef ref = ctx.plan->task(task);
    core::SessionHooks hooks;
    std::optional<obs::Tracer> tracer;
    if (ctx.trace) {
      tracer.emplace(obs::Tracer::Config{0});
      tracer->mirror_checkpoints(&mirror_events, &mirror_digest);
      hooks.tracer = &*tracer;
    }
    // trace=false here: the hooks tracer (when ctx.trace) already matches
    // run_one_task's own digest-only tracer bit for bit.
    exp::TaskOutcome out =
        exp::run_one_task((*ctx.scenarios)[ref.scenario], (*ctx.seeds)[ref.seed_index],
                          std::move(hooks), false, &arena, ctx.task_timeout_ms);
    std::string reply;
    if (out.ok()) {
      WireResult wr;
      wr.task_index = task;
      wr.finished = out.result.finished;
      wr.digest = out.result.trace_digest;
      exp::Aggregate::session_values(out.result, wr.values);
      encode_result(&reply, wr);
    } else {
      encode_failure(&reply, task, out.error);
    }
    write_line(res_wr, reply);
  }

  stop_beats();
  beat_thread.join();
  ::_exit(0);
}

// ---------------------------------------------------------------------------
// Supervisor side.
// ---------------------------------------------------------------------------

struct Inflight {
  std::uint64_t task = 0;
  int attempt = 0;
  bool begun = false;
  Clock::time_point begin_time{};
};

struct Worker {
  std::size_t slot = 0;
  pid_t pid = -1;
  int cmd_wr = -1;
  int res_rd = -1;
  int err_rd = -1;
  bool alive = false;
  std::deque<Inflight> inflight;
  std::string res_buf;
  std::string err_tail;
  Clock::time_point last_beat{};
  std::uint64_t last_events = 0;
  std::uint64_t last_digest = 0;
  bool killed_by_us = false;
  WorkerFate kill_reason = WorkerFate::kClean;
};

/// Bounded stderr tail retained per in-flight task.
constexpr std::size_t kMaxStderrTail = 4096;

void set_nonblock(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

const char* worker_fate_name(WorkerFate fate) {
  switch (fate) {
    case WorkerFate::kClean: return "clean";
    case WorkerFate::kExit: return "exit";
    case WorkerFate::kCrash: return "crash";
    case WorkerFate::kAbort: return "abort";
    case WorkerFate::kKilled: return "killed";
    case WorkerFate::kHangKill: return "hang";
    case WorkerFate::kDeadlineKill: return "deadline";
    case WorkerFate::kRssKill: return "oom";
  }
  return "?";
}

SupervisedResult run_supervised(const std::vector<exp::ScenarioSpec>& scenarios,
                                const fleet::FleetOptions& fopts, const SuperviseOptions& sopts) {
  using fleet::CheckpointFailure;
  using fleet::CheckpointQuarantine;
  using fleet::CheckpointState;

  SupervisedResult result;
  fleet::FleetResult& fr = result.fleet;
  fr.scenarios.reserve(scenarios.size());
  for (const auto& spec : scenarios) fr.scenarios.push_back(fleet::FleetScenario{spec, {}});

  const fleet::ShardPlan plan(scenarios.size(), fopts.seeds.size(), fopts.shard_size);
  fr.fingerprint = fleet::grid_fingerprint(scenarios, fopts.seeds, plan.shard_size());
  fr.shard_count = plan.shard_count();
  const std::uint64_t task_count = plan.task_count();

  const bool checkpointing = !fopts.checkpoint_dir.empty();
  if (checkpointing) {
    std::error_code ec;
    std::filesystem::create_directories(fopts.checkpoint_dir, ec);
    if (ec) {
      fr.error =
          "supervise: cannot create checkpoint dir '" + fopts.checkpoint_dir + "': " + ec.message();
      return result;
    }
  }

  // ---- Resume (same contract as run_fleet, plus the quarantine state).
  std::uint64_t frontier_shard = 0;
  std::uint64_t spool_resume_offset = 0;
  std::uint64_t quarantine_offset = 0;
  if (fopts.resume && checkpointing &&
      std::filesystem::exists(manifest_path(fopts.checkpoint_dir))) {
    CheckpointState cs;
    std::string error;
    if (!fleet::read_checkpoint(manifest_path(fopts.checkpoint_dir), &cs, &error)) {
      fr.error = "supervise: resume failed: " + error;
      return result;
    }
    if (cs.fingerprint != fr.fingerprint) {
      fr.error =
          "supervise: resume refused: the manifest was written for a different grid, seed list "
          "or shard size (fingerprint mismatch)";
      return result;
    }
    if (cs.aggregates.size() != scenarios.size() || cs.shards_done > fr.shard_count) {
      fr.error = "supervise: resume refused: manifest shape does not match the grid";
      return result;
    }
    for (std::size_t s = 0; s < scenarios.size(); ++s) fr.scenarios[s].agg = cs.aggregates[s];
    fr.failures = std::move(cs.failures);
    fr.quarantined = std::move(cs.quarantined);
    fr.digest_chain = cs.digest_chain;
    fr.sessions_resumed = cs.tasks_done;
    result.quarantined_resumed = fr.quarantined.size();
    frontier_shard = cs.shards_done;
    spool_resume_offset = cs.spool_offset;
    quarantine_offset = cs.quarantine_offset;
  }

  // ---- Spool (same placement rule as run_fleet).
  fleet::SpoolOptions spool_opts = fopts.spool;
  if (spool_opts.format != fleet::SpoolFormat::kNone && spool_opts.path.empty() && checkpointing) {
    spool_opts.path =
        fopts.checkpoint_dir +
        (spool_opts.format == fleet::SpoolFormat::kCsv ? "/spool.csv" : "/spool.jsonl");
  }
  fleet::Spool spool;
  {
    std::string error;
    if (!spool.open(spool_opts, spool_resume_offset, &error)) {
      fr.error = "supervise: " + error;
      return result;
    }
  }

  // ---- Quarantine log.
  std::string quarantine_path = sopts.quarantine_path;
  if (quarantine_path.empty() && checkpointing) {
    quarantine_path = fopts.checkpoint_dir + "/quarantine.jsonl";
  }
  int qfd = -1;
  if (!quarantine_path.empty()) {
    qfd = ::open(quarantine_path.c_str(), O_WRONLY | O_CREAT | O_CLOEXEC, 0644);
    if (qfd < 0) {
      fr.error = "supervise: cannot open quarantine log '" + quarantine_path + "'";
      return result;
    }
    struct stat st {};
    if (::fstat(qfd, &st) == 0 && static_cast<std::uint64_t>(st.st_size) < quarantine_offset) {
      fr.error = "supervise: quarantine log '" + quarantine_path + "' is shorter (" +
                 std::to_string(st.st_size) + " B) than the checkpointed offset (" +
                 std::to_string(quarantine_offset) + " B)";
      ::close(qfd);
      return result;
    }
    if (::ftruncate(qfd, static_cast<off_t>(quarantine_offset)) != 0 ||
        ::lseek(qfd, static_cast<off_t>(quarantine_offset), SEEK_SET) < 0) {
      fr.error = "supervise: cannot truncate quarantine log '" + quarantine_path + "'";
      ::close(qfd);
      return result;
    }
  }

  // SIGPIPE must not kill the supervisor when a worker dies mid-command.
  struct sigaction ignore_pipe {};
  ignore_pipe.sa_handler = SIG_IGN;
  struct sigaction old_pipe {};
  ::sigaction(SIGPIPE, &ignore_pipe, &old_pipe);

  const Clock::time_point run_start = Clock::now();
  const auto trace_event = [&](obs::EventKind kind, std::uint64_t a = 0, std::uint64_t b = 0,
                               std::uint64_t c = 0) {
    if (sopts.tracer != nullptr) {
      sopts.tracer->record(sim::SimTime::millis(ms_between(run_start, Clock::now())), kind, a, b,
                           c);
    }
  };

  // ---- Fold state.
  std::uint64_t fold_next =
      frontier_shard < fr.shard_count ? plan.shard(frontier_shard).first_task : task_count;
  std::uint64_t next_task = fold_next;  // next never-dispatched task
  std::uint64_t tasks_done = fr.sessions_resumed;
  std::uint64_t cur_shard = frontier_shard;
  fr.shards_done = frontier_shard;

  struct Pending {
    enum Kind : std::uint8_t { kOk, kFailed, kQuarantined } kind = kOk;
    WireResult res;
    std::string error;
    QuarantineRecord quarantine;
  };
  std::map<std::uint64_t, Pending> pending;
  std::set<std::uint64_t> retry;              // tasks awaiting re-dispatch, frontier first
  std::map<std::uint64_t, int> attempt_of;    // next attempt number (absent = 0)
  std::map<std::uint64_t, std::vector<std::string>> fates_of;

  const int worker_count = std::max(1, sopts.workers);
  std::vector<Worker> workers(static_cast<std::size_t>(worker_count));
  for (std::size_t i = 0; i < workers.size(); ++i) workers[i].slot = i;

  bool stopped = false;
  bool shutting_down = false;

  const auto write_manifest = [&](std::string* error) {
    if (!spool.sync(error)) return false;
    if (qfd >= 0 && !fleet::fsync_fd(qfd, error)) {
      *error = "quarantine log fsync: " + *error;
      return false;
    }
    CheckpointState cs;
    cs.fingerprint = fr.fingerprint;
    cs.shards_done = fr.shards_done;
    cs.tasks_done = tasks_done;
    cs.digest_chain = fr.digest_chain;
    cs.spool_offset = spool.offset();
    cs.quarantine_offset = quarantine_offset;
    cs.aggregates.reserve(fr.scenarios.size());
    for (const auto& fs : fr.scenarios) cs.aggregates.push_back(fs.agg);
    cs.failures = fr.failures;
    cs.quarantined = fr.quarantined;
    return fleet::write_checkpoint(manifest_path(fopts.checkpoint_dir), cs, error);
  };

  WorkerContext ctx;
  ctx.scenarios = &scenarios;
  ctx.plan = &plan;
  ctx.seeds = &fopts.seeds;
  ctx.trace = fopts.trace;
  ctx.task_timeout_ms = fopts.task_timeout_ms;
  ctx.heartbeat_interval_ms = sopts.heartbeat_interval_ms;
  ctx.chaos = sopts.chaos;
  ctx.chaos_leak_cap_mb = sopts.chaos_leak_cap_mb;

  const auto close_worker_fds = [](Worker& w) {
    if (w.cmd_wr >= 0) ::close(w.cmd_wr);
    if (w.res_rd >= 0) ::close(w.res_rd);
    if (w.err_rd >= 0) ::close(w.err_rd);
    w.cmd_wr = w.res_rd = w.err_rd = -1;
  };

  const auto spawn_worker = [&](Worker& w) -> bool {
    int cmd[2] = {-1, -1};
    int res[2] = {-1, -1};
    int err[2] = {-1, -1};
    if (::pipe(cmd) != 0 || ::pipe(res) != 0 || ::pipe(err) != 0) {
      fr.error = "supervise: pipe() failed: " + std::string(std::strerror(errno));
      for (const int fd : {cmd[0], cmd[1], res[0], res[1], err[0], err[1]}) {
        if (fd >= 0) ::close(fd);
      }
      return false;
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      fr.error = "supervise: fork() failed: " + std::string(std::strerror(errno));
      for (const int fd : {cmd[0], cmd[1], res[0], res[1], err[0], err[1]}) ::close(fd);
      return false;
    }
    if (pid == 0) {
      // Child. Drop every inherited supervisor-side fd — a leaked res-pipe
      // write end would keep a sibling's EOF from ever arriving.
      for (Worker& other : workers) {
        if (other.cmd_wr >= 0) ::close(other.cmd_wr);
        if (other.res_rd >= 0) ::close(other.res_rd);
        if (other.err_rd >= 0) ::close(other.err_rd);
      }
      ::close(cmd[1]);
      ::close(res[0]);
      ::close(err[0]);
      ::dup2(err[1], 2);
      ::close(err[1]);
      if (qfd >= 0) ::close(qfd);
      if (sopts.worker_as_limit_mb > 0) {
        struct rlimit rl {};
        rl.rlim_cur = rl.rlim_max = static_cast<rlim_t>(sopts.worker_as_limit_mb) << 20;
        ::setrlimit(RLIMIT_AS, &rl);
      }
      worker_main(cmd[0], res[1], ctx);
    }
    // Parent.
    ::close(cmd[0]);
    ::close(res[1]);
    ::close(err[1]);
    w.pid = pid;
    w.cmd_wr = cmd[1];
    w.res_rd = res[0];
    w.err_rd = err[0];
    set_nonblock(w.res_rd);
    set_nonblock(w.err_rd);
    w.alive = true;
    w.inflight.clear();
    w.res_buf.clear();
    w.err_tail.clear();
    w.last_beat = Clock::now();
    w.last_events = w.last_digest = 0;
    w.killed_by_us = false;
    ++result.worker_spawns;
    trace_event(obs::EventKind::kWorkerSpawn, w.slot, static_cast<std::uint64_t>(pid));
    return true;
  };

  const auto dispatch_to = [&](Worker& w) {
    while (w.alive && w.inflight.size() < 2) {
      std::uint64_t task = 0;
      if (!retry.empty()) {
        task = *retry.begin();
        retry.erase(retry.begin());
      } else if (next_task < task_count) {
        task = next_task++;
      } else {
        return;
      }
      const auto it = attempt_of.find(task);
      const int attempt = it != attempt_of.end() ? it->second : 0;
      std::string line;
      encode_task(&line, task, attempt);
      write_line(w.cmd_wr, line);
      Inflight fl;
      fl.task = task;
      fl.attempt = attempt;
      w.inflight.push_back(fl);
      trace_event(obs::EventKind::kTaskDispatch, task, w.slot, static_cast<std::uint64_t>(attempt));
    }
  };

  // Folds every pending frontier task; returns false on a persistence
  // error (fr.error set).
  const auto fold_ready = [&]() -> bool {
    while (fold_next < task_count && !stopped) {
      const auto it = pending.find(fold_next);
      if (it == pending.end()) break;
      Pending p = std::move(it->second);
      pending.erase(it);
      const fleet::TaskRef ref = plan.task(fold_next);
      fleet::FleetScenario& fs = fr.scenarios[ref.scenario];
      const std::uint64_t seed = fopts.seeds[ref.seed_index];
      switch (p.kind) {
        case Pending::kOk:
          fs.agg.add_values(p.res.values, p.res.finished);
          spool.append_values(fs.spec, seed, p.res.values, p.res.digest);
          fr.digest_chain = obs::chain_digest(fr.digest_chain, p.res.digest);
          ++fr.sessions_run;
          break;
        case Pending::kFailed:
          fr.failures.push_back(CheckpointFailure{fold_next, seed, std::move(p.error)});
          fs.agg.all_finished = false;
          spool.append_failure(fs.spec, seed);
          fr.digest_chain = obs::chain_digest(fr.digest_chain, 0);
          ++fr.sessions_run;
          break;
        case Pending::kQuarantined: {
          // Excluded *explicitly* from the chain, aggregates and spool:
          // the digest chain over survivors stays bit-identical to a
          // clean run over the same surviving task set.
          if (qfd >= 0) {
            const std::string line = quarantine_json(p.quarantine);
            std::string error;
            if (!fleet::write_all(qfd, line.data(), line.size(), &error)) {
              fr.error = "supervise: quarantine log write: " + error;
              return false;
            }
            quarantine_offset += line.size();
          }
          CheckpointQuarantine cq;
          cq.task_index = p.quarantine.task_index;
          cq.seed = p.quarantine.seed;
          cq.attempts = static_cast<std::uint64_t>(p.quarantine.attempts);
          for (std::size_t i = 0; i < p.quarantine.fates.size(); ++i) {
            if (i > 0) cq.fates += ',';
            cq.fates += p.quarantine.fates[i];
          }
          cq.stderr_tail = p.quarantine.stderr_tail;
          cq.last_trace_events = p.quarantine.last_trace_events;
          cq.last_trace_digest = p.quarantine.last_trace_digest;
          fr.quarantined.push_back(std::move(cq));
          result.quarantine.push_back(std::move(p.quarantine));
          break;
        }
      }
      ++fold_next;
      ++tasks_done;

      const fleet::Shard shard = plan.shard(cur_shard);
      if (fold_next == shard.first_task + shard.task_count) {
        ++cur_shard;
        fr.shards_done = cur_shard;
        const bool last = fr.shards_done == fr.shard_count;
        if (checkpointing &&
            (last || (fr.shards_done % fopts.checkpoint_every_shards) == 0)) {
          std::string error;
          if (!write_manifest(&error)) {
            fr.error = "supervise: " + error;
            return false;
          }
        }
        if (fopts.on_progress && !fopts.on_progress(fr.shards_done, fr.shard_count)) {
          stopped = true;
          fr.stopped = true;
          if (checkpointing) {
            std::string error;
            if (!write_manifest(&error)) fr.error = "supervise: " + error;
          }
          return fr.error.empty();
        }
      }
    }
    return true;
  };

  // Processes one complete res-pipe line from `w`.
  const auto handle_res_line = [&](Worker& w, std::string_view line) {
    WireHeartbeat hb;
    if (parse_heartbeat(line, &hb)) {
      w.last_beat = Clock::now();
      w.last_events = hb.trace_events;
      w.last_digest = hb.trace_digest;
      return;
    }
    std::uint64_t task = 0;
    if (parse_begin(line, &task)) {
      w.last_beat = Clock::now();
      for (Inflight& fl : w.inflight) {
        if (fl.task == task && !fl.begun) {
          fl.begun = true;
          fl.begin_time = Clock::now();
          break;
        }
      }
      // Fresh task: fresh stderr tail and obs window.
      w.err_tail.clear();
      w.last_events = w.last_digest = 0;
      return;
    }
    WireResult res;
    if (parse_result(line, &res)) {
      w.last_beat = Clock::now();
      if (!w.inflight.empty() && w.inflight.front().task == res.task_index) {
        w.inflight.pop_front();
      }
      Pending p;
      p.kind = Pending::kOk;
      p.res = res;
      pending[res.task_index] = std::move(p);
      return;
    }
    WireFailure fail;
    if (parse_failure(line, &fail)) {
      w.last_beat = Clock::now();
      if (!w.inflight.empty() && w.inflight.front().task == fail.task_index) {
        w.inflight.pop_front();
      }
      Pending p;
      p.kind = Pending::kFailed;
      p.error = std::move(fail.error);
      pending[fail.task_index] = std::move(p);
      return;
    }
    // Malformed line: drop it (single-write atomicity makes this a
    // should-not-happen; the heartbeat/deadline layer still protects us).
  };

  // Drains a worker's res pipe; returns false when the pipe hit EOF.
  const auto drain_res = [&](Worker& w) -> bool {
    char chunk[1024];
    bool open = true;
    for (;;) {
      const ssize_t n = ::read(w.res_rd, chunk, sizeof(chunk));
      if (n > 0) {
        w.res_buf.append(chunk, static_cast<std::size_t>(n));
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      open = false;  // EOF or hard error: the worker is gone
      break;
    }
    std::size_t nl = 0;
    while ((nl = w.res_buf.find('\n')) != std::string::npos) {
      handle_res_line(w, std::string_view(w.res_buf).substr(0, nl));
      w.res_buf.erase(0, nl + 1);
    }
    return open;
  };

  const auto drain_err = [&](Worker& w) {
    char chunk[1024];
    for (;;) {
      const ssize_t n = ::read(w.err_rd, chunk, sizeof(chunk));
      if (n > 0) {
        w.err_tail.append(chunk, static_cast<std::size_t>(n));
        if (w.err_tail.size() > kMaxStderrTail) {
          w.err_tail.erase(0, w.err_tail.size() - kMaxStderrTail);
        }
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      break;  // EAGAIN or EOF — err EOF is handled via the res pipe
    }
  };

  const auto fate_string = [&](WorkerFate fate, int status) -> std::string {
    switch (fate) {
      case WorkerFate::kClean: return "clean";
      case WorkerFate::kExit: return "exit:" + std::to_string(WEXITSTATUS(status));
      case WorkerFate::kCrash: return "crash:" + signal_label(WTERMSIG(status));
      case WorkerFate::kAbort: return "abort:SIGABRT";
      case WorkerFate::kKilled: return "killed:" + signal_label(WTERMSIG(status));
      case WorkerFate::kHangKill: return "hang:heartbeat-miss";
      case WorkerFate::kDeadlineKill: return "deadline:exceeded";
      case WorkerFate::kRssKill: return "oom:rss-limit";
    }
    return "?";
  };

  // Reaps a dead worker, charges the strike, requeues its tasks.
  const auto handle_death = [&](Worker& w) {
    // Capture everything the pipes still hold: the B ack and the chaos
    // stderr announcement of the fatal task ride ahead of the EOF.
    drain_res(w);
    drain_err(w);
    int status = 0;
    while (::waitpid(w.pid, &status, 0) < 0 && errno == EINTR) {
    }
    WorkerFate fate = WorkerFate::kKilled;
    if (w.killed_by_us) {
      fate = w.kill_reason;
    } else if (WIFSIGNALED(status)) {
      const int sig = WTERMSIG(status);
      if (sig == SIGSEGV || sig == SIGBUS || sig == SIGILL || sig == SIGFPE) {
        fate = WorkerFate::kCrash;
      } else if (sig == SIGABRT) {
        fate = WorkerFate::kAbort;
      } else {
        fate = WorkerFate::kKilled;
      }
    } else if (WIFEXITED(status)) {
      fate = WEXITSTATUS(status) == 0 ? WorkerFate::kClean : WorkerFate::kExit;
    }
    trace_event(obs::EventKind::kWorkerExit, w.slot,
                static_cast<std::uint64_t>(static_cast<std::uint8_t>(fate)),
                static_cast<std::uint64_t>(status));
    if (fate != WorkerFate::kClean) ++result.worker_deaths;

    if (!shutting_down) {
      const std::string fate_str = fate_string(fate, status);
      bool head_struck = false;
      for (const Inflight& fl : w.inflight) {
        if (fl.begun && !head_struck) {
          // The task the worker was actually executing: one strike.
          head_struck = true;
          fates_of[fl.task].push_back(fate_str);
          const int next_attempt = fl.attempt + 1;
          attempt_of[fl.task] = next_attempt;
          if (next_attempt >= std::max(1, sopts.max_task_attempts)) {
            const fleet::TaskRef ref = plan.task(fl.task);
            QuarantineRecord q;
            q.task_index = fl.task;
            q.seed = fopts.seeds[ref.seed_index];
            q.scenario = scenarios[ref.scenario].id;
            q.attempts = next_attempt;
            q.fates = fates_of[fl.task];
            q.stderr_tail = w.err_tail;
            q.last_trace_events = w.last_events;
            q.last_trace_digest = w.last_digest;
            Pending p;
            p.kind = Pending::kQuarantined;
            p.quarantine = std::move(q);
            pending[fl.task] = std::move(p);
            trace_event(obs::EventKind::kTaskQuarantine, fl.task,
                        static_cast<std::uint64_t>(next_attempt));
          } else {
            retry.insert(fl.task);
            ++result.task_retries;
            trace_event(obs::EventKind::kTaskRetry, fl.task,
                        static_cast<std::uint64_t>(next_attempt),
                        static_cast<std::uint64_t>(static_cast<std::uint8_t>(fate)));
          }
        } else {
          // Queued but never begun (or behind the struck head): an
          // innocent victim — re-dispatch at the same attempt number so
          // chaos fates (and thus the quarantine set) stay deterministic.
          retry.insert(fl.task);
        }
      }
    }
    w.inflight.clear();
    close_worker_fds(w);
    w.alive = false;
    w.pid = -1;
  };

  const auto kill_worker = [&](Worker& w, WorkerFate reason) {
    if (!w.alive || w.killed_by_us) return;
    w.killed_by_us = true;
    w.kill_reason = reason;
    ::kill(w.pid, SIGKILL);
    switch (reason) {
      case WorkerFate::kHangKill: ++result.heartbeat_kills; break;
      case WorkerFate::kDeadlineKill: ++result.deadline_kills; break;
      case WorkerFate::kRssKill: ++result.rss_kills; break;
      default: break;
    }
  };

  // ---- Bring up the fleet and run the event loop.
  if (fold_next < task_count) {
    for (Worker& w : workers) {
      if (!spawn_worker(w)) break;
      dispatch_to(w);
    }
  }

  std::vector<struct pollfd> pfds;
  while (fr.error.empty() && !stopped && fold_next < task_count) {
    pfds.clear();
    for (const Worker& w : workers) {
      if (!w.alive) continue;
      pfds.push_back({w.res_rd, POLLIN, 0});
      pfds.push_back({w.err_rd, POLLIN, 0});
    }
    if (pfds.empty()) {
      fr.error = "supervise: no live workers and unfinished tasks remain";
      break;
    }
    const int rc = ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), 20);
    if (rc < 0 && errno != EINTR) {
      fr.error = "supervise: poll() failed: " + std::string(std::strerror(errno));
      break;
    }

    // Drain every worker — res before err, so a task's B-ack always lands
    // before its stderr and the per-task stderr tail stays aligned.
    for (Worker& w : workers) {
      if (!w.alive) continue;
      const bool open = drain_res(w);
      drain_err(w);
      if (!open) handle_death(w);
    }

    if (!fold_ready()) break;
    if (stopped || fold_next >= task_count) break;

    // Respawn and keep everyone fed.
    for (Worker& w : workers) {
      if (!w.alive) {
        const bool work_remains =
            !retry.empty() || next_task < task_count ||
            std::any_of(workers.begin(), workers.end(),
                        [](const Worker& o) { return !o.inflight.empty(); });
        if (work_remains && !spawn_worker(w)) break;
      }
      if (w.alive) dispatch_to(w);
    }
    if (!fr.error.empty()) break;

    // Watchdogs: heartbeat silence, per-task deadline, RSS budget.
    const Clock::time_point now = Clock::now();
    for (Worker& w : workers) {
      if (!w.alive || w.killed_by_us) continue;
      if (sopts.heartbeat_timeout_ms > 0 &&
          ms_between(w.last_beat, now) > sopts.heartbeat_timeout_ms) {
        trace_event(obs::EventKind::kHeartbeatMiss, w.slot,
                    static_cast<std::uint64_t>(ms_between(w.last_beat, now)));
        kill_worker(w, WorkerFate::kHangKill);
        continue;
      }
      if (sopts.task_deadline_ms > 0 && !w.inflight.empty() && w.inflight.front().begun &&
          ms_between(w.inflight.front().begin_time, now) > sopts.task_deadline_ms) {
        trace_event(obs::EventKind::kTaskDeadline, w.inflight.front().task, w.slot,
                    static_cast<std::uint64_t>(sopts.task_deadline_ms));
        kill_worker(w, WorkerFate::kDeadlineKill);
        continue;
      }
      if (sopts.worker_rss_limit_mb > 0) {
        const std::uint64_t rss = read_rss_mib(w.pid);
        if (rss > sopts.worker_rss_limit_mb) {
          trace_event(obs::EventKind::kWorkerOverBudget, w.slot, rss, sopts.worker_rss_limit_mb);
          kill_worker(w, WorkerFate::kRssKill);
        }
      }
    }
  }

  // ---- Shutdown: ask politely, then reap, then insist.
  shutting_down = true;
  for (Worker& w : workers) {
    if (!w.alive) continue;
    std::string quit;
    encode_quit(&quit);
    write_line(w.cmd_wr, quit);
  }
  const Clock::time_point grace_start = Clock::now();
  for (;;) {
    bool any_alive = false;
    for (Worker& w : workers) {
      if (!w.alive) continue;
      int status = 0;
      const pid_t got = ::waitpid(w.pid, &status, WNOHANG);
      if (got == w.pid) {
        close_worker_fds(w);
        w.alive = false;
        w.pid = -1;
        trace_event(obs::EventKind::kWorkerExit, w.slot,
                    static_cast<std::uint64_t>(
                        static_cast<std::uint8_t>(WorkerFate::kClean)),
                    static_cast<std::uint64_t>(status));
      } else {
        any_alive = true;
      }
    }
    if (!any_alive) break;
    if (ms_between(grace_start, Clock::now()) > 2000) {
      for (Worker& w : workers) {
        if (!w.alive) continue;
        ::kill(w.pid, SIGKILL);
        int status = 0;
        while (::waitpid(w.pid, &status, 0) < 0 && errno == EINTR) {
        }
        close_worker_fds(w);
        w.alive = false;
        w.pid = -1;
      }
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  {
    std::string error;
    if (!spool.close(&error) && fr.error.empty()) fr.error = "supervise: " + error;
  }
  if (qfd >= 0) {
    std::string error;
    if (!fleet::fsync_fd(qfd, &error) && fr.error.empty()) {
      fr.error = "supervise: quarantine log fsync: " + error;
    }
    ::close(qfd);
  }
  ::sigaction(SIGPIPE, &old_pipe, nullptr);
  return result;
}

SupervisedResult run_supervised(const exp::ExperimentGrid& grid, const fleet::FleetOptions& fopts,
                                const SuperviseOptions& sopts) {
  return run_supervised(grid.scenarios(), fopts, sopts);
}

}  // namespace vafs::supervise
