// Process-level supervision for fleet runs.
//
// run_supervised executes the same deterministic ShardPlan as run_fleet,
// but each session runs inside one of N forked worker subprocesses, so a
// crash, hang or OOM kill takes down one worker — not the run. The
// supervisor hands tasks to workers over a pipe protocol (wire.h), folds
// streamed results *strictly in canonical task order*, and keeps the
// fleet alive through arbitrary worker death:
//
//   crash    worker exits on SIGSEGV/SIGBUS/SIGILL/SIGFPE (or SIGABRT)
//            -> detected from the waitpid status, taxonomy recorded
//   hang     heartbeats stop (worker beat thread, heartbeat_interval_ms)
//            -> SIGKILL after heartbeat_timeout_ms of silence
//   stall    heartbeats continue but the in-flight task never finishes
//            -> SIGKILL after task_deadline_ms (when configured)
//   OOM      RLIMIT_AS makes allocations fail inside the worker;
//            worker_rss_limit_mb makes the supervisor SIGKILL over-budget
//            workers (the external-OOM-killer shape)
//
// The worker is respawned after every death and the in-flight task is
// retried, up to max_task_attempts total attempts; a task whose every
// attempt died is *quarantined*: recorded with full context (scenario,
// seed, per-attempt fate taxonomy, captured stderr, last obs checkpoint
// window) in quarantine.jsonl, and excluded explicitly from the digest
// chain, the aggregates and the spool — so the results over the surviving
// task set are bit-identical to a clean serial run over that same set.
// Workers transmit each session's 35 metric values as IEEE-754 bit
// patterns and the fold uses Aggregate::add_values, making the
// cross-process fold bitwise equal to the in-process one.
//
// Only the head of a dead worker's queue — the task it had actually
// begun (B-ack seen) — collects a strike; queued-but-unstarted tasks are
// re-dispatched at the same attempt number. Combined with HarnessChaos
// fates being a pure hash of (seed, task, attempt), the quarantine set is
// a deterministic function of the configuration, independent of worker
// count, scheduling and resume points.
//
// Checkpointing composes with PR 5: the same v2 manifest (plus the
// quarantine list and quarantine-log offset), written at the same shard
// cadence, resumable by a later supervised OR in-process run.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fleet/fleet_runner.h"
#include "obs/trace.h"
#include "supervise/chaos.h"

namespace vafs::supervise {

/// How a worker process left the fleet (exit-status + signal taxonomy;
/// supervisor-initiated kills are classified by *why* we killed).
enum class WorkerFate : std::uint8_t {
  kClean,        ///< exited 0 after Q
  kExit,         ///< exited nonzero on its own
  kCrash,        ///< SIGSEGV / SIGBUS / SIGILL / SIGFPE
  kAbort,        ///< SIGABRT
  kKilled,       ///< other fatal signal (external kill, kernel OOM killer)
  kHangKill,     ///< we killed it: heartbeats stopped
  kDeadlineKill, ///< we killed it: in-flight task exceeded task_deadline_ms
  kRssKill,      ///< we killed it: RSS over worker_rss_limit_mb
};

const char* worker_fate_name(WorkerFate fate);

struct SuperviseOptions {
  /// Worker subprocesses to keep alive.
  int workers = 2;
  /// Hard per-task wall-clock deadline enforced externally (SIGKILL +
  /// retry/quarantine), 0 = off. Independent of the cooperative
  /// FleetOptions::task_timeout_ms, which a wedged session never reaches.
  std::int64_t task_deadline_ms = 0;
  std::int64_t heartbeat_interval_ms = 250;
  std::int64_t heartbeat_timeout_ms = 5000;
  /// Total attempts per task before quarantine.
  int max_task_attempts = 3;
  /// RLIMIT_AS for each worker, MiB; 0 = unlimited. Allocation failure
  /// inside the worker surfaces as bad_alloc -> captured task failure or
  /// worker death, never as a machine-wide OOM.
  std::uint64_t worker_as_limit_mb = 0;
  /// Supervisor-side RSS budget per worker, MiB; 0 = off. Polled from
  /// /proc/<pid>/statm; an over-budget worker is SIGKILLed (kRssKill).
  std::uint64_t worker_rss_limit_mb = 0;

  /// Seeded deterministic fault injection inside workers (test mode).
  ChaosConfig chaos;
  /// Allocation ceiling for the chaos leak fate, MiB — the leaker kills
  /// itself (SIGKILL, mimicking the kernel OOM killer) at this cap even
  /// when no RLIMIT/RSS budget stops it first.
  std::uint64_t chaos_leak_cap_mb = 512;

  /// Quarantine log path; empty uses <checkpoint_dir>/quarantine.jsonl
  /// when checkpointing, else disables the file (records still returned).
  std::string quarantine_path;

  /// Optional tracer (not owned) for worker-lifecycle events on the
  /// harness track, stamped with wall milliseconds since run start.
  obs::Tracer* tracer = nullptr;
};

/// Full context of one quarantined task (also one quarantine.jsonl line).
struct QuarantineRecord {
  std::uint64_t task_index = 0;
  std::uint64_t seed = 0;
  std::string scenario;
  int attempts = 0;
  /// Per-attempt fate taxonomy strings, e.g. "crash:SIGSEGV", "exit:41",
  /// "hang:heartbeat-miss", "deadline:exceeded", "oom:rss-limit".
  std::vector<std::string> fates;
  /// Bounded stderr tail captured from the final attempt's worker.
  std::string stderr_tail;
  /// Last obs checkpoint window the final attempt reported (events
  /// recorded / streaming digest at the last 64-event tracer checkpoint).
  std::uint64_t last_trace_events = 0;
  std::uint64_t last_trace_digest = 0;
};

struct SupervisedResult {
  /// Aggregates, failures, digest chain, shard bookkeeping — the same
  /// shape run_fleet returns, folded over non-quarantined tasks only.
  fleet::FleetResult fleet;
  /// Quarantined tasks in canonical task order (this run's).
  std::vector<QuarantineRecord> quarantine;
  /// Quarantined tasks restored from a resumed manifest (already in
  /// fleet.quarantined; counted here for reporting).
  std::uint64_t quarantined_resumed = 0;

  // Supervision counters.
  std::uint64_t worker_spawns = 0;
  std::uint64_t worker_deaths = 0;   ///< non-clean exits
  std::uint64_t deadline_kills = 0;
  std::uint64_t heartbeat_kills = 0;
  std::uint64_t rss_kills = 0;
  std::uint64_t task_retries = 0;

  bool ok() const { return fleet.ok(); }
};

/// Runs the grid under supervision. FleetOptions supplies the grid shape,
/// sharding, checkpointing, spool and cooperative timeout exactly as for
/// run_fleet (jobs is ignored — SuperviseOptions::workers is the width).
SupervisedResult run_supervised(const std::vector<exp::ScenarioSpec>& scenarios,
                                const fleet::FleetOptions& fopts, const SuperviseOptions& sopts);
SupervisedResult run_supervised(const exp::ExperimentGrid& grid, const fleet::FleetOptions& fopts,
                                const SuperviseOptions& sopts);

}  // namespace vafs::supervise
