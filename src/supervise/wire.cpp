#include "supervise/wire.h"

#include <bit>
#include <vector>

#include "fleet/textio.h"

namespace vafs::supervise {

using fleet::append_hex64;
using fleet::hex_decode;
using fleet::hex_encode;
using fleet::parse_hex64;
using fleet::parse_u64;
using fleet::split_fields;

void encode_task(std::string* out, std::uint64_t task_index, int attempt) {
  *out += "T " + std::to_string(task_index) + ' ' + std::to_string(attempt) + '\n';
}

void encode_quit(std::string* out) { *out += "Q\n"; }

void encode_begin(std::string* out, std::uint64_t task_index) {
  *out += "B " + std::to_string(task_index) + '\n';
}

void encode_result(std::string* out, const WireResult& r) {
  *out += "R " + std::to_string(r.task_index) + (r.finished ? " 1 " : " 0 ");
  append_hex64(*out, r.digest);
  for (const double v : r.values) {
    *out += ' ';
    append_hex64(*out, std::bit_cast<std::uint64_t>(v));
  }
  *out += '\n';
}

void encode_failure(std::string* out, std::uint64_t task_index, std::string_view error) {
  if (error.size() > kMaxErrorBytes) error = error.substr(0, kMaxErrorBytes);
  *out += "F " + std::to_string(task_index) + ' ' + hex_encode(error) + '\n';
}

void encode_heartbeat(std::string* out, const WireHeartbeat& h) {
  *out += "H " + std::to_string(h.beat) + ' ' + std::to_string(h.trace_events) + ' ';
  append_hex64(*out, h.trace_digest);
  *out += '\n';
}

bool parse_task(std::string_view line, std::uint64_t* task_index, int* attempt) {
  std::vector<std::string> t;
  split_fields(line, &t);
  std::uint64_t a = 0;
  if (t.size() != 3 || t[0] != "T" || !parse_u64(t[1], task_index) || !parse_u64(t[2], &a) ||
      a > 1000000) {
    return false;
  }
  *attempt = static_cast<int>(a);
  return true;
}

bool is_quit(std::string_view line) { return line == "Q"; }

bool parse_begin(std::string_view line, std::uint64_t* task_index) {
  std::vector<std::string> t;
  split_fields(line, &t);
  return t.size() == 2 && t[0] == "B" && parse_u64(t[1], task_index);
}

bool parse_result(std::string_view line, WireResult* r) {
  std::vector<std::string> t;
  split_fields(line, &t);
  if (t.size() != 4 + exp::kMetricCount || t[0] != "R") return false;
  std::uint64_t finished = 0;
  if (!parse_u64(t[1], &r->task_index) || !parse_u64(t[2], &finished) || finished > 1 ||
      !parse_hex64(t[3], &r->digest)) {
    return false;
  }
  r->finished = finished == 1;
  for (std::size_t i = 0; i < exp::kMetricCount; ++i) {
    std::uint64_t bits = 0;
    if (!parse_hex64(t[4 + i], &bits)) return false;
    r->values[i] = std::bit_cast<double>(bits);
  }
  return true;
}

bool parse_failure(std::string_view line, WireFailure* f) {
  std::vector<std::string> t;
  split_fields(line, &t);
  return t.size() == 3 && t[0] == "F" && parse_u64(t[1], &f->task_index) &&
         hex_decode(t[2], &f->error);
}

bool parse_heartbeat(std::string_view line, WireHeartbeat* h) {
  std::vector<std::string> t;
  split_fields(line, &t);
  return t.size() == 4 && t[0] == "H" && parse_u64(t[1], &h->beat) &&
         parse_u64(t[2], &h->trace_events) && parse_hex64(t[3], &h->trace_digest);
}

}  // namespace vafs::supervise
