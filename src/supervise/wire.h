// Supervisor <-> worker pipe protocol.
//
// Line-oriented text, one message per line, every line shorter than
// PIPE_BUF (4096 B on Linux) so a single write() is atomic and messages
// from a dying worker are never interleaved or torn. Doubles travel as
// IEEE-754 hex bit patterns (fleet/textio.h), so a result folded by the
// supervisor is bit-identical to one folded in-process.
//
//   supervisor -> worker (cmd pipe)
//     T <task_index> <attempt>     run this task
//     Q                            drain and exit cleanly
//
//   worker -> supervisor (res pipe)
//     B <task_index>               begin-ack: the task is now in flight
//     R <task_index> <finished> <digest> <v0> ... <v34>
//                                  result: per-metric value vector
//     F <task_index> <hex-error>   captured task failure (session threw)
//     H <beat> <events> <digest>   heartbeat (from the worker's beat
//                                  thread; events/digest = last obs
//                                  checkpoint window of the in-flight task)
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "exp/aggregate.h"

namespace vafs::supervise {

struct WireResult {
  std::uint64_t task_index = 0;
  bool finished = false;
  std::uint64_t digest = 0;
  double values[exp::kMetricCount] = {};
};

struct WireFailure {
  std::uint64_t task_index = 0;
  std::string error;
};

struct WireHeartbeat {
  std::uint64_t beat = 0;
  std::uint64_t trace_events = 0;
  std::uint64_t trace_digest = 0;
};

// Encoders append one complete line (with '\n') to `out`.
void encode_task(std::string* out, std::uint64_t task_index, int attempt);
void encode_quit(std::string* out);
void encode_begin(std::string* out, std::uint64_t task_index);
void encode_result(std::string* out, const WireResult& r);
void encode_failure(std::string* out, std::uint64_t task_index, std::string_view error);
void encode_heartbeat(std::string* out, const WireHeartbeat& h);

// Parsers take one line without its '\n'; false = malformed.
bool parse_task(std::string_view line, std::uint64_t* task_index, int* attempt);
bool is_quit(std::string_view line);
bool parse_begin(std::string_view line, std::uint64_t* task_index);
bool parse_result(std::string_view line, WireResult* r);
bool parse_failure(std::string_view line, WireFailure* f);
bool parse_heartbeat(std::string_view line, WireHeartbeat* h);

/// Captured failure messages are clamped to keep the F line a single
/// atomic write: 2 hex chars per byte + tag/index overhead < PIPE_BUF.
inline constexpr std::size_t kMaxErrorBytes = 1500;

}  // namespace vafs::supervise
