// Minimal expected-style result type for the sysfs emulation layer.
//
// The emulated filesystem reports errors the way the kernel would (ENOENT,
// EACCES, EINVAL, ...) so that governor code written against it handles the
// same failure modes a real deployment sees.
#pragma once

#include <cassert>
#include <string_view>
#include <utility>

namespace vafs::sysfs {

enum class Errno {
  kOk = 0,
  kNoEnt,        // path does not exist
  kIsDir,        // read/write on a directory
  kNotDir,       // path component is not a directory
  kAccess,       // permission denied (read-only attribute written, etc.)
  kInval,        // value rejected by the attribute's store hook
  kExist,        // node already exists
};

/// Human-readable name ("ENOENT", ...).
std::string_view errno_name(Errno e);

/// Value-or-error. `value()` asserts on error; check `ok()` first.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)), err_(Errno::kOk) {}  // NOLINT(google-explicit-constructor)
  Result(Errno err) : err_(err) { assert(err != Errno::kOk); }     // NOLINT(google-explicit-constructor)

  bool ok() const { return err_ == Errno::kOk; }
  explicit operator bool() const { return ok(); }
  Errno error() const { return err_; }

  const T& value() const& {
    assert(ok());
    return value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(value_);
  }
  T value_or(T fallback) const { return ok() ? value_ : std::move(fallback); }

 private:
  T value_{};
  Errno err_;
};

/// Error-or-success for operations with no payload.
class Status {
 public:
  Status() : err_(Errno::kOk) {}
  Status(Errno err) : err_(err) {}  // NOLINT(google-explicit-constructor)

  bool ok() const { return err_ == Errno::kOk; }
  explicit operator bool() const { return ok(); }
  Errno error() const { return err_; }

 private:
  Errno err_;
};

}  // namespace vafs::sysfs
