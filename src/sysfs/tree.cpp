#include "sysfs/tree.h"

#include <algorithm>
#include <cassert>

namespace vafs::sysfs {

std::string_view errno_name(Errno e) {
  switch (e) {
    case Errno::kOk: return "OK";
    case Errno::kNoEnt: return "ENOENT";
    case Errno::kIsDir: return "EISDIR";
    case Errno::kNotDir: return "ENOTDIR";
    case Errno::kAccess: return "EACCES";
    case Errno::kInval: return "EINVAL";
    case Errno::kExist: return "EEXIST";
  }
  return "E?";
}

Tree::Tree() : root_(std::make_unique<Node>()) { root_->is_dir = true; }

std::vector<std::string_view> Tree::split(std::string_view path) {
  std::vector<std::string_view> parts;
  std::size_t start = 0;
  while (start < path.size()) {
    const std::size_t slash = path.find('/', start);
    const std::size_t end = (slash == std::string_view::npos) ? path.size() : slash;
    if (end > start) parts.push_back(path.substr(start, end - start));
    start = end + 1;
  }
  return parts;
}

const Tree::Node* Tree::find(std::string_view path) const {
  const Node* node = root_.get();
  for (const auto part : split(path)) {
    if (!node->is_dir) return nullptr;
    const auto it = node->children.find(part);
    if (it == node->children.end()) return nullptr;
    node = it->second.get();
  }
  return node;
}

Tree::Node* Tree::find(std::string_view path) {
  return const_cast<Node*>(std::as_const(*this).find(path));
}

Status Tree::mkdir(std::string_view path) {
  Node* node = root_.get();
  for (const auto part : split(path)) {
    if (!node->is_dir) return Errno::kNotDir;
    auto it = node->children.find(part);
    if (it == node->children.end()) {
      auto child = std::make_unique<Node>();
      child->is_dir = true;
      it = node->children.emplace(std::string(part), std::move(child)).first;
    }
    node = it->second.get();
  }
  if (!node->is_dir) return Errno::kNotDir;
  return {};
}

Status Tree::add_attr(std::string_view path, ShowFn show, StoreFn store) {
  const auto parts = split(path);
  if (parts.empty()) return Errno::kInval;

  Node* dir = root_.get();
  for (std::size_t i = 0; i + 1 < parts.size(); ++i) {
    if (!dir->is_dir) return Errno::kNotDir;
    const auto it = dir->children.find(parts[i]);
    if (it == dir->children.end()) return Errno::kNoEnt;
    dir = it->second.get();
  }
  if (!dir->is_dir) return Errno::kNotDir;
  if (dir->children.contains(parts.back())) return Errno::kExist;

  auto attr = std::make_unique<Node>();
  attr->is_dir = false;
  attr->show = std::move(show);
  attr->store = std::move(store);
  dir->children.emplace(std::string(parts.back()), std::move(attr));
  return {};
}

Status Tree::remove(std::string_view path) {
  const auto parts = split(path);
  if (parts.empty()) return Errno::kInval;  // refuse to remove the root

  Node* dir = root_.get();
  for (std::size_t i = 0; i + 1 < parts.size(); ++i) {
    if (!dir->is_dir) return Errno::kNotDir;
    const auto it = dir->children.find(parts[i]);
    if (it == dir->children.end()) return Errno::kNoEnt;
    dir = it->second.get();
  }
  const auto it = dir->children.find(parts.back());
  if (it == dir->children.end()) return Errno::kNoEnt;
  dir->children.erase(it);
  return {};
}

Result<std::string> Tree::read(std::string_view path) const {
  const Node* node = find(path);
  if (node == nullptr) return Errno::kNoEnt;
  if (node->is_dir) return Errno::kIsDir;
  if (!node->show) return Errno::kAccess;
  std::string out = node->show();
  if (out.empty() || out.back() != '\n') out += '\n';
  return out;
}

Status Tree::write(std::string_view path, std::string_view value) {
  Node* node = find(path);
  if (node == nullptr) return Errno::kNoEnt;
  if (node->is_dir) return Errno::kIsDir;
  if (!node->store) return Errno::kAccess;
  // Strip trailing whitespace the way `echo value > attr` delivers it.
  while (!value.empty() && (value.back() == '\n' || value.back() == ' ' || value.back() == '\t')) {
    value.remove_suffix(1);
  }
  if (write_interceptor_) {
    if (const auto injected = write_interceptor_(path, value)) return *injected;
  }
  return node->store(value);
}

Result<std::vector<std::string>> Tree::list(std::string_view path) const {
  const Node* node = find(path);
  if (node == nullptr) return Errno::kNoEnt;
  if (!node->is_dir) return Errno::kNotDir;
  std::vector<std::string> names;
  names.reserve(node->children.size());
  for (const auto& [name, child] : node->children) names.push_back(name);
  return names;  // std::map iteration is already sorted
}

bool Tree::exists(std::string_view path) const { return find(path) != nullptr; }

bool Tree::is_dir(std::string_view path) const {
  const Node* node = find(path);
  return node != nullptr && node->is_dir;
}

}  // namespace vafs::sysfs
