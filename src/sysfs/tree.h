// In-memory emulation of a sysfs attribute tree.
//
// Kernel subsystems (here: cpufreq) publish directories of text attributes;
// userspace policies read and write them as strings. This module reproduces
// that contract: string-level I/O, show/store hooks per attribute, and
// kernel-style error codes. The VAFS userspace governor talks to the CPU
// model exclusively through this layer, exercising the exact code path a
// real deployment would use (echo <khz> > scaling_setspeed).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sysfs/result.h"

namespace vafs::sysfs {

/// Attribute show hook: renders the current value (no trailing newline
/// required; read() appends one, as the kernel convention does).
using ShowFn = std::function<std::string()>;

/// Attribute store hook: parses and applies a write. Returns kOk or kInval.
using StoreFn = std::function<Status(std::string_view)>;

/// A directory tree of text attributes addressed by '/'-separated paths
/// relative to the tree root (e.g. "devices/system/cpu/cpufreq/policy0").
class Tree {
 public:
  Tree();
  Tree(const Tree&) = delete;
  Tree& operator=(const Tree&) = delete;

  /// Creates a directory (and any missing parents). Idempotent.
  Status mkdir(std::string_view path);

  /// Registers an attribute file. A null `store` makes it read-only
  /// (writes fail with EACCES); a null `show` makes it write-only.
  /// Fails with EEXIST if the path already exists, ENOTDIR/ENOENT if the
  /// parent is missing or not a directory.
  Status add_attr(std::string_view path, ShowFn show, StoreFn store);

  /// Removes an attribute or (recursively) a directory.
  Status remove(std::string_view path);

  /// Reads an attribute. The result carries a trailing '\n' like the
  /// kernel's sysfs show() output.
  Result<std::string> read(std::string_view path) const;

  /// Writes an attribute. Trailing whitespace/newlines in `value` are
  /// stripped before the store hook runs (mirroring `echo x > attr`).
  Status write(std::string_view path, std::string_view value);

  /// Fault hook consulted on every write to an existing, writable
  /// attribute (after the existence/permission checks, before the store
  /// hook): returning an Errno fails the write with it, nullopt lets the
  /// write proceed. Used by the fault injector to make scaling_setspeed
  /// writes fail with EACCES/EINVAL on schedule.
  using WriteInterceptor =
      std::function<std::optional<Errno>(std::string_view path, std::string_view value)>;
  void set_write_interceptor(WriteInterceptor interceptor) {
    write_interceptor_ = std::move(interceptor);
  }

  /// Lists entry names in a directory, sorted.
  Result<std::vector<std::string>> list(std::string_view path) const;

  bool exists(std::string_view path) const;
  bool is_dir(std::string_view path) const;

 private:
  struct Node {
    bool is_dir = false;
    ShowFn show;
    StoreFn store;
    std::map<std::string, std::unique_ptr<Node>, std::less<>> children;
  };

  const Node* find(std::string_view path) const;
  Node* find(std::string_view path);
  static std::vector<std::string_view> split(std::string_view path);

  std::unique_ptr<Node> root_;
  WriteInterceptor write_interceptor_;
};

}  // namespace vafs::sysfs
