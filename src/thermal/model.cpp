#include "thermal/model.h"

#include <cmath>

namespace vafs::thermal {

ThermalModel::ThermalModel(sim::Simulator& simulator, cpu::CpuModel& cpu_model,
                           ThermalParams params)
    : sim_(simulator),
      cpu_(cpu_model),
      params_(params),
      temp_c_(params.ambient_c),
      peak_c_(params.ambient_c),
      last_energy_mj_(cpu_model.energy_mj()),
      last_sample_(simulator.now()) {
  timer_ = sim_.every(params_.sample_period, [this] { sample(); });
}

ThermalModel::~ThermalModel() { timer_.cancel(); }

void ThermalModel::sample() {
  const sim::SimTime now = sim_.now();
  const double dt = (now - last_sample_).as_seconds_f();
  if (dt <= 0) return;

  // Mean power over the interval from the exact energy counter.
  const double energy_mj = cpu_.energy_mj();
  const double power_w = (energy_mj - last_energy_mj_) / 1000.0 / dt;
  last_energy_mj_ = energy_mj;
  last_sample_ = now;

  // Exact solution of the linear ODE over the interval (P constant):
  // T -> T_inf + (T - T_inf)·exp(-dt/RC), with T_inf = T_amb + P·R.
  const double rc = params_.resistance_k_per_w * params_.capacitance_j_per_k;
  const double t_inf = params_.ambient_c + power_w * params_.resistance_k_per_w;
  temp_c_ = t_inf + (temp_c_ - t_inf) * std::exp(-dt / rc);

  peak_c_ = std::max(peak_c_, temp_c_);
  batch_.add(temp_c_, stats_);
  for (const auto& fn : listeners_) fn(temp_c_);
}

void ThermalModel::add_listener(std::function<void(double)> fn) {
  listeners_.push_back(std::move(fn));
}

}  // namespace vafs::thermal
