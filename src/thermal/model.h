// Lumped-RC thermal model of the SoC.
//
// dT/dt = P / C − (T − T_ambient) / (R·C)
//
// with P the CPU power. Sampled periodically from the CPU model's energy
// counter (exact over each interval), giving the classic first-order
// exponential response: a phone-class R·C of ~100 s means sustained
// high-OPP decoding heats the SoC over a minute or two — the timescale on
// which thermal throttling bites in real sustained-video workloads.
#pragma once

#include <functional>

#include "cpu/cpu_model.h"
#include "simcore/simulator.h"
#include "simcore/stats.h"

namespace vafs::thermal {

struct ThermalParams {
  double ambient_c = 25.0;
  /// Thermal resistance junction→ambient, K/W. 14 K/W puts a sustained
  /// 2 W big-core load ~28 K over ambient — phone-chassis territory.
  double resistance_k_per_w = 14.0;
  /// Thermal capacitance, J/K. R·C ≈ 112 s time constant.
  double capacitance_j_per_k = 8.0;
  /// Sampling period of the integrator.
  sim::SimTime sample_period = sim::SimTime::millis(250);
};

class ThermalModel {
 public:
  /// Starts sampling immediately; `cpu` must outlive the model.
  ThermalModel(sim::Simulator& simulator, cpu::CpuModel& cpu_model, ThermalParams params = {});

  ThermalModel(const ThermalModel&) = delete;
  ThermalModel& operator=(const ThermalModel&) = delete;
  ~ThermalModel();

  /// Current junction temperature, °C (exact at sample instants, held
  /// between them).
  double temperature_c() const { return temp_c_; }
  double peak_temperature_c() const { return peak_c_; }
  const sim::OnlineStats& temperature_stats() const {
    batch_.flush(stats_);  // fold staged samples before anyone reads
    return stats_;
  }

  /// Registers a callback fired after every sample with the new
  /// temperature — the hook the throttle governor uses.
  void add_listener(std::function<void(double)> fn);

  const ThermalParams& params() const { return params_; }

 private:
  void sample();

  sim::Simulator& sim_;
  cpu::CpuModel& cpu_;
  ThermalParams params_;

  double temp_c_;
  double peak_c_;
  double last_energy_mj_ = 0.0;
  sim::SimTime last_sample_;
  sim::EventHandle timer_;
  // Samples stage in the batch and fold into stats_ in blocks; mutable so
  // the const accessor can flush. Bit-identical to per-sample add().
  mutable sim::OnlineStats stats_;
  mutable sim::StatsBatch<64> batch_;
  std::vector<std::function<void(double)>> listeners_;
};

}  // namespace vafs::thermal
