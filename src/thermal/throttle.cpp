#include "thermal/throttle.h"

#include <algorithm>

#include "obs/trace.h"

namespace vafs::thermal {

ThermalThrottle::ThermalThrottle(ThermalModel& model, cpu::CpufreqPolicy& policy,
                                 ThrottleParams params)
    : model_(model), policy_(policy), params_(params), sim_(policy.simulator()) {
  model_.add_listener([this](double temp_c) { on_temperature(temp_c); });
}

void ThermalThrottle::on_temperature(double temp_c) {
  unsigned desired;
  if (temp_c < params_.trip_c - params_.hysteresis_c) {
    desired = 0;
  } else if (temp_c < params_.trip_c) {
    desired = step_;  // hysteresis band: hold
  } else {
    desired = 1 + static_cast<unsigned>((temp_c - params_.trip_c) / params_.hysteresis_c);
    desired = std::min(desired, params_.max_steps);
  }
  // Release gradually: at most one step per sample, like the kernel's
  // step_wise policy.
  if (desired < step_) desired = step_ - 1;

  if (desired != step_) apply_step(desired);
}

void ThermalThrottle::apply_step(unsigned step) {
  if (step > 0 && step_ == 0) {
    throttle_started_ = sim_.now();
    in_throttle_ = true;
    ++events_;
  } else if (step == 0 && step_ > 0) {
    throttled_accum_ += sim_.now() - throttle_started_;
    in_throttle_ = false;
  }
  step_ = step;

  const auto& opps = policy_.opps();
  const std::size_t top = opps.size() - 1;
  const std::size_t capped = top >= step ? top - step : 0;
  if (obs::Tracer* tracer = policy_.tracer()) {
    tracer->record(sim_.now(), obs::EventKind::kThrottleStep, step, opps.at(capped).freq_khz);
  }
  policy_.set_max(opps.at(capped).freq_khz);
}

sim::SimTime ThermalThrottle::throttled_time() const {
  sim::SimTime total = throttled_accum_;
  if (in_throttle_) total += sim_.now() - throttle_started_;
  return total;
}

}  // namespace vafs::thermal
