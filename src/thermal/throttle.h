// Step-wise thermal throttling, the kernel thermal-zone style:
//
// Above trip_c, every further `hysteresis_c` of temperature drops the
// policy's scaling_max_freq by one OPP (cooling-device states); as the SoC
// cools back below the trip (minus hysteresis) the cap is released one
// step at a time. Workload-agnostic governors that burst to the top OPP
// heat the SoC into this regime during sustained video; VAFS's lower
// steady frequency stays out of it — experiment F10.
#pragma once

#include <cstdint>

#include "cpu/cpufreq_policy.h"
#include "simcore/simulator.h"
#include "thermal/model.h"

namespace vafs::thermal {

struct ThrottleParams {
  double trip_c = 45.0;
  /// Additional degrees per extra throttle step, and the release band.
  double hysteresis_c = 2.0;
  /// Maximum number of OPPs the cap may drop below hardware max.
  unsigned max_steps = 5;
};

class ThermalThrottle {
 public:
  /// Subscribes to `model`; adjusts `policy`'s max limit. Both must
  /// outlive the throttle.
  ThermalThrottle(ThermalModel& model, cpu::CpufreqPolicy& policy, ThrottleParams params = {});

  unsigned current_step() const { return step_; }
  bool throttling() const { return step_ > 0; }

  /// Cumulative time spent with any cap applied.
  sim::SimTime throttled_time() const;
  std::uint64_t throttle_events() const { return events_; }

 private:
  void on_temperature(double temp_c);
  void apply_step(unsigned step);

  ThermalModel& model_;
  cpu::CpufreqPolicy& policy_;
  ThrottleParams params_;

  unsigned step_ = 0;
  std::uint64_t events_ = 0;
  sim::SimTime throttled_accum_;
  sim::SimTime throttle_started_;
  bool in_throttle_ = false;
  sim::Simulator& sim_;
};

}  // namespace vafs::thermal
