#include "trace/bandwidth_file.h"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace vafs::trace {

bool load_bandwidth_trace(std::istream& in, std::vector<net::TraceBandwidth::Step>* steps,
                          std::string* error) {
  steps->clear();
  std::string line;
  int line_no = 0;
  auto fail = [&](const std::string& what) {
    if (error != nullptr) *error = "line " + std::to_string(line_no) + ": " + what;
    return false;
  };

  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream fields(line);
    double t_s = 0.0, mbps = 0.0;
    if (!(fields >> t_s)) continue;  // blank or comment-only line
    if (!(fields >> mbps)) return fail("expected 'TIME_S MBPS'");
    std::string extra;
    if (fields >> extra) return fail("trailing garbage '" + extra + "'");
    if (mbps < 0) return fail("negative bandwidth");
    if (t_s < 0) return fail("negative time");

    const sim::SimTime at = sim::SimTime::seconds_f(t_s);
    if (steps->empty()) {
      if (!at.is_zero()) return fail("trace must start at time 0");
    } else if (at <= steps->back().at) {
      return fail("times must be strictly increasing");
    }
    steps->push_back({at, mbps});
  }
  if (steps->empty()) {
    line_no = 0;
    return fail("empty trace");
  }
  return true;
}

bool load_bandwidth_trace_file(const std::string& path,
                               std::vector<net::TraceBandwidth::Step>* steps,
                               std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  if (!load_bandwidth_trace(in, steps, error)) {
    if (error != nullptr) *error = path + ": " + *error;
    return false;
  }
  return true;
}

void save_bandwidth_trace(std::ostream& out,
                          const std::vector<net::TraceBandwidth::Step>& steps) {
  out << "# bandwidth trace: TIME_SECONDS MBPS\n";
  char buf[64];
  for (const auto& step : steps) {
    std::snprintf(buf, sizeof(buf), "%.6f %.4f\n", step.at.as_seconds_f(), step.mbps);
    out << buf;
  }
}

bool save_bandwidth_trace_file(const std::string& path,
                               const std::vector<net::TraceBandwidth::Step>& steps,
                               std::string* error) {
  std::ofstream out(path);
  if (!out) {
    if (error != nullptr) *error = "cannot open " + path + " for writing";
    return false;
  }
  save_bandwidth_trace(out, steps);
  return true;
}

std::vector<net::TraceBandwidth::Step> generate_markov_trace(
    const net::MarkovBandwidth::Params& params, sim::Rng rng, sim::SimTime duration) {
  net::MarkovBandwidth process(params, rng);
  std::vector<net::TraceBandwidth::Step> steps;
  sim::SimTime t = sim::SimTime::zero();
  while (t < duration) {
    steps.push_back({t, process.current_mbps(t)});
    t = process.next_change(t);
  }
  return steps;
}

}  // namespace vafs::trace
