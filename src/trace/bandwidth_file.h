// Bandwidth trace files: load/save the step-function traces that
// net::TraceBandwidth replays, so experiments can run against recorded
// network conditions instead of synthetic processes.
//
// Format: one "TIME_SECONDS MBPS" pair per line, '#' comments and blank
// lines ignored, times strictly increasing and starting at 0.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "net/bandwidth.h"
#include "simcore/rng.h"

namespace vafs::trace {

/// Parses a trace from a stream. On failure returns false and, when
/// `error` is non-null, a line-numbered message.
bool load_bandwidth_trace(std::istream& in, std::vector<net::TraceBandwidth::Step>* steps,
                          std::string* error = nullptr);

/// File-path convenience wrapper.
bool load_bandwidth_trace_file(const std::string& path,
                               std::vector<net::TraceBandwidth::Step>* steps,
                               std::string* error = nullptr);

/// Writes a trace in the same format (with a header comment).
void save_bandwidth_trace(std::ostream& out,
                          const std::vector<net::TraceBandwidth::Step>& steps);

bool save_bandwidth_trace_file(const std::string& path,
                               const std::vector<net::TraceBandwidth::Step>& steps,
                               std::string* error = nullptr);

/// Samples a Markov bandwidth process into a step trace of the given
/// duration — the generator used to ship reproducible "recorded" traces.
std::vector<net::TraceBandwidth::Step> generate_markov_trace(
    const net::MarkovBandwidth::Params& params, sim::Rng rng, sim::SimTime duration);

}  // namespace vafs::trace
