#include "trace/csv.h"

#include <cassert>
#include <cstdio>

namespace vafs::trace {

CsvWriter::CsvWriter(std::ostream& out, std::vector<std::string> columns)
    : out_(out), columns_(columns.size()) {
  assert(!columns.empty());
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (i != 0) out_ << ',';
    write_field(columns[i]);
  }
  out_ << '\n';
}

CsvWriter::~CsvWriter() { end_row(); }

CsvWriter& CsvWriter::row() {
  end_row();
  row_open_ = true;
  in_row_ = 0;
  return *this;
}

void CsvWriter::end_row() {
  if (!row_open_) return;
  assert(in_row_ == columns_ && "row has wrong number of cells");
  out_ << '\n';
  row_open_ = false;
}

void CsvWriter::write_field(const std::string& value) {
  const bool needs_quotes = value.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quotes) {
    out_ << value;
    return;
  }
  out_ << '"';
  for (const char c : value) {
    if (c == '"') out_ << '"';
    out_ << c;
  }
  out_ << '"';
}

CsvWriter& CsvWriter::cell(const std::string& value) {
  assert(row_open_ && in_row_ < columns_);
  if (in_row_ != 0) out_ << ',';
  write_field(value);
  ++in_row_;
  return *this;
}

CsvWriter& CsvWriter::cell(double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return cell(std::string(buf));
}

CsvWriter& CsvWriter::cell(std::int64_t value) { return cell(std::to_string(value)); }
CsvWriter& CsvWriter::cell(std::uint64_t value) { return cell(std::to_string(value)); }

}  // namespace vafs::trace
