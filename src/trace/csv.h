// Minimal CSV emission for benchmark output and timeline dumps.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace vafs::trace {

/// Streams rows to an ostream; quotes fields only when needed.
class CsvWriter {
 public:
  /// Writes the header row immediately.
  CsvWriter(std::ostream& out, std::vector<std::string> columns);

  /// Starts a new row; `cell` appends fields. Rows shorter/longer than the
  /// header are caught by assert.
  CsvWriter& row();
  CsvWriter& cell(const std::string& value);
  CsvWriter& cell(double value);
  CsvWriter& cell(std::int64_t value);
  CsvWriter& cell(std::uint64_t value);

  /// Finishes the current row (also called implicitly by row()/dtor).
  void end_row();

  ~CsvWriter();

 private:
  void write_field(const std::string& value);

  std::ostream& out_;
  std::size_t columns_;
  std::size_t in_row_ = 0;
  bool row_open_ = false;
};

}  // namespace vafs::trace
