#include "trace/recorder.h"

namespace vafs::trace {

void TimelineRecorder::attach(core::SessionLive& live) {
  live_ = live;
  last_cpu_mj_ = live_.cpu->energy_mj();
  last_busy_ = live_.cpu->total_busy_time();
  live_.sim->every(period_, [this] { sample(); });
}

void TimelineRecorder::sample() {
  TimelineSample s;
  s.at = live_.sim->now();
  s.freq_khz = live_.cpu->cur_freq_khz();
  s.buffer_seconds = live_.player->buffer_level().as_seconds_f();

  const double cpu_mj = live_.cpu->energy_mj();
  const sim::SimTime busy = live_.cpu->total_busy_time();
  const double period_s = period_.as_seconds_f();
  s.cpu_power_mw = (cpu_mj - last_cpu_mj_) / period_s;
  s.cpu_busy_fraction = (busy - last_busy_).as_seconds_f() / period_s;
  last_cpu_mj_ = cpu_mj;
  last_busy_ = busy;

  s.radio_state = static_cast<int>(live_.radio->state());
  s.player_state = static_cast<int>(live_.player->state());
  samples_.push_back(s);
}

}  // namespace vafs::trace
