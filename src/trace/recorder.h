// Timeline recording: samples the live session at a fixed period so the F2
// bench (and any example) can dump frequency / power / buffer traces.
#pragma once

#include <vector>

#include "core/session.h"
#include "simcore/time.h"

namespace vafs::trace {

struct TimelineSample {
  sim::SimTime at;
  std::uint32_t freq_khz = 0;
  double buffer_seconds = 0.0;
  double cpu_busy_fraction = 0.0;  // over the sample period
  double cpu_power_mw = 0.0;       // mean over the sample period
  int radio_state = 0;             // net::RadioState as int
  int player_state = 0;            // stream::PlayerState as int
};

/// Attach inside SessionHooks::on_ready; samples until the simulation
/// ends. The recorder must outlive the session run.
class TimelineRecorder {
 public:
  explicit TimelineRecorder(sim::SimTime period = sim::SimTime::millis(100))
      : period_(period) {}

  /// Arms the periodic sampler on the live session.
  void attach(core::SessionLive& live);

  const std::vector<TimelineSample>& samples() const { return samples_; }

 private:
  void sample();

  sim::SimTime period_;
  core::SessionLive live_;
  std::vector<TimelineSample> samples_;
  double last_cpu_mj_ = 0.0;
  sim::SimTime last_busy_;
};

}  // namespace vafs::trace
