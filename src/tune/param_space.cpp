#include "tune/param_space.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "exp/json.h"
#include "simcore/rng.h"

namespace vafs::tune {
namespace {

constexpr std::uint64_t kFnvOffset = 0xCBF29CE484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001B3ULL;

std::uint64_t fnv_bytes(std::uint64_t h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t fnv_double(std::uint64_t h, double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return fnv_bytes(h, &bits, sizeof(bits));
}

std::string integer_text(double v) { return std::to_string(std::llround(v)); }

/// Replaces (or appends) one sysfs tunable in cfg.governor_tunables so
/// repeated applications of a candidate stay idempotent.
void set_tunable(core::SessionConfig& cfg, const std::string& rel_path, std::string value) {
  for (auto& [path, val] : cfg.governor_tunables) {
    if (path == rel_path) {
      val = std::move(value);
      return;
    }
  }
  cfg.governor_tunables.emplace_back(rel_path, std::move(value));
}

struct Knob {
  const char* name;
  void (*apply)(core::SessionConfig& cfg, double v);
};

/// The tunable surface. VAFS knobs write VafsConfig directly; sampling
/// governor knobs go through SessionConfig::governor_tunables so they are
/// applied via the real sysfs store hooks (validation included).
const Knob kKnobs[] = {
    {"safety_margin", [](core::SessionConfig& c, double v) { c.vafs.safety_margin = v; }},
    {"startup_margin", [](core::SessionConfig& c, double v) { c.vafs.startup_margin = v; }},
    {"predictor_window",
     [](core::SessionConfig& c, double v) {
       c.vafs.predictor.window = static_cast<std::size_t>(std::llround(v));
     }},
    {"ewma_alpha", [](core::SessionConfig& c, double v) { c.vafs.predictor.ewma_alpha = v; }},
    {"quantile", [](core::SessionConfig& c, double v) { c.vafs.predictor.quantile = v; }},
    {"boost_ms",
     [](core::SessionConfig& c, double v) {
       c.vafs.boost_duration = sim::SimTime::millis(std::llround(v));
     }},
    {"low_ahead_frames",
     [](core::SessionConfig& c, double v) {
       c.vafs.low_ahead_frames = static_cast<std::uint64_t>(std::llround(v));
     }},
    {"min_observations",
     [](core::SessionConfig& c, double v) {
       c.vafs.min_observations = static_cast<std::size_t>(std::llround(v));
     }},
    {"cold_start_fraction",
     [](core::SessionConfig& c, double v) { c.vafs.cold_start_fraction = v; }},
    {"watchdog_miss_threshold",
     [](core::SessionConfig& c, double v) {
       c.vafs.watchdog.miss_threshold = static_cast<std::uint32_t>(std::llround(v));
     }},
    {"watchdog_write_error_threshold",
     [](core::SessionConfig& c, double v) {
       c.vafs.watchdog.write_error_threshold = static_cast<std::uint32_t>(std::llround(v));
     }},
    {"watchdog_hysteresis_s",
     [](core::SessionConfig& c, double v) {
       c.vafs.watchdog.hysteresis = sim::SimTime::seconds_f(v);
     }},
    {"ondemand.sampling_rate_us",
     [](core::SessionConfig& c, double v) {
       set_tunable(c, "ondemand/sampling_rate", integer_text(v));
     }},
    {"ondemand.up_threshold",
     [](core::SessionConfig& c, double v) {
       set_tunable(c, "ondemand/up_threshold", integer_text(v));
     }},
    {"ondemand.sampling_down_factor",
     [](core::SessionConfig& c, double v) {
       set_tunable(c, "ondemand/sampling_down_factor", integer_text(v));
     }},
    {"ondemand.powersave_bias",
     [](core::SessionConfig& c, double v) {
       set_tunable(c, "ondemand/powersave_bias", integer_text(v));
     }},
    {"conservative.up_threshold",
     [](core::SessionConfig& c, double v) {
       set_tunable(c, "conservative/up_threshold", integer_text(v));
     }},
    {"conservative.down_threshold",
     [](core::SessionConfig& c, double v) {
       set_tunable(c, "conservative/down_threshold", integer_text(v));
     }},
    {"conservative.freq_step_pct",
     [](core::SessionConfig& c, double v) {
       set_tunable(c, "conservative/freq_step", integer_text(v));
     }},
};

const Knob* find_knob(const std::string& name) {
  for (const Knob& k : kKnobs) {
    if (name == k.name) return &k;
  }
  return nullptr;
}

}  // namespace

std::uint32_t ParamDef::count() const {
  if (lo == hi) return 1;
  // step > 0 was validated at dim(); the small epsilon keeps an exactly
  // representable hi (lo + k*step) on the grid despite division rounding.
  const double span = (hi - lo) / step;
  const auto n = static_cast<std::uint32_t>(span * (1.0 + 1e-12));
  return n + 1;
}

double ParamDef::value(std::uint32_t i) const { return lo + static_cast<double>(i) * step; }

ParamSpace& ParamSpace::dim(const std::string& name, double lo, double hi, double step) {
  const auto reject = [&](const std::string& why) {
    throw std::invalid_argument("ParamSpace: dimension '" + name + "': " + why);
  };
  if (find_knob(name) == nullptr) {
    throw std::invalid_argument("ParamSpace: unknown knob '" + name + "'");
  }
  for (const ParamDef& d : defs_) {
    if (d.name == name) reject("duplicate dimension");
  }
  if (!std::isfinite(lo) || !std::isfinite(hi) || !std::isfinite(step)) {
    reject("non-finite bounds/step");
  }
  if (lo > hi) reject("inverted range (lo > hi)");
  if (lo < hi && step <= 0.0) reject("step must be > 0 on a non-degenerate range");
  ParamDef def{name, lo, hi, lo == hi ? 0.0 : step};
  if (lo < hi) {
    // Reject absurdly fine grids before count() would overflow: the
    // span/step ratio is checked in floating point, so a subnormal step
    // cannot push the index range past kMaxPointsPerDim.
    const double span = (hi - lo) / step;
    if (!(span < static_cast<double>(kMaxPointsPerDim))) {
      reject("grid wider than kMaxPointsPerDim points");
    }
  }
  defs_.push_back(std::move(def));
  return *this;
}

std::uint64_t ParamSpace::point_count() const {
  std::uint64_t total = 1;
  for (const ParamDef& d : defs_) {
    const std::uint64_t n = d.count();
    if (total > UINT64_MAX / n) return UINT64_MAX;
    total *= n;
  }
  return total;
}

std::vector<double> ParamSpace::values(const Candidate& c) const {
  if (c.size() != defs_.size()) {
    throw std::out_of_range("ParamSpace: candidate arity " + std::to_string(c.size()) +
                            " != dims " + std::to_string(defs_.size()));
  }
  std::vector<double> out(defs_.size());
  for (std::size_t d = 0; d < defs_.size(); ++d) {
    if (c[d] >= defs_[d].count()) {
      throw std::out_of_range("ParamSpace: index " + std::to_string(c[d]) + " out of range for '" +
                              defs_[d].name + "' (count " + std::to_string(defs_[d].count()) + ")");
    }
    out[d] = defs_[d].value(c[d]);
  }
  return out;
}

void ParamSpace::apply(const Candidate& c, core::SessionConfig& cfg) const {
  const std::vector<double> vals = values(c);  // bounds-checked
  for (std::size_t d = 0; d < defs_.size(); ++d) {
    find_knob(defs_[d].name)->apply(cfg, vals[d]);
  }
}

std::string ParamSpace::format(const Candidate& c) const {
  const std::vector<double> vals = values(c);
  std::string out;
  for (std::size_t d = 0; d < defs_.size(); ++d) {
    if (d > 0) out += ' ';
    out += defs_[d].name;
    out += '=';
    out += exp::json_number(vals[d]);
  }
  return out;
}

std::uint64_t ParamSpace::fingerprint() const {
  std::uint64_t h = kFnvOffset;
  for (const ParamDef& d : defs_) {
    h = fnv_bytes(h, d.name.data(), d.name.size());
    h = fnv_double(h, d.lo);
    h = fnv_double(h, d.hi);
    h = fnv_double(h, d.step);
  }
  return h;
}

bool apply_knob(const std::string& name, double value, core::SessionConfig& cfg) {
  const Knob* k = find_knob(name);
  if (k == nullptr) return false;
  k->apply(cfg, value);
  return true;
}

std::vector<std::string> ParamSpace::knob_names() {
  std::vector<std::string> names;
  for (const Knob& k : kKnobs) names.emplace_back(k.name);
  std::sort(names.begin(), names.end());
  return names;
}

std::uint32_t TunerRng::pick(std::uint64_t k, std::uint32_t n) const {
  // mix_stream is a bijective hash of (seed, k); the multiply-high maps
  // it to [0, n) without modulo bias worth caring about at n <= 2^20.
  const std::uint64_t bits = sim::mix_stream(seed_, 0x7A11E5ULL, k);
  return static_cast<std::uint32_t>((static_cast<unsigned __int128>(bits) * n) >> 64);
}

}  // namespace vafs::tune
