// Tunable-parameter grids for the governor auto-tuner (tuner.h).
//
// A ParamSpace is an ordered list of dimensions, each a registered knob
// name with an inclusive arithmetic grid lo + i*step. Candidates are
// index vectors (one grid index per dimension), never raw doubles: index
// arithmetic is exact, so neighbours, bounds checks and the canonical
// lexicographic tie-break order are all integer operations — the search
// trajectory cannot drift on floating-point round-off.
//
// Knobs cover the VAFS parameter surface (safety margin, predictor
// window/alpha/quantile, boost, cold start, watchdog thresholds) and the
// sampling-governor sysfs tunables (ondemand/conservative), applied onto
// a core::SessionConfig through a fixed registry.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/session.h"

namespace vafs::tune {

/// One grid index per ParamSpace dimension, in dimension order.
using Candidate = std::vector<std::uint32_t>;

struct ParamDef {
  std::string name;
  double lo = 0.0;
  double hi = 0.0;
  double step = 0.0;  // > 0 unless lo == hi (single-point dimension)

  /// Grid points in [lo, hi]: 1 + floor((hi - lo) / step), computed
  /// without dividing when the dimension is a single point (lo == hi).
  std::uint32_t count() const;
  /// Value of grid index i (i < count()): lo + i * step.
  double value(std::uint32_t i) const;
};

class ParamSpace {
 public:
  /// Per-dimension grid-width cap: wide enough for any real sweep, small
  /// enough that a fuzzer's near-zero step cannot allocate the world.
  static constexpr std::uint32_t kMaxPointsPerDim = 1u << 20;

  /// Adds a dimension. Throws std::invalid_argument on an unknown knob
  /// name, a duplicate dimension, non-finite lo/hi/step, an inverted
  /// range (lo > hi), a non-positive step on a non-degenerate range, or
  /// a grid wider than kMaxPointsPerDim. A degenerate range (lo == hi)
  /// is a valid single-point dimension regardless of step.
  ParamSpace& dim(const std::string& name, double lo, double hi, double step);

  std::size_t dims() const { return defs_.size(); }
  const ParamDef& def(std::size_t d) const { return defs_.at(d); }
  const std::vector<ParamDef>& defs() const { return defs_; }

  /// Product of per-dimension counts, saturating at UINT64_MAX.
  std::uint64_t point_count() const;

  /// Concrete knob values of a candidate. Throws std::out_of_range when
  /// the candidate's arity or any index is outside the space.
  std::vector<double> values(const Candidate& c) const;

  /// Applies a candidate onto a session config through the knob registry
  /// (bounds-checked like values()).
  void apply(const Candidate& c, core::SessionConfig& cfg) const;

  /// Canonical rendering, e.g. "safety_margin=0.2 predictor_window=16".
  std::string format(const Candidate& c) const;

  /// FNV-1a over dimension names and the bit patterns of lo/hi/step —
  /// resume validation for the tuner state file.
  std::uint64_t fingerprint() const;

  /// Registered knob names, sorted (for diagnostics and the fuzzer).
  static std::vector<std::string> knob_names();

 private:
  std::vector<ParamDef> defs_;
};

/// Applies one registered knob by name onto a session config — the same
/// registry ParamSpace::apply uses, for callers holding (name, value)
/// pairs instead of grid indices (the tuned_configs.json loader). Returns
/// false for an unknown knob name; cfg is untouched then.
bool apply_knob(const std::string& name, double value, core::SessionConfig& cfg);

/// Deterministic candidate sampler: draw k is a pure function of
/// (seed, k), so neither checkpoint/resume nor job count can shift the
/// sample stream — the sampled population is a value, not a process.
class TunerRng {
 public:
  explicit TunerRng(std::uint64_t seed) : seed_(seed) {}

  /// Uniform index in [0, n), n >= 1, for draw counter k.
  std::uint32_t pick(std::uint64_t k, std::uint32_t n) const;

 private:
  std::uint64_t seed_;
};

}  // namespace vafs::tune
