#include "tune/tuned_configs.h"

#include <fstream>
#include <sstream>

#include "exp/json.h"
#include "tune/param_space.h"

namespace vafs::tune {
namespace {

bool schema_fail(std::string* error, const std::string& why) {
  if (error) *error = "tuned_configs: " + why;
  return false;
}

const exp::Json* member(const exp::Json& obj, std::string_view key, exp::Json::Kind kind) {
  const exp::Json* v = obj.find(key);
  return (v != nullptr && v->kind() == kind) ? v : nullptr;
}

}  // namespace

void TunedCell::apply(core::SessionConfig& cfg) const {
  // Every name was validated against the knob registry at parse time, so
  // apply_knob cannot fail here; the loop still ignores a false return
  // rather than asserting so a hand-edited artifact degrades gracefully.
  for (const auto& [name, value] : params) (void)apply_knob(name, value, cfg);
}

bool TunedConfigs::parse(std::string_view text, TunedConfigs* out, std::string* error) {
  out->cells_.clear();
  exp::Json root;
  if (!exp::json_parse(text, &root, error)) return false;
  if (root.kind() != exp::Json::Kind::kObject) {
    return schema_fail(error, "top-level value is not an object");
  }
  // bench_f15 embeds the artifact under "tuned" in BENCH_f15.json; accept
  // either the bare artifact or that wrapper.
  if (root.find("schema_version") == nullptr) {
    const exp::Json* wrapped = member(root, "tuned", exp::Json::Kind::kObject);
    if (wrapped != nullptr) root = *wrapped;
  }
  const exp::Json* version = member(root, "schema_version", exp::Json::Kind::kNumber);
  if (version == nullptr || version->number() != 1.0) {
    return schema_fail(error, "missing or unsupported schema_version (want 1)");
  }
  const exp::Json* cells = member(root, "cells", exp::Json::Kind::kArray);
  if (cells == nullptr) return schema_fail(error, "missing cells array");

  for (const exp::Json& c : cells->items()) {
    if (c.kind() != exp::Json::Kind::kObject) {
      return schema_fail(error, "cell entry is not an object");
    }
    TunedCell cell;
    const auto text_field = [&](std::string_view key, std::string* dst) {
      const exp::Json* v = member(c, key, exp::Json::Kind::kString);
      if (v == nullptr) return schema_fail(error, "cell missing string '" + std::string(key) + "'");
      *dst = v->str();
      return true;
    };
    if (!text_field("cell", &cell.cell) || !text_field("profile", &cell.profile) ||
        !text_field("net", &cell.net) || !text_field("governor", &cell.governor)) {
      return false;
    }
    const exp::Json* feasible = member(c, "feasible", exp::Json::Kind::kBool);
    if (feasible == nullptr) return schema_fail(error, "cell missing bool 'feasible'");
    cell.feasible = feasible->boolean();

    const exp::Json* params = member(c, "params", exp::Json::Kind::kObject);
    if (params == nullptr) return schema_fail(error, "cell missing params object");
    core::SessionConfig probe;
    for (const auto& [name, value] : params->members()) {
      if (value.kind() != exp::Json::Kind::kNumber) {
        return schema_fail(error, "param '" + name + "' is not a number");
      }
      if (!apply_knob(name, value.number(), probe)) {
        return schema_fail(error, "unregistered knob '" + name + "' in cell '" + cell.cell + "'");
      }
      cell.params.emplace_back(name, value.number());
    }

    if (const exp::Json* obj = member(c, "objective", exp::Json::Kind::kObject)) {
      const auto num = [&](std::string_view key, double* dst) {
        const exp::Json* v = member(*obj, key, exp::Json::Kind::kNumber);
        if (v != nullptr) *dst = v->number();
      };
      num("energy_mj", &cell.energy_mj);
      num("rebuffer_ratio", &cell.rebuffer_ratio);
      num("drop_pct", &cell.drop_pct);
    }
    out->cells_.push_back(std::move(cell));
  }
  return true;
}

bool TunedConfigs::load_file(const std::string& path, TunedConfigs* out, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return schema_fail(error, "cannot read '" + path + "'");
  std::ostringstream body;
  body << in.rdbuf();
  return parse(body.str(), out, error);
}

const TunedCell* TunedConfigs::find(std::string_view profile, std::string_view net) const {
  const std::string_view want = profile.empty() ? "default" : profile;
  for (const TunedCell& c : cells_) {
    const std::string_view have = c.profile.empty() ? "default" : std::string_view(c.profile);
    if (have == want && c.net == net) return &c;
  }
  return nullptr;
}

}  // namespace vafs::tune
