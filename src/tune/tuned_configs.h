// Loader for the tuned_configs.json artifact bench_f15_tune ships (the
// per-cell winners of the closed-loop governor search, tuner.h). This is
// the consumer side of the tuning loop: benches and tests look up the
// tuned configuration for a (device profile × network class) cell and
// apply its knob values onto a core::SessionConfig through the same
// registry the search itself used — so a replayed tuned config is
// bit-identical to the candidate the tuner evaluated.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/session.h"

namespace vafs::tune {

/// One tuned cell as shipped in the artifact. `params` preserves artifact
/// order; every name is a registered knob (parse() rejects unknowns, so a
/// stale artifact fails loudly instead of silently half-applying).
struct TunedCell {
  std::string cell;      // "flagship/fair"
  std::string profile;   // registry name; "default" = the legacy device
  std::string net;       // "fair", "poor", ...
  std::string governor;  // the governor the cell was tuned for
  bool feasible = false;
  std::vector<std::pair<std::string, double>> params;
  // Objective readings of the winner, straight from the artifact (mean
  // over the full evaluation-seed budget).
  double energy_mj = 0.0;
  double rebuffer_ratio = 0.0;
  double drop_pct = 0.0;

  /// Applies every knob onto cfg (governor is NOT set — callers decide
  /// whether the cell's governor or their own sweep axis wins).
  void apply(core::SessionConfig& cfg) const;
};

/// The parsed artifact.
class TunedConfigs {
 public:
  /// Parses artifact text. Returns false with a message on malformed
  /// JSON, a schema_version other than 1, a missing/malformed cells
  /// array, or an unregistered knob name.
  static bool parse(std::string_view text, TunedConfigs* out, std::string* error);

  /// parse() over a file's contents; false with a message when the file
  /// cannot be read.
  static bool load_file(const std::string& path, TunedConfigs* out, std::string* error);

  const std::vector<TunedCell>& cells() const { return cells_; }
  bool empty() const { return cells_.empty(); }

  /// The cell tuned for (profile, net); nullptr when the artifact has
  /// none. `profile` "" and "default" both mean the legacy device.
  const TunedCell* find(std::string_view profile, std::string_view net) const;

 private:
  std::vector<TunedCell> cells_;
};

}  // namespace vafs::tune
