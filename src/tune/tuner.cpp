#include "tune/tuner.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <set>
#include <sstream>

#include "device/profile.h"
#include "fleet/fleet_runner.h"
#include "fleet/io.h"
#include "fleet/textio.h"

namespace vafs::tune {
namespace {

constexpr int kStateSchema = 1;
/// Violation penalty for candidates whose sessions failed or hit the sim
/// cap: far above any real constraint excess, so broken configs sort
/// after merely-stalling ones but still have a total order among
/// themselves (by failure count, then energy, then index).
constexpr double kBrokenPenalty = 1e9;

constexpr std::uint64_t kFnvOffset = 0xCBF29CE484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001B3ULL;

std::uint64_t fnv_bytes(std::uint64_t h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t fnv_u64(std::uint64_t h, std::uint64_t v) { return fnv_bytes(h, &v, sizeof(v)); }

std::uint64_t fnv_double(std::uint64_t h, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return fnv_u64(h, bits);
}

std::uint64_t fnv_str(std::uint64_t h, std::string_view s) {
  h = fnv_u64(h, s.size());
  return fnv_bytes(h, s.data(), s.size());
}

std::string hex16(std::uint64_t v) {
  std::string out;
  fleet::append_hex64(out, v);
  return out;
}

std::string candidate_text(const Candidate& c) {
  std::string out;
  for (std::size_t d = 0; d < c.size(); ++d) {
    if (d > 0) out += ':';
    out += std::to_string(c[d]);
  }
  return out;
}

bool parse_candidate(std::string_view text, Candidate* out) {
  out->clear();
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t colon = text.find(':', start);
    const std::string_view tok = text.substr(start, colon - start);
    std::uint64_t v = 0;
    if (!fleet::parse_u64(tok, &v) || v > UINT32_MAX) return false;
    out->push_back(static_cast<std::uint32_t>(v));
    if (colon == std::string_view::npos) break;
    start = colon + 1;
  }
  return !out->empty();
}

Score score_from(const exp::Aggregate& agg, const Constraints& c, std::int64_t failures) {
  Score s;
  s.evaluated = true;
  s.runs = agg.runs;
  s.failures = failures;
  if (agg.runs > 0) {
    s.energy_mj = agg.total_mj.mean();
    const double wall = agg.wall_s.mean();
    s.rebuffer_ratio = wall > 0.0 ? agg.rebuffer_s.mean() / wall : 0.0;
    s.drop_pct = agg.drop_pct.mean();
    s.startup_s = agg.startup_s.mean();
    s.bitrate_kbps = agg.mean_bitrate_kbps.mean();
    s.guard_rebuffer_s = agg.rebuffer_s.max();
  }
  const auto excess = [](double x, double cap) {
    return (cap > 0.0 && x > cap) ? (x - cap) / cap : 0.0;
  };
  double v = 0.0;
  v += excess(s.rebuffer_ratio, c.max_rebuffer_ratio);
  v += excess(s.drop_pct, c.max_drop_pct);
  v += excess(s.startup_s, c.max_startup_s);
  v += excess(s.guard_rebuffer_s, c.max_guard_rebuffer_s);
  if (c.min_bitrate_kbps > 0.0 && s.bitrate_kbps < c.min_bitrate_kbps) {
    v += (c.min_bitrate_kbps - s.bitrate_kbps) / c.min_bitrate_kbps;
  }
  if (agg.runs == 0 || !agg.all_finished || failures > 0) {
    v += kBrokenPenalty * (1.0 + static_cast<double>(failures));
  }
  s.violation = v;
  s.feasible = v == 0.0;
  return s;
}

// ---------------------------------------------------------------------------
// State file: completed rounds, durably persisted after each evaluation.

struct RoundRecord {
  std::string tag;
  std::uint64_t seeds = 0;
  std::vector<Candidate> candidates;
  std::vector<Score> scores;
};

struct StateFile {
  std::uint64_t space_fp = 0;
  std::uint64_t options_fp = 0;
  std::vector<RoundRecord> rounds;
  std::map<std::string, std::size_t> by_tag;

  const RoundRecord* find(const std::string& tag) const {
    const auto it = by_tag.find(tag);
    return it == by_tag.end() ? nullptr : &rounds[it->second];
  }

  void record(RoundRecord rec) {
    by_tag.emplace(rec.tag, rounds.size());
    rounds.push_back(std::move(rec));
  }
};

std::string serialize_state(const StateFile& st) {
  std::string out;
  out += "vafs-tune-state " + std::to_string(kStateSchema) + "\n";
  out += "space " + hex16(st.space_fp) + "\n";
  out += "options " + hex16(st.options_fp) + "\n";
  for (const RoundRecord& r : st.rounds) {
    out += "round " + r.tag + " " + std::to_string(r.seeds) + " " +
           std::to_string(r.candidates.size()) + "\n";
    for (std::size_t i = 0; i < r.candidates.size(); ++i) {
      const Score& s = r.scores[i];
      out += "c " + candidate_text(r.candidates[i]) + " ";
      out += std::to_string((s.evaluated ? 1 : 0) | (s.feasible ? 2 : 0));
      for (const double v : {s.violation, s.energy_mj, s.rebuffer_ratio, s.drop_pct, s.startup_s,
                             s.bitrate_kbps, s.guard_rebuffer_s}) {
        std::uint64_t bits;
        std::memcpy(&bits, &v, sizeof(bits));
        out += ' ';
        fleet::append_hex64(out, bits);
      }
      out += ' ' + std::to_string(s.runs) + ' ' + std::to_string(s.failures) + "\n";
    }
  }
  out += "end " + hex16(fnv_bytes(kFnvOffset, out.data(), out.size())) + "\n";
  return out;
}

bool parse_state(const std::string& path, StateFile* st, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *error = "tune-state: cannot open '" + path + "'";
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string content = buffer.str();
  const auto fail = [&](const std::string& why) {
    *error = "tune-state '" + path + "': " + why;
    return false;
  };
  if (content.empty() || content.back() != '\n') {
    return fail("truncated (no terminating end line)");
  }
  const std::size_t last_line_start = content.rfind('\n', content.size() - 2) + 1;
  const std::string_view last_line(content.data() + last_line_start,
                                   content.size() - last_line_start - 1);
  std::uint64_t want = 0;
  if (last_line.size() != 4 + 16 || last_line.substr(0, 4) != "end " ||
      !fleet::parse_hex64(last_line.substr(4), &want)) {
    return fail("truncated (no terminating end line)");
  }
  if (fnv_bytes(kFnvOffset, content.data(), last_line_start) != want) {
    return fail("checksum mismatch (corrupt or torn write)");
  }

  std::istringstream lines(content.substr(0, last_line_start));
  std::string line;
  std::vector<std::string> f;
  const auto next = [&](std::size_t want_fields) {
    if (!std::getline(lines, line)) return false;
    fleet::split_fields(line, &f);
    return f.size() == want_fields;
  };
  if (!next(2) || f[0] != "vafs-tune-state" || f[1] != std::to_string(kStateSchema)) {
    return fail("bad header (schema mismatch?)");
  }
  if (!next(2) || f[0] != "space" || !fleet::parse_hex64(f[1], &st->space_fp)) {
    return fail("bad space line");
  }
  if (!next(2) || f[0] != "options" || !fleet::parse_hex64(f[1], &st->options_fp)) {
    return fail("bad options line");
  }
  while (std::getline(lines, line)) {
    fleet::split_fields(line, &f);
    if (f.size() != 4 || f[0] != "round") return fail("bad round line");
    RoundRecord rec;
    rec.tag = f[1];
    std::uint64_t ncand = 0;
    if (!fleet::parse_u64(f[2], &rec.seeds) || !fleet::parse_u64(f[3], &ncand)) {
      return fail("bad round line");
    }
    for (std::uint64_t i = 0; i < ncand; ++i) {
      if (!std::getline(lines, line)) return fail("bad candidate line");
      fleet::split_fields(line, &f);
      if (f.size() != 12 || f[0] != "c") return fail("bad candidate line");
      Candidate c;
      if (!parse_candidate(f[1], &c)) return fail("bad candidate line");
      std::uint64_t flags = 0;
      if (!fleet::parse_u64(f[2], &flags) || flags > 3) return fail("bad candidate line");
      Score s;
      s.evaluated = (flags & 1) != 0;
      s.feasible = (flags & 2) != 0;
      double* const targets[] = {&s.violation,  &s.energy_mj,    &s.rebuffer_ratio, &s.drop_pct,
                                 &s.startup_s,  &s.bitrate_kbps, &s.guard_rebuffer_s};
      for (std::size_t t = 0; t < 7; ++t) {
        std::uint64_t bits = 0;
        if (!fleet::parse_hex64(f[3 + t], &bits)) return fail("bad candidate line");
        std::memcpy(targets[t], &bits, sizeof(bits));
      }
      std::uint64_t runs = 0;
      std::uint64_t failures = 0;
      if (!fleet::parse_u64(f[10], &runs) || !fleet::parse_u64(f[11], &failures)) {
        return fail("bad candidate line");
      }
      s.runs = static_cast<std::int64_t>(runs);
      s.failures = static_cast<std::int64_t>(failures);
      rec.candidates.push_back(std::move(c));
      rec.scores.push_back(s);
    }
    if (st->by_tag.count(rec.tag) != 0) return fail("duplicate round tag '" + rec.tag + "'");
    st->record(std::move(rec));
  }
  return true;
}

std::uint64_t options_fingerprint(const TunerOptions& opts,
                                  const std::vector<TuneContext>& contexts) {
  std::uint64_t h = kFnvOffset;
  h = fnv_u64(h, opts.search_seed);
  h = fnv_u64(h, opts.eval_seed_base);
  h = fnv_u64(h, static_cast<std::uint64_t>(opts.initial_candidates));
  h = fnv_u64(h, static_cast<std::uint64_t>(opts.eta));
  h = fnv_u64(h, opts.seed_schedule.size());
  for (const int n : opts.seed_schedule) h = fnv_u64(h, static_cast<std::uint64_t>(n));
  h = fnv_u64(h, static_cast<std::uint64_t>(opts.refine_passes));
  h = fnv_u64(h, opts.sensitivity ? 1 : 0);
  // Base-config scalars most likely to change between invocations. The
  // per-round fleet manifests fingerprint the *full* scenario configs, so
  // in-flight rounds are fully protected; this guards replayed rounds
  // against the common drift (different media length / ABR / rung).
  h = fnv_u64(h, static_cast<std::uint64_t>(opts.base.media_duration.as_micros()));
  h = fnv_u64(h, static_cast<std::uint64_t>(opts.base.segment_duration.as_micros()));
  h = fnv_u64(h, static_cast<std::uint64_t>(opts.base.abr));
  h = fnv_u64(h, opts.base.fixed_rep);
  for (const TuneContext& ctx : contexts) {
    h = fnv_str(h, ctx.name);
    h = fnv_str(h, ctx.profile);
    h = fnv_str(h, ctx.net_label);
    h = fnv_u64(h, static_cast<std::uint64_t>(ctx.net));
    h = fnv_str(h, ctx.governor);
    h = fnv_double(h, ctx.constraints.max_rebuffer_ratio);
    h = fnv_double(h, ctx.constraints.max_drop_pct);
    h = fnv_double(h, ctx.constraints.max_startup_s);
    h = fnv_double(h, ctx.constraints.min_bitrate_kbps);
    h = fnv_double(h, ctx.constraints.max_guard_rebuffer_s);
  }
  return h;
}

// ---------------------------------------------------------------------------
// Fleet-backed evaluator: one fleet run per round.

class FleetEvaluator : public Evaluator {
 public:
  explicit FleetEvaluator(const TunerOptions& opts) : opts_(opts) {}

  RoundResult evaluate(const RoundRequest& req) override {
    RoundResult out;
    std::vector<exp::ScenarioSpec> specs;
    specs.reserve(req.candidates.size());
    for (const Candidate& c : req.candidates) {
      exp::ScenarioSpec spec;
      spec.config = opts_.base;
      if (!req.ctx->profile.empty()) {
        spec.config.profile = device::profile(req.ctx->profile);
      }
      spec.config.net = req.ctx->net;
      spec.config.governor = req.ctx->governor;
      req.space->apply(c, spec.config);
      spec.id = "cand=" + candidate_text(c);
      spec.labels = {{"cell", req.ctx->name},
                     {"cand", candidate_text(c)},
                     {"params", req.space->format(c)}};
      specs.push_back(std::move(spec));
    }
    fleet::FleetOptions fo;
    fo.jobs = opts_.jobs;
    fo.batch = opts_.batch;
    fo.shard_size = opts_.shard_size;
    fo.seeds = req.seeds;
    fo.trace = true;
    if (!opts_.checkpoint_dir.empty()) {
      fo.checkpoint_dir = opts_.checkpoint_dir + "/fleet-" + req.tag;
      // Checkpoint every shard: tuner rounds are small, so this is what
      // makes a mid-round SIGTERM resumable close to where it died.
      fo.checkpoint_every_shards = 1;
      // Fresh start when no manifest exists; a manifest for a different
      // grid (stale directory reuse) is refused by the fleet layer.
      fo.resume = true;
    }
    if (opts_.keep_going) {
      fo.on_progress = [this](std::uint64_t, std::uint64_t) { return opts_.keep_going(); };
    }
    const fleet::FleetResult fr = fleet::run_fleet(specs, fo);
    if (!fr.ok()) {
      out.error = "round '" + req.tag + "': " + fr.error;
      return out;
    }
    if (fr.stopped) {
      out.stopped = true;
      return out;
    }
    std::vector<std::int64_t> failures(specs.size(), 0);
    for (const auto& f : fr.failures) {
      const std::size_t scenario = f.task_index / req.seeds.size();
      if (scenario < failures.size()) ++failures[scenario];
    }
    out.scores.reserve(specs.size());
    for (std::size_t i = 0; i < fr.scenarios.size(); ++i) {
      out.scores.push_back(score_from(fr.scenarios[i].agg, req.ctx->constraints, failures[i]));
    }
    return out;
  }

 private:
  const TunerOptions& opts_;
};

// ---------------------------------------------------------------------------
// Search driver.

bool advance_odometer(Candidate& c, const ParamSpace& space) {
  for (std::size_t d = space.dims(); d-- > 0;) {
    if (++c[d] < space.def(d).count()) return true;
    c[d] = 0;
  }
  return false;
}

struct Driver {
  const ParamSpace& space;
  const TunerOptions& opts;
  Evaluator* eval;
  TuneReport& report;
  StateFile state;
  std::string state_path;  // empty = no checkpointing

  bool keep_going() const { return !opts.keep_going || opts.keep_going(); }

  void fold_round(const RoundRecord& rec) {
    std::uint64_t h = report.trajectory_digest == 0 ? kFnvOffset : report.trajectory_digest;
    h = fnv_str(h, rec.tag);
    h = fnv_u64(h, rec.seeds);
    for (std::size_t i = 0; i < rec.candidates.size(); ++i) {
      const Candidate& c = rec.candidates[i];
      h = fnv_u64(h, c.size());
      for (const std::uint32_t idx : c) h = fnv_u64(h, idx);
      const Score& s = rec.scores[i];
      h = fnv_u64(h, (s.evaluated ? 1u : 0u) | (s.feasible ? 2u : 0u));
      for (const double v : {s.violation, s.energy_mj, s.rebuffer_ratio, s.drop_pct, s.startup_s,
                             s.bitrate_kbps, s.guard_rebuffer_s}) {
        h = fnv_double(h, v);
      }
      h = fnv_u64(h, static_cast<std::uint64_t>(s.runs));
      h = fnv_u64(h, static_cast<std::uint64_t>(s.failures));
    }
    report.trajectory_digest = h;
  }

  /// Evaluates (or replays) one round. Canonicalizes *cands in place
  /// (lexicographic sort + dedup); the returned scores are parallel to
  /// the canonical list. nullopt = stop or error (report already set).
  std::optional<std::vector<Score>> round(const TuneContext& ctx, const std::string& tag,
                                          std::vector<Candidate>* cands,
                                          const std::vector<std::uint64_t>& seeds,
                                          std::uint64_t* cell_sessions) {
    std::sort(cands->begin(), cands->end());
    cands->erase(std::unique(cands->begin(), cands->end()), cands->end());

    const std::uint64_t round_sessions = cands->size() * seeds.size();
    if (const RoundRecord* rec = state.find(tag)) {
      if (rec->candidates != *cands || rec->seeds != seeds.size()) {
        report.error = "tune: state round '" + tag +
                       "' was recorded for a different candidate/seed list — refusing to resume "
                       "a different search from this state file";
        return std::nullopt;
      }
      fold_round(*rec);
      ++report.rounds;
      ++report.rounds_replayed;
      report.sessions += round_sessions;
      *cell_sessions += round_sessions;
      return rec->scores;
    }

    if (!keep_going()) {
      report.stopped = true;
      return std::nullopt;
    }
    RoundRequest req;
    req.space = &space;
    req.ctx = &ctx;
    req.tag = tag;
    req.candidates = *cands;
    req.seeds = seeds;
    RoundResult rr = eval->evaluate(req);
    if (!rr.error.empty()) {
      report.error = "tune: " + rr.error;
      return std::nullopt;
    }
    if (rr.stopped) {
      report.stopped = true;
      return std::nullopt;
    }
    if (rr.scores.size() != cands->size()) {
      report.error = "tune: evaluator returned " + std::to_string(rr.scores.size()) +
                     " scores for " + std::to_string(cands->size()) + " candidates in round '" +
                     tag + "'";
      return std::nullopt;
    }
    RoundRecord rec;
    rec.tag = tag;
    rec.seeds = seeds.size();
    rec.candidates = *cands;
    rec.scores = rr.scores;
    fold_round(rec);
    state.record(std::move(rec));
    ++report.rounds;
    report.sessions += round_sessions;
    *cell_sessions += round_sessions;
    if (!state_path.empty()) {
      std::string error;
      if (!fleet::write_file_durable(state_path, serialize_state(state), "tune-state",
                                     "state file", &error)) {
        report.error = "tune: " + error;
        return std::nullopt;
      }
      // The round is now replayable from the state file; its fleet
      // manifest has served its purpose. Best-effort cleanup.
      std::error_code ec;
      std::filesystem::remove_all(opts.checkpoint_dir + "/fleet-" + tag, ec);
    }
    return rr.scores;
  }

  /// Index of the canonical winner among (cands, scores).
  static std::size_t winner(const std::vector<Candidate>& cands,
                            const std::vector<Score>& scores) {
    std::size_t best = 0;
    for (std::size_t i = 1; i < cands.size(); ++i) {
      if (better(scores[i], cands[i], scores[best], cands[best])) best = i;
    }
    return best;
  }

  /// Rung-0 population: exhaustive when the space fits the budget, else
  /// the centre point plus TunerRng-sampled distinct candidates.
  std::vector<Candidate> initial_population(std::size_t ctx_index) const {
    const auto budget = static_cast<std::uint64_t>(opts.initial_candidates);
    if (space.point_count() <= budget) {
      std::vector<Candidate> all;
      Candidate c(space.dims(), 0);
      all.push_back(c);
      while (advance_odometer(c, space)) all.push_back(c);
      return all;
    }
    const TunerRng rng(opts.search_seed);
    std::set<Candidate> seen;
    Candidate centre(space.dims());
    for (std::size_t d = 0; d < space.dims(); ++d) centre[d] = space.def(d).count() / 2;
    seen.insert(std::move(centre));
    for (std::uint64_t attempt = 0; attempt < 64 * budget && seen.size() < budget; ++attempt) {
      Candidate c(space.dims());
      for (std::size_t d = 0; d < space.dims(); ++d) {
        const std::uint64_t key =
            (static_cast<std::uint64_t>(ctx_index) << 32) | (attempt * space.dims() + d);
        c[d] = rng.pick(key, space.def(d).count());
      }
      seen.insert(std::move(c));
    }
    return {seen.begin(), seen.end()};  // std::set order == lexicographic
  }

  std::vector<std::uint64_t> seeds_for(int count) const {
    std::vector<std::uint64_t> seeds(static_cast<std::size_t>(count));
    for (std::size_t j = 0; j < seeds.size(); ++j) seeds[j] = opts.eval_seed_base + j;
    return seeds;
  }

  /// Full search for one cell; false = stop/error (report set).
  bool tune_cell(std::size_t ci, const TuneContext& ctx) {
    CellResult cell;
    cell.ctx = ctx;
    const std::string stem = "c" + std::to_string(ci);
    const std::vector<std::uint64_t> full_seeds = seeds_for(opts.seed_schedule.back());

    // Successive halving with seed escalation.
    std::vector<Candidate> pop = initial_population(ci);
    Candidate best;
    Score best_score;
    for (std::size_t r = 0; r < opts.seed_schedule.size(); ++r) {
      const auto scores = round(ctx, stem + ".r" + std::to_string(r), &pop,
                                seeds_for(opts.seed_schedule[r]), &cell.sessions);
      if (!scores) return false;
      if (r + 1 < opts.seed_schedule.size()) {
        // Promote the top ceil(n/eta) to the next rung.
        const std::size_t keep =
            std::max<std::size_t>(1, (pop.size() + opts.eta - 1) / static_cast<std::size_t>(opts.eta));
        std::vector<std::size_t> order(pop.size());
        for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
        std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
          return better((*scores)[a], pop[a], (*scores)[b], pop[b]);
        });
        std::vector<Candidate> survivors;
        survivors.reserve(keep);
        for (std::size_t i = 0; i < keep && i < order.size(); ++i) {
          survivors.push_back(pop[order[i]]);
        }
        pop = std::move(survivors);
      } else {
        const std::size_t w = winner(pop, *scores);
        best = pop[w];
        best_score = (*scores)[w];
      }
    }

    // Compass refinement at full seeds: evaluate every ±1-step axis
    // neighbour of the incumbent; move only on a strict canonical
    // improvement. Each move strictly descends the canonical order, so
    // the stage terminates without a visited set.
    for (int pass = 1; pass <= opts.refine_passes; ++pass) {
      std::vector<Candidate> nbrs;
      for (std::size_t d = 0; d < space.dims(); ++d) {
        if (best[d] > 0) {
          Candidate n = best;
          --n[d];
          nbrs.push_back(std::move(n));
        }
        if (best[d] + 1 < space.def(d).count()) {
          Candidate n = best;
          ++n[d];
          nbrs.push_back(std::move(n));
        }
      }
      if (nbrs.empty()) break;
      const auto scores =
          round(ctx, stem + ".p" + std::to_string(pass), &nbrs, full_seeds, &cell.sessions);
      if (!scores) return false;
      const std::size_t w = winner(nbrs, *scores);
      if (!better((*scores)[w], nbrs[w], best_score, best)) break;
      best = nbrs[w];
      best_score = (*scores)[w];
    }

    // Sensitivity landscape: each dimension swept through the winner.
    if (opts.sensitivity) {
      for (std::size_t d = 0; d < space.dims(); ++d) {
        std::vector<Candidate> sweep;
        sweep.reserve(space.def(d).count());
        for (std::uint32_t j = 0; j < space.def(d).count(); ++j) {
          Candidate c = best;
          c[d] = j;
          sweep.push_back(std::move(c));
        }
        const auto scores =
            round(ctx, stem + ".s" + std::to_string(d), &sweep, full_seeds, &cell.sessions);
        if (!scores) return false;
        for (std::size_t i = 0; i < sweep.size(); ++i) {
          cell.sensitivity.push_back(CellResult::SensitivityPoint{
              static_cast<std::uint32_t>(d), sweep[i][d], space.def(d).value(sweep[i][d]),
              (*scores)[i]});
        }
      }
    }

    cell.best = best;
    cell.best_values = space.values(best);
    cell.best_score = best_score;
    report.cells.push_back(std::move(cell));
    return true;
  }
};

std::string validate(const ParamSpace& space, const std::vector<TuneContext>& contexts,
                     const TunerOptions& opts) {
  if (space.dims() == 0) return "tune: empty ParamSpace";
  if (contexts.empty()) return "tune: no tuning contexts";
  std::set<std::string> names;
  for (const TuneContext& ctx : contexts) {
    if (ctx.name.empty() || ctx.name.find(' ') != std::string::npos) {
      return "tune: context name '" + ctx.name + "' must be non-empty and space-free";
    }
    if (!names.insert(ctx.name).second) return "tune: duplicate context name '" + ctx.name + "'";
  }
  if (opts.initial_candidates < 1) return "tune: initial_candidates must be >= 1";
  if (opts.eta < 2) return "tune: eta must be >= 2";
  if (opts.seed_schedule.empty()) return "tune: seed_schedule must be non-empty";
  int prev = 0;
  for (const int n : opts.seed_schedule) {
    if (n <= 0 || n < prev) return "tune: seed_schedule must be positive and ascending";
    prev = n;
  }
  if (opts.refine_passes < 0) return "tune: refine_passes must be >= 0";
  return "";
}

}  // namespace

bool better(const Score& a, const Candidate& ca, const Score& b, const Candidate& cb) {
  if (a.evaluated != b.evaluated) return a.evaluated;
  if (!a.evaluated) return false;
  if (a.feasible != b.feasible) return a.feasible;
  if (a.violation != b.violation) return a.violation < b.violation;
  if (a.energy_mj != b.energy_mj) return a.energy_mj < b.energy_mj;
  return std::lexicographical_compare(ca.begin(), ca.end(), cb.begin(), cb.end());
}

TuneReport run_tuner(const ParamSpace& space, const std::vector<TuneContext>& contexts,
                     const TunerOptions& opts, Evaluator* evaluator) {
  TuneReport report;
  report.error = validate(space, contexts, opts);
  if (!report.ok()) return report;

  FleetEvaluator fleet_eval(opts);
  Driver drv{space, opts, evaluator != nullptr ? evaluator : &fleet_eval, report, {}, ""};
  drv.state.space_fp = space.fingerprint();
  drv.state.options_fp = options_fingerprint(opts, contexts);

  if (!opts.checkpoint_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(opts.checkpoint_dir, ec);
    drv.state_path = opts.checkpoint_dir + "/tune-state.ckpt";
    if (opts.resume && std::filesystem::exists(drv.state_path)) {
      StateFile loaded;
      std::string error;
      if (!parse_state(drv.state_path, &loaded, &error)) {
        report.error = "tune: resume refused: " + error;
        return report;
      }
      if (loaded.space_fp != drv.state.space_fp || loaded.options_fp != drv.state.options_fp) {
        report.error =
            "tune: resume refused: state file '" + drv.state_path +
            "' was written for a different parameter space or search configuration";
        return report;
      }
      drv.state = std::move(loaded);
    } else if (!opts.resume) {
      // Fresh run into a dirty directory: drop any stale state so a
      // previous search cannot leak rounds into this one.
      std::filesystem::remove(drv.state_path, ec);
      for (const auto& entry : std::filesystem::directory_iterator(opts.checkpoint_dir, ec)) {
        if (entry.path().filename().string().rfind("fleet-", 0) == 0) {
          std::error_code rm_ec;
          std::filesystem::remove_all(entry.path(), rm_ec);
        }
      }
    }
  }

  for (std::size_t ci = 0; ci < contexts.size(); ++ci) {
    if (!drv.tune_cell(ci, contexts[ci])) return report;
  }
  return report;
}

exp::Json tuned_configs_json(const ParamSpace& space, const std::vector<TuneContext>& contexts,
                             const TunerOptions& opts, const TuneReport& report) {
  (void)contexts;
  exp::Json root = exp::Json::object();
  root.set("schema_version", 1);

  exp::Json search = exp::Json::object();
  search.set("search_seed", static_cast<std::int64_t>(opts.search_seed));
  search.set("eval_seed_base", static_cast<std::int64_t>(opts.eval_seed_base));
  search.set("initial_candidates", opts.initial_candidates);
  search.set("eta", opts.eta);
  exp::Json schedule = exp::Json::array();
  for (const int n : opts.seed_schedule) schedule.push(n);
  search.set("seed_schedule", std::move(schedule));
  search.set("refine_passes", opts.refine_passes);
  search.set("sensitivity", opts.sensitivity);
  // Deliberately no rounds_replayed here: it says how this process got
  // the results (resume provenance), not what the search found, and the
  // artifact of a killed-and-resumed run must be byte-identical to an
  // uninterrupted one. It stays on TuneReport for logs.
  search.set("rounds", static_cast<std::int64_t>(report.rounds));
  search.set("sessions", static_cast<std::int64_t>(report.sessions));
  search.set("trajectory_digest", hex16(report.trajectory_digest));
  root.set("search", std::move(search));

  exp::Json dims = exp::Json::array();
  for (const ParamDef& d : space.defs()) {
    exp::Json dim = exp::Json::object();
    dim.set("name", d.name);
    dim.set("lo", d.lo);
    dim.set("hi", d.hi);
    dim.set("step", d.step);
    dim.set("count", static_cast<std::int64_t>(d.count()));
    dims.push(std::move(dim));
  }
  root.set("space", std::move(dims));

  exp::Json cells = exp::Json::array();
  for (const CellResult& cell : report.cells) {
    exp::Json c = exp::Json::object();
    c.set("cell", cell.ctx.name);
    c.set("profile", cell.ctx.profile.empty() ? "default" : cell.ctx.profile);
    c.set("net", cell.ctx.net_label);
    c.set("governor", cell.ctx.governor);
    c.set("feasible", cell.best_score.feasible);
    if (!cell.best_score.feasible) {
      // No point in the space met the QoE floor; the params below are
      // the least-violating configuration, not a shippable one.
      c.set("violation", cell.best_score.violation);
    }
    exp::Json params = exp::Json::object();
    for (std::size_t d = 0; d < space.dims(); ++d) {
      params.set(space.def(d).name, cell.best_values[d]);
    }
    c.set("params", std::move(params));
    exp::Json index = exp::Json::array();
    for (const std::uint32_t i : cell.best) index.push(static_cast<std::int64_t>(i));
    c.set("index", std::move(index));
    exp::Json obj = exp::Json::object();
    obj.set("energy_mj", cell.best_score.energy_mj);
    obj.set("rebuffer_ratio", cell.best_score.rebuffer_ratio);
    obj.set("drop_pct", cell.best_score.drop_pct);
    obj.set("startup_s", cell.best_score.startup_s);
    obj.set("bitrate_kbps", cell.best_score.bitrate_kbps);
    obj.set("guard_rebuffer_s", cell.best_score.guard_rebuffer_s);
    obj.set("runs", cell.best_score.runs);
    obj.set("failures", cell.best_score.failures);
    c.set("objective", std::move(obj));
    exp::Json cons = exp::Json::object();
    cons.set("max_rebuffer_ratio", cell.ctx.constraints.max_rebuffer_ratio);
    cons.set("max_drop_pct", cell.ctx.constraints.max_drop_pct);
    cons.set("max_startup_s", cell.ctx.constraints.max_startup_s);
    cons.set("min_bitrate_kbps", cell.ctx.constraints.min_bitrate_kbps);
    cons.set("max_guard_rebuffer_s", cell.ctx.constraints.max_guard_rebuffer_s);
    c.set("constraints", std::move(cons));
    c.set("sessions", static_cast<std::int64_t>(cell.sessions));
    cells.push(std::move(c));
  }
  root.set("cells", std::move(cells));
  return root;
}

std::string sensitivity_csv(const ParamSpace& space, const TuneReport& report) {
  std::string out =
      "cell,param,index,value,feasible,violation,energy_mj,rebuffer_ratio,drop_pct,startup_s,"
      "bitrate_kbps,guard_rebuffer_s\n";
  for (const CellResult& cell : report.cells) {
    for (const CellResult::SensitivityPoint& p : cell.sensitivity) {
      out += cell.ctx.name + ',' + space.def(p.dim).name + ',' + std::to_string(p.index) + ',' +
             exp::json_number(p.value) + ',' + (p.score.feasible ? "1" : "0") + ',' +
             exp::json_number(p.score.violation) + ',' + exp::json_number(p.score.energy_mj) +
             ',' + exp::json_number(p.score.rebuffer_ratio) + ',' +
             exp::json_number(p.score.drop_pct) + ',' + exp::json_number(p.score.startup_s) +
             ',' + exp::json_number(p.score.bitrate_kbps) + ',' +
             exp::json_number(p.score.guard_rebuffer_s) + '\n';
    }
  }
  return out;
}

}  // namespace vafs::tune
